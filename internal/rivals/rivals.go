// Package rivals models the systems the paper compares REIS against:
// the DRAM-side ANN baselines of the headline evaluation (HNSW, LSH
// and PQ-IVF served from host memory — see DRAMANN in dram.go, fed by
// the live index structures of internal/ann through the frontier
// experiment) and the two state-of-the-art ISP-based ANNS accelerators
// of Sec 6.4:
//
//   - ICE (Hu et al., MICRO'22): in-flash vector similarity search
//     that computes inside NAND dies on data stored in an
//     error-tolerant encoding. The encoding costs 8x storage for 4-bit
//     precision (32x for 8-bit), so every scan reads 8x (32x) more
//     pages than the logical data volume — the read amplification that
//     REIS's ESP approach avoids. ICE-ESP is the paper's idealized
//     variant that keeps 4-bit precision but drops the encoding
//     overhead.
//
//   - NDSearch (Wang et al., ISCA'24): near-data graph-traversal
//     search (HNSW / DiskANN). Traversal is sequential along the
//     search path and its irregular accesses underutilize plane
//     parallelism (Sec 3.2), so per-hop page reads are serialized up
//     to the beam width with a die-conflict penalty.
//
// Both models are mechanistic: they consume the same workload
// statistics as the REIS timing model (pages scanned, or measured
// graph hops) and the same device parameters, so the comparison varies
// only in the mechanism each accelerator actually differs by.
package rivals

import (
	"time"

	"reis/internal/flash"
	"reis/internal/ssd"
)

// ICEConfig parameterizes the ICE model.
type ICEConfig struct {
	// PrecisionBits is the stored precision (4 in the paper's
	// comparison).
	PrecisionBits int
	// EncodingOverhead is the storage/read amplification of the
	// error-tolerant format: 8x at 4-bit, 32x at 8-bit. 1 for ICE-ESP.
	EncodingOverhead int
}

// ICE returns the configuration the paper compares against.
func ICE() ICEConfig { return ICEConfig{PrecisionBits: 4, EncodingOverhead: 8} }

// ICEESP returns the idealized no-encoding variant of Sec 6.4.
func ICEESP() ICEConfig { return ICEConfig{PrecisionBits: 4, EncodingOverhead: 1} }

// ReadAmplification returns how many pages ICE reads per page of
// binary (1-bit) embeddings REIS reads: the precision ratio times the
// encoding overhead.
func (c ICEConfig) ReadAmplification() float64 {
	return float64(c.PrecisionBits) * float64(c.EncodingOverhead)
}

// Latency models one ICE query on the given SSD: the REIS-equivalent
// scan pages amplified by the encoding, read wave-parallel across
// planes with in-die compute, plus result transfer of the candidate
// list. ICE has no distance filter, no document retrieval and no
// rerank stage.
func (c ICEConfig) Latency(cfg ssd.Config, scanPages float64, candidates float64, entryBytes int) time.Duration {
	geo := cfg.Geo
	p := cfg.Flash
	pages := scanPages * c.ReadAmplification()
	waves := pages / float64(geo.Planes())
	if waves < 1 {
		waves = 1
	}
	// ICE senses with multi-step in-die computation; Flash-Cosmos-
	// style bulk ops cost roughly one extra compute step per page.
	perWave := p.ReadLatency(flash.ModeSLC) + p.LatchXOR + p.BitCountPage
	scan := time.Duration(waves * float64(perWave))
	xfer := time.Duration(candidates * float64(entryBytes) / geo.InternalBandwidth() * float64(time.Second))
	sel := cfg.QuickselectTime(int(candidates))
	// ICE also broadcasts the query into every die's compute path,
	// one die-load per channel position (same cost structure as REIS
	// without MPIBC support for the broadcast itself).
	broadcast := time.Duration(float64(geo.PageBytes) * float64(geo.DiesPerChannel) /
		p.DieInputBandwidth * float64(time.Second))
	return broadcast + scan + xfer + sel
}

// Energy estimates the query energy: amplified page reads dominate.
func (c ICEConfig) Energy(cfg ssd.Config, scanPages float64, total time.Duration) float64 {
	pages := scanPages * c.ReadAmplification()
	return pages*(cfg.Flash.EnergyReadPage+cfg.Flash.EnergyBitCount) +
		cfg.IdlePower*total.Seconds()
}

// NDSearchConfig parameterizes the NDSearch model.
type NDSearchConfig struct {
	// BeamWidth is the number of candidates expanded concurrently
	// (HNSW ef); hops within a beam step can read in parallel.
	BeamWidth int
	// DieConflictFactor derates the achievable parallelism due to the
	// irregular access pattern colliding on dies/channels (Sec 3.2
	// cites costly channel and chip conflicts). 0 < factor <= 1.
	DieConflictFactor float64
}

// NDSearch returns the configuration used in the Fig 11 comparison.
func NDSearch() NDSearchConfig {
	return NDSearchConfig{BeamWidth: 64, DieConflictFactor: 0.5}
}

// Latency models one NDSearch query: hops page reads issued in beam
// batches; each batch's reads would be parallel on ideal hardware but
// irregular placement serializes a fraction of them.
func (c NDSearchConfig) Latency(cfg ssd.Config, hops float64) time.Duration {
	geo := cfg.Geo
	p := cfg.Flash
	par := float64(c.BeamWidth) * c.DieConflictFactor
	if limit := float64(geo.Dies()); par > limit {
		par = limit
	}
	if par < 1 {
		par = 1
	}
	waves := hops / par
	if waves < 1 {
		waves = 1
	}
	perHop := p.ReadLatency(flash.ModeSLC) + p.LatchXOR
	// Each hop also moves the visited node (vector + adjacency list,
	// about one sub-page) to the compute unit.
	nodeBytes := 4096.0
	xfer := time.Duration(hops * nodeBytes / geo.InternalBandwidth() * float64(time.Second))
	return time.Duration(waves*float64(perHop)) + xfer
}

// Energy estimates NDSearch query energy.
func (c NDSearchConfig) Energy(cfg ssd.Config, hops float64, total time.Duration) float64 {
	return hops*cfg.Flash.EnergyReadPage + cfg.IdlePower*total.Seconds()
}
