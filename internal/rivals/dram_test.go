package rivals

import (
	"testing"

	"reis/internal/host"
)

func testDRAM() DRAMANN {
	return DRAMANN{B: host.NewBaseline(host.CPUReal()), Dim: 1024}
}

// TestDRAMCostsPositiveAndMonotone pins the shape of each rival model:
// all costs are positive and grow with the work term.
func TestDRAMCostsPositiveAndMonotone(t *testing.T) {
	d := testDRAM()
	if h1, h2 := d.HNSWSeconds(100), d.HNSWSeconds(1000); h1 <= 0 || h2 <= h1 {
		t.Fatalf("HNSWSeconds not positive-monotone: %v %v", h1, h2)
	}
	if l1, l2 := d.LSHSeconds(1e4, 16), d.LSHSeconds(1e6, 16); l1 <= 0 || l2 <= l1 {
		t.Fatalf("LSHSeconds not positive-monotone: %v %v", l1, l2)
	}
	if p1, p2 := d.PQSeconds(1e5, 16, 64, 16384), d.PQSeconds(1e7, 16, 64, 16384); p1 <= 0 || p2 <= p1 {
		t.Fatalf("PQSeconds not positive-monotone: %v %v", p1, p2)
	}
}

// TestHNSWSequentialPenalty pins the Sec 3.2 asymmetry: hop-for-float,
// the sequential graph walk costs more than the data-parallel flat
// scan of the same number of vectors.
func TestHNSWSequentialPenalty(t *testing.T) {
	d := testDRAM()
	const vecs = 10_000
	hop := d.HNSWSeconds(vecs)
	scan := d.B.ScanSecondsF32(vecs, d.Dim)
	if hop <= scan {
		t.Fatalf("sequential hops (%v) should cost more than a parallel scan (%v) over the same %d vectors",
			hop, scan, vecs)
	}
}

// TestLoadAmortization pins that the per-query load cost scales with
// dataset size and amortizes with batch length.
func TestLoadAmortization(t *testing.T) {
	d := testDRAM()
	small := d.LoadSecondsPerQuery(1_000_000, 1000)
	big := d.LoadSecondsPerQuery(40_000_000, 1000)
	if small <= 0 || big <= small {
		t.Fatalf("load cost not monotone in dataset size: %v %v", small, big)
	}
	longer := d.LoadSecondsPerQuery(40_000_000, 10_000)
	if longer >= big {
		t.Fatalf("longer batch should amortize the load: %v vs %v", longer, big)
	}
}
