package rivals

import (
	"math"

	"reis/internal/host"
)

// This file models the DRAM-side ANN rivals of the paper's headline
// comparison (Fig 5 / Sec 6): HNSW, LSH and PQ-IVF served from host
// memory. Where rivals.go models competing *in-storage* accelerators,
// these are the conventional alternative — keep the index in DRAM and
// pay for loading it there. The frontier experiment
// (internal/experiments, RunFrontier) runs the real index structures
// from internal/ann over the functional corpus to measure recall and
// per-query work (hops, candidates), then costs that work at paper
// scale through these models, built on the same calibrated
// host.Baseline as the CPU-Real comparisons of Fig 7.
//
// The central asymmetry the models capture is Sec 3.2's: flat scans
// parallelize across cores and are bounded by DRAM streaming
// bandwidth, while graph traversal is a sequential chain of dependent
// random accesses that no core count hides.

// DRAMRandomAccessNs is the latency of one dependent random DRAM
// access (row miss, pointer chase): the per-hop floor of graph
// traversal and the per-table floor of hash probing.
const DRAMRandomAccessNs = 100.0

// DRAMANN costs DRAM-resident ANN queries on a calibrated host
// baseline over vectors of the given dimensionality.
type DRAMANN struct {
	B   *host.Baseline
	Dim int
}

// parallelism mirrors host.Baseline's whole-system kernel rate
// divisor for the scan-shaped stages.
func (d DRAMANN) parallelism() float64 {
	return float64(d.B.CPU.Cores) * d.B.CPU.Efficiency
}

// HNSWSeconds models one HNSW query that evaluated the given number
// of neighbor distances: each hop is one full-precision distance over
// Dim floats plus one dependent random DRAM access for the neighbor
// fetch. The chain is sequential — hop i+1's address comes out of hop
// i's comparison — so unlike the scans below it gets no multi-core
// parallelism and no streaming bandwidth; this is why graph indexes
// lose their single-query latency advantage at scale (Sec 3.2).
func (d DRAMANN) HNSWSeconds(hops float64) float64 {
	perHop := float64(d.Dim)*d.B.Cal.F32NsPerDim + DRAMRandomAccessNs
	return hops * perHop / 1e9
}

// LSHSeconds models one LSH query: one hash probe (a dependent random
// access) per table, then a full-precision rescore of the candidate
// union — a flat scan, data-parallel across cores and bounded by DRAM
// streaming bandwidth.
func (d DRAMANN) LSHSeconds(candidates float64, tables int) float64 {
	probe := float64(tables) * DRAMRandomAccessNs / 1e9
	return probe + d.B.ScanSecondsF32(int(math.Ceil(candidates)), d.Dim)
}

// PQSeconds models one PQ-IVF query: a full-precision coarse scan over
// nlist centroids, an ADC table build (ks sub-distances per subspace —
// in total the arithmetic of ks full vectors), then the ADC scan of
// the probed lists' codes: candidates × m one-byte lookup-adds,
// parallel across cores and bounded by streaming the codes.
func (d DRAMANN) PQSeconds(candidates float64, m, ks, nlist int) float64 {
	coarse := d.B.ScanSecondsF32(nlist, d.Dim)
	table := d.B.ScanSecondsF32(ks, d.Dim)
	codeBytes := candidates * float64(m)
	compute := codeBytes * d.B.Cal.Int8NsPerDim / d.parallelism() / 1e9
	stream := codeBytes / d.B.CPU.MemBandwidth
	return coarse + table + math.Max(compute, stream)
}

// LoadSecondsPerQuery is the QueryBatch-amortized cost of getting the
// full-scale FP32 dataset into DRAM in the first place — the term the
// flash engine never pays. batch is the retrieval-session length the
// load is amortized over (experiments.QueryBatch in the sweeps).
func (d DRAMANN) LoadSecondsPerQuery(n int64, batch int) float64 {
	bytes := host.DatasetBytesF32(int(n), d.Dim, 0)
	return d.B.LoadSeconds(bytes, false) / float64(batch)
}
