package rivals

import (
	"testing"

	"reis/internal/ssd"
)

func TestICEReadAmplification(t *testing.T) {
	if got := ICE().ReadAmplification(); got != 32 {
		t.Fatalf("ICE read amp = %v, want 32 (4-bit x 8x encoding)", got)
	}
	if got := ICEESP().ReadAmplification(); got != 4 {
		t.Fatalf("ICE-ESP read amp = %v, want 4", got)
	}
	eightBit := ICEConfig{PrecisionBits: 8, EncodingOverhead: 32}
	if got := eightBit.ReadAmplification(); got != 256 {
		t.Fatalf("8-bit read amp = %v", got)
	}
}

func TestICELatencyGrowsWithPages(t *testing.T) {
	cfg := ssd.SSD1()
	l1 := ICE().Latency(cfg, 1000, 100, 143)
	l2 := ICE().Latency(cfg, 2000, 100, 143)
	if l2 <= l1 {
		t.Fatalf("latency did not grow: %v <= %v", l1, l2)
	}
}

func TestICESlowerThanICEESP(t *testing.T) {
	cfg := ssd.SSD1()
	ice := ICE().Latency(cfg, 5000, 1000, 143)
	esp := ICEESP().Latency(cfg, 5000, 1000, 143)
	if ice <= esp {
		t.Fatalf("ICE %v not slower than ICE-ESP %v", ice, esp)
	}
	ratio := float64(ice) / float64(esp)
	if ratio < 4 || ratio > 12 {
		t.Fatalf("ICE/ICE-ESP ratio %v, want ~8x (encoding overhead)", ratio)
	}
}

func TestICEEnergyGrowsWithWork(t *testing.T) {
	cfg := ssd.SSD1()
	l := ICE().Latency(cfg, 1000, 100, 143)
	e1 := ICE().Energy(cfg, 1000, l)
	e2 := ICE().Energy(cfg, 2000, l)
	if e2 <= e1 {
		t.Fatal("energy did not grow with pages")
	}
}

func TestNDSearchLatencyGrowsWithHops(t *testing.T) {
	cfg := ssd.SSD1()
	nd := NDSearch()
	l1 := nd.Latency(cfg, 1000)
	l2 := nd.Latency(cfg, 4000)
	if l2 <= l1 {
		t.Fatalf("latency did not grow: %v <= %v", l1, l2)
	}
}

func TestNDSearchConflictsHurt(t *testing.T) {
	cfg := ssd.SSD1()
	smooth := NDSearchConfig{BeamWidth: 64, DieConflictFactor: 1.0}
	rough := NDSearchConfig{BeamWidth: 64, DieConflictFactor: 0.25}
	if rough.Latency(cfg, 10000) <= smooth.Latency(cfg, 10000) {
		t.Fatal("conflicts did not increase latency")
	}
}

func TestNDSearchParallelismCappedByDies(t *testing.T) {
	cfg := ssd.SSD1() // 128 dies
	wide := NDSearchConfig{BeamWidth: 100000, DieConflictFactor: 1.0}
	capped := NDSearchConfig{BeamWidth: cfg.Geo.Dies(), DieConflictFactor: 1.0}
	if wide.Latency(cfg, 1e6) != capped.Latency(cfg, 1e6) {
		t.Fatal("beam parallelism not capped by die count")
	}
}

func TestNDSearchEnergy(t *testing.T) {
	cfg := ssd.SSD1()
	nd := NDSearch()
	l := nd.Latency(cfg, 1000)
	if nd.Energy(cfg, 1000, l) <= 0 {
		t.Fatal("non-positive energy")
	}
}
