// Package xrand provides a small, deterministic pseudo-random number
// generator used throughout the repository.
//
// All experiments in this reproduction must be reproducible bit-for-bit
// across platforms and Go releases, so we do not rely on math/rand's
// unspecified stream. The generator is SplitMix64 (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014), which
// passes BigCrush for the 64-bit output sizes we need and is trivially
// seedable and splittable.
package xrand

import (
	"math"
	"math/bits"
	"sort"
)

// RNG is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64

	// cached spare Gaussian sample from the Box-Muller transform.
	haveSpare bool
	spare     float64

	// memoized Zipf CDF table for the last (n, s) pair sampled.
	zipfN   int
	zipfS   float64
	zipfCDF []float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a statistically independent generator from r.
// Both r and the returned generator remain usable.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed integer in [0, n).
// It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method over 64 bits.
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniformly distributed float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// NormFloat64 returns a standard normal (mean 0, stddev 1) sample using
// the Box-Muller transform. Deterministic given the generator state.
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.haveSpare = true
	return u * f
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf returns a sample in [0, n) distributed with P(i) proportional to
// 1/(i+1)^s, so rank 0 is the most popular element. s = 0 degenerates
// to the uniform distribution. The sampler is rejection-free: one
// Float64 draw is inverted through a cumulative-distribution table, so
// the number of generator steps per sample is fixed and the output
// stream stays aligned across platforms. The table is memoized on the
// generator per (n, s) pair, making repeated draws O(log n).
// It panics if n <= 0 or s < 0.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("xrand: Zipf with non-positive n")
	}
	if s < 0 || math.IsNaN(s) {
		panic("xrand: Zipf with negative s")
	}
	if r.zipfCDF == nil || r.zipfN != n || r.zipfS != s {
		cdf := make([]float64, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += math.Pow(float64(i+1), -s)
			cdf[i] = sum
		}
		for i := range cdf {
			cdf[i] /= sum
		}
		// Guard against accumulated rounding leaving the final bucket
		// fractionally below 1: every u in [0, 1) must land in range.
		cdf[n-1] = 1
		r.zipfN, r.zipfS, r.zipfCDF = n, s, cdf
	}
	u := r.Float64()
	// Smallest i with u < cdf[i]; u < 1 = cdf[n-1] keeps it in range.
	return sort.Search(n, func(i int) bool { return u < r.zipfCDF[i] })
}

// Shuffle pseudo-randomizes the order of n elements by calling swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
