package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestKnownStream(t *testing.T) {
	// Reference values of SplitMix64 seeded with 0 (from the original
	// C reference implementation).
	r := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	expect := trials / n
	for i, c := range counts {
		if c < expect*9/10 || c > expect*11/10 {
			t.Errorf("bucket %d count %d deviates >10%% from %d", i, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32() = %g out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(6)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(13)
	child := r.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child produced %d identical outputs", same)
	}
}

func TestIntnPropertyInRange(t *testing.T) {
	r := New(21)
	f := func(raw uint32) bool {
		n := int(raw%10000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
}
