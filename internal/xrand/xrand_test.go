package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestKnownStream(t *testing.T) {
	// Reference values of SplitMix64 seeded with 0 (from the original
	// C reference implementation).
	r := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	expect := trials / n
	for i, c := range counts {
		if c < expect*9/10 || c > expect*11/10 {
			t.Errorf("bucket %d count %d deviates >10%% from %d", i, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32() = %g out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(6)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(13)
	child := r.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child produced %d identical outputs", same)
	}
}

func TestIntnPropertyInRange(t *testing.T) {
	r := New(21)
	f := func(raw uint32) bool {
		n := int(raw%10000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfRangeAndDeterminism(t *testing.T) {
	a, b := New(77), New(77)
	for _, n := range []int{1, 2, 10, 1000} {
		for _, s := range []float64{0, 0.5, 0.8, 1.2, 2} {
			for i := 0; i < 200; i++ {
				va, vb := a.Zipf(n, s), b.Zipf(n, s)
				if va != vb {
					t.Fatalf("Zipf(%d, %g) streams diverged: %d != %d", n, s, va, vb)
				}
				if va < 0 || va >= n {
					t.Fatalf("Zipf(%d, %g) = %d out of range", n, s, va)
				}
			}
		}
	}
}

func TestZipfConsumesOneDrawPerSample(t *testing.T) {
	// Memoization must not change how many generator steps a sample
	// consumes: interleaving Zipf calls with other draws must keep two
	// same-seeded streams aligned even when one rebuilds its CDF table
	// more often than the other.
	a, b := New(31), New(31)
	_ = a.Zipf(100, 1.2) // warm a's table for (100, 1.2)
	_ = b.Zipf(100, 1.2)
	_ = a.Zipf(50, 0.8) // force a to rebuild on the next (100, 1.2) call
	_ = b.Zipf(50, 0.8)
	_ = a.Zipf(100, 1.2)
	_ = b.Zipf(100, 1.2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("underlying streams diverged at step %d", i)
		}
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(123)
	const n, trials = 100, 200000
	for _, s := range []float64{0, 1.2} {
		counts := make([]int, n)
		for i := 0; i < trials; i++ {
			counts[r.Zipf(n, s)]++
		}
		if s == 0 {
			// Uniform: every bucket within 15% of trials/n.
			expect := trials / n
			for i, c := range counts {
				if c < expect*85/100 || c > expect*115/100 {
					t.Errorf("s=0 bucket %d count %d deviates >15%% from %d", i, c, expect)
				}
			}
			continue
		}
		// Skewed: counts non-increasing in aggregate (head dominates),
		// and the empirical head mass matches the analytic CDF closely.
		if counts[0] <= counts[n-1] {
			t.Errorf("s=%g rank 0 count %d not above rank %d count %d", s, counts[0], n-1, counts[n-1])
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += math.Pow(float64(i+1), -s)
		}
		head := 0.0
		for i := 0; i < 10; i++ {
			head += math.Pow(float64(i+1), -s)
		}
		wantHead := head / sum
		gotHead := 0.0
		for i := 0; i < 10; i++ {
			gotHead += float64(counts[i])
		}
		gotHead /= trials
		if math.Abs(gotHead-wantHead) > 0.02 {
			t.Errorf("s=%g top-10 mass %g, want ~%g", s, gotHead, wantHead)
		}
	}
}

func TestZipfCrossSplitDeterminism(t *testing.T) {
	// A generator derived via Split must produce the same Zipf stream
	// as an independently constructed generator with the same derived
	// seed — the sampler state is a pure function of the SplitMix64
	// stream, not of the parent's memoized table.
	parent := New(55)
	_ = parent.Zipf(64, 1.2) // warm the parent's table
	child := parent.Split()
	probe := New(55)
	_ = probe.Zipf(64, 1.2)
	ref := probe.Split()
	for i := 0; i < 500; i++ {
		if c, w := child.Zipf(32, 0.8), ref.Zipf(32, 0.8); c != w {
			t.Fatalf("split child Zipf diverged at step %d: %d != %d", i, c, w)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {10, -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Zipf(%d, %g) did not panic", tc.n, tc.s)
				}
			}()
			New(1).Zipf(tc.n, tc.s)
		}()
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
}
