package reis

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// runAllSearches executes every search API over the shared test
// workload and returns a deterministic fingerprint of results and
// stats: flat Search, IVFSearch, SearchBatch and IVFSearchBatch must
// each produce bit-identical output on every run at any GOMAXPROCS.
func runAllSearches(t *testing.T, e *Engine) ([][][]DocResult, [][]QueryStats) {
	t.Helper()
	queries := testData.Queries[:12]
	var allRes [][][]DocResult
	var allSts [][]QueryStats

	seqRes := make([][]DocResult, len(queries))
	seqSts := make([]QueryStats, len(queries))
	for qi, q := range queries {
		res, st, err := e.Search(1, q, 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		seqRes[qi], seqSts[qi] = res, st
	}
	allRes, allSts = append(allRes, seqRes), append(allSts, seqSts)

	ivfRes := make([][]DocResult, len(queries))
	ivfSts := make([]QueryStats, len(queries))
	for qi, q := range queries {
		res, st, err := e.IVFSearch(2, q, 10, SearchOptions{NProbe: 4})
		if err != nil {
			t.Fatal(err)
		}
		ivfRes[qi], ivfSts[qi] = res, st
	}
	allRes, allSts = append(allRes, ivfRes), append(allSts, ivfSts)

	bRes, bSts, err := e.SearchBatch(1, queries, 10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	allRes, allSts = append(allRes, bRes), append(allSts, bSts)

	ibRes, ibSts, err := e.IVFSearchBatch(2, queries, 10, SearchOptions{NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	return append(allRes, ibRes), append(allSts, ibSts)
}

func diffRuns(t *testing.T, label string, wantRes, gotRes [][][]DocResult, wantSts, gotSts [][]QueryStats) {
	t.Helper()
	for m := range wantRes {
		mode := []string{"Search", "IVFSearch", "SearchBatch", "IVFSearchBatch"}[m]
		for qi := range wantRes[m] {
			w, g := wantRes[m][qi], gotRes[m][qi]
			if len(w) != len(g) {
				t.Fatalf("%s %s query %d: %d results, want %d", label, mode, qi, len(g), len(w))
			}
			for i := range w {
				if w[i].ID != g[i].ID || w[i].Dist != g[i].Dist || !bytes.Equal(w[i].Doc, g[i].Doc) {
					t.Fatalf("%s %s query %d result %d diverged: got{id=%d dist=%v} want{id=%d dist=%v}",
						label, mode, qi, i, g[i].ID, g[i].Dist, w[i].ID, w[i].Dist)
				}
			}
			if wantSts[m][qi] != gotSts[m][qi] {
				t.Fatalf("%s %s query %d stats diverged:\ngot  %+v\nwant %+v",
					label, mode, qi, gotSts[m][qi], wantSts[m][qi])
			}
		}
	}
}

// TestSearchDeterministicAcrossRunsAndGOMAXPROCS asserts the hard
// determinism contract: every search API returns bit-identical results
// and stats on repeated runs, at GOMAXPROCS 1 and 4 — the per-die
// worker ordering and position-ordered merges make the outcome
// independent of goroutine scheduling.
func TestSearchDeterministicAcrossRunsAndGOMAXPROCS(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	deployIVF(t, e, 2, 16)

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	refRes, refSts := runAllSearches(t, e)

	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 2; rep++ {
			gotRes, gotSts := runAllSearches(t, e)
			diffRuns(t, fmt.Sprintf("GOMAXPROCS=%d rep=%d", procs, rep), refRes, gotRes, refSts, gotSts)
		}
	}
}
