package reis

import (
	"fmt"
	"sort"

	"reis/internal/flash"
	"reis/internal/vecmath"
)

// This file computes the on-device placement of one database
// independently of which device (or devices) will hold it. planLayout
// resolves the Sec 4.1 layout — slot geometry, cluster-sorted
// placement order with page-alignment padding, region page counts, the
// R-IVF table, INT8 quantization parameters and the distance-filter
// threshold — and buildItems renders the per-slot page contents.
//
// Both the single-device deploy and the sharded deploy consume the
// same plan: a shard stores a page-stride subset of the globally
// planned pages with unmodified bytes, which is what makes sharded
// scans bit-identical to a single device (see DESIGN.md, "Sharded
// topology").

// dbLayout is the device-independent placement plan of one database.
type dbLayout struct {
	dim int
	n   int

	// Slot geometry (identical on every device built from a shared
	// config: it depends only on page and OOB sizes).
	slotBytes   int // binary embedding bytes (dim/8)
	embPerPage  int
	int8Bytes   int // INT8 embedding bytes (dim)
	int8PerPage int
	docBytes    int // document chunk slot size
	docsPerPage int

	// order[pos] is the original id at region position pos, or -1 for
	// cluster-alignment padding; regionSlots == len(order).
	order       []int
	regionSlots int

	// Region sizes in pages.
	embPages, int8Pages, docPages, centPages int

	// Planned region capacities in pages: the live plan plus the
	// configured overprovisioning. The capacity plan is part of the
	// global layout — geometry-independent apart from page size — so a
	// mutation hits ErrRegionFull at the same point on every topology
	// deployed from the same plan.
	embCap, int8Cap, docCap int

	// ppb is the flash pages-per-block constant the layout was planned
	// under: the garbage collector's row granularity (a GC row is ppb
	// consecutive region pages, so victim selection is identical across
	// topologies sharing the block shape).
	ppb int

	rivf            []RIVFEntry
	params          vecmath.Int8Params
	filterThreshold int
	metaTags        []uint8

	// centCodes[c] is cluster c's binary-quantized centroid code and
	// radius[c] the maximum Hamming distance from that code to any
	// member's binary code — the triangle-inequality bound threshold
	// pruning uses (a cluster's best possible distance to a query is
	// coarse distance minus radius). Nil for flat databases.
	centCodes [][]uint64
	radius    []int
}

// planLayout validates the deployment and computes its placement plan
// under the given flash geometry; overprovisionPct reserves append/GC
// headroom per mutable region. cfg.DocSlotBytes is defaulted in place.
func planLayout(cfg *DeployConfig, geo flash.Geometry, overprovisionPct int) (*dbLayout, error) {
	n := len(cfg.Vectors)
	if n == 0 {
		return nil, fmt.Errorf("reis: deploy of empty database")
	}
	if len(cfg.Docs) != n {
		return nil, fmt.Errorf("reis: %d docs for %d vectors", len(cfg.Docs), n)
	}
	if cfg.DocSlotBytes == 0 {
		cfg.DocSlotBytes = 4096
	}
	dim := len(cfg.Vectors[0])
	lo := &dbLayout{
		dim:       dim,
		n:         n,
		slotBytes: vecmath.WordsPerVector(dim) * 8,
		int8Bytes: dim,
		docBytes:  cfg.DocSlotBytes,
		params:    vecmath.ComputeInt8Params(cfg.Vectors),
	}
	// Embeddings per page are bounded both by the user-data area and by
	// the OOB area, which must hold one linkage record per slot
	// (Sec 4.1.3: linkage uses a small fraction of OOB at the paper's
	// 1024-dim/16KiB operating point; at other ratios OOB can bind).
	lo.embPerPage = min(geo.PageBytes/lo.slotBytes, geo.OOBBytes/oobBytesPerSlot)
	lo.int8PerPage = geo.PageBytes / lo.int8Bytes
	lo.docsPerPage = geo.PageBytes / lo.docBytes
	if lo.embPerPage == 0 || lo.int8PerPage == 0 || lo.docsPerPage == 0 {
		return nil, fmt.Errorf("reis: page size %d too small for dim %d / doc %d",
			geo.PageBytes, dim, cfg.DocSlotBytes)
	}
	for i, doc := range cfg.Docs {
		if len(doc) > cfg.DocSlotBytes {
			return nil, fmt.Errorf("reis: doc %d is %dB > slot %dB", i, len(doc), cfg.DocSlotBytes)
		}
	}

	// Placement order: cluster-sorted for IVF, identity for flat.
	// Padding slots (-1) are inserted so every cluster starts on a
	// fresh page (a cluster's fine scan then never senses a page for
	// another cluster's slots).
	var order []int
	if cfg.Assign != nil {
		sorted := make([]int, n)
		for i := range sorted {
			sorted[i] = i
		}
		sort.SliceStable(sorted, func(a, b int) bool {
			if cfg.Assign[sorted[a]] != cfg.Assign[sorted[b]] {
				return cfg.Assign[sorted[a]] < cfg.Assign[sorted[b]]
			}
			return sorted[a] < sorted[b]
		})
		prevCluster := -1
		for _, id := range sorted {
			if c := cfg.Assign[id]; c != prevCluster {
				for len(order)%lo.embPerPage != 0 {
					order = append(order, -1)
				}
				prevCluster = c
			}
			order = append(order, id)
		}
	} else {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	lo.order = order
	lo.regionSlots = len(order)

	lo.embPages = ceilDiv(len(order), lo.embPerPage)
	lo.int8Pages = ceilDiv(n, lo.int8PerPage)
	lo.docPages = ceilDiv(n, lo.docsPerPage)
	lo.embCap = withHeadroom(lo.embPages, overprovisionPct)
	lo.int8Cap = withHeadroom(lo.int8Pages, overprovisionPct)
	lo.docCap = withHeadroom(lo.docPages, overprovisionPct)
	lo.ppb = geo.PagesPerBlock
	// The binary region reclaims space at GC-row granularity (one block
	// per plane), and copy-forward is strictly out-of-place: collecting
	// a victim row needs a fresh row to relocate its survivors into. An
	// overprovisioned deployment therefore always reserves at least one
	// row beyond the deployed extent, even when the configured headroom
	// is smaller than a row (small databases under coarse geometries).
	// Immutable deployments (no overprovisioning) reserve nothing, so
	// exact-fit layouts on small devices still deploy.
	if overprovisionPct > 0 {
		rowPages := geo.Planes() * lo.ppb
		if minCap := (ceilDiv(lo.embPages, rowPages) + 1) * rowPages; lo.embCap < minCap {
			lo.embCap = minCap
		}
	}
	if len(cfg.Centroids) > 0 {
		lo.centPages = ceilDiv(len(cfg.Centroids), lo.embPerPage)
		lo.rivf = buildRIVF(cfg.Assign, order, len(cfg.Centroids))
		lo.centCodes = make([][]uint64, len(cfg.Centroids))
		for c, v := range cfg.Centroids {
			lo.centCodes[c] = vecmath.BinaryQuantize(v, nil)
		}
		lo.radius = make([]int, len(cfg.Centroids))
		for i, v := range cfg.Vectors {
			c := cfg.Assign[i]
			if d := vecmath.Hamming(lo.centCodes[c], vecmath.BinaryQuantize(v, nil)); d > lo.radius[c] {
				lo.radius[c] = d
			}
		}
	}

	lo.metaTags = make([]uint8, len(order))
	for pos, id := range order {
		if id >= 0 && cfg.MetaTags != nil {
			lo.metaTags[pos] = cfg.MetaTags[id]
		}
	}

	lo.filterThreshold = calibrateFilter(cfg.Vectors)
	return lo, nil
}

// layoutItems are the rendered per-slot page contents of a plan: for
// every region, the byte slice stored in each slot (global slot order).
// A padding slot has a nil bins entry and an invalid-DADR OOB record.
type layoutItems struct {
	bins  [][]byte // binary region slots, placement order
	oobs  [][]byte // OOB linkage per binary slot
	int8s [][]byte // INT8 region slots, original-id order
	docs  [][]byte // document region slots, original-id order
	cents [][]byte // centroid region slots (nil for flat)
}

// buildItems renders the page contents of the plan. Documents and INT8
// copies are stored in original-id order, so DADR and RADR are the
// original id, resolvable by arithmetic; binary slots carry OOB
// linkage.
func (lo *dbLayout) buildItems(cfg *DeployConfig) *layoutItems {
	it := &layoutItems{docs: cfg.Docs}
	it.int8s = make([][]byte, lo.n)
	for i, v := range cfg.Vectors {
		it.int8s[i] = vecmath.PackInt8Bytes(lo.params.Int8Quantize(v, nil), nil)
	}
	it.bins = make([][]byte, len(lo.order))
	it.oobs = make([][]byte, len(lo.order))
	for pos, id := range lo.order {
		if id < 0 {
			it.bins[pos] = nil
			it.oobs[pos] = encodeLinkage(InvalidDADR, 0, 0)
			continue
		}
		code := vecmath.BinaryQuantize(cfg.Vectors[id], nil)
		it.bins[pos] = vecmath.PackBinaryBytes(code, nil)
		it.oobs[pos] = encodeLinkage(uint32(id), uint32(id), lo.metaTags[pos])
	}
	if len(cfg.Centroids) > 0 {
		it.cents = make([][]byte, len(cfg.Centroids))
		for c, v := range cfg.Centroids {
			it.cents[c] = vecmath.PackBinaryBytes(vecmath.BinaryQuantize(v, nil), nil)
		}
	}
	return it
}

// withHeadroom returns pages grown by pct percent (rounded up).
func withHeadroom(pages, pct int) int {
	return pages + ceilDiv(pages*pct, 100)
}

// shardPages returns how many of pages global region pages shard s of
// nshards owns under round-robin page striping (global page g lives on
// shard g mod nshards, as local page g / nshards).
func shardPages(pages, s, nshards int) int {
	if pages <= s {
		return 0
	}
	return (pages - s + nshards - 1) / nshards
}
