package reis

import (
	"sync"

	"reis/internal/flash"
)

// planeTask is one unit of per-plane device work: an IBC broadcast, a
// plane's share of a scan, or a whole per-query plane program in batch
// mode. The plane index routes the task to its die's worker.
type planeTask struct {
	plane int
	run   func() error
}

// planePool dispatches per-plane tasks onto one worker per simulated
// die (channels x dies/channel workers, sized from the SSD geometry).
// That mirrors the hardware: planes of one die share control logic and
// execute commands one at a time, while different dies run fully in
// parallel.
//
// Determinism: tasks that touch the same plane always map to the same
// worker and are executed in submission order, so the per-plane
// command sequence — and therefore every latch content, distance and
// counter a task observes — is independent of goroutine scheduling.
type planePool struct {
	planesPerDie int
	workers      int
}

func newPlanePool(geo flash.Geometry) *planePool {
	return &planePool{planesPerDie: geo.PlanesPerDie, workers: geo.Dies()}
}

// workerOf returns the worker (die) index serving a global plane index.
func (p *planePool) workerOf(plane int) int { return plane / p.planesPerDie }

// run executes the tasks and waits for completion. Tasks are grouped
// by worker preserving submission order; one goroutine serves each
// worker with pending tasks. The first error of the lowest-numbered
// worker is returned; a worker stops at its first error.
func (p *planePool) run(tasks []planeTask) error {
	switch len(tasks) {
	case 0:
		return nil
	case 1:
		return tasks[0].run()
	}
	queues := make([][]planeTask, p.workers)
	for _, t := range tasks {
		w := p.workerOf(t.plane)
		queues[w] = append(queues[w], t)
	}
	errs := make([]error, p.workers)
	var wg sync.WaitGroup
	for w, q := range queues {
		if len(q) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, q []planeTask) {
			defer wg.Done()
			for _, t := range q {
				if err := t.run(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
