package reis

import (
	"sync"

	"reis/internal/flash"
)

// workerScratch is the scratch arena owned by one worker (die) of the
// planePool. Tasks dispatched to a worker run serially on its
// goroutine, so they may use these buffers without locking; across pool
// runs the buffers are recycled, giving the scan path zero steady-state
// allocations.
//
// Ownership rule (see DESIGN.md): a worker's scratch may only be
// touched by that worker's goroutine while a pool run is in flight, and
// by the engine's caller goroutine between runs (the WaitGroup in run
// establishes the happens-before edge both ways, keeping -race clean).
type workerScratch struct {
	// entries is the TTL-entry arena. Scan tasks append surviving
	// entries here and record their [lo, hi) window in a planeScan; the
	// engine merges the windows after the run completes and resets the
	// arena at the start of the next scan phase. Windows index the
	// arena rather than aliasing it, so arena growth never invalidates
	// a previously recorded window.
	entries []TTLEntry
	// oob holds the sensed page's OOB area between the page read and
	// the per-slot linkage decode.
	oob []byte
	// dists is the distance buffer handed to GEN_DIST_PAGE: the die
	// writes every slot distance of the sensed page into it in place.
	dists []int
}

// planeTask is one unit of per-plane device work: an IBC broadcast, a
// plane's share of a scan, or a whole per-query plane program in batch
// mode. The plane index routes the task to its die's worker; arg is a
// caller-defined index (e.g. into a span list) so many tasks can share
// one closure instead of capturing per-task state.
type planeTask struct {
	plane int
	arg   int
	run   func(sc *workerScratch, plane, arg int) error
}

// planePool dispatches per-plane tasks onto one worker per simulated
// die (channels x dies/channel workers, sized from the SSD geometry).
// That mirrors the hardware: planes of one die share control logic and
// execute commands one at a time, while different dies run fully in
// parallel.
//
// Workers are persistent goroutines draining per-worker channels (the
// die's command queue), started lazily on the first multi-task run and
// stopped by Engine.Close. A run enqueues each worker's task list and
// waits; the pool is never invoked per task.
//
// Determinism: tasks that touch the same plane always map to the same
// worker and are executed in submission order, so the per-plane
// command sequence — and therefore every latch content, distance and
// counter a task observes — is independent of goroutine scheduling.
type planePool struct {
	planesPerDie int
	workers      int
	// scratch[w] is worker w's arena; queues and errs are the pooled
	// per-run dispatch structures.
	scratch []*workerScratch
	queues  [][]planeTask
	errs    []error
	// chans[w] feeds worker w's goroutine; nil until started. The pool
	// has a single dispatching owner at a time (the engine's execution
	// lock), so started/chans need no extra synchronization.
	chans   []chan poolRun
	started bool
}

// poolRun is one run's share for one worker: the task list to execute
// and the WaitGroup signalling the dispatcher.
type poolRun struct {
	tasks []planeTask
	wg    *sync.WaitGroup
}

func newPlanePool(geo flash.Geometry) *planePool {
	workers := geo.Dies()
	p := &planePool{
		planesPerDie: geo.PlanesPerDie,
		workers:      workers,
		scratch:      make([]*workerScratch, workers),
		queues:       make([][]planeTask, workers),
		errs:         make([]error, workers),
	}
	for i := range p.scratch {
		p.scratch[i] = &workerScratch{}
	}
	return p
}

// workerOf returns the worker (die) index serving a global plane index.
func (p *planePool) workerOf(plane int) int { return plane / p.planesPerDie }

// scratchOf returns the arena of the worker serving a global plane
// index — how the engine resolves a planeScan's entry window after a
// run completes.
func (p *planePool) scratchOf(plane int) *workerScratch { return p.scratch[p.workerOf(plane)] }

// resetArenas empties every worker's entry arena (keeping capacity).
// The engine calls it at the start of each scan phase, once all windows
// of the previous phase have been merged out.
func (p *planePool) resetArenas() {
	for _, sc := range p.scratch {
		sc.entries = sc.entries[:0]
	}
}

// start spins up the persistent die workers. Each worker loops on its
// channel, executing one run's task list at a time; the channel
// send/receive and the run WaitGroup establish the happens-before
// edges that keep the scratch ownership rule race-clean.
func (p *planePool) start() {
	if p.started {
		return
	}
	p.started = true
	p.chans = make([]chan poolRun, p.workers)
	for w := range p.chans {
		ch := make(chan poolRun, 1)
		p.chans[w] = ch
		go func(w int, ch chan poolRun) {
			sc := p.scratch[w]
			for r := range ch {
				for _, t := range r.tasks {
					if err := t.run(sc, t.plane, t.arg); err != nil {
						p.errs[w] = err
						break
					}
				}
				r.wg.Done()
			}
		}(w, ch)
	}
}

// stop terminates the persistent workers (Engine.Close). A stopped
// pool restarts lazily if run again.
func (p *planePool) stop() {
	if !p.started {
		return
	}
	for _, ch := range p.chans {
		close(ch)
	}
	p.chans = nil
	p.started = false
}

// run executes the tasks and waits for completion. Tasks are grouped
// by worker preserving submission order and enqueued onto the
// persistent die workers' command queues. The first error of the
// lowest-numbered worker is returned; a worker stops its run at its
// first error.
func (p *planePool) run(tasks []planeTask) error {
	switch len(tasks) {
	case 0:
		return nil
	case 1:
		t := tasks[0]
		return t.run(p.scratchOf(t.plane), t.plane, t.arg)
	}
	p.start()
	queues := p.queues
	for w := range queues {
		p.errs[w] = nil
	}
	for _, t := range tasks {
		w := p.workerOf(t.plane)
		queues[w] = append(queues[w], t)
	}
	// Zero the queues on the way out so stale task closures (and the
	// per-call state they capture) don't stay reachable from the
	// pooled backing arrays until the next run.
	defer func() {
		for w := range queues {
			clear(queues[w])
			queues[w] = queues[w][:0]
		}
	}()
	var wg sync.WaitGroup
	for w, q := range queues {
		if len(q) == 0 {
			continue
		}
		wg.Add(1)
		p.chans[w] <- poolRun{tasks: q, wg: &wg}
	}
	wg.Wait()
	for _, err := range p.errs {
		if err != nil {
			return err
		}
	}
	return nil
}
