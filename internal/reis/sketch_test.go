package reis

import (
	"math"
	"sort"
	"testing"
	"time"

	"reis/internal/xrand"
)

// exactQuantile returns the ceil-rank q-quantile of a sorted sample —
// the same rank convention LatencySketch.Quantile uses, so the two are
// directly comparable.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// assertSketchWithin feeds samples into a fresh sketch and checks
// every probed quantile against the exact answer under the sketch's
// relative-error bound.
func assertSketchWithin(t *testing.T, label string, samples []time.Duration, alpha float64) {
	t.Helper()
	s := NewLatencySketch(alpha)
	for _, d := range samples {
		s.Observe(d)
	}
	if s.Count() != int64(len(samples)) {
		t.Fatalf("%s: count %d, want %d", label, s.Count(), len(samples))
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
		exact := exactQuantile(sorted, q)
		got := s.Quantile(q)
		if exact == 0 {
			if got != 0 {
				t.Errorf("%s q=%v: got %v, want 0", label, q, got)
			}
			continue
		}
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		// The bucket midpoint is within alpha of every value the
		// bucket can hold; the tiny epsilon absorbs float rounding in
		// the bucket index computation.
		if relErr > alpha+1e-9 {
			t.Errorf("%s q=%v: sketch %v vs exact %v (rel err %.4f > %.4f)",
				label, q, got, exact, relErr, alpha)
		}
	}
}

// TestSketchErrorBound checks the relative-accuracy guarantee on known
// distributions spanning several orders of magnitude.
func TestSketchErrorBound(t *testing.T) {
	const n = 10000
	rng := xrand.New(0xdd)
	uniform := make([]time.Duration, n)
	exponential := make([]time.Duration, n)
	lognormal := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		uniform[i] = time.Duration(1 + rng.Float64()*float64(10*time.Millisecond))
		exponential[i] = time.Duration(-math.Log(1-rng.Float64()) * float64(2*time.Millisecond))
		lognormal[i] = time.Duration(math.Exp(rng.NormFloat64()*1.5) * float64(time.Millisecond))
	}
	for _, alpha := range []float64{0.01, 0.05} {
		assertSketchWithin(t, "uniform", uniform, alpha)
		assertSketchWithin(t, "exponential", exponential, alpha)
		assertSketchWithin(t, "lognormal", lognormal, alpha)
	}
}

// TestSketchZeroAndEmpty pins the edge cases: empty sketches answer 0,
// and non-positive samples land in the zero bucket below every
// positive value.
func TestSketchZeroAndEmpty(t *testing.T) {
	s := NewLatencySketch(0.01)
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty sketch quantile = %v, want 0", got)
	}
	for i := 0; i < 60; i++ {
		s.Observe(0)
	}
	for i := 0; i < 40; i++ {
		s.Observe(time.Millisecond)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("p50 of 60%% zeros = %v, want 0", got)
	}
	if got := s.Quantile(0.9); got == 0 {
		t.Fatal("p90 of 40% 1ms samples = 0, want positive")
	}
}

// TestSketchMerge pins that merging two halves of a stream answers
// identically to observing the whole stream in one sketch.
func TestSketchMerge(t *testing.T) {
	rng := xrand.New(7)
	whole := NewLatencySketch(0.01)
	a := NewLatencySketch(0.01)
	b := NewLatencySketch(0.01)
	for i := 0; i < 5000; i++ {
		d := time.Duration(1 + rng.Float64()*float64(50*time.Millisecond))
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %v != whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if err := a.Merge(NewLatencySketch(0.05)); err == nil {
		t.Fatal("merging sketches of different accuracy should fail")
	}
}
