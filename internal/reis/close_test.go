package reis

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// Regression tests for teardown idempotency: Queue.Close and
// Engine.Close (and the sharded router's Close) must be safe to call
// repeatedly and concurrently, with open queues, blocked submitters
// and in-flight commands. Run under -race in CI.

func TestQueueDoubleClose(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitAsync(context.Background(), HostCommand{
		Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3,
	}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close error = %v, want ErrQueueClosed", err)
	}
}

func TestQueueConcurrentClose(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Keep the dispatcher busy while closers race.
	for i := 0; i < 4; i++ {
		if _, err := q.SubmitAsync(context.Background(), HostCommand{
			Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Close()
		}()
	}
	wg.Wait()
	// Pending commands completed (normally or with ErrQueueClosed) and
	// their completions are still consumable.
	q.Reap(0)
}

func TestEngineCloseWithOpenQueues(t *testing.T) {
	e, err := New(testCfg(), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Deploy(DeployConfig{
		ID: 1, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
	}); err != nil {
		t.Fatal(err)
	}
	q1, err := e.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.NewQueue(QueueConfig{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One queue already closed by its owner, one still open with a
	// pending command; engine close must handle both, twice, and
	// concurrently.
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.SubmitAsync(context.Background(), HostCommand{
		Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// New queue pairs and submissions are refused after close.
	if _, err := e.NewQueue(QueueConfig{}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("NewQueue after Close error = %v, want ErrQueueClosed", err)
	}
	if _, err := e.Submit(HostCommand{
		Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3,
	}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close error = %v, want ErrQueueClosed", err)
	}
}

// TestQueueCloseDeregisters: pairs closed by their owner leave the
// engine's registry, so long-lived engines do not accumulate dead
// queues (and engine close does not re-close them).
func TestQueueCloseDeregisters(t *testing.T) {
	e := newEngine(t, AllOptions())
	for i := 0; i < 8; i++ {
		q, err := e.NewQueue(QueueConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Close(); err != nil {
			t.Fatal(err)
		}
	}
	e.reg.mu.Lock()
	n := len(e.reg.queues)
	e.reg.mu.Unlock()
	if n != 0 {
		t.Fatalf("registry holds %d queues after all were closed", n)
	}
}

func TestShardedCloseIdempotent(t *testing.T) {
	sh, err := NewSharded(shardTestCfg(), 2, 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	deployBoth(t, sh.Submit)
	q, err := sh.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitAsync(context.Background(), HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[:1], K: 3, NProbe: 2,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.Close()
		}()
	}
	wg.Wait()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Submit(HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[:1], K: 3, NProbe: 2,
	}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close error = %v, want ErrQueueClosed", err)
	}
}

// TestSubmitAfterDefaultQueueClosed: closing the engine's built-in
// pair out from under it must not wedge Submit — a fresh default pair
// is established.
func TestSubmitAfterDefaultQueueClosed(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	cmd := HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3}
	if _, err := e.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	e.reg.mu.Lock()
	defq := e.reg.defq
	e.reg.mu.Unlock()
	if defq == nil {
		t.Fatal("no default queue after Submit")
	}
	if err := defq.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(cmd); err != nil {
		t.Fatalf("Submit after default queue closed: %v", err)
	}
}

// TestCloseRejectsUndispatchedMutations: mutations queued but not yet
// dispatched when the queue closes are rejected deterministically with
// ErrQueueClosed — never half-applied: the engine's state, journal and
// search results are untouched.
func TestCloseRejectsUndispatchedMutations(t *testing.T) {
	c := newMutCorpus()
	e, err := New(mutTestCfg(), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	resps := runMutScript(t, e, c, true, 0)
	before := resps[len(resps)-1].Results
	jlBefore := len(e.JournalBytes())
	db, err := e.DB(1)
	if err != nil {
		t.Fatal(err)
	}
	liveBefore := db.Live()

	q, err := e.NewQueue(QueueConfig{Depth: 8, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	q.pause()
	ctx := context.Background()
	a2 := c.assign[len(c.base)+len(c.batch1):]
	ids := make([]CommandID, 0, 3)
	for _, cmd := range []HostCommand{
		{Opcode: OpcodeAppend, DBID: 1, Append: &AppendConfig{Vectors: c.batch2, Docs: c.b2Docs, Assign: a2}},
		{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: []int{0}}},
		{Opcode: OpcodeCompact, DBID: 1, Compact: &CompactConfig{MinLiveRatio: 0.9}},
	} {
		id, err := q.SubmitAsync(ctx, cmd)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if _, err := q.Wait(ctx, id); !errors.Is(err, ErrQueueClosed) {
			t.Fatalf("queued mutation %d: error %v, want ErrQueueClosed", i, err)
		}
	}
	if got := len(e.JournalBytes()); got != jlBefore {
		t.Fatalf("rejected mutations reached the journal: %d bytes, want %d", got, jlBefore)
	}
	if got := db.Live(); got != liveBefore {
		t.Fatalf("rejected mutations changed Live(): %d, want %d", got, liveBefore)
	}
	after, err := e.Submit(HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries, K: 10, NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Results, before) {
		t.Fatal("rejected mutations changed search results")
	}
}

// TestCloseAbortsBackgroundGC: closing a queue with a compaction in
// flight aborts the flight at a step boundary — the original command
// completes with ErrQueueClosed, the rows already collected stay
// collected (every step commits a consistent state), searches are
// bit-identical to before, and a later compaction finishes the job.
func TestCloseAbortsBackgroundGC(t *testing.T) {
	c := newMutCorpus()
	e, err := New(gcRefCfg(1), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	resps := runMutScript(t, e, c, true, 0)
	before := resps[len(resps)-1].Results

	q, err := e.NewQueue(QueueConfig{Depth: 8, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	// After the first committed copy-forward step, freeze the
	// dispatcher (pause is a flag set, safe from the dispatcher's own
	// goroutine) so Close provably races a live flight.
	stepped := make(chan struct{}, 1)
	e.testGCStepHook = func() {
		q.pause()
		select {
		case stepped <- struct{}{}:
		default:
		}
	}
	ctx := context.Background()
	id, err := q.SubmitAsync(ctx, HostCommand{Opcode: OpcodeCompact, DBID: 1,
		Compact: &CompactConfig{MinLiveRatio: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	<-stepped
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	e.testGCStepHook = nil
	if _, err := q.Wait(ctx, id); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("in-flight compaction: error %v, want ErrQueueClosed", err)
	}
	after, _, err := e.IVFSearchBatch(1, testData.Queries, 10, SearchOptions{NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatal("aborted compaction left an inconsistent state")
	}
	wear, err := e.Compact(1, 0.9)
	if err != nil {
		t.Fatalf("compaction after aborted flight: %v", err)
	}
	if wear.CompactedRows == 0 {
		t.Fatalf("nothing left to collect: the aborted flight ran to completion, %+v", wear)
	}
	again, _, err := e.IVFSearchBatch(1, testData.Queries, 10, SearchOptions{NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, before) {
		t.Fatal("finishing compaction changed search results")
	}
}
