package reis

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// Regression tests for teardown idempotency: Queue.Close and
// Engine.Close (and the sharded router's Close) must be safe to call
// repeatedly and concurrently, with open queues, blocked submitters
// and in-flight commands. Run under -race in CI.

func TestQueueDoubleClose(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitAsync(context.Background(), HostCommand{
		Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3,
	}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close error = %v, want ErrQueueClosed", err)
	}
}

func TestQueueConcurrentClose(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Keep the dispatcher busy while closers race.
	for i := 0; i < 4; i++ {
		if _, err := q.SubmitAsync(context.Background(), HostCommand{
			Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Close()
		}()
	}
	wg.Wait()
	// Pending commands completed (normally or with ErrQueueClosed) and
	// their completions are still consumable.
	q.Reap(0)
}

func TestEngineCloseWithOpenQueues(t *testing.T) {
	e, err := New(testCfg(), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Deploy(DeployConfig{
		ID: 1, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
	}); err != nil {
		t.Fatal(err)
	}
	q1, err := e.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.NewQueue(QueueConfig{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One queue already closed by its owner, one still open with a
	// pending command; engine close must handle both, twice, and
	// concurrently.
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.SubmitAsync(context.Background(), HostCommand{
		Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// New queue pairs and submissions are refused after close.
	if _, err := e.NewQueue(QueueConfig{}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("NewQueue after Close error = %v, want ErrQueueClosed", err)
	}
	if _, err := e.Submit(HostCommand{
		Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3,
	}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close error = %v, want ErrQueueClosed", err)
	}
}

// TestQueueCloseDeregisters: pairs closed by their owner leave the
// engine's registry, so long-lived engines do not accumulate dead
// queues (and engine close does not re-close them).
func TestQueueCloseDeregisters(t *testing.T) {
	e := newEngine(t, AllOptions())
	for i := 0; i < 8; i++ {
		q, err := e.NewQueue(QueueConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Close(); err != nil {
			t.Fatal(err)
		}
	}
	e.reg.mu.Lock()
	n := len(e.reg.queues)
	e.reg.mu.Unlock()
	if n != 0 {
		t.Fatalf("registry holds %d queues after all were closed", n)
	}
}

func TestShardedCloseIdempotent(t *testing.T) {
	sh, err := NewSharded(shardTestCfg(), 2, 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	deployBoth(t, sh.Submit)
	q, err := sh.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitAsync(context.Background(), HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[:1], K: 3, NProbe: 2,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.Close()
		}()
	}
	wg.Wait()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Submit(HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[:1], K: 3, NProbe: 2,
	}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close error = %v, want ErrQueueClosed", err)
	}
}

// TestSubmitAfterDefaultQueueClosed: closing the engine's built-in
// pair out from under it must not wedge Submit — a fresh default pair
// is established.
func TestSubmitAfterDefaultQueueClosed(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	cmd := HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3}
	if _, err := e.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	e.reg.mu.Lock()
	defq := e.reg.defq
	e.reg.mu.Unlock()
	if defq == nil {
		t.Fatal("no default queue after Submit")
	}
	if err := defq.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(cmd); err != nil {
		t.Fatalf("Submit after default queue closed: %v", err)
	}
}
