package reis

import (
	"runtime"
	"testing"
	"time"
)

// TestPoissonArrivalsDeterministic pins the arrival schedule: sorted,
// seed-reproducible, and with the configured mean rate to within a few
// percent over a long stream.
func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(4096, 1000, 0x5eed)
	b := PoissonArrivals(4096, 1000, 0x5eed)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across runs: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not sorted at %d: %v < %v", i, a[i], a[i-1])
		}
	}
	if c := PoissonArrivals(4096, 1000, 1); c[4095] == a[4095] {
		t.Fatal("different seeds produced the same schedule")
	}
	mean := a[len(a)-1].Seconds() / float64(len(a))
	if mean < 0.0009 || mean > 0.0011 {
		t.Fatalf("mean interarrival %.6fs, want ~0.001s", mean)
	}
}

// TestSimulateLoadShape checks the queueing model against behaviour
// that must hold for any work-conserving single server: a slow trickle
// sees bare service time with no coalescing, and a saturating rate
// drives MeanBatch toward the depth bound while tails stretch.
func TestSimulateLoadShape(t *testing.T) {
	const service = time.Millisecond
	cost := func(first, n int) time.Duration { return time.Duration(n) * service }
	// 100/s against a 1000/s server: essentially no queueing.
	trickle := SimulateLoad(PoissonArrivals(512, 100, 1), 8, cost, 0.01)
	if trickle.MeanBatch > 1.2 {
		t.Fatalf("trickle coalesced %.2f commands/dispatch, want ~1", trickle.MeanBatch)
	}
	if trickle.P50 > 2*service {
		t.Fatalf("trickle p50 %v, want ~%v", trickle.P50, service)
	}
	// 5000/s against the same server: overload — the backlog grows and
	// dispatches run at the coalescing bound.
	overload := SimulateLoad(PoissonArrivals(512, 5000, 1), 8, cost, 0.01)
	if overload.MeanBatch < 6 {
		t.Fatalf("overload coalesced %.2f commands/dispatch, want near depth 8", overload.MeanBatch)
	}
	if overload.P99 <= trickle.P99 {
		t.Fatalf("overload p99 %v not above trickle p99 %v", overload.P99, trickle.P99)
	}
	if overload.MaxBacklog <= 8 {
		t.Fatalf("overload max backlog %d, want > depth", overload.MaxBacklog)
	}
}

// runLoadOnce builds a fresh engine + IVF deployment and runs one
// fixed load configuration against it.
func runLoadOnce(t *testing.T) LoadResult {
	t.Helper()
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	res, err := e.RunLoad(HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries, K: 10, NProbe: 4,
	}, Scale{Fine: 100, Coarse: 10, SurvivorRate: 0.01}, LoadConfig{
		Utilization: 0.8, Commands: 96, Depth: 8, Seed: 0x10ad,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunLoadDeterministicAcrossGOMAXPROCS pins the SLO sweep's
// determinism contract: the load generator's quantiles, rates and
// batch shape are bit-identical across repeated runs at GOMAXPROCS 1
// and 4, because per-command device stats are independent of queue
// scheduling and the replay is a pure function of the seeded schedule.
func TestRunLoadDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ref := runLoadOnce(t)
	if ref.Commands != 96 || ref.Sketch.Count() != 96 {
		t.Fatalf("served %d commands, sketch saw %d, want 96", ref.Commands, ref.Sketch.Count())
	}
	if ref.P50 <= 0 || ref.P99 < ref.P95 || ref.P95 < ref.P50 {
		t.Fatalf("implausible quantiles: p50 %v p95 %v p99 %v", ref.P50, ref.P95, ref.P99)
	}
	if ref.Rate <= 0 || ref.SaturationQPS <= 0 || ref.Rate >= ref.SaturationQPS {
		t.Fatalf("rate %v should sit below saturation %v", ref.Rate, ref.SaturationQPS)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 2; rep++ {
			got := runLoadOnce(t)
			ref.Sketch, got.Sketch = nil, nil
			if got != ref {
				t.Fatalf("GOMAXPROCS=%d rep=%d: load result diverged:\nwant %+v\ngot  %+v",
					procs, rep, ref, got)
			}
		}
	}
}

// TestShardedRunLoadMatchesShape pins the sharded load generator: the
// run completes with per-shard costing and reports the same command
// count and a deterministic result across repeats.
func TestShardedRunLoadMatchesShape(t *testing.T) {
	run := func() LoadResult {
		sh := newSharded(t, 2)
		deployBoth(t, sh.Submit)
		res, err := sh.RunLoad(HostCommand{
			Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries, K: 10, NProbe: 4,
		}, Scale{Fine: 100, Coarse: 10, SurvivorRate: 0.01}, LoadConfig{
			Utilization: 0.8, Commands: 64, Depth: 4, Seed: 0x10ad,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Commands != 64 || a.P99 <= 0 {
		t.Fatalf("implausible sharded load result: %+v", a)
	}
	a.Sketch, b.Sketch = nil, nil
	if a != b {
		t.Fatalf("sharded load result diverged:\nwant %+v\ngot  %+v", a, b)
	}
}

// TestRunLoadValidation pins the config errors: no pacing information
// and an unknown database both fail fast.
func TestRunLoadValidation(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	cmd := HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries, K: 10, NProbe: 4}
	if _, err := e.RunLoad(cmd, UnitScale(), LoadConfig{}); err == nil {
		t.Fatal("want error for a config with neither Rate nor Utilization")
	}
	bad := cmd
	bad.DBID = 99
	if _, err := e.RunLoad(bad, UnitScale(), LoadConfig{Rate: 100}); err == nil {
		t.Fatal("want error for unknown database")
	}
}
