package reis

import (
	"context"
	"errors"
	"testing"
)

// TestHostCommandValidationSentinels pins every sentinel-error path of
// the host-side command validation, through both the synchronous
// Submit wrapper and SubmitAsync admission, on both the single-device
// engine and the sharded router (validation is shared, so the same
// command fails identically on either host).
func TestHostCommandValidationSentinels(t *testing.T) {
	queries := testData.Queries[:2]
	raggedQueries := [][]float32{testData.Queries[0], make([]float32, 7)}
	cases := []struct {
		name string
		cmd  HostCommand
		want error
	}{
		{"unknown-opcode", HostCommand{Opcode: 0x42}, ErrUnknownOpcode},
		{"unknown-opcode-zero", HostCommand{}, ErrUnknownOpcode},
		{"deploy-missing-payload", HostCommand{Opcode: OpcodeDBDeploy}, ErrMissingPayload},
		{"ivf-deploy-missing-payload", HostCommand{Opcode: OpcodeIVFDeploy}, ErrMissingPayload},
		{"search-no-queries", HostCommand{Opcode: OpcodeSearch, DBID: 1, K: 5}, ErrNoQueries},
		{"ivf-search-no-queries", HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, K: 5}, ErrNoQueries},
		{"search-bad-k", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries}, ErrBadK},
		{"search-negative-k", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries, K: -3}, ErrBadK},
		{"ivf-search-bad-k", HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, Queries: queries, K: 0}, ErrBadK},
		{"search-ragged-dims", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: raggedQueries, K: 5}, ErrQueryDims},
		{"ivf-search-ragged-dims", HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, Queries: raggedQueries, K: 5}, ErrQueryDims},
		{"scan-missing-payload", HostCommand{Opcode: OpcodeScan, DBID: 1, Queries: queries}, ErrMissingPayload},
		{"scan-no-queries", HostCommand{Opcode: OpcodeScan, DBID: 1, Scan: &ScanConfig{}}, ErrNoQueries},
		{"scan-segs-mismatch", HostCommand{Opcode: OpcodeScan, DBID: 1, Queries: queries,
			Scan: &ScanConfig{Segs: make([][]SlotRange, 1)}}, ErrMissingPayload},
		{"scan-ragged-dims", HostCommand{Opcode: OpcodeScan, DBID: 1, Queries: raggedQueries,
			Scan: &ScanConfig{Segs: make([][]SlotRange, 2)}}, ErrQueryDims},
		{"scan-negative-range", HostCommand{Opcode: OpcodeScan, DBID: 1, Queries: queries[:1],
			Scan: &ScanConfig{Segs: [][]SlotRange{{{First: -5, Last: 10}}}}}, ErrBadScanRange},
		{"append-missing-payload", HostCommand{Opcode: OpcodeAppend, DBID: 1}, ErrMissingPayload},
		{"append-no-items", HostCommand{Opcode: OpcodeAppend, DBID: 1, Append: &AppendConfig{}}, ErrNoItems},
		{"append-docs-mismatch", HostCommand{Opcode: OpcodeAppend, DBID: 1,
			Append: &AppendConfig{Vectors: queries}}, ErrMissingPayload},
		{"append-tags-mismatch", HostCommand{Opcode: OpcodeAppend, DBID: 1,
			Append: &AppendConfig{Vectors: queries[:1], Docs: [][]byte{{1}}, MetaTags: []uint8{1, 2}}}, ErrMissingPayload},
		{"append-ragged-dims", HostCommand{Opcode: OpcodeAppend, DBID: 1,
			Append: &AppendConfig{Vectors: raggedQueries, Docs: [][]byte{{1}, {2}}}}, ErrQueryDims},
		{"delete-missing-payload", HostCommand{Opcode: OpcodeDelete, DBID: 1}, ErrMissingPayload},
		{"delete-no-items", HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{}}, ErrNoItems},
		{"delete-negative-id", HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: []int{3, -1}}}, ErrUnknownID},
		{"compact-missing-payload", HostCommand{Opcode: OpcodeCompact, DBID: 1}, ErrMissingPayload},
		{"compact-bad-threshold", HostCommand{Opcode: OpcodeCompact, DBID: 1,
			Compact: &CompactConfig{MinLiveRatio: -0.1}}, ErrBadThreshold},
	}

	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	sh := newSharded(t, 2)
	if _, err := sh.Submit(HostCommand{Opcode: OpcodeDBDeploy, Deploy: &DeployConfig{
		ID: 1, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
	}}); err != nil {
		t.Fatal(err)
	}
	hosts := []struct {
		name   string
		submit func(HostCommand) (HostResponse, error)
		queue  func() (*Queue, error)
	}{
		{"engine", e.Submit, func() (*Queue, error) { return e.NewQueue(QueueConfig{}) }},
		{"sharded", sh.Submit, func() (*Queue, error) { return sh.NewQueue(QueueConfig{}) }},
	}
	for _, h := range hosts {
		q, err := h.queue()
		if err != nil {
			t.Fatal(err)
		}
		defer q.Close()
		for _, tc := range cases {
			if _, err := h.submit(tc.cmd); !errors.Is(err, tc.want) {
				t.Errorf("%s/%s: Submit error = %v, want %v", h.name, tc.name, err, tc.want)
			}
			if _, err := q.SubmitAsync(context.Background(), tc.cmd); !errors.Is(err, tc.want) {
				t.Errorf("%s/%s: SubmitAsync error = %v, want %v", h.name, tc.name, err, tc.want)
			}
		}
	}
}

// TestScanRangeBounds: an OpcodeScan segment reaching beyond the
// addressed region is rejected at execution with ErrBadScanRange
// (never silently clamped), while the empty sentinel and exact-bound
// ranges pass.
func TestScanRangeBounds(t *testing.T) {
	e := newEngine(t, AllOptions())
	db := deployFlat(t, e, 1)
	mk := func(first, last int) HostCommand {
		return HostCommand{Opcode: OpcodeScan, DBID: 1, Queries: testData.Queries[:1],
			Scan: &ScanConfig{Segs: [][]SlotRange{{{First: first, Last: last}}}}}
	}
	if _, err := e.Submit(mk(0, db.regionSlots)); !errors.Is(err, ErrBadScanRange) {
		t.Fatalf("over-region scan error = %v, want ErrBadScanRange", err)
	}
	resp, err := e.Submit(mk(0, db.regionSlots-1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.EntriesScanned != db.N {
		t.Fatalf("full scan checked %d entries, want %d", resp.Stats.EntriesScanned, db.N)
	}
	if resp, err = e.Submit(mk(0, -1)); err != nil {
		t.Fatalf("empty sentinel rejected: %v", err)
	} else if resp.Stats.EntriesScanned != 0 {
		t.Fatalf("empty sentinel scanned %d entries", resp.Stats.EntriesScanned)
	}
}

// TestNotCalibratedSentinel: a TargetRecall operand with no covering
// calibration fails with ErrNotCalibrated (resolution happens at
// execution, not admission); after CalibrateNProbe the same command
// succeeds. Covered on both hosts.
func TestNotCalibratedSentinel(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	cmd := HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[:2], K: 10, TargetRecall: 0.9}
	if _, err := e.Submit(cmd); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("uncalibrated TargetRecall error = %v, want ErrNotCalibrated", err)
	}
	if _, err := e.CalibrateNProbe(1, testData.Queries, testData.GroundTruth, 10, 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(cmd); err != nil {
		t.Fatalf("calibrated TargetRecall failed: %v", err)
	}
	// A tighter target than anything calibrated still fails.
	tight := cmd
	tight.TargetRecall = 0.999
	if _, err := e.Submit(tight); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("uncovered TargetRecall error = %v, want ErrNotCalibrated", err)
	}

	sh := newSharded(t, 2)
	deployBoth(t, sh.Submit)
	shCmd := cmd
	shCmd.DBID = 2
	if _, err := sh.Submit(shCmd); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("sharded uncalibrated TargetRecall error = %v, want ErrNotCalibrated", err)
	}
}

// TestQueueFullSentinel: admission control rejects deterministically
// beyond the configured depth and frees slots as completions are
// consumed.
func TestQueueFullSentinel(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.pause()
	cmd := HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3}
	for i := 0; i < 2; i++ {
		if _, err := q.SubmitAsync(context.Background(), cmd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.SubmitAsync(context.Background(), cmd); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submission error = %v, want ErrQueueFull", err)
	}
	if st := q.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	q.resume()
}
