package reis

import (
	"testing"
)

func buildTimeSeries(t *testing.T) (*Engine, *TimeSeriesDB, int) {
	t.Helper()
	e := newEngine(t, AllOptions())
	ts := NewTimeSeriesDB(e, 10)
	// Three hourly snapshots, each a disjoint third of the corpus.
	third := testData.Len() / 3
	for i := 0; i < 3; i++ {
		lo, hi := i*third, (i+1)*third
		err := ts.AddSnapshot(int64(1000+i*3600), DeployConfig{
			Vectors: testData.Vectors[lo:hi], Docs: testData.Docs[lo:hi], DocSlotBytes: 256,
		}, lo)
		if err != nil {
			t.Fatal(err)
		}
	}
	return e, ts, third
}

func TestTimeSeriesSnapshotCount(t *testing.T) {
	_, ts, _ := buildTimeSeries(t)
	if ts.Snapshots() != 3 {
		t.Fatalf("snapshots = %d", ts.Snapshots())
	}
	if ts.DRAMFootprint() != 36 {
		t.Fatalf("footprint = %d", ts.DRAMFootprint())
	}
}

func TestTimeSeriesRejectsNonMonotonic(t *testing.T) {
	_, ts, _ := buildTimeSeries(t)
	err := ts.AddSnapshot(500, DeployConfig{
		Vectors: testData.Vectors[:10], Docs: testData.Docs[:10], DocSlotBytes: 256,
	}, 0)
	if err == nil {
		t.Fatal("non-monotonic timestamp accepted")
	}
}

func TestTimeSeriesWindowRestrictsResults(t *testing.T) {
	_, ts, third := buildTimeSeries(t)
	q := testData.Queries[0]
	// Window covering only the second snapshot: all result ids must be
	// from [third, 2*third).
	res, _, err := ts.SearchWindow(q, 5, 1000+3600, 1000+3600, SearchOptions{SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res {
		if r.ID < third || r.ID >= 2*third {
			t.Fatalf("result id %d outside snapshot window", r.ID)
		}
	}
}

func TestTimeSeriesFullWindowMatchesGlobalSearch(t *testing.T) {
	// Searching all snapshots should approximate a single database
	// over the union (same BQ+rerank function, merged top-k).
	e, ts, _ := buildTimeSeries(t)
	full := testData.Len() / 3 * 3
	if _, err := e.Deploy(DeployConfig{
		ID: 99, Vectors: testData.Vectors[:full], Docs: testData.Docs[:full], DocSlotBytes: 256,
	}); err != nil {
		t.Fatal(err)
	}
	for qi, q := range testData.Queries[:6] {
		windowed, _, err := ts.SearchWindow(q, 10, 0, 1<<62, SearchOptions{SkipDocs: true})
		if err != nil {
			t.Fatal(err)
		}
		global, _, err := e.Search(99, q, 10, SearchOptions{SkipDocs: true})
		if err != nil {
			t.Fatal(err)
		}
		gids := map[int]bool{}
		for _, r := range global {
			gids[r.ID] = true
		}
		match := 0
		for _, r := range windowed {
			if gids[r.ID] {
				match++
			}
		}
		if match < 8 {
			t.Fatalf("query %d: windowed union matches global on only %d/10", qi, match)
		}
	}
}

func TestTimeSeriesEmptyWindowErrors(t *testing.T) {
	_, ts, _ := buildTimeSeries(t)
	if _, _, err := ts.SearchWindow(testData.Queries[0], 5, 0, 10, SearchOptions{}); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestTimeSeriesStatsAggregate(t *testing.T) {
	_, ts, _ := buildTimeSeries(t)
	_, st, err := ts.SearchWindow(testData.Queries[0], 5, 0, 1<<62, SearchOptions{SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	// Three sub-databases searched: three full IBC broadcasts.
	if st.IBCBroadcasts == 0 || st.FinePages == 0 {
		t.Fatalf("stats not aggregated: %+v", st)
	}
}
