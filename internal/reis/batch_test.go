package reis

import (
	"bytes"
	"testing"
)

// assertSameResults fails unless batch results equal per-query
// sequential results bit for bit (IDs, distances, document bytes).
func assertSameResults(t *testing.T, mode string, seq, batch [][]DocResult) {
	t.Helper()
	if len(seq) != len(batch) {
		t.Fatalf("%s: %d batch results for %d queries", mode, len(batch), len(seq))
	}
	for qi := range seq {
		if len(seq[qi]) != len(batch[qi]) {
			t.Fatalf("%s query %d: %d results, sequential %d", mode, qi, len(batch[qi]), len(seq[qi]))
		}
		for i := range seq[qi] {
			s, b := seq[qi][i], batch[qi][i]
			if s.ID != b.ID || s.Dist != b.Dist || !bytes.Equal(s.Doc, b.Doc) {
				t.Fatalf("%s query %d result %d differs: seq{id=%d dist=%v} batch{id=%d dist=%v}",
					mode, qi, i, s.ID, s.Dist, b.ID, b.Dist)
			}
		}
	}
}

func TestSearchBatchMatchesSequentialFlat(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	queries := testData.Queries
	opt := SearchOptions{}

	seq := make([][]DocResult, len(queries))
	seqStats := make([]QueryStats, len(queries))
	for qi, q := range queries {
		res, st, err := e.Search(1, q, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		seq[qi], seqStats[qi] = res, st
	}
	batch, sts, err := e.SearchBatch(1, queries, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "flat", seq, batch)

	// Device event counts must match the sequential path stage for
	// stage; only the broadcast count may differ (the batch skips
	// planes that scan nothing).
	for qi := range queries {
		s, b := seqStats[qi], sts[qi]
		if s.FineWaves != b.FineWaves || s.FinePages != b.FinePages ||
			s.EntriesScanned != b.EntriesScanned || s.Survivors != b.Survivors ||
			s.TTLBytes != b.TTLBytes || s.RerankCount != b.RerankCount ||
			s.DocPages != b.DocPages || s.DocBytes != b.DocBytes ||
			s.SelectInput != b.SelectInput || s.SortedEntries != b.SortedEntries {
			t.Fatalf("query %d stats diverge: seq %+v batch %+v", qi, s, b)
		}
		if b.IBCBroadcasts > s.IBCBroadcasts {
			t.Fatalf("query %d: batch broadcast %d planes, sequential only %d",
				qi, b.IBCBroadcasts, s.IBCBroadcasts)
		}
	}
}

func TestSearchBatchMatchesSequentialFiltered(t *testing.T) {
	e := newEngine(t, AllOptions())
	tags := make([]uint8, testData.Len())
	for i := range tags {
		tags[i] = uint8(testData.ClusterOf[i] % 4)
	}
	if _, err := e.Deploy(DeployConfig{
		ID: 1, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
		MetaTags: tags,
	}); err != nil {
		t.Fatal(err)
	}
	want := tags[testData.GroundTruth[0][0]]
	opt := SearchOptions{MetaTag: &want, SkipDocs: true}
	queries := testData.Queries[:8]

	seq := make([][]DocResult, len(queries))
	for qi, q := range queries {
		res, _, err := e.Search(1, q, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		seq[qi] = res
	}
	batch, _, err := e.SearchBatch(1, queries, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "filtered", seq, batch)
	for qi := range batch {
		for _, r := range batch[qi] {
			if tags[r.ID] != want {
				t.Fatalf("query %d returned tag %d, want %d", qi, tags[r.ID], want)
			}
		}
	}
}

func TestIVFSearchBatchMatchesSequential(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	queries := testData.Queries
	for _, nprobe := range []int{1, 4} {
		opt := SearchOptions{NProbe: nprobe}
		seq := make([][]DocResult, len(queries))
		seqStats := make([]QueryStats, len(queries))
		for qi, q := range queries {
			res, st, err := e.IVFSearch(1, q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			seq[qi], seqStats[qi] = res, st
		}
		batch, sts, err := e.IVFSearchBatch(1, queries, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "ivf", seq, batch)
		for qi := range queries {
			s, b := seqStats[qi], sts[qi]
			if s.CoarseWaves != b.CoarseWaves || s.CoarsePages != b.CoarsePages ||
				s.CoarseEntries != b.CoarseEntries || s.FineWaves != b.FineWaves ||
				s.FinePages != b.FinePages || s.EntriesScanned != b.EntriesScanned ||
				s.Survivors != b.Survivors || s.RerankCount != b.RerankCount {
				t.Fatalf("nprobe=%d query %d stats diverge:\nseq   %+v\nbatch %+v", nprobe, qi, s, b)
			}
		}
	}
}

func TestSearchBatchDeterministic(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	opt := SearchOptions{NProbe: 4}
	a, ast, err := e.IVFSearchBatch(1, testData.Queries, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, bst, err := e.IVFSearchBatch(1, testData.Queries, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "repeat", a, b)
	for qi := range ast {
		if ast[qi] != bst[qi] {
			t.Fatalf("query %d stats changed across identical batches", qi)
		}
	}
}

func TestSearchBatchValidation(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	if _, _, err := e.SearchBatch(1, nil, 10, SearchOptions{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := e.SearchBatch(99, testData.Queries[:1], 10, SearchOptions{}); err == nil {
		t.Fatal("unknown database accepted")
	}
	if _, _, err := e.SearchBatch(1, [][]float32{make([]float32, 7)}, 10, SearchOptions{}); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
	if _, _, err := e.IVFSearchBatch(1, testData.Queries[:1], 10, SearchOptions{}); err == nil {
		t.Fatal("IVF batch on flat database accepted")
	}
}

func TestBatchLatencyOverlap(t *testing.T) {
	e := newEngine(t, AllOptions())
	db := deployIVF(t, e, 1, 16)
	_, sts, err := e.IVFSearchBatch(1, testData.Queries, 10, SearchOptions{NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := e.BatchLatency(db, sts, UnitScale())
	if b.Queries != len(sts) {
		t.Fatalf("Queries = %d", b.Queries)
	}
	if b.Makespan <= 0 || b.Serial <= 0 {
		t.Fatalf("non-positive times: %+v", b)
	}
	if b.Makespan > b.Serial {
		t.Fatalf("batch makespan %v exceeds serial %v", b.Makespan, b.Serial)
	}
	for _, busy := range []struct {
		name string
		d    float64
	}{{"plane", b.PlaneBusy.Seconds()}, {"channel", b.ChannelBusy.Seconds()}, {"core", b.CoreBusy.Seconds()}} {
		if busy.d > b.Makespan.Seconds() {
			t.Fatalf("%s busy exceeds makespan: %+v", busy.name, b)
		}
	}
	serialQPS := float64(b.Queries) / b.Serial.Seconds()
	if b.QPS < serialQPS {
		t.Fatalf("batch QPS %.1f below serial %.1f", b.QPS, serialQPS)
	}
	if b.EnergyJ <= 0 {
		t.Fatalf("non-positive energy: %v", b.EnergyJ)
	}
}
