package reis

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"reis/internal/ssd"
)

// The background-GC tests need a corpus that spans MANY erase rows:
// under shardTestCfg the whole mutation corpus fits inside a single GC
// row (8 global planes x 16 pages per block = 128 row pages), so a
// compaction is one copy-forward step and nothing can interleave.
// gcTestCfg shrinks the block shape instead — two pages per block, two
// planes per single-die, single-channel device — so a GC row is 4n
// pages on an n-shard topology and the mutation corpus spreads across
// a dozen-plus victim rows.
func gcTestCfg() ssd.Config {
	cfg := shardTestCfg()
	cfg.Geo.Channels = 1
	cfg.Geo.DiesPerChannel = 1
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 256
	cfg.Geo.PagesPerBlock = 2
	cfg.Geo.PageBytes = 2048
	cfg.Geo.OOBBytes = 189 // 21 embedding slots per page (OOB-bound)
	cfg.OverprovisionPct = 200
	return cfg
}

// gcRefCfg is the single-device equivalent of n shards of gcTestCfg.
func gcRefCfg(n int) ssd.Config {
	cfg := gcTestCfg()
	cfg.Geo.Channels *= n
	return cfg
}

// TestBackgroundGCInterleavedSearches is TestCompactPreservesResults
// extended into an interleaving test, on a layout where compaction
// takes many copy-forward steps: after every committed step of a
// background compaction, a search issued between steps must be
// bit-identical to the never-compacted state AND to the fully
// compacted state — on flat and IVF databases, across 1/2/4 shards —
// with no quiesce anywhere in the mutation API.
func TestBackgroundGCInterleavedSearches(t *testing.T) {
	c := newMutCorpus()
	for _, ivf := range []bool{false, true} {
		name := "flat"
		if ivf {
			name = "ivf"
		}
		t.Run(name, func(t *testing.T) {
			for _, n := range shardCounts {
				t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
					var h submitter
					var setHook func(func())
					var direct func() ([][]DocResult, error)
					if n == 1 {
						e, err := New(gcRefCfg(1), 64<<20, AllOptions())
						if err != nil {
							t.Fatal(err)
						}
						t.Cleanup(func() { e.Close() })
						h = e
						setHook = func(fn func()) { e.testGCStepHook = fn }
						direct = func() ([][]DocResult, error) {
							if ivf {
								r, _, err := e.IVFSearchBatch(1, testData.Queries, 10, SearchOptions{NProbe: 4})
								return r, err
							}
							r, _, err := e.SearchBatch(1, testData.Queries, 10, SearchOptions{})
							return r, err
						}
					} else {
						sh, err := NewSharded(gcTestCfg(), n, 64<<20, AllOptions())
						if err != nil {
							t.Fatal(err)
						}
						t.Cleanup(func() { sh.Close() })
						h = sh
						setHook = func(fn func()) { sh.testGCStepHook = fn }
						direct = func() ([][]DocResult, error) {
							if ivf {
								r, _, err := sh.IVFSearchBatch(1, testData.Queries, 10, SearchOptions{NProbe: 4})
								return r, err
							}
							r, _, err := sh.SearchBatch(1, testData.Queries, 10, SearchOptions{})
							return r, err
						}
					}

					resps := runMutScript(t, h, c, ivf, 0)
					want := resps[len(resps)-1].Results

					// The hook runs on the dispatcher goroutine right after
					// each copy-forward step commits; the direct search path
					// (not Submit — that would feed the queue we are inside
					// of) observes the intermediate remapped state.
					var steps [][][]DocResult
					setHook(func() {
						r, err := direct()
						if err != nil {
							t.Errorf("mid-GC search: %v", err)
						}
						steps = append(steps, r)
					})
					resp, err := h.Submit(HostCommand{Opcode: OpcodeCompact, DBID: 1,
						Compact: &CompactConfig{MinLiveRatio: 0.9}})
					setHook(nil)
					if err != nil {
						t.Fatal(err)
					}
					if resp.Wear.CompactedRows < 2 {
						t.Fatalf("compaction took %d steps; the interleaving test needs >= 2", resp.Wear.CompactedRows)
					}
					if len(steps) != resp.Wear.CompactedRows {
						t.Fatalf("hook ran %d times for %d compacted rows", len(steps), resp.Wear.CompactedRows)
					}
					for i, s := range steps {
						if !reflect.DeepEqual(s, want) {
							t.Fatalf("search after GC step %d/%d differs from the never-compacted state", i+1, len(steps))
						}
					}
					after, err := direct()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(after, want) {
						t.Fatal("fully compacted state differs from the never-compacted state")
					}
					again, err := h.Submit(HostCommand{Opcode: OpcodeCompact, DBID: 1,
						Compact: &CompactConfig{MinLiveRatio: 0.9}})
					if err != nil {
						t.Fatal(err)
					}
					if again.Wear.CompactedRows != 0 || again.Wear.BlockErases != 0 || again.Wear.PagesProgrammed != 0 {
						t.Fatalf("second compaction was not a no-op: %+v", again.Wear)
					}
				})
			}
		})
	}
}

// TestBackgroundGCInterleavesWithSearches pins the queue-level
// behaviour: a compaction submitted to an explicit queue pair is
// arbitrated against foreground searches by the stride scheduler, so
// searches COMPLETE while the compaction is still in flight (the GC
// never monopolizes the dispatcher), and their results match the
// pre-compaction state.
func TestBackgroundGCInterleavesWithSearches(t *testing.T) {
	c := newMutCorpus()
	e, err := New(gcRefCfg(1), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	resps := runMutScript(t, e, c, true, 0)
	want := resps[len(resps)-1].Results

	const nSearch = 3
	var mu sync.Mutex
	var order []CommandID
	comps := map[CommandID]Completion{}
	done := make(chan struct{})
	q, err := e.NewQueue(QueueConfig{Depth: 16, NoCoalesce: true, OnComplete: func(cp Completion) {
		mu.Lock()
		order = append(order, cp.ID)
		comps[cp.ID] = cp
		n := len(order)
		mu.Unlock()
		if n == nSearch+1 {
			close(done)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })

	// Pause so the admission order is fixed before dispatch begins:
	// the compaction first, then the searches it must not starve.
	q.pause()
	ctx := context.Background()
	compID, err := q.SubmitAsync(ctx, HostCommand{Opcode: OpcodeCompact, DBID: 1,
		Compact: &CompactConfig{MinLiveRatio: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	searchIDs := make([]CommandID, nSearch)
	for i := range searchIDs {
		searchIDs[i], err = q.SubmitAsync(ctx, HostCommand{
			Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries, K: 10, NProbe: 4})
		if err != nil {
			t.Fatal(err)
		}
	}
	q.resume()
	<-done

	idxOf := func(id CommandID) int {
		for i, x := range order {
			if x == id {
				return i
			}
		}
		return -1
	}
	comp := comps[compID]
	if comp.Err != nil {
		t.Fatalf("compaction: %v", comp.Err)
	}
	if comp.Resp.Wear.CompactedRows < 2 {
		t.Fatalf("compaction took %d steps; need >= 2 for an interleaving test", comp.Resp.Wear.CompactedRows)
	}
	for i, id := range searchIDs {
		cp := comps[id]
		if cp.Err != nil {
			t.Fatalf("search %d: %v", i, cp.Err)
		}
		if !reflect.DeepEqual(cp.Resp.Results, want) {
			t.Fatalf("search %d results differ from the pre-compaction state", i)
		}
	}
	if idxOf(searchIDs[0]) > idxOf(compID) {
		t.Fatalf("no search completed before the background compaction (completion order %v, compact %d)", order, compID)
	}
}

// TestGCHoldsBackMutationsDuringFlight: a mutation on a database with
// a compaction in flight is held back until the flight retires — the
// journal order equals the application order — while searches keep
// flowing. No quiesce call exists; the ordering is the scheduler's.
func TestGCHoldsBackMutationsDuringFlight(t *testing.T) {
	c := newMutCorpus()
	e, err := New(gcRefCfg(1), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	runMutScript(t, e, c, true, 0)
	jlBefore := len(e.JournalBytes())

	var mu sync.Mutex
	var order []CommandID
	comps := map[CommandID]Completion{}
	done := make(chan struct{})
	q, err := e.NewQueue(QueueConfig{Depth: 16, NoCoalesce: true, OnComplete: func(cp Completion) {
		mu.Lock()
		order = append(order, cp.ID)
		comps[cp.ID] = cp
		n := len(order)
		mu.Unlock()
		if n == 3 {
			close(done)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })

	a2 := c.assign[len(c.base)+len(c.batch1):]
	q.pause()
	ctx := context.Background()
	compID, err := q.SubmitAsync(ctx, HostCommand{Opcode: OpcodeCompact, DBID: 1,
		Compact: &CompactConfig{MinLiveRatio: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	appID, err := q.SubmitAsync(ctx, HostCommand{Opcode: OpcodeAppend, DBID: 1,
		Append: &AppendConfig{Vectors: c.batch2, Docs: c.b2Docs, Assign: a2}})
	if err != nil {
		t.Fatal(err)
	}
	srchID, err := q.SubmitAsync(ctx, HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[:4], K: 10, NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	q.resume()
	<-done

	for id, what := range map[CommandID]string{compID: "compact", appID: "append", srchID: "search"} {
		if cp := comps[id]; cp.Err != nil {
			t.Fatalf("%s: %v", what, cp.Err)
		}
	}
	idxOf := func(id CommandID) int {
		for i, x := range order {
			if x == id {
				return i
			}
		}
		return -1
	}
	if idxOf(appID) < idxOf(compID) {
		t.Fatalf("append completed before the in-flight compaction (order %v)", order)
	}

	// Journal order == application order: the compaction record lands
	// at the pre-existing tail, the held-back append after it.
	jl := e.JournalBytes()
	offs, err := journalOffsets(jl)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 6 {
		t.Fatalf("journal has %d records, want 5", len(offs)-1)
	}
	if offs[3] != jlBefore {
		t.Fatalf("compaction journaled at offset %d, want the pre-flight tail %d", offs[3], jlBefore)
	}
	if jl[offs[3]] != OpcodeCompact || jl[offs[4]] != OpcodeAppend {
		t.Fatalf("journal tail opcodes %#x,%#x; want compact,append", jl[offs[3]], jl[offs[4]])
	}
}

// runChurn drives an append/delete/compact churn workload against a
// flat database: each round tombstones a fresh slice of the base and
// the whole previous round's batch, compacts, and appends a new batch.
// The logical tail grows past the planned region capacity, so it only
// survives because freed GC rows are recycled into subsequent appends.
func runChurn(t *testing.T, e *Engine, rounds, batch int) WearStats {
	t.Helper()
	base := testData.Vectors[:900]
	baseDocs := testData.Docs[:900]
	pool := scaleInto(testData.Vectors[900:], maxAbs(base))
	poolDocs := testData.Docs[900:]
	if _, err := e.Submit(HostCommand{Opcode: OpcodeDBDeploy, Deploy: &DeployConfig{
		ID: 1, Vectors: base, Docs: baseDocs, DocSlotBytes: 256,
	}}); err != nil {
		t.Fatal(err)
	}
	var acc WearStats
	var prev []int
	at := 0
	for r := 0; r < rounds; r++ {
		// Tombstone 15 consecutive base entries (their row drops below
		// the live threshold, forcing survivor relocation) plus the
		// whole previous batch.
		del := make([]int, 0, 15+len(prev))
		for id := r * 30; id < r*30+15; id++ {
			del = append(del, id)
		}
		del = append(del, prev...)
		if err := e.Delete(1, del...); err != nil {
			t.Fatalf("round %d delete: %v", r, err)
		}
		wear, err := e.Compact(1, 0.9)
		if err != nil {
			t.Fatalf("round %d compact: %v", r, err)
		}
		acc.CompactedRows += wear.CompactedRows
		acc.BlockErases += wear.BlockErases
		acc.CopiedEntries += wear.CopiedEntries
		acc.FreedPages += wear.FreedPages
		vecs := make([][]float32, batch)
		docs := make([][]byte, batch)
		for j := range vecs {
			vecs[j] = pool[(at+j)%len(pool)]
			docs[j] = poolDocs[(at+j)%len(poolDocs)]
		}
		at += batch
		ids, err := e.Append(1, AppendConfig{Vectors: vecs, Docs: docs})
		if err != nil {
			t.Fatalf("round %d append: %v", r, err)
		}
		prev = ids
	}
	return acc
}

// TestChurnRecyclesFreedRows is the long-churn regression test: before
// freed extents were recycled, a sustained append/delete/compact
// workload exhausted the embedding region's fresh rows and died with a
// spurious ssd.ErrRegionFull even though the live set fit comfortably.
// Now the logical tail runs past the planned capacity on recycled rows
// while the physical footprint stays fixed.
func TestChurnRecyclesFreedRows(t *testing.T) {
	const rounds, batch = 20, 63
	e, err := New(gcRefCfg(1), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	acc := runChurn(t, e, rounds, batch)
	if acc.CompactedRows < rounds {
		t.Fatalf("churn compacted only %d rows over %d rounds", acc.CompactedRows, rounds)
	}
	if acc.FreedPages == 0 {
		t.Fatalf("churn freed no pages: %+v", acc)
	}
	db, err := e.DB(1)
	if err != nil {
		t.Fatal(err)
	}
	if db.mut.binPages <= db.mut.capBin {
		t.Fatalf("logical tail %d pages never exceeded the planned capacity %d: churn too light to prove recycling",
			db.mut.binPages, db.mut.capBin)
	}
	if got, want := db.Live(), 900-15*rounds+batch; got != want {
		t.Fatalf("Live() = %d, want %d", got, want)
	}
	res, _, err := e.Search(1, testData.Queries[0], 10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("search after churn returned %d results", len(res))
	}
}

// TestWearLeveledPlacementReducesSkew: under the same churn workload,
// least-worn-first row placement (the default) yields a strictly lower
// maximum per-block erase count than the PR-5-era first-fit placement,
// which hammers the lowest freed rows.
func TestWearLeveledPlacementReducesSkew(t *testing.T) {
	churn := func(opts Options) int64 {
		e, err := New(gcRefCfg(1), 64<<20, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		runChurn(t, e, 20, 63)
		return e.SSD.Dev.MaxEraseCount()
	}
	ff := AllOptions()
	ff.FirstFitPlacement = true
	firstFit := churn(ff)
	wearLeveled := churn(AllOptions())
	if wearLeveled == 0 {
		t.Fatal("churn erased nothing under wear-leveled placement")
	}
	if wearLeveled >= firstFit {
		t.Fatalf("wear-leveled MaxBlockErase %d not below first-fit %d", wearLeveled, firstFit)
	}
}

// TestWearStatsSumAcrossShards is the wear-accounting property test:
// for shards 1/2/4 against the N-times-channels single-device
// reference, the compaction's cumulative WearStats are bit-identical,
// the per-device program/erase counters sum exactly to the reference
// device's, MaxBlockErase is the true maximum over every shard's
// blocks, and the write-amplification ratio is exactly
// BytesProgrammed/PayloadBytes.
func TestWearStatsSumAcrossShards(t *testing.T) {
	c := newMutCorpus()
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			ref, err := New(gcRefCfg(n), 64<<20, AllOptions())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ref.Close() })
			want := runMutScript(t, ref, c, true, 0.9)
			sh, err := NewSharded(gcTestCfg(), n, 64<<20, AllOptions())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sh.Close() })
			got := runMutScript(t, sh, c, true, 0.9)

			refWear, shWear := want[8].Wear, got[8].Wear
			if !reflect.DeepEqual(refWear, shWear) {
				t.Fatalf("compaction wear diverges\nsharded   %+v\nreference %+v", shWear, refWear)
			}
			if shWear.PayloadBytes == 0 || shWear.BytesProgrammed < shWear.PayloadBytes {
				t.Fatalf("write amplification accounting off: %+v", shWear)
			}
			if want := float64(shWear.BytesProgrammed) / float64(shWear.PayloadBytes); shWear.WriteAmp != want {
				t.Fatalf("WriteAmp = %v, want %v", shWear.WriteAmp, want)
			}

			var progSum, eraseSum, maxErase int64
			for s := 0; s < n; s++ {
				d := sh.Shard(s).SSD.Dev
				progSum += d.Stats.PagePrograms.Load()
				eraseSum += d.Stats.BlockErases.Load()
				if m := d.MaxEraseCount(); m > maxErase {
					maxErase = m
				}
			}
			refDev := ref.SSD.Dev
			if progSum != refDev.Stats.PagePrograms.Load() {
				t.Fatalf("page programs: shards sum %d, reference %d", progSum, refDev.Stats.PagePrograms.Load())
			}
			if eraseSum != refDev.Stats.BlockErases.Load() {
				t.Fatalf("block erases: shards sum %d, reference %d", eraseSum, refDev.Stats.BlockErases.Load())
			}
			if maxErase != refDev.MaxEraseCount() {
				t.Fatalf("max block erase: shards max %d, reference %d", maxErase, refDev.MaxEraseCount())
			}
			if shWear.MaxBlockErase != maxErase {
				t.Fatalf("Wear.MaxBlockErase %d, device max %d", shWear.MaxBlockErase, maxErase)
			}
		})
	}
}
