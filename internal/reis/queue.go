package reis

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"
	"time"
)

// This file implements the asynchronous host interface: NVMe-style
// submission/completion queue pairs over the engine's execution core.
//
// A Queue models one SQ/CQ pair of the REIS host driver. Commands are
// admitted with SubmitAsync under a configurable depth (admission
// control returns ErrQueueFull when the pair is saturated), picked up
// by the queue's dispatcher goroutine, and completed through one of
// three delivery paths: a completion channel, a callback, or the
// polled Reap buffer (the CQ). Like a hardware CQ slot, a command
// occupies queue capacity from SubmitAsync until its completion is
// consumed — reaped, received from the channel, returned by Wait, or
// the callback returns.
//
// Three properties make the queue more than a goroutine + channel:
//
//   - Coalescing. The dispatcher merges adjacent compatible search
//     commands of one tenant (same opcode, database, K and resolved
//     options) into a single batched execution, exactly as an NVMe
//     controller fetches several SQ entries per doorbell. Deep queues
//     therefore approach SearchBatch throughput even when every caller
//     submits single-query commands; per-command results and device
//     stats stay bit-identical to solo execution (pinned by tests).
//   - QoS. Pending commands are scheduled across databases by stride
//     scheduling on the per-DB Weights, so tenants share the plane
//     workers proportionally instead of strictly FIFO.
//   - Cancellation. Every command carries a context; cancellation is
//     honored before dispatch and at checkpoints inside the batched
//     scan pipeline (between plane work items and per-query tails).
//     A cancelled member aborts its coalesced group, whose unaffected
//     members are then re-executed individually — results never change,
//     only scheduling.
//   - Background GC. An OpcodeCompact command never runs as one
//     monolithic dispatch: the queue opens a GC flight that issues one
//     internal copy-forward step per victim GC row, scheduled under the
//     reserved gcSchedKey with its own stride weight (GCWeight), so
//     foreground searches interleave between steps and share device
//     time proportionally. Searches between steps are bit-identical to
//     both the never-compacted and fully-compacted states; later
//     mutations on the database are held back until the flight
//     completes (which also keeps the mutation journal in application
//     order). The command completes when its last step lands.
//
// Determinism: the engine serializes execution under execMu and a
// command's results and device events are independent of which group
// it was coalesced into (a plane broadcasts each query once regardless
// of batch composition), so completion *contents* are bit-identical
// run to run; only completion *order* may vary with scheduling.

// host is the execution backend a queue pair dispatches into: the
// single-device Engine or the sharded scatter-gather router
// (ShardedEngine). Both serialize their execution core internally, so
// the queue only sequences and delivers.
type host interface {
	// execCmd serves one validated command.
	execCmd(ctx context.Context, cmd *HostCommand) (HostResponse, error)
	// execSearchGroup runs the batched scan pipeline for a coalesced
	// dispatch group: queries is the concatenation of the group's Q
	// operands under the head command's parameters. perShard is the
	// per-device stats view of a sharded host (nil for a single
	// device), indexed [shard][query].
	execSearchGroup(ctx context.Context, cmd *HostCommand, queries [][]float32) (results [][]DocResult, sts []QueryStats, perShard [][]QueryStats, err error)
	// gcPlan / gcStep / gcFinish are the background garbage collector's
	// command surface: plan the victim rows of an OpcodeCompact command,
	// collect one row (accumulating wear into acc), and complete the
	// command. Each takes the host's execution lock on its own, so
	// searches dispatch between steps.
	gcPlan(cmd *HostCommand) ([]int, error)
	gcStep(cmd *HostCommand, row int, acc *WearStats) error
	gcFinish(cmd *HostCommand, acc *WearStats) (HostResponse, error)
	// registry is the host's queue-pair bookkeeping for Close-time
	// teardown.
	registry() *queueRegistry
}

// queueRegistry tracks a host's open queue pairs (for teardown) and
// its lazily created built-in pair behind the synchronous Submit
// wrapper. All methods are safe for concurrent use and idempotent, so
// host Close paths may race with queue creation and each other.
type queueRegistry struct {
	mu     sync.Mutex
	queues []*Queue
	defq   *Queue
	closed bool
}

// add registers a queue pair; it fails once the host is closed.
func (r *queueRegistry) add(q *Queue) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("reis: engine closed: %w", ErrQueueClosed)
	}
	r.queues = append(r.queues, q)
	return nil
}

// remove deregisters a queue pair (Queue.Close), so long-lived hosts
// that create and close many pairs do not accumulate dead entries.
func (r *queueRegistry) remove(q *Queue) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, x := range r.queues {
		if x == q {
			r.queues = append(r.queues[:i], r.queues[i+1:]...)
			break
		}
	}
	if r.defq == q {
		r.defq = nil
	}
}

// isClosed reports whether the host has been torn down (closeAll ran).
func (r *queueRegistry) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// closeAll marks the registry closed and hands the caller the pairs to
// close. Subsequent and concurrent calls return nil.
func (r *queueRegistry) closeAll() []*Queue {
	r.mu.Lock()
	defer r.mu.Unlock()
	qs := r.queues
	r.queues, r.defq = nil, nil
	r.closed = true
	return qs
}

// defaultQueue returns the built-in pair, creating it through create
// on first use.
func (r *queueRegistry) defaultQueue(create func() (*Queue, error)) (*Queue, error) {
	r.mu.Lock()
	q := r.defq
	r.mu.Unlock()
	if q != nil {
		return q, nil
	}
	q, err := create()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.defq == nil && !r.closed {
		r.defq = q
	} else {
		// Another goroutine won the race (or the host closed); keep
		// the established queue and discard ours.
		stale := q
		q = r.defq
		r.mu.Unlock()
		stale.Close()
		if q == nil {
			return nil, ErrQueueClosed
		}
		return q, nil
	}
	r.mu.Unlock()
	return q, nil
}

// CommandID identifies one submitted command within its Queue. IDs are
// assigned in submission order starting at 1.
type CommandID uint64

// Completion is one completion-queue entry.
type Completion struct {
	ID   CommandID
	Resp HostResponse
	Err  error
}

// DefaultQueueDepth is the queue-pair depth used when QueueConfig.Depth
// is zero.
const DefaultQueueDepth = 32

// QueueConfig configures one submission/completion queue pair.
type QueueConfig struct {
	// Depth bounds the commands outstanding on the pair — submitted and
	// not yet consumed. SubmitAsync fails with ErrQueueFull beyond it.
	// Zero means DefaultQueueDepth.
	Depth int

	// Weights are per-database QoS weights for dispatch scheduling;
	// databases without an entry weigh 1. A database with weight w
	// receives w times the dispatch share of a weight-1 database while
	// both have commands pending. Weights must be positive.
	Weights map[int]int

	// Completions, when non-nil, receives every completion in
	// completion order. Delivery blocks the dispatcher, so an undrained
	// channel exerts backpressure on the whole pair; the channel must
	// be drained until Close returns.
	Completions chan<- Completion

	// OnComplete, when non-nil, is called for every completion from the
	// dispatcher goroutine (before Completions delivery, if both are
	// set).
	OnComplete func(Completion)

	// NoCoalesce disables merging compatible pending commands into one
	// batched execution. Results are identical either way; coalescing
	// only changes how much plane-level overlap deep queues recover.
	NoCoalesce bool

	// GCWeight is the stride weight of background GC steps (the
	// internal commands a compaction flight issues), arbitrated against
	// the per-database Weights exactly like another tenant. Zero means
	// 1; higher values let the collector reclaim faster under load,
	// lower foreground weights do the opposite. Must not be negative.
	GCWeight int
}

// QueueStats counts queue-pair events (monotonic since creation).
type QueueStats struct {
	// Submitted / Completed are admitted commands and delivered
	// completions.
	Submitted, Completed uint64
	// Rejected counts ErrQueueFull admission failures.
	Rejected uint64
	// Dispatches counts execution rounds; a coalesced group is one
	// dispatch.
	Dispatches uint64
	// Coalesced counts commands that shared a dispatch with at least
	// one other command.
	Coalesced uint64
}

// qcmd is one admitted command awaiting dispatch, or (gcf != nil) one
// internal background-GC step of an active compaction flight — step
// qcmds carry no CommandID and occupy no queue slot; the flight's
// original command holds both until the flight completes.
type qcmd struct {
	id  CommandID
	ctx context.Context
	cmd HostCommand
	gcf *gcFlight
}

// gcSchedKey is the reserved stride-scheduling key background-GC steps
// are queued under — far below any real database id, so it never
// collides and wins exact pass ties deterministically.
const gcSchedKey = -1 << 30

// gcFlight is one in-progress background compaction: the original
// OpcodeCompact command, its victim plan, the next step index and the
// accumulated wear. The dispatcher goroutine is its single owner; the
// queue mutex guards only its membership in Queue.gc.
type gcFlight struct {
	orig    *qcmd
	victims []int
	next    int
	acc     WearStats
}

// Queue is one NVMe-style submission/completion queue pair bound to an
// engine. Create with Engine.NewQueue; all methods are safe for
// concurrent use.
type Queue struct {
	h   host
	cfg QueueConfig

	mu      sync.Mutex
	wake    *sync.Cond // dispatcher: work available / unpaused / closed
	capFree *sync.Cond // blocking submitters: a slot freed / closed

	nextID      CommandID
	outstanding int
	pendingN    int
	pending     map[int][]*qcmd   // per-database FIFO (gcSchedKey: GC steps)
	pass        map[int]float64   // stride-scheduling pass per database
	gc          map[int]*gcFlight // active compaction flight per database
	completed   []Completion      // the polled CQ (Reap buffer)
	waiters     map[CommandID]chan Completion
	paused      bool // test hook: freeze dispatch to observe scheduling
	closed      bool
	stats       QueueStats

	done chan struct{} // closed when the dispatcher has exited
}

// NewQueue creates a queue pair and starts its dispatcher. The queue
// must be Closed when no longer needed (Engine.Close closes any still
// open).
func (e *Engine) NewQueue(cfg QueueConfig) (*Queue, error) { return newQueue(e, cfg) }

// newQueue builds a queue pair over any host backend.
func newQueue(h host, cfg QueueConfig) (*Queue, error) {
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultQueueDepth
	}
	for db, w := range cfg.Weights {
		if w <= 0 {
			return nil, fmt.Errorf("reis: non-positive QoS weight %d for database %d", w, db)
		}
	}
	if cfg.GCWeight < 0 {
		return nil, fmt.Errorf("reis: negative GC weight %d", cfg.GCWeight)
	}
	q := &Queue{
		h:       h,
		cfg:     cfg,
		pending: make(map[int][]*qcmd),
		pass:    make(map[int]float64),
		gc:      make(map[int]*gcFlight),
		waiters: make(map[CommandID]chan Completion),
		done:    make(chan struct{}),
	}
	q.wake = sync.NewCond(&q.mu)
	q.capFree = sync.NewCond(&q.mu)
	if err := h.registry().add(q); err != nil {
		return nil, err
	}
	go q.dispatch()
	return q, nil
}

// SubmitAsync validates and admits one command. It never blocks: when
// the pair already holds Depth outstanding commands it fails with
// ErrQueueFull (admission control / backpressure). ctx governs the
// command's whole lifetime: cancellation before dispatch skips
// execution, cancellation during execution aborts at the pipeline's
// checkpoints; either way the command completes with ctx.Err().
// A nil ctx means context.Background().
func (q *Queue) SubmitAsync(ctx context.Context, cmd HostCommand) (CommandID, error) {
	return q.submit(ctx, cmd, false)
}

// submit implements SubmitAsync; with block set it waits for a free
// slot instead of failing (the synchronous Submit wrapper uses this).
func (q *Queue) submit(ctx context.Context, cmd HostCommand, block bool) (CommandID, error) {
	if err := cmd.validate(); err != nil {
		return 0, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.outstanding >= q.cfg.Depth && !q.closed {
		if !block {
			q.stats.Rejected++
			return 0, fmt.Errorf("%w (depth %d)", ErrQueueFull, q.cfg.Depth)
		}
		q.capFree.Wait()
	}
	if q.closed {
		return 0, ErrQueueClosed
	}
	q.nextID++
	id := q.nextID
	key := cmd.DBID
	if isDeployOp(cmd.Opcode) {
		key = cmd.Deploy.ID
	}
	if len(q.pending[key]) == 0 {
		// A database (re-)entering the pending set starts at the lowest
		// active pass so idle time never accumulates dispatch credit.
		if m, ok := q.minPassLocked(); ok && q.pass[key] < m {
			q.pass[key] = m
		}
	}
	q.pending[key] = append(q.pending[key], &qcmd{id: id, ctx: ctx, cmd: cmd})
	q.pendingN++
	q.outstanding++
	q.stats.Submitted++
	q.wake.Signal()
	return id, nil
}

// minPassLocked returns the minimum pass among databases with pending
// commands.
func (q *Queue) minPassLocked() (float64, bool) {
	m, ok := 0.0, false
	for key, list := range q.pending {
		if len(list) > 0 && (!ok || q.pass[key] < m) {
			m, ok = q.pass[key], true
		}
	}
	return m, ok
}

// Reap removes and returns up to max buffered completions in completion
// order (all of them when max <= 0) — the polling half of the pair.
// Reaping is what frees queue slots when no completion channel or
// callback is configured.
func (q *Queue) Reap(max int) []Completion {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.completed)
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]Completion, n)
	copy(out, q.completed)
	q.completed = append(q.completed[:0], q.completed[n:]...)
	for range out {
		q.releaseSlotLocked()
	}
	return out
}

// Wait blocks until the identified command completes and consumes its
// completion (it will not also be delivered to Reap or the configured
// sinks). ctx bounds the wait only: a timed-out Wait leaves the
// command running but abandons its completion — when it arrives it is
// discarded and its queue slot freed, so a caller that gives up (e.g.
// an HTTP handler whose request context ended) cannot leak slots.
func (q *Queue) Wait(ctx context.Context, id CommandID) (HostResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	for i, c := range q.completed {
		if c.ID == id {
			q.completed = append(q.completed[:i], q.completed[i+1:]...)
			q.releaseSlotLocked()
			q.mu.Unlock()
			return c.Resp, c.Err
		}
	}
	ch := make(chan Completion, 1)
	q.waiters[id] = ch
	q.mu.Unlock()
	select {
	case c := <-ch:
		return c.Resp, c.Err
	case <-ctx.Done():
		q.mu.Lock()
		if w, ok := q.waiters[id]; ok && w != nil {
			// Abandon the wait: a nil tombstone tells complete() to
			// consume and discard the completion when it arrives, so
			// the command's queue slot is still freed (it must not
			// land in the Reap buffer nobody is polling).
			q.waiters[id] = nil
			q.mu.Unlock()
			return HostResponse{}, ctx.Err()
		}
		q.mu.Unlock()
		// The completion raced in while we were deregistering.
		c := <-ch
		return c.Resp, c.Err
	}
}

// Outstanding returns the commands currently occupying queue slots
// (submitted and not yet consumed).
func (q *Queue) Outstanding() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.outstanding
}

// Depth returns the pair's configured capacity — the bound admission
// control enforces (SubmitAsync fails with ErrQueueFull at Depth
// outstanding commands).
func (q *Queue) Depth() int { return q.cfg.Depth }

// Occupancy returns Outstanding()/Depth() in [0, 1] — the load signal
// replica routers compare across queue pairs (least-loaded /
// power-of-two-choices routing; see internal/serve).
func (q *Queue) Occupancy() float64 {
	return float64(q.Outstanding()) / float64(q.cfg.Depth)
}

// Stats returns a snapshot of the pair's event counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Close marks the queue closed, completes every still-pending command
// with ErrQueueClosed, waits for the dispatcher to exit, and
// deregisters the pair from its host. Close is idempotent and safe to
// call from multiple goroutines — every call returns only after the
// dispatcher has exited. A command already executing completes
// normally first.
func (q *Queue) Close() error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.wake.Broadcast()
		q.capFree.Broadcast()
	}
	q.mu.Unlock()
	<-q.done
	q.h.registry().remove(q)
	return nil
}

// pause / resume freeze and thaw the dispatcher — test hooks that make
// scheduling decisions (QoS order, coalescing extents) observable
// deterministically: pause, submit a known set, resume.
func (q *Queue) pause() {
	q.mu.Lock()
	q.paused = true
	q.mu.Unlock()
}

func (q *Queue) resume() {
	q.mu.Lock()
	q.paused = false
	q.wake.Broadcast()
	q.mu.Unlock()
}

// releaseSlotLocked frees one queue slot and wakes a blocked submitter.
func (q *Queue) releaseSlotLocked() {
	q.outstanding--
	q.capFree.Signal()
}

// dispatch is the queue's dispatcher goroutine: it drains the
// submission side group by group until the queue closes.
func (q *Queue) dispatch() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for !q.closed && (q.paused || !q.hasDispatchableLocked()) {
			q.wake.Wait()
		}
		if q.closed {
			aborted := q.drainPendingLocked()
			flights := make([]*gcFlight, 0, len(q.gc))
			for _, f := range q.gc {
				flights = append(flights, f)
			}
			q.gc = make(map[int]*gcFlight)
			q.mu.Unlock()
			for _, qc := range aborted {
				q.complete(qc.id, HostResponse{}, ErrQueueClosed)
			}
			// In-flight compactions abort deterministically too: the
			// rows already collected stay collected (every step commits
			// a consistent state), the original command reports
			// ErrQueueClosed. Exactly-once is structural — gcStepExec
			// runs on this goroutine and removes a flight from q.gc
			// before completing it.
			slices.SortFunc(flights, func(a, b *gcFlight) int { return cmp.Compare(a.orig.id, b.orig.id) })
			for _, f := range flights {
				q.complete(f.orig.id, HostResponse{}, ErrQueueClosed)
			}
			return
		}
		group := q.pickGroupLocked()
		q.mu.Unlock()
		q.execGroup(group)
	}
}

// blockedLocked reports whether a pending head must wait: mutations on
// a database with an active compaction flight are held back until the
// flight completes, so the journal's record order equals application
// order and a flight's victim plan stays valid across its steps.
// Searches, scans and deploys are never blocked — interleaving them is
// the point — and GC steps themselves never block.
func (q *Queue) blockedLocked(head *qcmd) bool {
	if head.gcf != nil || len(q.gc) == 0 {
		return false
	}
	if !isMutationOp(head.cmd.Opcode) {
		return false
	}
	_, busy := q.gc[head.cmd.DBID]
	return busy
}

// hasDispatchableLocked reports whether any pending head can dispatch
// now. Distinct from pendingN > 0: every pending command may be a
// mutation held back behind an active GC flight whose next step has
// not been enqueued yet.
func (q *Queue) hasDispatchableLocked() bool {
	for _, list := range q.pending {
		if len(list) > 0 && !q.blockedLocked(list[0]) {
			return true
		}
	}
	return false
}

// drainPendingLocked removes every pending command, in submission
// order. Internal GC-step entries are dropped, not returned: their
// flight's original command is completed by the close path.
func (q *Queue) drainPendingLocked() []*qcmd {
	var all []*qcmd
	for _, list := range q.pending {
		for _, qc := range list {
			if qc.gcf == nil {
				all = append(all, qc)
			}
		}
	}
	q.pending = make(map[int][]*qcmd)
	q.pendingN = 0
	// Submission order == CommandID order.
	slices.SortFunc(all, func(a, b *qcmd) int { return cmp.Compare(a.id, b.id) })
	return all
}

// pickGroupLocked selects the next database by stride scheduling
// (lowest pass wins, ties to the lowest database id) and takes its FIFO
// head plus, unless disabled, the adjacent commands that can coalesce
// with it into one batched execution.
func (q *Queue) pickGroupLocked() []*qcmd {
	bestKey, found := 0, false
	for key, list := range q.pending {
		if len(list) == 0 || q.blockedLocked(list[0]) {
			continue
		}
		if !found || q.pass[key] < q.pass[bestKey] ||
			(q.pass[key] == q.pass[bestKey] && key < bestKey) {
			bestKey, found = key, true
		}
	}
	list := q.pending[bestKey]
	head := list[0]
	n := 1
	if !q.cfg.NoCoalesce && isSearchOp(head.cmd.Opcode) && head.ctx.Err() == nil {
		for n < len(list) && coalescible(head, list[n]) {
			n++
		}
	}
	group := make([]*qcmd, n)
	copy(group, list[:n])
	q.pending[bestKey] = append(list[:0], list[n:]...)
	q.pendingN -= n
	w := 1
	if bestKey == gcSchedKey {
		if q.cfg.GCWeight > 0 {
			w = q.cfg.GCWeight
		}
	} else if cw, ok := q.cfg.Weights[bestKey]; ok {
		w = cw
	}
	q.pass[bestKey] += float64(n) / float64(w)
	q.stats.Dispatches++
	if n > 1 {
		q.stats.Coalesced += uint64(n)
	}
	return group
}

// coalescible reports whether b can ride in a's batched execution:
// same opcode, database and K, identical nprobe/recall operands and
// search options, and not already cancelled.
func coalescible(a, b *qcmd) bool {
	if b.ctx.Err() != nil {
		return false
	}
	ca, cb := &a.cmd, &b.cmd
	if ca.Opcode != cb.Opcode || ca.DBID != cb.DBID || ca.K != cb.K ||
		ca.NProbe != cb.NProbe || ca.TargetRecall != cb.TargetRecall ||
		ca.Opt.NProbe != cb.Opt.NProbe || ca.Opt.SkipDocs != cb.Opt.SkipDocs {
		return false
	}
	ta, tb := ca.Opt.MetaTag, cb.Opt.MetaTag
	if (ta == nil) != (tb == nil) || (ta != nil && *ta != *tb) {
		return false
	}
	return true
}

// execGroup executes one dispatch group on the host and delivers its
// completions.
func (q *Queue) execGroup(group []*qcmd) {
	live := make([]*qcmd, 0, len(group))
	for _, qc := range group {
		// GC steps have no CommandID of their own; cancellation of the
		// original command is handled inside gcStepExec, which must also
		// retire the flight.
		if qc.gcf == nil {
			if err := qc.ctx.Err(); err != nil {
				q.complete(qc.id, HostResponse{}, err)
				continue
			}
		}
		live = append(live, qc)
	}
	switch len(live) {
	case 0:
		return
	case 1:
		qc := live[0]
		if qc.gcf != nil {
			q.gcStepExec(qc)
			return
		}
		if qc.cmd.Opcode == OpcodeCompact {
			q.gcStart(qc)
			return
		}
		resp, err := q.h.execCmd(qc.ctx, &qc.cmd)
		q.complete(qc.id, resp, err)
		return
	}

	// Coalesced execution: one batched pass over the concatenated Q
	// operands. Batch results are bit-identical to per-command
	// execution, so splitting the output per command is exact.
	total := 0
	for _, qc := range live {
		total += len(qc.cmd.Queries)
	}
	queries := make([][]float32, 0, total)
	for _, qc := range live {
		queries = append(queries, qc.cmd.Queries...)
	}
	ctx := mergeCtxs(live)
	results, sts, perShard, err := q.h.execSearchGroup(ctx, &live[0].cmd, queries)
	if err != nil {
		// Group abort — a member's cancellation, or an execution error.
		// Re-execute members individually so unaffected commands still
		// complete with precise per-command outcomes.
		for _, qc := range live {
			if cerr := qc.ctx.Err(); cerr != nil {
				q.complete(qc.id, HostResponse{}, cerr)
				continue
			}
			resp, err := q.h.execCmd(qc.ctx, &qc.cmd)
			q.complete(qc.id, resp, err)
		}
		return
	}
	off := 0
	for _, qc := range live {
		n := len(qc.cmd.Queries)
		resp := HostResponse{
			Done:       true,
			Results:    results[off : off+n : off+n],
			QueryStats: sts[off : off+n : off+n],
		}
		if perShard != nil {
			resp.PerShard = make([][]QueryStats, len(perShard))
			for s := range perShard {
				resp.PerShard[s] = perShard[s][off : off+n : off+n]
			}
		}
		for _, st := range resp.QueryStats {
			resp.Stats.Add(st)
		}
		off += n
		q.complete(qc.id, resp, nil)
	}
}

// gcStart opens a background compaction flight for a dispatched
// OpcodeCompact command: plan the victim rows once, then (if any) queue
// the first copy-forward step under gcSchedKey. A database with no
// victims completes immediately — the fast path a compaction of an
// already-clean database takes.
func (q *Queue) gcStart(qc *qcmd) {
	victims, err := q.h.gcPlan(&qc.cmd)
	if err != nil {
		q.complete(qc.id, HostResponse{}, err)
		return
	}
	f := &gcFlight{orig: qc, victims: victims}
	if len(victims) == 0 {
		resp, err := q.h.gcFinish(&qc.cmd, &f.acc)
		q.complete(qc.id, resp, err)
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.complete(qc.id, HostResponse{}, ErrQueueClosed)
		return
	}
	q.gc[qc.cmd.DBID] = f
	q.enqueueStepLocked(f)
	q.mu.Unlock()
}

// enqueueStepLocked queues a flight's next copy-forward step under the
// reserved GC scheduling key. Step entries carry no CommandID and no
// queue slot — the flight's original command holds both.
func (q *Queue) enqueueStepLocked(f *gcFlight) {
	step := &qcmd{ctx: f.orig.ctx, cmd: f.orig.cmd, gcf: f}
	if len(q.pending[gcSchedKey]) == 0 {
		if m, ok := q.minPassLocked(); ok && q.pass[gcSchedKey] < m {
			q.pass[gcSchedKey] = m
		}
	}
	q.pending[gcSchedKey] = append(q.pending[gcSchedKey], step)
	q.pendingN++
	q.wake.Signal()
}

// gcStepExec runs one copy-forward step of a flight on the dispatcher
// goroutine. The flight retires — removed from q.gc, original command
// completed — on cancellation, step error, or after the last step;
// otherwise the next step is queued and foreground commands dispatch in
// between. Running on the dispatcher goroutine makes retirement
// single-threaded with the close path's flight sweep: a flight is
// completed exactly once.
func (q *Queue) gcStepExec(qc *qcmd) {
	f := qc.gcf
	finish := func(resp HostResponse, err error) {
		q.mu.Lock()
		delete(q.gc, f.orig.cmd.DBID)
		q.mu.Unlock()
		q.complete(f.orig.id, resp, err)
	}
	if err := f.orig.ctx.Err(); err != nil {
		finish(HostResponse{}, err)
		return
	}
	if err := q.h.gcStep(&f.orig.cmd, f.victims[f.next], &f.acc); err != nil {
		finish(HostResponse{}, err)
		return
	}
	f.next++
	if f.next >= len(f.victims) {
		resp, err := q.h.gcFinish(&f.orig.cmd, &f.acc)
		finish(resp, err)
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		finish(HostResponse{}, ErrQueueClosed)
		return
	}
	q.enqueueStepLocked(f)
	q.mu.Unlock()
}

// complete delivers one completion: to a registered waiter first,
// otherwise to the configured sinks, otherwise to the Reap buffer. The
// queue slot is freed when the completion is consumed (immediately for
// waiters and sinks; at Reap time for the polled buffer).
func (q *Queue) complete(id CommandID, resp HostResponse, err error) {
	c := Completion{ID: id, Resp: resp, Err: err}
	q.mu.Lock()
	q.stats.Completed++
	if w, ok := q.waiters[id]; ok {
		delete(q.waiters, id)
		q.releaseSlotLocked()
		q.mu.Unlock()
		if w != nil {
			w <- c
		}
		// A nil entry is an abandoned Wait: discard the completion,
		// the slot above is all that had to be released.
		return
	}
	if q.cfg.Completions == nil && q.cfg.OnComplete == nil {
		q.completed = append(q.completed, c)
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()
	if q.cfg.OnComplete != nil {
		q.cfg.OnComplete(c)
	}
	if q.cfg.Completions != nil {
		q.cfg.Completions <- c
	}
	q.mu.Lock()
	q.releaseSlotLocked()
	q.mu.Unlock()
}

// mergeCtxs returns the context governing a coalesced execution: the
// shared context when every member carries the same one, otherwise a
// groupCtx polling all of them.
func mergeCtxs(group []*qcmd) context.Context {
	ctx := group[0].ctx
	same := true
	for _, qc := range group[1:] {
		if qc.ctx != ctx {
			same = false
			break
		}
	}
	if same {
		return ctx
	}
	ctxs := make([]context.Context, len(group))
	for i, qc := range group {
		ctxs[i] = qc.ctx
	}
	return groupCtx{ctxs: ctxs}
}

// groupCtx aggregates the member contexts of a coalesced dispatch. The
// execution core polls Err() at its checkpoints and never selects on
// Done, so Done may return nil (the "may never be canceled" contract);
// groupCtx never escapes the queue internals.
type groupCtx struct{ ctxs []context.Context }

func (g groupCtx) Deadline() (time.Time, bool) {
	var earliest time.Time
	ok := false
	for _, c := range g.ctxs {
		if d, has := c.Deadline(); has && (!ok || d.Before(earliest)) {
			earliest, ok = d, true
		}
	}
	return earliest, ok
}

func (g groupCtx) Done() <-chan struct{} { return nil }

func (g groupCtx) Err() error {
	for _, c := range g.ctxs {
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (g groupCtx) Value(any) any { return nil }
