package reis

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"reis/internal/ssd"
	"reis/internal/vecmath"
)

// This file implements the sharded topology: one database partitioned
// across N simulated SSD devices with scatter-gather search.
//
// Partitioning scheme. The router plans the database layout exactly as
// a single device would (planLayout: same placement order, padding,
// page counts) and then stripes the planned pages round-robin across
// the shards: global page g lives on shard g mod N as local page
// g / N. Each shard is a full device built verbatim from the shared
// config, so with region striping (page i → plane i mod planes) the
// union of the shards' planes is plane-for-plane identical to ONE
// device with N times the channels: global plane j of that reference
// device is shard j mod N, local plane j / N. Every region (binary
// embeddings, centroids, INT8 copies, documents) is striped the same
// way, and OOB linkage keeps global ids. Scale-out is therefore real —
// N devices carry N times the planes and channels of one — while the
// equivalence target stays exact.
//
// Scatter-gather. A search fans out OpcodeScan commands through one
// queue pair per shard (the router's "driver" view of each device):
// per query, the global slot ranges are translated into each shard's
// local coordinates; each shard runs the ordinary batched scan
// pipeline over its pages and returns the surviving TTL entries per
// (query, segment). The router remaps local positions to global ones,
// k-way merges the per-shard streams in global position order
// (mergeEntryLists — the same merge the engine uses across planes),
// and runs the shared controller tail (runTail) over the merged
// stream, fetching INT8 and document pages from whichever shard owns
// them.
//
// Determinism. Because the merged entry stream is element-identical to
// what a single device's scan produces — same entries, same order,
// same distances — and the tail is the same code over the same page
// bytes, sharded results are bit-identical to a single-device engine
// over the same data, for any shard count and any geometry (the entry
// stream does not depend on plane counts). Stats are bit-identical to
// the N-times-channels reference device: per-entry and per-page counts
// sum across shards, and per-segment wave counts (parallel critical
// path) aggregate by maximum, which equals the reference value because
// per-plane page loads match plane for plane. See DESIGN.md, "Sharded
// topology".

// ShardedEngine is a scatter-gather router over N single-device
// engines. It implements the same host surface as Engine — Deploy /
// IVFDeploy, Search / SearchBatch / IVFSearch / IVFSearchBatch,
// Submit, NewQueue (asynchronous queue pairs dispatch into the
// router), CalibrateNProbe, Close — with results bit-identical to a
// single device over the same data.
type ShardedEngine struct {
	cfg  ssd.Config // single-device-equivalent configuration (N× the shared config's channels)
	opts Options

	shards []*shardDev

	// execMu serializes the router's execution core: the scatter
	// phases, the gather-side merge and controller tail share the
	// router scratch under a single running owner, mirroring
	// Engine.execMu.
	execMu sync.Mutex
	scr    routerScratch
	dbs    map[int]*ShardedDatabase
	closed bool

	// jl is the router's append-only mutation journal (see journal.go);
	// it records the same byte stream a single-device engine would, so
	// a journal captured on one topology replays on any other.
	jl journal

	// testGCStepHook, when set, runs after each committed background GC
	// step with no locks held — the interleaving tests' probe point.
	testGCStepHook func()

	// reg tracks the queue pairs created with NewQueue on the router
	// itself (not the per-shard scatter queues, which belong to the
	// member engines).
	reg queueRegistry
}

// shardDev is one member device plus the router's queue pair into it.
type shardDev struct {
	e *Engine
	q *Queue
}

// routerScratch is the gather side's pooled state; the execMu holder
// owns it.
type routerScratch struct {
	tail    tailScratch
	src     shardTailSource
	entries []TTLEntry
	cents   []TTLEntry
	lists   [][]TTLEntry
}

// ShardedDatabase is the router's view of one database partitioned
// across the shards: the global layout plan (R-IVF table, quantization
// parameters, filter threshold) plus the per-shard sub-databases.
type ShardedDatabase struct {
	ID  int
	Dim int
	N   int

	lay    *dbLayout
	locals []*Database // locals[s] is shard s's page-stride slice
	calib  []recallPoint

	// mut is the router's mutable-state ledger — the same geometry-
	// independent structure a single device keeps, evolved by the same
	// code, which is what makes sharded mutation outcomes bit-identical
	// to the reference device.
	mut *mutState

	// cache is the router's DRAM caching tier (nil unless the shared
	// config sets CacheDRAMBytes). The shard-local Databases never
	// consult one: pinned-cluster scans and result-cache hits are
	// served by the router before any scatter, so cached work appears
	// only in the aggregate QueryStats, never in a per-shard row.
	cache *dbCache
}

// Live returns the number of live (not tombstoned) entries.
func (db *ShardedDatabase) Live() int { return db.mut.live }

// NList returns the number of IVF clusters (0 for flat databases).
func (db *ShardedDatabase) NList() int { return len(db.lay.rivf) }

// ThresholdFor reports the calibrated distance-filter threshold
// (global: every shard scans under the same threshold).
func (db *ShardedDatabase) ThresholdFor() int { return db.lay.filterThreshold }

// NewSharded builds a sharded engine of n member devices, each
// constructed verbatim from the shared configuration. The shard union
// is plane-for-plane identical to one device with n times the
// channels — the reference the determinism contract is pinned against
// (results are bit-identical to ANY single device over the same data;
// stats to that reference). capacityHint is the total data volume;
// each shard is sized for its 1/n share.
func NewSharded(cfg ssd.Config, n int, capacityHint int64, opts Options) (*ShardedEngine, error) {
	if n <= 0 {
		return nil, fmt.Errorf("reis: shard count %d must be positive", n)
	}
	per := cfg
	equiv := cfg
	equiv.Geo.Channels *= n
	hint := (capacityHint + int64(n) - 1) / int64(n)
	sh := &ShardedEngine{cfg: equiv, opts: opts, dbs: make(map[int]*ShardedDatabase)}
	for s := 0; s < n; s++ {
		e, err := New(per, hint, opts)
		if err != nil {
			sh.Close()
			return nil, fmt.Errorf("reis: shard %d: %w", s, err)
		}
		q, err := e.NewQueue(QueueConfig{})
		if err != nil {
			e.Close()
			sh.Close()
			return nil, err
		}
		sh.shards = append(sh.shards, &shardDev{e: e, q: q})
	}
	return sh, nil
}

// Shards returns the number of member devices.
func (sh *ShardedEngine) Shards() int { return len(sh.shards) }

// Ready reports whether the router can accept commands: true from
// construction until Close, and only while every member device is
// still ready (a closed member would fail any scatter that touches
// it). The same health probe Engine.Ready provides.
func (sh *ShardedEngine) Ready() bool {
	if sh.reg.isClosed() {
		return false
	}
	for _, d := range sh.shards {
		if !d.e.Ready() {
			return false
		}
	}
	return true
}

// Shard exposes member device s (for tests and tools).
func (sh *ShardedEngine) Shard(s int) *Engine { return sh.shards[s].e }

// DB returns a deployed database by id.
func (sh *ShardedEngine) DB(id int) (*ShardedDatabase, error) {
	sh.execMu.Lock()
	defer sh.execMu.Unlock()
	return sh.db(id)
}

// db is DB without the execution lock, for use inside the core.
func (sh *ShardedEngine) db(id int) (*ShardedDatabase, error) {
	db, ok := sh.dbs[id]
	if !ok {
		return nil, fmt.Errorf("reis: unknown database %d", id)
	}
	return db, nil
}

// registry exposes the router's queue bookkeeping (host interface).
func (sh *ShardedEngine) registry() *queueRegistry { return &sh.reg }

// NewQueue creates an asynchronous queue pair whose dispatcher
// executes on the sharded router — the same NVMe-style interface
// Engine.NewQueue provides over a single device.
func (sh *ShardedEngine) NewQueue(cfg QueueConfig) (*Queue, error) { return newQueue(sh, cfg) }

// Submit executes one host command synchronously through the router's
// built-in queue pair (mirroring Engine.Submit).
func (sh *ShardedEngine) Submit(cmd HostCommand) (HostResponse, error) {
	q, err := sh.reg.defaultQueue(func() (*Queue, error) { return sh.NewQueue(QueueConfig{}) })
	if err != nil {
		return HostResponse{}, err
	}
	id, err := q.submit(context.Background(), cmd, true)
	if err != nil {
		return HostResponse{}, err
	}
	return q.Wait(context.Background(), id)
}

// Close shuts down the router's own queue pairs, then every member
// device (whose engines close their scatter queues and plane pools).
// Close is idempotent and safe to call from multiple goroutines; the
// router must not be closed while direct API calls are in flight.
func (sh *ShardedEngine) Close() error {
	for _, q := range sh.reg.closeAll() {
		q.Close()
	}
	sh.execMu.Lock()
	defer sh.execMu.Unlock()
	sh.closed = true
	for _, d := range sh.shards {
		d.e.Close()
	}
	return nil
}

// Deploy implements DB_Deploy across the shards (flat database).
func (sh *ShardedEngine) Deploy(cfg DeployConfig) (*ShardedDatabase, error) {
	cfg.Centroids, cfg.Assign = nil, nil
	return sh.deploy(cfg)
}

// IVFDeploy implements IVF_Deploy across the shards: the cluster-
// sorted placement and the R-IVF table are planned globally (the
// router keeps the table in its controller DRAM), then page-striped.
func (sh *ShardedEngine) IVFDeploy(cfg DeployConfig) (*ShardedDatabase, error) {
	if len(cfg.Centroids) == 0 || len(cfg.Assign) != len(cfg.Vectors) {
		return nil, fmt.Errorf("reis: IVFDeploy requires cluster info (centroids=%d assign=%d vectors=%d)",
			len(cfg.Centroids), len(cfg.Assign), len(cfg.Vectors))
	}
	return sh.deploy(cfg)
}

func (sh *ShardedEngine) deploy(cfg DeployConfig) (*ShardedDatabase, error) {
	sh.execMu.Lock()
	defer sh.execMu.Unlock()
	if sh.closed {
		return nil, fmt.Errorf("reis: engine closed: %w", ErrQueueClosed)
	}
	if _, ok := sh.dbs[cfg.ID]; ok {
		return nil, fmt.Errorf("reis: database %d already deployed", cfg.ID)
	}
	lo, err := planLayout(&cfg, sh.cfg.Geo, sh.cfg.OverprovisionPct)
	if err != nil {
		return nil, err
	}
	items := lo.buildItems(&cfg)
	db := &ShardedDatabase{ID: cfg.ID, Dim: lo.dim, N: lo.n, lay: lo, mut: newMutState(lo, sh.cfg.Geo, sh.opts.FirstFitPlacement)}
	if cb := sh.cfg.CacheDRAMBytes; cb > 0 {
		// Sized from the single-device-equivalent config, so the pin
		// budget and page cost match the reference device exactly.
		db.cache = newDBCache(cb, sh.cfg.Geo.PageBytes, sh.cfg.Geo.OOBBytes, len(lo.rivf))
	}
	for s, dev := range sh.shards {
		local, err := dev.e.deployShard(cfg.ID, lo, items, s, len(sh.shards))
		if err != nil {
			// Roll the id back off the shards that already succeeded,
			// so a failed deploy does not poison it (the bump-cursor
			// allocator cannot reclaim the written stripes, but the id
			// and R-DB records are freed for a retry).
			for _, done := range sh.shards[:s] {
				done.e.dropDB(cfg.ID)
			}
			return nil, fmt.Errorf("reis: shard %d: %w", s, err)
		}
		db.locals = append(db.locals, local)
	}
	sh.dbs[cfg.ID] = db
	return db, nil
}

// execCmd serves one validated command (host interface).
func (sh *ShardedEngine) execCmd(ctx context.Context, cmd *HostCommand) (HostResponse, error) {
	switch cmd.Opcode {
	case OpcodeDBDeploy:
		cfg := *cmd.Deploy
		cfg.Centroids, cfg.Assign = nil, nil
		_, err := sh.deploy(cfg)
		return HostResponse{Done: err == nil}, err
	case OpcodeIVFDeploy:
		_, err := sh.IVFDeploy(*cmd.Deploy)
		return HostResponse{Done: err == nil}, err
	case OpcodeSearch, OpcodeIVFSearch:
		results, sts, perShard, err := sh.execSearchGroup(ctx, cmd, cmd.Queries)
		if err != nil {
			return HostResponse{}, err
		}
		resp := HostResponse{Done: true, Results: results, QueryStats: sts, PerShard: perShard}
		for _, st := range sts {
			resp.Stats.Add(st)
		}
		return resp, nil
	case OpcodeAppend, OpcodeDelete, OpcodeCompact:
		sh.execMu.Lock()
		defer sh.execMu.Unlock()
		if sh.closed {
			return HostResponse{}, fmt.Errorf("reis: engine closed: %w", ErrQueueClosed)
		}
		db, err := sh.db(cmd.DBID)
		if err != nil {
			return HostResponse{}, err
		}
		resp, err := executeMutation(db.mut, shardMutTarget{sh: sh, db: db}, cmd)
		if err == nil {
			db.calib = nil
			db.cache.invalidate()
			sh.jl.logCmd(cmd)
		}
		return resp, err
	default:
		// OpcodeScan is the router's *scatter* operand; it addresses a
		// member device, never the router itself.
		return HostResponse{}, fmt.Errorf("%w %#x (not served by a sharded host)", ErrUnknownOpcode, cmd.Opcode)
	}
}

// gcPlan, gcStep and gcFinish mirror Engine's background-compaction
// surface (queue.go's GC flights) on the router: the victim plan, each
// copy-forward step and the completion all evolve the shared mutState
// with the same code, so background GC on a sharded topology commits
// the same state and WearStats as the single-device reference.
func (sh *ShardedEngine) gcPlan(cmd *HostCommand) ([]int, error) {
	sh.execMu.Lock()
	defer sh.execMu.Unlock()
	if sh.closed {
		return nil, fmt.Errorf("reis: engine closed: %w", ErrQueueClosed)
	}
	db, err := sh.db(cmd.DBID)
	if err != nil {
		return nil, err
	}
	return mutGCVictims(db.mut, cmd.Compact.MinLiveRatio), nil
}

func (sh *ShardedEngine) gcStep(cmd *HostCommand, row int, acc *WearStats) error {
	sh.execMu.Lock()
	if sh.closed {
		sh.execMu.Unlock()
		return fmt.Errorf("reis: engine closed: %w", ErrQueueClosed)
	}
	db, err := sh.db(cmd.DBID)
	if err != nil {
		sh.execMu.Unlock()
		return err
	}
	err = mutGCStep(db.mut, shardMutTarget{sh: sh, db: db}, row, acc)
	if err == nil {
		db.calib = nil
		db.cache.invalidate()
	}
	hook := sh.testGCStepHook
	sh.execMu.Unlock()
	if err == nil && hook != nil {
		hook()
	}
	return err
}

func (sh *ShardedEngine) gcFinish(cmd *HostCommand, acc *WearStats) (HostResponse, error) {
	sh.execMu.Lock()
	defer sh.execMu.Unlock()
	db, err := sh.db(cmd.DBID)
	if err != nil {
		return HostResponse{}, err
	}
	db.mut.fillWear(acc, shardMutTarget{sh: sh, db: db})
	sh.jl.logCompact(cmd.DBID, cmd.Compact.MinLiveRatio)
	w := *acc
	return HostResponse{Done: true, Wear: &w}, nil
}

// JournalBytes returns a copy of the router's mutation journal; see
// Engine.JournalBytes. The byte stream is topology-independent: a
// journal captured here replays on a single device and vice versa.
func (sh *ShardedEngine) JournalBytes() []byte {
	sh.execMu.Lock()
	defer sh.execMu.Unlock()
	return append([]byte(nil), sh.jl.buf...)
}

// ReplayJournal re-applies a record-aligned journal prefix through the
// router's normal command path; see Engine.ReplayJournal.
func (sh *ShardedEngine) ReplayJournal(data []byte) error {
	return replayJournal(sh, data)
}

// execSearchGroup runs the scatter-gather pipeline for queries — one
// command's Q operand, or a coalesced group's concatenation (host
// interface). Host commands consult the result cache.
func (sh *ShardedEngine) execSearchGroup(ctx context.Context, cmd *HostCommand, queries [][]float32) ([][]DocResult, []QueryStats, [][]QueryStats, error) {
	return sh.searchGroup(ctx, cmd, queries, true)
}

// searchGroup is the router's search execution core. useCache selects
// the result-cache wrap: host commands (Submit and the queue pairs)
// consult it, while the direct API methods and calibration bypass it —
// the same split the single-device engine makes around cachedSearch, so
// a sharded run and its reference hold identical cache state.
func (sh *ShardedEngine) searchGroup(ctx context.Context, cmd *HostCommand, queries [][]float32, useCache bool) ([][]DocResult, []QueryStats, [][]QueryStats, error) {
	sh.execMu.Lock()
	defer sh.execMu.Unlock()
	if sh.closed {
		return nil, nil, nil, fmt.Errorf("reis: engine closed: %w", ErrQueueClosed)
	}
	db, err := sh.db(cmd.DBID)
	if err != nil {
		return nil, nil, nil, err
	}
	opt, err := resolveSearchOptions(db.calib, db.ID, cmd)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(queries) == 0 {
		return nil, nil, nil, fmt.Errorf("reis: empty query batch")
	}
	for _, q := range queries {
		if err := checkQueryAgainst(db.Dim, db.ID, q, cmd.K); err != nil {
			return nil, nil, nil, err
		}
	}
	if !useCache || db.cache == nil || db.cache.resBudget <= 0 {
		return sh.dispatchGroup(ctx, db, cmd.Opcode, queries, cmd.K, opt)
	}
	// Result-cache wrap, mirroring Engine.cachedSearch: look every query
	// up first (intra-batch duplicates all miss), execute the miss
	// subset as one batch so its per-query stats are bit-identical to an
	// uncached run, then insert. Hits carry zero per-shard rows — no
	// shard did any work for them.
	nq := len(queries)
	results := make([][]DocResult, nq)
	sts := make([]QueryStats, nq)
	keys := make([]string, nq)
	var missIdx []int
	var missQ [][]float32
	for i, q := range queries {
		keys[i] = resultKey(cmd.Opcode, cmd.K, opt, q)
		if r, ok := db.cache.lookupResult(keys[i]); ok {
			results[i] = r
			sts[i] = QueryStats{ResultCacheHits: 1}
			continue
		}
		missIdx = append(missIdx, i)
		missQ = append(missQ, q)
	}
	perShard := make([][]QueryStats, len(sh.shards))
	for s := range perShard {
		perShard[s] = make([]QueryStats, nq)
	}
	if len(missIdx) > 0 {
		mres, msts, mper, err := sh.dispatchGroup(ctx, db, cmd.Opcode, missQ, cmd.K, opt)
		if err != nil {
			return nil, nil, nil, err
		}
		for j, i := range missIdx {
			results[i] = mres[j]
			sts[i] = msts[j]
			db.cache.storeResult(keys[i], mres[j])
		}
		for s := range perShard {
			for j, i := range missIdx {
				perShard[s][i] = mper[s][j]
			}
		}
	}
	return results, sts, perShard, nil
}

// dispatchGroup routes a resolved search batch to its pipeline.
func (sh *ShardedEngine) dispatchGroup(ctx context.Context, db *ShardedDatabase, op uint8, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, [][]QueryStats, error) {
	if opt.Prune {
		if op == OpcodeSearch {
			return sh.searchFlatPruned(ctx, db, queries, k, opt)
		}
		return sh.searchIVFPruned(ctx, db, queries, k, opt)
	}
	if op == OpcodeSearch {
		return sh.searchFlat(ctx, db, queries, k, opt)
	}
	return sh.searchIVF(ctx, db, queries, k, opt)
}

// scatter fans one scan phase out to the shards through their queue
// pairs and gathers the completions in shard order. segs are global
// per-query slot ranges; each shard receives its local translation
// with (query, segment) indices preserved. A shard whose translation
// is all empty sentinels (it owns no page of any requested range) is
// skipped entirely — its zero-valued response is what it would have
// reported — so idle shards pay no query encoding or queue round
// trip. All submitted commands are waited for even on error, so
// scatter never leaks queue slots.
//
// bounds/minDists carry a pruned round's per-query thresholds and
// per-segment lower bounds (nil on the unpruned paths). Both are
// global values — bounds are query properties and a lower bound holds
// for the whole global segment — so every shard receives the same
// slices verbatim (localSegs preserves the (query, segment) shape) and
// the shards' abort decisions match the reference device's exactly.
func (sh *ShardedEngine) scatter(ctx context.Context, db *ShardedDatabase, queries [][]float32, coarse bool, segs [][]SlotRange, bounds []int, minDists [][]int, opt SearchOptions) ([]HostResponse, error) {
	n := len(sh.shards)
	resps := make([]HostResponse, n)
	ids := make([]CommandID, n)
	submitted := make([]bool, n)
	var firstErr error
	for s, dev := range sh.shards {
		local := localSegs(segs, s, n, db.lay.embPerPage)
		if !hasWork(local) {
			continue
		}
		cmd := HostCommand{
			Opcode: OpcodeScan, DBID: db.ID, Queries: queries,
			Scan: &ScanConfig{Coarse: coarse, Segs: local, Bounds: bounds, MinDists: minDists},
			Opt:  SearchOptions{MetaTag: opt.MetaTag},
		}
		id, err := dev.q.SubmitAsync(ctx, cmd)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		ids[s], submitted[s] = id, true
	}
	// Gather with a background context: a cancelled command context
	// aborts execution inside the shard (the command carries ctx), and
	// the completion must still be consumed to free the queue slot.
	for s, dev := range sh.shards {
		if !submitted[s] {
			continue
		}
		resp, err := dev.q.Wait(context.Background(), ids[s])
		if err != nil && firstErr == nil {
			firstErr = err
		}
		resps[s] = resp
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return resps, nil
}

// localSegs translates per-query global slot ranges into shard s's
// local coordinates, preserving the (query, segment) shape; segments
// with no owned page become the empty sentinel. The flat and coarse
// phases hand every query the same underlying segment slice, so a
// list identical to the previous query's reuses its translation (the
// result is read-only downstream).
func localSegs(segs [][]SlotRange, s, n, embPerPage int) [][]SlotRange {
	out := make([][]SlotRange, len(segs))
	var prev, prevOut []SlotRange
	for qi, list := range segs {
		if len(list) > 0 && len(prev) == len(list) && &prev[0] == &list[0] {
			out[qi] = prevOut
			continue
		}
		ls := make([]SlotRange, len(list))
		for si, r := range list {
			ls[si] = localRange(r, s, n, embPerPage)
		}
		out[qi] = ls
		prev, prevOut = list, ls
	}
	return out
}

// localRange clips one global slot range to the pages shard s owns
// (global pages ≡ s mod n) and rewrites it in local coordinates.
// Because ownership is per page, the owned part of a contiguous global
// range is a contiguous local range: partial-page slot bounds apply
// only when the shard owns the range's first or last global page.
func localRange(r SlotRange, s, n, embPerPage int) SlotRange {
	gp0, gp1 := r.First/embPerPage, r.Last/embPerPage
	g0 := gp0 + posMod(s-gp0, n) // first owned page >= gp0
	g1 := gp1 - posMod(gp1-s, n) // last owned page <= gp1
	if g0 > gp1 || g1 < gp0 {
		return SlotRange{First: 0, Last: -1}
	}
	first := (g0 / n) * embPerPage
	if g0 == gp0 {
		first += r.First % embPerPage
	}
	last := (g1/n)*embPerPage + embPerPage - 1
	if g1 == gp1 {
		last = (g1/n)*embPerPage + r.Last%embPerPage
	}
	return SlotRange{First: first, Last: last}
}

// hasWork reports whether any translated segment is non-empty.
func hasWork(segs [][]SlotRange) bool {
	for _, list := range segs {
		for _, r := range list {
			if r.Last >= r.First {
				return true
			}
		}
	}
	return false
}

func posMod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// globalPos maps a shard-local slot position back to its single-device
// position: local page l of shard s is global page l*n + s.
func globalPos(pos, s, n, embPerPage int) int {
	return (pos/embPerPage*n+s)*embPerPage + pos%embPerPage
}

// mergeSeg remaps one (query, segment)'s shard-local entry positions
// to global ones (in place: the response slices are owned by the
// gather side) and k-way merges the per-shard streams in global
// position order, appending to dst.
func (sh *ShardedEngine) mergeSeg(dst []TTLEntry, resps []HostResponse, qi, si, embPerPage int) []TTLEntry {
	n := len(sh.shards)
	lists := sh.scr.lists[:0]
	for s := range resps {
		if resps[s].Scan == nil {
			continue // shard skipped: no work in this phase
		}
		es := resps[s].Scan[qi][si].Entries
		if len(es) == 0 {
			continue
		}
		for i := range es {
			es[i].Pos = globalPos(es[i].Pos, s, n, embPerPage)
		}
		lists = append(lists, es)
	}
	sh.scr.lists = lists
	return mergeEntryLists(dst, lists)
}

// gatherSegStats folds one (query, segment)'s shard outcomes into st:
// count-type events sum across shards; the wave count — the parallel
// critical path of the segment — aggregates by maximum, which equals
// the single-device value because the shards' per-plane page loads are
// identical to the single device's, plane for plane.
func gatherSegStats(resps []HostResponse, qi, si int, coarse bool, st *QueryStats) {
	waves, pages, aborted := 0, 0, 0
	for s := range resps {
		if resps[s].Scan == nil {
			continue // shard skipped: no work in this phase
		}
		r := &resps[s].Scan[qi][si]
		if r.Waves > waves {
			waves = r.Waves
		}
		if r.AbortedWaves > aborted {
			aborted = r.AbortedWaves
		}
		pages += r.Pages
		st.EntriesScanned += r.Scanned
		st.Survivors += r.Survivors
		st.PrunedPages += r.PrunedPages
		st.PrunedSlots += r.PrunedSlots
		st.TTLBytes += r.TTLBytes
	}
	// Aborted waves aggregate like real waves: the segment's parallel
	// critical path, max across shards (= the reference device's value,
	// because the abort is decided from the same spans geometry).
	st.AbortedWaves += aborted
	if coarse {
		st.CoarseWaves += waves
		st.CoarsePages += pages
	} else {
		st.FineWaves += waves
		st.FinePages += pages
	}
}

// gatherIBC sums one query's broadcast counts across the shards (the
// shard planes partition the single device's planes, so the sum equals
// the single-device batch-path count).
func gatherIBC(resps []HostResponse, qi int) int {
	n := 0
	for s := range resps {
		if len(resps[s].QueryStats) == 0 {
			continue // shard skipped: no work in this phase
		}
		n += resps[s].QueryStats[qi].IBCBroadcasts
	}
	return n
}

// perShardStats extracts the [shard][query] stats view of a scatter
// round, adding it to prev (the coarse round) when non-nil. A skipped
// shard's view is all zero.
func perShardStats(resps []HostResponse, nq int, prev [][]QueryStats) [][]QueryStats {
	out := make([][]QueryStats, len(resps))
	for s := range resps {
		merged := make([]QueryStats, nq)
		if prev != nil {
			copy(merged, prev[s])
		}
		for i, st := range resps[s].QueryStats {
			merged[i].Add(st)
		}
		out[s] = merged
	}
	return out
}

// searchFlat is the sharded brute-force path: every query scans the
// whole binary region, striped across the shards.
func (sh *ShardedEngine) searchFlat(ctx context.Context, db *ShardedDatabase, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, [][]QueryStats, error) {
	segs := make([][]SlotRange, len(queries))
	// The live segment plan of the (possibly mutated) database: one
	// range per deployed-or-appended run, shared by every query.
	whole := db.mut.flatPlan
	for i := range segs {
		segs[i] = whole
	}
	resps, err := sh.scatter(ctx, db, queries, false, segs, nil, nil, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	results := make([][]DocResult, len(queries))
	sts := make([]QueryStats, len(queries))
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		st := &sts[qi]
		st.IBCBroadcasts = gatherIBC(resps, qi)
		entries := sh.scr.entries[:0]
		for si := range whole {
			gatherSegStats(resps, qi, si, false, st)
			entries = sh.mergeSeg(entries, resps, qi, si, db.lay.embPerPage)
		}
		sh.scr.entries = entries
		res, err := sh.finish(db, queries[qi], entries, k, opt, st)
		if err != nil {
			return nil, nil, nil, err
		}
		results[qi] = res
	}
	return results, sts, perShardStats(resps, len(queries), nil), nil
}

// searchIVF is the sharded IVF path: a coarse scatter over the striped
// centroid region, gather-side cluster selection against the router's
// global R-IVF table, then a fine scatter of every query's probed
// clusters.
func (sh *ShardedEngine) searchIVF(ctx context.Context, db *ShardedDatabase, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, [][]QueryStats, error) {
	nlist := len(db.lay.rivf)
	if nlist == 0 {
		return nil, nil, nil, fmt.Errorf("reis: database %d was not deployed with IVF_Deploy", db.ID)
	}
	nprobe := opt.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	// Refresh the hot-cluster pins at the same command boundary the
	// single device does, so both topologies decay the probe counters
	// and recompute the pin set in lockstep.
	if err := sh.refreshCache(db); err != nil {
		return nil, nil, nil, err
	}

	// Coarse phase: every query ranks the whole centroid region.
	coarseSegs := make([][]SlotRange, len(queries))
	wholeCent := []SlotRange{{First: 0, Last: nlist - 1}}
	for i := range coarseSegs {
		coarseSegs[i] = wholeCent
	}
	cresps, err := sh.scatter(ctx, db, queries, true, coarseSegs, nil, nil, opt)
	if err != nil {
		return nil, nil, nil, err
	}

	// Gather-side controller phase: merge each query's centroid
	// entries in global position order, select the nprobe nearest
	// clusters, derive the fine segments from the global R-IVF table.
	sts := make([]QueryStats, len(queries))
	fineSegs := make([][]SlotRange, len(queries))
	// pinSegs parallels fineSegs: a non-nil entry means that segment is
	// served from the router's hot-cluster cache, and its fineSegs slot
	// holds the empty sentinel so no shard scans it.
	var pinSegs [][]*pinnedRange
	var packed [][]byte
	if db.cache != nil {
		pinSegs = make([][]*pinnedRange, len(queries))
		packed = make([][]byte, len(queries))
	}
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		st := &sts[qi]
		st.IBCBroadcasts = gatherIBC(cresps, qi)
		gatherSegStats(cresps, qi, 0, true, st)
		cents := sh.mergeSeg(sh.scr.cents[:0], cresps, qi, 0, db.lay.embPerPage)
		sh.scr.cents = cents
		st.CoarseEntries = len(cents)
		st.SelectInput += len(cents)
		slices.SortFunc(cents, cmpTTLDistPos)
		np := nprobe
		if np > len(cents) {
			np = len(cents)
		}
		for _, c := range cents[:np] {
			if db.cache == nil {
				fineSegs[qi] = append(fineSegs[qi], db.mut.buckets[c.Pos]...)
				continue
			}
			db.cache.probe(c.Pos)
			pc := db.cache.pinnedFor(c.Pos)
			for ri, sr := range db.mut.buckets[c.Pos] {
				if pc != nil {
					fineSegs[qi] = append(fineSegs[qi], SlotRange{First: 0, Last: -1})
					pinSegs[qi] = append(pinSegs[qi], &pc.ranges[ri])
				} else {
					fineSegs[qi] = append(fineSegs[qi], sr)
					pinSegs[qi] = append(pinSegs[qi], nil)
				}
			}
		}
	}

	// Fine phase: scan every query's probed clusters.
	fresps, err := sh.scatter(ctx, db, queries, false, fineSegs, nil, nil, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	results := make([][]DocResult, len(queries))
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		st := &sts[qi]
		st.IBCBroadcasts += gatherIBC(fresps, qi)
		entries := sh.scr.entries[:0]
		for si := range fineSegs[qi] {
			if pinSegs != nil && pinSegs[qi][si] != nil {
				if packed[qi] == nil {
					packed[qi] = vecmath.PackBinaryBytes(vecmath.BinaryQuantize(queries[qi], nil), nil)
				}
				var cp, cs int
				entries, cp, cs = db.cache.scanPinned(pinSegs[qi][si], packed[qi],
					db.cachedParams(sh.opts.DistanceFilter, opt.MetaTag, 0), entries)
				st.CachedPages += cp
				st.CachedSlots += cs
				continue
			}
			gatherSegStats(fresps, qi, si, false, st)
			entries = sh.mergeSeg(entries, fresps, qi, si, db.lay.embPerPage)
		}
		sh.scr.entries = entries
		res, err := sh.finish(db, queries[qi], entries, k, opt, st)
		if err != nil {
			return nil, nil, nil, err
		}
		results[qi] = res
	}
	return results, sts, perShardStats(fresps, len(queries), perShardStats(cresps, len(queries), nil)), nil
}

// finish runs the shared controller tail on the gather side, fetching
// INT8 and document pages from the shards that own them.
func (sh *ShardedEngine) finish(db *ShardedDatabase, query []float32, entries []TTLEntry, k int, opt SearchOptions, st *QueryStats) ([]DocResult, error) {
	sh.scr.src = shardTailSource{sh: sh, db: db}
	tp := tailParams{
		int8Bytes:   db.lay.int8Bytes,
		int8PerPage: db.lay.int8PerPage,
		docsPerPage: db.lay.docsPerPage,
		docBytes:    db.lay.docBytes,
		planes:      sh.cfg.Geo.Planes(),
		params:      db.lay.params,
	}
	if db.mut.deadCount > 0 {
		tp.dead = db.mut.tomb
	}
	return runTail(&sh.scr.src, &sh.scr.tail, tp, query, entries, k, opt, st)
}

// shardTailSource reads tail pages from the owning shard. The returned
// plane index is the *global* plane (page mod total planes), which is
// exactly the plane the page occupies on a single device, so rerank
// wave accounting matches bit for bit.
type shardTailSource struct {
	sh *ShardedEngine
	db *ShardedDatabase
}

func (t *shardTailSource) readPage(ts *tailScratch, region func(*Database) ssd.Region, page int) ([]byte, int, error) {
	n := len(t.sh.shards)
	owner, local := page%n, page/n
	dev := t.sh.shards[owner]
	geo := dev.e.SSD.Cfg.Geo
	addr, err := region(t.db.locals[owner]).AddressOf(geo, local)
	if err != nil {
		return nil, 0, err
	}
	data, oob, err := dev.e.SSD.Dev.ReadPageInto(addr, ts.pageBuf, ts.oobBuf)
	if err != nil {
		return nil, 0, err
	}
	ts.pageBuf, ts.oobBuf = data, oob
	return data, page % t.sh.cfg.Geo.Planes(), nil
}

func (t *shardTailSource) readRerankPage(ts *tailScratch, page int) ([]byte, int, error) {
	return t.readPage(ts, func(db *Database) ssd.Region { return db.rec.Int8s }, page)
}

func (t *shardTailSource) readDocPage(ts *tailScratch, page int) ([]byte, int, error) {
	return t.readPage(ts, func(db *Database) ssd.Region { return db.rec.Documents }, page)
}

// Search runs one brute-force query through the sharded path. Results
// are bit-identical to Engine.Search over the same data; device stats
// match the batch-admission path (a query is broadcast only to planes
// that scan it).
func (sh *ShardedEngine) Search(dbID int, query []float32, k int, opt SearchOptions) ([]DocResult, QueryStats, error) {
	results, sts, _, err := sh.searchGroup(context.Background(),
		&HostCommand{Opcode: OpcodeSearch, DBID: dbID, K: k, Opt: opt}, [][]float32{query}, false)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return results[0], sts[0], nil
}

// SearchBatch runs a query batch through the sharded path.
func (sh *ShardedEngine) SearchBatch(dbID int, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	results, sts, _, err := sh.searchGroup(context.Background(),
		&HostCommand{Opcode: OpcodeSearch, DBID: dbID, K: k, Opt: opt}, queries, false)
	return results, sts, err
}

// IVFSearch runs one IVF query through the sharded path.
func (sh *ShardedEngine) IVFSearch(dbID int, query []float32, k int, opt SearchOptions) ([]DocResult, QueryStats, error) {
	results, sts, _, err := sh.searchGroup(context.Background(),
		&HostCommand{Opcode: OpcodeIVFSearch, DBID: dbID, K: k, Opt: opt}, [][]float32{query}, false)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return results[0], sts[0], nil
}

// IVFSearchBatch runs an IVF query batch through the sharded path.
func (sh *ShardedEngine) IVFSearchBatch(dbID int, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	results, sts, _, err := sh.searchGroup(context.Background(),
		&HostCommand{Opcode: OpcodeIVFSearch, DBID: dbID, K: k, Opt: opt}, queries, false)
	return results, sts, err
}

// Append implements the OpcodeAppend host command synchronously,
// returning the assigned entry ids (identical to a single device's).
func (sh *ShardedEngine) Append(dbID int, cfg AppendConfig) ([]int, error) {
	return submitAppend(sh, dbID, cfg)
}

// Delete implements the OpcodeDelete host command synchronously.
func (sh *ShardedEngine) Delete(dbID int, ids ...int) error { return submitDelete(sh, dbID, ids) }

// Compact implements the OpcodeCompact host command synchronously.
func (sh *ShardedEngine) Compact(dbID int, minLiveRatio float64) (WearStats, error) {
	return submitCompact(sh, dbID, minLiveRatio)
}

// CalibrateNProbe finds the smallest nprobe meeting the Recall@k
// target through the sharded path and records it on the database, so
// host commands can address the operating point by TargetRecall.
// Because sharded results are bit-identical to a single device's, the
// calibrated nprobe is too.
func (sh *ShardedEngine) CalibrateNProbe(dbID int, queries [][]float32, groundTruth [][]int, k int, target float64) (int, error) {
	db, err := sh.DB(dbID)
	if err != nil {
		return 0, err
	}
	nlist := len(db.lay.rivf)
	if nlist == 0 {
		return 0, fmt.Errorf("reis: database %d is not IVF-deployed", dbID)
	}
	if len(queries) == 0 {
		return 0, fmt.Errorf("reis: empty query set")
	}
	nprobe, ok, err := calibrateSweep(nlist, groundTruth[:len(queries)], k, target, func(nprobe int) ([][]DocResult, error) {
		results, _, err := sh.IVFSearchBatch(dbID, queries, k, SearchOptions{NProbe: nprobe, SkipDocs: true})
		return results, err
	})
	if err != nil {
		return 0, err
	}
	if ok {
		sh.execMu.Lock()
		db.calib = append(db.calib, recallPoint{target: target, nprobe: nprobe})
		sh.execMu.Unlock()
	}
	return nprobe, nil
}
