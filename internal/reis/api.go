package reis

import (
	"context"
	"errors"
	"fmt"
)

// The NVM command set reserves opcodes 80h-FFh for vendor-specific
// commands (Sec 4.4.1); REIS claims four of them for the Table 1 API.
const (
	OpcodeDBDeploy  uint8 = 0x80
	OpcodeIVFDeploy uint8 = 0x81
	OpcodeSearch    uint8 = 0x82
	OpcodeIVFSearch uint8 = 0x83
)

// Sentinel errors of the host interface. Submission paths wrap them
// with command detail; match with errors.Is.
var (
	// ErrUnknownOpcode: the command's opcode is not one of the Table 1
	// vendor opcodes.
	ErrUnknownOpcode = errors.New("reis: unknown vendor opcode")
	// ErrMissingPayload: a deploy command without its DeployConfig.
	ErrMissingPayload = errors.New("reis: deploy command without payload")
	// ErrNoQueries: a search command with an empty Q operand.
	ErrNoQueries = errors.New("reis: search command without queries")
	// ErrBadK: a search command with a non-positive K operand.
	ErrBadK = errors.New("reis: non-positive K")
	// ErrQueryDims: query vectors of inconsistent dimensionality (within
	// one command, or against the target database).
	ErrQueryDims = errors.New("reis: query dimensionality mismatch")
	// ErrQueueFull: SubmitAsync admission control rejected the command
	// because the queue pair already holds Depth outstanding commands.
	ErrQueueFull = errors.New("reis: submission queue full")
	// ErrQueueClosed: the queue (or its engine) was closed; commands
	// still pending at close time complete with this error.
	ErrQueueClosed = errors.New("reis: queue closed")
	// ErrNotCalibrated: a TargetRecall operand could not be resolved
	// because the database has no CalibrateNProbe record covering it.
	ErrNotCalibrated = errors.New("reis: no nprobe calibration for target recall")
)

// HostCommand is one vendor-specific NVMe command as the host driver
// would submit it. Exactly one payload field matching the opcode must
// be populated.
type HostCommand struct {
	Opcode uint8

	// Deploy carries DB_Deploy / IVF_Deploy parameters.
	Deploy *DeployConfig

	// Search parameters (Search / IVF_Search). Queries are processed
	// as one batch, matching the batched Q operand of Table 1.
	DBID    int
	Queries [][]float32
	K       int
	// TargetRecall is IVF_Search's accuracy operand R; the device
	// resolves it to a calibrated nprobe when no explicit NProbe is
	// given (see resolveSearchOptions).
	TargetRecall float64
	NProbe       int
	Opt          SearchOptions
}

// validate checks the host-side invariants of a command — opcode,
// payload presence, K, and uniform query dimensionality — before it is
// admitted to a queue, so malformed commands fail at submission instead
// of deep inside the scan path.
func (cmd *HostCommand) validate() error {
	switch cmd.Opcode {
	case OpcodeDBDeploy, OpcodeIVFDeploy:
		if cmd.Deploy == nil {
			return fmt.Errorf("%w (opcode %#x)", ErrMissingPayload, cmd.Opcode)
		}
		return nil
	case OpcodeSearch, OpcodeIVFSearch:
		if len(cmd.Queries) == 0 {
			return ErrNoQueries
		}
		if cmd.K <= 0 {
			return fmt.Errorf("%w (K=%d)", ErrBadK, cmd.K)
		}
		dim := len(cmd.Queries[0])
		for i, q := range cmd.Queries {
			if len(q) != dim {
				return fmt.Errorf("%w (query 0 has dim %d, query %d has dim %d)",
					ErrQueryDims, dim, i, len(q))
			}
		}
		return nil
	default:
		return fmt.Errorf("%w %#x", ErrUnknownOpcode, cmd.Opcode)
	}
}

// isSearchOp reports whether the opcode is served by the batched scan
// pipeline (as opposed to a deploy).
func isSearchOp(op uint8) bool { return op == OpcodeSearch || op == OpcodeIVFSearch }

// resolveSearchOptions folds a command's NProbe / TargetRecall operands
// into the SearchOptions handed to the execution core — the single
// normalization point shared by the synchronous Submit wrapper and the
// asynchronous queue dispatcher. Precedence:
//
//  1. an explicit command-level NProbe operand wins;
//  2. otherwise a non-zero Opt.NProbe is kept as-is;
//  3. otherwise a positive TargetRecall (the accuracy operand R of
//     Table 1) is resolved against the database's recorded
//     CalibrateNProbe results — ErrNotCalibrated if none covers it;
//  4. otherwise the engine's nprobe=1 default applies downstream.
func resolveSearchOptions(db *Database, cmd *HostCommand) (SearchOptions, error) {
	opt := cmd.Opt
	switch {
	case cmd.NProbe != 0:
		opt.NProbe = cmd.NProbe
	case opt.NProbe != 0:
		// Explicit option-level nprobe; nothing to resolve.
	case cmd.TargetRecall > 0:
		np, ok := db.nprobeForRecall(cmd.TargetRecall)
		if !ok {
			return opt, fmt.Errorf("%w (database %d, target %.3f)",
				ErrNotCalibrated, db.ID, cmd.TargetRecall)
		}
		opt.NProbe = np
	}
	return opt, nil
}

// HostResponse is the completion the device returns.
type HostResponse struct {
	// Done mirrors the paper's done signal raised once document
	// chunks are identified.
	Done bool
	// Results[i] are the retrieved documents for Queries[i].
	Results [][]DocResult
	// QueryStats[i] are the device events of Queries[i]; feed them to
	// Latency / BatchLatency for per-query and batch service costing.
	QueryStats []QueryStats
	// Stats aggregates the device events of the whole batch.
	Stats QueryStats
}

// Submit executes one host command synchronously: a thin wrapper that
// submits to the engine's built-in queue pair and waits for the
// completion. Synchronous and asynchronous submission therefore share
// one execution core, and Submit's results are bit-identical to the
// same command served through SubmitAsync.
func (e *Engine) Submit(cmd HostCommand) (HostResponse, error) {
	q, err := e.defaultQueue()
	if err != nil {
		return HostResponse{}, err
	}
	id, err := q.submit(context.Background(), cmd, true)
	if err != nil {
		return HostResponse{}, err
	}
	return q.Wait(context.Background(), id)
}

// executeCmd serves one validated command on the dispatcher goroutine.
// The caller must hold e.execMu.
func (e *Engine) executeCmd(ctx context.Context, cmd *HostCommand) (HostResponse, error) {
	switch cmd.Opcode {
	case OpcodeDBDeploy:
		cfg := *cmd.Deploy
		cfg.Centroids, cfg.Assign = nil, nil
		_, err := e.deploy(cfg)
		return HostResponse{Done: err == nil}, err
	case OpcodeIVFDeploy:
		_, err := e.ivfDeploy(*cmd.Deploy)
		return HostResponse{Done: err == nil}, err
	default:
		results, sts, err := e.executeSearch(ctx, cmd, cmd.Queries)
		if err != nil {
			return HostResponse{}, err
		}
		resp := HostResponse{Done: true, Results: results, QueryStats: sts}
		for _, st := range sts {
			resp.Stats.Add(st)
		}
		return resp, nil
	}
}

// executeSearch runs the batched scan pipeline for queries — the
// command's own Q operand, or the concatenation of a coalesced dispatch
// group's operands — under the command's parameters. The caller must
// hold e.execMu.
func (e *Engine) executeSearch(ctx context.Context, cmd *HostCommand, queries [][]float32) ([][]DocResult, []QueryStats, error) {
	db, err := e.db(cmd.DBID)
	if err != nil {
		return nil, nil, err
	}
	opt, err := resolveSearchOptions(db, cmd)
	if err != nil {
		return nil, nil, err
	}
	if cmd.Opcode == OpcodeSearch {
		return e.searchBatch(ctx, db, queries, cmd.K, opt)
	}
	return e.ivfSearchBatch(ctx, db, queries, cmd.K, opt)
}
