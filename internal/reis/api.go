package reis

import (
	"context"
	"errors"
	"fmt"
)

// The NVM command set reserves opcodes 80h-FFh for vendor-specific
// commands (Sec 4.4.1); REIS claims four of them for the Table 1 API.
// OpcodeScan is this repository's extension for the sharded topology
// (the scatter operand a shard router sends to each member device);
// OpcodeAppend/OpcodeDelete/OpcodeCompact are the online-mutability
// extension (out-of-place appends, tombstone deletes, and the
// background garbage collector, which the queue scheduler interleaves
// with searches step by step — see mutate.go, queue.go and DESIGN.md).
const (
	OpcodeDBDeploy  uint8 = 0x80
	OpcodeIVFDeploy uint8 = 0x81
	OpcodeSearch    uint8 = 0x82
	OpcodeIVFSearch uint8 = 0x83
	OpcodeScan      uint8 = 0x84
	OpcodeAppend    uint8 = 0x85
	OpcodeDelete    uint8 = 0x86
	OpcodeCompact   uint8 = 0x87
)

// Sentinel errors of the host interface. Submission paths wrap them
// with command detail; match with errors.Is.
var (
	// ErrUnknownOpcode: the command's opcode is not one of the Table 1
	// vendor opcodes.
	ErrUnknownOpcode = errors.New("reis: unknown vendor opcode")
	// ErrMissingPayload: a deploy command without its DeployConfig.
	ErrMissingPayload = errors.New("reis: deploy command without payload")
	// ErrNoQueries: a search command with an empty Q operand.
	ErrNoQueries = errors.New("reis: search command without queries")
	// ErrBadK: a search command with a non-positive K operand.
	ErrBadK = errors.New("reis: non-positive K")
	// ErrQueryDims: query vectors of inconsistent dimensionality (within
	// one command, or against the target database).
	ErrQueryDims = errors.New("reis: query dimensionality mismatch")
	// ErrQueueFull: SubmitAsync admission control rejected the command
	// because the queue pair already holds Depth outstanding commands.
	ErrQueueFull = errors.New("reis: submission queue full")
	// ErrQueueClosed: the queue (or its engine) was closed; commands
	// still pending at close time complete with this error.
	ErrQueueClosed = errors.New("reis: queue closed")
	// ErrNotCalibrated: a TargetRecall operand could not be resolved
	// because the database has no CalibrateNProbe record covering it.
	ErrNotCalibrated = errors.New("reis: no nprobe calibration for target recall")
	// ErrBadScanRange: an OpcodeScan segment is malformed (negative
	// start) or reaches beyond the addressed region. The empty
	// sentinel (First 0, Last -1) is always valid.
	ErrBadScanRange = errors.New("reis: scan segment out of range")
	// ErrNoItems: an OpcodeAppend/OpcodeDelete command with an empty
	// item list.
	ErrNoItems = errors.New("reis: mutation command without items")
	// ErrBadAssign: an append's cluster assignment is missing,
	// superfluous (flat database) or out of range.
	ErrBadAssign = errors.New("reis: append cluster assignment mismatch")
	// ErrUnknownID: a delete names an id that was never issued, is
	// already tombstoned, or repeats within the command. The whole
	// delete is rejected.
	ErrUnknownID = errors.New("reis: unknown or already-deleted id")
	// ErrBadThreshold: an OpcodeCompact live-ratio threshold outside
	// [0, 1].
	ErrBadThreshold = errors.New("reis: compact live-ratio threshold out of range")
)

// HostCommand is one vendor-specific NVMe command as the host driver
// would submit it. Exactly one payload field matching the opcode must
// be populated.
type HostCommand struct {
	Opcode uint8

	// Deploy carries DB_Deploy / IVF_Deploy parameters.
	Deploy *DeployConfig

	// Search parameters (Search / IVF_Search). Queries are processed
	// as one batch, matching the batched Q operand of Table 1.
	DBID    int
	Queries [][]float32
	K       int
	// TargetRecall is IVF_Search's accuracy operand R; the device
	// resolves it to a calibrated nprobe when no explicit NProbe is
	// given (see resolveSearchOptions).
	TargetRecall float64
	NProbe       int
	Opt          SearchOptions

	// Scan carries the per-query segment lists of an OpcodeScan
	// command (K and NProbe are unused: selection happens on the
	// gather side).
	Scan *ScanConfig

	// Append / Del / Compact carry the mutation payloads of the
	// matching opcodes (DBID addresses the database).
	Append  *AppendConfig
	Del     *DeleteConfig
	Compact *CompactConfig
}

// SlotRange is one inclusive range of region slot positions. The empty
// sentinel (First 0, Last -1) marks a segment with no work on the
// addressed device; it keeps (query, segment) indices aligned across
// the shards of a scatter.
type SlotRange struct {
	First, Last int
}

// ScanConfig is the payload of an OpcodeScan command: which region to
// scan and, per query, which slot ranges. The router translates global
// ranges into each shard's local coordinates before submission.
type ScanConfig struct {
	// Coarse scans the centroid region (no distance filtering, no
	// metadata filtering — TTL-C must rank every centroid, Sec 4.3.1);
	// otherwise the binary embedding region is scanned under the
	// engine's distance filter and the command's MetaTag option.
	Coarse bool
	// Segs[i] are the slot ranges Queries[i] scans; len(Segs) must
	// equal len(Queries).
	Segs [][]SlotRange
	// Bounds[i], when non-nil, is Queries[i]'s top-k pruning threshold
	// (0 = pruning disabled for that query): the device skips the TTL
	// transfer of any slot whose distance is strictly above the bound,
	// and aborts whole segments whose proven lower bound exceeds it
	// (see MinDists). len(Bounds) must equal len(Queries).
	Bounds []int
	// MinDists[i][j], when non-nil, is a proven lower bound on every
	// distance in Segs[i][j] (e.g. the triangle-inequality bound
	// max(0, d_c - R_c) of an IVF cluster). A segment whose lower bound
	// is strictly above the query's Bound is aborted before any page is
	// sensed; the device accounts the saved pages/waves as PrunedPages /
	// AbortedWaves. The shape must mirror Segs.
	MinDists [][]int
}

// ScanSegResult is one (query, segment) outcome of an OpcodeScan
// command: the surviving TTL entries in ascending position order plus
// the segment's event counts. Waves is the per-segment parallel
// critical path (max pages on one plane of this device), which the
// gather side aggregates across shards by maximum, not sum.
type ScanSegResult struct {
	Entries      []TTLEntry
	Waves, Pages int
	Scanned      int
	Survivors    int
	TTLBytes     int64
	// PrunedPages / AbortedWaves are the pages and wave slots this
	// segment did NOT scan because its proven lower bound exceeded the
	// query's pruning threshold; PrunedSlots counts computed distances
	// above the threshold whose TTL transfer was skipped. They are
	// reported apart from Pages/Waves so page-based gates keep their
	// meaning (Pages counts sensed pages only).
	PrunedPages  int
	AbortedWaves int
	PrunedSlots  int
}

// validate checks the host-side invariants of a command — opcode,
// payload presence, K, and uniform query dimensionality — before it is
// admitted to a queue, so malformed commands fail at submission instead
// of deep inside the scan path.
func (cmd *HostCommand) validate() error {
	switch cmd.Opcode {
	case OpcodeDBDeploy, OpcodeIVFDeploy:
		if cmd.Deploy == nil {
			return fmt.Errorf("%w (opcode %#x)", ErrMissingPayload, cmd.Opcode)
		}
		return nil
	case OpcodeSearch, OpcodeIVFSearch:
		if len(cmd.Queries) == 0 {
			return ErrNoQueries
		}
		if cmd.K <= 0 {
			return fmt.Errorf("%w (K=%d)", ErrBadK, cmd.K)
		}
		return cmd.checkQueryDims()
	case OpcodeScan:
		if cmd.Scan == nil {
			return fmt.Errorf("%w (opcode %#x)", ErrMissingPayload, cmd.Opcode)
		}
		if len(cmd.Queries) == 0 {
			return ErrNoQueries
		}
		if len(cmd.Scan.Segs) != len(cmd.Queries) {
			return fmt.Errorf("%w (scan command with %d segment lists for %d queries)",
				ErrMissingPayload, len(cmd.Scan.Segs), len(cmd.Queries))
		}
		for qi, list := range cmd.Scan.Segs {
			for si, r := range list {
				// Last < First is the empty sentinel; a non-empty
				// segment must start at a valid slot. The upper bound
				// is checked at execution, against the addressed
				// region's size.
				if r.Last >= r.First && r.First < 0 {
					return fmt.Errorf("%w (query %d segment %d: [%d, %d])",
						ErrBadScanRange, qi, si, r.First, r.Last)
				}
			}
		}
		if cmd.Scan.Bounds != nil && len(cmd.Scan.Bounds) != len(cmd.Queries) {
			return fmt.Errorf("%w (scan command with %d pruning bounds for %d queries)",
				ErrMissingPayload, len(cmd.Scan.Bounds), len(cmd.Queries))
		}
		if cmd.Scan.MinDists != nil {
			if len(cmd.Scan.MinDists) != len(cmd.Scan.Segs) {
				return fmt.Errorf("%w (scan command with %d lower-bound lists for %d segment lists)",
					ErrMissingPayload, len(cmd.Scan.MinDists), len(cmd.Scan.Segs))
			}
			for qi, lbs := range cmd.Scan.MinDists {
				if len(lbs) != len(cmd.Scan.Segs[qi]) {
					return fmt.Errorf("%w (query %d: %d lower bounds for %d segments)",
						ErrMissingPayload, qi, len(lbs), len(cmd.Scan.Segs[qi]))
				}
			}
		}
		return cmd.checkQueryDims()
	case OpcodeAppend:
		a := cmd.Append
		if a == nil {
			return fmt.Errorf("%w (opcode %#x)", ErrMissingPayload, cmd.Opcode)
		}
		if len(a.Vectors) == 0 {
			return ErrNoItems
		}
		if len(a.Docs) != len(a.Vectors) {
			return fmt.Errorf("%w (append with %d docs for %d vectors)", ErrMissingPayload, len(a.Docs), len(a.Vectors))
		}
		if a.MetaTags != nil && len(a.MetaTags) != len(a.Vectors) {
			return fmt.Errorf("%w (append with %d meta tags for %d vectors)", ErrMissingPayload, len(a.MetaTags), len(a.Vectors))
		}
		dim := len(a.Vectors[0])
		for i, v := range a.Vectors {
			if len(v) != dim {
				return fmt.Errorf("%w (append vector 0 has dim %d, vector %d has dim %d)",
					ErrQueryDims, dim, i, len(v))
			}
		}
		return nil
	case OpcodeDelete:
		if cmd.Del == nil {
			return fmt.Errorf("%w (opcode %#x)", ErrMissingPayload, cmd.Opcode)
		}
		if len(cmd.Del.IDs) == 0 {
			return ErrNoItems
		}
		for _, id := range cmd.Del.IDs {
			if id < 0 {
				return fmt.Errorf("%w (%d)", ErrUnknownID, id)
			}
		}
		return nil
	case OpcodeCompact:
		if cmd.Compact == nil {
			return fmt.Errorf("%w (opcode %#x)", ErrMissingPayload, cmd.Opcode)
		}
		if r := cmd.Compact.MinLiveRatio; r < 0 || r > 1 {
			return fmt.Errorf("%w (%g)", ErrBadThreshold, r)
		}
		return nil
	default:
		return fmt.Errorf("%w %#x", ErrUnknownOpcode, cmd.Opcode)
	}
}

// checkQueryDims verifies the batch's queries share one dimensionality.
func (cmd *HostCommand) checkQueryDims() error {
	dim := len(cmd.Queries[0])
	for i, q := range cmd.Queries {
		if len(q) != dim {
			return fmt.Errorf("%w (query 0 has dim %d, query %d has dim %d)",
				ErrQueryDims, dim, i, len(q))
		}
	}
	return nil
}

// isSearchOp reports whether the opcode is served by the batched scan
// pipeline with gather-side selection (as opposed to a deploy or a
// raw scatter scan).
func isSearchOp(op uint8) bool { return op == OpcodeSearch || op == OpcodeIVFSearch }

// isDeployOp reports whether the opcode carries a DeployConfig payload.
func isDeployOp(op uint8) bool { return op == OpcodeDBDeploy || op == OpcodeIVFDeploy }

// isMutationOp reports whether the opcode mutates a deployed database —
// the commands the journal records and the queue holds back behind an
// active background-GC flight on the same database.
func isMutationOp(op uint8) bool {
	return op == OpcodeAppend || op == OpcodeDelete || op == OpcodeCompact
}

// resolveSearchOptions folds a command's NProbe / TargetRecall operands
// into the SearchOptions handed to the execution core — the single
// normalization point shared by the synchronous Submit wrapper and the
// asynchronous queue dispatcher. Precedence:
//
//  1. an explicit command-level NProbe operand wins;
//  2. otherwise a non-zero Opt.NProbe is kept as-is;
//  3. otherwise a positive TargetRecall (the accuracy operand R of
//     Table 1) is resolved against the database's recorded
//     CalibrateNProbe results — ErrNotCalibrated if none covers it;
//  4. otherwise the engine's nprobe=1 default applies downstream.
//
// calib are the database's recorded CalibrateNProbe points and dbID
// its id (for the error message) — passed apart so the single-device
// Database and the router's ShardedDatabase share the one resolver.
func resolveSearchOptions(calib []recallPoint, dbID int, cmd *HostCommand) (SearchOptions, error) {
	opt := cmd.Opt
	switch {
	case cmd.NProbe != 0:
		opt.NProbe = cmd.NProbe
	case opt.NProbe != 0:
		// Explicit option-level nprobe; nothing to resolve.
	case cmd.TargetRecall > 0:
		np, ok := nprobeForRecall(calib, cmd.TargetRecall)
		if !ok {
			return opt, fmt.Errorf("%w (database %d, target %.3f)",
				ErrNotCalibrated, dbID, cmd.TargetRecall)
		}
		opt.NProbe = np
	}
	return opt, nil
}

// HostResponse is the completion the device returns.
type HostResponse struct {
	// Done mirrors the paper's done signal raised once document
	// chunks are identified.
	Done bool
	// Results[i] are the retrieved documents for Queries[i].
	Results [][]DocResult
	// QueryStats[i] are the device events of Queries[i]; feed them to
	// Latency / BatchLatency for per-query and batch service costing.
	QueryStats []QueryStats
	// Stats aggregates the device events of the whole batch.
	Stats QueryStats
	// Scan carries the per-query, per-segment outcomes of an
	// OpcodeScan command ([query][segment]); nil otherwise.
	Scan [][]ScanSegResult
	// PerShard, set by sharded hosts only, is each member device's own
	// view of every query's scan-phase events (PerShard[s][i] is shard
	// s's share of query i). The aggregated QueryStats derive from
	// these plus the gather-side controller tail; feed both to
	// ShardedEngine.Latency / BatchLatency.
	PerShard [][]QueryStats

	// AppendedIDs are the entry ids an OpcodeAppend command assigned
	// (AppendedIDs[i] is Vectors[i]'s id); nil otherwise.
	AppendedIDs []int
	// Wear reports the flash cost of a mutation command (programs,
	// GC reads, block erases, wear skew); nil for non-mutation
	// commands.
	Wear *WearStats
}

// ShardStats extracts one query's per-shard stats column
// (PerShard[s][qi] for every shard s) — the shape
// ShardedEngine.Latency consumes. It returns nil for responses from a
// non-sharded host.
func (r *HostResponse) ShardStats(qi int) []QueryStats {
	if r.PerShard == nil {
		return nil
	}
	col := make([]QueryStats, len(r.PerShard))
	for s := range r.PerShard {
		col[s] = r.PerShard[s][qi]
	}
	return col
}

// Submit executes one host command synchronously: a thin wrapper that
// submits to the engine's built-in queue pair and waits for the
// completion. Synchronous and asynchronous submission therefore share
// one execution core, and Submit's results are bit-identical to the
// same command served through SubmitAsync.
func (e *Engine) Submit(cmd HostCommand) (HostResponse, error) {
	q, err := e.reg.defaultQueue(func() (*Queue, error) { return e.NewQueue(QueueConfig{}) })
	if err != nil {
		return HostResponse{}, err
	}
	id, err := q.submit(context.Background(), cmd, true)
	if err != nil {
		return HostResponse{}, err
	}
	return q.Wait(context.Background(), id)
}

// execCmd serves one validated command, serializing on the execution
// core — the Engine half of the host interface queue dispatchers use.
func (e *Engine) execCmd(ctx context.Context, cmd *HostCommand) (HostResponse, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	return e.executeCmd(ctx, cmd)
}

// execSearchGroup runs a coalesced dispatch group's concatenated Q
// operands, serializing on the execution core (host interface). The
// perShard return is always nil: a single device has no shards.
func (e *Engine) execSearchGroup(ctx context.Context, cmd *HostCommand, queries [][]float32) ([][]DocResult, []QueryStats, [][]QueryStats, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	results, sts, err := e.executeSearch(ctx, cmd, queries)
	return results, sts, nil, err
}

// executeCmd serves one validated command on the dispatcher goroutine.
// The caller must hold e.execMu.
func (e *Engine) executeCmd(ctx context.Context, cmd *HostCommand) (HostResponse, error) {
	switch cmd.Opcode {
	case OpcodeDBDeploy:
		cfg := *cmd.Deploy
		cfg.Centroids, cfg.Assign = nil, nil
		_, err := e.deploy(cfg)
		return HostResponse{Done: err == nil}, err
	case OpcodeIVFDeploy:
		_, err := e.ivfDeploy(*cmd.Deploy)
		return HostResponse{Done: err == nil}, err
	case OpcodeScan:
		return e.executeScan(ctx, cmd)
	case OpcodeAppend, OpcodeDelete, OpcodeCompact:
		db, err := e.db(cmd.DBID)
		if err != nil {
			return HostResponse{}, err
		}
		if db.mut == nil {
			return HostResponse{}, fmt.Errorf("reis: database %d is a shard slice (mutate through its router)", cmd.DBID)
		}
		resp, err := executeMutation(db.mut, engineMutTarget{e: e, db: db}, cmd)
		if err == nil {
			// The scan bound follows the live extent, and recorded
			// nprobe calibrations no longer cover the mutated corpus.
			// The caching tier drops every pinned page and cached
			// result before the mutation's completion is visible, so a
			// stale hit is impossible by construction.
			db.regionSlots = db.mut.tailSlots
			db.calib = nil
			db.cache.invalidate()
			e.jl.logCmd(cmd)
		}
		return resp, err
	default:
		results, sts, err := e.executeSearch(ctx, cmd, cmd.Queries)
		if err != nil {
			return HostResponse{}, err
		}
		resp := HostResponse{Done: true, Results: results, QueryStats: sts}
		for _, st := range sts {
			resp.Stats.Add(st)
		}
		return resp, nil
	}
}

// executeMutation serves one validated mutation command against a
// database's mutable ledger and physical target — shared by the
// single-device engine and the sharded router, which is what makes
// their outcomes bit-identical. The caller invalidates calibration on
// success.
func executeMutation(m *mutState, t mutTarget, cmd *HostCommand) (HostResponse, error) {
	switch cmd.Opcode {
	case OpcodeAppend:
		ids, wear, err := mutAppend(m, t, cmd.Append)
		if err != nil {
			return HostResponse{}, err
		}
		return HostResponse{Done: true, AppendedIDs: ids, Wear: wear}, nil
	case OpcodeDelete:
		if err := mutDelete(m, cmd.Del.IDs); err != nil {
			return HostResponse{}, err
		}
		wear := &WearStats{}
		m.fillWear(wear, t)
		return HostResponse{Done: true, Wear: wear}, nil
	default: // OpcodeCompact
		wear, err := mutCompact(m, t, cmd.Compact.MinLiveRatio)
		if err != nil {
			return HostResponse{}, err
		}
		return HostResponse{Done: true, Wear: wear}, nil
	}
}

// executeSearch runs the batched scan pipeline for queries — the
// command's own Q operand, or the concatenation of a coalesced dispatch
// group's operands — under the command's parameters. The caller must
// hold e.execMu.
func (e *Engine) executeSearch(ctx context.Context, cmd *HostCommand, queries [][]float32) ([][]DocResult, []QueryStats, error) {
	db, err := e.db(cmd.DBID)
	if err != nil {
		return nil, nil, err
	}
	opt, err := resolveSearchOptions(db.calib, db.ID, cmd)
	if err != nil {
		return nil, nil, err
	}
	return e.cachedSearch(ctx, db, cmd.Opcode, queries, cmd.K, opt)
}

// cachedSearch consults the result cache before dispatching the batch. Hits
// are served as deep copies at controller cost (QueryStats records only
// ResultCacheHits); the miss subset executes as one batch through the normal
// path so its per-query stats are bit-identical to an uncached run, then each
// miss result is inserted. Intra-batch duplicate queries all miss: lookups
// happen before any insert, keeping hit patterns independent of batch order.
func (e *Engine) cachedSearch(ctx context.Context, db *Database, op uint8, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	c := db.cache
	if c == nil || c.resBudget <= 0 || len(queries) == 0 {
		return e.dispatchSearch(ctx, db, op, queries, k, opt)
	}
	results := make([][]DocResult, len(queries))
	stats := make([]QueryStats, len(queries))
	keys := make([]string, len(queries))
	var missIdx []int
	var missQ [][]float32
	for i, q := range queries {
		keys[i] = resultKey(op, k, opt, q)
		if r, ok := c.lookupResult(keys[i]); ok {
			results[i] = r
			stats[i] = QueryStats{ResultCacheHits: 1}
			continue
		}
		missIdx = append(missIdx, i)
		missQ = append(missQ, q)
	}
	if len(missIdx) > 0 {
		mres, msts, err := e.dispatchSearch(ctx, db, op, missQ, k, opt)
		if err != nil {
			return nil, nil, err
		}
		for j, i := range missIdx {
			results[i] = mres[j]
			stats[i] = msts[j]
			c.storeResult(keys[i], mres[j])
		}
	}
	return results, stats, nil
}

func (e *Engine) dispatchSearch(ctx context.Context, db *Database, op uint8, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	if op == OpcodeSearch {
		return e.searchBatch(ctx, db, queries, k, opt)
	}
	return e.ivfSearchBatch(ctx, db, queries, k, opt)
}
