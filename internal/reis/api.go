package reis

import "fmt"

// The NVM command set reserves opcodes 80h-FFh for vendor-specific
// commands (Sec 4.4.1); REIS claims four of them for the Table 1 API.
const (
	OpcodeDBDeploy  uint8 = 0x80
	OpcodeIVFDeploy uint8 = 0x81
	OpcodeSearch    uint8 = 0x82
	OpcodeIVFSearch uint8 = 0x83
)

// HostCommand is one vendor-specific NVMe command as the host driver
// would submit it. Exactly one payload field matching the opcode must
// be populated.
type HostCommand struct {
	Opcode uint8

	// Deploy carries DB_Deploy / IVF_Deploy parameters.
	Deploy *DeployConfig

	// Search parameters (Search / IVF_Search). Queries are processed
	// as one batch, matching the batched Q operand of Table 1.
	DBID    int
	Queries [][]float32
	K       int
	// TargetRecall is IVF_Search's accuracy operand R; the device
	// resolves it to a calibrated nprobe if NProbe is zero.
	TargetRecall float64
	NProbe       int
	Opt          SearchOptions
}

// HostResponse is the completion the device returns.
type HostResponse struct {
	// Done mirrors the paper's done signal raised once document
	// chunks are identified.
	Done bool
	// Results[i] are the retrieved documents for Queries[i].
	Results [][]DocResult
	// QueryStats[i] are the device events of Queries[i]; feed them to
	// Latency / BatchLatency for per-query and batch service costing.
	QueryStats []QueryStats
	// Stats aggregates the device events of the whole batch.
	Stats QueryStats
}

// Submit executes one host command against the engine, dispatching on
// the vendor opcode exactly as the controller firmware would.
func (e *Engine) Submit(cmd HostCommand) (HostResponse, error) {
	switch cmd.Opcode {
	case OpcodeDBDeploy:
		if cmd.Deploy == nil {
			return HostResponse{}, fmt.Errorf("reis: DB_Deploy without payload")
		}
		_, err := e.Deploy(*cmd.Deploy)
		return HostResponse{Done: err == nil}, err
	case OpcodeIVFDeploy:
		if cmd.Deploy == nil {
			return HostResponse{}, fmt.Errorf("reis: IVF_Deploy without payload")
		}
		_, err := e.IVFDeploy(*cmd.Deploy)
		return HostResponse{Done: err == nil}, err
	case OpcodeSearch, OpcodeIVFSearch:
		return e.submitSearch(cmd)
	default:
		return HostResponse{}, fmt.Errorf("reis: unknown vendor opcode %#x", cmd.Opcode)
	}
}

// submitSearch serves Search/IVF_Search commands through the batched
// execution path: the whole Q operand is admitted at once and its
// plane tasks overlap across queries, exactly as the controller
// firmware would schedule them.
func (e *Engine) submitSearch(cmd HostCommand) (HostResponse, error) {
	if len(cmd.Queries) == 0 {
		return HostResponse{}, fmt.Errorf("reis: search with no queries")
	}
	opt := cmd.Opt
	opt.NProbe = cmd.NProbe
	var (
		results [][]DocResult
		sts     []QueryStats
		err     error
	)
	if cmd.Opcode == OpcodeSearch {
		results, sts, err = e.SearchBatch(cmd.DBID, cmd.Queries, cmd.K, opt)
	} else {
		results, sts, err = e.IVFSearchBatch(cmd.DBID, cmd.Queries, cmd.K, opt)
	}
	if err != nil {
		return HostResponse{}, err
	}
	resp := HostResponse{Done: true, Results: results, QueryStats: sts}
	for _, st := range sts {
		resp.Stats.Add(st)
	}
	return resp, nil
}
