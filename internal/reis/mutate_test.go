package reis

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"reis/internal/ann"
	"reis/internal/ssd"
)

// mutTestCfg is the shard test config with append/GC headroom.
func mutTestCfg() ssd.Config {
	cfg := shardTestCfg()
	cfg.OverprovisionPct = 200
	return cfg
}

// mutRefCfg is the single-device equivalent of n shards of mutTestCfg.
func mutRefCfg(n int) ssd.Config {
	cfg := mutTestCfg()
	cfg.Geo.Channels *= n
	return cfg
}

// mutCorpus is the shared mutation scenario: a base deploy, two append
// batches, and a delete set, with the appended vectors scaled so the
// final corpus has the same INT8 quantization scale as the base (the
// symmetric scale is the max absolute component; keeping the maximum
// in the base makes a fresh deploy of the final corpus bit-comparable).
type mutCorpus struct {
	base      [][]float32
	baseDocs  [][]byte
	batch1    [][]float32
	b1Docs    [][]byte
	batch2    [][]float32
	b2Docs    [][]byte
	cents     [][]float32
	assign    []int // over base ++ batch1 ++ batch2
	deleteIdx []int // corpus indices (into base ++ batch1) to delete
}

func maxAbs(vs [][]float32) float32 {
	var m float32
	for _, v := range vs {
		for _, x := range v {
			if x < 0 {
				x = -x
			}
			if x > m {
				m = x
			}
		}
	}
	return m
}

func scaleInto(vs [][]float32, limit float32) [][]float32 {
	m := maxAbs(vs)
	if m < limit {
		return vs
	}
	f := limit * 0.99 / m
	out := make([][]float32, len(vs))
	for i, v := range vs {
		w := make([]float32, len(v))
		for j, x := range v {
			w[j] = x * f
		}
		out[i] = w
	}
	return out
}

func newMutCorpus() *mutCorpus {
	const nBase, nB1, nB2 = 900, 80, 60
	all := testData.Vectors
	c := &mutCorpus{
		base:     all[:nBase],
		baseDocs: testData.Docs[:nBase],
		b1Docs:   testData.Docs[nBase : nBase+nB1],
		b2Docs:   testData.Docs[nBase+nB1 : nBase+nB1+nB2],
	}
	limit := maxAbs(c.base)
	c.batch1 = scaleInto(all[nBase:nBase+nB1], limit)
	c.batch2 = scaleInto(all[nBase+nB1:nBase+nB1+nB2], limit)
	corpus := make([][]float32, 0, nBase+nB1+nB2)
	corpus = append(corpus, c.base...)
	corpus = append(corpus, c.batch1...)
	corpus = append(corpus, c.batch2...)
	c.cents, c.assign = ann.KMeans(corpus, ann.KMeansConfig{K: 12, Seed: 11})
	// Delete a deterministic spread of base and batch-1 entries.
	for i := 7; i < nBase; i += 9 {
		c.deleteIdx = append(c.deleteIdx, i)
	}
	for i := 3; i < nB1; i += 5 {
		c.deleteIdx = append(c.deleteIdx, nBase+i)
	}
	return c
}

// runMutScript deploys the corpus (flat or IVF), applies the appends
// and deletes with searches interleaved, and returns every response in
// order. compact, when non-zero, issues an OpcodeCompact with that
// threshold before the final searches.
func runMutScript(t *testing.T, h submitter, c *mutCorpus, ivf bool, compact float64) []HostResponse {
	t.Helper()
	deploy := &DeployConfig{ID: 1, Vectors: c.base, Docs: c.baseDocs, DocSlotBytes: 256}
	op := OpcodeDBDeploy
	var a1, a2 []int
	if ivf {
		op = OpcodeIVFDeploy
		deploy.Centroids = c.cents
		deploy.Assign = c.assign[:len(c.base)]
		a1 = c.assign[len(c.base) : len(c.base)+len(c.batch1)]
		a2 = c.assign[len(c.base)+len(c.batch1):]
	}
	searchOp := OpcodeSearch
	nprobe := 0
	if ivf {
		searchOp = OpcodeIVFSearch
		nprobe = 4
	}
	search := func() HostCommand {
		return HostCommand{Opcode: searchOp, DBID: 1, Queries: testData.Queries, K: 10, NProbe: nprobe}
	}
	var resps []HostResponse
	run := func(cmd HostCommand) HostResponse {
		t.Helper()
		resp, err := h.Submit(cmd)
		if err != nil {
			t.Fatalf("opcode %#x: %v", cmd.Opcode, err)
		}
		resps = append(resps, resp)
		return resp
	}
	run(HostCommand{Opcode: op, Deploy: deploy})
	run(search())
	r1 := run(HostCommand{Opcode: OpcodeAppend, DBID: 1, Append: &AppendConfig{Vectors: c.batch1, Docs: c.b1Docs, Assign: a1}})
	run(search())
	// Resolve corpus delete indices to device ids via the append's
	// AppendedIDs (base ids are the corpus index).
	var delIDs []int
	for _, idx := range c.deleteIdx {
		if idx < len(c.base) {
			delIDs = append(delIDs, idx)
		} else {
			delIDs = append(delIDs, r1.AppendedIDs[idx-len(c.base)])
		}
	}
	run(HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: delIDs}})
	run(search())
	run(HostCommand{Opcode: OpcodeAppend, DBID: 1, Append: &AppendConfig{Vectors: c.batch2, Docs: c.b2Docs, Assign: a2}})
	run(search())
	if compact != 0 {
		run(HostCommand{Opcode: OpcodeCompact, DBID: 1, Compact: &CompactConfig{MinLiveRatio: compact}})
		run(search())
	}
	return resps
}

// mutRespEqual compares the topology-invariant parts of two responses
// (PerShard is shape-dependent by design).
func mutRespEqual(a, b HostResponse) bool {
	return a.Done == b.Done &&
		reflect.DeepEqual(a.Results, b.Results) &&
		reflect.DeepEqual(a.QueryStats, b.QueryStats) &&
		a.Stats == b.Stats &&
		reflect.DeepEqual(a.AppendedIDs, b.AppendedIDs) &&
		reflect.DeepEqual(a.Wear, b.Wear)
}

// TestMutationShardedMatchesReference pins the mutability determinism
// contract: an interleaved append/delete/compact/search script yields
// bit-identical responses — results, per-query and aggregate stats,
// assigned ids, and wear/erase counts — on a sharded topology and its
// single-device reference (n times the channels), for shards 1/2/4;
// and identical search results ACROSS shard counts.
func TestMutationShardedMatchesReference(t *testing.T) {
	c := newMutCorpus()
	for _, ivf := range []bool{false, true} {
		name := "flat"
		if ivf {
			name = "ivf"
		}
		t.Run(name, func(t *testing.T) {
			var first []HostResponse
			for _, n := range shardCounts {
				single, err := New(mutRefCfg(n), 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { single.Close() })
				want := runMutScript(t, single, c, ivf, 0.9)
				sh, err := NewSharded(mutTestCfg(), n, 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { sh.Close() })
				got := runMutScript(t, sh, c, ivf, 0.9)
				for i := range want {
					if !mutRespEqual(got[i], want[i]) {
						t.Fatalf("shards=%d: response %d differs from reference\n got %+v\nwant %+v",
							n, i, briefResp(got[i]), briefResp(want[i]))
					}
				}
				if first == nil {
					first = got
				} else {
					for i := range first {
						if !reflect.DeepEqual(got[i].Results, first[i].Results) {
							t.Fatalf("shards=%d: response %d results differ across shard counts", n, i)
						}
						if !reflect.DeepEqual(got[i].AppendedIDs, first[i].AppendedIDs) {
							t.Fatalf("shards=%d: response %d ids differ across shard counts", n, i)
						}
					}
				}
			}
		})
	}
}

// briefResp summarizes a response for failure messages.
func briefResp(r HostResponse) string {
	return fmt.Sprintf("{Done:%v results:%d stats:%+v ids:%d wear:%+v}",
		r.Done, len(r.Results), r.Stats, len(r.AppendedIDs), r.Wear)
}

// TestMutatedMatchesFreshDeploy is the workload-level equivalence
// check: after appends and deletes, a search on the mutated engine
// returns the same documents, distances and order as a fresh deploy of
// the equivalent final corpus (modulo the monotone id renumbering a
// fresh deploy performs). Distance filtering is off so both engines
// share the selection set (the filter threshold is calibrated per
// deploy-time corpus by design).
func TestMutatedMatchesFreshDeploy(t *testing.T) {
	c := newMutCorpus()
	opts := Options{Pipelining: true, MPIBC: true}
	deleted := make(map[int]bool)
	for _, idx := range c.deleteIdx {
		deleted[idx] = true
	}
	// The equivalent final corpus, in the mutated engine's scan order:
	// surviving base entries, then surviving batch-1, then batch-2.
	var finalVecs [][]float32
	var finalDocs [][]byte
	var finalAssign []int
	corpusIdx := func(vs [][]float32, docs [][]byte, off int) {
		for i := range vs {
			if !deleted[off+i] {
				finalVecs = append(finalVecs, vs[i])
				finalDocs = append(finalDocs, docs[i])
				finalAssign = append(finalAssign, c.assign[off+i])
			}
		}
	}
	corpusIdx(c.base, c.baseDocs, 0)
	corpusIdx(c.batch1, c.b1Docs, len(c.base))
	corpusIdx(c.batch2, c.b2Docs, len(c.base)+len(c.batch1))

	for _, ivf := range []bool{false, true} {
		name := "flat"
		if ivf {
			name = "ivf"
		}
		t.Run(name, func(t *testing.T) {
			fresh, err := New(mutTestCfg(), 64<<20, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { fresh.Close() })
			deploy := DeployConfig{ID: 1, Vectors: finalVecs, Docs: finalDocs, DocSlotBytes: 256}
			searchOp := OpcodeSearch
			nprobe := 0
			if ivf {
				deploy.Centroids = c.cents
				deploy.Assign = finalAssign
				searchOp = OpcodeIVFSearch
				nprobe = 4
			}
			op := OpcodeDBDeploy
			if ivf {
				op = OpcodeIVFDeploy
			}
			if _, err := fresh.Submit(HostCommand{Opcode: op, Deploy: &deploy}); err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Submit(HostCommand{Opcode: searchOp, DBID: 1, Queries: testData.Queries, K: 10, NProbe: nprobe})
			if err != nil {
				t.Fatal(err)
			}

			for _, shards := range shardCounts {
				var h submitter
				if shards == 1 {
					e, err := New(mutTestCfg(), 64<<20, opts)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { e.Close() })
					h = e
				} else {
					sh, err := NewSharded(mutTestCfg(), shards, 64<<20, opts)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { sh.Close() })
					h = sh
				}
				resps := runMutScript(t, h, c, ivf, 0)
				got := resps[len(resps)-1]

				// Monotone id map: surviving mutated ids ascending map to
				// fresh ids 0..len-1.
				r1 := resps[2]
				var live []int
				for i := range c.base {
					live = append(live, i)
				}
				live = append(live, r1.AppendedIDs...)
				liveSet := make(map[int]bool, len(live))
				for _, id := range live {
					liveSet[id] = true
				}
				for _, idx := range c.deleteIdx {
					id := idx
					if idx >= len(c.base) {
						id = r1.AppendedIDs[idx-len(c.base)]
					}
					delete(liveSet, id)
				}
				r2 := resps[len(resps)-2]
				for _, id := range r2.AppendedIDs {
					liveSet[id] = true
				}
				sorted := make([]int, 0, len(liveSet))
				for id := range liveSet {
					sorted = append(sorted, id)
				}
				sort.Ints(sorted)
				if len(sorted) != len(finalVecs) {
					t.Fatalf("live set %d != final corpus %d", len(sorted), len(finalVecs))
				}
				toFresh := make(map[int]int, len(sorted))
				for fi, id := range sorted {
					toFresh[id] = fi
				}

				for qi := range testData.Queries {
					g, w := got.Results[qi], want.Results[qi]
					if len(g) != len(w) {
						t.Fatalf("shards=%d query %d: %d results vs fresh %d", shards, qi, len(g), len(w))
					}
					for i := range g {
						fi, ok := toFresh[g[i].ID]
						if !ok {
							t.Fatalf("shards=%d query %d: result id %d not live", shards, qi, g[i].ID)
						}
						if fi != w[i].ID || g[i].Dist != w[i].Dist || string(g[i].Doc) != string(w[i].Doc) {
							t.Fatalf("shards=%d query %d result %d: got (id %d→%d, dist %g), fresh (id %d, dist %g)",
								shards, qi, i, g[i].ID, fi, g[i].Dist, w[i].ID, w[i].Dist)
						}
					}
				}
			}
		})
	}
}

// TestCompactPreservesResults pins the collector's core invariant:
// compaction preserves every cluster's scan order, so search results
// are bit-identical before and after, while the live extent shrinks
// and victim blocks are erased. A second compaction with no dead
// entries is a no-op.
func TestCompactPreservesResults(t *testing.T) {
	c := newMutCorpus()
	e, err := New(mutTestCfg(), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	resps := runMutScript(t, e, c, true, 0)
	before := resps[len(resps)-1]

	wear, err := e.Compact(1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if wear.CompactedRows == 0 || wear.BlockErases == 0 || wear.CopiedEntries == 0 {
		t.Fatalf("compaction did not run: %+v", wear)
	}
	if wear.MaxBlockErase == 0 {
		t.Fatalf("erase accounting missing: %+v", wear)
	}
	after, err := e.Submit(HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries, K: 10, NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Results, before.Results) {
		t.Fatal("compaction changed search results")
	}
	// Scan cost must not grow; the brute-force plan shrinks to the
	// canonical single range.
	if after.Stats.FinePages > before.Stats.FinePages {
		t.Fatalf("compaction grew fine pages: %d > %d", after.Stats.FinePages, before.Stats.FinePages)
	}
	db, err := e.DB(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.mut.flatPlan); got != 1 {
		t.Fatalf("flat plan not canonical after compaction: %d ranges", got)
	}
	if db.mut.deadCount != 0 {
		t.Fatalf("tombstones survive compaction: %d", db.mut.deadCount)
	}

	again, err := e.Compact(1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if again.CompactedRows != 0 || again.BlockErases != 0 || again.PagesProgrammed != 0 {
		t.Fatalf("compaction of a clean database not a no-op: %+v", again)
	}
}

// TestMutationDeterministicAcrossRuns: the same script on a fresh
// engine yields byte-identical responses, twice.
func TestMutationDeterministicAcrossRuns(t *testing.T) {
	c := newMutCorpus()
	var first []HostResponse
	for run := 0; run < 2; run++ {
		e, err := New(mutTestCfg(), 64<<20, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		resps := runMutScript(t, e, c, true, 0.9)
		e.Close()
		if first == nil {
			first = resps
			continue
		}
		for i := range first {
			if !mutRespEqual(first[i], resps[i]) {
				t.Fatalf("run %d: response %d not deterministic", run, i)
			}
		}
	}
}

// TestMutationErrors exercises every mutation failure path and its
// sentinel, and checks that failed commands leave the database
// untouched.
func TestMutationErrors(t *testing.T) {
	e, err := New(mutTestCfg(), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	deployFlat(t, e, 1)
	deployIVF(t, e, 2, 8)
	vec := testData.Vectors[0]
	doc := testData.Docs[0]

	cases := []struct {
		name string
		cmd  HostCommand
		want error
	}{
		{"append-missing-payload", HostCommand{Opcode: OpcodeAppend, DBID: 1}, ErrMissingPayload},
		{"append-empty", HostCommand{Opcode: OpcodeAppend, DBID: 1, Append: &AppendConfig{}}, ErrNoItems},
		{"append-docs-mismatch", HostCommand{Opcode: OpcodeAppend, DBID: 1,
			Append: &AppendConfig{Vectors: [][]float32{vec}}}, ErrMissingPayload},
		{"append-dim-mismatch", HostCommand{Opcode: OpcodeAppend, DBID: 1,
			Append: &AppendConfig{Vectors: [][]float32{vec, vec[:8]}, Docs: [][]byte{doc, doc}}}, ErrQueryDims},
		{"append-wrong-dim", HostCommand{Opcode: OpcodeAppend, DBID: 1,
			Append: &AppendConfig{Vectors: [][]float32{vec[:8]}, Docs: [][]byte{doc}}}, ErrQueryDims},
		{"append-assign-on-flat", HostCommand{Opcode: OpcodeAppend, DBID: 1,
			Append: &AppendConfig{Vectors: [][]float32{vec}, Docs: [][]byte{doc}, Assign: []int{0}}}, ErrBadAssign},
		{"append-no-assign-on-ivf", HostCommand{Opcode: OpcodeAppend, DBID: 2,
			Append: &AppendConfig{Vectors: [][]float32{vec}, Docs: [][]byte{doc}}}, ErrBadAssign},
		{"append-cluster-range", HostCommand{Opcode: OpcodeAppend, DBID: 2,
			Append: &AppendConfig{Vectors: [][]float32{vec}, Docs: [][]byte{doc}, Assign: []int{99}}}, ErrBadAssign},
		{"delete-missing-payload", HostCommand{Opcode: OpcodeDelete, DBID: 1}, ErrMissingPayload},
		{"delete-empty", HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{}}, ErrNoItems},
		{"delete-negative", HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: []int{-1}}}, ErrUnknownID},
		{"delete-unknown", HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: []int{1 << 20}}}, ErrUnknownID},
		{"delete-duplicate", HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: []int{5, 5}}}, ErrUnknownID},
		{"compact-missing-payload", HostCommand{Opcode: OpcodeCompact, DBID: 1}, ErrMissingPayload},
		{"compact-bad-threshold", HostCommand{Opcode: OpcodeCompact, DBID: 1, Compact: &CompactConfig{MinLiveRatio: 1.5}}, ErrBadThreshold},
	}
	for _, tc := range cases {
		if _, err := e.Submit(tc.cmd); !errors.Is(err, tc.want) {
			t.Fatalf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}

	// Double delete across commands.
	if err := e.Delete(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(1, 5); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double delete: %v", err)
	}
	// A failed batch delete (one bad id) must apply nothing.
	if err := e.Delete(1, 6, 5); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("partial delete: %v", err)
	}
	if err := e.Delete(1, 6); err != nil {
		t.Fatalf("id 6 was deleted by a failed batch: %v", err)
	}
}

// TestAppendFullSentinel: with zero overprovisioning the first append
// fails with ssd.ErrRegionFull and leaves search behaviour untouched.
func TestAppendFullSentinel(t *testing.T) {
	cfg := shardTestCfg() // OverprovisionPct zero
	e, err := New(cfg, 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	deployFlat(t, e, 1)
	before, _, err := e.Search(1, testData.Queries[0], 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Append(1, AppendConfig{Vectors: testData.Vectors[:1], Docs: testData.Docs[:1]})
	if !errors.Is(err, ssd.ErrRegionFull) {
		t.Fatalf("append on full: %v", err)
	}
	after, _, err := e.Search(1, testData.Queries[0], 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("failed append changed search results")
	}
}

// TestOverprovisionValidation: ssd.New rejects out-of-range settings.
func TestOverprovisionValidation(t *testing.T) {
	for _, pct := range []int{-1, 401} {
		cfg := shardTestCfg()
		cfg.OverprovisionPct = pct
		if _, err := New(cfg, 0, AllOptions()); err == nil {
			t.Fatalf("OverprovisionPct %d accepted", pct)
		}
	}
}

// TestMutationInvalidatesCalibration: recorded nprobe calibrations are
// dropped by any mutation, so TargetRecall commands fail until
// recalibrated — on both topologies.
func TestMutationInvalidatesCalibration(t *testing.T) {
	run := func(t *testing.T, h submitter, calibrate func() error) {
		t.Helper()
		cents, assign := ann.KMeans(testData.Vectors, ann.KMeansConfig{K: 16, Seed: 9})
		if _, err := h.Submit(HostCommand{Opcode: OpcodeIVFDeploy, Deploy: &DeployConfig{
			ID: 1, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
			Centroids: cents, Assign: assign,
		}}); err != nil {
			t.Fatal(err)
		}
		if err := calibrate(); err != nil {
			t.Fatal(err)
		}
		cmd := HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[:2], K: 10, TargetRecall: 0.9}
		if _, err := h.Submit(cmd); err != nil {
			t.Fatalf("calibrated search: %v", err)
		}
		if _, err := h.Submit(HostCommand{Opcode: OpcodeAppend, DBID: 1, Append: &AppendConfig{
			Vectors: testData.Vectors[:1], Docs: testData.Docs[:1], Assign: assign[:1],
		}}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Submit(cmd); !errors.Is(err, ErrNotCalibrated) {
			t.Fatalf("TargetRecall after append: %v", err)
		}
	}
	t.Run("single", func(t *testing.T) {
		e, err := New(mutTestCfg(), 64<<20, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		run(t, e, func() error {
			_, err := e.CalibrateNProbe(1, testData.Queries, testData.GroundTruth, 10, 0.9)
			return err
		})
	})
	t.Run("sharded", func(t *testing.T) {
		sh, err := NewSharded(mutTestCfg(), 2, 64<<20, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sh.Close() })
		run(t, sh, func() error {
			_, err := sh.CalibrateNProbe(1, testData.Queries, testData.GroundTruth, 10, 0.9)
			return err
		})
	})
}

// TestDeletedNeverSurface: tombstoned ids disappear from every search
// entry point immediately, and metadata-filtered searches agree.
func TestDeletedNeverSurface(t *testing.T) {
	e, err := New(mutTestCfg(), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	deployIVF(t, e, 1, 16)
	q := testData.Queries[0]
	res, _, err := e.IVFSearch(1, q, 10, SearchOptions{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	// Delete the entire current top-k; none may surface again.
	ids := make([]int, len(res))
	for i, r := range res {
		ids[i] = r.ID
	}
	if err := e.Delete(1, ids...); err != nil {
		t.Fatal(err)
	}
	gone := make(map[int]bool, len(ids))
	for _, id := range ids {
		gone[id] = true
	}
	again, _, err := e.IVFSearch(1, q, 10, SearchOptions{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range again {
		if gone[r.ID] {
			t.Fatalf("deleted id %d surfaced", r.ID)
		}
	}
	batch, _, err := e.SearchBatch(1, [][]float32{q}, 10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range batch[0] {
		if gone[r.ID] {
			t.Fatalf("deleted id %d surfaced on the flat batch path", r.ID)
		}
	}
	db, err := e.DB(1)
	if err != nil {
		t.Fatal(err)
	}
	if db.Live() != testData.Len()-len(ids) {
		t.Fatalf("Live() = %d, want %d", db.Live(), testData.Len()-len(ids))
	}
}
