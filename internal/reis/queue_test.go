package reis

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// reapAll polls the queue until n completions have been reaped or the
// deadline expires.
func reapAll(t *testing.T, q *Queue, n int) []Completion {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var out []Completion
	for len(out) < n {
		if cs := q.Reap(0); len(cs) > 0 {
			out = append(out, cs...)
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("reaped %d of %d completions before deadline", len(out), n)
		}
		runtime.Gosched()
	}
	return out
}

// assertRespEqual fails unless two host responses are bit-identical:
// results (ids, distances, document bytes) and per-query device stats.
func assertRespEqual(t *testing.T, label string, want, got HostResponse) {
	t.Helper()
	if want.Done != got.Done || len(want.Results) != len(got.Results) {
		t.Fatalf("%s: shape differs: want done=%v n=%d, got done=%v n=%d",
			label, want.Done, len(want.Results), got.Done, len(got.Results))
	}
	assertSameResults(t, label, want.Results, got.Results)
	if len(want.QueryStats) != len(got.QueryStats) {
		t.Fatalf("%s: %d query stats, want %d", label, len(got.QueryStats), len(want.QueryStats))
	}
	for qi := range want.QueryStats {
		if want.QueryStats[qi] != got.QueryStats[qi] {
			t.Fatalf("%s query %d stats diverge:\nwant %+v\ngot  %+v",
				label, qi, want.QueryStats[qi], got.QueryStats[qi])
		}
	}
	if want.Stats != got.Stats {
		t.Fatalf("%s batch stats diverge:\nwant %+v\ngot  %+v", label, want.Stats, got.Stats)
	}
}

// TestQueueMatchesSubmit pins the tentpole equivalence: the same
// commands served through SubmitAsync (including coalesced dispatch)
// return bit-identical responses to synchronous Submit.
func TestQueueMatchesSubmit(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	cmds := []HostCommand{
		{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[:6], K: 10, NProbe: 4},
		{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[6:7], K: 10, NProbe: 4},
		{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[7:8], K: 10, NProbe: 4},
		{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[8:12], K: 5, NProbe: 2},
	}
	want := make([]HostResponse, len(cmds))
	for i, cmd := range cmds {
		resp, err := e.Submit(cmd)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp
	}

	q, err := e.NewQueue(QueueConfig{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// Pause so every command is pending at once: the first three probe
	// the same operating point and must coalesce into one dispatch.
	q.pause()
	ids := make([]CommandID, len(cmds))
	for i, cmd := range cmds {
		if ids[i], err = q.SubmitAsync(context.Background(), cmd); err != nil {
			t.Fatal(err)
		}
	}
	q.resume()
	byID := make(map[CommandID]Completion, len(cmds))
	for _, c := range reapAll(t, q, len(cmds)) {
		byID[c.ID] = c
	}
	for i := range cmds {
		c, ok := byID[ids[i]]
		if !ok {
			t.Fatalf("command %d (id %d) never completed", i, ids[i])
		}
		if c.Err != nil {
			t.Fatalf("command %d failed: %v", i, c.Err)
		}
		assertRespEqual(t, fmt.Sprintf("cmd %d", i), want[i], c.Resp)
	}
	st := q.Stats()
	if st.Coalesced < 2 {
		t.Fatalf("expected the compatible commands to coalesce, stats %+v", st)
	}
}

// TestQueueOutOfOrderReap submits commands for two databases with
// skewed QoS weights and verifies completions can be reaped out of
// submission order while still matching their commands by ID.
func TestQueueOutOfOrderReap(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	deployIVF(t, e, 2, 16)
	q, err := e.NewQueue(QueueConfig{
		Depth:      8,
		Weights:    map[int]int{1: 1, 2: 8},
		NoCoalesce: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	q.pause()
	type sub struct {
		id CommandID
		db int
		qi int
	}
	var subs []sub
	for qi := 0; qi < 3; qi++ {
		id, err := q.SubmitAsync(nil, HostCommand{
			Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[qi : qi+1], K: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{id: id, db: 1, qi: qi})
	}
	for qi := 0; qi < 3; qi++ {
		id, err := q.SubmitAsync(nil, HostCommand{
			Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[qi : qi+1], K: 10, NProbe: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{id: id, db: 2, qi: qi})
	}
	q.resume()
	comps := reapAll(t, q, len(subs))

	// The weight-8 tenant (database 2) must finish its backlog before
	// the weight-1 tenant despite submitting later — i.e. completions
	// arrive out of submission order.
	pos := make(map[CommandID]int, len(comps))
	for i, c := range comps {
		pos[c.ID] = i
		if c.Err != nil {
			t.Fatalf("command %d failed: %v", c.ID, c.Err)
		}
	}
	for _, s := range subs {
		if s.db != 2 {
			continue
		}
		for _, o := range subs {
			if o.db == 1 && o.qi > 0 && pos[s.id] > pos[o.id] {
				t.Fatalf("QoS weight 8 command %d completed after weight 1 command %d (order %v)",
					s.id, o.id, comps)
			}
		}
	}
	// Every completion matches the per-command sync reference
	// regardless of reap order.
	for _, s := range subs {
		var want HostResponse
		var err error
		if s.db == 1 {
			want, err = e.Submit(HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[s.qi : s.qi+1], K: 10})
		} else {
			want, err = e.Submit(HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[s.qi : s.qi+1], K: 10, NProbe: 4})
		}
		if err != nil {
			t.Fatal(err)
		}
		assertRespEqual(t, fmt.Sprintf("db%d q%d", s.db, s.qi), want, comps[pos[s.id]].Resp)
	}
}

// TestQueueBackpressure pins the admission-control contract: a slot is
// occupied from SubmitAsync until the completion is consumed, so a
// full pair rejects deterministically with ErrQueueFull and admits
// again once a completion is reaped.
func TestQueueBackpressure(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	cmd := HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 5}
	if _, err := q.SubmitAsync(nil, cmd); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitAsync(nil, cmd); err != nil {
		t.Fatal(err)
	}
	// Both slots occupied (executed or not — completions are unreaped
	// either way): the third admission must fail.
	if _, err := q.SubmitAsync(nil, cmd); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	if st := q.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	// Consuming exactly one completion frees exactly one slot.
	deadline := time.Now().Add(30 * time.Second)
	for len(q.Reap(1)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no completion to reap")
		}
		runtime.Gosched()
	}
	if _, err := q.SubmitAsync(nil, cmd); err != nil {
		t.Fatalf("submit after reap: %v", err)
	}
	reapAll(t, q, 2)
}

// TestQueueCancellation covers cancellation before dispatch: an
// already-cancelled context completes with ctx.Err() and must not
// disturb neighboring commands.
func TestQueueCancellation(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q.pause()
	okID, err := q.SubmitAsync(nil, HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 5})
	if err != nil {
		t.Fatal(err)
	}
	cancelID, err := q.SubmitAsync(ctx, HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[1:2], K: 5})
	if err != nil {
		t.Fatal(err)
	}
	q.resume()
	byID := make(map[CommandID]Completion)
	for _, c := range reapAll(t, q, 2) {
		byID[c.ID] = c
	}
	if err := byID[cancelID].Err; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled command completed with %v", err)
	}
	if c := byID[okID]; c.Err != nil || len(c.Resp.Results) != 1 {
		t.Fatalf("neighbor command disturbed: %+v", c)
	}

	// Expired deadlines behave the same.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer dcancel()
	id, err := q.SubmitAsync(dctx, HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(context.Background(), id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline completed with %v", err)
	}
}

// TestQueueWaitAbandonReleasesSlot pins the abandoned-Wait contract: a
// caller that gives up waiting (expired request context) must not leak
// the command's queue slot — the completion is discarded on arrival
// and the slot freed, never parked in the Reap buffer.
func TestQueueWaitAbandonReleasesSlot(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	cmd := HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 5}
	q.pause()
	id, err := q.SubmitAsync(nil, cmd)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The command is paused in the SQ, so this Wait must give up.
	if _, err := q.Wait(ctx, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on paused queue returned %v", err)
	}
	q.resume()
	deadline := time.Now().Add(30 * time.Second)
	for q.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned command still occupies %d slots", q.Outstanding())
		}
		runtime.Gosched()
	}
	if cs := q.Reap(0); len(cs) != 0 {
		t.Fatalf("abandoned completion leaked into the reap buffer: %v", cs)
	}
	// The freed slots are usable: a full submit/wait cycle succeeds.
	id, err = q.SubmitAsync(nil, cmd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
}

// countdownCtx cancels itself after a fixed number of Err() polls — a
// deterministic way to hit the execution core's mid-batch checkpoints.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	polls int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.polls <= 0 {
		return context.Canceled
	}
	c.polls--
	return nil
}

// TestSearchBatchCancelMidBatch drives the internal batched path with
// a context that cancels partway through and checks the abort leaves
// the engine consistent (the next search is bit-identical to an
// undisturbed engine's).
func TestSearchBatchCancelMidBatch(t *testing.T) {
	e := newEngine(t, AllOptions())
	db := deployFlat(t, e, 1)
	for _, polls := range []int{1, 3, 17} {
		ctx := &countdownCtx{Context: context.Background(), polls: polls}
		e.execMu.Lock()
		_, _, err := e.searchBatch(ctx, db, testData.Queries[:8], 10, SearchOptions{})
		e.execMu.Unlock()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("polls=%d: batch survived cancellation: %v", polls, err)
		}
	}
	// The aborted runs must not have corrupted pooled state.
	want, _, err := e.Search(1, testData.Queries[0], 10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, AllOptions())
	deployFlat(t, e2, 1)
	fresh, _, err := e2.Search(1, testData.Queries[0], 10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "post-abort", [][]DocResult{fresh}, [][]DocResult{want})
}

// TestQueueCompletionChannelAndCallback covers the push delivery
// paths.
func TestQueueCompletionChannelAndCallback(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	ch := make(chan Completion, 4)
	var mu sync.Mutex
	var called []CommandID
	q, err := e.NewQueue(QueueConfig{
		Depth:       4,
		Completions: ch,
		OnComplete: func(c Completion) {
			mu.Lock()
			called = append(called, c.ID)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	var ids []CommandID
	for qi := 0; qi < 3; qi++ {
		id, err := q.SubmitAsync(nil, HostCommand{
			Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[qi : qi+1], K: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	got := make(map[CommandID]bool)
	for range ids {
		c := <-ch
		if c.Err != nil {
			t.Fatalf("completion %d: %v", c.ID, c.Err)
		}
		got[c.ID] = true
	}
	for _, id := range ids {
		if !got[id] {
			t.Fatalf("command %d never delivered", id)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(called) != len(ids) {
		t.Fatalf("callback saw %d completions, want %d", len(called), len(ids))
	}
}

// TestQueueClose pins close semantics: pending commands complete with
// ErrQueueClosed, later submissions are rejected, and Engine.Close
// closes every open pair.
func TestQueueClose(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	q, err := e.NewQueue(QueueConfig{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	q.pause()
	id, err := q.SubmitAsync(nil, HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 5})
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	if _, err := q.Wait(context.Background(), id); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("pending command completed with %v", err)
	}
	if _, err := q.SubmitAsync(nil, HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 5}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit on closed queue: %v", err)
	}
	e.Close()
	if _, err := e.NewQueue(QueueConfig{}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("NewQueue on closed engine: %v", err)
	}
}

// TestHostCommandValidation pins the sentinel errors and the up-front
// field validation of the redesigned host interface.
func TestHostCommandValidation(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	cases := []struct {
		name string
		cmd  HostCommand
		want error
	}{
		{"unknown opcode", HostCommand{Opcode: 0x42}, ErrUnknownOpcode},
		{"deploy without payload", HostCommand{Opcode: OpcodeDBDeploy}, ErrMissingPayload},
		{"ivf deploy without payload", HostCommand{Opcode: OpcodeIVFDeploy}, ErrMissingPayload},
		{"no queries", HostCommand{Opcode: OpcodeSearch, DBID: 1, K: 5}, ErrNoQueries},
		{"bad K", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1]}, ErrBadK},
		{"ragged queries", HostCommand{
			Opcode: OpcodeSearch, DBID: 1, K: 5,
			Queries: [][]float32{testData.Queries[0], make([]float32, 7)},
		}, ErrQueryDims},
	}
	q, err := e.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for _, tc := range cases {
		if _, err := e.Submit(tc.cmd); !errors.Is(err, tc.want) {
			t.Fatalf("Submit %s: got %v, want %v", tc.name, err, tc.want)
		}
		// Validation is shared: the async path rejects at admission,
		// before the command ever occupies a slot.
		if _, err := q.SubmitAsync(nil, tc.cmd); !errors.Is(err, tc.want) {
			t.Fatalf("SubmitAsync %s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if q.Outstanding() != 0 {
		t.Fatalf("rejected commands occupy %d slots", q.Outstanding())
	}
	// Wrong-dim queries against the deployed database still fail at
	// execution with the same sentinel.
	if _, err := e.Submit(HostCommand{
		Opcode: OpcodeSearch, DBID: 1, K: 5, Queries: [][]float32{make([]float32, 7)},
	}); !errors.Is(err, ErrQueryDims) {
		t.Fatalf("db-dim mismatch: %v", err)
	}
}

// TestTargetRecallResolution pins the normalization helper: an
// IVF_Search addressed by TargetRecall resolves to the calibrated
// nprobe and matches the explicit-nprobe command bit for bit.
func TestTargetRecallResolution(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	if _, err := e.Submit(HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[:2], K: 10, TargetRecall: 0.8,
	}); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("uncalibrated TargetRecall: %v", err)
	}
	np, err := e.CalibrateNProbe(1, testData.Queries, testData.GroundTruth, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Submit(HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[:4], K: 10, NProbe: np,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Submit(HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[:4], K: 10, TargetRecall: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertRespEqual(t, "recall-addressed", want, got)
	// Opt.NProbe survives when the command-level operands are unset.
	viaOpt, err := e.Submit(HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries[:4], K: 10,
		Opt: SearchOptions{NProbe: np},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertRespEqual(t, "opt-nprobe", want, viaOpt)
}

// TestQueueStressConcurrentSubmitters is the -race stress test:
// several goroutines hammer one queue pair (plus direct synchronous
// calls) and every completion must match its per-command synchronous
// reference bit for bit — the determinism contract under concurrent
// multi-tenant submission.
func TestQueueStressConcurrentSubmitters(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	deployIVF(t, e, 2, 16)

	nq := len(testData.Queries)
	refFlat := make([]HostResponse, nq)
	refIVF := make([]HostResponse, nq)
	for qi := 0; qi < nq; qi++ {
		var err error
		if refFlat[qi], err = e.Submit(HostCommand{
			Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[qi : qi+1], K: 10,
		}); err != nil {
			t.Fatal(err)
		}
		if refIVF[qi], err = e.Submit(HostCommand{
			Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[qi : qi+1], K: 10, NProbe: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}

	q, err := e.NewQueue(QueueConfig{Depth: 16, Weights: map[int]int{1: 1, 2: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	const submitters = 4
	const perSubmitter = 24
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				qi := (s*perSubmitter + i) % nq
				cmd := HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[qi : qi+1], K: 10}
				want := refFlat[qi]
				if s%2 == 1 {
					cmd = HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[qi : qi+1], K: 10, NProbe: 4}
					want = refIVF[qi]
				}
				var resp HostResponse
				var err error
				if s == 3 {
					// One tenant uses the synchronous wrapper, mixing
					// sync and async submission on the same engine.
					resp, err = e.Submit(cmd)
				} else {
					id, serr := q.submit(context.Background(), cmd, true)
					if serr != nil {
						errs <- serr
						return
					}
					resp, err = q.Wait(context.Background(), id)
				}
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Results) != 1 || len(want.Results) != 1 ||
					len(resp.Results[0]) != len(want.Results[0]) {
					errs <- fmt.Errorf("submitter %d query %d: shape mismatch", s, qi)
					return
				}
				for i := range want.Results[0] {
					if want.Results[0][i].ID != resp.Results[0][i].ID ||
						want.Results[0][i].Dist != resp.Results[0][i].Dist {
						errs <- fmt.Errorf("submitter %d query %d: result %d diverged", s, qi, i)
						return
					}
				}
				if want.QueryStats[0] != resp.QueryStats[0] {
					errs <- fmt.Errorf("submitter %d query %d: stats diverged\nwant %+v\ngot  %+v",
						s, qi, want.QueryStats[0], resp.QueryStats[0])
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Completed != st.Submitted || st.Submitted == 0 {
		t.Fatalf("queue leaked commands: %+v", st)
	}
}
