// Package reis implements the paper's contribution: a retrieval system
// for RAG that executes Approximate Nearest Neighbor Search inside the
// storage device using only pre-existing hardware.
//
// The engine combines the three key mechanisms of Sec 4:
//
//  1. Database layout (Sec 4.1): embeddings and documents in separate
//     plane-striped regions; SLC-ESP for binary embeddings, TLC for
//     documents and INT8 rerank copies; per-embedding document and
//     rerank addresses (DADR/RADR) in the page OOB area; coarse-grained
//     R-DB addressing instead of page-level FTL.
//  2. ISP-tailored IVF (Sec 4.2): cluster-sorted embedding placement,
//     the R-IVF cluster table in controller DRAM, coarse centroid
//     search then fine in-cluster scan.
//  3. In-storage ANNS engine (Sec 4.3): query broadcast (IBC/MPIBC),
//     latch XOR + fail-bit counting for Hamming distances, distance
//     filtering with the pass/fail checker, TTL entries streamed to
//     controller DRAM, quickselect + INT8 rerank + quicksort on an
//     embedded core, and pipelined page reads.
//
// On top of the paper's mechanisms the engine supports threshold-
// propagated top-k pruning (SearchOptions.Prune): the scan runs in
// controller-driven rounds whose GEN_DIST_PAGE commands carry the
// query's current top-k distance bound, so planes skip the TTL
// transfer of slots that cannot reach the rerank pool and abort whole
// cluster segments whose triangle-inequality lower bound exceeds it —
// with results bit-identical to the unpruned scan on every topology
// (see DESIGN.md, "Threshold propagation and pruning").
//
// A DRAM caching tier (ssd.Config.CacheDRAMBytes, off by default)
// serves repeated work at controller cost without ever changing
// results: the binary pages of the most-probed IVF clusters are pinned
// in controller DRAM and scanned there (reported as CachedPages/
// CachedSlots, partitioning exactly against the flash FinePages), and
// an LRU result cache keyed on the packed query and search options
// serves exact repeats on the Submit/queue path (ResultCacheHits).
// Appends, deletes and compactions invalidate both tiers atomically.
// `reisbench -exp skew` measures the tier under Zipfian query skew
// (see DESIGN.md, "DRAM caching tier").
//
// The engine is functional — every distance comes from real bytes
// moving through the simulated latches — while latency and energy are
// derived from the event counts each query accumulates (QueryStats).
package reis

import (
	"fmt"
	"sort"
	"sync"

	"reis/internal/flash"
	"reis/internal/ssd"
	"reis/internal/vecmath"
)

// Options toggles the engine optimizations studied in the Fig 9
// sensitivity sweep. The zero value is the paper's No-OPT baseline;
// AllOptions is full REIS.
type Options struct {
	// DistanceFilter discards embeddings whose Hamming distance
	// exceeds the calibrated threshold inside the die (Sec 4.3.3).
	DistanceFilter bool
	// Pipelining overlaps page reads with latch compute, channel
	// transfer and controller selection (Sec 4.3.4).
	Pipelining bool
	// MPIBC broadcasts the query to all planes of a die concurrently
	// (Sec 4.3.4).
	MPIBC bool
	// FirstFitPlacement disables wear-aware free-row selection for
	// appends and GC copy-forward: the lowest free physical row wins,
	// as the original bump allocator would place. Kept as the baseline
	// of the wear-leveling experiment; leave false for production
	// behaviour.
	FirstFitPlacement bool
}

// AllOptions enables every optimization (the default REIS config).
func AllOptions() Options {
	return Options{DistanceFilter: true, Pipelining: true, MPIBC: true}
}

// Engine is the in-storage retrieval system. Public API calls may be
// issued from any goroutine: the execution core (one command or one
// coalesced batch at a time, matching the single embedded controller
// core) is serialized internally, and queue pairs created with NewQueue
// provide the asynchronous, multi-tenant interface on top of it.
type Engine struct {
	SSD  *ssd.SSD
	FSM  *flash.DieFSM
	Opts Options

	// pool dispatches per-plane scan work onto one worker per die,
	// mirroring the device's channel/die parallelism.
	pool *planePool

	// execMu serializes the execution core: the engine scratch and the
	// pool worker arenas have exactly one running owner at a time
	// (batched admission and queue coalescing are the concurrency
	// mechanisms, not parallel API calls).
	execMu sync.Mutex

	// scr holds the engine-owned pooled buffers of the query pipeline;
	// see engineScratch for the ownership rules.
	scr engineScratch

	dbs map[int]*Database

	// jl is the append-only mutation journal: every committed append,
	// delete and compact is recorded under execMu, so replaying any
	// journal prefix on a fresh deploy reproduces the pre-crash state
	// bit for bit (see journal.go and DESIGN.md, "Concurrent GC, wear
	// leveling, and recovery").
	jl journal

	// testGCStepHook, when set, runs after each committed background GC
	// step with no locks held — the interleaving tests' probe point.
	testGCStepHook func()

	// reg tracks the queue pairs created with NewQueue for Close-time
	// teardown, plus the built-in pair behind the synchronous Submit
	// wrapper.
	reg queueRegistry
}

// Database is the on-device representation of one deployed vector
// database.
type Database struct {
	ID  int
	Dim int
	N   int

	rec ssd.DBRecord
	// regionSlots is the total slot count of the binary region,
	// including cluster-alignment padding (>= N).
	regionSlots int

	// Layout constants.
	slotBytes   int // binary embedding bytes (dim/8)
	embPerPage  int
	int8Bytes   int // INT8 embedding bytes (dim)
	int8PerPage int
	docBytes    int // document chunk slot size
	docsPerPage int

	// IVF structures; nil for flat (brute-force) databases.
	rivf []RIVFEntry

	params vecmath.Int8Params
	// filterThreshold is the calibrated distance-filter cutoff.
	filterThreshold int

	// calib records successful CalibrateNProbe outcomes so the
	// TargetRecall operand of IVF_Search commands can be resolved to a
	// concrete nprobe (see resolveSearchOptions). Any mutation
	// invalidates it: recall targets are only guaranteed against the
	// corpus they were calibrated on.
	calib []recallPoint

	// mut is the mutable-state ledger (posting-list segments, tombstone
	// bitmap, GC row accounting) of a whole-layout deploy; nil for a
	// shard slice, which is mutated through its router.
	mut *mutState

	// cache is the DRAM caching tier (hot-cluster pins + result cache);
	// nil unless the SSD config sets CacheDRAMBytes. A shard slice never
	// owns one — its router does.
	cache *dbCache
}

// recallPoint is one recorded calibration outcome: the smallest nprobe
// found to meet a Recall@k target.
type recallPoint struct {
	target float64
	nprobe int
}

// nprobeForRecall resolves a target recall against recorded
// calibration points: the smallest nprobe whose calibrated target
// covers the request. ok is false when nothing calibrated covers it.
func nprobeForRecall(calib []recallPoint, target float64) (nprobe int, ok bool) {
	for _, p := range calib {
		if p.target >= target && (!ok || p.nprobe < nprobe) {
			nprobe, ok = p.nprobe, true
		}
	}
	return nprobe, ok
}

// RIVFEntry is one element of the R-IVF array (Sec 4.2.1, structure B
// in Fig 4): the centroid's location, the positional range of the
// cluster's embeddings in the binary region, and the 8-bit tag.
type RIVFEntry struct {
	CentroidSlot int // slot index within the centroid region
	First, Last  int // embedding positions (inclusive) in the binary region
	Tag          uint8
}

// OOB layout per embedding slot: DADR (4B) | RADR (4B) | meta tag (1B).
const oobBytesPerSlot = 9

// InvalidDADR marks a padding slot (no embedding stored).
const InvalidDADR = ^uint32(0)

// New creates an engine over a fresh SSD of the given configuration,
// sized to hold capacityHint bytes (0 = preset size).
func New(cfg ssd.Config, capacityHint int64, opts Options) (*Engine, error) {
	dev, err := ssd.New(cfg, capacityHint)
	if err != nil {
		return nil, err
	}
	return &Engine{
		SSD:  dev,
		FSM:  flash.NewDieFSM(dev.Dev),
		Opts: opts,
		pool: newPlanePool(dev.Cfg.Geo),
		dbs:  make(map[int]*Database),
	}, nil
}

// DB returns a deployed database by id.
func (e *Engine) DB(id int) (*Database, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	return e.db(id)
}

// db is DB without the execution lock, for use inside the core.
func (e *Engine) db(id int) (*Database, error) {
	db, ok := e.dbs[id]
	if !ok {
		return nil, fmt.Errorf("reis: unknown database %d", id)
	}
	return db, nil
}

// registry exposes the engine's queue bookkeeping to the shared queue
// implementation (part of the host interface).
func (e *Engine) registry() *queueRegistry { return &e.reg }

// Ready reports whether the engine can accept commands: true from
// construction until Close. Replica routers use it as the health
// probe behind a serving group's liveness endpoint.
func (e *Engine) Ready() bool { return !e.reg.isClosed() }

// dropDB unregisters a database, making its id reusable — the shard
// router's rollback when a multi-device deploy fails partway. The
// allocator is a bump cursor, so the dropped regions' stripes are not
// reclaimed; only the id and the R-DB record are.
func (e *Engine) dropDB(id int) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if _, ok := e.dbs[id]; ok {
		delete(e.dbs, id)
		e.SSD.RDB.Remove(id)
	}
}

// Close shuts down the engine's background goroutines: every queue
// pair created with NewQueue (pending commands complete with
// ErrQueueClosed) and the plane worker pool. The engine must not be
// closed while direct API calls are in flight; Close is idempotent —
// concurrent and repeated calls are safe — and an engine that is never
// closed simply parks its workers until process exit.
func (e *Engine) Close() error {
	for _, q := range e.reg.closeAll() {
		q.Close()
	}
	e.execMu.Lock()
	e.pool.stop()
	e.execMu.Unlock()
	return nil
}

// DeployConfig carries the host-provided deployment parameters.
type DeployConfig struct {
	ID int
	// Vectors are the database embeddings (host precision).
	Vectors [][]float32
	// Docs are the linked document chunks; Docs[i] belongs to
	// Vectors[i]. Each must fit in DocSlotBytes.
	Docs [][]byte
	// DocSlotBytes is the per-chunk slot size (default 4096, the
	// 4 KiB sub-page granularity of Sec 4.1.1).
	DocSlotBytes int
	// Cluster information for IVF deployment (Table 1: IVF_Deploy's
	// CI operand). Leave nil for a flat database.
	Centroids [][]float32
	Assign    []int
	// MetaTags optionally tags each entry for metadata filtering
	// (Sec 7.1).
	MetaTags []uint8
}

// Deploy implements DB_Deploy (flat database). It reserves regions,
// writes embeddings, rerank copies and documents, and registers the
// database in the R-DB.
func (e *Engine) Deploy(cfg DeployConfig) (*Database, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	cfg.Centroids, cfg.Assign = nil, nil
	return e.deploy(cfg)
}

// IVFDeploy implements IVF_Deploy: like Deploy but the binary region
// is cluster-sorted and the R-IVF table is built.
func (e *Engine) IVFDeploy(cfg DeployConfig) (*Database, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	return e.ivfDeploy(cfg)
}

// ivfDeploy is IVFDeploy without the execution lock, for the queue
// dispatcher.
func (e *Engine) ivfDeploy(cfg DeployConfig) (*Database, error) {
	if len(cfg.Centroids) == 0 || len(cfg.Assign) != len(cfg.Vectors) {
		return nil, fmt.Errorf("reis: IVFDeploy requires cluster info (centroids=%d assign=%d vectors=%d)",
			len(cfg.Centroids), len(cfg.Assign), len(cfg.Vectors))
	}
	return e.deploy(cfg)
}

func (e *Engine) deploy(cfg DeployConfig) (*Database, error) {
	if _, ok := e.dbs[cfg.ID]; ok {
		return nil, fmt.Errorf("reis: database %d already deployed", cfg.ID)
	}
	lo, err := planLayout(&cfg, e.SSD.Cfg.Geo, e.SSD.Cfg.OverprovisionPct)
	if err != nil {
		return nil, err
	}
	return e.install(cfg.ID, lo, lo.buildItems(&cfg), 0, 1)
}

// deployShard installs shard index s of nshards of a globally planned
// layout: every region holds the global pages g ≡ s (mod nshards) as
// local pages g / nshards, with unmodified page and OOB bytes. Because
// region page i lives on plane i mod planes, the union of the shards'
// planes reproduces, plane for plane, the placement a single device
// with nshards times the channels would compute — global plane j of
// that reference is shard j mod nshards, local plane j / nshards (see
// DESIGN.md, "Sharded topology"). OOB linkage keeps global ids; the
// shard never resolves DADR/RADR itself.
func (e *Engine) deployShard(id int, lo *dbLayout, items *layoutItems, s, nshards int) (*Database, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if _, ok := e.dbs[id]; ok {
		return nil, fmt.Errorf("reis: database %d already deployed", id)
	}
	return e.install(id, lo, items, s, nshards)
}

// install allocates regions for the layout's pages owned by shard
// (start, stride) — (0, 1) is the whole single-device layout — writes
// them, and registers the database. The caller holds e.execMu and has
// checked id uniqueness.
func (e *Engine) install(id int, lo *dbLayout, items *layoutItems, start, stride int) (*Database, error) {
	db := &Database{
		ID:              id,
		Dim:             lo.dim,
		N:               lo.n,
		slotBytes:       lo.slotBytes,
		embPerPage:      lo.embPerPage,
		int8Bytes:       lo.int8Bytes,
		int8PerPage:     lo.int8PerPage,
		docBytes:        lo.docBytes,
		docsPerPage:     lo.docsPerPage,
		params:          lo.params,
		filterThreshold: lo.filterThreshold,
	}
	// Every shard reserves capacity for the same number of stripes the
	// single-device-equivalent extent spans, so growth and GC erase the
	// same block-rows on every topology (planes per global stripe =
	// local planes × stride).
	localPlanes := e.SSD.Cfg.Geo.Planes()
	alloc := func(pages, capPages int, mode flash.CellMode, what string) (ssd.Region, error) {
		n := shardPages(pages, start, stride)
		localCap := ceilDiv(capPages, localPlanes*stride) * localPlanes
		if n == 0 && localCap == 0 {
			return ssd.Region{}, nil
		}
		r, err := e.SSD.AllocateRegion(n, localCap, mode)
		if err != nil {
			return ssd.Region{}, fmt.Errorf("reis: %s region: %w", what, err)
		}
		return r, nil
	}
	var err error
	var embR, int8R, docR, centR ssd.Region
	if embR, err = alloc(lo.embPages, lo.embCap, flash.ModeSLCESP, "embedding"); err != nil {
		return nil, err
	}
	// The binary region is row-mapped from birth: GC reclaims its
	// erase rows (one block per plane, on every shard the same block
	// index) back into the append free pool. The initial map is the
	// identity over the deployed rows; the row count is driven by the
	// global layout so every shard's map stays identical.
	embR.EnableRowMap(e.SSD.Cfg.Geo.PagesPerBlock,
		ceilDiv(lo.embPages, localPlanes*stride*lo.ppb))
	if centR, err = alloc(lo.centPages, lo.centPages, flash.ModeSLCESP, "centroid"); err != nil {
		return nil, err
	}
	if int8R, err = alloc(lo.int8Pages, lo.int8Cap, flash.ModeTLC, "INT8"); err != nil {
		return nil, err
	}
	if docR, err = alloc(lo.docPages, lo.docCap, flash.ModeTLC, "document"); err != nil {
		return nil, err
	}
	db.rec = ssd.DBRecord{
		ID: id, Embeddings: embR, Documents: docR, Centroids: centR, Int8s: int8R,
	}
	if err := e.SSD.RDB.Register(db.rec); err != nil {
		return nil, err
	}

	if err := e.writeSlotted(docR, items.docs, db.docBytes, db.docsPerPage, nil, start, stride); err != nil {
		return nil, err
	}
	if err := e.writeSlotted(int8R, items.int8s, db.int8Bytes, db.int8PerPage, nil, start, stride); err != nil {
		return nil, err
	}
	if err := e.writeSlotted(embR, items.bins, db.slotBytes, db.embPerPage, items.oobs, start, stride); err != nil {
		return nil, err
	}
	if items.cents != nil {
		if err := e.writeSlotted(centR, items.cents, db.slotBytes, db.embPerPage, nil, start, stride); err != nil {
			return nil, err
		}
	}
	if stride == 1 {
		// Whole-layout deploy: the engine owns the database end to end.
		// (Metadata tags live only in the OOB linkage, where the scan
		// reads them; the layout's metaTags exist for that encoding.)
		db.rivf = lo.rivf
		db.regionSlots = lo.regionSlots
		db.mut = newMutState(lo, e.SSD.Cfg.Geo, e.Opts.FirstFitPlacement)
		if cb := e.SSD.Cfg.CacheDRAMBytes; cb > 0 {
			geo := e.SSD.Cfg.Geo
			db.cache = newDBCache(cb, geo.PageBytes, geo.OOBBytes, len(lo.rivf))
		}
	} else {
		// A shard serves explicit scan ranges from the router; its
		// local slot count covers the owned pages only, and the global
		// R-IVF table stays with the router.
		db.regionSlots = embR.Pages() * db.embPerPage
	}

	// Page-level FTL metadata was needed for the writes above; flush
	// it now that coarse-grained access takes over (Sec 4.1.4).
	e.SSD.FTL.Drop(0, int64(e.SSD.Cfg.Geo.TotalPages()))

	e.dbs[id] = db
	return db, nil
}

// writeSlotted packs items (each at most slotBytes) into region pages,
// slotsPerPage per page, with optional per-item OOB records. Local
// page p of the region holds the items of global page start + p*stride
// — (0, 1) writes the whole item list, a shard writes its page-stride
// subset.
func (e *Engine) writeSlotted(r ssd.Region, items [][]byte, slotBytes, slotsPerPage int, oobs [][]byte, start, stride int) error {
	geo := e.SSD.Cfg.Geo
	page := make([]byte, geo.PageBytes)
	oob := make([]byte, geo.OOBBytes)
	for p := 0; p < r.Pages(); p++ {
		for i := range page {
			page[i] = 0
		}
		for i := range oob {
			oob[i] = 0
		}
		g := start + p*stride
		for s := 0; s < slotsPerPage; s++ {
			idx := g*slotsPerPage + s
			if idx >= len(items) {
				break
			}
			copy(page[s*slotBytes:(s+1)*slotBytes], items[idx])
			if oobs != nil {
				copy(oob[s*oobBytesPerSlot:(s+1)*oobBytesPerSlot], oobs[idx])
			}
		}
		if err := e.SSD.WriteRegionPage(r, p, page, oob); err != nil {
			return err
		}
	}
	return nil
}

func encodeLinkage(dadr, radr uint32, tag uint8) []byte {
	b := make([]byte, oobBytesPerSlot)
	putU32(b[0:], dadr)
	putU32(b[4:], radr)
	b[8] = tag
	return b
}

func decodeLinkage(b []byte) (dadr, radr uint32, tag uint8) {
	return getU32(b[0:]), getU32(b[4:]), b[8]
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// buildRIVF computes the per-cluster positional ranges of the
// cluster-sorted placement.
func buildRIVF(assign, order []int, nlist int) []RIVFEntry {
	entries := make([]RIVFEntry, nlist)
	for c := range entries {
		entries[c] = RIVFEntry{CentroidSlot: c, First: -1, Last: -1, Tag: uint8(c & 0xFF)}
	}
	for pos, id := range order {
		if id < 0 {
			continue // page-alignment padding
		}
		c := assign[id]
		if entries[c].First < 0 {
			entries[c].First = pos
		}
		entries[c].Last = pos
	}
	return entries
}

// calibrateFilter chooses the distance-filtering threshold offline
// (Sec 4.3.3). The paper tunes the threshold so ~99% of candidates are
// filtered while the true top-k still passes; we reproduce that by
// sampling database vectors as pseudo-queries, measuring their k'-th
// nearest Hamming distance within a sample of codes, and placing the
// threshold a safety margin above the largest of them. The sample is
// sparser than the full database, so the estimate errs high (passes
// more), never low.
func calibrateFilter(vectors [][]float32) int {
	const (
		pseudoQueries = 64
		sampleCodes   = 2048
		kSafety       = 32 // well above the paper's k=10 operating point
	)
	n := len(vectors)
	if n < 2 {
		return vecmath.WordsPerVector(len(vectors[0])) * 64
	}
	step := max(1, n/sampleCodes)
	var codes [][]uint64
	for i := 0; i < n; i += step {
		codes = append(codes, vecmath.BinaryQuantize(vectors[i], nil))
	}
	qStep := max(1, len(codes)/pseudoQueries)
	var kths []int
	for qi := 0; qi < len(codes); qi += qStep {
		var dists []int
		for ci, c := range codes {
			if ci == qi {
				continue
			}
			dists = append(dists, vecmath.Hamming(codes[qi], c))
		}
		sort.Ints(dists)
		kths = append(kths, dists[min(kSafety, len(dists)-1)])
	}
	// Use the median of the per-pseudo-query k'-th distances: robust
	// against outlier pseudo-queries in sparse regions (whose k'-th
	// neighbor sits at near-random distance and would disable the
	// filter entirely), while a 25% margin plus a small floor keeps
	// genuinely similar pairs passing.
	sort.Ints(kths)
	med := kths[len(kths)/2]
	return med + med/4 + 2
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ThresholdFor reports the calibrated distance-filter threshold.
func (db *Database) ThresholdFor() int { return db.filterThreshold }

// Live returns the number of live (not tombstoned) entries; for a
// shard slice it falls back to the local slot bound.
func (db *Database) Live() int {
	if db.mut == nil {
		return db.regionSlots
	}
	return db.mut.live
}

// flatSegs returns the brute-force scan plan: the database's live
// slot ranges in scan order. A shard slice (no mutable ledger) serves
// its whole local region.
func (db *Database) flatSegs() []SlotRange {
	if db.mut != nil {
		return db.mut.flatPlan
	}
	return []SlotRange{{First: 0, Last: db.regionSlots - 1}}
}

// clusterSegs returns cluster c's posting list (nil when empty). Only
// whole-layout IVF databases reach this path, so mut is non-nil.
func (db *Database) clusterSegs(c int) []SlotRange { return db.mut.buckets[c] }

// tomb returns the tombstone bitmap consulted by the controller tail,
// or nil when nothing is deleted.
func (db *Database) tombstones() []uint64 {
	if db.mut == nil || db.mut.deadCount == 0 {
		return nil
	}
	return db.mut.tomb
}

// Append implements the OpcodeAppend host command synchronously,
// returning the assigned entry ids.
func (e *Engine) Append(dbID int, cfg AppendConfig) ([]int, error) {
	return submitAppend(e, dbID, cfg)
}

// Delete implements the OpcodeDelete host command synchronously.
func (e *Engine) Delete(dbID int, ids ...int) error { return submitDelete(e, dbID, ids) }

// Compact implements the OpcodeCompact host command: garbage
// collection of under-occupied GC rows. Through a queue the collector
// runs as a background activity, one copy-forward step per victim row
// interleaved with foreground searches; this synchronous wrapper
// blocks until the command completes either way.
func (e *Engine) Compact(dbID int, minLiveRatio float64) (WearStats, error) {
	return submitCompact(e, dbID, minLiveRatio)
}

// gcPlan, gcStep and gcFinish are the scheduler's view of one
// background compaction (the host side of queue.go's GC flights):
// plan the victim rows once, collect one row per step, then complete
// the command. Each acquires the execution lock on its own, so
// foreground searches run between any two steps.
func (e *Engine) gcPlan(cmd *HostCommand) ([]int, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	db, err := e.db(cmd.DBID)
	if err != nil {
		return nil, err
	}
	if db.mut == nil {
		return nil, fmt.Errorf("reis: database %d is a shard slice; mutate through its router", cmd.DBID)
	}
	return mutGCVictims(db.mut, cmd.Compact.MinLiveRatio), nil
}

func (e *Engine) gcStep(cmd *HostCommand, row int, acc *WearStats) error {
	e.execMu.Lock()
	db, err := e.db(cmd.DBID)
	if err != nil {
		e.execMu.Unlock()
		return err
	}
	err = mutGCStep(db.mut, engineMutTarget{e, db}, row, acc)
	if err == nil {
		db.regionSlots = db.mut.tailSlots
		db.calib = nil
		db.cache.invalidate()
	}
	hook := e.testGCStepHook
	e.execMu.Unlock()
	if err == nil && hook != nil {
		hook()
	}
	return err
}

func (e *Engine) gcFinish(cmd *HostCommand, acc *WearStats) (HostResponse, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	db, err := e.db(cmd.DBID)
	if err != nil {
		return HostResponse{}, err
	}
	db.mut.fillWear(acc, engineMutTarget{e, db})
	e.jl.logCompact(cmd.DBID, cmd.Compact.MinLiveRatio)
	w := *acc
	return HostResponse{Done: true, Wear: &w}, nil
}

// JournalBytes returns a copy of the mutation journal: the byte-exact
// record of every committed append, delete and compact since the
// engine started, in application order. Persist it (at any prefix
// ending on a record boundary) and replay it on a freshly deployed
// engine to reconstruct the pre-crash state.
//
// The wire format is a flat record sequence (integers little-endian,
// uvarint as in encoding/binary):
//
//	record  := opcode:u8 dbid:uvarint body
//	append  := n:uvarint dim:uvarint vec[n*dim]:f32bits
//	           { doclen:uvarint docbytes }*n
//	           nassign:uvarint { cluster:uvarint }*nassign
//	           tags:u8 { tag:u8 }*n        (tags=1 iff MetaTags present)
//	delete  := nids:uvarint { id:uvarint }*nids
//	compact := minLiveRatio:f64bits
//
// Deploys are not journaled: recovery re-deploys from the immutable
// deploy configuration first, then replays (see ReplayJournal).
func (e *Engine) JournalBytes() []byte {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	return append([]byte(nil), e.jl.buf...)
}

// ReplayJournal re-applies a journal (or any record-aligned prefix of
// one) through the normal command path. The databases it names must be
// deployed with the same deploy configuration as the journaling
// engine's; replayed mutations are journaled again, so the rebuilt
// engine's journal continues where the prefix ended.
func (e *Engine) ReplayJournal(data []byte) error {
	return replayJournal(e, data)
}

// Record exposes the R-DB record (for tests and tools).
func (db *Database) Record() ssd.DBRecord { return db.rec }

// NList returns the number of IVF clusters (0 for flat databases).
func (db *Database) NList() int { return len(db.rivf) }

// EmbPerPage returns the binary-embedding slots per flash page.
func (db *Database) EmbPerPage() int { return db.embPerPage }
