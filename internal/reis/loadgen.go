package reis

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"reis/internal/xrand"
)

// This file implements the open-loop load generator of the
// latency-distribution layer (DESIGN.md, "Latency distributions and
// SLOs"). QPS summarizes a batch; what a user feels is the latency of
// their own command while it queues behind everyone else's. RunLoad
// measures that: it drives single-query commands through a real queue
// pair to collect each command's bit-identical device stats, then
// replays a deterministic arrival schedule through a virtual-time
// model of the dispatcher — commands arrive at a configured rate,
// coalesce up to the pair's depth exactly as the live dispatcher
// would, and are served for the makespan the occupancy timing model
// assigns the coalesced batch. Per-command latency (completion minus
// arrival) streams into a LatencySketch for p50/p95/p99/p999.
//
// Nothing in the pipeline consults a wall clock: the schedule is
// SplitMix64-seeded, the per-command stats are bit-identical by the
// engine's determinism contract, and the replay is a pure function of
// both — so a load run's quantiles are identical across runs, hosts
// and GOMAXPROCS settings, which is what lets cmd/benchdiff gate on
// p99.

// DefaultLoadCommands is the command-stream length of a load run when
// LoadConfig.Commands is zero: long enough that p99 rests on real
// samples, short enough for CI smoke runs.
const DefaultLoadCommands = 256

// PoissonArrivals returns n arrival offsets of a Poisson process with
// the given mean rate (commands per second of modeled time):
// exponential interarrival gaps drawn from a SplitMix64 stream, summed
// into a sorted schedule starting near zero. The schedule depends only
// on (n, rate, seed).
func PoissonArrivals(n int, rate float64, seed uint64) []time.Duration {
	if n <= 0 || rate <= 0 {
		return nil
	}
	rng := xrand.New(seed)
	arrivals := make([]time.Duration, n)
	t := 0.0
	for i := range arrivals {
		// Inverse-CDF sample; Float64 is in [0,1), so the log argument
		// stays in (0,1] and the gap is finite and non-negative.
		t += -math.Log(1-rng.Float64()) / rate
		arrivals[i] = time.Duration(t * float64(time.Second))
	}
	return arrivals
}

// LoadConfig configures one load-generator run.
type LoadConfig struct {
	// Rate is the mean arrival rate in commands per second of modeled
	// time. Zero selects Utilization-based pacing.
	Rate float64
	// Utilization, when Rate is zero, sets the arrival rate to this
	// fraction of the run's saturation throughput (the modeled QPS of
	// the same command stream with every arrival at t=0). Values
	// around 0.8 probe the steady regime; near 1.0 the backlog grows
	// and tails stretch.
	Utilization float64
	// Commands is the command-stream length (default
	// DefaultLoadCommands). The template command's queries are cycled
	// to fill the stream.
	Commands int
	// Depth is the queue-pair depth (default DefaultQueueDepth): both
	// the admission bound of the functional pass and the coalescing
	// bound of the virtual-time replay.
	Depth int
	// Seed seeds the arrival schedule.
	Seed uint64
	// Accuracy is the quantile sketch's relative-error bound (default
	// DefaultSketchAccuracy).
	Accuracy float64
}

func (cfg *LoadConfig) normalize() error {
	if cfg.Commands <= 0 {
		cfg.Commands = DefaultLoadCommands
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultQueueDepth
	}
	if cfg.Accuracy <= 0 {
		cfg.Accuracy = DefaultSketchAccuracy
	}
	if cfg.Rate <= 0 && (cfg.Utilization <= 0 || cfg.Utilization > 1) {
		return fmt.Errorf("reis: load config needs Rate > 0 or Utilization in (0,1], got rate %v utilization %v", cfg.Rate, cfg.Utilization)
	}
	return nil
}

// LoadResult is the outcome of one load-generator run.
type LoadResult struct {
	// Commands is the served command count.
	Commands int
	// Rate is the effective arrival rate (resolved from Utilization
	// when LoadConfig.Rate was zero).
	Rate float64
	// SaturationQPS is the modeled throughput ceiling of the same
	// command stream at this depth: every arrival at t=0, dispatcher
	// always coalescing full groups.
	SaturationQPS float64
	// Makespan is the modeled time from the start of the schedule to
	// the last completion; ModelQPS is Commands / Makespan.
	Makespan time.Duration
	ModelQPS float64
	// MeanBatch is the mean commands per dispatch of the replay; at
	// low rates it sits near 1 (no queueing, nothing to coalesce) and
	// grows toward Depth as the arrival rate approaches saturation.
	MeanBatch float64
	// MaxBacklog is the peak number of arrived-but-unserved commands.
	MaxBacklog int
	// P50/P95/P99/P999 are latency quantiles (completion minus
	// arrival) from Sketch, within its relative-accuracy bound.
	P50, P95, P99, P999 time.Duration
	// Sketch is the full latency distribution.
	Sketch *LatencySketch
}

// SimulateLoad replays an arrival schedule through a virtual-time
// model of one queue pair's dispatcher: a single server that, whenever
// it frees up, coalesces every command that has already arrived — up
// to depth, in arrival order, exactly like the live dispatcher's group
// picking — and serves the group for cost(first, n), the timing
// model's makespan of commands [first, first+n). Arrivals beyond the
// depth wait, modeling a host that retries ErrQueueFull immediately.
//
// The replay is a pure function of (arrivals, depth, cost): no clocks,
// no goroutines, no randomness.
func SimulateLoad(arrivals []time.Duration, depth int, cost func(first, n int) time.Duration, accuracy float64) LoadResult {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	sketch := NewLatencySketch(accuracy)
	res := LoadResult{Commands: len(arrivals), Sketch: sketch}
	if len(arrivals) == 0 {
		return res
	}
	var busyUntil, last time.Duration
	dispatches := 0
	for i := 0; i < len(arrivals); {
		start := arrivals[i]
		if busyUntil > start {
			start = busyUntil
		}
		// Backlog at dispatch time: everything that arrived while the
		// server was busy, including beyond the coalescing bound.
		backlog := 0
		for k := i; k < len(arrivals) && arrivals[k] <= start; k++ {
			backlog++
		}
		if backlog > res.MaxBacklog {
			res.MaxBacklog = backlog
		}
		j := i + 1
		for j < len(arrivals) && j-i < depth && arrivals[j] <= start {
			j++
		}
		done := start + cost(i, j-i)
		for k := i; k < j; k++ {
			sketch.Observe(done - arrivals[k])
		}
		busyUntil, last = done, done
		dispatches++
		i = j
	}
	res.Makespan = last
	if last > 0 {
		res.ModelQPS = float64(res.Commands) / last.Seconds()
	}
	res.MeanBatch = float64(res.Commands) / float64(dispatches)
	res.P50 = sketch.Quantile(0.50)
	res.P95 = sketch.Quantile(0.95)
	res.P99 = sketch.Quantile(0.99)
	res.P999 = sketch.Quantile(0.999)
	return res
}

// RunLoad runs the load generator against this engine: cfg.Commands
// single-query commands derived from the template (its queries cycled,
// everything else kept) are driven through a fresh queue pair of
// cfg.Depth to collect per-command device stats, then replayed under
// the configured arrival schedule. See the file comment for the
// determinism argument.
func (e *Engine) RunLoad(tmpl HostCommand, sc Scale, cfg LoadConfig) (LoadResult, error) {
	if err := (&cfg).normalize(); err != nil {
		return LoadResult{}, err
	}
	db, err := e.DB(tmpl.DBID)
	if err != nil {
		return LoadResult{}, err
	}
	sts, _, err := collectLoadStats(e, tmpl, cfg)
	if err != nil {
		return LoadResult{}, err
	}
	cost := func(first, n int) time.Duration {
		return e.BatchLatency(db, sts[first:first+n], sc).Makespan
	}
	return finishLoad(cfg, cost)
}

// RunLoad is the sharded counterpart of Engine.RunLoad: the stats pass
// runs through a queue pair over the scatter-gather router, and the
// replay costs each coalesced group with the sharded batch model
// (per-shard occupancy bottleneck plus the gather tail).
func (sh *ShardedEngine) RunLoad(tmpl HostCommand, sc Scale, cfg LoadConfig) (LoadResult, error) {
	if err := (&cfg).normalize(); err != nil {
		return LoadResult{}, err
	}
	sts, perShard, err := collectLoadStats(sh, tmpl, cfg)
	if err != nil {
		return LoadResult{}, err
	}
	shards := sh.Shards()
	var costErr error
	cost := func(first, n int) time.Duration {
		group := make([][]QueryStats, shards)
		for s := 0; s < shards; s++ {
			group[s] = make([]QueryStats, n)
			for k := 0; k < n; k++ {
				group[s][k] = perShard[first+k][s][0]
			}
		}
		bb, err := sh.BatchLatency(tmpl.DBID, sts[first:first+n], group, sc)
		if err != nil && costErr == nil {
			costErr = err
		}
		return bb.Makespan
	}
	res, err := finishLoad(cfg, cost)
	if err == nil && costErr != nil {
		err = costErr
	}
	return res, err
}

// loadHost is the queue-pair surface shared by Engine and
// ShardedEngine that the stats pass needs.
type loadHost interface {
	NewQueue(cfg QueueConfig) (*Queue, error)
}

// collectLoadStats drives cfg.Commands single-query commands through a
// fresh queue pair and returns their stats indexed by submission
// order. perShard[i] is nil on a single-device host. Completion order
// may vary with scheduling, but the stats themselves are bit-identical
// to solo execution (the queue's coalescing contract), so the returned
// slices are deterministic.
func collectLoadStats(h loadHost, tmpl HostCommand, cfg LoadConfig) ([]QueryStats, [][][]QueryStats, error) {
	if len(tmpl.Queries) == 0 {
		return nil, nil, fmt.Errorf("reis: load template carries no queries")
	}
	ch := make(chan Completion, cfg.Depth)
	q, err := h.NewQueue(QueueConfig{Depth: cfg.Depth, Completions: ch})
	if err != nil {
		return nil, nil, err
	}
	defer q.Close()

	sts := make([]QueryStats, cfg.Commands)
	perShard := make([][][]QueryStats, cfg.Commands)
	ids := make(map[CommandID]int, cfg.Commands)
	served := 0
	drain := func() error {
		c := <-ch
		if c.Err != nil {
			return c.Err
		}
		i := ids[c.ID]
		sts[i] = c.Resp.QueryStats[0]
		perShard[i] = c.Resp.PerShard
		served++
		return nil
	}
	for i := 0; i < cfg.Commands; i++ {
		cmd := tmpl
		cmd.Queries = [][]float32{tmpl.Queries[i%len(tmpl.Queries)]}
		for {
			id, err := q.SubmitAsync(context.Background(), cmd)
			if errors.Is(err, ErrQueueFull) {
				if err := drain(); err != nil {
					return nil, nil, err
				}
				continue
			}
			if err != nil {
				return nil, nil, err
			}
			ids[id] = i
			break
		}
	}
	for served < cfg.Commands {
		if err := drain(); err != nil {
			return nil, nil, err
		}
	}
	return sts, perShard, nil
}

// finishLoad resolves the arrival rate (saturation probe, then
// Utilization if Rate was not pinned) and runs the paced replay.
func finishLoad(cfg LoadConfig, cost func(first, n int) time.Duration) (LoadResult, error) {
	// Saturation probe: the same commands, all arrived at t=0, served
	// in full coalesced groups — the depth-d throughput ceiling.
	sat := SimulateLoad(make([]time.Duration, cfg.Commands), cfg.Depth, cost, cfg.Accuracy)
	rate := cfg.Rate
	if rate <= 0 {
		rate = cfg.Utilization * sat.ModelQPS
	}
	if rate <= 0 {
		return LoadResult{}, fmt.Errorf("reis: load run resolved a non-positive arrival rate")
	}
	res := SimulateLoad(PoissonArrivals(cfg.Commands, rate, cfg.Seed), cfg.Depth, cost, cfg.Accuracy)
	res.Rate = rate
	res.SaturationQPS = sat.ModelQPS
	return res, nil
}
