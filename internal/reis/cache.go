package reis

import (
	"math"
	"sort"

	"reis/internal/vecmath"
)

// This file implements the DRAM caching tier above the flash scan path
// (see DESIGN.md, "DRAM caching tier"). A database whose deployment
// config carries ssd.Config.CacheDRAMBytes > 0 owns one dbCache with
// two levels:
//
//   - Hot-cluster cache: binary pages (data + OOB) of the most-probed
//     IVF clusters are pinned in controller DRAM, selected by decayed
//     probe-frequency counters, and scanned with the same
//     XorPopCountSlots kernel the planes run — same distances, same
//     filter and bound predicates, same (Dist, DADR) entry order — so
//     results are bit-identical to the flash scan while the work is
//     reported in the separate CachedPages/CachedSlots counters.
//   - Result cache: a byte-accounted LRU over finished per-query
//     results, keyed on the search opcode, resolved options, and the
//     raw query bits, serving exact repeats at controller cost
//     (ResultCacheHits).
//
// Determinism contract: every cache decision is a pure function of the
// command stream. Counters decay by a fixed factor at the start of each
// IVF search command and increment in cluster-selection order, the pin
// set is a greedy first-fit over (count desc, id asc), and the result
// LRU mutates only on lookups and inserts the single-device reference
// performs identically — so a sharded topology and its N×channels
// reference hold bit-identical cache state at every step. Any mutation
// (append, delete, compact) atomically drops all pinned pages and all
// cached results before the command returns, making a stale hit
// impossible by construction; probe counters survive, so popularity
// re-pins the same clusters from the mutated pages.
const (
	// cacheDecay multiplies every probe counter at each refresh; one
	// refresh happens per IVF search command, so roughly the last few
	// commands dominate the pin choice.
	cacheDecay = 0.75
	// cacheCountFloor zeroes fully-decayed counters so the ranking pass
	// stays proportional to the working set, not the query history.
	cacheCountFloor = 1e-6
	// resultCacheDivisor is the fraction of CacheDRAMBytes reserved for
	// the result cache; the rest pins cluster pages.
	resultCacheDivisor = 8
	// resultCacheHitAccesses is the controller DRAM access count charged
	// per result-cache hit (hash probe plus copying the stored results
	// out of the cache), independent of the workload scale factor.
	resultCacheHitAccesses = 400
)

// pinFetch reads one binary-region page (by global page number) into
// freshly owned buffers. The engine reads its own region; the shard
// router reads the owning shard's local page, which holds byte-
// identical content (see deployShard).
type pinFetch func(page int) (data, oob []byte, err error)

// pinnedRange is the DRAM copy of one posting-list slot range.
type pinnedRange struct {
	first, last int // slot positions [first, last], region-global
	firstPage   int
	pages       [][]byte
	oobs        [][]byte
}

// pinnedCluster is the DRAM copy of one cluster's posting list, one
// pinnedRange per SlotRange, in posting-list order.
type pinnedCluster struct {
	ranges []pinnedRange
	bytes  int64
}

// resEntry is one result-cache record on the LRU list.
type resEntry struct {
	key        string
	res        []DocResult
	bytes      int64
	prev, next *resEntry
}

// dbCache is the per-database DRAM caching tier. All methods are
// nil-receiver safe, so call sites stay unconditional; a nil cache
// (CacheDRAMBytes == 0) behaves exactly like the uncached engine.
type dbCache struct {
	pinBudget int64
	resBudget int64
	pageCost  int64 // DRAM bytes per pinned page (page + OOB)

	counts    []float64 // per-cluster decayed probe counters
	pins      map[int]*pinnedCluster
	pinnedLen int64

	res      map[string]*resEntry
	resBytes int64
	lruHead  *resEntry // most recently used
	lruTail  *resEntry

	// scratch
	order  []int
	qRep   []byte
	xorDst []byte
	dists  []int
}

// newDBCache sizes the tier: 1/resultCacheDivisor of the budget goes to
// the result cache, the rest pins cluster pages. nlist is 0 for flat
// databases (result cache only).
func newDBCache(budget int64, pageBytes, oobBytes, nlist int) *dbCache {
	resBudget := budget / resultCacheDivisor
	return &dbCache{
		pinBudget: budget - resBudget,
		resBudget: resBudget,
		pageCost:  int64(pageBytes + oobBytes),
		counts:    make([]float64, nlist),
		pins:      make(map[int]*pinnedCluster),
		res:       make(map[string]*resEntry),
	}
}

// probe records one cluster selection. Called in per-query rank order,
// queries in batch order — the same order on every topology.
func (c *dbCache) probe(cluster int) {
	if c == nil || cluster < 0 || cluster >= len(c.counts) {
		return
	}
	c.counts[cluster]++
}

// pinnedFor returns the pinned copy of a cluster, or nil.
func (c *dbCache) pinnedFor(cluster int) *pinnedCluster {
	if c == nil {
		return nil
	}
	return c.pins[cluster]
}

// refresh runs once at the start of each IVF search command: decay the
// probe counters, recompute the pin set (greedy first-fit over clusters
// by decayed count descending, id ascending, skipping clusters that do
// not fit), drop stale pins and fill new ones through fetch. Pin
// decisions therefore lag the command that makes a cluster hot by one
// command — the fill is modeled as a background prefetch between
// commands and costs nothing in the timing model.
func (c *dbCache) refresh(segsOf func(cluster int) []SlotRange, embPerPage int, fetch pinFetch) error {
	if c == nil || len(c.counts) == 0 || c.pinBudget <= 0 {
		return nil
	}
	order := c.order[:0]
	for i := range c.counts {
		c.counts[i] *= cacheDecay
		if c.counts[i] < cacheCountFloor {
			c.counts[i] = 0
			continue
		}
		order = append(order, i)
	}
	c.order = order
	sort.Slice(order, func(a, b int) bool {
		ca, cb := c.counts[order[a]], c.counts[order[b]]
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	desired := make(map[int]int64, len(order))
	var used int64
	for _, cl := range order {
		cost := c.clusterCost(segsOf(cl), embPerPage)
		if cost == 0 || used+cost > c.pinBudget {
			continue
		}
		desired[cl] = cost
		used += cost
	}
	for cl, pc := range c.pins {
		if _, ok := desired[cl]; !ok {
			c.pinnedLen -= pc.bytes
			delete(c.pins, cl)
		}
	}
	for _, cl := range order {
		cost, ok := desired[cl]
		if !ok {
			continue
		}
		if _, ok := c.pins[cl]; ok {
			continue
		}
		pc := &pinnedCluster{bytes: cost}
		for _, r := range segsOf(cl) {
			pr, err := fillRange(r.First, r.Last, embPerPage, fetch)
			if err != nil {
				return err
			}
			pc.ranges = append(pc.ranges, pr)
		}
		c.pins[cl] = pc
		c.pinnedLen += cost
	}
	return nil
}

// clusterCost is the DRAM bytes pinning a cluster's posting list costs.
func (c *dbCache) clusterCost(segs []SlotRange, embPerPage int) int64 {
	var pages int64
	for _, r := range segs {
		pages += int64(r.Last/embPerPage - r.First/embPerPage + 1)
	}
	return pages * c.pageCost
}

func fillRange(first, last, embPerPage int, fetch pinFetch) (pinnedRange, error) {
	fp, lp := first/embPerPage, last/embPerPage
	pr := pinnedRange{first: first, last: last, firstPage: fp}
	for p := fp; p <= lp; p++ {
		data, oob, err := fetch(p)
		if err != nil {
			return pr, err
		}
		pr.pages = append(pr.pages, data)
		pr.oobs = append(pr.oobs, oob)
	}
	return pr, nil
}

// cachedScanParams carries the per-query predicates of a pinned scan —
// the same predicates, in the same order, the in-plane scan applies.
type cachedScanParams struct {
	slotBytes  int
	embPerPage int
	filter     bool
	threshold  int
	metaTag    *uint8
	bound      int
}

// scanPinned scans one pinned range from DRAM, mirroring scanPlane slot
// for slot: XOR + popcount distances, padding-slot skip, distance
// filter (dist <= threshold, the PassFail predicate), metadata tag, and
// the strict pruning-bound drop. Entries are appended to dst ascending
// by Pos — the order the per-plane merge produces for the same range —
// and the page/slot counts feed CachedPages/CachedSlots. Pinned
// segments never use the segment-level lb abort: the pages are already
// resident, so the scan always runs under the current bound, which
// keeps the surviving-entry stream a superset of what an aborted flash
// segment would have contributed (and therefore the rerank pool
// identical).
func (c *dbCache) scanPinned(pr *pinnedRange, packed []byte, p cachedScanParams, dst []TTLEntry) (entries []TTLEntry, pages, slots int) {
	n := p.embPerPage * p.slotBytes
	if cap(c.qRep) < n {
		c.qRep = make([]byte, n)
		c.xorDst = make([]byte, n)
	}
	qRep, xorDst := c.qRep[:n], c.xorDst[:n]
	for off := 0; off < n; off += p.slotBytes {
		copy(qRep[off:off+p.slotBytes], packed)
	}
	if cap(c.dists) < p.embPerPage {
		c.dists = make([]int, p.embPerPage)
	}
	dists := c.dists[:p.embPerPage]
	firstPage, lastPage := pr.first/p.embPerPage, pr.last/p.embPerPage
	for pg := firstPage; pg <= lastPage; pg++ {
		data := pr.pages[pg-pr.firstPage]
		oob := pr.oobs[pg-pr.firstPage]
		pages++
		lo, hi := 0, p.embPerPage-1
		if pg == firstPage {
			lo = pr.first % p.embPerPage
		}
		if pg == lastPage {
			hi = pr.last % p.embPerPage
		}
		vecmath.XorPopCountSlots(xorDst, data[:n], qRep, p.slotBytes, lo, hi-lo+1, dists)
		for s := lo; s <= hi; s++ {
			dist := dists[s-lo]
			dadr, radr, tag := decodeLinkage(oob[s*oobBytesPerSlot : (s+1)*oobBytesPerSlot])
			if dadr == InvalidDADR {
				continue // cluster-alignment padding slot
			}
			slots++
			if p.filter && dist > p.threshold {
				continue
			}
			if p.metaTag != nil && tag != *p.metaTag {
				continue
			}
			if p.bound > 0 && dist > p.bound {
				continue
			}
			dst = append(dst, TTLEntry{
				Dist: dist, Pos: pg*p.embPerPage + s, DADR: dadr, RADR: radr, Tag: tag,
			})
		}
	}
	return dst, pages, slots
}

// resultKey encodes everything a per-query result depends on: the
// opcode kind, k, the resolved options, and the raw float32 bits of the
// query. The cache is per-database, so the db id is implicit.
func resultKey(op uint8, k int, opt SearchOptions, query []float32) string {
	buf := make([]byte, 0, 12+4*len(query))
	var flags uint8
	if opt.MetaTag != nil {
		flags |= 1
	}
	if opt.SkipDocs {
		flags |= 2
	}
	if opt.Prune {
		flags |= 4
	}
	tag := uint8(0)
	if opt.MetaTag != nil {
		tag = *opt.MetaTag
	}
	buf = append(buf, op, flags, tag,
		byte(k), byte(k>>8), byte(k>>16), byte(k>>24),
		byte(opt.NProbe), byte(opt.NProbe>>8), byte(opt.NProbe>>16), byte(opt.NProbe>>24))
	for _, f := range query {
		v := math.Float32bits(f)
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// lookupResult returns a deep copy of the cached results for key, if
// present, and marks the entry most recently used.
func (c *dbCache) lookupResult(key string) ([]DocResult, bool) {
	if c == nil {
		return nil, false
	}
	en, ok := c.res[key]
	if !ok {
		return nil, false
	}
	c.moveFront(en)
	return copyResults(en.res), true
}

// storeResult inserts a deep copy of res under key, evicting from the
// LRU tail until the byte budget holds. Oversized entries are skipped.
func (c *dbCache) storeResult(key string, res []DocResult) {
	if c == nil || c.resBudget <= 0 {
		return
	}
	cp := copyResults(res)
	bytes := resultBytes(key, cp)
	if bytes > c.resBudget {
		return
	}
	if en, ok := c.res[key]; ok {
		c.resBytes += bytes - en.bytes
		en.res, en.bytes = cp, bytes
		c.moveFront(en)
	} else {
		en := &resEntry{key: key, res: cp, bytes: bytes}
		c.res[key] = en
		c.resBytes += bytes
		c.pushFront(en)
	}
	for c.resBytes > c.resBudget && c.lruTail != nil {
		ev := c.lruTail
		c.unlink(ev)
		delete(c.res, ev.key)
		c.resBytes -= ev.bytes
	}
}

// invalidate atomically drops every pinned page and cached result; the
// probe counters survive, so popularity re-pins from the mutated data.
// Runs inside the mutation command, before its response is built.
func (c *dbCache) invalidate() {
	if c == nil {
		return
	}
	clear(c.pins)
	c.pinnedLen = 0
	clear(c.res)
	c.resBytes = 0
	c.lruHead, c.lruTail = nil, nil
}

func (c *dbCache) pushFront(en *resEntry) {
	en.prev, en.next = nil, c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = en
	}
	c.lruHead = en
	if c.lruTail == nil {
		c.lruTail = en
	}
}

func (c *dbCache) unlink(en *resEntry) {
	if en.prev != nil {
		en.prev.next = en.next
	} else {
		c.lruHead = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else {
		c.lruTail = en.prev
	}
	en.prev, en.next = nil, nil
}

func (c *dbCache) moveFront(en *resEntry) {
	if c.lruHead == en {
		return
	}
	c.unlink(en)
	c.pushFront(en)
}

func copyResults(res []DocResult) []DocResult {
	cp := make([]DocResult, len(res))
	for i, r := range res {
		cp[i] = r
		if r.Doc != nil {
			cp[i].Doc = append([]byte(nil), r.Doc...)
		}
	}
	return cp
}

// refreshCache runs the per-command pin refresh for a whole-layout IVF
// database, reading binary-region pages from the engine's own device.
// The SLC-ESP partition has zero raw bit-error rate, so the pinned copy
// is bit-identical to what the sensing latch would hold, and the read
// consumes no error-injection randomness.
func (e *Engine) refreshCache(db *Database) error {
	if db.cache == nil || db.mut == nil {
		return nil
	}
	geo := e.SSD.Cfg.Geo
	fetch := func(page int) ([]byte, []byte, error) {
		addr, err := db.rec.Embeddings.AddressOf(geo, page)
		if err != nil {
			return nil, nil, err
		}
		return e.SSD.Dev.ReadPageInto(addr, nil, nil)
	}
	return db.cache.refresh(db.clusterSegs, db.embPerPage, fetch)
}

// cachedParams bundles a query's pinned-scan predicates.
func (db *Database) cachedParams(filter bool, metaTag *uint8, bound int) cachedScanParams {
	return cachedScanParams{
		slotBytes:  db.slotBytes,
		embPerPage: db.embPerPage,
		filter:     filter,
		threshold:  db.filterThreshold,
		metaTag:    metaTag,
		bound:      bound,
	}
}

// refreshCache is the router-side pin refresh: global binary-region
// pages are fetched from the shard that owns them (global page g lives
// on shard g mod N as local page g / N), whose stripe holds content
// byte-identical to the reference device's page — so the pinned copies,
// and every scan over them, match the single-device cache exactly.
func (sh *ShardedEngine) refreshCache(db *ShardedDatabase) error {
	if db.cache == nil || db.mut == nil {
		return nil
	}
	n := len(sh.shards)
	fetch := func(page int) ([]byte, []byte, error) {
		owner, local := page%n, page/n
		dev := sh.shards[owner]
		addr, err := db.locals[owner].rec.Embeddings.AddressOf(dev.e.SSD.Cfg.Geo, local)
		if err != nil {
			return nil, nil, err
		}
		return dev.e.SSD.Dev.ReadPageInto(addr, nil, nil)
	}
	return db.cache.refresh(func(c int) []SlotRange { return db.mut.buckets[c] }, db.lay.embPerPage, fetch)
}

// cachedParams bundles a query's pinned-scan predicates (router side —
// the same layout values the single device reads from its Database).
func (db *ShardedDatabase) cachedParams(filter bool, metaTag *uint8, bound int) cachedScanParams {
	return cachedScanParams{
		slotBytes:  db.lay.slotBytes,
		embPerPage: db.lay.embPerPage,
		filter:     filter,
		threshold:  db.lay.filterThreshold,
		metaTag:    metaTag,
		bound:      bound,
	}
}

func resultBytes(key string, res []DocResult) int64 {
	b := int64(len(key))
	for _, r := range res {
		b += 32 + int64(len(r.Doc))
	}
	return b
}
