package reis

import (
	"bytes"
	"fmt"
	"testing"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/ssd"
)

// testCfg shrinks SSD1 so unit tests stay fast while preserving the
// channel/die/plane structure.
func testCfg() ssd.Config {
	cfg := ssd.SSD1()
	cfg.Geo.Channels = 2
	cfg.Geo.DiesPerChannel = 2
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 32
	cfg.Geo.PagesPerBlock = 16
	cfg.Geo.PageBytes = 4096
	cfg.Geo.OOBBytes = 1024
	return cfg
}

var testData = dataset.Generate(dataset.Config{
	Name: "reis-test", N: 1200, Dim: 128, Clusters: 16, Queries: 24, K: 10,
	DocBytes: 256, Seed: 42,
})

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := New(testCfg(), 64<<20, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func deployFlat(t *testing.T, e *Engine, id int) *Database {
	t.Helper()
	db, err := e.Deploy(DeployConfig{
		ID: id, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func deployIVF(t *testing.T, e *Engine, id, nlist int) *Database {
	t.Helper()
	cents, assign := ann.KMeans(testData.Vectors, ann.KMeansConfig{K: nlist, Seed: 9})
	db, err := e.IVFDeploy(DeployConfig{
		ID: id, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
		Centroids: cents, Assign: assign,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func recallOf(t *testing.T, search func(q []float32) []DocResult) float64 {
	t.Helper()
	got := make([][]int, len(testData.Queries))
	for qi, q := range testData.Queries {
		res := search(q)
		ids := make([]int, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got[qi] = ids
	}
	return dataset.Recall(testData.GroundTruth, got, 10)
}

func TestDeployLayout(t *testing.T) {
	e := newEngine(t, AllOptions())
	db := deployFlat(t, e, 1)
	if db.N != testData.Len() || db.Dim != 128 {
		t.Fatalf("db shape %d/%d", db.N, db.Dim)
	}
	rec := db.Record()
	if rec.Embeddings.Pages() == 0 || rec.Documents.Pages() == 0 || rec.Int8s.Pages() == 0 {
		t.Fatal("missing regions")
	}
	if rec.Centroids.Pages() != 0 {
		t.Fatal("flat deploy created centroid region")
	}
	// slot math: 128-dim binary = 16B -> 256 fit in the 4096B page but
	// the 1024B OOB limits linkage to 1024/9 = 113 slots.
	if db.embPerPage != 113 {
		t.Fatalf("embPerPage = %d", db.embPerPage)
	}
	if db.docsPerPage != 16 {
		t.Fatalf("docsPerPage = %d", db.docsPerPage)
	}
}

func TestDeployRejectsBadInput(t *testing.T) {
	e := newEngine(t, AllOptions())
	if _, err := e.Deploy(DeployConfig{ID: 1}); err == nil {
		t.Fatal("empty deploy accepted")
	}
	if _, err := e.Deploy(DeployConfig{ID: 1, Vectors: testData.Vectors, Docs: testData.Docs[:5]}); err == nil {
		t.Fatal("mismatched docs accepted")
	}
	deployFlat(t, e, 1)
	if _, err := e.Deploy(DeployConfig{ID: 1, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	big := [][]byte{bytes.Repeat([]byte{1}, 9000)}
	if _, err := e.Deploy(DeployConfig{ID: 2, Vectors: testData.Vectors[:1], Docs: big, DocSlotBytes: 256}); err == nil {
		t.Fatal("oversized doc accepted")
	}
}

func TestIVFDeployRequiresClusterInfo(t *testing.T) {
	e := newEngine(t, AllOptions())
	if _, err := e.IVFDeploy(DeployConfig{ID: 1, Vectors: testData.Vectors, Docs: testData.Docs}); err == nil {
		t.Fatal("IVF deploy without cluster info accepted")
	}
}

func TestBruteForceSearchRecall(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	r := recallOf(t, func(q []float32) []DocResult {
		res, _, err := e.Search(1, q, 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
	if r < 0.85 {
		t.Fatalf("in-storage BF recall = %v, want >= 0.85 (BQ+rerank)", r)
	}
	t.Logf("in-storage brute-force Recall@10 = %.3f", r)
}

func TestSearchReturnsLinkedDocuments(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	res, _, err := e.Search(1, testData.Queries[0], 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		want := testData.Docs[r.ID]
		if !bytes.Equal(r.Doc[:len(want)], want) {
			t.Fatalf("doc for id %d does not match source", r.ID)
		}
		if !bytes.Contains(r.Doc, []byte(fmt.Sprintf("doc=%d", r.ID))) {
			t.Fatalf("doc header does not encode id %d", r.ID)
		}
	}
	// Results sorted by reranked distance.
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestIVFSearchRecallIncreasesWithNProbe(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	var prev float64
	for _, nprobe := range []int{1, 4, 16} {
		r := recallOf(t, func(q []float32) []DocResult {
			res, _, err := e.IVFSearch(1, q, 10, SearchOptions{NProbe: nprobe, SkipDocs: true})
			if err != nil {
				t.Fatal(err)
			}
			return res
		})
		if r+1e-9 < prev {
			t.Fatalf("recall fell with nprobe=%d: %v < %v", nprobe, r, prev)
		}
		prev = r
		t.Logf("nprobe=%d recall=%.3f", nprobe, r)
	}
	if prev < 0.85 {
		t.Fatalf("full-probe IVF recall = %v", prev)
	}
}

func TestIVFSearchMatchesBruteForceAtFullProbe(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	deployIVF(t, e, 2, 8)
	for _, q := range testData.Queries[:4] {
		bf, _, err := e.Search(1, q, 10, SearchOptions{SkipDocs: true})
		if err != nil {
			t.Fatal(err)
		}
		ivf, _, err := e.IVFSearch(2, q, 10, SearchOptions{NProbe: 8, SkipDocs: true})
		if err != nil {
			t.Fatal(err)
		}
		bfIDs := map[int]bool{}
		for _, r := range bf {
			bfIDs[r.ID] = true
		}
		match := 0
		for _, r := range ivf {
			if bfIDs[r.ID] {
				match++
			}
		}
		if match < 8 {
			t.Fatalf("full-probe IVF found %d/10 of BF results", match)
		}
	}
}

func TestDistanceFilteringPreservesRecall(t *testing.T) {
	on := newEngine(t, AllOptions())
	deployFlat(t, on, 1)
	offOpts := AllOptions()
	offOpts.DistanceFilter = false
	off := newEngine(t, offOpts)
	deployFlat(t, off, 1)
	rOn := recallOf(t, func(q []float32) []DocResult {
		res, _, _ := on.Search(1, q, 10, SearchOptions{SkipDocs: true})
		return res
	})
	rOff := recallOf(t, func(q []float32) []DocResult {
		res, _, _ := off.Search(1, q, 10, SearchOptions{SkipDocs: true})
		return res
	})
	if rOff-rOn > 0.03 {
		t.Fatalf("distance filtering cost too much recall: %.3f -> %.3f", rOff, rOn)
	}
	t.Logf("recall DF-off %.3f, DF-on %.3f", rOff, rOn)
}

func TestDistanceFilteringReducesSurvivors(t *testing.T) {
	e := newEngine(t, AllOptions())
	db := deployFlat(t, e, 1)
	_, stOn, err := e.Search(1, testData.Queries[0], 10, SearchOptions{SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Opts.DistanceFilter = false
	_, stOff, err := e.Search(1, testData.Queries[0], 10, SearchOptions{SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	if stOff.Survivors != db.N {
		t.Fatalf("without DF survivors = %d, want %d", stOff.Survivors, db.N)
	}
	if stOn.Survivors*5 > stOff.Survivors {
		t.Fatalf("DF only filtered to %d of %d", stOn.Survivors, stOff.Survivors)
	}
	t.Logf("survivors: DF-on %d / DF-off %d (%.1f%%)", stOn.Survivors, stOff.Survivors,
		100*float64(stOn.Survivors)/float64(stOff.Survivors))
}

func TestQueryStatsShape(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	_, st, err := e.IVFSearch(1, testData.Queries[0], 10, SearchOptions{NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.CoarsePages == 0 || st.FinePages == 0 {
		t.Fatalf("pages not counted: %+v", st)
	}
	if st.EntriesScanned == 0 || st.Survivors == 0 {
		t.Fatalf("entries not counted: %+v", st)
	}
	if st.IBCBroadcasts != e.SSD.Cfg.Geo.Planes() {
		t.Fatalf("IBC broadcasts = %d, want %d", st.IBCBroadcasts, e.SSD.Cfg.Geo.Planes())
	}
	if st.RerankCount == 0 || st.DocPages == 0 || st.DocBytes == 0 {
		t.Fatalf("tail stages not counted: %+v", st)
	}
	// IVF must scan far fewer entries than the whole database.
	if st.EntriesScanned >= testData.Len() {
		t.Fatalf("IVF nprobe=4 scanned the whole database: %d", st.EntriesScanned)
	}
}

func TestScanUsesAllPlanes(t *testing.T) {
	// With parallelism-first placement a brute-force scan must touch
	// every plane nearly evenly: waves == ceil(pages/planes).
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	_, st, err := e.Search(1, testData.Queries[0], 10, SearchOptions{SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	planes := e.SSD.Cfg.Geo.Planes()
	wantWaves := (st.FinePages + planes - 1) / planes
	if st.FineWaves != wantWaves {
		t.Fatalf("waves = %d, want %d (pages %d over %d planes)",
			st.FineWaves, wantWaves, st.FinePages, planes)
	}
}

func TestMetadataFiltering(t *testing.T) {
	e := newEngine(t, AllOptions())
	tags := make([]uint8, testData.Len())
	for i := range tags {
		tags[i] = uint8(testData.ClusterOf[i] % 4)
	}
	_, err := e.Deploy(DeployConfig{
		ID: 1, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
		MetaTags: tags,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Request the tag of the query's true nearest neighbor so matching
	// entries exist near the query (distance filtering removes far
	// candidates regardless of tag).
	want := tags[testData.GroundTruth[0][0]]
	res, _, err := e.Search(1, testData.Queries[0], 10, SearchOptions{MetaTag: &want, SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("filtered search returned nothing")
	}
	for _, r := range res {
		if tags[r.ID] != want {
			t.Fatalf("result %d has tag %d, want %d", r.ID, tags[r.ID], want)
		}
	}
}

func TestCalibrateNProbeMonotone(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	np90, err := e.CalibrateNProbe(1, testData.Queries, testData.GroundTruth, 10, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	np98, err := e.CalibrateNProbe(1, testData.Queries, testData.GroundTruth, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if np98 < np90 {
		t.Fatalf("nprobe(0.95)=%d < nprobe(0.80)=%d", np98, np90)
	}
	t.Logf("calibrated nprobe: 0.80->%d, 0.95->%d", np90, np98)
}

func TestHostAPIDeployAndSearch(t *testing.T) {
	e := newEngine(t, AllOptions())
	cents, assign := ann.KMeans(testData.Vectors, ann.KMeansConfig{K: 8, Seed: 3})
	resp, err := e.Submit(HostCommand{
		Opcode: OpcodeIVFDeploy,
		Deploy: &DeployConfig{
			ID: 7, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
			Centroids: cents, Assign: assign,
		},
	})
	if err != nil || !resp.Done {
		t.Fatalf("deploy failed: %v", err)
	}
	resp, err = e.Submit(HostCommand{
		Opcode: OpcodeIVFSearch, DBID: 7, Queries: testData.Queries[:3], K: 5, NProbe: 8,
	})
	if err != nil || !resp.Done {
		t.Fatalf("search failed: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results for %d queries", len(resp.Results))
	}
	for _, rs := range resp.Results {
		if len(rs) != 5 {
			t.Fatalf("query returned %d docs", len(rs))
		}
		for _, r := range rs {
			if len(r.Doc) == 0 {
				t.Fatal("empty document returned")
			}
		}
	}
	if resp.Stats.FinePages == 0 {
		t.Fatal("batch stats not aggregated")
	}
}

func TestHostAPIErrors(t *testing.T) {
	e := newEngine(t, AllOptions())
	if _, err := e.Submit(HostCommand{Opcode: 0x42}); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	if _, err := e.Submit(HostCommand{Opcode: OpcodeDBDeploy}); err == nil {
		t.Fatal("deploy without payload accepted")
	}
	if _, err := e.Submit(HostCommand{Opcode: OpcodeSearch, DBID: 1}); err == nil {
		t.Fatal("search without queries accepted")
	}
	if _, _, err := e.Search(99, testData.Queries[0], 5, SearchOptions{}); err == nil {
		t.Fatal("search on unknown database accepted")
	}
}

func TestSearchValidation(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	if _, _, err := e.Search(1, make([]float32, 7), 5, SearchOptions{}); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
	if _, _, err := e.Search(1, testData.Queries[0], 0, SearchOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := e.IVFSearch(1, testData.Queries[0], 5, SearchOptions{}); err == nil {
		t.Fatal("IVF search on flat database accepted")
	}
}

func TestEmbeddingsLandInSLCESPBlocks(t *testing.T) {
	e := newEngine(t, AllOptions())
	db := deployFlat(t, e, 1)
	geo := e.SSD.Cfg.Geo
	for i := 0; i < db.rec.Embeddings.Pages(); i++ {
		a, err := db.rec.Embeddings.AddressOf(geo, i)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.SSD.Dev.BlockMode(a); got.String() != "SLC-ESP" {
			t.Fatalf("embedding page %d in %v block", i, got)
		}
	}
	for i := 0; i < db.rec.Documents.Pages(); i++ {
		a, err := db.rec.Documents.AddressOf(geo, i)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.SSD.Dev.BlockMode(a); got.String() != "TLC" {
			t.Fatalf("document page %d in %v block", i, got)
		}
	}
}

func TestPageFTLFlushedAfterDeploy(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	if n := e.SSD.FTL.Entries(); n != 0 {
		t.Fatalf("page-level FTL still holds %d entries after deploy", n)
	}
}

func TestQuickselectTTL(t *testing.T) {
	es := make([]TTLEntry, 100)
	for i := range es {
		es[i] = TTLEntry{Dist: (i * 37) % 101, Pos: i}
	}
	quickselectTTL(es, 10)
	max10 := 0
	for i := 0; i < 10; i++ {
		if es[i].Dist > max10 {
			max10 = es[i].Dist
		}
	}
	for i := 10; i < len(es); i++ {
		if es[i].Dist < max10 {
			t.Fatalf("entry %d (dist %d) smaller than left partition max %d", i, es[i].Dist, max10)
		}
	}
}

func TestMultipleDatabasesCoexist(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	deployIVF(t, e, 2, 8)
	r1, _, err := e.Search(1, testData.Queries[0], 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := e.IVFSearch(2, testData.Queries[0], 5, SearchOptions{NProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Same data deployed twice: top result should agree.
	if r1[0].ID != r2[0].ID {
		t.Fatalf("top results differ across databases: %d vs %d", r1[0].ID, r2[0].ID)
	}
}
