package reis

import (
	"context"
	"fmt"
	"slices"

	"reis/internal/vecmath"
)

// This file is the sharded half of threshold-propagated top-k pruning
// (see prune.go for the single-device rounds and the correctness
// argument). The router runs the same controller-driven rounds —
// identical chunk/window boundaries, computed from the global plan and
// the global plane count — but each round is a scatter: every shard of
// the round receives the same per-query bound and the same per-segment
// lower bounds, and the gathered reap tightens the bound pushed into
// the next round's not-yet-issued OpcodeScan commands (the Fagin-style
// threshold-algorithm loop of the ROADMAP). Because the rounds, bounds
// and abort decisions are pure functions of global state, a pruned
// sharded run's merged entry stream — and therefore its results — is
// bit-identical to a pruned single device's, and its scan stats
// aggregate to the N×-channels reference exactly like the unpruned
// contract (counts sum, waves max).

// searchFlatPruned is the sharded round-based brute-force path behind
// SearchOptions.Prune.
func (sh *ShardedEngine) searchFlatPruned(ctx context.Context, db *ShardedDatabase, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, [][]QueryStats, error) {
	nq := len(queries)
	rounds := chunkFlatRounds(db.mut.flatPlan, db.lay.embPerPage, sh.cfg.Geo.Planes())
	trackers := make([]boundTracker, nq)
	for i := range trackers {
		trackers[i].capacity = rerankPool(k)
	}
	accs := make([][]TTLEntry, nq)
	sts := make([]QueryStats, nq)
	bounds := make([]int, nq)
	var tomb []uint64
	if db.mut.deadCount > 0 {
		tomb = db.mut.tomb
	}
	var perShard [][]QueryStats
	segs := make([][]SlotRange, nq)
	for _, rd := range rounds {
		for qi := range segs {
			segs[qi] = rd
			bounds[qi] = trackers[qi].bound()
		}
		resps, err := sh.scatter(ctx, db, queries, false, segs, bounds, nil, opt)
		if err != nil {
			return nil, nil, nil, err
		}
		for qi := range queries {
			if err := ctx.Err(); err != nil {
				return nil, nil, nil, err
			}
			st := &sts[qi]
			st.IBCBroadcasts += gatherIBC(resps, qi)
			mark := len(accs[qi])
			for si := range rd {
				gatherSegStats(resps, qi, si, false, st)
				accs[qi] = sh.mergeSeg(accs[qi], resps, qi, si, db.lay.embPerPage)
			}
			feedTracker(&trackers[qi], accs[qi][mark:], tomb)
		}
		perShard = perShardStats(resps, nq, perShard)
	}
	results := make([][]DocResult, nq)
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		res, err := sh.finish(db, queries[qi], accs[qi], k, opt, &sts[qi])
		if err != nil {
			return nil, nil, nil, err
		}
		results[qi] = res
	}
	if perShard == nil {
		// Empty scan plan (everything compacted away): no round ran, but
		// callers still expect the [shard][query] stats shape.
		perShard = make([][]QueryStats, len(sh.shards))
		for s := range perShard {
			perShard[s] = make([]QueryStats, nq)
		}
	}
	return results, sts, perShard, nil
}

// searchIVFPruned is the sharded round-based IVF path behind
// SearchOptions.Prune: an unpruned coarse scatter, gather-side cluster
// selection with triangle-inequality lower bounds, then the selected
// clusters scattered in geometric rank windows under the tightening
// per-query bounds.
func (sh *ShardedEngine) searchIVFPruned(ctx context.Context, db *ShardedDatabase, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, [][]QueryStats, error) {
	nq := len(queries)
	nlist := len(db.lay.rivf)
	if nlist == 0 {
		return nil, nil, nil, fmt.Errorf("reis: database %d was not deployed with IVF_Deploy", db.ID)
	}
	nprobe := opt.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	// Refresh the hot-cluster pins at the same command boundary the
	// single device does (ivfSearchBatchPruned refreshes itself).
	if err := sh.refreshCache(db); err != nil {
		return nil, nil, nil, err
	}

	// Coarse phase, identical to the unpruned sharded path.
	coarseSegs := make([][]SlotRange, nq)
	wholeCent := []SlotRange{{First: 0, Last: nlist - 1}}
	for i := range coarseSegs {
		coarseSegs[i] = wholeCent
	}
	cresps, err := sh.scatter(ctx, db, queries, true, coarseSegs, nil, nil, opt)
	if err != nil {
		return nil, nil, nil, err
	}

	sts := make([]QueryStats, nq)
	sel := make([][]prunedCluster, nq)
	maxSel := 0
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		st := &sts[qi]
		st.IBCBroadcasts = gatherIBC(cresps, qi)
		gatherSegStats(cresps, qi, 0, true, st)
		cents := sh.mergeSeg(sh.scr.cents[:0], cresps, qi, 0, db.lay.embPerPage)
		sh.scr.cents = cents
		st.CoarseEntries = len(cents)
		st.SelectInput += len(cents)
		slices.SortFunc(cents, cmpTTLDistPos)
		np := nprobe
		if np > len(cents) {
			np = len(cents)
		}
		sel[qi] = make([]prunedCluster, np)
		for i, c := range cents[:np] {
			db.cache.probe(c.Pos)
			sel[qi][i] = prunedCluster{cluster: c.Pos, lb: clusterLB(c.Dist, db.mut.radius[c.Pos])}
		}
		if np > maxSel {
			maxSel = np
		}
	}

	// Fine phase in cluster-rank windows, bounds tightening per round.
	trackers := make([]boundTracker, nq)
	for i := range trackers {
		trackers[i].capacity = rerankPool(k)
	}
	accs := make([][]TTLEntry, nq)
	bounds := make([]int, nq)
	var tomb []uint64
	if db.mut.deadCount > 0 {
		tomb = db.mut.tomb
	}
	perShard := perShardStats(cresps, nq, nil)
	segs := make([][]SlotRange, nq)
	lbs := make([][]int, nq)
	// pins parallels segs per round: a non-nil entry is served from the
	// router's hot-cluster cache under the round's bound (never
	// lb-aborted — the pages are already resident), and its segs slot
	// holds the empty sentinel so no shard scans it.
	var pins [][]*pinnedRange
	var packed [][]byte
	if db.cache != nil {
		pins = make([][]*pinnedRange, nq)
		packed = make([][]byte, nq)
	}
	for r := 0; ; r++ {
		start, size := probeWindow(r)
		if start >= maxSel {
			break
		}
		for qi := range segs {
			segs[qi] = segs[qi][:0]
			lbs[qi] = lbs[qi][:0]
			if pins != nil {
				pins[qi] = pins[qi][:0]
			}
			bounds[qi] = trackers[qi].bound()
			list := sel[qi]
			for i := start; i < start+size && i < len(list); i++ {
				pc := db.cache.pinnedFor(list[i].cluster)
				for _, sr := range db.mut.buckets[list[i].cluster] {
					if pc != nil {
						segs[qi] = append(segs[qi], SlotRange{First: 0, Last: -1})
					} else {
						segs[qi] = append(segs[qi], sr)
					}
					lbs[qi] = append(lbs[qi], list[i].lb)
				}
				if pins != nil {
					for ri := range db.mut.buckets[list[i].cluster] {
						if pc != nil {
							pins[qi] = append(pins[qi], &pc.ranges[ri])
						} else {
							pins[qi] = append(pins[qi], nil)
						}
					}
				}
			}
		}
		resps, err := sh.scatter(ctx, db, queries, false, segs, bounds, lbs, opt)
		if err != nil {
			return nil, nil, nil, err
		}
		for qi := range queries {
			if err := ctx.Err(); err != nil {
				return nil, nil, nil, err
			}
			st := &sts[qi]
			st.IBCBroadcasts += gatherIBC(resps, qi)
			mark := len(accs[qi])
			for si := range segs[qi] {
				if pins != nil && pins[qi][si] != nil {
					if packed[qi] == nil {
						packed[qi] = vecmath.PackBinaryBytes(vecmath.BinaryQuantize(queries[qi], nil), nil)
					}
					var cp, cs int
					accs[qi], cp, cs = db.cache.scanPinned(pins[qi][si], packed[qi],
						db.cachedParams(sh.opts.DistanceFilter, opt.MetaTag, bounds[qi]), accs[qi])
					st.CachedPages += cp
					st.CachedSlots += cs
					continue
				}
				gatherSegStats(resps, qi, si, false, st)
				accs[qi] = sh.mergeSeg(accs[qi], resps, qi, si, db.lay.embPerPage)
			}
			feedTracker(&trackers[qi], accs[qi][mark:], tomb)
		}
		perShard = perShardStats(resps, nq, perShard)
	}

	results := make([][]DocResult, nq)
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		res, err := sh.finish(db, queries[qi], accs[qi], k, opt, &sts[qi])
		if err != nil {
			return nil, nil, nil, err
		}
		results[qi] = res
	}
	return results, sts, perShard, nil
}
