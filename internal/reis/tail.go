package reis

import (
	"slices"

	"reis/internal/vecmath"
)

// This file is the controller-side pipeline tail (steps 5-9 of
// Fig 6): quickselect to the rerank pool, INT8 rescoring, quicksort,
// and document retrieval. The tail is shared by the single-device
// engine (pages live in its own regions) and the sharded router (the
// gather side fetches each page from the shard that owns it) — the
// tailSource interface is the only difference, so sharded results are
// bit-identical to single-device results by construction.

// tailScratch holds the tail's pooled working sets. Exactly one
// goroutine owns a tailScratch at a time (the engine's execution lock
// or the router's); everything handed back to the caller is freshly
// allocated.
type tailScratch struct {
	q8         []int8
	emb        []int8
	reranked   []DocResult
	groups     []pageIdx
	planePages []int
	pageBuf    []byte
	oobBuf     []byte
}

// tailParams are the layout constants the tail needs; identical
// between a single device and the shards built from the same plan.
// planes is the *global* plane count — on a sharded host the union of
// the member devices' planes — so wave accounting matches a single
// device bit for bit.
type tailParams struct {
	int8Bytes   int
	int8PerPage int
	docsPerPage int
	docBytes    int
	planes      int
	params      vecmath.Int8Params
	// dead is the database's tombstone bitmap (indexed by DADR), or
	// nil when nothing is deleted. The tail drops tombstoned entries
	// from the merged stream before selection, so deleted documents
	// never surface; the scan side stays tombstone-oblivious (dies
	// have no DRAM for the bitmap), which keeps scan-phase stats
	// equal across topologies.
	dead []uint64
}

// tailSource senses one page of the INT8 (rerank) or document region
// and returns its data plus the global plane index it was read from
// (for wave accounting). Implementations use ts.pageBuf/ts.oobBuf as
// the backing buffers; the returned slice is valid until the next
// read.
type tailSource interface {
	readRerankPage(ts *tailScratch, page int) ([]byte, int, error)
	readDocPage(ts *tailScratch, page int) ([]byte, int, error)
}

// runTail executes the controller tail over a merged entry stream.
// Working sets live in ts; only the returned results (and their
// document bytes) are allocated.
func runTail(src tailSource, ts *tailScratch, tp tailParams, query []float32, entries []TTLEntry, k int, opt SearchOptions, st *QueryStats) ([]DocResult, error) {
	if tp.dead != nil {
		entries = filterTombstoned(entries, tp.dead)
	}
	st.SelectInput += len(entries)
	pool := k * RerankFactor
	if pool > len(entries) {
		pool = len(entries)
	}
	quickselectTTL(entries, pool)
	cands := entries[:pool]

	// Rerank: fetch INT8 embeddings by RADR, grouped by page so each
	// page is sensed once. Grouping sorts a pooled (page, index) slice
	// instead of building a map: iteration order becomes deterministic
	// and the grouping is allocation-free.
	q8 := tp.params.Int8Quantize(query, ts.q8)
	ts.q8 = q8
	groups := ts.groups[:0]
	for i, c := range cands {
		groups = append(groups, pageIdx{page: int(c.RADR) / tp.int8PerPage, idx: i})
	}
	slices.SortFunc(groups, cmpPageIdx)
	ts.groups = groups

	planePages := resizeInts(ts.planePages, tp.planes)
	ts.planePages = planePages
	reranked := ts.reranked[:0]
	for gi := 0; gi < len(groups); {
		page := groups[gi].page
		data, plane, err := src.readRerankPage(ts, page)
		if err != nil {
			return nil, err
		}
		st.RerankPages++
		planePages[plane]++
		for ; gi < len(groups) && groups[gi].page == page; gi++ {
			c := cands[groups[gi].idx]
			slot := int(c.RADR) % tp.int8PerPage
			emb := vecmath.UnpackInt8Bytes(data[slot*tp.int8Bytes:(slot+1)*tp.int8Bytes], ts.emb)
			ts.emb = emb
			d := vecmath.L2SquaredInt8(q8, emb)
			reranked = append(reranked, DocResult{ID: int(c.DADR), Dist: float32(d)})
		}
	}
	ts.reranked = reranked
	for _, n := range planePages {
		if n > st.RerankWaves {
			st.RerankWaves = n
		}
	}
	st.RerankCount += len(cands)

	// Quicksort the reranked pool, keep top-k in a fresh caller-owned
	// slice (the rerank scratch recycles across queries).
	slices.SortFunc(reranked, cmpDocResult)
	st.SortedEntries += len(reranked)
	n := len(reranked)
	if k < n {
		n = k
	}
	out := make([]DocResult, n)
	copy(out, reranked[:n])

	if opt.SkipDocs {
		return out, nil
	}

	// Document identification and retrieval (step 9): group DADRs by
	// document page with the same sorted pooled grouping.
	groups = groups[:0]
	for i, r := range out {
		groups = append(groups, pageIdx{page: r.ID / tp.docsPerPage, idx: i})
	}
	slices.SortFunc(groups, cmpPageIdx)
	ts.groups = groups
	for gi := 0; gi < len(groups); {
		page := groups[gi].page
		data, _, err := src.readDocPage(ts, page)
		if err != nil {
			return nil, err
		}
		st.DocPages++
		for ; gi < len(groups) && groups[gi].page == page; gi++ {
			i := groups[gi].idx
			slot := out[i].ID % tp.docsPerPage
			doc := make([]byte, tp.docBytes)
			copy(doc, data[slot*tp.docBytes:(slot+1)*tp.docBytes])
			out[i].Doc = doc
			st.DocBytes += int64(tp.docBytes)
		}
	}
	return out, nil
}

// filterTombstoned compacts the merged entry stream in place, keeping
// only entries whose DADR is not tombstoned. Order is preserved, so
// downstream selection stays deterministic.
func filterTombstoned(es []TTLEntry, tomb []uint64) []TTLEntry {
	out := es[:0]
	for _, e := range es {
		if !bitsetGet(tomb, int(e.DADR)) {
			out = append(out, e)
		}
	}
	return out
}

// engineTailSource reads tail pages from the engine's own regions.
type engineTailSource struct {
	e  *Engine
	db *Database
}

func (s *engineTailSource) readRerankPage(ts *tailScratch, page int) ([]byte, int, error) {
	geo := s.e.SSD.Cfg.Geo
	addr, err := s.db.rec.Int8s.AddressOf(geo, page)
	if err != nil {
		return nil, 0, err
	}
	data, oob, err := s.e.SSD.Dev.ReadPageInto(addr, ts.pageBuf, ts.oobBuf)
	if err != nil {
		return nil, 0, err
	}
	ts.pageBuf, ts.oobBuf = data, oob
	return data, addr.PlaneIndex(geo), nil
}

func (s *engineTailSource) readDocPage(ts *tailScratch, page int) ([]byte, int, error) {
	geo := s.e.SSD.Cfg.Geo
	addr, err := s.db.rec.Documents.AddressOf(geo, page)
	if err != nil {
		return nil, 0, err
	}
	data, oob, err := s.e.SSD.Dev.ReadPageInto(addr, ts.pageBuf, ts.oobBuf)
	if err != nil {
		return nil, 0, err
	}
	ts.pageBuf, ts.oobBuf = data, oob
	return data, addr.PlaneIndex(geo), nil
}

// tailParams assembles the tail constants of a database under the
// given global plane count.
func (db *Database) tailParams(planes int) tailParams {
	return tailParams{
		int8Bytes:   db.int8Bytes,
		int8PerPage: db.int8PerPage,
		docsPerPage: db.docsPerPage,
		docBytes:    db.docBytes,
		planes:      planes,
		params:      db.params,
		dead:        db.tombstones(),
	}
}
