package reis

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// This file implements the streaming quantile sketch behind the
// latency-distribution layer (see DESIGN.md, "Latency distributions
// and SLOs"). The load generator (loadgen.go) feeds one modeled
// latency per served command into a LatencySketch and the SLO sweeps
// report p50/p95/p99/p999 from it.
//
// The sketch is a DDSketch-style logarithmic histogram: bucket i holds
// every value v with gamma^(i-1) < v <= gamma^i, where
// gamma = (1+alpha)/(1-alpha). Reporting the bucket midpoint
// 2*gamma^i/(gamma+1) guarantees a relative error of at most alpha for
// every quantile, with O(log(max/min)/alpha) buckets regardless of
// stream length. Unlike sampling sketches the answer is a pure
// function of the observed multiset — no randomness, no insertion-
// order dependence — which is what lets the SLO sweeps promise
// bit-identical JSON across runs and GOMAXPROCS.

// DefaultSketchAccuracy is the relative-accuracy bound alpha used when
// a LoadConfig does not override it: quantiles are within 1% of the
// true value.
const DefaultSketchAccuracy = 0.01

// LatencySketch is a deterministic streaming quantile sketch over
// durations with a bounded relative error. The zero value is not
// usable; construct with NewLatencySketch.
type LatencySketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64
	// counts maps bucket index to occupancy; zero and negative
	// durations land in the dedicated zero bucket below every key.
	counts map[int]int64
	zero   int64
	n      int64
}

// NewLatencySketch builds a sketch whose Quantile answers are within a
// relative error of alpha (0 < alpha < 1); alpha <= 0 selects
// DefaultSketchAccuracy.
func NewLatencySketch(alpha float64) *LatencySketch {
	if alpha <= 0 {
		alpha = DefaultSketchAccuracy
	}
	if alpha >= 1 {
		panic(fmt.Sprintf("reis: sketch accuracy %v out of range (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &LatencySketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		counts:  make(map[int]int64),
	}
}

// Alpha returns the sketch's relative-accuracy bound.
func (s *LatencySketch) Alpha() float64 { return s.alpha }

// Observe records one latency sample.
func (s *LatencySketch) Observe(d time.Duration) {
	s.n++
	ns := d.Nanoseconds()
	if ns <= 0 {
		s.zero++
		return
	}
	s.counts[s.bucket(ns)]++
}

// bucket returns the index i with gamma^(i-1) < ns <= gamma^i.
func (s *LatencySketch) bucket(ns int64) int {
	return int(math.Ceil(math.Log(float64(ns)) / s.lnGamma))
}

// Count returns the number of observed samples.
func (s *LatencySketch) Count() int64 { return s.n }

// Merge folds another sketch of the same accuracy into s. Merging is
// exact: the merged sketch answers as if it had observed both streams.
func (s *LatencySketch) Merge(o *LatencySketch) error {
	if o == nil {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("reis: cannot merge sketches of accuracy %v and %v", s.alpha, o.alpha)
	}
	s.n += o.n
	s.zero += o.zero
	for k, c := range o.counts {
		s.counts[k] += c
	}
	return nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observed
// stream, within the sketch's relative-error bound. It returns 0 on an
// empty sketch.
func (s *LatencySketch) Quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	cum := s.zero
	if cum >= rank {
		return 0
	}
	keys := make([]int, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		cum += s.counts[k]
		if cum >= rank {
			// Bucket midpoint under the ratio metric: within alpha of
			// every value the bucket can hold.
			v := 2 * math.Exp(float64(k)*s.lnGamma) / (s.gamma + 1)
			return time.Duration(v + 0.5)
		}
	}
	// Unreachable: bucket counts sum to n - zero.
	return 0
}
