package reis

import (
	"context"
	"fmt"
)

// executeScan serves one OpcodeScan command: a raw scatter scan of
// explicit slot ranges — the per-device half of a sharded search. It
// runs the same batchScan pipeline the Search/IVF_Search opcodes use,
// but returns the surviving TTL entries per (query, segment) instead
// of selecting and reranking: selection happens on the gather side,
// over the merged streams of every shard, so it sees exactly what a
// single device's controller would. The caller must hold e.execMu.
func (e *Engine) executeScan(ctx context.Context, cmd *HostCommand) (HostResponse, error) {
	db, err := e.db(cmd.DBID)
	if err != nil {
		return HostResponse{}, err
	}
	sc := cmd.Scan
	region, filter, metaTag := db.rec.Embeddings, e.Opts.DistanceFilter, cmd.Opt.MetaTag
	slots := db.regionSlots
	if sc.Coarse {
		// Distance filtering does not apply to the coarse scan: TTL-C
		// must rank every centroid so the nprobe nearest clusters are
		// exact (Sec 4.3.1); metadata filtering is per-embedding.
		region, filter, metaTag = db.rec.Centroids, false, nil
		slots = region.Pages() * db.embPerPage
	}
	// K is not an operand of a scan (selection is the gather side's);
	// packBatch only needs a positive k for its shared validation.
	packed, err := e.packBatch(db, cmd.Queries, 1)
	if err != nil {
		return HostResponse{}, err
	}
	segs := make([][]scanSeg, len(cmd.Queries))
	for qi, list := range sc.Segs {
		ss := make([]scanSeg, len(list))
		for si, r := range list {
			// Out-of-region segments are rejected, not clamped: a
			// range the device cannot serve in full would otherwise
			// yield silently truncated results (validate() already
			// rejected negative starts).
			if r.Last >= r.First && r.Last >= slots {
				return HostResponse{}, fmt.Errorf("%w (query %d segment %d: [%d, %d] of %d slots)",
					ErrBadScanRange, qi, si, r.First, r.Last, slots)
			}
			ss[si] = scanSeg{first: r.First, last: r.Last}
			if sc.MinDists != nil {
				ss[si].lb = sc.MinDists[qi][si]
			}
		}
		segs[qi] = ss
	}
	scans, err := e.batchScan(ctx, db, region, packed, segs, filter, metaTag, sc.Bounds)
	if err != nil {
		return HostResponse{}, err
	}

	resp := HostResponse{
		Done:       true,
		Scan:       make([][]ScanSegResult, len(cmd.Queries)),
		QueryStats: make([]QueryStats, len(cmd.Queries)),
	}
	for qi := range cmd.Queries {
		st := &resp.QueryStats[qi]
		st.IBCBroadcasts = scans[qi].ibcPlanes
		out := make([]ScanSegResult, len(scans[qi].segs))
		for si := range scans[qi].segs {
			seg := &scans[qi].segs[si]
			r := ScanSegResult{
				Waves: seg.waves, Pages: seg.pages,
				Scanned: seg.scanned, Survivors: seg.survivors, TTLBytes: seg.ttlBytes,
				PrunedPages: seg.prunedPages, AbortedWaves: seg.abortedWaves,
				PrunedSlots: seg.prunedSlots,
			}
			if seg.survivors > 0 {
				// The entries cross the completion boundary (and, in a
				// sharded deployment, goroutines), so they move out of
				// the worker arenas into response-owned memory here.
				r.Entries = e.appendMergeByPos(make([]TTLEntry, 0, seg.survivors), seg.scans)
			}
			out[si] = r
			if sc.Coarse {
				st.CoarseWaves += seg.waves
				st.CoarsePages += seg.pages
				// Every coarse survivor is a TTL-C entry; the per-query
				// stats of a scan response feed the owning device's
				// timing model, which costs coarse and fine TTL streams
				// under different scale factors. (The router's
				// aggregated CoarseEntries is computed centrally from
				// the merged stream instead.)
				st.CoarseEntries += seg.survivors
			} else {
				st.FineWaves += seg.waves
				st.FinePages += seg.pages
			}
			st.EntriesScanned += seg.scanned
			st.Survivors += seg.survivors
			st.PrunedPages += seg.prunedPages
			st.AbortedWaves += seg.abortedWaves
			st.PrunedSlots += seg.prunedSlots
			st.TTLBytes += seg.ttlBytes
		}
		resp.Scan[qi] = out
		resp.Stats.Add(*st)
	}
	return resp, nil
}

// checkQueryAgainst validates one query against a database's
// dimensionality — the single implementation behind Database.checkQuery
// and the shard router's batch validation, so both fail with identical
// sentinels.
func checkQueryAgainst(dim, dbID int, query []float32, k int) error {
	if len(query) != dim {
		return fmt.Errorf("%w (query dim %d, database %d dim %d)",
			ErrQueryDims, len(query), dbID, dim)
	}
	if k <= 0 {
		return fmt.Errorf("%w (K=%d)", ErrBadK, k)
	}
	return nil
}
