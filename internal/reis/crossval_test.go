package reis

import (
	"testing"
	"testing/quick"

	"reis/internal/ann"
)

// TestEngineMatchesHostReference cross-validates the in-storage
// pipeline against the host-side reference implementation of the same
// algorithm (ann.BinaryFlat: BQ Hamming scan + INT8 rerank). With
// distance filtering off, both compute the same function, so their
// top-k sets must agree almost exactly (small divergence allowed at
// the rerank-pool boundary where equal Hamming distances tie-break
// differently).
func TestEngineMatchesHostReference(t *testing.T) {
	opts := AllOptions()
	opts.DistanceFilter = false
	e := newEngine(t, opts)
	deployFlat(t, e, 1)
	ref := ann.NewBinaryFlat(testData.Vectors)

	for qi, q := range testData.Queries {
		engineRes, _, err := e.Search(1, q, 10, SearchOptions{SkipDocs: true})
		if err != nil {
			t.Fatal(err)
		}
		hostRes := ref.Search(q, 10)
		hostIDs := make(map[int]bool, len(hostRes))
		for _, r := range hostRes {
			hostIDs[r.ID] = true
		}
		match := 0
		for _, r := range engineRes {
			if hostIDs[r.ID] {
				match++
			}
		}
		if match < 9 {
			t.Fatalf("query %d: engine and host reference agree on only %d/10", qi, match)
		}
	}
}

func TestEngineTopResultIsPlausible(t *testing.T) {
	// The engine's top hit should be the true nearest neighbor for the
	// vast majority of queries (BQ+rerank top-1 accuracy).
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	hits := 0
	for qi, q := range testData.Queries {
		res, _, err := e.Search(1, q, 1, SearchOptions{SkipDocs: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > 0 && res[0].ID == testData.GroundTruth[qi][0] {
			hits++
		}
	}
	if hits*10 < len(testData.Queries)*7 {
		t.Fatalf("top-1 hit rate %d/%d too low", hits, len(testData.Queries))
	}
}

func TestSearchResultProperties(t *testing.T) {
	// Property-based: for random k and query index, results are
	// sorted, unique, within range, and at most k long.
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	f := func(rawQ, rawK uint8) bool {
		q := testData.Queries[int(rawQ)%len(testData.Queries)]
		k := 1 + int(rawK)%20
		res, _, err := e.Search(1, q, k, SearchOptions{SkipDocs: true})
		if err != nil {
			return false
		}
		if len(res) > k {
			return false
		}
		seen := map[int]bool{}
		for i, r := range res {
			if r.ID < 0 || r.ID >= testData.Len() || seen[r.ID] {
				return false
			}
			seen[r.ID] = true
			if i > 0 && res[i].Dist < res[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIVFStatsScanLessThanBF(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	_, bfStats, err := e.Search(1, testData.Queries[0], 10, SearchOptions{SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	_, ivfStats, err := e.IVFSearch(1, testData.Queries[0], 10, SearchOptions{NProbe: 2, SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	if ivfStats.EntriesScanned >= bfStats.EntriesScanned {
		t.Fatalf("IVF scanned %d >= BF %d", ivfStats.EntriesScanned, bfStats.EntriesScanned)
	}
	if ivfStats.FinePages >= bfStats.FinePages {
		t.Fatalf("IVF pages %d >= BF pages %d", ivfStats.FinePages, bfStats.FinePages)
	}
}

func TestRepeatedSearchesDeterministic(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployIVF(t, e, 1, 16)
	a, _, err := e.IVFSearch(1, testData.Queries[3], 10, SearchOptions{NProbe: 4, SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.IVFSearch(1, testData.Queries[3], 10, SearchOptions{NProbe: 4, SkipDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("result lengths differ across runs")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			t.Fatalf("result %d differs across identical searches", i)
		}
	}
}

func TestECCCorrectionsAccumulateOnTLCReads(t *testing.T) {
	// Rerank and document reads hit the TLC region through the
	// controller ECC path; the corrections counter must move while
	// returned data stays clean (verified by the doc-content tests).
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	e.SSD.Dev.ResetStats()
	for _, q := range testData.Queries[:8] {
		if _, _, err := e.Search(1, q, 10, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if e.SSD.Dev.Stats.ECCCorrections.Load() == 0 {
		t.Fatal("no ECC corrections recorded on TLC reads")
	}
	if e.SSD.Dev.Stats.BitErrorsInjected.Load() == 0 {
		t.Fatal("no raw errors injected at all")
	}
}

func TestSLCScanInjectsNoErrors(t *testing.T) {
	// The binary-embedding scan must never see injected errors: the
	// whole point of the ESP partition (Sec 4.1.2).
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)
	e.SSD.Dev.ResetStats()
	if _, _, err := e.Search(1, testData.Queries[0], 10, SearchOptions{SkipDocs: true}); err != nil {
		t.Fatal(err)
	}
	// SkipDocs leaves only SLC scans plus TLC rerank reads; rerank
	// reads go through ECC, so any injected errors must equal the
	// corrected ones — none may have leaked into latch computation.
	injected := e.SSD.Dev.Stats.BitErrorsInjected.Load()
	corrected := e.SSD.Dev.Stats.ECCCorrections.Load()
	// A bit flipped twice in one read cancels physically, so the
	// correction count may trail the injection count by a handful.
	if injected-corrected > injected/50 {
		t.Fatalf("raw errors leaked into computation: injected %d, corrected %d",
			injected, corrected)
	}
}
