package reis

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The mutation journal is the durability half of online mutability: an
// append-only byte log of every committed mutation command, written
// under the host's execution lock in exactly the order the commands
// were applied. Deploys are not journaled — recovery re-deploys from
// the (immutable) deploy configuration, then replays the journal, and
// the determinism of the mutation path guarantees the rebuilt state is
// bit-identical to the pre-crash one. Because background GC holds back
// later mutations on a database until its compaction flight completes
// (queue.go), journal order equals application order even with the
// collector interleaving searches.
//
// Record format (all integers little-endian, uvarint = unsigned
// varint as in encoding/binary):
//
//	record  := opcode:u8 dbid:uvarint body
//	append  := n:uvarint dim:uvarint vec[n*dim]:f32bits
//	           { doclen:uvarint docbytes }*n
//	           nassign:uvarint { cluster:uvarint }*nassign
//	           tags:u8 { tag:u8 }*n        (tags=1 iff MetaTags present)
//	delete  := nids:uvarint { id:uvarint }*nids
//	compact := minLiveRatio:f64bits
//
// Any prefix of the log that ends on a record boundary is a valid
// journal — the crash-recovery oracle cuts at every boundary (see
// journalOffsets) and replays the prefix on a fresh deploy.
type journal struct {
	buf []byte
}

func (j *journal) u8(v uint8)       { j.buf = append(j.buf, v) }
func (j *journal) uvarint(v uint64) { j.buf = binary.AppendUvarint(j.buf, v) }
func (j *journal) f32(v float32) {
	j.buf = binary.LittleEndian.AppendUint32(j.buf, math.Float32bits(v))
}
func (j *journal) f64(v float64) {
	j.buf = binary.LittleEndian.AppendUint64(j.buf, math.Float64bits(v))
}

// logCmd records one committed mutation command. The caller holds the
// host's execution lock and has already applied the command.
func (j *journal) logCmd(cmd *HostCommand) {
	switch cmd.Opcode {
	case OpcodeAppend:
		j.logAppend(cmd.DBID, cmd.Append)
	case OpcodeDelete:
		j.logDelete(cmd.DBID, cmd.Del.IDs)
	case OpcodeCompact:
		j.logCompact(cmd.DBID, cmd.Compact.MinLiveRatio)
	}
}

func (j *journal) logAppend(dbID int, cfg *AppendConfig) {
	j.u8(OpcodeAppend)
	j.uvarint(uint64(dbID))
	n := len(cfg.Vectors)
	dim := 0
	if n > 0 {
		dim = len(cfg.Vectors[0])
	}
	j.uvarint(uint64(n))
	j.uvarint(uint64(dim))
	for _, v := range cfg.Vectors {
		for _, x := range v {
			j.f32(x)
		}
	}
	for _, d := range cfg.Docs {
		j.uvarint(uint64(len(d)))
		j.buf = append(j.buf, d...)
	}
	j.uvarint(uint64(len(cfg.Assign)))
	for _, c := range cfg.Assign {
		j.uvarint(uint64(c))
	}
	if cfg.MetaTags != nil {
		j.u8(1)
		j.buf = append(j.buf, cfg.MetaTags...)
	} else {
		j.u8(0)
	}
}

func (j *journal) logDelete(dbID int, ids []int) {
	j.u8(OpcodeDelete)
	j.uvarint(uint64(dbID))
	j.uvarint(uint64(len(ids)))
	for _, id := range ids {
		j.uvarint(uint64(id))
	}
}

func (j *journal) logCompact(dbID int, minLiveRatio float64) {
	j.u8(OpcodeCompact)
	j.uvarint(uint64(dbID))
	j.f64(minLiveRatio)
}

// journalReader decodes records back into host commands.
type journalReader struct {
	data []byte
	pos  int
}

func (r *journalReader) u8() (uint8, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("reis: truncated journal record at offset %d", r.pos)
	}
	v := r.data[r.pos]
	r.pos++
	return v, nil
}

func (r *journalReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("reis: bad journal varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *journalReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, fmt.Errorf("reis: truncated journal record at offset %d (need %d bytes)", r.pos, n)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// next decodes the record starting at the reader's position. The
// returned command aliases the journal bytes (documents, tags); the
// mutation path copies what it stores.
func (r *journalReader) next() (HostCommand, error) {
	op, err := r.u8()
	if err != nil {
		return HostCommand{}, err
	}
	dbID, err := r.uvarint()
	if err != nil {
		return HostCommand{}, err
	}
	cmd := HostCommand{Opcode: op, DBID: int(dbID)}
	switch op {
	case OpcodeAppend:
		n, err := r.uvarint()
		if err != nil {
			return HostCommand{}, err
		}
		dim, err := r.uvarint()
		if err != nil {
			return HostCommand{}, err
		}
		cfg := &AppendConfig{Vectors: make([][]float32, n), Docs: make([][]byte, n)}
		for i := range cfg.Vectors {
			raw, err := r.bytes(int(dim) * 4)
			if err != nil {
				return HostCommand{}, err
			}
			v := make([]float32, dim)
			for d := range v {
				v[d] = math.Float32frombits(binary.LittleEndian.Uint32(raw[d*4:]))
			}
			cfg.Vectors[i] = v
		}
		for i := range cfg.Docs {
			dl, err := r.uvarint()
			if err != nil {
				return HostCommand{}, err
			}
			if cfg.Docs[i], err = r.bytes(int(dl)); err != nil {
				return HostCommand{}, err
			}
		}
		nassign, err := r.uvarint()
		if err != nil {
			return HostCommand{}, err
		}
		if nassign > 0 {
			cfg.Assign = make([]int, nassign)
			for i := range cfg.Assign {
				c, err := r.uvarint()
				if err != nil {
					return HostCommand{}, err
				}
				cfg.Assign[i] = int(c)
			}
		}
		tagged, err := r.u8()
		if err != nil {
			return HostCommand{}, err
		}
		if tagged != 0 {
			if cfg.MetaTags, err = r.bytes(int(n)); err != nil {
				return HostCommand{}, err
			}
		}
		cmd.Append = cfg
	case OpcodeDelete:
		nids, err := r.uvarint()
		if err != nil {
			return HostCommand{}, err
		}
		ids := make([]int, nids)
		for i := range ids {
			id, err := r.uvarint()
			if err != nil {
				return HostCommand{}, err
			}
			ids[i] = int(id)
		}
		cmd.Del = &DeleteConfig{IDs: ids}
	case OpcodeCompact:
		raw, err := r.bytes(8)
		if err != nil {
			return HostCommand{}, err
		}
		cmd.Compact = &CompactConfig{MinLiveRatio: math.Float64frombits(binary.LittleEndian.Uint64(raw))}
	default:
		return HostCommand{}, fmt.Errorf("reis: unknown journal opcode %#x at offset %d", op, r.pos-1)
	}
	return cmd, nil
}

// journalOffsets returns every valid prefix length of a journal: 0,
// then the end offset of each record. The crash-recovery tests cut the
// log at each of these and replay the prefix.
func journalOffsets(data []byte) ([]int, error) {
	offs := []int{0}
	r := &journalReader{data: data}
	for r.pos < len(data) {
		if _, err := r.next(); err != nil {
			return nil, err
		}
		offs = append(offs, r.pos)
	}
	return offs, nil
}

// replayJournal re-applies a record-aligned journal prefix through a
// host's normal command path. Replay is the recovery oracle's second
// half: fresh deploy + replayJournal(prefix) ≡ the journaling host's
// state when the prefix was captured.
func replayJournal(h submitter, data []byte) error {
	r := &journalReader{data: data}
	for r.pos < len(data) {
		cmd, err := r.next()
		if err != nil {
			return err
		}
		if _, err := h.Submit(cmd); err != nil {
			return fmt.Errorf("reis: journal replay at offset %d: %w", r.pos, err)
		}
	}
	return nil
}
