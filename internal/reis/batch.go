package reis

import (
	"context"
	"fmt"
	"slices"

	"reis/internal/ssd"
	"reis/internal/vecmath"
)

// This file implements batched query admission: the engine accepts a
// slice of queries and schedules their per-plane scan tasks through
// the same per-die worker pool single queries use. Two things make the
// batch faster than one-query-at-a-time submission while keeping
// results bit-identical:
//
//   - A plane only receives an IBC broadcast for queries it actually
//     scans, instead of every query flooding every plane. At small
//     region sizes the all-plane broadcast dominates single-query
//     service; the per-plane schedule eliminates it.
//   - Each plane processes its share of every query back to back
//     (query-major order) with no global barrier per query, so device
//     time is occupied continuously — the overlap BatchLatency costs
//     with the channel-occupancy model.
//
// Determinism: per-plane work lists are built in (query, segment)
// order and executed in that order by the plane's die worker, and
// per-query partial results are merged in segment order then position
// order — the exact order the sequential path produces. Surviving
// entries stay in the worker arenas until each query's controller tail
// runs; the per-query merge then moves them straight into the pooled
// entry buffer, so the whole scan phase performs no steady-state
// allocation.

// scanSeg is one contiguous slot range [First, Last] of a region
// scanned for one query (a whole flat region, or one IVF cluster).
// lb is a proven lower bound on any distance the segment can produce
// (0 = none): when a pruning bound is active and lb exceeds it, the
// device aborts the whole segment without sensing a page.
type scanSeg struct {
	first, last int
	lb          int
	// pin, when non-nil, is the DRAM copy of the segment: the scan is
	// served host-side by dbCache.scanPinned instead of plane tasks.
	// Pinned segments ignore lb — the pages are already resident, so
	// the scan always runs under the query's current bound.
	pin *pinnedRange
}

// segScan is the outcome of one query's scan of one segment: the
// per-plane arena windows (merged lazily, per query, after the whole
// phase completes) plus the folded event counts. An aborted segment
// has no scans; prunedPages/abortedWaves account the work it skipped.
type segScan struct {
	scans        []planeScan
	waves        int
	pages        int
	scanned      int
	survivors    int
	prunedSlots  int
	prunedPages  int
	abortedWaves int
	ttlBytes     int64
	// A pinned segment was scanned from the DRAM hot-cluster cache:
	// cached holds its surviving entries (ascending by Pos) and
	// cachedPages/cachedSlots the work, kept apart from the flash
	// counters above.
	pinned      bool
	cached      []TTLEntry
	cachedPages int
	cachedSlots int
}

// queryScan is one query's outcome of a batch scan phase.
type queryScan struct {
	segs []segScan
	// ibcPlanes is the number of planes that received this query's
	// broadcast during the phase.
	ibcPlanes int
}

// batchItem is one plane's share of one query segment in a batch scan
// phase. bound is the query's pruning threshold at dispatch (0 = none).
type batchItem struct {
	qi, si, vi  int
	span        ssd.PlaneSpan
	first, last int
	bound       int
}

// segPrune accounts one segment aborted whole under the pruning bound.
type segPrune struct {
	pages, waves int
}

// batchScan executes one scan phase (coarse or fine) for a whole query
// batch: segs[qi] lists the slot ranges query qi must scan in region.
// Work is split into per-plane tasks dispatched to the die worker
// pool; each plane broadcasts a query's embedding into its cache latch
// once and then scans all of that query's segments resident on the
// plane before moving to the next query.
// ctx is polled between per-plane work items (a cancelled command
// aborts the phase at the next item boundary); the synchronous paths
// pass context.Background(), whose Err is free.
//
// bounds, when non-nil, carries each query's current pruning threshold
// (0 = none). A segment whose lower bound exceeds its query's bound is
// aborted in place: no page is sensed, no plane task is queued, and
// the pages/waves it would have cost are accounted as prunedPages/
// abortedWaves. The abort decision depends only on (lb, bound), both
// global to the scatter, so every topology skips the same segments.
func (e *Engine) batchScan(ctx context.Context, db *Database, region ssd.Region, packed [][]byte, segs [][]scanSeg, filter bool, metaTag *uint8, bounds []int) ([]queryScan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	planes := e.SSD.Cfg.Geo.Planes()
	e.pool.resetArenas()
	if e.scr.planeWork == nil {
		e.scr.planeWork = make([][]batchItem, planes)
	}
	planeWork := e.scr.planeWork
	for p := range planeWork {
		planeWork[p] = planeWork[p][:0]
	}
	grid := make([][][]planeScan, len(packed)) // [query][segment][span]
	out := make([]queryScan, len(packed))
	// aborts[qi][si] records a segment skipped whole under the pruning
	// bound: the pages (sum over planes) and waves (max on one plane)
	// the abort saved. Only the pruned paths pay for it — the unpruned
	// scan phase stays allocation-free in steady state.
	var aborts [][]segPrune
	if bounds != nil {
		aborts = make([][]segPrune, len(packed))
	}
	for qi := range packed {
		grid[qi] = make([][]planeScan, len(segs[qi]))
		bound := 0
		if bounds != nil {
			aborts[qi] = make([]segPrune, len(segs[qi]))
			bound = bounds[qi]
		}
		for si, sg := range segs[qi] {
			if sg.pin != nil {
				// Pinned segment: served from the DRAM copy at fold
				// time — no plane task, no IBC, no page sensed.
				continue
			}
			if sg.last < sg.first {
				// Empty sentinel segment (a shard that owns no page of
				// the global range): no work, zero stats.
				continue
			}
			spans := region.AppendPlaneSpans(e.scr.spans[:0], planes, sg.first/db.embPerPage, sg.last/db.embPerPage)
			e.scr.spans = spans
			if bound > 0 && sg.lb > bound {
				// Early-abort: even the segment's best possible distance
				// cannot beat the query's current top-k threshold. Count
				// the pages each plane would have sensed.
				pruned, maxPlane := 0, 0
				for _, v := range spans {
					pruned += v.Count
					if v.Count > maxPlane {
						maxPlane = v.Count
					}
				}
				aborts[qi][si] = segPrune{pages: pruned, waves: maxPlane}
				continue
			}
			grid[qi][si] = make([]planeScan, len(spans))
			for vi, v := range spans {
				planeWork[v.Plane] = append(planeWork[v.Plane], batchItem{
					qi: qi, si: si, vi: vi, span: v, first: sg.first, last: sg.last, bound: bound,
				})
			}
		}
	}
	// A plane issues one IBC per run of same-query items in its work
	// list; items are appended in ascending query order, so counting
	// the query transitions per plane counts exactly the broadcasts
	// the execution below performs.
	for p := range planeWork {
		prev := -1
		for _, it := range planeWork[p] {
			if it.qi != prev {
				out[it.qi].ibcPlanes++
				prev = it.qi
			}
		}
	}

	tasks := e.scr.tasks[:0]
	run := func(sc *workerScratch, plane, _ int) error {
		curQ := -1
		for _, it := range planeWork[plane] {
			if err := ctx.Err(); err != nil {
				return err
			}
			if it.qi != curQ {
				// One broadcast per query per plane: the cache
				// latch must hold this query before its scans.
				if err := e.ibcPlane(db, plane, packed[it.qi]); err != nil {
					return err
				}
				curQ = it.qi
			}
			ps, err := e.scanPlane(db, region, sc, it.span, it.first, it.last, filter, metaTag, it.bound)
			if err != nil {
				return err
			}
			grid[it.qi][it.si][it.vi] = ps
		}
		return nil
	}
	for p, items := range planeWork {
		if len(items) == 0 {
			continue
		}
		tasks = append(tasks, planeTask{plane: p, run: run})
	}
	if err := e.runTasks(tasks); err != nil {
		return nil, err
	}

	for qi := range packed {
		out[qi].segs = make([]segScan, len(grid[qi]))
		for si, scans := range grid[qi] {
			s := &out[qi].segs[si]
			if sg := segs[qi][si]; sg.pin != nil {
				bound := 0
				if bounds != nil {
					bound = bounds[qi]
				}
				s.pinned = true
				s.cached, s.cachedPages, s.cachedSlots = db.cache.scanPinned(
					sg.pin, packed[qi], db.cachedParams(filter, metaTag, bound), nil)
				continue
			}
			s.scans = scans
			var acc QueryStats
			s.waves, s.pages = mergeScanStats(scans, &acc)
			s.scanned, s.survivors, s.ttlBytes = acc.EntriesScanned, acc.Survivors, acc.TTLBytes
			s.prunedSlots = acc.PrunedSlots
			if aborts != nil {
				s.prunedPages = aborts[qi][si].pages
				s.abortedWaves = aborts[qi][si].waves
			}
		}
	}
	return out, nil
}

// packBatch validates the batch and binary-quantizes every query into
// the pooled per-batch encoding arena (one backing buffer, one slot
// per query).
func (e *Engine) packBatch(db *Database, queries [][]float32, k int) ([][]byte, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("reis: empty query batch")
	}
	slot := db.slotBytes
	need := len(queries) * slot
	if cap(e.scr.packedBuf) < need {
		e.scr.packedBuf = make([]byte, need)
	}
	buf := e.scr.packedBuf[:need]
	packed := e.scr.packed[:0]
	for i, q := range queries {
		if err := db.checkQuery(q, k); err != nil {
			return nil, err
		}
		e.scr.qbits = vecmath.BinaryQuantize(q, e.scr.qbits)
		packed = append(packed, vecmath.PackBinaryBytes(e.scr.qbits, buf[i*slot:i*slot:(i+1)*slot]))
	}
	e.scr.packed = packed
	return packed, nil
}

// SearchBatch implements the batched Q operand of the Search() API
// command (Table 1): it admits a slice of queries and schedules their
// brute-force scans concurrently across planes. Results[i] and
// Stats[i] are bit-identical to what Search(dbID, queries[i], k, opt)
// returns for the scan, rerank and document stages; only the IBC
// broadcast count differs (the batch broadcasts a query only to planes
// that scan it).
func (e *Engine) SearchBatch(dbID int, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	db, err := e.db(dbID)
	if err != nil {
		return nil, nil, err
	}
	return e.searchBatch(context.Background(), db, queries, k, opt)
}

// searchBatch is SearchBatch inside the execution core: the caller
// holds execMu and has resolved the database; ctx carries the queue's
// per-command cancellation (Background on the synchronous path).
func (e *Engine) searchBatch(ctx context.Context, db *Database, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	packed, err := e.packBatch(db, queries, k)
	if err != nil {
		return nil, nil, err
	}
	if opt.Prune {
		return e.searchBatchPruned(ctx, db, queries, packed, k, opt)
	}
	segs := make([][]scanSeg, len(queries))
	whole := e.scr.flatSegs[:0]
	for _, r := range db.flatSegs() {
		whole = append(whole, scanSeg{first: r.First, last: r.Last})
	}
	e.scr.flatSegs = whole
	for i := range segs {
		segs[i] = whole
	}
	scans, err := e.batchScan(ctx, db, db.rec.Embeddings, packed, segs, e.Opts.DistanceFilter, opt.MetaTag, nil)
	if err != nil {
		return nil, nil, err
	}

	results := make([][]DocResult, len(queries))
	sts := make([]QueryStats, len(queries))
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		st := &sts[qi]
		st.IBCBroadcasts += scans[qi].ibcPlanes
		entries := e.foldSegs(scans[qi].segs, st)
		res, err := e.finish(db, queries[qi], entries, k, opt, st)
		if err != nil {
			return nil, nil, err
		}
		results[qi] = res
	}
	return results, sts, nil
}

// IVFSearchBatch implements the batched Q operand of IVF_Search(): a
// coarse centroid phase for the whole batch, a controller-side cluster
// selection per query, then a fine phase scanning every query's probed
// clusters, all scheduled through the per-die worker pool. Results are
// bit-identical to per-query IVFSearch calls.
func (e *Engine) IVFSearchBatch(dbID int, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	db, err := e.db(dbID)
	if err != nil {
		return nil, nil, err
	}
	return e.ivfSearchBatch(context.Background(), db, queries, k, opt)
}

// ivfSearchBatch is IVFSearchBatch inside the execution core (caller
// holds execMu).
func (e *Engine) ivfSearchBatch(ctx context.Context, db *Database, queries [][]float32, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	packed, err := e.packBatch(db, queries, k)
	if err != nil {
		return nil, nil, err
	}
	return e.ivfSearchBatchPacked(ctx, db, queries, packed, k, opt)
}

// ivfSearchBatchPacked is ivfSearchBatch after validation and query
// encoding; CalibrateNProbe calls it directly so the packed encodings
// are reused across sweep rounds instead of rebuilt per round.
func (e *Engine) ivfSearchBatchPacked(ctx context.Context, db *Database, queries [][]float32, packed [][]byte, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	if db.rivf == nil {
		return nil, nil, fmt.Errorf("reis: database %d was not deployed with IVF_Deploy", db.ID)
	}
	nlist := len(db.rivf)
	if opt.Prune {
		return e.ivfSearchBatchPruned(ctx, db, queries, packed, k, opt)
	}
	if err := e.refreshCache(db); err != nil {
		return nil, nil, err
	}
	nprobe := opt.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}

	// Coarse phase: every query ranks the whole centroid region.
	// Distance filtering does not apply to the coarse scan (TTL-C must
	// rank every centroid, Sec 4.3.1).
	coarseSegs := make([][]scanSeg, len(queries))
	wholeCent := []scanSeg{{first: 0, last: nlist - 1}}
	for i := range coarseSegs {
		coarseSegs[i] = wholeCent
	}
	coarse, err := e.batchScan(ctx, db, db.rec.Centroids, packed, coarseSegs, false, nil, nil)
	if err != nil {
		return nil, nil, err
	}

	// Controller phase: per query, select the nprobe nearest clusters
	// and derive the fine-scan segments. The merged centroid list
	// lives in the pooled coarse buffer and is consumed before the
	// next query's merge overwrites it.
	sts := make([]QueryStats, len(queries))
	fineSegs := make([][]scanSeg, len(queries))
	for qi := range queries {
		st := &sts[qi]
		st.IBCBroadcasts += coarse[qi].ibcPlanes
		seg := &coarse[qi].segs[0]
		st.CoarseWaves = seg.waves
		st.CoarsePages = seg.pages
		st.EntriesScanned += seg.scanned
		st.Survivors += seg.survivors
		st.TTLBytes += seg.ttlBytes
		cents := e.appendMergeByPos(e.scr.cents[:0], seg.scans)
		e.scr.cents = cents
		st.CoarseEntries = len(cents)
		st.SelectInput += len(cents)
		slices.SortFunc(cents, cmpTTLDistPos)
		np := nprobe
		if np > len(cents) {
			np = len(cents)
		}
		for _, c := range cents[:np] {
			db.cache.probe(c.Pos)
			pc := db.cache.pinnedFor(c.Pos)
			for ri, r := range db.clusterSegs(c.Pos) {
				sg := scanSeg{first: r.First, last: r.Last}
				if pc != nil {
					sg.pin = &pc.ranges[ri]
				}
				fineSegs[qi] = append(fineSegs[qi], sg)
			}
		}
	}

	// Fine phase: scan every query's probed clusters. (This resets the
	// worker arenas; the coarse windows were merged out above.)
	fine, err := e.batchScan(ctx, db, db.rec.Embeddings, packed, fineSegs, e.Opts.DistanceFilter, opt.MetaTag, nil)
	if err != nil {
		return nil, nil, err
	}

	results := make([][]DocResult, len(queries))
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		st := &sts[qi]
		st.IBCBroadcasts += fine[qi].ibcPlanes
		entries := e.foldSegs(fine[qi].segs, st)
		res, err := e.finish(db, queries[qi], entries, k, opt, st)
		if err != nil {
			return nil, nil, err
		}
		results[qi] = res
	}
	return results, sts, nil
}

// foldSegs accumulates a query's fine-phase segment outcomes into st
// (mirroring the sequential per-cluster loop, which sums waves and
// pages segment by segment) and merges each segment's arena windows
// into the pooled entry buffer in segment order.
func (e *Engine) foldSegs(segs []segScan, st *QueryStats) []TTLEntry {
	entries := e.scr.entries[:0]
	for i := range segs {
		foldSegStats(&segs[i], st)
		if segs[i].pinned {
			entries = append(entries, segs[i].cached...)
		} else {
			entries = e.appendMergeByPos(entries, segs[i].scans)
		}
	}
	e.scr.entries = entries
	return entries
}
