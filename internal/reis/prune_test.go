package reis

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestBoundTracker pins the tracker's conservative-threshold contract:
// zero until capacity live distances were seen, then the capacity-th
// smallest distance seen so far, monotonically non-increasing.
func TestBoundTracker(t *testing.T) {
	var tr boundTracker
	tr.capacity = 3
	if tr.bound() != 0 {
		t.Fatalf("empty tracker bound = %d, want 0", tr.bound())
	}
	tr.add(40)
	tr.add(10)
	if tr.bound() != 0 {
		t.Fatalf("underfull tracker bound = %d, want 0", tr.bound())
	}
	tr.add(25)
	if tr.bound() != 40 {
		t.Fatalf("bound = %d, want 40 (3rd smallest of {10,25,40})", tr.bound())
	}
	tr.add(50) // larger than current bound: no effect
	if tr.bound() != 40 {
		t.Fatalf("bound grew to %d after adding a larger distance", tr.bound())
	}
	tr.add(5)
	if tr.bound() != 25 {
		t.Fatalf("bound = %d, want 25 (3rd smallest of {5,10,25,40,50})", tr.bound())
	}
	tr.add(25) // duplicate of the bound itself
	if tr.bound() != 25 {
		t.Fatalf("bound = %d after duplicate, want 25", tr.bound())
	}
	tr.add(1)
	tr.add(2)
	if tr.bound() != 5 {
		t.Fatalf("bound = %d, want 5", tr.bound())
	}

	// Randomized cross-check against a sorted reference.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.Intn(8)
		var tk boundTracker
		tk.capacity = capacity
		var all []int
		for i := 0; i < 40; i++ {
			d := rng.Intn(100)
			tk.add(d)
			all = append(all, d)
			want := 0
			if len(all) >= capacity {
				s := append([]int(nil), all...)
				sort.Ints(s)
				want = s[capacity-1]
			}
			if got := tk.bound(); got != want {
				t.Fatalf("trial %d step %d: bound = %d, want %d", trial, i, got, want)
			}
		}
	}

	// Capacity 0 must never report a bound (pruning stays disabled).
	var zero boundTracker
	zero.add(1)
	if zero.bound() != 0 {
		t.Fatalf("capacity-0 tracker bound = %d, want 0", zero.bound())
	}
}

// TestChunkFlatRounds pins the round chunker: budgets grow
// geometrically from one full wave, ranges are cut at page boundaries
// only, and the rounds' union reproduces the plan exactly.
func TestChunkFlatRounds(t *testing.T) {
	const embPerPage, planes = 8, 4
	cases := [][]SlotRange{
		nil,
		{{First: 0, Last: 7}}, // single page
		{{First: 0, Last: 1199}},
		{{First: 3, Last: 500}, {First: 640, Last: 645}, {First: 800, Last: 1111}},
		{{First: 0, Last: embPerPage*planes - 1}}, // exactly one round
	}
	for ci, plan := range cases {
		rounds := chunkFlatRounds(plan, embPerPage, planes)
		// Union (in order) == plan.
		var flat []SlotRange
		for _, rd := range rounds {
			flat = append(flat, rd...)
		}
		var merged []SlotRange
		for _, r := range flat {
			if n := len(merged); n > 0 && merged[n-1].Last+1 == r.First {
				merged[n-1].Last = r.Last
			} else {
				merged = append(merged, r)
			}
		}
		if len(plan) == 0 {
			if len(rounds) != 0 {
				t.Fatalf("case %d: empty plan produced %d rounds", ci, len(rounds))
			}
			continue
		}
		if !reflect.DeepEqual(merged, plan) {
			t.Fatalf("case %d: rounds do not reassemble the plan\n got %v\nwant %v", ci, merged, plan)
		}
		// Geometric page budgets: round r holds at most planes<<r pages,
		// and every round but the last fills its budget exactly.
		budget := planes
		for ri, rd := range rounds {
			pages := 0
			for _, r := range rd {
				pages += r.Last/embPerPage - r.First/embPerPage + 1
			}
			if pages > budget {
				t.Fatalf("case %d round %d: %d pages exceed budget %d", ci, ri, pages, budget)
			}
			if ri < len(rounds)-1 && pages != budget {
				t.Fatalf("case %d round %d: %d pages underfill budget %d before the last round", ci, ri, pages, budget)
			}
			// Cuts happen at page boundaries: a range that continues in
			// the next round must end on a page's last slot.
			budget *= 2
		}
	}
}

// prunedSearchCases are the search commands the equivalence test runs
// against DB 1 (flat) and DB 2 (IVF) of the pristine shared corpus.
func prunedSearchCases(tag uint8) []struct {
	name string
	cmd  HostCommand
} {
	queries := testData.Queries
	return []struct {
		name string
		cmd  HostCommand
	}{
		{"flat", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries, K: 10}},
		{"flat-k3", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries, K: 3}},
		{"flat-metatag", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries[:6], K: 10, Opt: SearchOptions{MetaTag: &tag}}},
		{"ivf-np1", HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: queries, K: 10, NProbe: 1}},
		{"ivf-np4", HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: queries, K: 10, NProbe: 4}},
		{"ivf-full", HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: queries, K: 10, NProbe: 16}},
		{"ivf-recall", HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: queries[:8], K: 10, TargetRecall: 0.9}},
	}
}

// checkPrunedCase runs cmd unpruned and pruned on the single-device
// reference and pruned on the sharded host, and pins the PR's
// equivalence contract: pruned results are bit-identical to unpruned,
// and the pruned sharded response matches the pruned single-device one
// on results, per-query stats and aggregate stats (topology equality).
// It returns the pruned results for cross-shard-count comparison.
func checkPrunedCase(t *testing.T, name string, n int, single, sharded submitter, cmd HostCommand) [][]DocResult {
	t.Helper()
	base, err := single.Submit(cmd)
	if err != nil {
		t.Fatalf("%s n=%d unpruned: %v", name, n, err)
	}
	pcmd := cmd
	pcmd.Opt.Prune = true
	pruned, err := single.Submit(pcmd)
	if err != nil {
		t.Fatalf("%s n=%d pruned: %v", name, n, err)
	}
	if !reflect.DeepEqual(pruned.Results, base.Results) {
		t.Fatalf("%s n=%d: pruned results differ from unpruned", name, n)
	}
	shp, err := sharded.Submit(pcmd)
	if err != nil {
		t.Fatalf("%s shards=%d pruned: %v", name, n, err)
	}
	if !reflect.DeepEqual(shp.Results, pruned.Results) {
		t.Fatalf("%s shards=%d: pruned sharded results differ from pruned single device", name, n)
	}
	if !reflect.DeepEqual(shp.QueryStats, pruned.QueryStats) {
		t.Fatalf("%s shards=%d: pruned per-query stats differ: %s",
			name, n, firstDiffStat(shp.QueryStats, pruned.QueryStats))
	}
	if shp.Stats != pruned.Stats {
		t.Fatalf("%s shards=%d: pruned aggregate stats differ:\n got %+v\nwant %+v",
			name, n, shp.Stats, pruned.Stats)
	}
	return pruned.Results
}

// TestPrunedMatchesUnpruned is the keystone of the PR: with
// SearchOptions.Prune set, every search entry point returns results
// bit-identical to the unpruned path — flat and IVF, with metadata
// filtering and the calibrated TargetRecall operand, on 1/2/4 shards
// and on the single-device references — and pruned scan stats are
// topology-equal (sharded == N×-channels single device). Run under
// -race in CI.
func TestPrunedMatchesUnpruned(t *testing.T) {
	tag := uint8(testData.ClusterOf[testData.GroundTruth[0][0]] % 4)
	cases := prunedSearchCases(tag)
	var first [][][]DocResult
	for _, n := range shardCounts {
		single, err := New(refCfg(n), 64<<20, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { single.Close() })
		deployBoth(t, single.Submit)
		sh := newSharded(t, n)
		deployBoth(t, sh.Submit)
		// The TargetRecall operand needs a calibration record on both
		// topologies (calibration itself is pinned topology-equal by
		// TestShardedCalibrationMatchesSingleDevice).
		if _, err := single.CalibrateNProbe(2, testData.Queries, testData.GroundTruth, 10, 0.9); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.CalibrateNProbe(2, testData.Queries, testData.GroundTruth, 10, 0.9); err != nil {
			t.Fatal(err)
		}
		for i, tc := range cases {
			res := checkPrunedCase(t, tc.name, n, single, sh, tc.cmd)
			if first == nil {
				first = make([][][]DocResult, len(cases))
			}
			if first[i] == nil {
				first[i] = res
			} else if !reflect.DeepEqual(res, first[i]) {
				t.Fatalf("shards=%d %s: pruned results differ across shard counts", n, tc.name)
			}
		}
	}
}

// TestPrunedMatchesUnprunedMutated repeats the equivalence contract on
// mutated corpora: after the shared append/delete script (tombstones
// live, no compaction), pruned results still match unpruned exactly
// and pruned stats stay topology-equal. This is the case the bound
// tracker's live-distances-only rule exists for — feeding tombstoned
// distances would over-tighten the bound and drop true pool members.
func TestPrunedMatchesUnprunedMutated(t *testing.T) {
	c := newMutCorpus()
	for _, ivf := range []bool{false, true} {
		name := "flat"
		if ivf {
			name = "ivf"
		}
		t.Run(name, func(t *testing.T) {
			op, nprobes := OpcodeSearch, []int{0}
			if ivf {
				op, nprobes = OpcodeIVFSearch, []int{1, 4, 12}
			}
			var first [][][]DocResult
			for _, n := range shardCounts {
				single, err := New(mutRefCfg(n), 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { single.Close() })
				runMutScript(t, single, c, ivf, 0)
				sh, err := NewSharded(mutTestCfg(), n, 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { sh.Close() })
				runMutScript(t, sh, c, ivf, 0)
				for i, np := range nprobes {
					cname := fmt.Sprintf("%s-np%d", name, np)
					cmd := HostCommand{Opcode: op, DBID: 1, Queries: testData.Queries, K: 10, NProbe: np}
					res := checkPrunedCase(t, cname, n, single, sh, cmd)
					if first == nil {
						first = make([][][]DocResult, len(nprobes))
					}
					if first[i] == nil {
						first[i] = res
					} else if !reflect.DeepEqual(res, first[i]) {
						t.Fatalf("shards=%d %s: pruned results differ across shard counts", n, cname)
					}
				}
			}
		})
	}
}

// separatedData builds a corpus pruning provably bites on: clusters
// are random ±1 sign patterns (so every member binary-quantizes within
// a few bit flips of its centroid — tiny covering radius) while
// distinct patterns disagree on about half the dimensions. Once a
// query's bound tightens to noise level, every non-home cluster's
// triangle-inequality lower bound exceeds it and the segment aborts.
func separatedData() (vecs [][]float32, docs [][]byte, cents [][]float32, assign []int, queries [][]float32) {
	// perCluster keeps one cluster above the k=2 rerank pool (20) and
	// the whole corpus well past one round's page budget, so both the
	// IVF windows and the flat chunks leave work for bounded rounds.
	const dim, nlist, perCluster, flips = 128, 16, 150, 3
	rng := rand.New(rand.NewSource(7))
	centers := make([][]float32, nlist)
	for c := range centers {
		v := make([]float32, dim)
		for j := range v {
			v[j] = 1
			if rng.Intn(2) == 0 {
				v[j] = -1
			}
		}
		centers[c] = v
	}
	for c := 0; c < nlist; c++ {
		for i := 0; i < perCluster; i++ {
			v := append([]float32(nil), centers[c]...)
			for f := 0; f < 1+rng.Intn(flips); f++ {
				v[rng.Intn(dim)] *= -1
			}
			vecs = append(vecs, v)
			docs = append(docs, fmt.Appendf(nil, "doc-%d-%d", c, i))
			assign = append(assign, c)
		}
	}
	for q := 0; q < 8; q++ {
		v := append([]float32(nil), centers[q*2]...)
		v[rng.Intn(dim)] *= -1
		queries = append(queries, v)
	}
	return vecs, docs, centers, assign, queries
}

// TestPrunedScansFewerPages pins that pruning actually saves device
// work on a well-separated corpus, and that the saved work is reported
// apart from the sensed-work counters: IVF segment aborts make sensed
// FinePages strictly smaller (with PrunedPages accounting for exactly
// the difference) and flat slot pruning makes TTL transfers strictly
// smaller — in both cases with bit-identical results.
func TestPrunedScansFewerPages(t *testing.T) {
	vecs, docs, cents, assign, queries := separatedData()
	e := newEngine(t, AllOptions())
	dbIVF, err := e.IVFDeploy(DeployConfig{
		ID: 7, Vectors: vecs, Docs: docs, DocSlotBytes: 64,
		Centroids: cents, Assign: assign,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The flat check runs with distance filtering off: the filter fires
	// before the prune check and would itself discard every far slot on
	// this corpus, leaving nothing for the bound to save.
	noFilter := AllOptions()
	noFilter.DistanceFilter = false
	e2 := newEngine(t, noFilter)
	if _, err := e2.Deploy(DeployConfig{
		ID: 8, Vectors: vecs, Docs: docs, DocSlotBytes: 64,
	}); err != nil {
		t.Fatal(err)
	}

	// IVF: a small k keeps the rerank pool below one cluster's
	// population, so the bound is live after the first rank window and
	// every later (far) cluster aborts before sensing a page.
	cmd := HostCommand{Opcode: OpcodeIVFSearch, DBID: 7, Queries: queries, K: 2, NProbe: 16}
	base, err := e.Submit(cmd)
	if err != nil {
		t.Fatal(err)
	}
	pcmd := cmd
	pcmd.Opt.Prune = true
	pruned, err := e.Submit(pcmd)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pruned.Results, base.Results) {
		t.Fatal("ivf: pruned results differ from unpruned")
	}
	for qi := range queries {
		b, p := base.QueryStats[qi], pruned.QueryStats[qi]
		if p.FinePages >= b.FinePages {
			t.Fatalf("ivf query %d: pruned sensed %d fine pages, unpruned %d — no saving", qi, p.FinePages, b.FinePages)
		}
		if p.PrunedPages == 0 || p.AbortedWaves == 0 {
			t.Fatalf("ivf query %d: no aborted segments reported (pruned pages %d, aborted waves %d)", qi, p.PrunedPages, p.AbortedWaves)
		}
		// Every fine page of the probe plan is either sensed or pruned:
		// the two counters partition the unpruned page count.
		if p.FinePages+p.PrunedPages != b.FinePages {
			t.Fatalf("ivf query %d: sensed %d + pruned %d != unpruned %d fine pages",
				qi, p.FinePages, p.PrunedPages, b.FinePages)
		}
	}

	// Flat: no lower bounds exist, so every page is still sensed, but
	// slots above the bound skip the TTL transfer.
	fcmd := HostCommand{Opcode: OpcodeSearch, DBID: 8, Queries: queries, K: 2}
	fbase, err := e2.Submit(fcmd)
	if err != nil {
		t.Fatal(err)
	}
	fp := fcmd
	fp.Opt.Prune = true
	fpruned, err := e2.Submit(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fpruned.Results, fbase.Results) {
		t.Fatal("flat: pruned results differ from unpruned")
	}
	for qi := range queries {
		b, p := fbase.QueryStats[qi], fpruned.QueryStats[qi]
		if p.FinePages != b.FinePages {
			t.Fatalf("flat query %d: sensed pages changed (%d vs %d) — flat pruning must not skip sensing", qi, p.FinePages, b.FinePages)
		}
		if p.PrunedSlots == 0 || p.Survivors >= b.Survivors {
			t.Fatalf("flat query %d: no TTL transfers saved (pruned slots %d, survivors %d vs %d)",
				qi, p.PrunedSlots, p.Survivors, b.Survivors)
		}
		if p.Survivors+p.PrunedSlots > b.Survivors {
			t.Fatalf("flat query %d: survivors %d + pruned slots %d exceed unpruned survivors %d",
				qi, p.Survivors, p.PrunedSlots, b.Survivors)
		}
	}

	// The timing model consumes sensed pages and transferred entries —
	// no pruning-specific plumbing — so the saved work must already
	// show up as strictly lower modeled latency.
	for qi := range queries {
		pl := e.Latency(dbIVF, pruned.QueryStats[qi], UnitScale()).Total
		bl := e.Latency(dbIVF, base.QueryStats[qi], UnitScale()).Total
		if pl >= bl {
			t.Fatalf("ivf query %d: pruned modeled latency %v not below unpruned %v", qi, pl, bl)
		}
	}
}
