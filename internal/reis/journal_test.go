package reis

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// journalHost is the surface the recovery tests drive: command
// submission plus the mutation journal, satisfied by *Engine and
// *ShardedEngine.
type journalHost interface {
	submitter
	JournalBytes() []byte
	ReplayJournal([]byte) error
	Close() error
}

// newJournalHost builds a host of the given shard count on the GC test
// layout (multi-row compactions, so recovery crosses remapped rows).
func newJournalHost(t *testing.T, shards int) journalHost {
	t.Helper()
	if shards == 1 {
		e, err := New(gcRefCfg(1), 64<<20, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	sh, err := NewSharded(gcTestCfg(), shards, 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// mutDeployCmd reconstructs runMutScript's deploy command: recovery is
// a fresh deploy plus a journal replay, so the deploy itself is never
// journaled and the oracle re-issues it.
func mutDeployCmd(c *mutCorpus, ivf bool) HostCommand {
	deploy := &DeployConfig{ID: 1, Vectors: c.base, Docs: c.baseDocs, DocSlotBytes: 256}
	op := OpcodeDBDeploy
	if ivf {
		op = OpcodeIVFDeploy
		deploy.Centroids = c.cents
		deploy.Assign = c.assign[:len(c.base)]
	}
	return HostCommand{Opcode: op, Deploy: deploy}
}

func mutSearchCmd(ivf bool) HostCommand {
	if ivf {
		return HostCommand{Opcode: OpcodeIVFSearch, DBID: 1, Queries: testData.Queries, K: 10, NProbe: 4}
	}
	return HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries, K: 10}
}

// TestCrashRecoveryAtEveryJournalPrefix is the crash-consistency
// oracle: killing the engine after ANY whole-record journal prefix and
// reopening (fresh deploy + replay of that prefix) yields a state
// whose search results are bit-identical to the original engine's
// results at that point in history — for the empty prefix through the
// full journal, on single-device and sharded topologies — and the
// reopened engine's re-journaled bytes equal the replayed prefix
// exactly (recovery is idempotent under repeated crashes).
func TestCrashRecoveryAtEveryJournalPrefix(t *testing.T) {
	c := newMutCorpus()
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := newJournalHost(t, shards)
			t.Cleanup(func() { h.Close() })
			resps := runMutScript(t, h, c, true, 0.9)
			jl := append([]byte{}, h.JournalBytes()...)
			offs, err := journalOffsets(jl)
			if err != nil {
				t.Fatal(err)
			}
			if len(offs) != 5 {
				t.Fatalf("journal has %d records, want 4 (append, delete, append, compact)", len(offs)-1)
			}
			// Search responses after each mutation prefix: the deploy-only
			// state, then after append/delete/append/compact.
			want := [][][]DocResult{
				resps[1].Results, resps[3].Results, resps[5].Results,
				resps[7].Results, resps[9].Results,
			}
			for k, off := range offs {
				b := newJournalHost(t, shards)
				if _, err := b.Submit(mutDeployCmd(c, true)); err != nil {
					t.Fatal(err)
				}
				if err := b.ReplayJournal(jl[:off]); err != nil {
					t.Fatalf("prefix %d (%d bytes): %v", k, off, err)
				}
				got, err := b.Submit(mutSearchCmd(true))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Results, want[k]) {
					t.Fatalf("prefix %d: reopened search differs from the original history", k)
				}
				if !bytes.Equal(b.JournalBytes(), jl[:off]) {
					t.Fatalf("prefix %d: re-journaled bytes differ from the replayed prefix", k)
				}
				b.Close()
			}
		})
	}
}

// TestJournalReplayAcrossTopologies: a journal captured on one
// topology deterministically rebuilds the same state on another —
// single-device history replayed onto 2- and 4-shard routers (and a
// sharded history's journal is byte-identical to the single-device
// journal in the first place).
func TestJournalReplayAcrossTopologies(t *testing.T) {
	c := newMutCorpus()
	single := newJournalHost(t, 1)
	t.Cleanup(func() { single.Close() })
	resps := runMutScript(t, single, c, true, 0.9)
	jl := single.JournalBytes()
	want := resps[len(resps)-1].Results

	sharded := newJournalHost(t, 2)
	t.Cleanup(func() { sharded.Close() })
	runMutScript(t, sharded, c, true, 0.9)
	if !bytes.Equal(sharded.JournalBytes(), jl) {
		t.Fatal("sharded journal bytes differ from the single-device journal for the same history")
	}

	for _, shards := range []int{2, 4} {
		b := newJournalHost(t, shards)
		if _, err := b.Submit(mutDeployCmd(c, true)); err != nil {
			t.Fatal(err)
		}
		if err := b.ReplayJournal(jl); err != nil {
			t.Fatal(err)
		}
		got, err := b.Submit(mutSearchCmd(true))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Results, want) {
			t.Fatalf("shards=%d: replayed state differs from the single-device original", shards)
		}
		b.Close()
	}
}

// TestJournalCorruptionDetected: a journal truncated mid-record or
// carrying an unknown opcode is rejected by both the offset scan and
// replay, instead of silently rebuilding a wrong state.
func TestJournalCorruptionDetected(t *testing.T) {
	c := newMutCorpus()
	h := newJournalHost(t, 1)
	t.Cleanup(func() { h.Close() })
	runMutScript(t, h, c, true, 0.9)
	jl := append([]byte{}, h.JournalBytes()...)
	offs, err := journalOffsets(jl)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() journalHost {
		b := newJournalHost(t, 1)
		t.Cleanup(func() { b.Close() })
		if _, err := b.Submit(mutDeployCmd(c, true)); err != nil {
			t.Fatal(err)
		}
		return b
	}
	truncated := jl[:offs[1]-1]
	if _, err := journalOffsets(truncated); err == nil {
		t.Fatal("offset scan accepted a mid-record truncation")
	}
	if err := fresh().ReplayJournal(truncated); err == nil {
		t.Fatal("replay accepted a mid-record truncation")
	}
	bad := append([]byte{}, jl...)
	bad[0] = 0xFF
	if _, err := journalOffsets(bad); err == nil {
		t.Fatal("offset scan accepted an unknown opcode")
	}
	if err := fresh().ReplayJournal(bad); err == nil {
		t.Fatal("replay accepted an unknown opcode")
	}
}

// FuzzCrashRecovery is the crash-recovery state-machine fuzzer: a byte
// string decodes into an interleaved append/delete/compact sequence
// executed on a single-device engine; the resulting journal is then
// cut at whole-record crash points and replayed — onto a fresh
// single-device engine AND a fresh 2-shard router — and every reopened
// state must answer searches identically across the two topologies,
// re-journal exactly the replayed prefix, and (for the full journal)
// match the original engine's final results.
//
// CI replays the seed corpus (testdata/fuzz/FuzzCrashRecovery) on
// every push; the nightly workflow fuzzes it for 10 minutes.
func FuzzCrashRecovery(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 2, 2, 0})
	f.Add([]byte{1, 0, 2, 0, 1, 1, 5, 2, 2, 0, 3, 1, 8})
	f.Add([]byte{0, 0, 0, 1, 3, 1, 7, 2, 1, 0, 2, 1, 40, 2, 3})
	f.Add([]byte{1, 2, 3, 1, 11, 0, 1, 1, 2, 2, 1, 0, 0, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 40 {
			t.Skip()
		}
		w := fuzzWorldGet()
		ivf := data[0]%2 == 1
		ops := data[1:]

		refCfg := fuzzCfg()
		refCfg.Geo.Channels *= 2
		orig, err := New(refCfg, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer orig.Close()

		deploy := &DeployConfig{ID: 1, Vectors: w.base.Vectors, Docs: w.base.Docs, DocSlotBytes: 64}
		op := OpcodeDBDeploy
		searchOp, nprobe := OpcodeSearch, 0
		if ivf {
			op = OpcodeIVFDeploy
			deploy.Centroids = w.cents
			deploy.Assign = w.assign[:len(w.base.Vectors)]
			searchOp, nprobe = OpcodeIVFSearch, 3
		}
		deployCmd := HostCommand{Opcode: op, Deploy: deploy}
		searchCmd := HostCommand{Opcode: searchOp, DBID: 1, Queries: w.base.Queries, K: 5, NProbe: nprobe}
		if _, err := orig.Submit(deployCmd); err != nil {
			t.Fatal(err)
		}

		liveIDs := make([]int, len(w.base.Vectors))
		for i := range liveIDs {
			liveIDs[i] = i
		}
		poolAt := 0
		for i := 0; i+1 < len(ops); i += 2 {
			b, arg := ops[i], int(ops[i+1])
			switch b % 3 {
			case 0: // append 1-3 items from the pool (cycling)
				n := 1 + arg%3
				vecs := make([][]float32, n)
				docs := make([][]byte, n)
				var assign []int
				for j := 0; j < n; j++ {
					k := (poolAt + j) % len(w.pool)
					vecs[j] = w.pool[k]
					docs[j] = w.poolDoc[k]
					if ivf {
						assign = append(assign, w.assign[len(w.base.Vectors)+k])
					}
				}
				poolAt += n
				resp, err := orig.Submit(HostCommand{Opcode: OpcodeAppend, DBID: 1,
					Append: &AppendConfig{Vectors: vecs, Docs: docs, Assign: assign}})
				if err != nil {
					continue // region full: not journaled, state unchanged
				}
				liveIDs = append(liveIDs, resp.AppendedIDs...)
			case 1: // delete one live id (deterministic pick)
				if len(liveIDs) == 0 {
					continue
				}
				k := arg % len(liveIDs)
				if _, err := orig.Submit(HostCommand{Opcode: OpcodeDelete, DBID: 1,
					Del: &DeleteConfig{IDs: []int{liveIDs[k]}}}); err != nil {
					t.Fatal(err)
				}
				liveIDs = append(liveIDs[:k], liveIDs[k+1:]...)
			case 2: // compact
				thr := []float64{0, 0.25, 0.9, 1}[arg%4]
				if _, err := orig.Submit(HostCommand{Opcode: OpcodeCompact, DBID: 1,
					Compact: &CompactConfig{MinLiveRatio: thr}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		final, err := orig.Submit(searchCmd)
		if err != nil {
			t.Fatal(err)
		}
		jl := orig.JournalBytes()
		offs, err := journalOffsets(jl)
		if err != nil {
			t.Fatal(err)
		}
		// Sample crash points (always including the empty and the full
		// prefix) to bound per-input cost.
		step := 1
		if len(offs) > 6 {
			step = len(offs) / 5
		}
		for k := 0; k < len(offs); k += step {
			if k+step >= len(offs) {
				k = len(offs) - 1 // the full journal is always a crash point
			}
			off := offs[k]
			single, err := New(refCfg, 0, AllOptions())
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := NewSharded(fuzzCfg(), 2, 0, AllOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range []journalHost{single, sharded} {
				if _, err := h.Submit(deployCmd); err != nil {
					t.Fatal(err)
				}
				if err := h.ReplayJournal(jl[:off]); err != nil {
					t.Fatalf("prefix %d: %v", k, err)
				}
				if !bytes.Equal(h.JournalBytes(), jl[:off]) {
					t.Fatalf("prefix %d: re-journaled bytes differ from the replayed prefix", k)
				}
			}
			a, err := single.Submit(searchCmd)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sharded.Submit(searchCmd)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Results, b.Results) {
				t.Fatalf("prefix %d: reopened single and sharded states diverge", k)
			}
			if off == offs[len(offs)-1] && !reflect.DeepEqual(a.Results, final.Results) {
				t.Fatalf("full-journal reopen differs from the original engine's final state")
			}
			single.Close()
			sharded.Close()
		}
	})
}
