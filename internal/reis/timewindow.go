package reis

import (
	"fmt"
	"sort"
)

// TimeSeriesDB implements the continuously-updated-database extension
// of Sec 7.1: REIS "(i) periodically creates new databases to store
// new information at a predefined frequency, (ii) treats each
// sub-database as a normal database tagged with an individual
// timestamp, (iii) maintains an entry for each database in the
// internal DRAM including the database address and the timestamp".
// A windowed query searches only the sub-databases whose timestamps
// fall inside the requested range and merges their results.
type TimeSeriesDB struct {
	engine *Engine
	baseID int
	// snapshots are kept sorted by timestamp.
	snapshots []snapshot
}

type snapshot struct {
	Timestamp int64
	DBID      int
	// offset maps this snapshot's local entry ids back to the caller's
	// global id space.
	offset int
	n      int
}

// NewTimeSeriesDB manages timestamped sub-databases on the engine,
// allocating database ids starting at baseID.
func NewTimeSeriesDB(e *Engine, baseID int) *TimeSeriesDB {
	return &TimeSeriesDB{engine: e, baseID: baseID}
}

// AddSnapshot deploys a new sub-database holding the entries ingested
// at the given timestamp. globalOffset positions the snapshot's
// entries in the caller's id space (results return global ids).
// Timestamps must be strictly increasing.
func (t *TimeSeriesDB) AddSnapshot(ts int64, cfg DeployConfig, globalOffset int) error {
	if len(t.snapshots) > 0 && ts <= t.snapshots[len(t.snapshots)-1].Timestamp {
		return fmt.Errorf("reis: snapshot timestamp %d not increasing", ts)
	}
	cfg.ID = t.baseID + len(t.snapshots)
	var err error
	if len(cfg.Centroids) > 0 {
		_, err = t.engine.IVFDeploy(cfg)
	} else {
		_, err = t.engine.Deploy(cfg)
	}
	if err != nil {
		return err
	}
	t.snapshots = append(t.snapshots, snapshot{
		Timestamp: ts, DBID: cfg.ID, offset: globalOffset, n: len(cfg.Vectors),
	})
	return nil
}

// Snapshots returns the number of deployed sub-databases.
func (t *TimeSeriesDB) Snapshots() int { return len(t.snapshots) }

// SearchWindow retrieves the top-k documents among the sub-databases
// whose timestamps lie in [from, to]. Result IDs are global. Stats
// aggregate across the searched sub-databases.
func (t *TimeSeriesDB) SearchWindow(query []float32, k int, from, to int64, opt SearchOptions) ([]DocResult, QueryStats, error) {
	var merged []DocResult
	var agg QueryStats
	searched := 0
	for _, s := range t.snapshots {
		if s.Timestamp < from || s.Timestamp > to {
			continue
		}
		searched++
		db, err := t.engine.DB(s.DBID)
		if err != nil {
			return nil, agg, err
		}
		var (
			res []DocResult
			st  QueryStats
		)
		if db.rivf != nil {
			res, st, err = t.engine.IVFSearch(s.DBID, query, k, opt)
		} else {
			res, st, err = t.engine.Search(s.DBID, query, k, opt)
		}
		if err != nil {
			return nil, agg, err
		}
		agg.Add(st)
		// INT8 distances are in units of each sub-database's own
		// quantization scale squared; convert to float units so the
		// merge compares like with like.
		scale2 := db.params.Scale * db.params.Scale
		for _, r := range res {
			r.ID += s.offset
			r.Dist *= scale2
			merged = append(merged, r)
		}
	}
	if searched == 0 {
		return nil, agg, fmt.Errorf("reis: no sub-database in window [%d, %d]", from, to)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Dist != merged[b].Dist {
			return merged[a].Dist < merged[b].Dist
		}
		return merged[a].ID < merged[b].ID
	})
	if k < len(merged) {
		merged = merged[:k]
	}
	return merged, agg, nil
}

// DRAMFootprint returns the controller-DRAM bytes for the snapshot
// index: timestamp (8B) + database id (4B) per entry, on top of the
// R-DB records the sub-databases already own.
func (t *TimeSeriesDB) DRAMFootprint() int64 { return int64(len(t.snapshots)) * 12 }
