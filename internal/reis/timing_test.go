package reis

import (
	"testing"

	"reis/internal/ssd"
)

// fullGeoCfg keeps the preset's full channel/die/plane structure (the
// quantity the timing shapes depend on) but shrinks per-plane capacity
// so tests stay fast.
func fullGeoCfg(preset ssd.Config) ssd.Config {
	preset.Geo.BlocksPerPlane = 4
	preset.Geo.PagesPerBlock = 16
	return preset
}

// statsFor runs one IVF query on an engine with the given options and
// config and returns the engine, database and stats.
func statsFor(t *testing.T, cfg ssd.Config, opts Options) (*Engine, *Database, QueryStats) {
	t.Helper()
	e, err := New(cfg, 256<<20, opts)
	if err != nil {
		t.Fatal(err)
	}
	db := deployIVF(t, e, 1, 16)
	_, st, err := e.IVFSearch(1, testData.Queries[0], 10, SearchOptions{NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	return e, db, st
}

// paperScale approximates the ratio between the paper's datasets and
// our functional test workload, so the latency model operates in the
// regime where the paper's effects (transfer-boundedness without DF,
// pipeline overlap) appear.
var paperScale = Scale{Fine: 4096, Coarse: 4096, SurvivorRate: 0.01}

func TestLatencyPositiveAndDecomposed(t *testing.T) {
	e, db, st := statsFor(t, fullGeoCfg(ssd.SSD1()), AllOptions())
	b := e.Latency(db, st, UnitScale())
	if b.Total <= 0 {
		t.Fatalf("total latency %v", b.Total)
	}
	sum := b.IBC + b.Coarse + b.Fine + b.Rerank + b.Docs
	if sum != b.Total {
		t.Fatalf("breakdown does not sum: %v != %v", sum, b.Total)
	}
	if b.EnergyJ <= 0 || b.AvgWatts <= 0 {
		t.Fatalf("energy %v watts %v", b.EnergyJ, b.AvgWatts)
	}
}

func TestDistanceFilterReducesLatency(t *testing.T) {
	// Without DF, every scanned embedding becomes a TTL entry and the
	// channels saturate; with DF the scan is read-bound. The paper
	// reports 4.7-5.7x (Fig 9).
	on, dbOn, stOn := statsFor(t, fullGeoCfg(ssd.SSD1()), AllOptions())
	offOpts := AllOptions()
	offOpts.DistanceFilter = false
	off, dbOff, stOff := statsFor(t, fullGeoCfg(ssd.SSD1()), offOpts)
	lOn := on.Latency(dbOn, stOn, paperScale).Total
	lOff := off.Latency(dbOff, stOff, paperScale).Total
	if float64(lOff) < 2*float64(lOn) {
		t.Fatalf("DF speedup only %.2fx (on %v, off %v), want >= 2x",
			float64(lOff)/float64(lOn), lOn, lOff)
	}
	t.Logf("DF speedup at paper scale: %.2fx (paper: 4.7-5.7x)", float64(lOff)/float64(lOn))
}

func TestPipeliningReducesLatency(t *testing.T) {
	plOpts := AllOptions()
	noPlOpts := AllOptions()
	noPlOpts.Pipelining = false
	pl, dbPl, stPl := statsFor(t, fullGeoCfg(ssd.SSD2()), plOpts)
	nopl, dbNo, stNo := statsFor(t, fullGeoCfg(ssd.SSD2()), noPlOpts)
	lPl := pl.Latency(dbPl, stPl, paperScale).Total
	lNo := nopl.Latency(dbNo, stNo, paperScale).Total
	if lPl >= lNo {
		t.Fatalf("PL did not reduce latency: %v >= %v", lPl, lNo)
	}
	t.Logf("PL speedup: %.2fx", float64(lNo)/float64(lPl))
}

func TestMPIBCReducesLatency(t *testing.T) {
	cfg := fullGeoCfg(ssd.SSD2()) // 4 planes/die: largest MPIBC effect
	mp, dbMp, stMp := statsFor(t, cfg, AllOptions())
	noOpts := AllOptions()
	noOpts.MPIBC = false
	no, dbNo, stNo := statsFor(t, cfg, noOpts)
	lMp := mp.Latency(dbMp, stMp, UnitScale()).IBC
	lNo := no.Latency(dbNo, stNo, UnitScale()).IBC
	if lMp >= lNo {
		t.Fatalf("MPIBC did not reduce IBC time: %v >= %v", lMp, lNo)
	}
	planes := cfg.Geo.PlanesPerDie
	if got := float64(lNo) / float64(lMp); got < float64(planes)*0.9 {
		t.Fatalf("MPIBC gain %.2fx, want ~%dx (planes/die)", got, planes)
	}
}

func TestAllOptimizationsBeatNoOpt(t *testing.T) {
	full, dbF, stF := statsFor(t, fullGeoCfg(ssd.SSD1()), AllOptions())
	noopt, dbN, stN := statsFor(t, fullGeoCfg(ssd.SSD1()), Options{})
	lF := full.Latency(dbF, stF, paperScale).Total
	lN := noopt.Latency(dbN, stN, paperScale).Total
	if float64(lN) < 2*float64(lF) {
		t.Fatalf("full REIS only %.2fx over No-OPT", float64(lN)/float64(lF))
	}
	t.Logf("No-OPT/full speedup at paper scale: %.2fx", float64(lN)/float64(lF))
}

func TestSSD2FasterThanSSD1(t *testing.T) {
	e1, db1, st1 := statsFor(t, fullGeoCfg(ssd.SSD1()), AllOptions())
	e2, db2, st2 := statsFor(t, fullGeoCfg(ssd.SSD2()), AllOptions())
	l1 := e1.Latency(db1, st1, paperScale).Total
	l2 := e2.Latency(db2, st2, paperScale).Total
	if l2 >= l1 {
		t.Fatalf("SSD2 %v not faster than SSD1 %v", l2, l1)
	}
	t.Logf("SSD2 over SSD1: %.2fx (paper: 2.6x avg)", float64(l1)/float64(l2))
}

func TestASICSlower(t *testing.T) {
	e, db, st := statsFor(t, fullGeoCfg(ssd.SSD1()), AllOptions())
	reisL := e.Latency(db, st, paperScale).Total
	asicL := e.ASICLatency(db, st, paperScale).Total
	if float64(asicL) < 2*float64(reisL) {
		t.Fatalf("REIS-ASIC only %.2fx slower", float64(asicL)/float64(reisL))
	}
	t.Logf("ASIC slowdown: %.2fx (paper: 4.1-6.5x)", float64(asicL)/float64(reisL))
}

func TestScaleMonotonic(t *testing.T) {
	e, db, st := statsFor(t, fullGeoCfg(ssd.SSD1()), AllOptions())
	// Scales chosen so the scan grows past one wave per plane each
	// step (sub-plane workloads legitimately cost the same).
	var prev int64
	for _, scale := range []float64{1, 256, 2048, 16384} {
		l := int64(e.Latency(db, st, UniformScale(scale)).Total)
		if l <= prev {
			t.Fatalf("latency not increasing with scale %v: %d <= %d", scale, l, prev)
		}
		prev = l
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	e, db, st := statsFor(t, fullGeoCfg(ssd.SSD1()), AllOptions())
	e1 := e.Latency(db, st, UnitScale()).EnergyJ
	e64 := e.Latency(db, st, UniformScale(64)).EnergyJ
	if e64 <= e1 {
		t.Fatalf("energy did not grow with scale: %v <= %v", e64, e1)
	}
}

func TestCoarseScaleIndependent(t *testing.T) {
	// Scaling only the fine phase must not change the coarse phase.
	e, db, st := statsFor(t, fullGeoCfg(ssd.SSD1()), AllOptions())
	a := e.Latency(db, st, Scale{Fine: 1, Coarse: 1})
	b := e.Latency(db, st, Scale{Fine: 100, Coarse: 1})
	if a.Coarse != b.Coarse {
		t.Fatalf("coarse changed with fine scale: %v vs %v", a.Coarse, b.Coarse)
	}
	if b.Fine <= a.Fine {
		t.Fatalf("fine did not grow: %v <= %v", b.Fine, a.Fine)
	}
}

func TestCeilF(t *testing.T) {
	cases := map[float64]int{0.1: 1, 1: 1, 1.5: 2, 2: 2, 0: 0}
	for in, want := range cases {
		if got := ceilF(in); got != want {
			t.Errorf("ceilF(%v) = %d, want %d", in, got, want)
		}
	}
}
