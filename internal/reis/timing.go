package reis

import (
	"time"

	"reis/internal/flash"
	"reis/internal/ssd"
)

// Scale magnifies a functionally scaled-down run to the paper's full
// dataset size when costing latency and energy. Fine applies to
// dataset-proportional quantities (fine-scan pages, survivors, TTL
// bytes); Coarse applies to the centroid scan, whose size follows
// nlist rather than N (the paper uses nlist = 16384 at 41M+ entries,
// roughly sqrt-proportional). Quantities that do not grow with the
// database (rerank pool, top-k documents, IBC) are never scaled.
type Scale struct {
	Fine   float64
	Coarse float64
	// SurvivorRate, when positive and distance filtering is enabled,
	// overrides linear survivor scaling: the full-scale survivor count
	// becomes scanned*Fine*SurvivorRate. The paper tunes the filter
	// threshold per dataset so ~99% of candidates are discarded at
	// full scale (Sec 4.3.3); our functional run keeps the threshold
	// calibrated for its own (much smaller, more tightly clustered)
	// data, so its pass rate does not extrapolate linearly.
	SurvivorRate float64
}

// UnitScale costs the run exactly as executed.
func UnitScale() Scale { return Scale{Fine: 1, Coarse: 1} }

// UniformScale scales both phases by f.
func UniformScale(f float64) Scale { return Scale{Fine: f, Coarse: f} }

// Breakdown is the per-query latency decomposition the timing model
// produces from a QueryStats. All durations are for one query.
type Breakdown struct {
	IBC      time.Duration // query broadcast into the planes
	Coarse   time.Duration // centroid scan phase
	Fine     time.Duration // in-cluster scan phase
	Rerank   time.Duration // INT8 fetch + rescore + quicksort
	Docs     time.Duration // document page reads + host transfer
	Total    time.Duration
	EnergyJ  float64 // total energy for the query, joules
	AvgWatts float64 // EnergyJ / Total
}

// Latency converts the event counts of one query into a latency and
// energy estimate under the engine's options and the given scale.
//
// Waves are recomputed from scaled page counts (pages spread evenly
// across planes by the parallelism-first layout), so wave quantization
// at small functional scale does not distort full-scale estimates.
func (e *Engine) Latency(db *Database, st QueryStats, sc Scale) Breakdown {
	entryBytes := db.ttlEntryBytes()
	coarseEntries := float64(st.CoarseEntries) * sc.Coarse
	fineSurvivors := e.fineSurvivors(st, sc)

	// IBC is the query broadcast into the plane latches; a query that
	// scanned no flash pages (a result-cache hit, or a fully pinned/
	// compacted-away plan) never issued it.
	var tIBC time.Duration
	if st.CoarsePages+st.FinePages > 0 {
		tIBC = e.ibcTime()
	}
	tCoarse := e.scanPhaseTime(
		scanPagesScaled(st.CoarsePages, st.CoarseEntries, sc.Coarse, db.embPerPage),
		coarseEntries*float64(entryBytes),
		coarseEntries,
	)
	tFine := e.scanPhaseTime(
		scanPagesScaled(st.FinePages, st.EntriesScanned-st.CoarseEntries, sc.Fine, db.embPerPage),
		fineSurvivors*float64(entryBytes),
		fineSurvivors,
	)

	tFine += cachedScanTime(e.SSD.Cfg, db.slotBytes, st, sc)

	tRerank := e.rerankTime(db, st)
	tDocs := e.docsTime(st)

	total := tIBC + tCoarse + tFine + tRerank + tDocs
	energy := e.energy(db, st, sc, total)
	b := Breakdown{
		IBC: tIBC, Coarse: tCoarse, Fine: tFine, Rerank: tRerank, Docs: tDocs,
		Total: total, EnergyJ: energy,
	}
	if total > 0 {
		b.AvgWatts = energy / total.Seconds()
	}
	return b
}

// scanPagesScaled converts a functional scan to full-scale pages. At
// scale 1 the functional page count (which includes cluster-alignment
// padding pages) is authoritative; at larger scales pages follow the
// scaled entry count, because padding is a small-scale artifact (a
// full-scale cluster of thousands of embeddings wastes at most one
// partial page).
func scanPagesScaled(pages, entries int, scale float64, perPage int) float64 {
	if scale <= 1 {
		return float64(pages)
	}
	p := float64(entries) * scale / float64(perPage)
	if p < float64(pages) {
		// Never below the functional count: reads that happened,
		// happened.
		return float64(pages)
	}
	return p
}

// fineSurvivors returns the full-scale fine-phase survivor estimate.
func (e *Engine) fineSurvivors(st QueryStats, sc Scale) float64 {
	fineScanned := float64(st.EntriesScanned-st.CoarseEntries) * sc.Fine
	if e.Opts.DistanceFilter && sc.SurvivorRate > 0 {
		return fineScanned * sc.SurvivorRate
	}
	return float64(st.Survivors-st.CoarseEntries) * sc.Fine
}

func (e *Engine) rerankTime(db *Database, st QueryStats) time.Duration {
	return rerankTimeFor(e.SSD.Cfg, db.int8Bytes, db.Dim, st)
}

// rerankTimeFor costs the INT8 fetch + rescore + quicksort stage under
// an explicit device configuration (the sharded model costs the gather
// tail with the single-device-equivalent config).
func rerankTimeFor(cfg ssd.Config, int8Bytes, dim int, st QueryStats) time.Duration {
	tTLC := cfg.Flash.ReadLatency(flash.ModeTLC)
	xfer := bytesTime(float64(st.RerankCount*int8Bytes), cfg.Geo.InternalBandwidth())
	return time.Duration(st.RerankWaves)*tTLC + xfer +
		cfg.RerankTime(st.RerankCount, dim) + cfg.QuicksortTime(st.SortedEntries)
}

func (e *Engine) docsTime(st QueryStats) time.Duration {
	return docsTimeFor(e.SSD.Cfg, st)
}

// docsTimeFor costs the document retrieval stage under an explicit
// device configuration.
func docsTimeFor(cfg ssd.Config, st QueryStats) time.Duration {
	tTLC := cfg.Flash.ReadLatency(flash.ModeTLC)
	docWaves := ceilDiv(st.DocPages, cfg.Geo.Planes())
	return time.Duration(docWaves)*tTLC +
		bytesTime(float64(st.DocBytes), cfg.Geo.InternalBandwidth()) +
		bytesTime(float64(st.DocBytes), cfg.HostReadBandwidth)
}

// ibcTime models Input Broadcasting: each die loads a full cache latch
// worth of query copies through its I/O port; dies on a channel share
// the channel. Without MPIBC every plane is loaded separately; with
// MPIBC all planes of a die latch the broadcast together (Sec 4.3.4).
func (e *Engine) ibcTime() time.Duration {
	geo := e.SSD.Cfg.Geo
	perLoad := bytesTime(float64(geo.PageBytes), e.SSD.Cfg.Flash.DieInputBandwidth)
	loads := geo.DiesPerChannel
	if !e.Opts.MPIBC {
		loads *= geo.PlanesPerDie
	}
	return time.Duration(loads) * perLoad
}

// scanPhaseTime costs one scan phase (coarse or fine): pages spread
// evenly across planes become ceil(pages/planes) parallel waves of
// page reads; in-plane compute; channel transfer of surviving TTL
// entries; and controller quickselect.
//
// Without pipelining the components serialize; with the Read Page
// Cache Sequential pipeline the phase is bound by its slowest stage
// plus one pipeline fill (Sec 4.3.4).
func (e *Engine) scanPhaseTime(pages, ttlBytes, selectInput float64) time.Duration {
	if pages <= 0 {
		return 0
	}
	cfg := e.SSD.Cfg
	p := cfg.Flash
	planes := float64(cfg.Geo.Planes())
	waves := ceilF(pages / planes)
	tR := p.ReadLatency(flash.ModeSLCESP)
	compute := p.LatchXOR + p.BitCountPage + p.PassFailCheck

	read := time.Duration(waves) * tR
	computeTotal := time.Duration(waves) * compute
	xfer := bytesTime(ttlBytes, cfg.Geo.InternalBandwidth())
	sel := cfg.QuickselectTime(int(selectInput)) +
		time.Duration(selectInput*cfg.DRAMAccessNs)*time.Nanosecond

	if e.Opts.Pipelining {
		steady := read
		if computeTotal+xfer > steady {
			steady = computeTotal + xfer
		}
		if sel > steady {
			steady = sel
		}
		return tR + steady
	}
	return read + computeTotal + xfer + sel
}

// cachedScanTime costs host-side caching-tier work, which never touches
// flash: pinned-cluster scans stream each slot out of controller DRAM
// and XOR+popcount it word-at-a-time on the core, and result-cache hits
// pay a fixed number of DRAM accesses for the lookup plus deep copy.
// Cached slots are dataset-proportional, so they scale with sc.Fine;
// the per-hit constant does not grow with the database. Energy is not
// modeled for cached work (controller DRAM traffic is orders of
// magnitude below a flash sense and is dominated by IdlePower).
func cachedScanTime(cfg ssd.Config, slotBytes int, st QueryStats, sc Scale) time.Duration {
	if st.CachedSlots == 0 && st.ResultCacheHits == 0 {
		return 0
	}
	perSlot := cfg.DRAMAccessNs + float64(slotBytes/4)*cfg.CoreCycleNs()
	ns := float64(st.CachedSlots)*sc.Fine*perSlot +
		float64(st.ResultCacheHits*resultCacheHitAccesses)*cfg.DRAMAccessNs
	return time.Duration(ns) * time.Nanosecond
}

// energy sums per-event energies plus background power over the query.
func (e *Engine) energy(db *Database, st QueryStats, sc Scale, total time.Duration) float64 {
	p := e.SSD.Cfg.Flash
	geo := e.SSD.Cfg.Geo

	slcPages := scanPagesScaled(st.CoarsePages, st.CoarseEntries, sc.Coarse, db.embPerPage) +
		scanPagesScaled(st.FinePages, st.EntriesScanned-st.CoarseEntries, sc.Fine, db.embPerPage)
	tlcPages := float64(st.RerankPages + st.DocPages)
	entryBytes := float64(db.ttlEntryBytes())
	ttlBytes := (float64(st.CoarseEntries)*sc.Coarse + e.fineSurvivors(st, sc)) * entryBytes
	xferBytes := ttlBytes +
		float64(st.RerankCount*db.int8Bytes) + float64(st.DocBytes)
	if st.CoarsePages+st.FinePages > 0 {
		xferBytes += float64(geo.Dies() * geo.PageBytes) // IBC broadcast
	}

	j := slcPages*(p.EnergyReadPage+p.EnergyLatchXOR+p.EnergyBitCount) +
		tlcPages*p.EnergyReadPage +
		xferBytes*p.EnergyXferPerByte
	// Controller and idle draw for the duration of the query.
	j += e.SSD.Cfg.IdlePower * total.Seconds()
	return j
}

// BatchBreakdown is the timing model's view of a query batch admitted
// through SearchBatch/IVFSearchBatch: instead of serializing whole
// queries, the device keeps its three contended resources — flash
// planes, channels, and the controller core — busy across queries, so
// batch service time is bounded by the busiest resource plus one
// pipeline fill, not by the sum of standalone latencies.
type BatchBreakdown struct {
	Queries int
	// Serial is the sum of standalone per-query latencies — what
	// one-at-a-time admission would cost.
	Serial time.Duration
	// PlaneBusy/ChannelBusy/CoreBusy are the per-resource occupancy
	// sums across the batch; the largest is the batch bottleneck.
	PlaneBusy   time.Duration
	ChannelBusy time.Duration
	CoreBusy    time.Duration
	// Makespan is the modeled completion time of the whole batch.
	Makespan time.Duration
	// QPS is Queries / Makespan.
	QPS float64
	// EnergyJ is the batch energy: per-event energy of every query
	// plus background power over the makespan (idle draw is paid once,
	// not once per query).
	EnergyJ float64
}

// BatchLatency converts the per-query event counts of one batch into a
// batch service estimate under the given scale. Per-query occupancies
// sum per resource; the makespan is the bottleneck resource's total
// plus the first query's standalone latency as pipeline fill/drain,
// clamped to never exceed serial execution.
func (e *Engine) BatchLatency(db *Database, sts []QueryStats, sc Scale) BatchBreakdown {
	b := BatchBreakdown{Queries: len(sts)}
	var fill time.Duration
	for i := range sts {
		bd := e.Latency(db, sts[i], sc)
		b.Serial += bd.Total
		if i == 0 {
			fill = bd.Total
		}
		plane, channel, core := e.occupancy(db, sts[i], sc)
		b.PlaneBusy += plane
		b.ChannelBusy += channel
		b.CoreBusy += core
		b.EnergyJ += e.energy(db, sts[i], sc, 0)
	}
	b.Makespan = b.PlaneBusy
	if b.ChannelBusy > b.Makespan {
		b.Makespan = b.ChannelBusy
	}
	if b.CoreBusy > b.Makespan {
		b.Makespan = b.CoreBusy
	}
	b.Makespan += fill
	if b.Makespan > b.Serial {
		b.Makespan = b.Serial
	}
	b.EnergyJ += e.SSD.Cfg.IdlePower * b.Makespan.Seconds()
	if b.Makespan > 0 {
		b.QPS = float64(b.Queries) / b.Makespan.Seconds()
	}
	return b
}

// occupancy decomposes one query's device events into busy time on the
// three resources a batch contends for:
//
//   - plane: array reads (the critical plane's waves) plus the
//     in-plane latch compute, for the scan phases and the TLC
//     rerank/document reads;
//   - channel: the IBC broadcast in, TTL entries, rerank embeddings
//     and document bytes out (internal), and the host transfer;
//   - core: controller quickselect + TTL DRAM traffic, INT8 rerank
//     and the final quicksort.
//
// The decomposition mirrors Latency's stage formulas at the same
// scale, so summing occupancies across a batch is consistent with the
// per-query model.
func (e *Engine) occupancy(db *Database, st QueryStats, sc Scale) (plane, channel, core time.Duration) {
	cfg := e.SSD.Cfg
	geo := cfg.Geo
	p := cfg.Flash
	planes := float64(geo.Planes())

	entryBytes := float64(db.ttlEntryBytes())
	coarseEntries := float64(st.CoarseEntries) * sc.Coarse
	fineSurvivors := e.fineSurvivors(st, sc)
	coarsePages := scanPagesScaled(st.CoarsePages, st.CoarseEntries, sc.Coarse, db.embPerPage)
	finePages := scanPagesScaled(st.FinePages, st.EntriesScanned-st.CoarseEntries, sc.Fine, db.embPerPage)

	scanWaves := 0
	if coarsePages > 0 {
		scanWaves += ceilF(coarsePages / planes)
	}
	if finePages > 0 {
		scanWaves += ceilF(finePages / planes)
	}
	tESP := p.ReadLatency(flash.ModeSLCESP)
	tTLC := p.ReadLatency(flash.ModeTLC)
	latchCompute := p.LatchXOR + p.BitCountPage + p.PassFailCheck
	docWaves := ceilDiv(st.DocPages, geo.Planes())
	plane = time.Duration(scanWaves)*(tESP+latchCompute) +
		time.Duration(st.RerankWaves+docWaves)*tTLC

	ttlBytes := (coarseEntries + fineSurvivors) * entryBytes
	if st.CoarsePages+st.FinePages > 0 {
		channel = e.ibcTime()
	}
	channel += bytesTime(ttlBytes, geo.InternalBandwidth()) +
		bytesTime(float64(st.RerankCount*db.int8Bytes), geo.InternalBandwidth()) +
		bytesTime(float64(st.DocBytes), geo.InternalBandwidth()) +
		bytesTime(float64(st.DocBytes), cfg.HostReadBandwidth)

	selectInput := coarseEntries + fineSurvivors
	core = cfg.QuickselectTime(int(selectInput)) +
		time.Duration(selectInput*cfg.DRAMAccessNs)*time.Nanosecond +
		cfg.RerankTime(st.RerankCount, db.Dim) +
		cfg.QuicksortTime(st.SortedEntries) +
		cachedScanTime(cfg, db.slotBytes, st, sc)
	return plane, channel, core
}

// ASICLatency models the REIS-ASIC comparison point of Sec 6.3.1: no
// ESP, so every scanned page (data + OOB for ECC) must be transferred
// to the controller, where an ideal zero-cost ASIC computes distances
// after ECC. Reads and transfers pipeline; the channels are the
// bottleneck.
func (e *Engine) ASICLatency(db *Database, st QueryStats, sc Scale) Breakdown {
	cfg := e.SSD.Cfg
	geo := cfg.Geo
	p := cfg.Flash
	tR := p.ReadLatency(flash.ModeSLC) // SLC without ESP

	scanPages := scanPagesScaled(st.CoarsePages, st.CoarseEntries, sc.Coarse, db.embPerPage) +
		scanPagesScaled(st.FinePages, st.EntriesScanned-st.CoarseEntries, sc.Fine, db.embPerPage)
	waves := ceilF(scanPages / float64(geo.Planes()))
	pageBytes := float64(geo.PageBytes + geo.OOBBytes)
	xfer := bytesTime(scanPages*pageBytes, geo.InternalBandwidth())
	read := time.Duration(waves) * tR
	scan := xfer
	if read > scan {
		scan = read
	}
	scan += tR // pipeline fill

	tRerank := e.rerankTime(db, st)
	tDocs := e.docsTime(st)

	total := e.ibcTime() + scan + tRerank + tDocs
	j := scanPages*p.EnergyReadPage + scanPages*pageBytes*p.EnergyXferPerByte +
		cfg.IdlePower*total.Seconds()
	b := Breakdown{IBC: e.ibcTime(), Fine: scan, Rerank: tRerank, Docs: tDocs, Total: total, EnergyJ: j}
	if total > 0 {
		b.AvgWatts = j / total.Seconds()
	}
	return b
}

func bytesTime(bytes, bandwidth float64) time.Duration {
	if bytes <= 0 || bandwidth <= 0 {
		return 0
	}
	return time.Duration(bytes / bandwidth * float64(time.Second))
}

func ceilF(x float64) int {
	n := int(x)
	if float64(n) < x {
		n++
	}
	return n
}
