package reis

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"reis/internal/ann"
	"reis/internal/ssd"
)

// shardTestCfg shrinks SSD1 while keeping multiple channels, dies and
// planes per die. Each shard is one such device; the equivalence
// reference for n shards is the same config with n times the channels.
func shardTestCfg() ssd.Config {
	cfg := ssd.SSD1()
	cfg.Geo.Channels = 2
	cfg.Geo.DiesPerChannel = 2
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 32
	cfg.Geo.PagesPerBlock = 16
	cfg.Geo.PageBytes = 4096
	cfg.Geo.OOBBytes = 1024
	return cfg
}

// refCfg is the single-device equivalent of n shards: n times the
// channels of the shared config.
func refCfg(n int) ssd.Config {
	cfg := shardTestCfg()
	cfg.Geo.Channels *= n
	return cfg
}

// shardCounts is the sweep the equivalence tests pin.
var shardCounts = []int{1, 2, 4}

func newSharded(t *testing.T, n int) *ShardedEngine {
	t.Helper()
	sh, err := NewSharded(shardTestCfg(), n, 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	return sh
}

// deployBoth deploys the shared test dataset flat (id 1) and IVF
// (id 2) through any host's deploy commands.
func deployBoth(t *testing.T, submit func(HostCommand) (HostResponse, error)) {
	t.Helper()
	if _, err := submit(HostCommand{Opcode: OpcodeDBDeploy, Deploy: &DeployConfig{
		ID: 1, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
	}}); err != nil {
		t.Fatal(err)
	}
	cents, assign := ann.KMeans(testData.Vectors, ann.KMeansConfig{K: 16, Seed: 9})
	if _, err := submit(HostCommand{Opcode: OpcodeIVFDeploy, Deploy: &DeployConfig{
		ID: 2, Vectors: testData.Vectors, Docs: testData.Docs, DocSlotBytes: 256,
		Centroids: cents, Assign: assign,
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMatchesSingleDevice pins the determinism contract of the
// sharded topology: for shards in {1, 2, 4}, every search entry point
// returns results AND aggregated device stats bit-identical to the
// single-device reference (one device with n times the channels — the
// same aggregate hardware) over the same data. Results are also
// identical ACROSS shard counts, since the merged entry stream does
// not depend on geometry at all.
func TestShardedMatchesSingleDevice(t *testing.T) {
	queries := testData.Queries
	tag := testData.ClusterOf[testData.GroundTruth[0][0]] % 4
	metaTag := uint8(tag)
	cases := []struct {
		name string
		cmd  HostCommand
	}{
		{"flat", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries, K: 10}},
		{"flat-skipdocs", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries, K: 10, Opt: SearchOptions{SkipDocs: true}}},
		{"flat-metatag", HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries[:6], K: 10, Opt: SearchOptions{MetaTag: &metaTag}}},
		{"ivf-np1", HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: queries, K: 10, NProbe: 1}},
		{"ivf-np3", HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: queries, K: 10, NProbe: 3}},
		{"ivf-full", HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: queries, K: 10, NProbe: 16}},
	}

	var firstResults [][][]DocResult // [case][query] results of the first shard count
	for _, n := range shardCounts {
		single, err := New(refCfg(n), 64<<20, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { single.Close() })
		deployBoth(t, single.Submit)
		sh := newSharded(t, n)
		deployBoth(t, sh.Submit)

		for i, tc := range cases {
			want, err := single.Submit(tc.cmd)
			if err != nil {
				t.Fatalf("reference n=%d %s: %v", n, tc.name, err)
			}
			got, err := sh.Submit(tc.cmd)
			if err != nil {
				t.Fatalf("shards=%d %s: %v", n, tc.name, err)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("shards=%d %s: results differ from single device", n, tc.name)
			}
			if !reflect.DeepEqual(got.QueryStats, want.QueryStats) {
				t.Fatalf("shards=%d %s: per-query stats differ: %s",
					n, tc.name, firstDiffStat(got.QueryStats, want.QueryStats))
			}
			if got.Stats != want.Stats {
				t.Fatalf("shards=%d %s: aggregated stats differ:\n got %+v\nwant %+v",
					n, tc.name, got.Stats, want.Stats)
			}
			if firstResults == nil {
				firstResults = make([][][]DocResult, len(cases))
			}
			if firstResults[i] == nil {
				firstResults[i] = got.Results
			} else if !reflect.DeepEqual(got.Results, firstResults[i]) {
				t.Fatalf("shards=%d %s: results differ across shard counts", n, tc.name)
			}
			// The per-shard views must re-aggregate to the reported
			// stats: count-type events sum across shards.
			if len(got.PerShard) != n {
				t.Fatalf("shards=%d %s: PerShard has %d entries", n, tc.name, len(got.PerShard))
			}
			for qi := range got.QueryStats {
				scanned, survivors, pages, ibc := 0, 0, 0, 0
				for s := range got.PerShard {
					ps := got.PerShard[s][qi]
					scanned += ps.EntriesScanned
					survivors += ps.Survivors
					pages += ps.CoarsePages + ps.FinePages
					ibc += ps.IBCBroadcasts
				}
				st := got.QueryStats[qi]
				if scanned != st.EntriesScanned || survivors != st.Survivors ||
					pages != st.CoarsePages+st.FinePages || ibc != st.IBCBroadcasts {
					t.Fatalf("shards=%d %s: per-shard stats do not sum to query %d's aggregate", n, tc.name, qi)
				}
			}
		}

		// Per-query entry points agree with the batch path on results.
		res, _, err := sh.IVFSearch(2, queries[0], 10, SearchOptions{NProbe: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, firstResults[4][0]) {
			t.Fatalf("shards=%d: IVFSearch differs from batch path", n)
		}
	}
}

// firstDiffStat pinpoints the first differing per-query stats record
// for the failure message.
func firstDiffStat(got, want []QueryStats) string {
	if len(got) != len(want) {
		return fmt.Sprintf("len %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("query %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	return "equal"
}

// TestShardedCalibrationMatchesSingleDevice: the calibrated nprobe and
// the TargetRecall-addressed search are identical across topologies.
func TestShardedCalibrationMatchesSingleDevice(t *testing.T) {
	single, err := New(shardTestCfg(), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	deployBoth(t, single.Submit)
	npSingle, err := single.CalibrateNProbe(2, testData.Queries, testData.GroundTruth, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Submit(HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[:8], K: 10, TargetRecall: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range shardCounts[1:] {
		sh := newSharded(t, n)
		deployBoth(t, sh.Submit)
		np, err := sh.CalibrateNProbe(2, testData.Queries, testData.GroundTruth, 10, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if np != npSingle {
			t.Fatalf("shards=%d: calibrated nprobe %d, single device %d", n, np, npSingle)
		}
		got, err := sh.Submit(HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries[:8], K: 10, TargetRecall: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("shards=%d: TargetRecall search differs from single device", n)
		}
	}
}

// TestShardedDeterministicAcrossRuns: identical commands produce
// identical completions run to run on the sharded topology.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	sh := newSharded(t, 2)
	deployBoth(t, sh.Submit)
	cmd := HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: testData.Queries, K: 10, NProbe: 4}
	first, err := sh.Submit(cmd)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		again, err := sh.Submit(cmd)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Results, first.Results) || !reflect.DeepEqual(again.QueryStats, first.QueryStats) {
			t.Fatalf("run %d: sharded results not deterministic", run)
		}
	}
}

// TestShardedQueueStress hammers one router queue pair from concurrent
// submitters (run under -race in CI): every command completes, and
// every completion is bit-identical to the synchronous single-device
// answer regardless of coalescing or scheduling.
func TestShardedQueueStress(t *testing.T) {
	single, err := New(refCfg(4), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	deployBoth(t, single.Submit)
	sh := newSharded(t, 4)
	deployBoth(t, sh.Submit)

	queries := testData.Queries
	want := make([]HostResponse, len(queries))
	for i, q := range queries {
		resp, err := single.Submit(HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: [][]float32{q}, K: 5, NProbe: 2})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp
	}

	q, err := sh.NewQueue(QueueConfig{Depth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	const submitters = 4
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += submitters {
				cmd := HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: [][]float32{queries[i]}, K: 5, NProbe: 2}
				var resp HostResponse
				for {
					id, err := q.SubmitAsync(context.Background(), cmd)
					if errors.Is(err, ErrQueueFull) {
						continue
					}
					if err != nil {
						errs <- err
						return
					}
					resp, err = q.Wait(context.Background(), id)
					if err != nil {
						errs <- err
						return
					}
					break
				}
				if !reflect.DeepEqual(resp.Results, want[i].Results) {
					errs <- fmt.Errorf("query %d: sharded async results differ from single device", i)
					return
				}
				if !reflect.DeepEqual(resp.QueryStats, want[i].QueryStats) {
					errs <- fmt.Errorf("query %d: sharded async stats differ from single device", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestNewShardedValidation: shard counts must be positive; any
// positive count is a valid topology (each shard is a full device).
func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(shardTestCfg(), 0, 0, AllOptions()); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	if _, err := NewSharded(shardTestCfg(), -1, 0, AllOptions()); err == nil {
		t.Fatal("negative shard count accepted")
	}
	sh, err := NewSharded(shardTestCfg(), 3, 0, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", sh.Shards())
	}
}
