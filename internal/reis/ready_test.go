package reis

import (
	"context"
	"testing"
)

// TestQueueDepthOccupancy pins the queue-pair load accessors replica
// routers read: Depth is the configured admission bound (defaulted
// when zero), Occupancy tracks Outstanding/Depth as slots are taken
// and released.
func TestQueueDepthOccupancy(t *testing.T) {
	e := newEngine(t, AllOptions())
	deployFlat(t, e, 1)

	q, err := e.NewQueue(QueueConfig{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if got := q.Depth(); got != 4 {
		t.Fatalf("Depth() = %d, want 4", got)
	}
	if got := q.Occupancy(); got != 0 {
		t.Fatalf("idle Occupancy() = %v, want 0", got)
	}

	// Occupy two slots: completions are not consumed, so the commands
	// hold their slots even after execution finishes.
	cmd := HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: testData.Queries[:1], K: 3}
	ids := make([]CommandID, 2)
	for i := range ids {
		if ids[i], err = q.SubmitAsync(context.Background(), cmd); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Outstanding(); got != 2 {
		t.Fatalf("Outstanding() = %d, want 2", got)
	}
	if got := q.Occupancy(); got != 0.5 {
		t.Fatalf("Occupancy() = %v, want 0.5", got)
	}
	for _, id := range ids {
		if _, err := q.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Occupancy(); got != 0 {
		t.Fatalf("drained Occupancy() = %v, want 0", got)
	}

	// A zero Depth defaults like SubmitAsync admission does.
	qd, err := e.NewQueue(QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer qd.Close()
	if got := qd.Depth(); got != DefaultQueueDepth {
		t.Fatalf("default Depth() = %d, want %d", got, DefaultQueueDepth)
	}
}

// TestEngineReady pins the health probe: a live engine is Ready, a
// closed one is not, and the sharded router mirrors the same contract
// (including when a member device is closed underneath it).
func TestEngineReady(t *testing.T) {
	e, err := New(testCfg(), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !e.Ready() {
		t.Fatal("new engine not Ready")
	}
	e.Close()
	if e.Ready() {
		t.Fatal("closed engine still Ready")
	}

	sh, err := NewSharded(shardTestCfg(), 2, 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Ready() {
		t.Fatal("new sharded router not Ready")
	}
	// A closed member fails any scatter, so the router must report it.
	sh.Shard(1).Close()
	if sh.Ready() {
		t.Fatal("router with a closed member still Ready")
	}
	sh.Close()
	if sh.Ready() {
		t.Fatal("closed router still Ready")
	}
}
