package reis

import (
	"fmt"
	"reflect"
	"testing"

	"reis/internal/ssd"
)

// Cache test budgets. With the shard test geometry (4096B pages, 1024B
// OOB) and the 128-dim test data (16B slots, 256 per page), each of the
// 16 IVF clusters spans about one binary page, so:
//
//   - cacheSmallBudget pins only some of the hot clusters and holds only
//     a few results — both tiers run mixed with the flash path;
//   - cacheBigBudget pins every cluster and holds every per-query result
//     of the shared test query set — the all-cached extreme.
const (
	cacheSmallBudget = 48 << 10
	cacheBigBudget   = 256 << 10
)

func cachedRefCfg(n int, budget int64) ssd.Config {
	cfg := refCfg(n)
	cfg.CacheDRAMBytes = budget
	return cfg
}

func cachedShardCfg(budget int64) ssd.Config {
	cfg := shardTestCfg()
	cfg.CacheDRAMBytes = budget
	return cfg
}

// cacheInvariant checks the page-partition invariant per query: on the
// unpruned path, a cached engine serves some fine pages from DRAM and
// the rest from flash, so cached.FinePages + cached.CachedPages must
// equal the uncached run's FinePages exactly. Result-cache hits did no
// scan work at all and are exempt.
func cacheInvariant(t *testing.T, name string, cached, uncached HostResponse) {
	t.Helper()
	if len(cached.QueryStats) != len(uncached.QueryStats) {
		t.Fatalf("%s: stats length %d vs %d", name, len(cached.QueryStats), len(uncached.QueryStats))
	}
	for i := range cached.QueryStats {
		c, u := cached.QueryStats[i], uncached.QueryStats[i]
		if c.ResultCacheHits > 0 {
			if c.FinePages != 0 || c.CachedPages != 0 {
				t.Errorf("%s q%d: hit with scan work %+v", name, i, c)
			}
			continue
		}
		if c.FinePages+c.CachedPages != u.FinePages {
			t.Errorf("%s q%d: partition %d+%d != uncached fine %d",
				name, i, c.FinePages, c.CachedPages, u.FinePages)
		}
		if c.CoarsePages != u.CoarsePages {
			t.Errorf("%s q%d: coarse pages %d != %d", name, i, c.CoarsePages, u.CoarsePages)
		}
	}
}

// cacheScript is the repeated-search workload the equivalence tests
// replay on every topology: the same IVF batch several times (warming
// the probe counters, then hitting the result cache), flat batches,
// nprobe variations (distinct cache keys), and exact single-query
// repeats. Every command goes through Submit, the path that consults
// the result cache.
func cacheScript(t *testing.T, h submitter) []HostResponse {
	t.Helper()
	queries := testData.Queries
	var resps []HostResponse
	run := func(cmd HostCommand) {
		t.Helper()
		resp, err := h.Submit(cmd)
		if err != nil {
			t.Fatalf("opcode %#x: %v", cmd.Opcode, err)
		}
		resps = append(resps, resp)
	}
	ivf := func(q [][]float32, nprobe int, opt SearchOptions) HostCommand {
		return HostCommand{Opcode: OpcodeIVFSearch, DBID: 2, Queries: q, K: 10, NProbe: nprobe, Opt: opt}
	}
	for r := 0; r < 3; r++ {
		run(ivf(queries, 4, SearchOptions{SkipDocs: true}))
	}
	run(ivf(queries, 4, SearchOptions{}))            // docs: distinct key space
	run(ivf(queries, 8, SearchOptions{}))            // wider probe, different pins get hot
	run(ivf(queries[:6], 4, SearchOptions{}))        // exact repeats of earlier queries
	run(ivf(queries, 4, SearchOptions{Prune: true})) // pruned path over pinned clusters
	run(ivf(queries, 4, SearchOptions{Prune: true}))
	run(HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries, K: 10})
	run(HostCommand{Opcode: OpcodeSearch, DBID: 1, Queries: queries, K: 10})
	return resps
}

// TestCachedMatchesUncached pins the caching tier's determinism
// contract on the deployed (unmutated) dataset, at a partial-pin and an
// everything-pinned budget:
//
//   - results are bit-identical to an uncached engine, command for
//     command, query for query;
//   - on unpruned commands the page-partition invariant holds;
//   - a cached sharded topology (1, 2, 4 shards) is bit-identical in
//     results AND aggregated stats to the cached N×channels reference.
func TestCachedMatchesUncached(t *testing.T) {
	for _, budget := range []int64{cacheSmallBudget, cacheBigBudget} {
		t.Run(fmt.Sprintf("budget=%dKiB", budget>>10), func(t *testing.T) {
			uncached, err := New(refCfg(1), 64<<20, AllOptions())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { uncached.Close() })
			deployBoth(t, uncached.Submit)
			base := cacheScript(t, uncached)

			for _, n := range shardCounts {
				single, err := New(cachedRefCfg(n, budget), 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { single.Close() })
				deployBoth(t, single.Submit)
				sh, err := NewSharded(cachedShardCfg(budget), n, 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { sh.Close() })
				deployBoth(t, sh.Submit)

				got := cacheScript(t, single)
				gotSh := cacheScript(t, sh)
				for i := range base {
					name := fmt.Sprintf("n=%d cmd=%d", n, i)
					if !reflect.DeepEqual(got[i].Results, base[i].Results) {
						t.Fatalf("%s: cached results diverge from uncached", name)
					}
					if !mutRespEqual(got[i], gotSh[i]) {
						t.Fatalf("%s: sharded diverges from reference: %s vs %s",
							name, briefResp(gotSh[i]), briefResp(got[i]))
					}
					// The last two script entries per opcode are pruned
					// commands: pinned segments are never lb-aborted, so
					// their pages move between Fine/Pruned accounting and
					// only unpruned rows satisfy the page partition.
					if i != 7 && i != 8 {
						cacheInvariant(t, name, got[i], base[i])
					}
				}
				hits, cachedPages := 0, 0
				for _, resp := range got {
					hits += resp.Stats.ResultCacheHits
					cachedPages += resp.Stats.CachedPages
				}
				// The script repeats the same hot query set, so the tier
				// must actually engage: pinned pages served from DRAM,
				// and (at the big budget) result-cache hits.
				if cachedPages == 0 {
					t.Errorf("n=%d: no pinned-cluster pages served across the script", n)
				}
				if budget == cacheBigBudget && hits == 0 {
					t.Errorf("n=%d: no result-cache hits across the script", n)
				}
			}
		})
	}
}

// TestCachedSeqMatchesBatch checks the sequential IVFSearch entry point
// (which refreshes and scans pins per query) against the batch path on
// one cached engine: same pins, same results. Both bypass the result
// cache (direct API), so the comparison isolates the hot-cluster tier.
func TestCachedSeqMatchesBatch(t *testing.T) {
	seq, err := New(cachedRefCfg(1, cacheSmallBudget), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seq.Close() })
	deployBoth(t, seq.Submit)
	batch, err := New(cachedRefCfg(1, cacheSmallBudget), 64<<20, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { batch.Close() })
	deployBoth(t, batch.Submit)

	opt := SearchOptions{NProbe: 4}
	for round := 0; round < 3; round++ {
		want, _, err := batch.IVFSearchBatch(2, testData.Queries, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range testData.Queries {
			got, _, err := seq.IVFSearch(2, q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want[qi]) {
				t.Fatalf("round %d q%d: sequential cached result diverges", round, qi)
			}
		}
	}
}

// TestCachedMatchesUncachedMutated runs the shared mutation script
// (deploy, appends, deletes with interleaved searches) on cached
// engines, flat and IVF, across shard counts:
//
//   - every response is bit-identical between the cached sharded
//     topology and the cached single-device reference;
//   - results are bit-identical to a fully uncached run, so mutation
//     invalidation never serves stale pins or results;
//   - a duplicate search after the script exercises result-cache hits
//     (the script's own searches all miss: every mutation drops the
//     cache) and must still match the uncached results.
func TestCachedMatchesUncachedMutated(t *testing.T) {
	const budget = 96 << 10
	c := newMutCorpus()
	for _, ivf := range []bool{false, true} {
		name := "flat"
		if ivf {
			name = "ivf"
		}
		t.Run(name, func(t *testing.T) {
			for _, n := range shardCounts {
				plain, err := New(mutRefCfg(n), 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { plain.Close() })
				base := runMutScript(t, plain, c, ivf, 0)

				cachedCfg := mutRefCfg(n)
				cachedCfg.CacheDRAMBytes = budget
				single, err := New(cachedCfg, 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { single.Close() })
				got := runMutScript(t, single, c, ivf, 0)

				shCfg := mutTestCfg()
				shCfg.CacheDRAMBytes = budget
				sh, err := NewSharded(shCfg, n, 64<<20, AllOptions())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { sh.Close() })
				gotSh := runMutScript(t, sh, c, ivf, 0)

				for i := range base {
					name := fmt.Sprintf("n=%d resp=%d", n, i)
					if !reflect.DeepEqual(got[i].Results, base[i].Results) {
						t.Fatalf("%s: cached results diverge from uncached", name)
					}
					if !mutRespEqual(got[i], gotSh[i]) {
						t.Fatalf("%s: sharded diverges from reference: %s vs %s",
							name, briefResp(gotSh[i]), briefResp(got[i]))
					}
					cacheInvariant(t, name, got[i], base[i])
				}

				// Duplicate final search: no mutation in between, so the
				// cached engines may now serve result-cache hits — and
				// must still agree with each other and with uncached.
				searchOp, nprobe := OpcodeSearch, 0
				if ivf {
					searchOp, nprobe = OpcodeIVFSearch, 4
				}
				cmd := HostCommand{Opcode: searchOp, DBID: 1, Queries: testData.Queries, K: 10, NProbe: nprobe}
				want, err := plain.Submit(cmd)
				if err != nil {
					t.Fatal(err)
				}
				r1, err := single.Submit(cmd)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := sh.Submit(cmd)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(r1.Results, want.Results) {
					t.Fatalf("n=%d: post-script cached results diverge from uncached", n)
				}
				if !mutRespEqual(r1, r2) {
					t.Fatalf("n=%d: post-script sharded diverges: %s vs %s", n, briefResp(r2), briefResp(r1))
				}
			}
		})
	}
}
