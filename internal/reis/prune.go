package reis

import (
	"context"
	"slices"
)

// This file implements threshold-propagated top-k pruning
// (SearchOptions.Prune): the scan runs in controller-driven rounds, and
// after each round the controller tightens a per-query distance bound —
// the pool-th smallest live distance seen so far (pool = k ×
// RerankFactor, the rerank-pool size) — that the next round's
// GEN_DIST_PAGE commands carry. Planes drop the TTL transfer of any
// slot whose distance is strictly above the bound, and whole segments
// whose proven lower bound exceeds it are aborted before a page is
// sensed.
//
// Round structure (identical on every topology, which is what makes
// pruned stats topology-equal):
//
//   - Flat: geometrically growing page chunks over the live scan plan —
//     the first round covers planes pages (one wave), each later round
//     doubles the budget. The first round seeds the bound; later rounds
//     scan under it.
//   - IVF: geometrically growing windows (1, 1, 2, 4, ...) over the
//     selected clusters in coarse (dist, pos) rank order. Each cluster
//     ships the triangle-inequality lower bound max(0, d_c - R_c),
//     where d_c is its coarse distance and R_c its binary covering
//     radius (tracked in the mutable ledger), so far clusters abort
//     whole once the bound tightens below d_c - R_c.
//
// Correctness (results bit-identical to the unpruned path): the bound
// used by any command is the pool-th smallest live distance of a subset
// of the final entry stream, so it is >= the pool-th smallest (Dist,
// DADR)-ordered live distance D* of the full stream. Pruning is strict
// (dist > bound), so every entry with dist <= D* — every possible
// rerank-pool member, ties included — survives. quickselectTTL selects
// under the (Dist, DADR) total order, making the pool a pure set
// function of the surviving stream; identical pool, identical rerank,
// identical results. Bounds are only fed live (tombstone-filtered)
// distances: a tombstoned entry's distance could tighten the bound past
// D*, which would prune true pool members. See DESIGN.md, "Threshold
// propagation and pruning".

// boundTracker maintains one query's running top-k pruning threshold: a
// bounded max-heap over the smallest `capacity` live distances seen so
// far. bound() is 0 (= pruning disabled) until the heap fills — before
// pool entries exist, every entry is still a potential pool member. A
// genuinely zero pool-th distance also reports 0: disabling pruning is
// always conservative.
type boundTracker struct {
	capacity int
	heap     []int // max-heap: heap[0] is the pool-th smallest so far
}

func (t *boundTracker) add(d int) {
	if len(t.heap) < t.capacity {
		t.heap = append(t.heap, d)
		// Sift up.
		for i := len(t.heap) - 1; i > 0; {
			p := (i - 1) / 2
			if t.heap[p] >= t.heap[i] {
				break
			}
			t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
			i = p
		}
		return
	}
	if t.capacity == 0 || d >= t.heap[0] {
		return
	}
	// Replace the max and sift down.
	t.heap[0] = d
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(t.heap) && t.heap[l] > t.heap[m] {
			m = l
		}
		if r < len(t.heap) && t.heap[r] > t.heap[m] {
			m = r
		}
		if m == i {
			return
		}
		t.heap[i], t.heap[m] = t.heap[m], t.heap[i]
		i = m
	}
}

// bound returns the current pruning threshold, or 0 while the tracker
// has seen fewer than capacity live entries.
func (t *boundTracker) bound() int {
	if t.capacity == 0 || len(t.heap) < t.capacity {
		return 0
	}
	return t.heap[0]
}

// feedTracker folds the live distances of a freshly merged entry run
// into the tracker (tomb nil = nothing deleted).
func feedTracker(t *boundTracker, entries []TTLEntry, tomb []uint64) {
	for i := range entries {
		if tomb == nil || !bitsetGet(tomb, int(entries[i].DADR)) {
			t.add(entries[i].Dist)
		}
	}
}

// rerankPool is the selection-pool size of one query — the tracker
// capacity threshold pruning pins its bound to.
func rerankPool(k int) int { return k * RerankFactor }

// chunkFlatRounds splits a brute-force scan plan into rounds of
// geometrically growing page budgets: planes pages (one full wave)
// first, then 2×, 4×, ... A range is cut at page boundaries only, so
// every produced SlotRange still maps to whole plane spans. The round
// boundaries depend only on the global plan, the slot geometry and the
// global plane count — identical on every topology.
func chunkFlatRounds(plan []SlotRange, embPerPage, planes int) [][]SlotRange {
	var rounds [][]SlotRange
	var cur []SlotRange
	budget, used := planes, 0
	flush := func() {
		if len(cur) > 0 {
			rounds = append(rounds, cur)
			cur = nil
		}
	}
	for _, r := range plan {
		first := r.First
		for first <= r.Last {
			if used == budget {
				flush()
				used, budget = 0, budget*2
			}
			avail := budget - used
			firstPage, lastPage := first/embPerPage, r.Last/embPerPage
			if pages := lastPage - firstPage + 1; pages <= avail {
				cur = append(cur, SlotRange{First: first, Last: r.Last})
				used += pages
				break
			}
			cut := (firstPage+avail)*embPerPage - 1
			cur = append(cur, SlotRange{First: first, Last: cut})
			used += avail
			first = cut + 1
		}
	}
	flush()
	return rounds
}

// probeWindow returns the half-open cluster-rank window of IVF pruning
// round r: sizes 1, 1, 2, 4, 8, ... — the first cluster alone seeds
// the bound before wider windows scan under it.
func probeWindow(r int) (start, size int) {
	if r == 0 {
		return 0, 1
	}
	return 1 << (r - 1), 1 << (r - 1)
}

// prunedCluster is one selected cluster of a pruned IVF query: its
// cluster index and its proven distance lower bound.
type prunedCluster struct {
	cluster int
	lb      int
}

// clusterLB is the triangle-inequality lower bound of a cluster's best
// possible Hamming distance to the query: coarse distance minus the
// cluster's binary covering radius, floored at 0.
func clusterLB(coarseDist, radius int) int {
	if lb := coarseDist - radius; lb > 0 {
		return lb
	}
	return 0
}

// searchBatchPruned is the round-based brute-force path behind
// SearchOptions.Prune: scan the flat plan in geometric page chunks,
// tightening each query's bound between rounds. Results are
// bit-identical to searchBatch; scan stats differ (fewer survivors,
// extra per-round broadcasts) but are topology-equal among pruned runs.
func (e *Engine) searchBatchPruned(ctx context.Context, db *Database, queries [][]float32, packed [][]byte, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	nq := len(queries)
	rounds := chunkFlatRounds(db.flatSegs(), db.embPerPage, e.SSD.Cfg.Geo.Planes())
	trackers := make([]boundTracker, nq)
	for i := range trackers {
		trackers[i].capacity = rerankPool(k)
	}
	accs := make([][]TTLEntry, nq)
	sts := make([]QueryStats, nq)
	bounds := make([]int, nq)
	tomb := db.tombstones()
	segs := make([][]scanSeg, nq)
	for _, rd := range rounds {
		rs := make([]scanSeg, len(rd))
		for i, r := range rd {
			rs[i] = scanSeg{first: r.First, last: r.Last}
		}
		for qi := range segs {
			segs[qi] = rs
			bounds[qi] = trackers[qi].bound()
		}
		scans, err := e.batchScan(ctx, db, db.rec.Embeddings, packed, segs, e.Opts.DistanceFilter, opt.MetaTag, bounds)
		if err != nil {
			return nil, nil, err
		}
		for qi := range queries {
			st := &sts[qi]
			st.IBCBroadcasts += scans[qi].ibcPlanes
			mark := len(accs[qi])
			for si := range scans[qi].segs {
				seg := &scans[qi].segs[si]
				foldSegStats(seg, st)
				accs[qi] = e.appendMergeByPos(accs[qi], seg.scans)
			}
			feedTracker(&trackers[qi], accs[qi][mark:], tomb)
		}
	}
	results := make([][]DocResult, nq)
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		res, err := e.finish(db, queries[qi], accs[qi], k, opt, &sts[qi])
		if err != nil {
			return nil, nil, err
		}
		results[qi] = res
	}
	return results, sts, nil
}

// ivfSearchBatchPruned is the round-based IVF path behind
// SearchOptions.Prune: an unpruned coarse phase (TTL-C must rank every
// centroid), then the selected clusters scanned in geometric rank
// windows, each carrying its triangle-inequality lower bound so far
// clusters abort whole once the bound tightens past them.
func (e *Engine) ivfSearchBatchPruned(ctx context.Context, db *Database, queries [][]float32, packed [][]byte, k int, opt SearchOptions) ([][]DocResult, []QueryStats, error) {
	nq := len(queries)
	nlist := len(db.rivf)
	nprobe := opt.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	if err := e.refreshCache(db); err != nil {
		return nil, nil, err
	}

	// Coarse phase, identical to the unpruned batch path.
	coarseSegs := make([][]scanSeg, nq)
	wholeCent := []scanSeg{{first: 0, last: nlist - 1}}
	for i := range coarseSegs {
		coarseSegs[i] = wholeCent
	}
	coarse, err := e.batchScan(ctx, db, db.rec.Centroids, packed, coarseSegs, false, nil, nil)
	if err != nil {
		return nil, nil, err
	}

	var radius []int
	if db.mut != nil {
		radius = db.mut.radius
	}
	sts := make([]QueryStats, nq)
	sel := make([][]prunedCluster, nq)
	maxSel := 0
	for qi := range queries {
		st := &sts[qi]
		st.IBCBroadcasts += coarse[qi].ibcPlanes
		seg := &coarse[qi].segs[0]
		st.CoarseWaves = seg.waves
		st.CoarsePages = seg.pages
		st.EntriesScanned += seg.scanned
		st.Survivors += seg.survivors
		st.TTLBytes += seg.ttlBytes
		cents := e.appendMergeByPos(e.scr.cents[:0], seg.scans)
		e.scr.cents = cents
		st.CoarseEntries = len(cents)
		st.SelectInput += len(cents)
		slices.SortFunc(cents, cmpTTLDistPos)
		np := nprobe
		if np > len(cents) {
			np = len(cents)
		}
		sel[qi] = make([]prunedCluster, np)
		for i, c := range cents[:np] {
			db.cache.probe(c.Pos)
			pc := prunedCluster{cluster: c.Pos}
			if radius != nil {
				pc.lb = clusterLB(c.Dist, radius[c.Pos])
			}
			sel[qi][i] = pc
		}
		if np > maxSel {
			maxSel = np
		}
	}

	// Fine phase in cluster-rank windows.
	trackers := make([]boundTracker, nq)
	for i := range trackers {
		trackers[i].capacity = rerankPool(k)
	}
	accs := make([][]TTLEntry, nq)
	bounds := make([]int, nq)
	tomb := db.tombstones()
	segs := make([][]scanSeg, nq)
	for r := 0; ; r++ {
		start, size := probeWindow(r)
		if start >= maxSel {
			break
		}
		for qi := range segs {
			segs[qi] = segs[qi][:0]
			bounds[qi] = trackers[qi].bound()
			list := sel[qi]
			for i := start; i < start+size && i < len(list); i++ {
				pc := db.cache.pinnedFor(list[i].cluster)
				for ri, sr := range db.clusterSegs(list[i].cluster) {
					sg := scanSeg{first: sr.First, last: sr.Last, lb: list[i].lb}
					if pc != nil {
						sg.pin = &pc.ranges[ri]
					}
					segs[qi] = append(segs[qi], sg)
				}
			}
		}
		scans, err := e.batchScan(ctx, db, db.rec.Embeddings, packed, segs, e.Opts.DistanceFilter, opt.MetaTag, bounds)
		if err != nil {
			return nil, nil, err
		}
		for qi := range queries {
			st := &sts[qi]
			st.IBCBroadcasts += scans[qi].ibcPlanes
			mark := len(accs[qi])
			for si := range scans[qi].segs {
				seg := &scans[qi].segs[si]
				foldSegStats(seg, st)
				if seg.pinned {
					accs[qi] = append(accs[qi], seg.cached...)
				} else {
					accs[qi] = e.appendMergeByPos(accs[qi], seg.scans)
				}
			}
			feedTracker(&trackers[qi], accs[qi][mark:], tomb)
		}
	}

	results := make([][]DocResult, nq)
	for qi := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		res, err := e.finish(db, queries[qi], accs[qi], k, opt, &sts[qi])
		if err != nil {
			return nil, nil, err
		}
		results[qi] = res
	}
	return results, sts, nil
}

// foldSegStats accumulates one fine-phase segment outcome into st —
// the per-segment half of foldSegs, shared with the round-based pruned
// paths (which merge entries into per-query accumulators instead of the
// pooled buffer).
func foldSegStats(seg *segScan, st *QueryStats) {
	st.FineWaves += seg.waves
	st.FinePages += seg.pages
	st.EntriesScanned += seg.scanned
	st.Survivors += seg.survivors
	st.PrunedSlots += seg.prunedSlots
	st.PrunedPages += seg.prunedPages
	st.AbortedWaves += seg.abortedWaves
	st.TTLBytes += seg.ttlBytes
	st.CachedPages += seg.cachedPages
	st.CachedSlots += seg.cachedSlots
}
