package reis

import (
	"sync"
	"testing"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/ssd"
)

// FuzzAppendDeleteSearch is the mutability state-machine fuzzer: a
// byte string decodes into an interleaved sequence of append, delete,
// compact and search operations, which is executed simultaneously on a
// single-device engine and a 2-shard router built from the same plan.
// The oracle is the mutability determinism contract itself — every
// response (results, stats, assigned ids, wear) must be bit-identical
// across the two topologies — plus the tombstone invariant: a deleted
// id never surfaces again.
//
// CI replays the seed corpus on every push; the nightly workflow
// fuzzes each target for 10 minutes.

// fuzzWorld is the shared (immutable) corpus the fuzzer mutates from.
type fuzzWorld struct {
	base    *dataset.Dataset
	pool    [][]float32 // appendable vectors (quantization-scale safe)
	poolDoc [][]byte
	cents   [][]float32
	assign  []int // base ++ pool
}

var (
	fuzzOnce sync.Once
	fuzzW    *fuzzWorld
)

func fuzzWorldGet() *fuzzWorld {
	fuzzOnce.Do(func() {
		data := dataset.Generate(dataset.Config{
			Name: "mut-fuzz", N: 240, Dim: 64, Clusters: 8, Queries: 6,
			DocBytes: 64, Seed: 99,
		})
		const nBase = 180
		w := &fuzzWorld{base: data}
		w.pool = scaleInto(data.Vectors[nBase:], maxAbs(data.Vectors[:nBase]))
		w.poolDoc = data.Docs[nBase:]
		corpus := append(append([][]float32{}, data.Vectors[:nBase]...), w.pool...)
		w.cents, w.assign = ann.KMeans(corpus, ann.KMeansConfig{K: 8, Seed: 5})
		w.base.Vectors = data.Vectors[:nBase]
		w.base.Docs = data.Docs[:nBase]
		fuzzW = w
	})
	return fuzzW
}

func fuzzCfg() ssd.Config {
	cfg := ssd.SSD1()
	cfg.Geo.Channels = 2
	cfg.Geo.DiesPerChannel = 1
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 32
	cfg.Geo.PagesPerBlock = 8
	cfg.Geo.PageBytes = 2048
	cfg.Geo.OOBBytes = 640
	cfg.OverprovisionPct = 300
	return cfg
}

func FuzzAppendDeleteSearch(f *testing.F) {
	// Seeds: a search-only run, append-heavy, delete-then-compact, and
	// a mixed flat-database script.
	f.Add([]byte{1, 0, 1})
	f.Add([]byte{1, 2, 3, 2, 2, 0, 1, 3, 0, 4, 2, 0, 0})
	f.Add([]byte{1, 3, 0, 3, 1, 3, 2, 4, 3, 0, 1, 2, 1, 4, 1, 0, 2})
	f.Add([]byte{0, 2, 1, 0, 0, 3, 5, 4, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 48 {
			t.Skip()
		}
		w := fuzzWorldGet()
		ivf := data[0]%2 == 1
		ops := data[1:]

		refCfg := fuzzCfg()
		refCfg.Geo.Channels *= 2
		single, err := New(refCfg, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer single.Close()
		sh, err := NewSharded(fuzzCfg(), 2, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer sh.Close()

		deploy := &DeployConfig{ID: 1, Vectors: w.base.Vectors, Docs: w.base.Docs, DocSlotBytes: 64}
		op := OpcodeDBDeploy
		searchOp, nprobe := OpcodeSearch, 0
		if ivf {
			op = OpcodeIVFDeploy
			deploy.Centroids = w.cents
			deploy.Assign = w.assign[:len(w.base.Vectors)]
			searchOp, nprobe = OpcodeIVFSearch, 3
		}
		both := func(cmd HostCommand) (HostResponse, HostResponse, error) {
			t.Helper()
			a, errA := single.Submit(cmd)
			b, errB := sh.Submit(cmd)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("opcode %#x: single err %v, sharded err %v", cmd.Opcode, errA, errB)
			}
			if errA == nil && !mutRespEqual(a, b) {
				t.Fatalf("opcode %#x: responses diverge\nsingle %s\nshard  %s", cmd.Opcode, briefResp(a), briefResp(b))
			}
			return a, b, errA
		}
		if _, _, err := both(HostCommand{Opcode: op, Deploy: deploy}); err != nil {
			t.Fatal(err)
		}

		liveIDs := make([]int, len(w.base.Vectors))
		for i := range liveIDs {
			liveIDs[i] = i
		}
		deleted := map[int]bool{}
		poolAt := 0
		for i := 0; i+1 < len(ops); i += 2 {
			b, arg := ops[i], int(ops[i+1])
			switch b % 5 {
			case 0, 1: // search
				q := w.base.Queries[arg%len(w.base.Queries)]
				resp, _, err := both(HostCommand{Opcode: searchOp, DBID: 1, Queries: [][]float32{q}, K: 5, NProbe: nprobe})
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range resp.Results[0] {
					if deleted[r.ID] {
						t.Fatalf("deleted id %d surfaced", r.ID)
					}
				}
			case 2: // append 1-3 items from the pool (cycling)
				n := 1 + arg%3
				vecs := make([][]float32, n)
				docs := make([][]byte, n)
				var assign []int
				for j := 0; j < n; j++ {
					k := (poolAt + j) % len(w.pool)
					vecs[j] = w.pool[k]
					docs[j] = w.poolDoc[k]
					if ivf {
						assign = append(assign, w.assign[len(w.base.Vectors)+k])
					}
				}
				poolAt += n
				resp, _, err := both(HostCommand{Opcode: OpcodeAppend, DBID: 1,
					Append: &AppendConfig{Vectors: vecs, Docs: docs, Assign: assign}})
				if err != nil {
					// ErrRegionFull must strike both topologies alike
					// (checked in both); state is unchanged, continue.
					continue
				}
				liveIDs = append(liveIDs, resp.AppendedIDs...)
			case 3: // delete one live id (deterministic pick)
				if len(liveIDs) == 0 {
					continue
				}
				k := arg % len(liveIDs)
				id := liveIDs[k]
				if _, _, err := both(HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: []int{id}}}); err != nil {
					t.Fatal(err)
				}
				liveIDs = append(liveIDs[:k], liveIDs[k+1:]...)
				deleted[id] = true
			case 4: // compact
				thr := []float64{0, 0.25, 0.9, 1}[arg%4]
				if _, _, err := both(HostCommand{Opcode: OpcodeCompact, DBID: 1, Compact: &CompactConfig{MinLiveRatio: thr}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Closing search: the full state must still agree.
		if len(w.base.Queries) > 0 {
			if _, _, err := both(HostCommand{Opcode: searchOp, DBID: 1, Queries: w.base.Queries, K: 5, NProbe: nprobe}); err != nil {
				t.Fatal(err)
			}
		}
	})
}
