package reis

import (
	"reflect"
	"sync"
	"testing"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/ssd"
)

// FuzzAppendDeleteSearch is the mutability state-machine fuzzer: a
// byte string decodes into an interleaved sequence of append, delete,
// compact and search operations, which is executed simultaneously on a
// single-device engine and a 2-shard router built from the same plan.
// The oracle is the mutability determinism contract itself — every
// response (results, stats, assigned ids, wear) must be bit-identical
// across the two topologies — plus the tombstone invariant: a deleted
// id never surfaces again.
//
// CI replays the seed corpus on every push; the nightly workflow
// fuzzes each target for 10 minutes.

// fuzzWorld is the shared (immutable) corpus the fuzzer mutates from.
type fuzzWorld struct {
	base    *dataset.Dataset
	pool    [][]float32 // appendable vectors (quantization-scale safe)
	poolDoc [][]byte
	cents   [][]float32
	assign  []int // base ++ pool
}

var (
	fuzzOnce sync.Once
	fuzzW    *fuzzWorld
)

func fuzzWorldGet() *fuzzWorld {
	fuzzOnce.Do(func() {
		data := dataset.Generate(dataset.Config{
			Name: "mut-fuzz", N: 240, Dim: 64, Clusters: 8, Queries: 6,
			DocBytes: 64, Seed: 99,
		})
		const nBase = 180
		w := &fuzzWorld{base: data}
		w.pool = scaleInto(data.Vectors[nBase:], maxAbs(data.Vectors[:nBase]))
		w.poolDoc = data.Docs[nBase:]
		corpus := append(append([][]float32{}, data.Vectors[:nBase]...), w.pool...)
		w.cents, w.assign = ann.KMeans(corpus, ann.KMeansConfig{K: 8, Seed: 5})
		w.base.Vectors = data.Vectors[:nBase]
		w.base.Docs = data.Docs[:nBase]
		fuzzW = w
	})
	return fuzzW
}

func fuzzCfg() ssd.Config {
	cfg := ssd.SSD1()
	cfg.Geo.Channels = 2
	cfg.Geo.DiesPerChannel = 1
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 32
	cfg.Geo.PagesPerBlock = 8
	cfg.Geo.PageBytes = 2048
	cfg.Geo.OOBBytes = 640
	cfg.OverprovisionPct = 300
	// The DRAM caching tier runs live under the fuzzers: the budget pins
	// about half the fuzz world's clusters and holds a couple of search
	// results, so hot-cluster scans, result-cache hits and mutation
	// invalidation are all exercised on both topologies. A stale hit
	// after a mutation would surface as a deleted id or a response
	// divergence.
	cfg.CacheDRAMBytes = 12 << 10
	return cfg
}

func FuzzAppendDeleteSearch(f *testing.F) {
	// Seeds: a search-only run, append-heavy, delete-then-compact, and
	// a mixed flat-database script.
	f.Add([]byte{1, 0, 1})
	f.Add([]byte{1, 2, 3, 2, 2, 0, 1, 3, 0, 4, 2, 0, 0})
	f.Add([]byte{1, 3, 0, 3, 1, 3, 2, 4, 3, 0, 1, 2, 1, 4, 1, 0, 2})
	f.Add([]byte{0, 2, 1, 0, 0, 3, 5, 4, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 48 {
			t.Skip()
		}
		w := fuzzWorldGet()
		ivf := data[0]%2 == 1
		ops := data[1:]

		refCfg := fuzzCfg()
		refCfg.Geo.Channels *= 2
		single, err := New(refCfg, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer single.Close()
		sh, err := NewSharded(fuzzCfg(), 2, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer sh.Close()

		deploy := &DeployConfig{ID: 1, Vectors: w.base.Vectors, Docs: w.base.Docs, DocSlotBytes: 64}
		op := OpcodeDBDeploy
		searchOp, nprobe := OpcodeSearch, 0
		if ivf {
			op = OpcodeIVFDeploy
			deploy.Centroids = w.cents
			deploy.Assign = w.assign[:len(w.base.Vectors)]
			searchOp, nprobe = OpcodeIVFSearch, 3
		}
		both := func(cmd HostCommand) (HostResponse, HostResponse, error) {
			t.Helper()
			a, errA := single.Submit(cmd)
			b, errB := sh.Submit(cmd)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("opcode %#x: single err %v, sharded err %v", cmd.Opcode, errA, errB)
			}
			if errA == nil && !mutRespEqual(a, b) {
				t.Fatalf("opcode %#x: responses diverge\nsingle %s\nshard  %s", cmd.Opcode, briefResp(a), briefResp(b))
			}
			return a, b, errA
		}
		if _, _, err := both(HostCommand{Opcode: op, Deploy: deploy}); err != nil {
			t.Fatal(err)
		}

		liveIDs := make([]int, len(w.base.Vectors))
		for i := range liveIDs {
			liveIDs[i] = i
		}
		deleted := map[int]bool{}
		poolAt := 0
		for i := 0; i+1 < len(ops); i += 2 {
			b, arg := ops[i], int(ops[i+1])
			switch b % 5 {
			case 0, 1: // search, unpruned and pruned
				q := w.base.Queries[arg%len(w.base.Queries)]
				cmd := HostCommand{Opcode: searchOp, DBID: 1, Queries: [][]float32{q}, K: 5, NProbe: nprobe}
				resp, _, err := both(cmd)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range resp.Results[0] {
					if deleted[r.ID] {
						t.Fatalf("deleted id %d surfaced", r.ID)
					}
				}
				// Re-issue the identical command: with the caching tier on
				// it now hits the result cache on BOTH topologies, and the
				// served copy must match the fresh computation (a stale
				// entry surviving a mutation would surface a deleted id
				// here, or diverge between the topologies).
				rresp, _, err := both(cmd)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rresp.Results, resp.Results) {
					t.Fatalf("repeated search results diverge from first issue")
				}
				// The same search with threshold pruning must return
				// bit-identical results on this mutated state (both()
				// already pins pruned single == pruned sharded).
				cmd.Opt.Prune = true
				presp, _, err := both(cmd)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(presp.Results, resp.Results) {
					t.Fatalf("pruned search results diverge from unpruned")
				}
			case 2: // append 1-3 items from the pool (cycling)
				n := 1 + arg%3
				vecs := make([][]float32, n)
				docs := make([][]byte, n)
				var assign []int
				for j := 0; j < n; j++ {
					k := (poolAt + j) % len(w.pool)
					vecs[j] = w.pool[k]
					docs[j] = w.poolDoc[k]
					if ivf {
						assign = append(assign, w.assign[len(w.base.Vectors)+k])
					}
				}
				poolAt += n
				resp, _, err := both(HostCommand{Opcode: OpcodeAppend, DBID: 1,
					Append: &AppendConfig{Vectors: vecs, Docs: docs, Assign: assign}})
				if err != nil {
					// ErrRegionFull must strike both topologies alike
					// (checked in both); state is unchanged, continue.
					continue
				}
				liveIDs = append(liveIDs, resp.AppendedIDs...)
			case 3: // delete one live id (deterministic pick)
				if len(liveIDs) == 0 {
					continue
				}
				k := arg % len(liveIDs)
				id := liveIDs[k]
				if _, _, err := both(HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: []int{id}}}); err != nil {
					t.Fatal(err)
				}
				liveIDs = append(liveIDs[:k], liveIDs[k+1:]...)
				deleted[id] = true
			case 4: // compact
				thr := []float64{0, 0.25, 0.9, 1}[arg%4]
				if _, _, err := both(HostCommand{Opcode: OpcodeCompact, DBID: 1, Compact: &CompactConfig{MinLiveRatio: thr}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Closing search: the full state must still agree, with and
		// without pruning.
		if len(w.base.Queries) > 0 {
			cmd := HostCommand{Opcode: searchOp, DBID: 1, Queries: w.base.Queries, K: 5, NProbe: nprobe}
			resp, _, err := both(cmd)
			if err != nil {
				t.Fatal(err)
			}
			cmd.Opt.Prune = true
			presp, _, err := both(cmd)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(presp.Results, resp.Results) {
				t.Fatalf("closing pruned search diverges from unpruned")
			}
		}
	})
}

// FuzzPrunedSearch fuzzes the pruning equivalence contract directly:
// a byte string decodes into a mutation prologue (append and delete
// counts) plus search parameters (flat/IVF, k, nprobe), and the oracle
// is TestPrunedMatchesUnpruned's invariant — pruned results are
// bit-identical to unpruned, and the pruned response is bit-identical
// between a 2-shard router and its double-channel single-device
// reference. CI replays the committed seed corpus
// (testdata/fuzz/FuzzPrunedSearch) on every push; nightly fuzzes it.
func FuzzPrunedSearch(f *testing.F) {
	f.Add([]byte{1, 5, 3, 2, 4})
	f.Add([]byte{0, 2, 0, 6, 9})
	f.Add([]byte{1, 1, 8, 0, 0})
	f.Add([]byte{1, 8, 1, 11, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 || len(data) > 32 {
			t.Skip()
		}
		w := fuzzWorldGet()
		ivf := data[0]%2 == 1
		k := 1 + int(data[1])%8
		nprobe := int(data[2]) % 9
		nAppend := int(data[3]) % 12
		nDelete := int(data[4]) % 12

		refCfg := fuzzCfg()
		refCfg.Geo.Channels *= 2
		single, err := New(refCfg, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer single.Close()
		sh, err := NewSharded(fuzzCfg(), 2, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer sh.Close()

		deploy := &DeployConfig{ID: 1, Vectors: w.base.Vectors, Docs: w.base.Docs, DocSlotBytes: 64}
		op := OpcodeDBDeploy
		searchOp := OpcodeSearch
		if ivf {
			op = OpcodeIVFDeploy
			deploy.Centroids = w.cents
			deploy.Assign = w.assign[:len(w.base.Vectors)]
			searchOp = OpcodeIVFSearch
		}
		both := func(cmd HostCommand) HostResponse {
			t.Helper()
			a, errA := single.Submit(cmd)
			b, errB := sh.Submit(cmd)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("opcode %#x: single err %v, sharded err %v", cmd.Opcode, errA, errB)
			}
			if errA != nil {
				t.Fatalf("opcode %#x: %v", cmd.Opcode, errA)
			}
			if !mutRespEqual(a, b) {
				t.Fatalf("opcode %#x: responses diverge\nsingle %s\nshard  %s", cmd.Opcode, briefResp(a), briefResp(b))
			}
			return a
		}
		both(HostCommand{Opcode: op, Deploy: deploy})
		if nAppend > 0 {
			vecs := make([][]float32, nAppend)
			docs := make([][]byte, nAppend)
			var assign []int
			for j := 0; j < nAppend; j++ {
				p := j % len(w.pool)
				vecs[j] = w.pool[p]
				docs[j] = w.poolDoc[p]
				if ivf {
					assign = append(assign, w.assign[len(w.base.Vectors)+p])
				}
			}
			both(HostCommand{Opcode: OpcodeAppend, DBID: 1, Append: &AppendConfig{Vectors: vecs, Docs: docs, Assign: assign}})
		}
		if nDelete > 0 {
			seen := map[int]bool{}
			var ids []int
			for j := 0; j < nDelete; j++ {
				id := (7*j + 3) % len(w.base.Vectors)
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
			both(HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: ids}})
		}

		cmd := HostCommand{Opcode: searchOp, DBID: 1, Queries: w.base.Queries, K: k, NProbe: nprobe}
		want := both(cmd)
		cmd.Opt.Prune = true
		got := both(cmd)
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("pruned results diverge from unpruned (ivf=%v k=%d nprobe=%d append=%d delete=%d)",
				ivf, k, nprobe, nAppend, nDelete)
		}
	})
}

// FuzzCachedSearch fuzzes the DRAM caching tier's transparency contract
// directly: the same interleaved search/append/delete sequence runs on
// one cached and one uncached single-device engine, and every search
// must return bit-identical results. On unpruned misses the
// page-partition invariant is checked exactly — the cached engine's
// flash fine pages plus its DRAM-served pages must equal the uncached
// engine's fine pages — and a result-cache hit must report zero scan
// work. CI replays the committed seed corpus
// (testdata/fuzz/FuzzCachedSearch) on every push; nightly fuzzes it.
func FuzzCachedSearch(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 1, 0, 2})
	f.Add([]byte{1, 1, 0, 0, 3, 2, 0, 1, 1, 4, 0, 0})
	f.Add([]byte{0, 0, 0, 3, 2, 1, 4, 5, 0, 3})
	f.Add([]byte{1, 0, 1, 7, 2, 2, 0, 4, 3, 1, 0, 5, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 48 {
			t.Skip()
		}
		w := fuzzWorldGet()
		ivf := data[0]%2 == 1
		budget := []int64{12 << 10, 64 << 10}[int(data[1])%2]
		ops := data[2:]

		plainCfg := fuzzCfg()
		plainCfg.CacheDRAMBytes = 0
		plain, err := New(plainCfg, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer plain.Close()
		cachedCfg := fuzzCfg()
		cachedCfg.CacheDRAMBytes = budget
		cached, err := New(cachedCfg, 0, AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer cached.Close()

		deploy := &DeployConfig{ID: 1, Vectors: w.base.Vectors, Docs: w.base.Docs, DocSlotBytes: 64}
		op := OpcodeDBDeploy
		searchOp, nprobe := OpcodeSearch, 0
		if ivf {
			op = OpcodeIVFDeploy
			deploy.Centroids = w.cents
			deploy.Assign = w.assign[:len(w.base.Vectors)]
			searchOp, nprobe = OpcodeIVFSearch, 3
		}
		both := func(cmd HostCommand) (HostResponse, HostResponse, error) {
			t.Helper()
			a, errA := plain.Submit(cmd)
			b, errB := cached.Submit(cmd)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("opcode %#x: plain err %v, cached err %v", cmd.Opcode, errA, errB)
			}
			if errA == nil && !reflect.DeepEqual(a.Results, b.Results) {
				t.Fatalf("opcode %#x: cached results diverge from uncached", cmd.Opcode)
			}
			return a, b, errA
		}
		if _, _, err := both(HostCommand{Opcode: op, Deploy: deploy}); err != nil {
			t.Fatal(err)
		}

		liveIDs := make([]int, len(w.base.Vectors))
		for i := range liveIDs {
			liveIDs[i] = i
		}
		deleted := map[int]bool{}
		poolAt := 0
		for i := 0; i+1 < len(ops); i += 2 {
			b, arg := ops[i], int(ops[i+1])
			switch b % 4 {
			case 0, 1: // search (varying query, occasionally pruned)
				q := w.base.Queries[arg%len(w.base.Queries)]
				cmd := HostCommand{Opcode: searchOp, DBID: 1, Queries: [][]float32{q}, K: 5, NProbe: nprobe}
				pruned := b%4 == 1 && arg%3 == 0
				cmd.Opt.Prune = pruned
				pr, cr, err := both(cmd)
				if err != nil {
					t.Fatal(err)
				}
				st := cr.QueryStats[0]
				if st.ResultCacheHits > 0 {
					if st.FinePages != 0 || st.CachedPages != 0 || st.CoarsePages != 0 {
						t.Fatalf("result-cache hit reports scan work: %+v", st)
					}
				} else if !pruned {
					if got, want := st.FinePages+st.CachedPages, pr.QueryStats[0].FinePages; got != want {
						t.Fatalf("page partition violated: %d+%d != %d",
							st.FinePages, st.CachedPages, want)
					}
				}
				for _, r := range cr.Results[0] {
					if deleted[r.ID] {
						t.Fatalf("deleted id %d surfaced from cached engine", r.ID)
					}
				}
			case 2: // append 1-3 items from the pool (cycling)
				n := 1 + arg%3
				vecs := make([][]float32, n)
				docs := make([][]byte, n)
				var assign []int
				for j := 0; j < n; j++ {
					k := (poolAt + j) % len(w.pool)
					vecs[j] = w.pool[k]
					docs[j] = w.poolDoc[k]
					if ivf {
						assign = append(assign, w.assign[len(w.base.Vectors)+k])
					}
				}
				poolAt += n
				resp, _, err := both(HostCommand{Opcode: OpcodeAppend, DBID: 1,
					Append: &AppendConfig{Vectors: vecs, Docs: docs, Assign: assign}})
				if err != nil {
					continue
				}
				liveIDs = append(liveIDs, resp.AppendedIDs...)
			case 3: // delete one live id
				if len(liveIDs) == 0 {
					continue
				}
				k := arg % len(liveIDs)
				id := liveIDs[k]
				if _, _, err := both(HostCommand{Opcode: OpcodeDelete, DBID: 1, Del: &DeleteConfig{IDs: []int{id}}}); err != nil {
					t.Fatal(err)
				}
				liveIDs = append(liveIDs[:k], liveIDs[k+1:]...)
				deleted[id] = true
			}
		}
	})
}
