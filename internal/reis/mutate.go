package reis

import (
	"fmt"

	"reis/internal/flash"
	"reis/internal/ssd"
	"reis/internal/vecmath"
)

// This file implements online mutability: OpcodeAppend writes new
// items out-of-place into wear-selected free GC rows (extending the
// layout's page plan through the region row map), OpcodeDelete
// tombstones entries in a controller-DRAM bitmap consulted by the
// controller tail, and OpcodeCompact is the garbage collector — run
// either synchronously (replay, direct calls) or split by the queue
// scheduler into per-GC-row copy-forward steps that interleave with
// foreground searches (see queue.go). Each step copies the victim
// row's live entries forward to the region tail, erases the row via
// flash.EraseBlock, returns its physical row to the append free pool,
// and commits the coarse-grained FTL remap (region bounds plus the
// row map in the R-DB), so a search between any two steps sees a
// fully consistent plan.
//
// GC rows are erase rows: planes_global * PagesPerBlock consecutive
// global binary-region pages — exactly one flash block per plane on
// every device of the topology. That granularity is what lets one
// logical reclaim erase the same block index on a single device and
// on every shard of a sharded deployment, keeping wear accounting
// bit-identical across topologies.
//
// Two-level split, mirroring planLayout/install:
//
//   - mutState is the geometry-independent half: per-cluster segment
//     lists (the scan plan), the tombstone bitmap, the id→position
//     map, per-GC-row live/dead counts, the logical→physical row map
//     mirror and the free-row pool. Every decision — append placement,
//     wear-aware row selection, victim detection, each copy-forward
//     step — is a pure function of this state plus the target's wear
//     ledger, so the same mutation history yields the same logical
//     outcome on every topology (single device or any shard count).
//   - mutTarget is the physical half: page reads/programs, row-map
//     growth, extent resizes and row reclaims. The single-device
//     engine applies them to its own regions; the sharded router
//     routes each global page to the shard that owns it (page g →
//     shard g mod N, local page g / N), which makes sharded mutation
//     bit-identical to the N-times-channels reference device by
//     construction.
//
// Scan order under GC. Appends allocate page-aligned slot runs at the
// region tail, per cluster in ascending cluster order. A copy-forward
// step relocates a victim row's live entries to the tail, so the scan
// order within a cluster is no longer globally ascending by id — it is
// the original order with relocated runs moved to the end. Search
// results are position-invariant anyway: candidate-pool membership
// ties break on (Dist, DADR) and final ordering is (Dist, ID), neither
// of which depends on where an entry lives (see search.go, ttlLess).

// AppendConfig is the payload of an OpcodeAppend command: new items
// written out-of-place into the database's reserved free blocks.
type AppendConfig struct {
	// Vectors are the new embeddings (host precision, database dim).
	// INT8 rerank copies are quantized under the scale calibrated at
	// deployment (vecmath.ComputeInt8Params over the deploy corpus):
	// components whose magnitude exceeds the deploy corpus' maximum
	// saturate at ±127, degrading rerank precision for such items —
	// redeploy (or compact into a fresh deployment) when the data
	// distribution shifts beyond the calibrated range.
	Vectors [][]float32
	// Docs are the linked document chunks; Docs[i] belongs to
	// Vectors[i] and must fit the database's doc slot size.
	Docs [][]byte
	// Assign maps each item to an IVF cluster (required for IVF
	// databases, forbidden for flat ones). Appends extend the cluster's
	// posting list; the centroid set itself is immutable.
	Assign []int
	// MetaTags optionally tags each item for metadata filtering.
	MetaTags []uint8
}

// DeleteConfig is the payload of an OpcodeDelete command.
type DeleteConfig struct {
	// IDs are the entry ids to tombstone (as reported by DocResult.ID
	// and HostResponse.AppendedIDs). Deleting an unknown or already-
	// deleted id fails the whole command with ErrUnknownID; no partial
	// deletion is applied.
	IDs []int
}

// CompactConfig is the payload of an OpcodeCompact command. Submitted
// through a queue, compaction runs as a background activity: the
// scheduler splits it into per-GC-row copy-forward steps whose device
// time is arbitrated against foreground searches by the stride
// weights, and completes the command when the last step lands. No
// quiesce is required anywhere.
type CompactConfig struct {
	// MinLiveRatio is the GC trigger: a GC row is collected when it
	// holds deleted entries and its live/(live+deleted) ratio is below
	// this threshold. 0 means the default of 0.5; values outside [0, 1]
	// are rejected with ErrBadThreshold.
	MinLiveRatio float64
}

// defaultMinLiveRatio is the GC threshold used when CompactConfig
// leaves MinLiveRatio zero.
const defaultMinLiveRatio = 0.5

// WearStats reports the flash cost of one mutation command: pages
// programmed (appends and GC copy-forward), pages read back by the
// collector, blocks erased, write amplification, and the device's
// resulting wear skew.
type WearStats struct {
	// PagesProgrammed counts flash page programs issued by the command.
	PagesProgrammed int
	// PagesRead counts page reads the collector issued to gather live
	// entries.
	PagesRead int
	// BlockErases counts flash block erases (summed across shards on a
	// sharded host — equal to the single-device reference).
	BlockErases int
	// MaxBlockErase is the highest per-block erase count on the device
	// after the command (the wear-leveling skew figure).
	MaxBlockErase int64
	// CompactedRows is the number of GC rows copied forward and erased
	// (0 means the command collected nothing).
	CompactedRows int
	// CopiedEntries is the number of live entries copied forward.
	CopiedEntries int
	// FreedPages is the net page count returned to the free pool by
	// collection: pages of reclaimed rows minus pages programmed to
	// copy their live entries forward.
	FreedPages int
	// BytesProgrammed is the database's cumulative flash traffic since
	// deployment: every page program of every mutation, including GC
	// copy-forward.
	BytesProgrammed int64
	// PayloadBytes is the cumulative user payload accepted since
	// deployment (embedding slots, INT8 copies and document bytes of
	// appended items).
	PayloadBytes int64
	// WriteAmp is BytesProgrammed / PayloadBytes — the write
	// amplification factor (0 until the first append).
	WriteAmp float64
}

// submitter is the synchronous command surface the convenience
// wrappers build on; Engine and ShardedEngine both provide it.
type submitter interface {
	Submit(HostCommand) (HostResponse, error)
}

// submitAppend / submitDelete / submitCompact are the shared bodies of
// the hosts' Append/Delete/Compact wrappers, so the wrapper shape
// cannot drift between topologies.
func submitAppend(h submitter, dbID int, cfg AppendConfig) ([]int, error) {
	resp, err := h.Submit(HostCommand{Opcode: OpcodeAppend, DBID: dbID, Append: &cfg})
	return resp.AppendedIDs, err
}

func submitDelete(h submitter, dbID int, ids []int) error {
	_, err := h.Submit(HostCommand{Opcode: OpcodeDelete, DBID: dbID, Del: &DeleteConfig{IDs: ids}})
	return err
}

func submitCompact(h submitter, dbID int, minLiveRatio float64) (WearStats, error) {
	resp, err := h.Submit(HostCommand{Opcode: OpcodeCompact, DBID: dbID, Compact: &CompactConfig{MinLiveRatio: minLiveRatio}})
	if err != nil || resp.Wear == nil {
		return WearStats{}, err
	}
	return *resp.Wear, err
}

// mutLayout carries the layout constants mutation logic needs —
// identical on every topology deployed from the same plan.
type mutLayout struct {
	dim         int
	slotBytes   int
	embPerPage  int
	int8Bytes   int
	int8PerPage int
	docBytes    int
	docsPerPage int
	pageBytes   int
	oobBytes    int
	ppb         int // flash pages per block
	rowPages    int // GC row granularity: planes_global * ppb global pages
	nlist       int // 0 for flat
	params      vecmath.Int8Params
}

// mutState is the geometry-independent mutable metadata of one
// deployed database. It lives in controller DRAM next to the R-IVF
// table; the execMu holder of the owning host is its single writer.
type mutState struct {
	lay mutLayout

	// buckets[c] is cluster c's posting list: the binary-region slot
	// ranges scanned for the cluster, in scan order. Nil for flat
	// databases.
	buckets [][]SlotRange

	// centCodes[c] / radius[c] are cluster c's binary centroid code and
	// its current binary covering radius (max Hamming distance from the
	// code to any member, deployed or appended) — the lower-bound input
	// of threshold pruning. Appends only grow a radius; compaction keeps
	// it (conservative: a stale-large radius weakens pruning but never
	// threatens correctness). Nil for flat databases.
	centCodes [][]uint64
	radius    []int

	// flatPlan is the brute-force scan plan: the live slot ranges of
	// the whole binary region in position order — the deployed extent
	// plus one range per append batch or GC relocation (ranges bridge
	// the page-padding gaps between clusters, which scan as skipped
	// invalid-DADR slots). Both flat and IVF databases keep one: a
	// Search command on an IVF database scans everything.
	flatPlan []SlotRange

	// tailSlots is the first free binary slot; appends and copy-forward
	// steps allocate page-aligned runs from here. binPages is the live
	// logical extent — under churn it may exceed the planned capacity,
	// because logical rows grow monotonically while their physical rows
	// recycle through the free pool.
	tailSlots int
	binPages  int

	// int8Slots/docSlots are the next append positions of the rerank
	// and document regions (RADR / DADR address spaces); ids are doc
	// slots, so appended ids continue page-aligned after the last
	// batch.
	int8Slots, int8Pages int
	docSlots, docPages   int

	// Planned capacities (global pages) from the layout. The aux
	// regions gate appends against them (append-only address spaces);
	// the binary region instead gates on free physical rows, since GC
	// recycles its extent.
	capBin, capInt8, capDoc int

	// tomb is the tombstone bitmap, indexed by id; posOf maps ids to
	// their binary slot position (-1: never issued or collected away
	// with its tombstone).
	tomb  []uint64
	posOf []int32

	// Per-logical-GC-row accounting (rowPages consecutive global
	// binary-region pages each). rowLive/rowDead count live and
	// tombstoned entries (padding slots count in neither) — the victim
	// detector's input. rowPhys mirrors the region row map: the
	// physical row each logical row occupies, -1 once reclaimed.
	// rowGone marks reclaimed rows.
	rowLive, rowDead []int
	rowPhys          []int
	rowGone          []bool

	// freeRows is the append/GC free pool: physical rows of the binary
	// region's reserved extent that are erased and unmapped. Placement
	// picks the lowest-wear row (see takeFreeRows); reclaimed rows
	// return here.
	freeRows []int

	// firstFit disables wear-aware placement (lowest physical row
	// index wins) — the PR 5 allocator's behaviour, kept for the wear
	// experiment's baseline.
	firstFit bool

	// bytesFlash / bytesUser accumulate flash traffic and user payload
	// since deployment — the write-amplification inputs.
	bytesFlash, bytesUser int64

	live      int // live entries
	deadCount int // tombstoned, not yet collected
}

// newMutState derives the initial mutable metadata from a layout plan.
// geo must be the global (single-device-equivalent) geometry.
func newMutState(lo *dbLayout, geo flash.Geometry, firstFit bool) *mutState {
	rowPages := geo.Planes() * lo.ppb
	m := &mutState{
		lay: mutLayout{
			dim:         lo.dim,
			slotBytes:   lo.slotBytes,
			embPerPage:  lo.embPerPage,
			int8Bytes:   lo.int8Bytes,
			int8PerPage: lo.int8PerPage,
			docBytes:    lo.docBytes,
			docsPerPage: lo.docsPerPage,
			pageBytes:   geo.PageBytes,
			oobBytes:    geo.OOBBytes,
			ppb:         lo.ppb,
			rowPages:    rowPages,
			nlist:       len(lo.rivf),
			params:      lo.params,
		},
		tailSlots: lo.regionSlots,
		binPages:  lo.embPages,
		int8Slots: lo.n,
		int8Pages: lo.int8Pages,
		docSlots:  lo.n,
		docPages:  lo.docPages,
		capBin:    lo.embCap,
		capInt8:   lo.int8Cap,
		capDoc:    lo.docCap,
		firstFit:  firstFit,
		live:      lo.n,
	}
	m.flatPlan = []SlotRange{{First: 0, Last: lo.regionSlots - 1}}
	if m.lay.nlist > 0 {
		m.buckets = make([][]SlotRange, m.lay.nlist)
		for c, ent := range lo.rivf {
			if ent.First >= 0 {
				m.buckets[c] = []SlotRange{{First: ent.First, Last: ent.Last}}
			}
		}
		// The radius ledger is mutable (appends can grow it); the codes
		// are immutable and shared with the layout.
		m.centCodes = lo.centCodes
		m.radius = append([]int(nil), lo.radius...)
	}
	// Deployed rows are identity-mapped; the rest of the reserved
	// extent is the free pool. Both counts are pure functions of the
	// plan and the global geometry, so every topology starts with the
	// same pool.
	initRows := ceilDiv(lo.embPages, rowPages)
	physRows := ceilDiv(lo.embCap, rowPages)
	m.rowLive = make([]int, initRows)
	m.rowDead = make([]int, initRows)
	m.rowGone = make([]bool, initRows)
	m.rowPhys = make([]int, initRows)
	for r := range m.rowPhys {
		m.rowPhys[r] = r
	}
	for p := initRows; p < physRows; p++ {
		m.freeRows = append(m.freeRows, p)
	}
	m.posOf = make([]int32, lo.n)
	for pos, id := range lo.order {
		if id < 0 {
			continue
		}
		m.posOf[id] = int32(pos)
		m.rowLive[m.rowOf(pos)]++
	}
	return m
}

// rowOf returns the GC row of a binary slot position.
func (m *mutState) rowOf(pos int) int { return pos / m.lay.embPerPage / m.lay.rowPages }

// Live returns the number of live (not tombstoned) entries.
func (m *mutState) Live() int { return m.live }

// flat reports whether the database has no IVF structure.
func (m *mutState) flat() bool { return m.lay.nlist == 0 }

func alignUp(x, a int) int { return (x + a - 1) / a * a }

func bitsetGet(b []uint64, i int) bool {
	w := i >> 6
	return w < len(b) && b[w]>>(uint(i)&63)&1 != 0
}

func bitsetSet(b []uint64, i int) []uint64 {
	w := i >> 6
	for w >= len(b) {
		b = append(b, 0)
	}
	b[w] |= 1 << (uint(i) & 63)
	return b
}

func bitsetClear(b []uint64, i int) {
	if w := i >> 6; w < len(b) {
		b[w] &^= 1 << (uint(i) & 63)
	}
}

// mutTarget is the physical half of a mutation: how pages of the
// database's regions are read, programmed, grown and reclaimed. Page
// and row indices are global (single-device-equivalent).
type mutTarget interface {
	// readBinPage senses global binary-region page g through the
	// conventional path (data and OOB are freshly allocated).
	readBinPage(g int) (data, oob []byte, err error)
	// writeBinPage / writeInt8Page / writeDocPage program one global
	// page. The page must be erased (out-of-place writes only).
	writeBinPage(g int, data, oob []byte) error
	writeInt8Page(g int, data []byte) error
	writeDocPage(g int, data []byte) error
	// growBin binds the given physical rows to the next logical rows of
	// the binary region's row map and commits the new live extent
	// (global pages) — the per-step coarse FTL remap (R-DB update).
	growBin(binPages int, phys []int) error
	// growAux commits new live extents for the INT8 and document
	// regions; -1 keeps a region unchanged.
	growAux(int8Pages, docPages int) error
	// reclaimBinRow erases logical GC row row of the binary region (one
	// block per plane on every device) and unmaps it, returning the
	// number of block erases performed.
	reclaimBinRow(row int) (erases int, err error)
	// rowWear reports the highest per-block erase count across the
	// blocks of physical binary-region row phys — the wear-aware
	// placement key.
	rowWear(phys int) int64
	// maxWear reports the device's (or shard set's) highest per-block
	// erase count.
	maxWear() int64
}

// fillWear completes a command's WearStats with the device wear skew
// and the database's cumulative write-amplification figures.
func (m *mutState) fillWear(w *WearStats, t mutTarget) {
	w.MaxBlockErase = t.maxWear()
	w.BytesProgrammed = m.bytesFlash
	w.PayloadBytes = m.bytesUser
	if m.bytesUser > 0 {
		w.WriteAmp = float64(w.BytesProgrammed) / float64(w.PayloadBytes)
	}
}

// takeFreeRows removes and returns k physical rows from the free pool.
// Wear-leveled placement picks the row with the lowest wear (ties:
// lowest physical index); firstFit picks the lowest physical index —
// either way the choice is a deterministic function of the pool's
// contents and the wear ledger, independent of the pool's order, so
// every topology picks the same rows.
func (m *mutState) takeFreeRows(t mutTarget, k int) []int {
	sel := make([]int, 0, k)
	for ; k > 0; k-- {
		best := 0
		for i := 1; i < len(m.freeRows); i++ {
			a, b := m.freeRows[i], m.freeRows[best]
			if m.firstFit {
				if a < b {
					best = i
				}
				continue
			}
			wa, wb := t.rowWear(a), t.rowWear(b)
			if wa < wb || (wa == wb && a < b) {
				best = i
			}
		}
		sel = append(sel, m.freeRows[best])
		m.freeRows = append(m.freeRows[:best], m.freeRows[best+1:]...)
	}
	return sel
}

// mutAppend executes one append: placement and metadata are computed
// from the geometry-independent state, then the fresh pages are
// programmed through the target. The whole command is validated before
// any write, so a failed append leaves the database untouched.
func mutAppend(m *mutState, t mutTarget, cfg *AppendConfig) ([]int, *WearStats, error) {
	lay := &m.lay
	n := len(cfg.Vectors)
	for i, v := range cfg.Vectors {
		if len(v) != lay.dim {
			return nil, nil, fmt.Errorf("%w (append vector %d has dim %d, database dim %d)",
				ErrQueryDims, i, len(v), lay.dim)
		}
	}
	for i, d := range cfg.Docs {
		if len(d) > lay.docBytes {
			return nil, nil, fmt.Errorf("reis: append doc %d is %dB > slot %dB", i, len(d), lay.docBytes)
		}
	}
	if m.flat() {
		if len(cfg.Assign) != 0 {
			return nil, nil, fmt.Errorf("%w (cluster assignment for a flat database)", ErrBadAssign)
		}
	} else {
		if len(cfg.Assign) != n {
			return nil, nil, fmt.Errorf("%w (%d assignments for %d vectors)", ErrBadAssign, len(cfg.Assign), n)
		}
		for i, c := range cfg.Assign {
			if c < 0 || c >= lay.nlist {
				return nil, nil, fmt.Errorf("%w (item %d assigned to cluster %d of %d)", ErrBadAssign, i, c, lay.nlist)
			}
		}
	}

	// Ids continue the document region's slot addressing, page-aligned
	// so the batch's doc and INT8 slots land on fresh pages.
	idStart := alignUp(m.docSlots, lay.docsPerPage)
	newDocSlots := idStart + n
	newDocPages := ceilDiv(newDocSlots, lay.docsPerPage)
	rStart := alignUp(m.int8Slots, lay.int8PerPage)
	newInt8Slots := rStart + n
	newInt8Pages := ceilDiv(newInt8Slots, lay.int8PerPage)

	// Binary placement: one page-aligned slot run per cluster present
	// in the batch, clusters ascending, items in batch (= ascending id)
	// order.
	type group struct {
		cluster int
		items   []int // batch indices
		start   int   // first slot of the run
	}
	var groups []group
	if m.flat() {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		groups = []group{{cluster: 0, items: items}}
	} else {
		byCluster := make(map[int][]int, 8)
		for i, c := range cfg.Assign {
			byCluster[c] = append(byCluster[c], i)
		}
		for c := 0; c < lay.nlist; c++ {
			if items, ok := byCluster[c]; ok {
				groups = append(groups, group{cluster: c, items: items})
			}
		}
	}
	cursor := m.tailSlots
	for gi := range groups {
		groups[gi].start = alignUp(cursor, lay.embPerPage)
		cursor = groups[gi].start + len(groups[gi].items)
	}
	newTail := cursor
	newBinPages := ceilDiv(newTail, lay.embPerPage)

	// Logical capacity gates — before any physical effect. The aux
	// regions check their planned (geometry-independent) capacities;
	// the binary region checks the free-row pool, which GC refills, so
	// sustained churn never spuriously fills the region while live data
	// fits.
	neededRows := ceilDiv(newBinPages, lay.rowPages)
	growth := neededRows - len(m.rowPhys)
	switch {
	case growth > len(m.freeRows):
		return nil, nil, fmt.Errorf("%w (embedding region: %d fresh GC rows needed, %d free)", ssd.ErrRegionFull, growth, len(m.freeRows))
	case newInt8Pages > m.capInt8:
		return nil, nil, fmt.Errorf("%w (INT8 region: %d pages of %d planned)", ssd.ErrRegionFull, newInt8Pages, m.capInt8)
	case newDocPages > m.capDoc:
		return nil, nil, fmt.Errorf("%w (document region: %d pages of %d planned)", ssd.ErrRegionFull, newDocPages, m.capDoc)
	}
	var physSel []int
	if growth > 0 {
		physSel = m.takeFreeRows(t, growth)
	}
	if err := t.growBin(newBinPages, physSel); err != nil {
		return nil, nil, err
	}
	if err := t.growAux(newInt8Pages, newDocPages); err != nil {
		return nil, nil, err
	}
	for _, p := range physSel {
		m.rowPhys = append(m.rowPhys, p)
		m.rowGone = append(m.rowGone, false)
		m.rowLive = append(m.rowLive, 0)
		m.rowDead = append(m.rowDead, 0)
	}

	wear := &WearStats{}
	program := func(write func() error) error {
		if err := write(); err != nil {
			return err
		}
		wear.PagesProgrammed++
		m.bytesFlash += int64(lay.pageBytes)
		return nil
	}
	// Document pages.
	for p := m.docPages; p < newDocPages; p++ {
		page := make([]byte, lay.pageBytes)
		for s := 0; s < lay.docsPerPage; s++ {
			slot := p*lay.docsPerPage + s
			if slot >= idStart && slot < idStart+n {
				copy(page[s*lay.docBytes:(s+1)*lay.docBytes], cfg.Docs[slot-idStart])
			}
		}
		if err := program(func() error { return t.writeDocPage(p, page) }); err != nil {
			return nil, nil, err
		}
	}
	// INT8 rerank pages.
	for p := m.int8Pages; p < newInt8Pages; p++ {
		page := make([]byte, lay.pageBytes)
		for s := 0; s < lay.int8PerPage; s++ {
			slot := p*lay.int8PerPage + s
			if slot >= rStart && slot < rStart+n {
				q8 := lay.params.Int8Quantize(cfg.Vectors[slot-rStart], nil)
				copy(page[s*lay.int8Bytes:(s+1)*lay.int8Bytes], vecmath.PackInt8Bytes(q8, nil))
			}
		}
		if err := program(func() error { return t.writeInt8Page(p, page) }); err != nil {
			return nil, nil, err
		}
	}
	// Binary pages, one run per cluster group.
	for _, g := range groups {
		end := g.start + len(g.items)
		for p := g.start / lay.embPerPage; p <= (end-1)/lay.embPerPage; p++ {
			page := make([]byte, lay.pageBytes)
			oob := make([]byte, lay.oobBytes)
			for s := 0; s < lay.embPerPage; s++ {
				pos := p*lay.embPerPage + s
				link := encodeLinkage(InvalidDADR, 0, 0)
				if pos >= g.start && pos < end {
					i := g.items[pos-g.start]
					code := vecmath.PackBinaryBytes(vecmath.BinaryQuantize(cfg.Vectors[i], nil), nil)
					copy(page[s*lay.slotBytes:(s+1)*lay.slotBytes], code)
					var tag uint8
					if cfg.MetaTags != nil {
						tag = cfg.MetaTags[i]
					}
					link = encodeLinkage(uint32(idStart+i), uint32(rStart+i), tag)
				}
				copy(oob[s*oobBytesPerSlot:(s+1)*oobBytesPerSlot], link)
			}
			if err := program(func() error { return t.writeBinPage(p, page, oob) }); err != nil {
				return nil, nil, err
			}
		}
	}

	// Commit the metadata: posting-list segments, id→position map,
	// per-row live counts, extents, payload accounting.
	for w := len(m.posOf); w < newDocSlots; w++ {
		m.posOf = append(m.posOf, -1)
	}
	ids := make([]int, n)
	for _, g := range groups {
		for j, i := range g.items {
			pos := g.start + j
			ids[i] = idStart + i
			m.posOf[idStart+i] = int32(pos)
			m.rowLive[m.rowOf(pos)]++
		}
		if !m.flat() {
			m.buckets[g.cluster] = append(m.buckets[g.cluster], SlotRange{First: g.start, Last: g.start + len(g.items) - 1})
			// Grow the cluster's covering radius so the pruning lower
			// bound stays sound for the appended members.
			for _, i := range g.items {
				if d := vecmath.Hamming(m.centCodes[g.cluster], vecmath.BinaryQuantize(cfg.Vectors[i], nil)); d > m.radius[g.cluster] {
					m.radius[g.cluster] = d
				}
			}
		}
	}
	// The brute-force plan gains one range per batch, bridging the
	// inter-cluster page padding (written as invalid-DADR slots above).
	m.flatPlan = append(m.flatPlan, SlotRange{First: groups[0].start, Last: newTail - 1})
	m.tailSlots = newTail
	m.binPages = newBinPages
	m.int8Slots = newInt8Slots
	m.int8Pages = newInt8Pages
	m.docSlots = newDocSlots
	m.docPages = newDocPages
	m.live += n
	for _, d := range cfg.Docs {
		m.bytesUser += int64(len(d))
	}
	m.bytesUser += int64(n) * int64(lay.slotBytes+lay.int8Bytes)
	m.fillWear(wear, t)
	return ids, wear, nil
}

// mutDelete tombstones the given ids. The whole batch is validated —
// bounds, known ids, no double or duplicate deletes — before any bit
// is set, so a failed delete changes nothing.
func mutDelete(m *mutState, ids []int) error {
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(m.posOf) || m.posOf[id] < 0 || bitsetGet(m.tomb, id) {
			return fmt.Errorf("%w (%d)", ErrUnknownID, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w (%d repeated in one command)", ErrUnknownID, id)
		}
		seen[id] = struct{}{}
	}
	for _, id := range ids {
		m.tomb = bitsetSet(m.tomb, id)
		row := m.rowOf(int(m.posOf[id]))
		m.rowLive[row]--
		m.rowDead[row]++
		m.live--
		m.deadCount++
	}
	return nil
}

// liveEntry is one live binary-region entry gathered by the collector.
type liveEntry struct {
	code []byte
	id   uint32
	radr uint32
	tag  uint8
}

// mutGCVictims returns the GC rows whose live ratio is below the
// threshold, in ascending row order — the step plan of one compaction
// command. Pure function of the geometry-independent state.
func mutGCVictims(m *mutState, minLiveRatio float64) []int {
	thr := minLiveRatio
	if thr == 0 {
		thr = defaultMinLiveRatio
	}
	var rows []int
	for r := range m.rowLive {
		if !m.rowGone[r] && m.rowDead[r] > 0 && float64(m.rowLive[r]) < thr*float64(m.rowLive[r]+m.rowDead[r]) {
			rows = append(rows, r)
		}
	}
	return rows
}

// trimRanges removes the slot interval [first, last] from a segment
// list, splitting partially overlapping segments.
func trimRanges(segs []SlotRange, first, last int) []SlotRange {
	var out []SlotRange
	for _, sr := range segs {
		if sr.Last < first || sr.First > last {
			out = append(out, sr)
			continue
		}
		if sr.First < first {
			out = append(out, SlotRange{First: sr.First, Last: first - 1})
		}
		if sr.Last > last {
			out = append(out, SlotRange{First: last + 1, Last: sr.Last})
		}
	}
	return out
}

// mutGCStep collects one GC row: its live entries are copied forward
// into page-aligned runs at the region tail (per cluster, ascending,
// preserving their relative scan order), the row's blocks are erased,
// its physical row returns to the free pool, and the scan plans,
// position map and tombstones are committed — all under the host's
// execMu, so a search before or after the step sees a fully consistent
// state, bit-identical in results to the never-collected one. Rows the
// victim list named that have since become empty are skipped (nil
// error, no stats).
func mutGCStep(m *mutState, t mutTarget, row int, wear *WearStats) error {
	lay := &m.lay
	if row < 0 || row >= len(m.rowPhys) || m.rowGone[row] || m.rowDead[row] == 0 {
		return nil
	}
	slotsPerRow := lay.embPerPage * lay.rowPages
	rowFirst := row * slotsPerRow
	rowLast := rowFirst + slotsPerRow - 1

	// Gather the row's slots, bucket by bucket in scan order. A flat
	// database has a single bucket: its brute-force plan. Runs are
	// page-aligned per cluster, so no page is read twice.
	plans := m.buckets
	if m.flat() {
		plans = [][]SlotRange{m.flatPlan}
	}
	type gcGroup struct {
		bucket  int
		entries []liveEntry
		start   int
	}
	var groups []gcGroup
	var deadIDs []uint32
	for b, segs := range plans {
		var es []liveEntry
		for _, sr := range segs {
			if sr.Last < rowFirst || sr.First > rowLast {
				continue
			}
			first, last := max(sr.First, rowFirst), min(sr.Last, rowLast)
			firstPage, lastPage := first/lay.embPerPage, last/lay.embPerPage
			for p := firstPage; p <= lastPage; p++ {
				data, oob, err := t.readBinPage(p)
				if err != nil {
					return err
				}
				wear.PagesRead++
				lo, hi := 0, lay.embPerPage-1
				if p == firstPage {
					lo = first % lay.embPerPage
				}
				if p == lastPage {
					hi = last % lay.embPerPage
				}
				for s := lo; s <= hi; s++ {
					dadr, radr, tag := decodeLinkage(oob[s*oobBytesPerSlot : (s+1)*oobBytesPerSlot])
					if dadr == InvalidDADR {
						continue
					}
					if bitsetGet(m.tomb, int(dadr)) {
						deadIDs = append(deadIDs, dadr)
						continue
					}
					code := make([]byte, lay.slotBytes)
					copy(code, data[s*lay.slotBytes:(s+1)*lay.slotBytes])
					es = append(es, liveEntry{code: code, id: dadr, radr: radr, tag: tag})
				}
			}
		}
		if len(es) > 0 {
			groups = append(groups, gcGroup{bucket: b, entries: es})
		}
	}

	// Copy-forward placement at the tail. If the victim is the tail row
	// itself, move the cursor past it: nothing may be programmed into
	// (or subsequently appended to) the row about to be erased.
	cursor := m.tailSlots
	if cursor > rowFirst && cursor <= rowLast+1 {
		cursor = rowLast + 1
	}
	total := 0
	for gi := range groups {
		groups[gi].start = alignUp(cursor, lay.embPerPage)
		cursor = groups[gi].start + len(groups[gi].entries)
		total += len(groups[gi].entries)
	}
	newTail := cursor
	newBinPages := ceilDiv(newTail, lay.embPerPage)
	neededRows := ceilDiv(newBinPages, lay.rowPages)
	growth := neededRows - len(m.rowPhys)
	var physSel []int
	if growth > 0 {
		if growth > len(m.freeRows) {
			return fmt.Errorf("%w (GC copy-forward needs %d fresh rows, %d free)", ssd.ErrRegionFull, growth, len(m.freeRows))
		}
		physSel = m.takeFreeRows(t, growth)
	}
	if err := t.growBin(newBinPages, physSel); err != nil {
		return err
	}
	for _, p := range physSel {
		m.rowPhys = append(m.rowPhys, p)
		m.rowGone = append(m.rowGone, false)
		m.rowLive = append(m.rowLive, 0)
		m.rowDead = append(m.rowDead, 0)
	}

	// Program the relocated runs (out-of-place: each starts on a fresh
	// page past the old tail), then erase and unmap the victim row.
	stepProgrammed := 0
	for _, g := range groups {
		end := g.start + len(g.entries)
		for p := g.start / lay.embPerPage; p <= (end-1)/lay.embPerPage; p++ {
			page := make([]byte, lay.pageBytes)
			oob := make([]byte, lay.oobBytes)
			for s := 0; s < lay.embPerPage; s++ {
				pos := p*lay.embPerPage + s
				link := encodeLinkage(InvalidDADR, 0, 0)
				if pos >= g.start && pos < end {
					e := g.entries[pos-g.start]
					copy(page[s*lay.slotBytes:(s+1)*lay.slotBytes], e.code)
					link = encodeLinkage(e.id, e.radr, e.tag)
				}
				copy(oob[s*oobBytesPerSlot:(s+1)*oobBytesPerSlot], link)
			}
			if err := t.writeBinPage(p, page, oob); err != nil {
				return err
			}
			wear.PagesProgrammed++
			stepProgrammed++
			m.bytesFlash += int64(lay.pageBytes)
		}
	}
	erases, err := t.reclaimBinRow(row)
	wear.BlockErases += erases
	if err != nil {
		return err
	}

	// Commit: trim the victim interval out of every scan plan, append
	// the relocated runs, rebuild the touched position-map entries,
	// drop the collected tombstones, return the physical row.
	m.flatPlan = trimRanges(m.flatPlan, rowFirst, rowLast)
	if !m.flat() {
		for b := range m.buckets {
			m.buckets[b] = trimRanges(m.buckets[b], rowFirst, rowLast)
		}
	}
	for _, g := range groups {
		if !m.flat() {
			m.buckets[g.bucket] = append(m.buckets[g.bucket], SlotRange{First: g.start, Last: g.start + len(g.entries) - 1})
		}
		for j, e := range g.entries {
			pos := g.start + j
			m.posOf[e.id] = int32(pos)
			m.rowLive[m.rowOf(pos)]++
		}
	}
	if total > 0 {
		m.flatPlan = append(m.flatPlan, SlotRange{First: groups[0].start, Last: newTail - 1})
	}
	for _, id := range deadIDs {
		bitsetClear(m.tomb, int(id))
		m.posOf[id] = -1
	}
	m.deadCount -= len(deadIDs)
	m.rowLive[row] = 0
	m.rowDead[row] = 0
	m.rowGone[row] = true
	m.freeRows = append(m.freeRows, m.rowPhys[row])
	m.rowPhys[row] = -1
	m.tailSlots = newTail
	m.binPages = newBinPages
	wear.CompactedRows++
	wear.CopiedEntries += total
	wear.FreedPages += lay.rowPages - stepProgrammed
	return nil
}

// mutCompact runs a whole compaction synchronously: every victim row
// is collected in ascending order, one copy-forward step each. The
// queue scheduler runs the same steps interleaved with searches
// (queue.go); both paths visit the same victims in the same order, so
// they commit identical state and identical WearStats.
func mutCompact(m *mutState, t mutTarget, minLiveRatio float64) (*WearStats, error) {
	wear := &WearStats{}
	for _, row := range mutGCVictims(m, minLiveRatio) {
		if err := mutGCStep(m, t, row, wear); err != nil {
			return nil, err
		}
	}
	m.fillWear(wear, t)
	return wear, nil
}

// engineMutTarget applies mutations to a single device's own regions.
// The engine's execMu holder owns it.
type engineMutTarget struct {
	e  *Engine
	db *Database
}

func (t engineMutTarget) readBinPage(g int) ([]byte, []byte, error) {
	return t.e.SSD.ReadRegionPage(t.db.rec.Embeddings, g)
}

func (t engineMutTarget) writeBinPage(g int, data, oob []byte) error {
	return t.e.SSD.WriteRegionPage(t.db.rec.Embeddings, g, data, oob)
}

func (t engineMutTarget) writeInt8Page(g int, data []byte) error {
	return t.e.SSD.WriteRegionPage(t.db.rec.Int8s, g, data, nil)
}

func (t engineMutTarget) writeDocPage(g int, data []byte) error {
	return t.e.SSD.WriteRegionPage(t.db.rec.Documents, g, data, nil)
}

func (t engineMutTarget) growBin(binPages int, phys []int) error {
	if len(phys) > 0 {
		if err := t.e.SSD.MapRegionRows(&t.db.rec, &t.db.rec.Embeddings, phys); err != nil {
			return err
		}
	}
	return t.e.SSD.ResizeRegion(&t.db.rec, &t.db.rec.Embeddings, binPages)
}

func (t engineMutTarget) growAux(int8Pages, docPages int) error {
	if int8Pages >= 0 {
		if err := t.e.SSD.ResizeRegion(&t.db.rec, &t.db.rec.Int8s, int8Pages); err != nil {
			return err
		}
	}
	if docPages >= 0 {
		if err := t.e.SSD.ResizeRegion(&t.db.rec, &t.db.rec.Documents, docPages); err != nil {
			return err
		}
	}
	return nil
}

func (t engineMutTarget) reclaimBinRow(row int) (int, error) {
	return t.e.SSD.ReclaimRegionRow(&t.db.rec, &t.db.rec.Embeddings, row)
}

func (t engineMutTarget) rowWear(phys int) int64 {
	ppb := t.e.SSD.Cfg.Geo.PagesPerBlock
	return t.e.SSD.Dev.BlockMaxErase(t.db.rec.Embeddings.StartStripe/ppb + phys)
}

func (t engineMutTarget) maxWear() int64 { return t.e.SSD.Dev.MaxEraseCount() }

// shardMutTarget routes each global page of a mutation to the shard
// that owns it (page g → shard g mod N, local page g / N), taking the
// owning engine's execution lock per call. The router's execMu holder
// owns it; sharded outcomes are bit-identical to the single-device
// reference because the logical plan is shared and the striping is the
// deploy striping. GC rows are topology-aligned by construction: one
// logical row is block b on every plane of every shard, so reclaiming
// row r erases the same block set the reference device would.
type shardMutTarget struct {
	sh *ShardedEngine
	db *ShardedDatabase
}

func (t shardMutTarget) onOwner(g int, f func(e *Engine, local *Database, l int) error) error {
	n := len(t.sh.shards)
	owner, l := g%n, g/n
	e := t.sh.shards[owner].e
	e.execMu.Lock()
	defer e.execMu.Unlock()
	return f(e, t.db.locals[owner], l)
}

func (t shardMutTarget) readBinPage(g int) (data, oob []byte, err error) {
	err = t.onOwner(g, func(e *Engine, local *Database, l int) error {
		data, oob, err = e.SSD.ReadRegionPage(local.rec.Embeddings, l)
		return err
	})
	return data, oob, err
}

func (t shardMutTarget) writeBinPage(g int, data, oob []byte) error {
	return t.onOwner(g, func(e *Engine, local *Database, l int) error {
		return e.SSD.WriteRegionPage(local.rec.Embeddings, l, data, oob)
	})
}

func (t shardMutTarget) writeInt8Page(g int, data []byte) error {
	return t.onOwner(g, func(e *Engine, local *Database, l int) error {
		return e.SSD.WriteRegionPage(local.rec.Int8s, l, data, nil)
	})
}

func (t shardMutTarget) writeDocPage(g int, data []byte) error {
	return t.onOwner(g, func(e *Engine, local *Database, l int) error {
		return e.SSD.WriteRegionPage(local.rec.Documents, l, data, nil)
	})
}

func (t shardMutTarget) growBin(binPages int, phys []int) error {
	n := len(t.sh.shards)
	for s, dev := range t.sh.shards {
		local := t.db.locals[s]
		dev.e.execMu.Lock()
		err := func() error {
			if len(phys) > 0 {
				if err := dev.e.SSD.MapRegionRows(&local.rec, &local.rec.Embeddings, phys); err != nil {
					return err
				}
			}
			if err := dev.e.SSD.ResizeRegion(&local.rec, &local.rec.Embeddings, shardPages(binPages, s, n)); err != nil {
				return err
			}
			// The shard serves explicit scan ranges over its owned
			// pages; keep its addressable slot bound in step.
			local.regionSlots = local.rec.Embeddings.Pages() * local.embPerPage
			return nil
		}()
		dev.e.execMu.Unlock()
		if err != nil {
			return fmt.Errorf("reis: shard %d: %w", s, err)
		}
	}
	return nil
}

func (t shardMutTarget) growAux(int8Pages, docPages int) error {
	n := len(t.sh.shards)
	for s, dev := range t.sh.shards {
		local := t.db.locals[s]
		dev.e.execMu.Lock()
		err := func() error {
			if int8Pages >= 0 {
				if err := dev.e.SSD.ResizeRegion(&local.rec, &local.rec.Int8s, shardPages(int8Pages, s, n)); err != nil {
					return err
				}
			}
			if docPages >= 0 {
				if err := dev.e.SSD.ResizeRegion(&local.rec, &local.rec.Documents, shardPages(docPages, s, n)); err != nil {
					return err
				}
			}
			return nil
		}()
		dev.e.execMu.Unlock()
		if err != nil {
			return fmt.Errorf("reis: shard %d: %w", s, err)
		}
	}
	return nil
}

func (t shardMutTarget) reclaimBinRow(row int) (int, error) {
	erases := 0
	for s, dev := range t.sh.shards {
		local := t.db.locals[s]
		dev.e.execMu.Lock()
		n, err := dev.e.SSD.ReclaimRegionRow(&local.rec, &local.rec.Embeddings, row)
		dev.e.execMu.Unlock()
		erases += n
		if err != nil {
			return erases, fmt.Errorf("reis: shard %d: %w", s, err)
		}
	}
	return erases, nil
}

func (t shardMutTarget) rowWear(phys int) int64 {
	ppb := t.sh.cfg.Geo.PagesPerBlock
	var m int64
	for s, dev := range t.sh.shards {
		blk := t.db.locals[s].rec.Embeddings.StartStripe/ppb + phys
		if w := dev.e.SSD.Dev.BlockMaxErase(blk); w > m {
			m = w
		}
	}
	return m
}

func (t shardMutTarget) maxWear() int64 { return t.maxEraseCount() }

func (t shardMutTarget) maxEraseCount() int64 {
	var m int64
	for _, dev := range t.sh.shards {
		if n := dev.e.SSD.Dev.MaxEraseCount(); n > m {
			m = n
		}
	}
	return m
}
