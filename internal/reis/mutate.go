package reis

import (
	"fmt"

	"reis/internal/flash"
	"reis/internal/ssd"
	"reis/internal/vecmath"
)

// This file implements online mutability: OpcodeAppend writes new
// items out-of-place into the regions' reserved free blocks (extending
// the layout's page plan), OpcodeDelete tombstones entries in a
// controller-DRAM bitmap consulted by the controller tail, and
// OpcodeCompact is the explicit-quiesce garbage collector — it detects
// GC rows whose live ratio dropped below a threshold, copies every
// live entry forward into a canonically rebuilt binary region, erases
// the old extent via flash.EraseBlock, and commits the coarse-grained
// FTL remap (region bounds in the R-DB).
//
// Two-level split, mirroring planLayout/install:
//
//   - mutState is the geometry-independent half: per-cluster segment
//     lists (the scan plan), the tombstone bitmap, the id→position
//     map, per-GC-row live/dead counts, and the planned region
//     capacities. Every decision — append placement, victim
//     detection, the compacted layout — is a pure function of this
//     state, so the same mutation history yields the same logical
//     outcome on every topology (single device or any shard count).
//   - mutTarget is the physical half: page reads/programs, extent
//     resizes and block erases. The single-device engine applies them
//     to its own regions; the sharded router routes each global page
//     to the shard that owns it (page g → shard g mod N, local page
//     g / N), which makes sharded mutation bit-identical to the
//     N-times-channels reference device by construction.
//
// Order preservation. Appends allocate page-aligned slot runs at the
// region tail, per cluster in ascending cluster order, so the scan
// order within every cluster stays ascending by id. Compaction rebuilds
// the region in exactly that order (clusters ascending, live entries in
// scan order), so the merged TTL entry sequence a query sees — and
// therefore every search result — is unchanged by compaction; only
// page/wave stats shrink. See DESIGN.md, "Mutability and garbage
// collection".

// AppendConfig is the payload of an OpcodeAppend command: new items
// written out-of-place into the database's reserved free blocks.
type AppendConfig struct {
	// Vectors are the new embeddings (host precision, database dim).
	// INT8 rerank copies are quantized under the scale calibrated at
	// deployment (vecmath.ComputeInt8Params over the deploy corpus):
	// components whose magnitude exceeds the deploy corpus' maximum
	// saturate at ±127, degrading rerank precision for such items —
	// redeploy (or compact into a fresh deployment) when the data
	// distribution shifts beyond the calibrated range.
	Vectors [][]float32
	// Docs are the linked document chunks; Docs[i] belongs to
	// Vectors[i] and must fit the database's doc slot size.
	Docs [][]byte
	// Assign maps each item to an IVF cluster (required for IVF
	// databases, forbidden for flat ones). Appends extend the cluster's
	// posting list; the centroid set itself is immutable.
	Assign []int
	// MetaTags optionally tags each item for metadata filtering.
	MetaTags []uint8
}

// DeleteConfig is the payload of an OpcodeDelete command.
type DeleteConfig struct {
	// IDs are the entry ids to tombstone (as reported by DocResult.ID
	// and HostResponse.AppendedIDs). Deleting an unknown or already-
	// deleted id fails the whole command with ErrUnknownID; no partial
	// deletion is applied.
	IDs []int
}

// CompactConfig is the payload of an OpcodeCompact command — the
// explicit quiesce point at which the garbage collector may run.
type CompactConfig struct {
	// MinLiveRatio is the GC trigger: compaction runs when any GC row
	// holds deleted entries and its live/(live+deleted) ratio is below
	// this threshold. 0 means the default of 0.5; values outside [0, 1]
	// are rejected with ErrBadThreshold.
	MinLiveRatio float64
}

// defaultMinLiveRatio is the GC threshold used when CompactConfig
// leaves MinLiveRatio zero.
const defaultMinLiveRatio = 0.5

// WearStats reports the flash cost of one mutation command: pages
// programmed (appends and GC copy-forward), pages read back by the
// collector, blocks erased, and the device's resulting wear skew.
type WearStats struct {
	// PagesProgrammed counts flash page programs issued by the command.
	PagesProgrammed int
	// PagesRead counts page reads the collector issued to gather live
	// entries.
	PagesRead int
	// BlockErases counts flash block erases (summed across shards on a
	// sharded host — equal to the single-device reference).
	BlockErases int
	// MaxBlockErase is the highest per-block erase count on the device
	// after the command (the wear-leveling skew figure).
	MaxBlockErase int64
	// CompactedRows is the number of GC rows whose live ratio was below
	// the threshold (0 means the command was a no-op).
	CompactedRows int
	// CopiedEntries is the number of live entries copied forward.
	CopiedEntries int
	// FreedPages is the net shrink of the binary region's live extent.
	FreedPages int
}

// submitter is the synchronous command surface the convenience
// wrappers build on; Engine and ShardedEngine both provide it.
type submitter interface {
	Submit(HostCommand) (HostResponse, error)
}

// submitAppend / submitDelete / submitCompact are the shared bodies of
// the hosts' Append/Delete/Compact wrappers, so the wrapper shape
// cannot drift between topologies.
func submitAppend(h submitter, dbID int, cfg AppendConfig) ([]int, error) {
	resp, err := h.Submit(HostCommand{Opcode: OpcodeAppend, DBID: dbID, Append: &cfg})
	return resp.AppendedIDs, err
}

func submitDelete(h submitter, dbID int, ids []int) error {
	_, err := h.Submit(HostCommand{Opcode: OpcodeDelete, DBID: dbID, Del: &DeleteConfig{IDs: ids}})
	return err
}

func submitCompact(h submitter, dbID int, minLiveRatio float64) (WearStats, error) {
	resp, err := h.Submit(HostCommand{Opcode: OpcodeCompact, DBID: dbID, Compact: &CompactConfig{MinLiveRatio: minLiveRatio}})
	if err != nil || resp.Wear == nil {
		return WearStats{}, err
	}
	return *resp.Wear, err
}

// mutLayout carries the layout constants mutation logic needs —
// identical on every topology deployed from the same plan.
type mutLayout struct {
	dim         int
	slotBytes   int
	embPerPage  int
	int8Bytes   int
	int8PerPage int
	docBytes    int
	docsPerPage int
	pageBytes   int
	oobBytes    int
	ppb         int // GC row granularity: pages per flash block
	nlist       int // 0 for flat
	params      vecmath.Int8Params
}

// mutState is the geometry-independent mutable metadata of one
// deployed database. It lives in controller DRAM next to the R-IVF
// table; the execMu holder of the owning host is its single writer.
type mutState struct {
	lay mutLayout

	// buckets[c] is cluster c's posting list: the binary-region slot
	// ranges scanned for the cluster, in scan (ascending-id) order.
	// nil for flat databases.
	buckets [][]SlotRange

	// centCodes[c] / radius[c] are cluster c's binary centroid code and
	// its current binary covering radius (max Hamming distance from the
	// code to any member, deployed or appended) — the lower-bound input
	// of threshold pruning. Appends only grow a radius; compaction keeps
	// it (conservative: a stale-large radius weakens pruning but never
	// threatens correctness). Nil for flat databases.
	centCodes [][]uint64
	radius    []int

	// flatPlan is the brute-force scan plan: the live slot ranges of
	// the whole binary region in position order — the deployed extent
	// plus one range per append batch (batch ranges bridge the
	// page-padding gaps between clusters, which scan as skipped
	// invalid-DADR slots). Both flat and IVF databases keep one: a
	// Search command on an IVF database scans everything.
	flatPlan []SlotRange

	// tailSlots is the first free binary slot; appends allocate
	// page-aligned runs from here. binPages is the live extent.
	tailSlots int
	binPages  int

	// int8Slots/docSlots are the next append positions of the rerank
	// and document regions (RADR / DADR address spaces); ids are doc
	// slots, so appended ids continue page-aligned after the last
	// batch.
	int8Slots, int8Pages int
	docSlots, docPages   int

	// Planned capacities (global pages) from the layout: the logical
	// append bound, checked before any physical write so ErrRegionFull
	// strikes at the same point on every topology.
	capBin, capInt8, capDoc int

	// tomb is the tombstone bitmap, indexed by id; posOf maps ids to
	// their binary slot position (-1: never issued or compacted away
	// with its tombstone).
	tomb  []uint64
	posOf []int32

	// rowLive/rowDead count live and tombstoned entries per GC row
	// (ppb consecutive binary-region pages) — the victim detector's
	// input. Padding slots count in neither.
	rowLive, rowDead []int

	live      int // live entries
	deadCount int // tombstoned, not yet collected
}

// newMutState derives the initial mutable metadata from a layout plan.
func newMutState(lo *dbLayout, geo flash.Geometry) *mutState {
	m := &mutState{
		lay: mutLayout{
			dim:         lo.dim,
			slotBytes:   lo.slotBytes,
			embPerPage:  lo.embPerPage,
			int8Bytes:   lo.int8Bytes,
			int8PerPage: lo.int8PerPage,
			docBytes:    lo.docBytes,
			docsPerPage: lo.docsPerPage,
			pageBytes:   geo.PageBytes,
			oobBytes:    geo.OOBBytes,
			ppb:         lo.ppb,
			nlist:       len(lo.rivf),
			params:      lo.params,
		},
		tailSlots: lo.regionSlots,
		binPages:  lo.embPages,
		int8Slots: lo.n,
		int8Pages: lo.int8Pages,
		docSlots:  lo.n,
		docPages:  lo.docPages,
		capBin:    lo.embCap,
		capInt8:   lo.int8Cap,
		capDoc:    lo.docCap,
		live:      lo.n,
	}
	m.flatPlan = []SlotRange{{First: 0, Last: lo.regionSlots - 1}}
	if m.lay.nlist > 0 {
		m.buckets = make([][]SlotRange, m.lay.nlist)
		for c, ent := range lo.rivf {
			if ent.First >= 0 {
				m.buckets[c] = []SlotRange{{First: ent.First, Last: ent.Last}}
			}
		}
		// The radius ledger is mutable (appends can grow it); the codes
		// are immutable and shared with the layout.
		m.centCodes = lo.centCodes
		m.radius = append([]int(nil), lo.radius...)
	}
	m.posOf = make([]int32, lo.n)
	m.rowLive = make([]int, ceilDiv(lo.embPages, m.lay.ppb))
	m.rowDead = make([]int, len(m.rowLive))
	for pos, id := range lo.order {
		if id < 0 {
			continue
		}
		m.posOf[id] = int32(pos)
		m.rowLive[m.rowOf(pos)]++
	}
	return m
}

// rowOf returns the GC row of a binary slot position.
func (m *mutState) rowOf(pos int) int { return pos / m.lay.embPerPage / m.lay.ppb }

// Live returns the number of live (not tombstoned) entries.
func (m *mutState) Live() int { return m.live }

// flat reports whether the database has no IVF structure.
func (m *mutState) flat() bool { return m.lay.nlist == 0 }

func alignUp(x, a int) int { return (x + a - 1) / a * a }

func bitsetGet(b []uint64, i int) bool {
	w := i >> 6
	return w < len(b) && b[w]>>(uint(i)&63)&1 != 0
}

func bitsetSet(b []uint64, i int) []uint64 {
	w := i >> 6
	for w >= len(b) {
		b = append(b, 0)
	}
	b[w] |= 1 << (uint(i) & 63)
	return b
}

// mutTarget is the physical half of a mutation: how pages of the
// database's regions are read, programmed, resized and erased. Page
// indices are global (single-device-equivalent) region pages.
type mutTarget interface {
	// readBinPage senses global binary-region page g through the
	// conventional path (data and OOB are freshly allocated).
	readBinPage(g int) (data, oob []byte, err error)
	// writeBinPage / writeInt8Page / writeDocPage program one global
	// page. The page must be erased (out-of-place writes only).
	writeBinPage(g int, data, oob []byte) error
	writeInt8Page(g int, data []byte) error
	writeDocPage(g int, data []byte) error
	// resize commits new live extents (global pages) for the binary,
	// INT8 and document regions; -1 keeps a region unchanged. Resizing
	// updates the R-DB record (the coarse FTL remap).
	resize(binPages, int8Pages, docPages int) error
	// eraseBinPages erases every block-row covering the first oldPages
	// of the binary region, returning the number of block erases
	// performed and the device's max per-block erase count afterwards.
	// oldPages 0 erases nothing and just reports the current wear —
	// how non-erasing commands fill WearStats.MaxBlockErase.
	eraseBinPages(oldPages int) (erases int, maxWear int64, err error)
}

// mutAppend executes one append: placement and metadata are computed
// from the geometry-independent state, then the fresh pages are
// programmed through the target. The whole command is validated before
// any write, so a failed append leaves the database untouched.
func mutAppend(m *mutState, t mutTarget, cfg *AppendConfig) ([]int, *WearStats, error) {
	lay := &m.lay
	n := len(cfg.Vectors)
	for i, v := range cfg.Vectors {
		if len(v) != lay.dim {
			return nil, nil, fmt.Errorf("%w (append vector %d has dim %d, database dim %d)",
				ErrQueryDims, i, len(v), lay.dim)
		}
	}
	for i, d := range cfg.Docs {
		if len(d) > lay.docBytes {
			return nil, nil, fmt.Errorf("reis: append doc %d is %dB > slot %dB", i, len(d), lay.docBytes)
		}
	}
	if m.flat() {
		if len(cfg.Assign) != 0 {
			return nil, nil, fmt.Errorf("%w (cluster assignment for a flat database)", ErrBadAssign)
		}
	} else {
		if len(cfg.Assign) != n {
			return nil, nil, fmt.Errorf("%w (%d assignments for %d vectors)", ErrBadAssign, len(cfg.Assign), n)
		}
		for i, c := range cfg.Assign {
			if c < 0 || c >= lay.nlist {
				return nil, nil, fmt.Errorf("%w (item %d assigned to cluster %d of %d)", ErrBadAssign, i, c, lay.nlist)
			}
		}
	}

	// Ids continue the document region's slot addressing, page-aligned
	// so the batch's doc and INT8 slots land on fresh pages.
	idStart := alignUp(m.docSlots, lay.docsPerPage)
	newDocSlots := idStart + n
	newDocPages := ceilDiv(newDocSlots, lay.docsPerPage)
	rStart := alignUp(m.int8Slots, lay.int8PerPage)
	newInt8Slots := rStart + n
	newInt8Pages := ceilDiv(newInt8Slots, lay.int8PerPage)

	// Binary placement: one page-aligned slot run per cluster present
	// in the batch, clusters ascending, items in batch (= ascending id)
	// order — which keeps every cluster's scan order ascending by id.
	type group struct {
		cluster int
		items   []int // batch indices
		start   int   // first slot of the run
	}
	var groups []group
	if m.flat() {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		groups = []group{{cluster: 0, items: items}}
	} else {
		byCluster := make(map[int][]int, 8)
		for i, c := range cfg.Assign {
			byCluster[c] = append(byCluster[c], i)
		}
		for c := 0; c < lay.nlist; c++ {
			if items, ok := byCluster[c]; ok {
				groups = append(groups, group{cluster: c, items: items})
			}
		}
	}
	cursor := m.tailSlots
	for gi := range groups {
		groups[gi].start = alignUp(cursor, lay.embPerPage)
		cursor = groups[gi].start + len(groups[gi].items)
	}
	newTail := cursor
	newBinPages := ceilDiv(newTail, lay.embPerPage)

	// Logical capacity gate — before any physical effect, against the
	// planned (geometry-independent) capacities.
	switch {
	case newBinPages > m.capBin:
		return nil, nil, fmt.Errorf("%w (embedding region: %d pages of %d planned)", ssd.ErrRegionFull, newBinPages, m.capBin)
	case newInt8Pages > m.capInt8:
		return nil, nil, fmt.Errorf("%w (INT8 region: %d pages of %d planned)", ssd.ErrRegionFull, newInt8Pages, m.capInt8)
	case newDocPages > m.capDoc:
		return nil, nil, fmt.Errorf("%w (document region: %d pages of %d planned)", ssd.ErrRegionFull, newDocPages, m.capDoc)
	}
	if err := t.resize(newBinPages, newInt8Pages, newDocPages); err != nil {
		return nil, nil, err
	}

	wear := &WearStats{}
	// Document pages.
	for p := m.docPages; p < newDocPages; p++ {
		page := make([]byte, lay.pageBytes)
		for s := 0; s < lay.docsPerPage; s++ {
			slot := p*lay.docsPerPage + s
			if slot >= idStart && slot < idStart+n {
				copy(page[s*lay.docBytes:(s+1)*lay.docBytes], cfg.Docs[slot-idStart])
			}
		}
		if err := t.writeDocPage(p, page); err != nil {
			return nil, nil, err
		}
		wear.PagesProgrammed++
	}
	// INT8 rerank pages.
	for p := m.int8Pages; p < newInt8Pages; p++ {
		page := make([]byte, lay.pageBytes)
		for s := 0; s < lay.int8PerPage; s++ {
			slot := p*lay.int8PerPage + s
			if slot >= rStart && slot < rStart+n {
				q8 := lay.params.Int8Quantize(cfg.Vectors[slot-rStart], nil)
				copy(page[s*lay.int8Bytes:(s+1)*lay.int8Bytes], vecmath.PackInt8Bytes(q8, nil))
			}
		}
		if err := t.writeInt8Page(p, page); err != nil {
			return nil, nil, err
		}
		wear.PagesProgrammed++
	}
	// Binary pages, one run per cluster group.
	for _, g := range groups {
		end := g.start + len(g.items)
		for p := g.start / lay.embPerPage; p <= (end-1)/lay.embPerPage; p++ {
			page := make([]byte, lay.pageBytes)
			oob := make([]byte, lay.oobBytes)
			for s := 0; s < lay.embPerPage; s++ {
				pos := p*lay.embPerPage + s
				link := encodeLinkage(InvalidDADR, 0, 0)
				if pos >= g.start && pos < end {
					i := g.items[pos-g.start]
					code := vecmath.PackBinaryBytes(vecmath.BinaryQuantize(cfg.Vectors[i], nil), nil)
					copy(page[s*lay.slotBytes:(s+1)*lay.slotBytes], code)
					var tag uint8
					if cfg.MetaTags != nil {
						tag = cfg.MetaTags[i]
					}
					link = encodeLinkage(uint32(idStart+i), uint32(rStart+i), tag)
				}
				copy(oob[s*oobBytesPerSlot:(s+1)*oobBytesPerSlot], link)
			}
			if err := t.writeBinPage(p, page, oob); err != nil {
				return nil, nil, err
			}
			wear.PagesProgrammed++
		}
	}

	// Commit the metadata: posting-list segments, id→position map,
	// per-row live counts, extents.
	for w := len(m.posOf); w < newDocSlots; w++ {
		m.posOf = append(m.posOf, -1)
	}
	newRows := ceilDiv(newBinPages, lay.ppb)
	for len(m.rowLive) < newRows {
		m.rowLive = append(m.rowLive, 0)
		m.rowDead = append(m.rowDead, 0)
	}
	ids := make([]int, n)
	for _, g := range groups {
		for j, i := range g.items {
			pos := g.start + j
			ids[i] = idStart + i
			m.posOf[idStart+i] = int32(pos)
			m.rowLive[m.rowOf(pos)]++
		}
		if !m.flat() {
			m.buckets[g.cluster] = append(m.buckets[g.cluster], SlotRange{First: g.start, Last: g.start + len(g.items) - 1})
			// Grow the cluster's covering radius so the pruning lower
			// bound stays sound for the appended members.
			for _, i := range g.items {
				if d := vecmath.Hamming(m.centCodes[g.cluster], vecmath.BinaryQuantize(cfg.Vectors[i], nil)); d > m.radius[g.cluster] {
					m.radius[g.cluster] = d
				}
			}
		}
	}
	// The brute-force plan gains one range per batch, bridging the
	// inter-cluster page padding (written as invalid-DADR slots above).
	m.flatPlan = append(m.flatPlan, SlotRange{First: groups[0].start, Last: newTail - 1})
	m.tailSlots = newTail
	m.binPages = newBinPages
	m.int8Slots = newInt8Slots
	m.int8Pages = newInt8Pages
	m.docSlots = newDocSlots
	m.docPages = newDocPages
	m.live += n
	if _, w, err := t.eraseBinPages(0); err == nil {
		wear.MaxBlockErase = w
	}
	return ids, wear, nil
}

// mutDelete tombstones the given ids. The whole batch is validated —
// bounds, known ids, no double or duplicate deletes — before any bit
// is set, so a failed delete changes nothing.
func mutDelete(m *mutState, ids []int) error {
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(m.posOf) || m.posOf[id] < 0 || bitsetGet(m.tomb, id) {
			return fmt.Errorf("%w (%d)", ErrUnknownID, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w (%d repeated in one command)", ErrUnknownID, id)
		}
		seen[id] = struct{}{}
	}
	for _, id := range ids {
		m.tomb = bitsetSet(m.tomb, id)
		row := m.rowOf(int(m.posOf[id]))
		m.rowLive[row]--
		m.rowDead[row]++
		m.live--
		m.deadCount++
	}
	return nil
}

// liveEntry is one live binary-region entry gathered by the collector.
type liveEntry struct {
	code []byte
	id   uint32
	radr uint32
	tag  uint8
}

// mutCompact runs the garbage collector at an explicit quiesce point:
// when any GC row's live ratio is below the threshold, every live
// entry is copied forward into a canonically rebuilt binary region
// (clusters ascending, scan order preserved — search results are
// bit-identical before and after), the old extent's blocks are erased,
// and tombstones are dropped. The INT8 and document regions are
// append-only address spaces and are not compacted.
func mutCompact(m *mutState, t mutTarget, minLiveRatio float64) (*WearStats, error) {
	thr := minLiveRatio
	if thr == 0 {
		thr = defaultMinLiveRatio
	}
	lay := &m.lay
	victims := 0
	for r := range m.rowLive {
		if m.rowDead[r] > 0 && float64(m.rowLive[r]) < thr*float64(m.rowLive[r]+m.rowDead[r]) {
			victims++
		}
	}
	wear := &WearStats{CompactedRows: victims}
	if victims == 0 {
		return wear, nil
	}

	// Gather every live entry, bucket by bucket in scan order, reading
	// each segment page through the conventional path. A flat database
	// has a single bucket: its brute-force plan.
	plans := m.buckets
	if m.flat() {
		plans = [][]SlotRange{m.flatPlan}
	}
	gathered := make([][]liveEntry, len(plans))
	for b, segs := range plans {
		for _, sr := range segs {
			firstPage, lastPage := sr.First/lay.embPerPage, sr.Last/lay.embPerPage
			for p := firstPage; p <= lastPage; p++ {
				data, oob, err := t.readBinPage(p)
				if err != nil {
					return nil, err
				}
				wear.PagesRead++
				lo, hi := 0, lay.embPerPage-1
				if p == firstPage {
					lo = sr.First % lay.embPerPage
				}
				if p == lastPage {
					hi = sr.Last % lay.embPerPage
				}
				for s := lo; s <= hi; s++ {
					dadr, radr, tag := decodeLinkage(oob[s*oobBytesPerSlot : (s+1)*oobBytesPerSlot])
					if dadr == InvalidDADR || bitsetGet(m.tomb, int(dadr)) {
						continue
					}
					code := make([]byte, lay.slotBytes)
					copy(code, data[s*lay.slotBytes:(s+1)*lay.slotBytes])
					gathered[b] = append(gathered[b], liveEntry{code: code, id: dadr, radr: radr, tag: tag})
				}
			}
		}
	}

	// Canonical rebuild plan: clusters ascending, each starting on a
	// fresh page, entries in gathered (scan) order.
	starts := make([]int, len(gathered))
	cursor := 0
	for b, es := range gathered {
		if len(es) == 0 {
			starts[b] = -1
			continue
		}
		starts[b] = alignUp(cursor, lay.embPerPage)
		cursor = starts[b] + len(es)
	}
	newTail := cursor
	newBinPages := ceilDiv(newTail, lay.embPerPage)
	oldPages := m.binPages

	// Physical apply: erase the whole old extent (the copies above are
	// in controller DRAM), shrink the live extent, program the
	// compacted pages.
	erases, maxWear, err := t.eraseBinPages(oldPages)
	if err != nil {
		return nil, err
	}
	wear.BlockErases = erases
	wear.MaxBlockErase = maxWear
	if err := t.resize(newBinPages, -1, -1); err != nil {
		return nil, err
	}
	for b, es := range gathered {
		if len(es) == 0 {
			continue
		}
		end := starts[b] + len(es)
		for p := starts[b] / lay.embPerPage; p <= (end-1)/lay.embPerPage; p++ {
			page := make([]byte, lay.pageBytes)
			oob := make([]byte, lay.oobBytes)
			for s := 0; s < lay.embPerPage; s++ {
				pos := p*lay.embPerPage + s
				link := encodeLinkage(InvalidDADR, 0, 0)
				if pos >= starts[b] && pos < end {
					e := es[pos-starts[b]]
					copy(page[s*lay.slotBytes:(s+1)*lay.slotBytes], e.code)
					link = encodeLinkage(e.id, e.radr, e.tag)
				}
				copy(oob[s*oobBytesPerSlot:(s+1)*oobBytesPerSlot], link)
			}
			if err := t.writeBinPage(p, page, oob); err != nil {
				return nil, err
			}
			wear.PagesProgrammed++
		}
	}

	// Commit: canonical posting lists, rebuilt position map, cleared
	// tombstones, reset row accounting.
	copied := 0
	for i := range m.posOf {
		m.posOf[i] = -1
	}
	m.rowLive = make([]int, ceilDiv(newBinPages, lay.ppb))
	m.rowDead = make([]int, len(m.rowLive))
	for b := range gathered {
		es := gathered[b]
		if !m.flat() {
			if len(es) == 0 {
				m.buckets[b] = nil
			} else {
				m.buckets[b] = []SlotRange{{First: starts[b], Last: starts[b] + len(es) - 1}}
			}
		}
		for j, e := range es {
			pos := starts[b] + j
			m.posOf[e.id] = int32(pos)
			m.rowLive[m.rowOf(pos)]++
		}
		copied += len(es)
	}
	if newTail > 0 {
		// The compacted region is canonical end to end (every padding
		// slot carries an invalid DADR), so the brute-force plan is one
		// range again.
		m.flatPlan = []SlotRange{{First: 0, Last: newTail - 1}}
	} else {
		m.flatPlan = nil
	}
	m.tomb = nil
	m.deadCount = 0
	m.tailSlots = newTail
	m.binPages = newBinPages
	wear.CopiedEntries = copied
	wear.FreedPages = oldPages - newBinPages
	return wear, nil
}

// engineMutTarget applies mutations to a single device's own regions.
// The engine's execMu holder owns it.
type engineMutTarget struct {
	e  *Engine
	db *Database
}

func (t engineMutTarget) readBinPage(g int) ([]byte, []byte, error) {
	return t.e.SSD.ReadRegionPage(t.db.rec.Embeddings, g)
}

func (t engineMutTarget) writeBinPage(g int, data, oob []byte) error {
	return t.e.SSD.WriteRegionPage(t.db.rec.Embeddings, g, data, oob)
}

func (t engineMutTarget) writeInt8Page(g int, data []byte) error {
	return t.e.SSD.WriteRegionPage(t.db.rec.Int8s, g, data, nil)
}

func (t engineMutTarget) writeDocPage(g int, data []byte) error {
	return t.e.SSD.WriteRegionPage(t.db.rec.Documents, g, data, nil)
}

func (t engineMutTarget) resize(binPages, int8Pages, docPages int) error {
	db := t.db
	if binPages >= 0 {
		if err := t.e.SSD.ResizeRegion(&db.rec, &db.rec.Embeddings, binPages); err != nil {
			return err
		}
	}
	if int8Pages >= 0 {
		if err := t.e.SSD.ResizeRegion(&db.rec, &db.rec.Int8s, int8Pages); err != nil {
			return err
		}
	}
	if docPages >= 0 {
		if err := t.e.SSD.ResizeRegion(&db.rec, &db.rec.Documents, docPages); err != nil {
			return err
		}
	}
	return nil
}

func (t engineMutTarget) eraseBinPages(oldPages int) (int, int64, error) {
	dev := t.e.SSD.Dev
	if oldPages == 0 {
		return 0, dev.MaxEraseCount(), nil
	}
	geo := t.e.SSD.Cfg.Geo
	planes := geo.Planes()
	ppb := geo.PagesPerBlock
	rows := ceilDiv(ceilDiv(oldPages, planes), ppb)
	blk0 := t.db.rec.Embeddings.StartStripe / ppb
	erases := 0
	for row := 0; row < rows; row++ {
		for p := 0; p < planes; p++ {
			a := flash.AddressFromLinear(geo, p*geo.PagesPerPlane()+(blk0+row)*ppb)
			if err := dev.EraseBlock(a); err != nil {
				return erases, 0, err
			}
			erases++
		}
	}
	return erases, dev.MaxEraseCount(), nil
}

// shardMutTarget routes each global page of a mutation to the shard
// that owns it (page g → shard g mod N, local page g / N), taking the
// owning engine's execution lock per call. The router's execMu holder
// owns it; sharded outcomes are bit-identical to the single-device
// reference because the logical plan is shared and the striping is the
// deploy striping.
type shardMutTarget struct {
	sh *ShardedEngine
	db *ShardedDatabase
}

func (t shardMutTarget) onOwner(g int, f func(e *Engine, local *Database, l int) error) error {
	n := len(t.sh.shards)
	owner, l := g%n, g/n
	e := t.sh.shards[owner].e
	e.execMu.Lock()
	defer e.execMu.Unlock()
	return f(e, t.db.locals[owner], l)
}

func (t shardMutTarget) readBinPage(g int) (data, oob []byte, err error) {
	err = t.onOwner(g, func(e *Engine, local *Database, l int) error {
		data, oob, err = e.SSD.ReadRegionPage(local.rec.Embeddings, l)
		return err
	})
	return data, oob, err
}

func (t shardMutTarget) writeBinPage(g int, data, oob []byte) error {
	return t.onOwner(g, func(e *Engine, local *Database, l int) error {
		return e.SSD.WriteRegionPage(local.rec.Embeddings, l, data, oob)
	})
}

func (t shardMutTarget) writeInt8Page(g int, data []byte) error {
	return t.onOwner(g, func(e *Engine, local *Database, l int) error {
		return e.SSD.WriteRegionPage(local.rec.Int8s, l, data, nil)
	})
}

func (t shardMutTarget) writeDocPage(g int, data []byte) error {
	return t.onOwner(g, func(e *Engine, local *Database, l int) error {
		return e.SSD.WriteRegionPage(local.rec.Documents, l, data, nil)
	})
}

func (t shardMutTarget) resize(binPages, int8Pages, docPages int) error {
	n := len(t.sh.shards)
	for s, dev := range t.sh.shards {
		local := t.db.locals[s]
		dev.e.execMu.Lock()
		err := func() error {
			if binPages >= 0 {
				if err := dev.e.SSD.ResizeRegion(&local.rec, &local.rec.Embeddings, shardPages(binPages, s, n)); err != nil {
					return err
				}
				// The shard serves explicit scan ranges over its owned
				// pages; keep its addressable slot bound in step.
				local.regionSlots = local.rec.Embeddings.Pages() * local.embPerPage
			}
			if int8Pages >= 0 {
				if err := dev.e.SSD.ResizeRegion(&local.rec, &local.rec.Int8s, shardPages(int8Pages, s, n)); err != nil {
					return err
				}
			}
			if docPages >= 0 {
				if err := dev.e.SSD.ResizeRegion(&local.rec, &local.rec.Documents, shardPages(docPages, s, n)); err != nil {
					return err
				}
			}
			return nil
		}()
		dev.e.execMu.Unlock()
		if err != nil {
			return fmt.Errorf("reis: shard %d: %w", s, err)
		}
	}
	return nil
}

func (t shardMutTarget) eraseBinPages(oldPages int) (int, int64, error) {
	if oldPages == 0 {
		return 0, t.maxEraseCount(), nil
	}
	// The global extent's stripes are the same on every shard (global
	// page g sits at local stripe g / planes_global on its owner), so
	// each shard erases the same block-rows the reference device would.
	planesGlobal := t.sh.cfg.Geo.Planes()
	ppb := t.sh.cfg.Geo.PagesPerBlock
	rows := ceilDiv(ceilDiv(oldPages, planesGlobal), ppb)
	erases := 0
	for s, dev := range t.sh.shards {
		geo := dev.e.SSD.Cfg.Geo
		planes := geo.Planes()
		blk0 := t.db.locals[s].rec.Embeddings.StartStripe / ppb
		dev.e.execMu.Lock()
		for row := 0; row < rows; row++ {
			for p := 0; p < planes; p++ {
				a := flash.AddressFromLinear(geo, p*geo.PagesPerPlane()+(blk0+row)*ppb)
				if err := dev.e.SSD.Dev.EraseBlock(a); err != nil {
					dev.e.execMu.Unlock()
					return erases, 0, err
				}
				erases++
			}
		}
		dev.e.execMu.Unlock()
	}
	return erases, t.maxEraseCount(), nil
}

func (t shardMutTarget) maxEraseCount() int64 {
	var m int64
	for _, dev := range t.sh.shards {
		if n := dev.e.SSD.Dev.MaxEraseCount(); n > m {
			m = n
		}
	}
	return m
}
