package reis

import (
	"fmt"
	"time"

	"reis/internal/flash"
	"reis/internal/ssd"
)

// Timing model of the sharded topology. The scatter phases run on the
// member devices in parallel — a query's scan time is the slowest
// shard's, computed with the ordinary single-device model over that
// shard's own stats (its waves are its local critical path) — while
// the gather-side controller tail (INT8 rerank, quicksort, document
// retrieval) is costed once with the single-device-equivalent
// configuration. TTL handling (DRAM streaming + quickselect of a
// shard's survivors) is attributed to the shard that produced the
// entries, mirroring where the bytes move.

// Latency converts one query's aggregated events (st) and per-shard
// scan events (perShard[s], as returned in HostResponse.PerShard) into
// a latency and energy estimate: max-over-shards scan time plus the
// gather tail. The IBC/Coarse/Fine components report the critical
// (slowest) shard's decomposition.
func (sh *ShardedEngine) Latency(dbID int, st QueryStats, perShard []QueryStats, sc Scale) (Breakdown, error) {
	db, err := sh.DB(dbID)
	if err != nil {
		return Breakdown{}, err
	}
	if len(perShard) != len(sh.shards) {
		return Breakdown{}, fmt.Errorf("reis: %d per-shard stats for %d shards", len(perShard), len(sh.shards))
	}
	return sh.latency(db, st, perShard, sc), nil
}

// latency is Latency after database resolution and shape validation
// (BatchLatency calls it once per query of an already-resolved batch).
func (sh *ShardedEngine) latency(db *ShardedDatabase, st QueryStats, perShard []QueryStats, sc Scale) Breakdown {
	var b Breakdown
	var energy float64
	for s, dev := range sh.shards {
		sbd := dev.e.Latency(db.locals[s], perShard[s], sc)
		if scan := sbd.IBC + sbd.Coarse + sbd.Fine; scan > b.IBC+b.Coarse+b.Fine {
			b.IBC, b.Coarse, b.Fine = sbd.IBC, sbd.Coarse, sbd.Fine
		}
		energy += dev.e.energy(db.locals[s], perShard[s], sc, 0)
	}
	// Cached work (pinned-cluster scans, result-cache hits) is served by
	// the router, not any member device; its stats appear only in the
	// aggregate st, never in a per-shard row.
	b.Fine += cachedScanTime(sh.cfg, db.lay.slotBytes, st, sc)
	b.Rerank = rerankTimeFor(sh.cfg, db.lay.int8Bytes, db.Dim, st)
	b.Docs = docsTimeFor(sh.cfg, st)
	b.Total = b.IBC + b.Coarse + b.Fine + b.Rerank + b.Docs
	energy += tailEnergyFor(sh.cfg, db.lay.int8Bytes, st)
	// Every member device idles for the duration of the query.
	energy += float64(len(sh.shards)) * sh.cfg.IdlePower * b.Total.Seconds()
	b.EnergyJ = energy
	if b.Total > 0 {
		b.AvgWatts = energy / b.Total.Seconds()
	}
	return b
}

// BatchLatency models batch service on the sharded topology: per-shard
// occupancies accumulate independently (the shards are independent
// devices), the gather tail accumulates on the router's resources, and
// the makespan is the bottleneck total plus one pipeline fill, clamped
// to serial execution — the sharded analogue of Engine.BatchLatency.
func (sh *ShardedEngine) BatchLatency(dbID int, sts []QueryStats, perShard [][]QueryStats, sc Scale) (BatchBreakdown, error) {
	db, err := sh.DB(dbID)
	if err != nil {
		return BatchBreakdown{}, err
	}
	if len(perShard) != len(sh.shards) {
		return BatchBreakdown{}, fmt.Errorf("reis: %d per-shard stats for %d shards", len(perShard), len(sh.shards))
	}
	n := len(sh.shards)
	b := BatchBreakdown{Queries: len(sts)}
	var fill time.Duration
	shardPlane := make([]time.Duration, n)
	shardChannel := make([]time.Duration, n)
	shardCore := make([]time.Duration, n)
	var tailPlane, tailChannel, tailCore time.Duration
	col := make([]QueryStats, n)
	for i := range sts {
		for s := range col {
			col[s] = perShard[s][i]
		}
		bd := sh.latency(db, sts[i], col, sc)
		b.Serial += bd.Total
		if i == 0 {
			fill = bd.Total
		}
		b.EnergyJ += bd.EnergyJ - float64(n)*sh.cfg.IdlePower*bd.Total.Seconds()
		for s, dev := range sh.shards {
			p, c, co := dev.e.occupancy(db.locals[s], perShard[s][i], sc)
			shardPlane[s] += p
			shardChannel[s] += c
			shardCore[s] += co
		}
		p, c, co := tailOccupancy(sh.cfg, db.lay.int8Bytes, db.Dim, sts[i])
		tailPlane += p
		tailChannel += c
		// Cached scans and result-cache hits occupy the router core.
		tailCore += co + cachedScanTime(sh.cfg, db.lay.slotBytes, sts[i], sc)
	}
	// The busiest shard bounds the scatter side; the tail's resources
	// serialize on the router.
	for s := 0; s < n; s++ {
		if shardPlane[s] > b.PlaneBusy {
			b.PlaneBusy = shardPlane[s]
		}
		if shardChannel[s] > b.ChannelBusy {
			b.ChannelBusy = shardChannel[s]
		}
		if shardCore[s] > b.CoreBusy {
			b.CoreBusy = shardCore[s]
		}
	}
	b.PlaneBusy += tailPlane
	b.ChannelBusy += tailChannel
	b.CoreBusy += tailCore
	b.Makespan = b.PlaneBusy
	if b.ChannelBusy > b.Makespan {
		b.Makespan = b.ChannelBusy
	}
	if b.CoreBusy > b.Makespan {
		b.Makespan = b.CoreBusy
	}
	b.Makespan += fill
	if b.Makespan > b.Serial {
		b.Makespan = b.Serial
	}
	b.EnergyJ += float64(n) * sh.cfg.IdlePower * b.Makespan.Seconds()
	if b.Makespan > 0 {
		b.QPS = float64(b.Queries) / b.Makespan.Seconds()
	}
	return b, nil
}

// tailOccupancy decomposes the gather tail's busy time onto the plane
// (TLC rerank/document waves), channel (INT8 and document bytes) and
// core (rerank + quicksort) resources, mirroring the tail terms of
// Engine.occupancy.
func tailOccupancy(cfg ssd.Config, int8Bytes, dim int, st QueryStats) (plane, channel, core time.Duration) {
	tTLC := cfg.Flash.ReadLatency(flash.ModeTLC)
	docWaves := ceilDiv(st.DocPages, cfg.Geo.Planes())
	plane = time.Duration(st.RerankWaves+docWaves) * tTLC
	channel = bytesTime(float64(st.RerankCount*int8Bytes), cfg.Geo.InternalBandwidth()) +
		bytesTime(float64(st.DocBytes), cfg.Geo.InternalBandwidth()) +
		bytesTime(float64(st.DocBytes), cfg.HostReadBandwidth)
	core = cfg.RerankTime(st.RerankCount, dim) + cfg.QuicksortTime(st.SortedEntries)
	return plane, channel, core
}

// tailEnergyFor sums the per-event energies of the gather tail: TLC
// page reads plus the INT8/document channel traffic.
func tailEnergyFor(cfg ssd.Config, int8Bytes int, st QueryStats) float64 {
	p := cfg.Flash
	tlcPages := float64(st.RerankPages + st.DocPages)
	xferBytes := float64(st.RerankCount*int8Bytes) + float64(st.DocBytes)
	return tlcPages*p.EnergyReadPage + xferBytes*p.EnergyXferPerByte
}
