package reis

import (
	"fmt"
	"sort"

	"reis/internal/flash"
	"reis/internal/ssd"
	"reis/internal/vecmath"
)

// TTLEntry is one Temporal Top List record (Sec 4.2.1, structure C in
// Fig 4): the distance, the embedding's mini-page position, and the
// linkage addresses picked up from the OOB area during the scan.
type TTLEntry struct {
	Dist int
	Pos  int // embedding position in the binary region (mini-page address)
	DADR uint32
	RADR uint32
	Tag  uint8
}

// QueryStats counts the device events of one query; the timing and
// energy models consume it.
type QueryStats struct {
	// CoarseWaves/FineWaves are the maximum pages any single plane
	// read during the phase (the parallel critical path).
	CoarseWaves int
	FineWaves   int
	// CoarsePages/FinePages are total pages sensed.
	CoarsePages int
	FinePages   int
	// EntriesScanned is the number of embedding slots distance-checked.
	EntriesScanned int
	// Survivors is the number of TTL entries transferred to controller
	// DRAM (after distance filtering, if enabled).
	Survivors int
	// TTLBytes is the total bytes those entries occupied on channels.
	TTLBytes int64
	// RerankCount / RerankPages cover the INT8 rescoring stage.
	RerankCount int
	RerankPages int
	RerankWaves int
	// DocPages/DocBytes cover document retrieval.
	DocPages int
	DocBytes int64
	// IBCBroadcasts counts query broadcasts (one per plane without
	// MPIBC, one per die with it — timing handles the distinction;
	// this is the functional count of LoadCache operations).
	IBCBroadcasts int
	// SelectInput is the number of entries fed to quickselect.
	SelectInput int
	// SortedEntries is the number of entries quicksorted at the end.
	SortedEntries int
	// CoarseEntries is the number of TTL-C (centroid) entries produced
	// by the coarse phase; Survivors - CoarseEntries are fine-scan
	// survivors.
	CoarseEntries int
}

// Add accumulates other into s (for batch reporting).
func (s *QueryStats) Add(o QueryStats) {
	s.CoarseWaves += o.CoarseWaves
	s.FineWaves += o.FineWaves
	s.CoarsePages += o.CoarsePages
	s.FinePages += o.FinePages
	s.EntriesScanned += o.EntriesScanned
	s.Survivors += o.Survivors
	s.TTLBytes += o.TTLBytes
	s.RerankCount += o.RerankCount
	s.RerankPages += o.RerankPages
	s.RerankWaves += o.RerankWaves
	s.DocPages += o.DocPages
	s.DocBytes += o.DocBytes
	s.IBCBroadcasts += o.IBCBroadcasts
	s.SelectInput += o.SelectInput
	s.SortedEntries += o.SortedEntries
	s.CoarseEntries += o.CoarseEntries
}

// DocResult is one retrieved document chunk.
type DocResult struct {
	// ID is the original database entry id (decoded from DADR).
	ID int
	// Dist is the reranked INT8 squared-L2 distance.
	Dist float32
	// Doc is the document chunk content.
	Doc []byte
}

// RerankFactor is the candidate-widening multiple before INT8
// rescoring: the paper selects the "10k embeddings closest to the
// query" before reranking to top-k (Sec 4.3.2 step 6).
const RerankFactor = 10

// SearchOptions modify a single query.
type SearchOptions struct {
	// NProbe is the number of IVF clusters scanned (IVF_Search only).
	NProbe int
	// MetaTag, when non-nil, enables metadata filtering (Sec 7.1):
	// only embeddings whose OOB tag equals *MetaTag are considered.
	MetaTag *uint8
	// SkipDocs skips the document-retrieval stage (pure-ANNS
	// benchmarks like SIFT/DEEP).
	SkipDocs bool
}

// Search implements the Search() API command (Table 1): brute-force
// in-storage scan of the whole binary region, rerank, and document
// retrieval.
func (e *Engine) Search(dbID int, query []float32, k int, opt SearchOptions) ([]DocResult, QueryStats, error) {
	db, err := e.DB(dbID)
	if err != nil {
		return nil, QueryStats{}, err
	}
	if err := db.checkQuery(query, k); err != nil {
		return nil, QueryStats{}, err
	}
	var st QueryStats
	qPacked := vecmath.PackBinaryBytes(vecmath.BinaryQuantize(query, nil), nil)
	if err := e.broadcast(db, qPacked, &st); err != nil {
		return nil, st, err
	}
	entries, waves, pages, err := e.scanRange(db, db.rec.Embeddings, 0, db.regionSlots-1, e.Opts.DistanceFilter, opt.MetaTag, &st)
	if err != nil {
		return nil, st, err
	}
	st.FineWaves += waves
	st.FinePages += pages
	res, err := e.finish(db, query, entries, k, opt, &st)
	return res, st, err
}

// IVFSearch implements the IVF_Search() API command (Table 1):
// coarse centroid search, fine scan of the NProbe nearest clusters,
// rerank, and document retrieval.
func (e *Engine) IVFSearch(dbID int, query []float32, k int, opt SearchOptions) ([]DocResult, QueryStats, error) {
	db, err := e.DB(dbID)
	if err != nil {
		return nil, QueryStats{}, err
	}
	if db.rivf == nil {
		return nil, QueryStats{}, fmt.Errorf("reis: database %d was not deployed with IVF_Deploy", dbID)
	}
	if err := db.checkQuery(query, k); err != nil {
		return nil, QueryStats{}, err
	}
	nprobe := opt.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(db.rivf) {
		nprobe = len(db.rivf)
	}
	var st QueryStats
	qPacked := vecmath.PackBinaryBytes(vecmath.BinaryQuantize(query, nil), nil)
	if err := e.broadcast(db, qPacked, &st); err != nil {
		return nil, st, err
	}

	// Coarse-grained search over the centroid region (TTL-C).
	nlist := len(db.rivf)
	// Distance filtering does not apply to the coarse scan: TTL-C must
	// rank every centroid so the nprobe nearest clusters are exact
	// (Sec 4.3.1 describes DF for database embeddings only).
	cents, waves, pages, err := e.scanRange(db, db.rec.Centroids, 0, nlist-1, false, nil, &st)
	if err != nil {
		return nil, st, err
	}
	st.CoarseWaves = waves
	st.CoarsePages = pages
	st.CoarseEntries = len(cents)
	st.SelectInput += len(cents)
	sort.Slice(cents, func(a, b int) bool {
		if cents[a].Dist != cents[b].Dist {
			return cents[a].Dist < cents[b].Dist
		}
		return cents[a].Pos < cents[b].Pos
	})
	if nprobe > len(cents) {
		nprobe = len(cents)
	}

	// Fine-grained search inside the selected clusters (TTL-E).
	var entries []TTLEntry
	for _, c := range cents[:nprobe] {
		ent := db.rivf[c.Pos]
		if ent.First < 0 {
			continue // empty cluster
		}
		es, w, p, err := e.scanRange(db, db.rec.Embeddings, ent.First, ent.Last, e.Opts.DistanceFilter, opt.MetaTag, &st)
		if err != nil {
			return nil, st, err
		}
		st.FineWaves += w
		st.FinePages += p
		entries = append(entries, es...)
	}
	res, err := e.finish(db, query, entries, k, opt, &st)
	return res, st, err
}

func (db *Database) checkQuery(query []float32, k int) error {
	if len(query) != db.Dim {
		return fmt.Errorf("reis: query dim %d != database dim %d", len(query), db.Dim)
	}
	if k <= 0 {
		return fmt.Errorf("reis: non-positive k %d", k)
	}
	return nil
}

// broadcast performs Input Broadcasting: one IBC command per plane,
// dispatched concurrently through the per-die worker pool (the MPIBC
// timing optimization does not change the functional behaviour, only
// the latency model).
func (e *Engine) broadcast(db *Database, qPacked []byte, st *QueryStats) error {
	planes := e.SSD.Cfg.Geo.Planes()
	tasks := make([]planeTask, planes)
	for p := 0; p < planes; p++ {
		tasks[p] = planeTask{plane: p, run: func() error {
			return e.ibcPlane(db, p, qPacked)
		}}
	}
	if err := e.pool.run(tasks); err != nil {
		return err
	}
	st.IBCBroadcasts += planes
	return nil
}

// ibcPlane broadcasts the packed query into one plane's cache latch.
func (e *Engine) ibcPlane(db *Database, plane int, qPacked []byte) error {
	_, err := e.FSM.Execute(flash.Command{
		Op: flash.OpIBC, Plane: plane, Query: qPacked, SlotBytes: db.slotBytes,
	})
	return err
}

// planeScan accumulates one per-plane scan task's output: the
// surviving entries (ascending by position) plus the event counts the
// task may not write into the shared QueryStats directly.
type planeScan struct {
	entries   []TTLEntry
	pages     int
	scanned   int
	survivors int
	ttlBytes  int64
}

// scanPlane executes the in-plane distance computation over one
// plane's view of a slotted SLC region: page read, latch XOR, per-slot
// fail-bit count, optional pass/fail distance filtering, and TTL
// transfer of survivors. first/last bound the slot positions of the
// overall scan; only this plane's pages are touched, so concurrent
// scanPlane calls on different planes share no mutable device state.
func (e *Engine) scanPlane(db *Database, region ssd.Region, view ssd.PlaneView, first, last int, filter bool, metaTag *uint8) (planeScan, error) {
	geo := e.SSD.Cfg.Geo
	firstPage := first / db.embPerPage
	lastPage := last / db.embPerPage
	entrySize := db.ttlEntryBytes()
	var ps planeScan
	var oobBuf []byte

	for _, p := range view.PageIdxs {
		addr, err := region.AddressOf(geo, p)
		if err != nil {
			return ps, err
		}
		plane := addr.PlaneIndex(geo)
		if _, err := e.FSM.Execute(flash.Command{Op: flash.OpReadPage, Addr: addr}); err != nil {
			return ps, err
		}
		if _, err := e.FSM.Execute(flash.Command{Op: flash.OpXOR, Plane: plane}); err != nil {
			return ps, err
		}
		// The sensing latch holds the page's whole OOB area until the
		// next read on this plane; pull it once and slice per slot.
		oobBuf, err = e.SSD.Dev.ReadOOB(plane, oobBuf)
		if err != nil {
			return ps, err
		}
		ps.pages++

		loSlot, hiSlot := 0, db.embPerPage-1
		if p == firstPage {
			loSlot = first % db.embPerPage
		}
		if p == lastPage {
			hiSlot = last % db.embPerPage
		}
		for s := loSlot; s <= hiSlot; s++ {
			dist, err := e.FSM.Execute(flash.Command{
				Op: flash.OpGenDist, Plane: plane, SlotBytes: db.slotBytes,
				Mini: flash.MiniPage{Page: addr, Slot: s},
			})
			if err != nil {
				return ps, err
			}
			dadr, radr, tag := decodeLinkage(oobBuf[s*oobBytesPerSlot : (s+1)*oobBytesPerSlot])
			if dadr == InvalidDADR {
				continue // cluster-alignment padding slot
			}
			ps.scanned++
			if filter && !e.SSD.Dev.PassFail(dist, db.filterThreshold) {
				continue
			}
			if metaTag != nil && tag != *metaTag {
				continue
			}
			if _, err := e.FSM.Execute(flash.Command{
				Op: flash.OpReadTTL, Plane: plane, EntryBytes: entrySize,
			}); err != nil {
				return ps, err
			}
			ps.survivors++
			ps.ttlBytes += int64(entrySize)
			ps.entries = append(ps.entries, TTLEntry{
				Dist: dist, Pos: p*db.embPerPage + s, DADR: dadr, RADR: radr, Tag: tag,
			})
		}
	}
	return ps, nil
}

// scanRange scans embedding positions [first, last] of a slotted SLC
// region by dispatching one scan task per plane of the stripe to the
// worker pool and merging the partial results in position order — the
// exact order the old sequential page loop produced, so results stay
// bit-identical while independent planes execute concurrently. It
// returns the surviving entries plus the wave count (max pages on one
// plane) and total pages sensed.
func (e *Engine) scanRange(db *Database, region ssd.Region, first, last int, filter bool, metaTag *uint8, st *QueryStats) ([]TTLEntry, int, int, error) {
	planes := e.SSD.Cfg.Geo.Planes()
	views := region.PlaneViews(planes, first/db.embPerPage, last/db.embPerPage)
	results := make([]planeScan, len(views))
	tasks := make([]planeTask, len(views))
	for i, v := range views {
		tasks[i] = planeTask{plane: v.Plane, run: func() error {
			ps, err := e.scanPlane(db, region, v, first, last, filter, metaTag)
			if err != nil {
				return err
			}
			results[i] = ps
			return nil
		}}
	}
	if err := e.pool.run(tasks); err != nil {
		return nil, 0, 0, err
	}
	waves, totalPages := mergeScanStats(results, st)
	return mergeEntriesByPos(results), waves, totalPages, nil
}

// mergeScanStats folds per-plane scan counts into st and returns the
// wave count (max pages on any plane) and the total pages sensed.
func mergeScanStats(results []planeScan, st *QueryStats) (waves, totalPages int) {
	for _, ps := range results {
		if ps.pages > waves {
			waves = ps.pages
		}
		totalPages += ps.pages
		st.EntriesScanned += ps.scanned
		st.Survivors += ps.survivors
		st.TTLBytes += ps.ttlBytes
	}
	return waves, totalPages
}

// mergeEntriesByPos merges the per-plane entry lists (each ascending
// by Pos) into one ascending list — the deterministic order the
// sequential page-by-page scan produced, which downstream quickselect
// partitioning depends on for bit-identical results. Lists merge as a
// pairwise cascade: O(n log planes) comparisons.
func mergeEntriesByPos(results []planeScan) []TTLEntry {
	lists := make([][]TTLEntry, 0, len(results))
	for _, ps := range results {
		if len(ps.entries) > 0 {
			lists = append(lists, ps.entries)
		}
	}
	if len(lists) == 0 {
		return nil
	}
	for len(lists) > 1 {
		next := make([][]TTLEntry, 0, (len(lists)+1)/2)
		for i := 0; i+1 < len(lists); i += 2 {
			next = append(next, mergeTwoByPos(lists[i], lists[i+1]))
		}
		if len(lists)%2 == 1 {
			next = append(next, lists[len(lists)-1])
		}
		lists = next
	}
	return lists[0]
}

// mergeTwoByPos merges two Pos-ascending entry lists.
func mergeTwoByPos(a, b []TTLEntry) []TTLEntry {
	out := make([]TTLEntry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Pos < b[j].Pos {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// ttlEntryBytes is the on-channel size of one TTL entry: DIST (2B) +
// EMB (slotBytes) + EADR mini-page address (4B) + DADR (4B) + RADR
// (4B) + TAG (1B).
func (db *Database) ttlEntryBytes() int { return 2 + db.slotBytes + 4 + 4 + 4 + 1 }

// finish runs the controller-side pipeline tail: quickselect to the
// rerank pool, INT8 rescoring, quicksort, and document retrieval
// (steps 5-9 of Fig 6).
func (e *Engine) finish(db *Database, query []float32, entries []TTLEntry, k int, opt SearchOptions, st *QueryStats) ([]DocResult, error) {
	st.SelectInput += len(entries)
	pool := k * RerankFactor
	if pool > len(entries) {
		pool = len(entries)
	}
	quickselectTTL(entries, pool)
	cands := entries[:pool]

	// Rerank: fetch INT8 embeddings by RADR, grouped by page so each
	// page is sensed once.
	q8 := db.params.Int8Quantize(query, nil)
	byPage := make(map[int][]int) // page -> candidate indices
	for i, c := range cands {
		byPage[int(c.RADR)/db.int8PerPage] = append(byPage[int(c.RADR)/db.int8PerPage], i)
	}
	geo := e.SSD.Cfg.Geo
	rerankPlanePages := make(map[int]int)
	reranked := make([]DocResult, 0, len(cands))
	var pageBuf, oobBuf []byte
	for page, idxs := range byPage {
		addr, err := db.rec.Int8s.AddressOf(geo, page)
		if err != nil {
			return nil, err
		}
		data, oob, err := e.SSD.Dev.ReadPageInto(addr, pageBuf, oobBuf)
		if err != nil {
			return nil, err
		}
		pageBuf, oobBuf = data, oob
		st.RerankPages++
		rerankPlanePages[addr.PlaneIndex(geo)]++
		for _, i := range idxs {
			c := cands[i]
			slot := int(c.RADR) % db.int8PerPage
			emb := vecmath.UnpackInt8Bytes(data[slot*db.int8Bytes:(slot+1)*db.int8Bytes], nil)
			d := vecmath.L2SquaredInt8(q8, emb)
			reranked = append(reranked, DocResult{ID: int(c.DADR), Dist: float32(d)})
		}
	}
	for _, n := range rerankPlanePages {
		if n > st.RerankWaves {
			st.RerankWaves = n
		}
	}
	st.RerankCount += len(cands)

	// Quicksort the reranked pool, keep top-k.
	sort.Slice(reranked, func(a, b int) bool {
		if reranked[a].Dist != reranked[b].Dist {
			return reranked[a].Dist < reranked[b].Dist
		}
		return reranked[a].ID < reranked[b].ID
	})
	st.SortedEntries += len(reranked)
	if k < len(reranked) {
		reranked = reranked[:k]
	}

	if opt.SkipDocs {
		return reranked, nil
	}

	// Document identification and retrieval (step 9): group DADRs by
	// document page.
	docPages := make(map[int][]int)
	for i, r := range reranked {
		docPages[r.ID/db.docsPerPage] = append(docPages[r.ID/db.docsPerPage], i)
	}
	for page, idxs := range docPages {
		addr, err := db.rec.Documents.AddressOf(geo, page)
		if err != nil {
			return nil, err
		}
		data, oob, err := e.SSD.Dev.ReadPageInto(addr, pageBuf, oobBuf)
		if err != nil {
			return nil, err
		}
		pageBuf, oobBuf = data, oob
		st.DocPages++
		for _, i := range idxs {
			slot := reranked[i].ID % db.docsPerPage
			doc := make([]byte, db.docBytes)
			copy(doc, data[slot*db.docBytes:(slot+1)*db.docBytes])
			reranked[i].Doc = doc
			st.DocBytes += int64(db.docBytes)
		}
	}
	return reranked, nil
}

// quickselectTTL partitions entries so the k smallest distances occupy
// entries[:k] — the quickselect kernel the embedded core runs.
func quickselectTTL(es []TTLEntry, k int) {
	if k <= 0 || k >= len(es) {
		return
	}
	lo, hi := 0, len(es)-1
	for lo < hi {
		p := partitionTTL(es, lo, hi)
		if p < k-1 {
			lo = p + 1
		} else {
			hi = p
		}
	}
}

func partitionTTL(es []TTLEntry, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if es[mid].Dist < es[lo].Dist {
		es[mid], es[lo] = es[lo], es[mid]
	}
	if es[hi].Dist < es[lo].Dist {
		es[hi], es[lo] = es[lo], es[hi]
	}
	if es[hi].Dist < es[mid].Dist {
		es[hi], es[mid] = es[mid], es[hi]
	}
	pivot := es[mid].Dist
	i, j := lo, hi
	for {
		for es[i].Dist < pivot {
			i++
		}
		for es[j].Dist > pivot {
			j--
		}
		if i >= j {
			return j
		}
		es[i], es[j] = es[j], es[i]
		i++
		j--
	}
}

// CalibrateNProbe finds the smallest nprobe meeting the Recall@k
// target against ground truth, mirroring the paper's accuracy sweep.
func (e *Engine) CalibrateNProbe(dbID int, queries [][]float32, groundTruth [][]int, k int, target float64) (int, error) {
	db, err := e.DB(dbID)
	if err != nil {
		return 0, err
	}
	nlist := len(db.rivf)
	if nlist == 0 {
		return 0, fmt.Errorf("reis: database %d is not IVF-deployed", dbID)
	}
	for nprobe := 1; nprobe <= nlist; nprobe = growProbe(nprobe) {
		hits, total := 0, 0
		// The sweep's queries are admitted as one batch per nprobe:
		// results are bit-identical to per-query IVFSearch calls, but
		// plane tasks overlap across queries.
		results, _, err := e.IVFSearchBatch(dbID, queries, k, SearchOptions{NProbe: nprobe, SkipDocs: true})
		if err != nil {
			return 0, err
		}
		for qi, res := range results {
			got := make(map[int]struct{}, len(res))
			for _, r := range res {
				got[r.ID] = struct{}{}
			}
			gt := groundTruth[qi]
			if len(gt) > k {
				gt = gt[:k]
			}
			for _, id := range gt {
				if _, ok := got[id]; ok {
					hits++
				}
			}
			total += len(gt)
		}
		if total > 0 && float64(hits)/float64(total) >= target {
			return nprobe, nil
		}
	}
	return nlist, nil
}

func growProbe(p int) int {
	if p < 8 {
		return p + 1
	}
	return p + p/4
}
