package reis

import (
	"context"
	"fmt"
	"slices"

	"reis/internal/flash"
	"reis/internal/ssd"
	"reis/internal/vecmath"
)

// TTLEntry is one Temporal Top List record (Sec 4.2.1, structure C in
// Fig 4): the distance, the embedding's mini-page position, and the
// linkage addresses picked up from the OOB area during the scan.
//
// Candidate selection ranks TTL entries under the (Dist, DADR) total
// order: Hamming distance first, document address as the tie-break.
// DADR is stable for a document's whole lifetime (unlike Pos, which
// compaction rewrites), so the order — and with it every selection
// boundary, pruning decision and final result — is deterministic
// across scan topologies, queue schedules and GC interleavings.
type TTLEntry struct {
	Dist int
	Pos  int // embedding position in the binary region (mini-page address)
	DADR uint32
	RADR uint32
	Tag  uint8
}

// QueryStats counts the device events of one query; the timing and
// energy models consume it.
type QueryStats struct {
	// CoarseWaves/FineWaves are the maximum pages any single plane
	// read during the phase (the parallel critical path).
	CoarseWaves int
	FineWaves   int
	// CoarsePages/FinePages are total pages sensed.
	CoarsePages int
	FinePages   int
	// EntriesScanned is the number of embedding slots distance-checked.
	EntriesScanned int
	// Survivors is the number of TTL entries transferred to controller
	// DRAM (after distance filtering, if enabled).
	Survivors int
	// TTLBytes is the total bytes those entries occupied on channels.
	TTLBytes int64
	// RerankCount / RerankPages cover the INT8 rescoring stage.
	RerankCount int
	RerankPages int
	RerankWaves int
	// DocPages/DocBytes cover document retrieval.
	DocPages int
	DocBytes int64
	// IBCBroadcasts counts query broadcasts (one per plane without
	// MPIBC, one per die with it — timing handles the distinction;
	// this is the functional count of LoadCache operations).
	IBCBroadcasts int
	// SelectInput is the number of entries fed to quickselect.
	SelectInput int
	// SortedEntries is the number of entries quicksorted at the end.
	SortedEntries int
	// CoarseEntries is the number of TTL-C (centroid) entries produced
	// by the coarse phase; Survivors - CoarseEntries are fine-scan
	// survivors.
	CoarseEntries int
	// PrunedPages counts pages a pruned search (SearchOptions.Prune)
	// never sensed because a whole segment's centroid-distance lower
	// bound exceeded the query's top-k threshold. They are NOT folded
	// into CoarsePages/FinePages: those keep counting sensed pages
	// only, so page-based gates stay meaningful.
	PrunedPages int
	// AbortedWaves is the parallel-critical-path analogue of
	// PrunedPages: the wave count the aborted segments would have
	// added (max pages on any one plane, aggregated like FineWaves).
	AbortedWaves int
	// PrunedSlots counts slots whose distance was computed but whose
	// TTL transfer the threshold suppressed (they could not enter the
	// rerank pool); disjoint from Survivors.
	PrunedSlots int
	// CachedPages/CachedSlots count pages and slots scanned from the
	// DRAM hot-cluster cache instead of flash. They are NOT folded into
	// FinePages/EntriesScanned — those keep counting flash work only, so
	// the page-partition invariant (CachedPages + flash FinePages ==
	// uncached FinePages) is checkable and the timing model can cost
	// DRAM reads instead of flash sense+transfer.
	CachedPages int
	CachedSlots int
	// ResultCacheHits is 1 when the whole query was served from the
	// result cache (every other counter is then zero).
	ResultCacheHits int
}

// Add accumulates other into s (for batch reporting).
func (s *QueryStats) Add(o QueryStats) {
	s.CoarseWaves += o.CoarseWaves
	s.FineWaves += o.FineWaves
	s.CoarsePages += o.CoarsePages
	s.FinePages += o.FinePages
	s.EntriesScanned += o.EntriesScanned
	s.Survivors += o.Survivors
	s.TTLBytes += o.TTLBytes
	s.RerankCount += o.RerankCount
	s.RerankPages += o.RerankPages
	s.RerankWaves += o.RerankWaves
	s.DocPages += o.DocPages
	s.DocBytes += o.DocBytes
	s.IBCBroadcasts += o.IBCBroadcasts
	s.SelectInput += o.SelectInput
	s.SortedEntries += o.SortedEntries
	s.CoarseEntries += o.CoarseEntries
	s.PrunedPages += o.PrunedPages
	s.AbortedWaves += o.AbortedWaves
	s.PrunedSlots += o.PrunedSlots
	s.CachedPages += o.CachedPages
	s.CachedSlots += o.CachedSlots
	s.ResultCacheHits += o.ResultCacheHits
}

// DocResult is one retrieved document chunk. Result slices are sorted
// by (Dist, ID) — the post-rerank analogue of the scan-side
// (Dist, DADR) order on TTLEntry, and deterministic for the same
// reason.
type DocResult struct {
	// ID is the original database entry id (decoded from DADR).
	ID int
	// Dist is the reranked INT8 squared-L2 distance.
	Dist float32
	// Doc is the document chunk content.
	Doc []byte
}

// RerankFactor is the candidate-widening multiple before INT8
// rescoring: the paper selects the "10k embeddings closest to the
// query" before reranking to top-k (Sec 4.3.2 step 6).
const RerankFactor = 10

// SearchOptions modify a single query.
type SearchOptions struct {
	// NProbe is the number of IVF clusters scanned (IVF_Search only).
	NProbe int
	// MetaTag, when non-nil, enables metadata filtering (Sec 7.1):
	// only embeddings whose OOB tag equals *MetaTag are considered.
	MetaTag *uint8
	// SkipDocs skips the document-retrieval stage (pure-ANNS
	// benchmarks like SIFT/DEEP).
	SkipDocs bool
	// Prune opts into threshold-propagated top-k pruning: the scan
	// runs in rounds, and after each round the controller tightens a
	// per-query distance bound (the pool-th smallest live distance so
	// far) that lets planes skip TTL transfers and whole segments that
	// cannot beat it. Results are bit-identical to the unpruned path;
	// scan stats differ (fewer pages/waves/survivors, plus the
	// PrunedPages/AbortedWaves/PrunedSlots counters) but stay
	// topology-equal among pruned runs. See DESIGN.md, "Threshold
	// propagation and pruning".
	Prune bool
}

// engineScratch holds the engine-owned pooled buffers of the query
// pipeline: query encodings, merge outputs, and the controller-tail
// working sets. The engine serves one top-level API call at a time
// (batched admission is the concurrency mechanism; see DESIGN.md), so
// these recycle across queries without locking. Everything handed back
// to the caller (DocResult slices, document bytes) is freshly
// allocated — scratch memory never escapes.
type engineScratch struct {
	// Query encoding.
	qbits     []uint64
	qpacked   []byte
	packedBuf []byte
	packed    [][]byte
	// Scan dispatch and merge.
	spans     []ssd.PlaneSpan
	results   []planeScan
	tasks     []planeTask
	flatSegs  []scanSeg // pooled SlotRange→scanSeg conversion of the flat plan
	lists     [][]TTLEntry
	planeWork [][]batchItem
	entries   []TTLEntry // merged fine-phase entries of the current query
	cents     []TTLEntry // merged coarse-phase (centroid) entries
	// Controller tail (finish): working sets and the page source
	// adapter handed to the shared runTail.
	tail tailScratch
	src  engineTailSource
}

// pageIdx pairs a flash page with a candidate index; sorting a pooled
// []pageIdx replaces the map-based page grouping of the controller
// tail (deterministic iteration order, no steady-state allocation).
type pageIdx struct {
	page, idx int
}

func cmpPageIdx(a, b pageIdx) int {
	if a.page != b.page {
		return a.page - b.page
	}
	return a.idx - b.idx
}

// cmpTTLDistPos orders centroid entries by distance, position breaking
// ties — a total order (positions are unique), so the unstable sort is
// deterministic.
func cmpTTLDistPos(a, b TTLEntry) int {
	if a.Dist != b.Dist {
		return a.Dist - b.Dist
	}
	return a.Pos - b.Pos
}

// cmpDocResult orders reranked results by distance, id breaking ties —
// a total order (ids are unique within a candidate set).
func cmpDocResult(a, b DocResult) int {
	if a.Dist != b.Dist {
		if a.Dist < b.Dist {
			return -1
		}
		return 1
	}
	return a.ID - b.ID
}

// runTasks dispatches a pooled task list through the worker pool and
// then zeroes it, so stale closures (and the per-call state they
// capture) never stay reachable from the pooled backing array after
// the call completes.
func (e *Engine) runTasks(tasks []planeTask) error {
	err := e.pool.run(tasks)
	clear(tasks)
	e.scr.tasks = tasks[:0]
	return err
}

// packQuery binary-quantizes and packs one query into the pooled
// single-query encoding buffer.
func (e *Engine) packQuery(query []float32) []byte {
	e.scr.qbits = vecmath.BinaryQuantize(query, e.scr.qbits)
	e.scr.qpacked = vecmath.PackBinaryBytes(e.scr.qbits, e.scr.qpacked)
	return e.scr.qpacked
}

// Search implements the Search() API command (Table 1): brute-force
// in-storage scan of the whole binary region, rerank, and document
// retrieval.
func (e *Engine) Search(dbID int, query []float32, k int, opt SearchOptions) ([]DocResult, QueryStats, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	db, err := e.db(dbID)
	if err != nil {
		return nil, QueryStats{}, err
	}
	if err := db.checkQuery(query, k); err != nil {
		return nil, QueryStats{}, err
	}
	if opt.Prune {
		// Threshold pruning is round-based and served by the batched
		// scheduler (results are bit-identical; the IBC accounting
		// follows the batch path's per-plane broadcast count).
		results, sts, err := e.searchBatch(context.Background(), db, [][]float32{query}, k, opt)
		if err != nil {
			return nil, QueryStats{}, err
		}
		return results[0], sts[0], nil
	}
	var st QueryStats
	qPacked := e.packQuery(query)
	if err := e.broadcast(db, qPacked, &st); err != nil {
		return nil, st, err
	}
	// The brute-force scan covers the live segment plan: one range for
	// a freshly deployed database, one more per append batch.
	entries := e.scr.entries[:0]
	for _, r := range db.flatSegs() {
		var waves, pages int
		entries, waves, pages, err = e.scanRange(db, db.rec.Embeddings, r.First, r.Last, e.Opts.DistanceFilter, opt.MetaTag, &st, entries)
		if err != nil {
			e.scr.entries = entries
			return nil, st, err
		}
		st.FineWaves += waves
		st.FinePages += pages
	}
	e.scr.entries = entries
	res, err := e.finish(db, query, entries, k, opt, &st)
	return res, st, err
}

// IVFSearch implements the IVF_Search() API command (Table 1):
// coarse centroid search, fine scan of the NProbe nearest clusters,
// rerank, and document retrieval.
func (e *Engine) IVFSearch(dbID int, query []float32, k int, opt SearchOptions) ([]DocResult, QueryStats, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	db, err := e.db(dbID)
	if err != nil {
		return nil, QueryStats{}, err
	}
	if db.rivf == nil {
		return nil, QueryStats{}, fmt.Errorf("reis: database %d was not deployed with IVF_Deploy", dbID)
	}
	if err := db.checkQuery(query, k); err != nil {
		return nil, QueryStats{}, err
	}
	if opt.Prune {
		results, sts, err := e.ivfSearchBatch(context.Background(), db, [][]float32{query}, k, opt)
		if err != nil {
			return nil, QueryStats{}, err
		}
		return results[0], sts[0], nil
	}
	nprobe := opt.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(db.rivf) {
		nprobe = len(db.rivf)
	}
	if err := e.refreshCache(db); err != nil {
		return nil, QueryStats{}, err
	}
	var st QueryStats
	qPacked := e.packQuery(query)
	if err := e.broadcast(db, qPacked, &st); err != nil {
		return nil, st, err
	}

	// Coarse-grained search over the centroid region (TTL-C).
	nlist := len(db.rivf)
	// Distance filtering does not apply to the coarse scan: TTL-C must
	// rank every centroid so the nprobe nearest clusters are exact
	// (Sec 4.3.1 describes DF for database embeddings only).
	cents, waves, pages, err := e.scanRange(db, db.rec.Centroids, 0, nlist-1, false, nil, &st, e.scr.cents[:0])
	e.scr.cents = cents
	if err != nil {
		return nil, st, err
	}
	st.CoarseWaves = waves
	st.CoarsePages = pages
	st.CoarseEntries = len(cents)
	st.SelectInput += len(cents)
	slices.SortFunc(cents, cmpTTLDistPos)
	if nprobe > len(cents) {
		nprobe = len(cents)
	}

	// Fine-grained search inside the selected clusters (TTL-E): each
	// cluster's posting list is one or more slot ranges (the deployed
	// range plus any appended runs), scanned in list order.
	entries := e.scr.entries[:0]
	for _, c := range cents[:nprobe] {
		db.cache.probe(c.Pos)
		pc := db.cache.pinnedFor(c.Pos)
		for ri, r := range db.clusterSegs(c.Pos) {
			if pc != nil {
				// Pinned cluster: scan the DRAM copy with the same
				// kernel and predicates; no flash page is sensed.
				var cp, cs int
				entries, cp, cs = db.cache.scanPinned(&pc.ranges[ri], qPacked, db.cachedParams(e.Opts.DistanceFilter, opt.MetaTag, 0), entries)
				st.CachedPages += cp
				st.CachedSlots += cs
				continue
			}
			var w, p int
			entries, w, p, err = e.scanRange(db, db.rec.Embeddings, r.First, r.Last, e.Opts.DistanceFilter, opt.MetaTag, &st, entries)
			if err != nil {
				e.scr.entries = entries
				return nil, st, err
			}
			st.FineWaves += w
			st.FinePages += p
		}
	}
	e.scr.entries = entries
	res, err := e.finish(db, query, entries, k, opt, &st)
	return res, st, err
}

func (db *Database) checkQuery(query []float32, k int) error {
	return checkQueryAgainst(db.Dim, db.ID, query, k)
}

// broadcast performs Input Broadcasting: one IBC command per plane,
// dispatched concurrently through the per-die worker pool (the MPIBC
// timing optimization does not change the functional behaviour, only
// the latency model).
func (e *Engine) broadcast(db *Database, qPacked []byte, st *QueryStats) error {
	planes := e.SSD.Cfg.Geo.Planes()
	tasks := e.scr.tasks[:0]
	run := func(_ *workerScratch, plane, _ int) error {
		return e.ibcPlane(db, plane, qPacked)
	}
	for p := 0; p < planes; p++ {
		tasks = append(tasks, planeTask{plane: p, run: run})
	}
	if err := e.runTasks(tasks); err != nil {
		return err
	}
	st.IBCBroadcasts += planes
	return nil
}

// ibcPlane broadcasts the packed query into one plane's cache latch.
func (e *Engine) ibcPlane(db *Database, plane int, qPacked []byte) error {
	_, err := e.FSM.Execute(flash.Command{
		Op: flash.OpIBC, Plane: plane, Query: qPacked, SlotBytes: db.slotBytes,
	})
	return err
}

// planeScan records one per-plane scan task's outcome: the window of
// the owning worker's entry arena holding the surviving entries
// (ascending by position) plus the event counts the task may not write
// into the shared QueryStats directly. The window is stored as offsets
// rather than a slice so arena growth by later tasks never invalidates
// it.
type planeScan struct {
	plane     int
	lo, hi    int // entry window [lo, hi) in the worker's arena
	pages     int
	scanned   int
	survivors int
	pruned    int // slots whose TTL transfer the pruning bound suppressed
	ttlBytes  int64
}

// scanPlane executes the in-plane distance computation over one
// plane's span of a slotted SLC region: page read, one page-granular
// GEN_DIST_PAGE wave per page (fused latch XOR + per-slot fail-bit
// counts into the worker's distance buffer), optional pass/fail
// distance filtering, and TTL transfer of survivors. first/last bound
// the slot positions of the overall scan; only this plane's pages are
// touched, so concurrent scanPlane calls on different planes share no
// mutable device state. Survivors are appended to the worker's entry
// arena.
//
// bound > 0 is the query's current top-k pruning threshold: it rides
// the GEN_DIST_PAGE command into the plane, and slots strictly above
// it skip the TTL transfer (counted in planeScan.pruned). Ties at the
// bound always survive, which — together with the (Dist, DADR)
// total-order selection downstream — is what keeps pruned results
// bit-identical to unpruned ones.
func (e *Engine) scanPlane(db *Database, region ssd.Region, sc *workerScratch, span ssd.PlaneSpan, first, last int, filter bool, metaTag *uint8, bound int) (planeScan, error) {
	geo := e.SSD.Cfg.Geo
	firstPage := first / db.embPerPage
	lastPage := last / db.embPerPage
	entrySize := db.ttlEntryBytes()
	ps := planeScan{plane: span.Plane, lo: len(sc.entries), hi: len(sc.entries)}
	if cap(sc.dists) < db.embPerPage {
		sc.dists = make([]int, db.embPerPage)
	}
	dists := sc.dists[:db.embPerPage]

	for pi := 0; pi < span.Count; pi++ {
		p := span.First + pi*span.Stride
		addr, err := region.AddressOf(geo, p)
		if err != nil {
			return ps, err
		}
		plane := addr.PlaneIndex(geo)
		if _, err := e.FSM.Execute(flash.Command{Op: flash.OpReadPage, Addr: addr}); err != nil {
			return ps, err
		}
		// The sensing latch holds the page's whole OOB area until the
		// next read on this plane; pull it once and slice per slot.
		sc.oob, err = e.SSD.Dev.ReadOOB(plane, sc.oob)
		if err != nil {
			return ps, err
		}
		ps.pages++

		loSlot, hiSlot := 0, db.embPerPage-1
		if p == firstPage {
			loSlot = first % db.embPerPage
		}
		if p == lastPage {
			hiSlot = last % db.embPerPage
		}
		// One page-granular wave computes every requested slot distance
		// of the sensed page, replacing hiSlot-loSlot+1 per-slot
		// GEN_DIST round-trips (plus the separate XOR) with a single
		// command whose accounting is bit-identical.
		if _, err := e.FSM.Execute(flash.Command{
			Op: flash.OpGenDistPage, Plane: plane, SlotBytes: db.slotBytes,
			Mini:  flash.MiniPage{Page: addr, Slot: loSlot},
			Slots: hiSlot - loSlot + 1, Dists: dists, Bound: bound,
		}); err != nil {
			return ps, err
		}
		for s := loSlot; s <= hiSlot; s++ {
			dist := dists[s-loSlot]
			dadr, radr, tag := decodeLinkage(sc.oob[s*oobBytesPerSlot : (s+1)*oobBytesPerSlot])
			if dadr == InvalidDADR {
				continue // cluster-alignment padding slot
			}
			ps.scanned++
			if filter && !e.SSD.Dev.PassFail(dist, db.filterThreshold) {
				continue
			}
			if metaTag != nil && tag != *metaTag {
				continue
			}
			if bound > 0 && dist > bound {
				// The entry would have streamed to controller DRAM, but
				// it cannot displace any of the pool's current top
				// distances (strict comparison keeps bound ties, so the
				// rerank pool is unchanged). Skip the transfer.
				ps.pruned++
				continue
			}
			if _, err := e.FSM.Execute(flash.Command{
				Op: flash.OpReadTTL, Plane: plane, EntryBytes: entrySize,
			}); err != nil {
				return ps, err
			}
			ps.survivors++
			ps.ttlBytes += int64(entrySize)
			sc.entries = append(sc.entries, TTLEntry{
				Dist: dist, Pos: p*db.embPerPage + s, DADR: dadr, RADR: radr, Tag: tag,
			})
		}
	}
	ps.hi = len(sc.entries)
	return ps, nil
}

// scanRange scans embedding positions [first, last] of a slotted SLC
// region by dispatching one scan task per plane of the stripe to the
// worker pool and merging the partial results in position order — the
// exact order the old sequential page loop produced, so results stay
// bit-identical while independent planes execute concurrently. Merged
// entries are appended to dst (a pooled buffer owned by the caller);
// the function also returns the wave count (max pages on one plane)
// and total pages sensed.
func (e *Engine) scanRange(db *Database, region ssd.Region, first, last int, filter bool, metaTag *uint8, st *QueryStats, dst []TTLEntry) ([]TTLEntry, int, int, error) {
	planes := e.SSD.Cfg.Geo.Planes()
	e.pool.resetArenas()
	spans := region.AppendPlaneSpans(e.scr.spans[:0], planes, first/db.embPerPage, last/db.embPerPage)
	e.scr.spans = spans
	if cap(e.scr.results) < len(spans) {
		e.scr.results = make([]planeScan, len(spans))
	}
	results := e.scr.results[:len(spans)]
	tasks := e.scr.tasks[:0]
	run := func(sc *workerScratch, _, i int) error {
		ps, err := e.scanPlane(db, region, sc, spans[i], first, last, filter, metaTag, 0)
		if err != nil {
			return err
		}
		results[i] = ps
		return nil
	}
	for i, s := range spans {
		tasks = append(tasks, planeTask{plane: s.Plane, arg: i, run: run})
	}
	if err := e.runTasks(tasks); err != nil {
		return dst, 0, 0, err
	}
	waves, totalPages := mergeScanStats(results, st)
	return e.appendMergeByPos(dst, results), waves, totalPages, nil
}

// mergeScanStats folds per-plane scan counts into st and returns the
// wave count (max pages on any plane) and the total pages sensed.
func mergeScanStats(results []planeScan, st *QueryStats) (waves, totalPages int) {
	for _, ps := range results {
		if ps.pages > waves {
			waves = ps.pages
		}
		totalPages += ps.pages
		st.EntriesScanned += ps.scanned
		st.Survivors += ps.survivors
		st.PrunedSlots += ps.pruned
		st.TTLBytes += ps.ttlBytes
	}
	return waves, totalPages
}

// appendMergeByPos merges the per-plane entry windows (each ascending
// by Pos, resident in the worker arenas) into dst in one k-way pass —
// ascending by Pos overall, the deterministic order the sequential
// page-by-page scan produced, which downstream quickselect partitioning
// depends on for bit-identical results. Positions are unique across
// planes (each page belongs to exactly one plane), so the merge order
// is total. Unlike the earlier pairwise cascade, no intermediate merge
// levels are allocated: entries move straight from the arenas into the
// pooled output.
func (e *Engine) appendMergeByPos(dst []TTLEntry, results []planeScan) []TTLEntry {
	lists := e.scr.lists[:0]
	for _, ps := range results {
		if ps.hi > ps.lo {
			lists = append(lists, e.pool.scratchOf(ps.plane).entries[ps.lo:ps.hi])
		}
	}
	e.scr.lists = lists
	return mergeEntryLists(dst, lists)
}

// mergeEntryLists k-way merges entry lists — each ascending by Pos,
// positions unique across lists — into dst in one pass. The shard
// router reuses it to merge per-device streams at gather time (lists
// is consumed: emptied slices remain in the backing array).
func mergeEntryLists(dst []TTLEntry, lists [][]TTLEntry) []TTLEntry {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0]...)
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	dst = slices.Grow(dst, total)
	for {
		best := -1
		for i, l := range lists {
			if len(l) > 0 && (best < 0 || l[0].Pos < lists[best][0].Pos) {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		// Take the whole run this list wins: every element below the
		// next-best head moves in one append.
		limit := -1
		for i, l := range lists {
			if i != best && len(l) > 0 && (limit < 0 || l[0].Pos < limit) {
				limit = l[0].Pos
			}
		}
		l := lists[best]
		n := len(l)
		if limit >= 0 {
			n = 0
			for n < len(l) && l[n].Pos < limit {
				n++
			}
		}
		dst = append(dst, l[:n]...)
		lists[best] = l[n:]
	}
}

// ttlEntryBytes is the on-channel size of one TTL entry: DIST (2B) +
// EMB (slotBytes) + EADR mini-page address (4B) + DADR (4B) + RADR
// (4B) + TAG (1B).
func (db *Database) ttlEntryBytes() int { return 2 + db.slotBytes + 4 + 4 + 4 + 1 }

// resizeInts returns s resized to n elements, all zero.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// finish runs the controller-side pipeline tail (steps 5-9 of Fig 6)
// over the engine's own regions; the implementation is the shared
// runTail (see tail.go). Working sets live in the engine scratch; only
// the returned results (and their document bytes) are allocated.
func (e *Engine) finish(db *Database, query []float32, entries []TTLEntry, k int, opt SearchOptions, st *QueryStats) ([]DocResult, error) {
	e.scr.src = engineTailSource{e: e, db: db}
	return runTail(&e.scr.src, &e.scr.tail, db.tailParams(e.SSD.Cfg.Geo.Planes()), query, entries, k, opt, st)
}

// quickselectTTL partitions entries so the k smallest occupy
// entries[:k] under the (Dist, DADR) total order — the quickselect
// kernel the embedded core runs. Selecting under a total order (rather
// than by Dist alone) makes the rerank pool a pure set function of the
// entry stream: which boundary-tied entries land in the pool no longer
// depends on array layout. Threshold pruning relies on this — a pruned
// stream is a subset of the unpruned one that provably retains every
// pool member, so total-order selection yields the identical pool. The
// tie-break is the document address rather than the scan position
// because background GC relocates embeddings (copy-forward changes
// Pos) while DADR is stable for a document's whole lifetime — so pool
// membership, and with it every search result, is invariant under
// compaction.
func quickselectTTL(es []TTLEntry, k int) {
	if k <= 0 || k >= len(es) {
		return
	}
	lo, hi := 0, len(es)-1
	for lo < hi {
		p := partitionTTL(es, lo, hi)
		if p < k-1 {
			lo = p + 1
		} else {
			hi = p
		}
	}
}

// ttlLess is the (Dist, DADR) total order of TTL entries (document
// addresses are unique within a stream — every embedding slot owns one
// doc record — and, unlike Pos, survive GC relocation).
func ttlLess(a, b *TTLEntry) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.DADR < b.DADR
}

func partitionTTL(es []TTLEntry, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if ttlLess(&es[mid], &es[lo]) {
		es[mid], es[lo] = es[lo], es[mid]
	}
	if ttlLess(&es[hi], &es[lo]) {
		es[hi], es[lo] = es[lo], es[hi]
	}
	if ttlLess(&es[hi], &es[mid]) {
		es[hi], es[mid] = es[mid], es[hi]
	}
	pivot := es[mid]
	i, j := lo, hi
	for {
		for ttlLess(&es[i], &pivot) {
			i++
		}
		for ttlLess(&pivot, &es[j]) {
			j--
		}
		if i >= j {
			return j
		}
		es[i], es[j] = es[j], es[i]
		i++
		j--
	}
}

// CalibrateNProbe finds the smallest nprobe meeting the Recall@k
// target against ground truth, mirroring the paper's accuracy sweep.
// The packed query encodings and the ground-truth membership sets are
// identical across sweep rounds, so both are built once and reused.
// A successful calibration is recorded on the database, so later host
// commands can address the operating point by TargetRecall alone (the
// accuracy operand R of Table 1; see resolveSearchOptions).
func (e *Engine) CalibrateNProbe(dbID int, queries [][]float32, groundTruth [][]int, k int, target float64) (int, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	db, err := e.db(dbID)
	if err != nil {
		return 0, err
	}
	nlist := len(db.rivf)
	if nlist == 0 {
		return 0, fmt.Errorf("reis: database %d is not IVF-deployed", dbID)
	}
	if len(queries) == 0 {
		return 0, fmt.Errorf("reis: empty query set")
	}
	packed := make([][]byte, len(queries))
	for i, q := range queries {
		if err := db.checkQuery(q, k); err != nil {
			return 0, err
		}
		packed[i] = vecmath.PackBinaryBytes(vecmath.BinaryQuantize(q, nil), nil)
	}
	// The sweep's queries are admitted as one batch per nprobe:
	// results are bit-identical to per-query IVFSearch calls, but
	// plane tasks overlap across queries. Only the queried rows of the
	// ground truth enter the recall denominator.
	nprobe, ok, err := calibrateSweep(nlist, groundTruth[:len(queries)], k, target, func(nprobe int) ([][]DocResult, error) {
		results, _, err := e.ivfSearchBatchPacked(context.Background(), db, queries, packed, k, SearchOptions{NProbe: nprobe, SkipDocs: true})
		return results, err
	})
	if err != nil {
		return 0, err
	}
	if ok {
		db.calib = append(db.calib, recallPoint{target: target, nprobe: nprobe})
	}
	return nprobe, nil
}

// calibrateSweep is the nprobe sweep shared by the single-device and
// sharded calibrations: it grows nprobe until run's Recall@k against
// groundTruth meets target. groundTruth must hold exactly one row per
// swept query (callers slice it to the query count). ok reports
// whether the target was met; the returned nprobe is nlist otherwise.
func calibrateSweep(nlist int, groundTruth [][]int, k int, target float64, run func(nprobe int) ([][]DocResult, error)) (int, bool, error) {
	gtSets := make([]map[int]struct{}, len(groundTruth))
	total := 0
	for qi := range groundTruth {
		gt := groundTruth[qi]
		if len(gt) > k {
			gt = gt[:k]
		}
		set := make(map[int]struct{}, len(gt))
		for _, id := range gt {
			set[id] = struct{}{}
		}
		gtSets[qi] = set
		total += len(gt)
	}
	for nprobe := 1; nprobe <= nlist; nprobe = growProbe(nprobe) {
		results, err := run(nprobe)
		if err != nil {
			return 0, false, err
		}
		hits := 0
		for qi, res := range results {
			for _, r := range res {
				if _, ok := gtSets[qi][r.ID]; ok {
					hits++
				}
			}
		}
		if total > 0 && float64(hits)/float64(total) >= target {
			return nprobe, true, nil
		}
	}
	return nlist, false, nil
}

func growProbe(p int) int {
	if p < 8 {
		return p + 1
	}
	return p + p/4
}
