package dataset

import "fmt"

// Descriptor names one of the paper's evaluation datasets together
// with its full-scale properties and the scaled-down synthetic
// parameters used in this reproduction.
type Descriptor struct {
	// Name as used in the paper's figures.
	Name string
	// PaperEntries is the dataset size reported or implied by the
	// paper (documents/embeddings at full scale).
	PaperEntries int64
	// Dim is the embedding dimensionality (Cohere embed v3 = 1024 for
	// the text datasets; SIFT = 128, DEEP = 96).
	Dim int
	// DocBytes is the per-chunk document size modeled for the dataset
	// (text datasets only; SIFT/DEEP are pure ANNS benchmarks).
	DocBytes int
	// ScaledEntries is the synthetic size generated at scale factor 1.
	ScaledEntries int
	// Clusters controls the topic structure of the generator.
	Clusters int
	// Queries is the evaluation query count at scale factor 1.
	Queries int
}

// Catalog lists the datasets used across the paper's experiments.
// Scaled sizes keep the relative ordering of the originals
// (NQ < HotpotQA < wiki_en < wiki_full) so crossover behaviour is
// preserved while staying tractable in CI.
var Catalog = map[string]Descriptor{
	"NQ":        {Name: "NQ", PaperEntries: 2_681_468, Dim: 1024, DocBytes: 1024, ScaledEntries: 12_288, Clusters: 96, Queries: 64},
	"HotpotQA":  {Name: "HotpotQA", PaperEntries: 5_233_329, Dim: 1024, DocBytes: 1024, ScaledEntries: 24_576, Clusters: 128, Queries: 64},
	"wiki_en":   {Name: "wiki_en", PaperEntries: 41_488_110, Dim: 1024, DocBytes: 1024, ScaledEntries: 49_152, Clusters: 192, Queries: 64},
	"wiki_full": {Name: "wiki_full", PaperEntries: 247_154_006, Dim: 1024, DocBytes: 1024, ScaledEntries: 98_304, Clusters: 256, Queries: 64},
	"SIFT":      {Name: "SIFT", PaperEntries: 1_000_000_000, Dim: 128, DocBytes: 0, ScaledEntries: 65_536, Clusters: 256, Queries: 64},
	"DEEP":      {Name: "DEEP", PaperEntries: 1_000_000_000, Dim: 96, DocBytes: 0, ScaledEntries: 65_536, Clusters: 256, Queries: 64},
}

// Load generates the named catalog dataset at the given scale factor.
// scale divides the entry and query counts (scale=1 is the full scaled
// reproduction size; larger values shrink further for unit tests).
// Load panics on an unknown name or non-positive scale.
func Load(name string, scale int) *Dataset {
	desc, ok := Catalog[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown dataset %q", name))
	}
	if scale <= 0 {
		panic(fmt.Sprintf("dataset: invalid scale %d", scale))
	}
	n := max(256, desc.ScaledEntries/scale)
	queries := max(8, desc.Queries/scale)
	clusters := max(8, desc.Clusters/scale)
	docBytes := desc.DocBytes
	if docBytes == 0 {
		docBytes = 64 // SIFT/DEEP still need a payload for linkage tests
	}
	return Generate(Config{
		Name:     desc.Name,
		N:        n,
		Dim:      desc.Dim,
		Clusters: clusters,
		Queries:  queries,
		DocBytes: docBytes,
		// Harder queries than the unit-test default: real retrieval
		// queries sit between topics, so reaching high recall requires
		// probing several IVF cells — the regime the paper's recall
		// sweeps (0.90-0.98) operate in.
		QueryNoise: 0.5,
		Seed:       seedFor(desc.Name),
	})
}

func seedFor(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
