// Package dataset provides the vector-database workloads used by every
// experiment in this reproduction.
//
// The paper evaluates on real embedding corpora (BEIR NQ and HotpotQA,
// the Cohere multilingual Wikipedia dump wiki_en / wiki_full, and the
// billion-scale SIFT-1B / DEEP-1B collections). Those datasets are not
// available offline, so this package generates deterministic synthetic
// equivalents: clustered Gaussian mixtures on the unit sphere whose
// cluster structure, dimensionality and document-chunk sizes mimic the
// originals at a configurable scale. Queries are generated near data
// points so that exact top-k ground truth is meaningful, and Recall@k
// is computed exactly.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"reis/internal/vecmath"
	"reis/internal/xrand"
)

// Dataset is a fully materialized retrieval workload: database
// embeddings with linked document chunks, query embeddings, and exact
// ground-truth nearest neighbors for the queries.
type Dataset struct {
	Name string
	Dim  int

	// Vectors holds the database embeddings, row-major.
	Vectors [][]float32
	// Docs[i] is the document chunk linked to Vectors[i].
	Docs [][]byte
	// Queries holds the query embeddings.
	Queries [][]float32
	// GroundTruth[q] lists the indices of the exact top-k nearest
	// database vectors for Queries[q], closest first.
	GroundTruth [][]int
	// GroundTruthK is the k used when computing GroundTruth.
	GroundTruthK int
	// ClusterOf[i] is the generator topic that produced Vectors[i];
	// used as the metadata tag in filtered-search experiments.
	ClusterOf []int
}

// Len returns the number of database entries.
func (d *Dataset) Len() int { return len(d.Vectors) }

// Config controls synthetic dataset generation.
type Config struct {
	Name     string
	N        int // number of database vectors
	Dim      int // embedding dimensionality
	Clusters int // number of generator clusters (semantic topics)
	Queries  int // number of query vectors
	K        int // ground-truth depth
	DocBytes int // size of each generated document chunk
	// QueryNoise is the expected norm of the noise vector added to a
	// database vector to form a query (per-component std is
	// QueryNoise/sqrt(Dim), so the value is dimension-independent).
	QueryNoise float64
	// ClusterStd is the expected norm of the within-cluster noise
	// vector before normalization (per-component std is
	// ClusterStd/sqrt(Dim)); smaller values make the data more
	// clustered, which is what makes IVF effective on text embeddings.
	ClusterStd float64
	// BackgroundFrac is the fraction of points drawn with
	// BackgroundStd noise instead of ClusterStd. Real embedding
	// corpora are not clean mixtures: most members of an IVF cell are
	// only loosely related to its centroid, which is what makes the
	// paper's distance filtering effective inside probed clusters.
	// Defaults to 0.5.
	BackgroundFrac float64
	// BackgroundStd is the noise norm for background points
	// (default 1.2).
	BackgroundStd float64
	Seed          uint64
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = max(1, c.N/256)
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.DocBytes == 0 {
		c.DocBytes = 1024
	}
	if c.QueryNoise == 0 {
		c.QueryNoise = 0.25
	}
	if c.ClusterStd == 0 {
		c.ClusterStd = 0.35
	}
	if c.BackgroundFrac == 0 {
		c.BackgroundFrac = 0.5
	}
	if c.BackgroundFrac < 0 { // explicit "no background" marker
		c.BackgroundFrac = 0
	}
	if c.BackgroundStd == 0 {
		c.BackgroundStd = 1.2
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Generate builds a synthetic dataset per cfg. Generation is fully
// deterministic given cfg.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 || cfg.Dim <= 0 {
		panic(fmt.Sprintf("dataset: invalid config N=%d Dim=%d", cfg.N, cfg.Dim))
	}
	rng := xrand.New(cfg.Seed)

	// Cluster centers: random unit vectors.
	centers := make([][]float32, cfg.Clusters)
	for c := range centers {
		v := gaussVec(rng, cfg.Dim)
		vecmath.Normalize(v)
		centers[c] = v
	}

	d := &Dataset{
		Name:         cfg.Name,
		Dim:          cfg.Dim,
		Vectors:      make([][]float32, cfg.N),
		Docs:         make([][]byte, cfg.N),
		GroundTruthK: cfg.K,
	}

	invSqrtDim := 1 / float32(sqrtf(float64(cfg.Dim)))
	clusterSigma := float32(cfg.ClusterStd) * invSqrtDim
	querySigma := float32(cfg.QueryNoise) * invSqrtDim
	backgroundSigma := float32(cfg.BackgroundStd) * invSqrtDim
	d.ClusterOf = make([]int, cfg.N)
	core := make([]int, 0, cfg.N) // indices of tight (non-background) points
	for i := 0; i < cfg.N; i++ {
		c := rng.Intn(cfg.Clusters)
		d.ClusterOf[i] = c
		sigma := clusterSigma
		if rng.Float64() < cfg.BackgroundFrac {
			sigma = backgroundSigma
		} else {
			core = append(core, i)
		}
		v := make([]float32, cfg.Dim)
		for j := range v {
			v[j] = centers[c][j] + sigma*float32(rng.NormFloat64())
		}
		vecmath.Normalize(v)
		d.Vectors[i] = v
		d.Docs[i] = makeDoc(cfg.Name, i, c, cfg.DocBytes)
	}
	if len(core) == 0 {
		for i := range d.Vectors {
			core = append(core, i)
		}
	}

	// Queries: perturbations of random core database vectors,
	// mimicking queries semantically close to some stored chunk.
	d.Queries = make([][]float32, cfg.Queries)
	for q := range d.Queries {
		base := d.Vectors[core[rng.Intn(len(core))]]
		v := make([]float32, cfg.Dim)
		for j := range v {
			v[j] = base[j] + querySigma*float32(rng.NormFloat64())
		}
		vecmath.Normalize(v)
		d.Queries[q] = v
	}

	d.GroundTruth = make([][]int, len(d.Queries))
	for q, qv := range d.Queries {
		d.GroundTruth[q] = ExactTopK(d.Vectors, qv, cfg.K)
	}
	return d
}

func sqrtf(x float64) float64 { return math.Sqrt(x) }

func gaussVec(r *xrand.RNG, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

// makeDoc produces a deterministic pseudo-text document chunk of
// exactly size bytes, tagged with the entry and cluster ids so tests
// can verify end-to-end retrieval returns the right chunk.
func makeDoc(name string, id, cluster, size int) []byte {
	header := fmt.Sprintf("[%s doc=%d topic=%d] ", name, id, cluster)
	b := make([]byte, size)
	copy(b, header)
	const filler = "the quick brown fox jumps over the lazy dog. "
	for i := len(header); i < size; i++ {
		b[i] = filler[(i-len(header))%len(filler)]
	}
	return b
}

// ExactTopK returns the indices of the k nearest vectors to query by
// squared L2 distance, closest first. Ties break toward the lower
// index so results are deterministic.
func ExactTopK(vectors [][]float32, query []float32, k int) []int {
	type cand struct {
		idx  int
		dist float32
	}
	if k > len(vectors) {
		k = len(vectors)
	}
	cands := make([]cand, len(vectors))
	for i, v := range vectors {
		cands[i] = cand{i, vecmath.L2Squared(query, v)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].idx < cands[b].idx
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// Recall computes Recall@k: the fraction of ground-truth neighbors
// that appear in the retrieved lists, averaged over queries. retrieved
// may contain more than k entries per query; only the first k count.
func Recall(groundTruth, retrieved [][]int, k int) float64 {
	if len(groundTruth) != len(retrieved) {
		panic(fmt.Sprintf("dataset: Recall length mismatch %d != %d", len(groundTruth), len(retrieved)))
	}
	if len(groundTruth) == 0 {
		return 0
	}
	var total float64
	for q := range groundTruth {
		gt := groundTruth[q]
		if len(gt) > k {
			gt = gt[:k]
		}
		got := retrieved[q]
		if len(got) > k {
			got = got[:k]
		}
		set := make(map[int]struct{}, len(got))
		for _, id := range got {
			set[id] = struct{}{}
		}
		hits := 0
		for _, id := range gt {
			if _, ok := set[id]; ok {
				hits++
			}
		}
		if len(gt) > 0 {
			total += float64(hits) / float64(len(gt))
		}
	}
	return total / float64(len(groundTruth))
}
