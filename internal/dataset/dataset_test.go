package dataset

import (
	"bytes"
	"math"
	"testing"

	"reis/internal/vecmath"
)

func small(t *testing.T) *Dataset {
	t.Helper()
	return Generate(Config{Name: "test", N: 500, Dim: 64, Clusters: 10, Queries: 20, K: 10, Seed: 1})
}

func TestGenerateShapes(t *testing.T) {
	d := small(t)
	if d.Len() != 500 {
		t.Fatalf("Len = %d", d.Len())
	}
	if len(d.Docs) != 500 || len(d.Queries) != 20 || len(d.GroundTruth) != 20 {
		t.Fatalf("bad shapes: docs=%d queries=%d gt=%d", len(d.Docs), len(d.Queries), len(d.GroundTruth))
	}
	for _, v := range d.Vectors {
		if len(v) != 64 {
			t.Fatalf("vector dim %d", len(v))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := small(t)
	b := small(t)
	for i := range a.Vectors {
		for j := range a.Vectors[i] {
			if a.Vectors[i][j] != b.Vectors[i][j] {
				t.Fatalf("vectors differ at [%d][%d]", i, j)
			}
		}
	}
	for q := range a.GroundTruth {
		for k := range a.GroundTruth[q] {
			if a.GroundTruth[q][k] != b.GroundTruth[q][k] {
				t.Fatalf("ground truth differs at query %d", q)
			}
		}
	}
}

func TestVectorsAreUnitNorm(t *testing.T) {
	d := small(t)
	for i, v := range d.Vectors {
		if n := vecmath.Norm(v); math.Abs(float64(n)-1) > 1e-5 {
			t.Fatalf("vector %d norm %v", i, n)
		}
	}
	for i, v := range d.Queries {
		if n := vecmath.Norm(v); math.Abs(float64(n)-1) > 1e-5 {
			t.Fatalf("query %d norm %v", i, n)
		}
	}
}

func TestDocsAreDistinctAndSized(t *testing.T) {
	d := Generate(Config{Name: "x", N: 100, Dim: 16, Queries: 1, DocBytes: 512, Seed: 2})
	seen := map[string]bool{}
	for i, doc := range d.Docs {
		if len(doc) != 512 {
			t.Fatalf("doc %d size %d", i, len(doc))
		}
		key := string(doc[:32])
		if seen[key] {
			t.Fatalf("duplicate doc header %q", key)
		}
		seen[key] = true
	}
}

func TestDocHeaderEncodesID(t *testing.T) {
	d := Generate(Config{Name: "hdr", N: 10, Dim: 8, Queries: 1, Seed: 3})
	if !bytes.Contains(d.Docs[7], []byte("doc=7")) {
		t.Fatalf("doc 7 header missing id: %q", d.Docs[7][:40])
	}
}

func TestExactTopKOrdering(t *testing.T) {
	vs := [][]float32{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	got := ExactTopK(vs, []float32{0.1, 0}, 3)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExactTopK = %v, want %v", got, want)
		}
	}
}

func TestExactTopKClampsK(t *testing.T) {
	vs := [][]float32{{0}, {1}}
	got := ExactTopK(vs, []float32{0}, 10)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
}

func TestExactTopKTieBreaksByIndex(t *testing.T) {
	vs := [][]float32{{1, 0}, {1, 0}, {0, 1}}
	got := ExactTopK(vs, []float32{1, 0}, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("tie break wrong: %v", got)
	}
}

func TestGroundTruthMatchesExactSearch(t *testing.T) {
	d := small(t)
	for q, qv := range d.Queries {
		want := ExactTopK(d.Vectors, qv, d.GroundTruthK)
		for i := range want {
			if d.GroundTruth[q][i] != want[i] {
				t.Fatalf("query %d ground truth mismatch", q)
			}
		}
	}
}

func TestRecallPerfect(t *testing.T) {
	gt := [][]int{{1, 2, 3}, {4, 5, 6}}
	if r := Recall(gt, gt, 3); r != 1 {
		t.Fatalf("Recall = %v, want 1", r)
	}
}

func TestRecallZero(t *testing.T) {
	gt := [][]int{{1, 2, 3}}
	got := [][]int{{7, 8, 9}}
	if r := Recall(gt, got, 3); r != 0 {
		t.Fatalf("Recall = %v, want 0", r)
	}
}

func TestRecallPartial(t *testing.T) {
	gt := [][]int{{1, 2, 3, 4}}
	got := [][]int{{1, 2, 99, 98}}
	if r := Recall(gt, got, 4); r != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", r)
	}
}

func TestRecallRespectsKCut(t *testing.T) {
	gt := [][]int{{1, 2, 3, 4, 5}}
	got := [][]int{{1, 9, 9, 9, 2}} // the 2 is past k=2 cut in retrieved
	if r := Recall(gt, got, 2); r != 0.5 {
		t.Fatalf("Recall@2 = %v, want 0.5", r)
	}
}

func TestRecallOrderInsensitiveWithinK(t *testing.T) {
	gt := [][]int{{1, 2, 3}}
	got := [][]int{{3, 1, 2}}
	if r := Recall(gt, got, 3); r != 1 {
		t.Fatalf("Recall = %v, want 1", r)
	}
}

func TestRecallEmptyInputs(t *testing.T) {
	if r := Recall(nil, nil, 10); r != 0 {
		t.Fatalf("Recall(nil) = %v", r)
	}
}

func TestRecallPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Recall([][]int{{1}}, nil, 1)
}

func TestQueriesAreNearDatabase(t *testing.T) {
	// Each query is a perturbation of some database vector, so its
	// nearest neighbor should be substantially closer than a random
	// vector would be (distance < sqrt(2) for unit vectors).
	d := small(t)
	for q, qv := range d.Queries {
		nn := d.GroundTruth[q][0]
		dist := vecmath.L2Squared(qv, d.Vectors[nn])
		if dist >= 2.0 {
			t.Fatalf("query %d nearest neighbor distance^2 %v is not better than orthogonal", q, dist)
		}
	}
}

func TestClusterStructureExists(t *testing.T) {
	// With strong clustering, the average distance to the assigned
	// cluster's other members must be far below the global average —
	// this is the property IVF exploits.
	d := Generate(Config{Name: "c", N: 400, Dim: 64, Clusters: 8, Queries: 1, ClusterStd: 0.2, Seed: 4})
	// Compute mean pairwise distance of a sample vs mean nearest-
	// neighbor distance.
	var nnSum, randSum float64
	for i := 0; i < 50; i++ {
		nn := ExactTopK(d.Vectors, d.Vectors[i], 2)[1] // skip self
		nnSum += float64(vecmath.L2Squared(d.Vectors[i], d.Vectors[nn]))
		randSum += float64(vecmath.L2Squared(d.Vectors[i], d.Vectors[(i+200)%400]))
	}
	if nnSum*4 > randSum {
		t.Fatalf("no cluster structure: nn avg %v vs random avg %v", nnSum/50, randSum/50)
	}
}

func TestCatalogLoad(t *testing.T) {
	for name := range Catalog {
		d := Load(name, 64)
		if d.Len() < 256 {
			t.Errorf("%s: too few entries %d", name, d.Len())
		}
		if d.Name != name {
			t.Errorf("%s: name %q", name, d.Name)
		}
		if d.Dim != Catalog[name].Dim {
			t.Errorf("%s: dim %d want %d", name, d.Dim, Catalog[name].Dim)
		}
	}
}

func TestCatalogOrdering(t *testing.T) {
	// The scaled sizes must preserve the paper's dataset-size ordering.
	order := []string{"NQ", "HotpotQA", "wiki_en", "wiki_full"}
	for i := 1; i < len(order); i++ {
		a, b := Catalog[order[i-1]], Catalog[order[i]]
		if a.ScaledEntries >= b.ScaledEntries {
			t.Errorf("scaled ordering violated: %s(%d) >= %s(%d)", a.Name, a.ScaledEntries, b.Name, b.ScaledEntries)
		}
		if a.PaperEntries >= b.PaperEntries {
			t.Errorf("paper ordering violated: %s >= %s", a.Name, b.Name)
		}
	}
}

func TestLoadPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Load("nope", 1)
}

func TestLoadPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Load("NQ", 0)
}

func TestSeedForStable(t *testing.T) {
	if seedFor("NQ") != seedFor("NQ") {
		t.Fatal("seedFor not deterministic")
	}
	if seedFor("NQ") == seedFor("HotpotQA") {
		t.Fatal("seedFor collision across names")
	}
}
