package ssd

import (
	"fmt"

	"reis/internal/flash"
)

// PageFTL is a conventional page-level Flash Translation Layer: a full
// logical-to-physical page map held in controller DRAM. Its DRAM
// footprint is what coarse-grained access eliminates (Sec 4.1.4: "a
// 1TB vector database ... originally demands 1GB for page-level FTL").
type PageFTL struct {
	geo flash.Geometry
	l2p map[int64]flash.Address
	// Translations counts map lookups, the overhead coarse-grained
	// access avoids on sequential scans.
	Translations int64
}

// NewPageFTL returns an empty page-level FTL for the geometry.
func NewPageFTL(geo flash.Geometry) *PageFTL {
	return &PageFTL{geo: geo, l2p: make(map[int64]flash.Address)}
}

// Map binds a logical page number to a physical address.
func (f *PageFTL) Map(lpn int64, a flash.Address) error {
	if !a.Valid(f.geo) {
		return fmt.Errorf("ssd: FTL map to invalid address %v", a)
	}
	f.l2p[lpn] = a
	return nil
}

// Translate resolves a logical page number.
func (f *PageFTL) Translate(lpn int64) (flash.Address, error) {
	f.Translations++
	a, ok := f.l2p[lpn]
	if !ok {
		return flash.Address{}, fmt.Errorf("ssd: unmapped LPN %d", lpn)
	}
	return a, nil
}

// Entries returns the number of live mappings.
func (f *PageFTL) Entries() int { return len(f.l2p) }

// DRAMFootprint returns the bytes of controller DRAM the mapping table
// occupies (8 bytes per entry: 4B LPN offset + 4B PPA, the standard
// estimate behind the 0.1% DRAM rule).
func (f *PageFTL) DRAMFootprint() int64 { return int64(len(f.l2p)) * 8 }

// Drop removes all mappings in [lo, hi) — what REIS does when flushing
// page-level metadata after database deployment (Sec 4.1.4).
func (f *PageFTL) Drop(lo, hi int64) {
	for lpn := lo; lpn < hi; lpn++ {
		delete(f.l2p, lpn)
	}
}

// Region is a physically contiguous, plane-striped extent of pages —
// the unit of coarse-grained access. Page i of a region lives on plane
// (i mod planes) at page offset StartStripe + i/planes within that
// plane, which simultaneously
//
//   - stripes consecutive embeddings across all planes
//     (Parallelism-First Page Allocation, Sec 4.1.1), and
//   - lets the controller derive any page's physical address by
//     arithmetic instead of an FTL lookup (Sec 4.1.4).
type Region struct {
	// StartStripe is the first page offset (within every plane) that
	// the region occupies.
	StartStripe int
	// PageCount is the number of live (programmed or scannable) pages.
	PageCount int
	// CapPages is the region's full reserved capacity in pages — the
	// block-aligned extent AllocateRegion claimed, covering the live
	// pages, the explicit overprovisioning, and the alignment slack.
	// Appends grow PageCount toward CapPages; zero (a hand-built
	// Region) means the capacity equals PageCount.
	CapPages int

	// RowStripes, when non-zero, turns on row-mapped addressing: the
	// region's logical stripes are grouped into rows of RowStripes
	// stripes each, and logical row r resolves through RowMap[r] to a
	// physical row inside the reserved extent. This one extra level of
	// indirection — still a handful of integers per erase row, not a
	// page-level map — lets background GC recycle erased rows into the
	// append tail: the logical address space grows monotonically while
	// the physical extent is reused. Zero keeps the direct arithmetic
	// mapping.
	RowStripes int
	// RowMap binds logical row index to physical row index within the
	// reserved extent (physical row p starts at stripe
	// StartStripe + p*RowStripes). -1 marks a reclaimed (erased,
	// unmapped) logical row whose pages can no longer be addressed.
	RowMap []int32
}

// Pages returns the live page count of the region.
func (r Region) Pages() int { return r.PageCount }

// Cap returns the reserved capacity in pages (at least PageCount).
func (r Region) Cap() int { return max(r.CapPages, r.PageCount) }

// SetLive resizes the live extent within the reserved capacity; an
// append beyond it fails with ErrRegionFull. For a row-mapped region
// the bound is the mapped logical capacity (every live page must fall
// in a mapped row), not CapPages: recycling lets the logical tail grow
// past the physical reservation.
func (r *Region) SetLive(planes, pages int) error {
	bound := r.Cap()
	if r.RowStripes > 0 {
		bound = len(r.RowMap) * r.RowStripes * planes
	}
	if pages < 0 || pages > bound {
		return fmt.Errorf("%w (%d pages of %d reserved)", ErrRegionFull, pages, bound)
	}
	r.PageCount = pages
	return nil
}

// EnableRowMap switches the region to row-mapped addressing with rows
// of rowStripes stripes, identity-mapping the first rows logical rows.
// The caller guarantees the region's live pages fit in those rows.
func (r *Region) EnableRowMap(rowStripes, rows int) {
	r.RowStripes = rowStripes
	r.RowMap = make([]int32, rows)
	for i := range r.RowMap {
		r.RowMap[i] = int32(i)
	}
}

// PhysRows returns how many physical rows the reserved extent holds
// (0 for a direct-mapped region).
func (r Region) PhysRows(planes int) int {
	if r.RowStripes == 0 {
		return 0
	}
	return r.Cap() / (planes * r.RowStripes)
}

// Stripes returns how many page offsets the region spans per plane.
func (r Region) Stripes(planes int) int {
	if r.PageCount == 0 {
		return 0
	}
	return (r.PageCount + planes - 1) / planes
}

// EndStripe returns the first stripe after the region's live pages.
func (r Region) EndStripe(planes int) int { return r.StartStripe + r.Stripes(planes) }

// CapEndStripe returns the first stripe after the region's full
// reservation — the bound overlap checks use, so a growing region can
// never collide with a neighbour.
func (r Region) CapEndStripe(planes int) int {
	c := r.Cap()
	if c == 0 {
		return r.StartStripe
	}
	return r.StartStripe + (c+planes-1)/planes
}

// AddressOf resolves page i of the region under the geometry by pure
// arithmetic (no mapping table); a row-mapped region adds one RowMap
// lookup to redirect the page's row to its physical slot.
func (r Region) AddressOf(g flash.Geometry, i int) (flash.Address, error) {
	if i < 0 || i >= r.PageCount {
		return flash.Address{}, fmt.Errorf("ssd: page %d outside region of %d pages", i, r.PageCount)
	}
	planes := g.Planes()
	plane := i % planes
	stripe := i / planes
	if r.RowStripes > 0 {
		row := stripe / r.RowStripes
		if row >= len(r.RowMap) || r.RowMap[row] < 0 {
			return flash.Address{}, fmt.Errorf("ssd: region page %d in unmapped row %d", i, row)
		}
		stripe = int(r.RowMap[row])*r.RowStripes + stripe%r.RowStripes
	}
	off := r.StartStripe + stripe
	if off >= g.PagesPerPlane() {
		return flash.Address{}, fmt.Errorf("ssd: region page %d exceeds plane capacity", i)
	}
	return flash.AddressFromLinear(g, plane*g.PagesPerPlane()+off), nil
}

// PagesOnPlane returns how many of the region's pages live on the
// given plane — the per-plane wave count the timing model uses.
func (r Region) PagesOnPlane(planes, plane int) int {
	full := r.PageCount / planes
	if plane < r.PageCount%planes {
		return full + 1
	}
	return full
}

// PlaneView is the portion of a region range resident on one plane: an
// immutable list of region page indices. Because striping puts page i
// on plane i mod planes, each view is disjoint from every other
// plane's, so independent planes of a stripe can be scanned
// concurrently without sharing mutable state.
type PlaneView struct {
	// Plane is the global plane index the pages live on.
	Plane int
	// PageIdxs are the region page indices (ascending) on this plane.
	PageIdxs []int
}

// PlaneViewRange returns the view of region pages [first, last]
// (inclusive, region page indices) that live on the given plane. The
// returned page list is ascending; it is empty when the range skips
// the plane.
func (r Region) PlaneViewRange(planes, plane, first, last int) PlaneView {
	v := PlaneView{Plane: plane}
	if first < 0 {
		first = 0
	}
	if last >= r.PageCount {
		last = r.PageCount - 1
	}
	// Smallest page index >= first congruent to plane mod planes.
	start := first + (plane-first%planes+planes)%planes
	for i := start; i <= last; i += planes {
		v.PageIdxs = append(v.PageIdxs, i)
	}
	return v
}

// PlaneViews splits region pages [first, last] into one view per
// plane, omitting planes with no pages in the range. Views are ordered
// by plane index; together they cover the range exactly once.
func (r Region) PlaneViews(planes, first, last int) []PlaneView {
	var views []PlaneView
	for p := 0; p < planes; p++ {
		if v := r.PlaneViewRange(planes, p, first, last); len(v.PageIdxs) > 0 {
			views = append(views, v)
		}
	}
	return views
}

// PlaneSpan is the allocation-free form of a PlaneView: the region
// pages of a range resident on one plane, described arithmetically
// (page indices First, First+Stride, ..., Count of them) instead of as
// a materialized index list. The scan hot path uses spans so splitting
// a range across planes costs no per-query allocation.
type PlaneSpan struct {
	// Plane is the global plane index the pages live on.
	Plane int
	// First is the lowest region page index of the span.
	First int
	// Stride is the distance between consecutive page indices (the
	// plane count of the striped layout).
	Stride int
	// Count is the number of pages in the span.
	Count int
}

// PlaneSpanRange returns the span of region pages [first, last]
// (inclusive, region page indices) resident on the given plane. Count
// is 0 when the range skips the plane.
func (r Region) PlaneSpanRange(planes, plane, first, last int) PlaneSpan {
	if first < 0 {
		first = 0
	}
	if last >= r.PageCount {
		last = r.PageCount - 1
	}
	s := PlaneSpan{Plane: plane, Stride: planes}
	// Smallest page index >= first congruent to plane mod planes.
	start := first + (plane-first%planes+planes)%planes
	if start > last {
		return s
	}
	s.First = start
	s.Count = (last-start)/planes + 1
	return s
}

// AppendPlaneSpans appends one span per plane with pages in
// [first, last] to dst and returns it, ordered by plane index; together
// the spans cover the range exactly once (the span analogue of
// PlaneViews).
func (r Region) AppendPlaneSpans(dst []PlaneSpan, planes, first, last int) []PlaneSpan {
	for p := 0; p < planes; p++ {
		if s := r.PlaneSpanRange(planes, p, first, last); s.Count > 0 {
			dst = append(dst, s)
		}
	}
	return dst
}

// DBRecord is one R-DB entry (Sec 4.1.4, structure A in Fig 4): the
// database signature plus the bounds of its regions.
type DBRecord struct {
	ID         int
	Embeddings Region
	Documents  Region
	// Extra regions used by the IVF layout (Sec 4.2.1).
	Centroids Region
	Int8s     Region
}

func (r DBRecord) regions() []Region {
	return []Region{r.Embeddings, r.Documents, r.Centroids, r.Int8s}
}

// RDB is the coarse-grained address table kept in controller DRAM: one
// small record per deployed database replaces the page-level FTL for
// those regions.
type RDB struct {
	geo     flash.Geometry
	records map[int]DBRecord
	// Translations counts coarse lookups for comparison against
	// PageFTL.Translations.
	Translations int64
}

// NewRDB returns an empty R-DB for the geometry.
func NewRDB(geo flash.Geometry) *RDB {
	return &RDB{geo: geo, records: make(map[int]DBRecord)}
}

// Register stores a database record; it fails if the id exists or the
// regions' stripe ranges overlap an existing database.
func (r *RDB) Register(rec DBRecord) error {
	if _, ok := r.records[rec.ID]; ok {
		return fmt.Errorf("ssd: database %d already deployed", rec.ID)
	}
	planes := r.geo.Planes()
	for _, other := range r.records {
		for _, ra := range rec.regions() {
			if ra.Cap() == 0 {
				continue
			}
			for _, rb := range other.regions() {
				if rb.Cap() == 0 {
					continue
				}
				if ra.StartStripe < rb.CapEndStripe(planes) && rb.StartStripe < ra.CapEndStripe(planes) {
					return fmt.Errorf("ssd: database %d regions overlap database %d", rec.ID, other.ID)
				}
			}
		}
	}
	r.records[rec.ID] = rec
	return nil
}

// Update replaces a registered record in place — the coarse-grained
// FTL remap of a mutation (append growth, GC compaction): the record's
// region bounds are the only mapping state kept for deployed regions.
func (r *RDB) Update(rec DBRecord) error {
	if _, ok := r.records[rec.ID]; !ok {
		return fmt.Errorf("ssd: update of unknown database %d", rec.ID)
	}
	r.records[rec.ID] = rec
	return nil
}

// Lookup returns the record for a database id.
func (r *RDB) Lookup(id int) (DBRecord, error) {
	r.Translations++
	rec, ok := r.records[id]
	if !ok {
		return DBRecord{}, fmt.Errorf("ssd: unknown database %d", id)
	}
	return rec, nil
}

// Remove deletes a record.
func (r *RDB) Remove(id int) { delete(r.records, id) }

// Len returns the number of deployed databases.
func (r *RDB) Len() int { return len(r.records) }

// DRAMFootprint returns the bytes of DRAM the R-DB occupies: an
// integer id plus first/last addresses for four regions per record
// (the paper quotes 21 bytes for its three-field layout; the IVF
// extension brings ours to 36).
func (r *RDB) DRAMFootprint() int64 { return int64(len(r.records)) * 36 }
