package ssd

import (
	"errors"
	"fmt"

	"reis/internal/flash"
)

// ErrRegionFull is returned when an append would grow a region beyond
// its reserved capacity (the live plan plus Config.OverprovisionPct).
// Submission paths wrap it with detail; match with errors.Is.
var ErrRegionFull = errors.New("ssd: region append exceeds reserved capacity")

// SSD combines the flash device with the controller-side structures:
// FTL, R-DB, the region allocator, and maintenance bookkeeping.
type SSD struct {
	Cfg Config
	Dev *flash.Device
	FTL *PageFTL
	RDB *RDB

	// nextStripe is the allocation cursor, in page offsets within each
	// plane. Allocation is block-aligned so soft partitioning never
	// mixes cell modes inside a block.
	nextStripe int

	// Maintenance counters (Sec 7.2).
	GCRuns       int64
	RefreshRuns  int64
	WearLevelOps int64
}

// New builds an SSD with capacity grown to hold at least capacityHint
// bytes (0 keeps the preset geometry).
func New(cfg Config, capacityHint int64) (*SSD, error) {
	if cfg.OverprovisionPct < 0 || cfg.OverprovisionPct > 400 {
		return nil, fmt.Errorf("ssd: OverprovisionPct %d outside [0, 400]", cfg.OverprovisionPct)
	}
	if capacityHint > 0 {
		cfg = cfg.WithCapacityFor(capacityHint)
	}
	dev, err := flash.NewDevice(cfg.Geo, cfg.Flash)
	if err != nil {
		return nil, err
	}
	return &SSD{
		Cfg: cfg,
		Dev: dev,
		FTL: NewPageFTL(cfg.Geo),
		RDB: NewRDB(cfg.Geo),
	}, nil
}

// AllocateRegion reserves a plane-striped, block-aligned region with
// pages live pages and room for at least capPages (reserved free
// space for appends and GC; capPages <= pages reserves nothing extra),
// and marks every block it touches with the given cell mode,
// implementing the soft partitioning of the hybrid SSD design
// (Sec 4.1.2). Block alignment guarantees no block ever mixes SLC-ESP
// and TLC data. pages may be zero when capPages is positive: the
// region starts empty and grows into its reservation (a shard that
// owns no page of a freshly deployed database yet).
func (s *SSD) AllocateRegion(pages, capPages int, mode flash.CellMode) (Region, error) {
	need := max(pages, capPages)
	if pages < 0 || need <= 0 {
		return Region{}, fmt.Errorf("ssd: AllocateRegion with %d pages (cap %d)", pages, capPages)
	}
	planes := s.Cfg.Geo.Planes()
	stripes := (need + planes - 1) / planes
	// Round the cursor and extent to block boundaries.
	ppb := s.Cfg.Geo.PagesPerBlock
	start := s.nextStripe
	if rem := start % ppb; rem != 0 {
		start += ppb - rem
	}
	endStripe := start + stripes
	if rem := endStripe % ppb; rem != 0 {
		endStripe += ppb - rem
	}
	if endStripe > s.Cfg.Geo.PagesPerPlane() {
		return Region{}, fmt.Errorf("ssd: out of space: need stripes [%d,%d), have %d",
			start, endStripe, s.Cfg.Geo.PagesPerPlane())
	}
	// Mark cell mode for every touched block on every plane.
	for blk := start / ppb; blk < endStripe/ppb; blk++ {
		for ch := 0; ch < s.Cfg.Geo.Channels; ch++ {
			for die := 0; die < s.Cfg.Geo.DiesPerChannel; die++ {
				for pl := 0; pl < s.Cfg.Geo.PlanesPerDie; pl++ {
					a := flash.Address{Channel: ch, Die: die, Plane: pl, Block: blk}
					if err := s.Dev.SetBlockMode(a, mode); err != nil {
						return Region{}, err
					}
				}
			}
		}
	}
	s.nextStripe = endStripe
	// The block-aligned extent is the region's true reservation: its
	// capacity covers the requested pages plus the rounding slack, all
	// of it erased and appendable.
	return Region{StartStripe: start, PageCount: pages, CapPages: (endStripe - start) * planes}, nil
}

// ResizeRegion grows or shrinks a region's live extent to pages,
// bounded by its reserved capacity, and refreshes the R-DB record —
// the coarse-grained FTL remap a mutation commits (Sec 4.1.4: region
// bounds in the R-DB are the only mapping state REIS keeps after
// deployment). rec must be registered; r must point into it.
func (s *SSD) ResizeRegion(rec *DBRecord, r *Region, pages int) error {
	if err := r.SetLive(s.Cfg.Geo.Planes(), pages); err != nil {
		return err
	}
	return s.RDB.Update(*rec)
}

// MapRegionRows appends physical row assignments to a row-mapped
// region: logical rows len(RowMap)... are bound to the given physical
// rows of the reserved extent, making their pages addressable again.
// The physical rows must have been reclaimed (or never mapped) and are
// assumed erased. The R-DB record is refreshed — row-map growth is
// part of the coarse FTL remap a mutation commits.
func (s *SSD) MapRegionRows(rec *DBRecord, r *Region, phys []int) error {
	if r.RowStripes == 0 {
		return fmt.Errorf("ssd: MapRegionRows on direct-mapped region")
	}
	bound := r.PhysRows(s.Cfg.Geo.Planes())
	for _, p := range phys {
		if p < 0 || p >= bound {
			return fmt.Errorf("ssd: physical row %d outside extent of %d rows", p, bound)
		}
		r.RowMap = append(r.RowMap, int32(p))
	}
	return s.RDB.Update(*rec)
}

// ReclaimRegionRow erases the blocks of one logical row of a
// row-mapped region (its RowStripes must equal PagesPerBlock, so a row
// is exactly one block per plane) and unmaps it, returning the number
// of block erases issued. The freed physical row may later be re-bound
// to a new logical row via MapRegionRows — this is how GC recycles
// compacted rows into the append free pool.
func (s *SSD) ReclaimRegionRow(rec *DBRecord, r *Region, row int) (int, error) {
	g := s.Cfg.Geo
	if r.RowStripes != g.PagesPerBlock || r.StartStripe%g.PagesPerBlock != 0 {
		return 0, fmt.Errorf("ssd: ReclaimRegionRow needs block-row mapping (stripes %d, start %d)",
			r.RowStripes, r.StartStripe)
	}
	if row < 0 || row >= len(r.RowMap) || r.RowMap[row] < 0 {
		return 0, fmt.Errorf("ssd: reclaim of unmapped row %d", row)
	}
	blk := r.StartStripe/g.PagesPerBlock + int(r.RowMap[row])
	erases := 0
	for ch := 0; ch < g.Channels; ch++ {
		for die := 0; die < g.DiesPerChannel; die++ {
			for pl := 0; pl < g.PlanesPerDie; pl++ {
				a := flash.Address{Channel: ch, Die: die, Plane: pl, Block: blk}
				if err := s.Dev.EraseBlock(a); err != nil {
					return erases, err
				}
				erases++
			}
		}
	}
	r.RowMap[row] = -1
	return erases, s.RDB.Update(*rec)
}

// FreeStripes reports the number of unallocated stripes remaining.
func (s *SSD) FreeStripes() int { return s.Cfg.Geo.PagesPerPlane() - s.nextStripe }

// WriteRegionPage programs page i of a region with data and OOB bytes.
func (s *SSD) WriteRegionPage(r Region, i int, data, oob []byte) error {
	a, err := r.AddressOf(s.Cfg.Geo, i)
	if err != nil {
		return err
	}
	return s.Dev.Program(a, data, oob)
}

// ReadRegionPage reads page i of a region through the conventional
// path (sense + channel transfer).
func (s *SSD) ReadRegionPage(r Region, i int) (data, oob []byte, err error) {
	a, err := r.AddressOf(s.Cfg.Geo, i)
	if err != nil {
		return nil, nil, err
	}
	return s.Dev.ReadPageInto(a, nil, nil)
}

// RunMaintenance models the background tasks of Sec 7.2 (GC, refresh,
// wear leveling): it only bumps counters — REIS confines them to the
// non-REIS cores, so they do not interact with query timing — but the
// counters let tests assert the device stays manageable.
func (s *SSD) RunMaintenance() {
	s.GCRuns++
	s.RefreshRuns++
	s.WearLevelOps++
}
