package ssd

import (
	"bytes"
	"errors"
	"testing"

	"reis/internal/flash"
)

// tinyCfg shrinks SSD1 for unit tests while keeping its parallelism
// structure intact.
func tinyCfg() Config {
	cfg := SSD1()
	cfg.Geo.Channels = 2
	cfg.Geo.DiesPerChannel = 2
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 4
	cfg.Geo.PageBytes = 2048
	cfg.Geo.OOBBytes = 128
	return cfg
}

func newTestSSD(t *testing.T) *SSD {
	t.Helper()
	s, err := New(tinyCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPresetConfigsMatchTable3(t *testing.T) {
	s1, s2 := SSD1(), SSD2()
	if s1.Geo.Channels != 8 || s1.Geo.DiesPerChannel != 16 || s1.Geo.PlanesPerDie != 2 {
		t.Fatalf("SSD1 geometry wrong: %+v", s1.Geo)
	}
	if s1.Geo.ChannelBandwidth != 1.2e9 {
		t.Fatalf("SSD1 channel bandwidth %v", s1.Geo.ChannelBandwidth)
	}
	if s2.Geo.Channels != 16 || s2.Geo.DiesPerChannel != 8 || s2.Geo.PlanesPerDie != 4 {
		t.Fatalf("SSD2 geometry wrong: %+v", s2.Geo)
	}
	if s2.Geo.ChannelBandwidth != 2.0e9 {
		t.Fatalf("SSD2 channel bandwidth %v", s2.Geo.ChannelBandwidth)
	}
	// SSD2 has 2x channels and more planes (Sec 6.1 observation 3).
	if s2.Geo.Planes() <= s1.Geo.Planes() {
		t.Fatal("SSD2 not more parallel than SSD1")
	}
	if s1.Cores != 4 || s1.REISCores != 1 {
		t.Fatalf("SSD1 core config wrong: %d/%d", s1.Cores, s1.REISCores)
	}
}

func TestWithCapacityFor(t *testing.T) {
	cfg := tinyCfg()
	need := cfg.Geo.Capacity() * 5
	grown := cfg.WithCapacityFor(need)
	if grown.Geo.Capacity() < need {
		t.Fatalf("capacity %d < %d", grown.Geo.Capacity(), need)
	}
	// Parallelism structure untouched.
	if grown.Geo.Channels != cfg.Geo.Channels || grown.Geo.PlanesPerDie != cfg.Geo.PlanesPerDie {
		t.Fatal("WithCapacityFor changed parallelism")
	}
}

func TestKernelCostModels(t *testing.T) {
	cfg := SSD1()
	if cfg.QuickselectTime(0) != 0 {
		t.Fatal("quickselect of nothing costs time")
	}
	if cfg.QuickselectTime(2000) <= cfg.QuickselectTime(1000) {
		t.Fatal("quickselect not monotonic")
	}
	if cfg.QuicksortTime(1) != 0 {
		t.Fatal("sorting one element costs time")
	}
	// n log n growth: sorting 4x the elements costs more than 4x.
	if cfg.QuicksortTime(4096) <= 4*cfg.QuicksortTime(1024) {
		t.Fatal("quicksort not superlinear")
	}
	ratio := float64(cfg.RerankTime(100, 1024)) / float64(cfg.RerankTime(1, 1024))
	if ratio < 99 || ratio > 101 {
		t.Fatalf("rerank not linear in n: ratio %v", ratio)
	}
}

func TestPageFTLMapTranslate(t *testing.T) {
	s := newTestSSD(t)
	a := flash.Address{Channel: 1, Die: 0, Plane: 1, Block: 2, Page: 3}
	if err := s.FTL.Map(42, a); err != nil {
		t.Fatal(err)
	}
	got, err := s.FTL.Translate(42)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("Translate = %v, want %v", got, a)
	}
	if _, err := s.FTL.Translate(43); err == nil {
		t.Fatal("unmapped LPN resolved")
	}
	if s.FTL.Translations != 2 {
		t.Fatalf("Translations = %d", s.FTL.Translations)
	}
}

func TestPageFTLFootprintAndDrop(t *testing.T) {
	s := newTestSSD(t)
	for i := int64(0); i < 100; i++ {
		if err := s.FTL.Map(i, flash.AddressFromLinear(s.Cfg.Geo, int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.FTL.DRAMFootprint() != 800 {
		t.Fatalf("footprint = %d", s.FTL.DRAMFootprint())
	}
	s.FTL.Drop(0, 50)
	if s.FTL.Entries() != 50 {
		t.Fatalf("entries after drop = %d", s.FTL.Entries())
	}
}

func TestCoarseGrainedFootprintAdvantage(t *testing.T) {
	// The R-DB record for a whole database must be orders of magnitude
	// smaller than the page-level FTL it replaces (Sec 4.1.4).
	s := newTestSSD(t)
	pages := 200
	for i := int64(0); i < int64(pages); i++ {
		if err := s.FTL.Map(i, flash.AddressFromLinear(s.Cfg.Geo, int(i))); err != nil {
			t.Fatal(err)
		}
	}
	rec := DBRecord{ID: 1, Embeddings: Region{StartStripe: 0, PageCount: 100}, Documents: Region{StartStripe: 13, PageCount: 100}}
	if err := s.RDB.Register(rec); err != nil {
		t.Fatal(err)
	}
	if s.RDB.DRAMFootprint() >= s.FTL.DRAMFootprint()/10 {
		t.Fatalf("R-DB %dB not far below FTL %dB", s.RDB.DRAMFootprint(), s.FTL.DRAMFootprint())
	}
}

func TestRegionAddressingStripesAcrossPlanes(t *testing.T) {
	s := newTestSSD(t)
	planes := s.Cfg.Geo.Planes() // 8
	r := Region{StartStripe: 0, PageCount: 3 * planes}
	seen := make(map[int]int)
	for i := 0; i < planes; i++ {
		a, err := r.AddressOf(s.Cfg.Geo, i)
		if err != nil {
			t.Fatal(err)
		}
		seen[a.PlaneIndex(s.Cfg.Geo)]++
	}
	// The first `planes` pages must land on `planes` distinct planes.
	if len(seen) != planes {
		t.Fatalf("first wave used %d planes, want %d", len(seen), planes)
	}
}

func TestRegionAddressOfArithmetic(t *testing.T) {
	s := newTestSSD(t)
	planes := s.Cfg.Geo.Planes()
	r := Region{StartStripe: 4, PageCount: 2*planes + 3}
	// Page planes+1 must be on plane 1 at stripe 5.
	a, err := r.AddressOf(s.Cfg.Geo, planes+1)
	if err != nil {
		t.Fatal(err)
	}
	if a.PlaneIndex(s.Cfg.Geo) != 1 {
		t.Fatalf("plane = %d", a.PlaneIndex(s.Cfg.Geo))
	}
	if a.PageIndex(s.Cfg.Geo) != 5 {
		t.Fatalf("page offset = %d", a.PageIndex(s.Cfg.Geo))
	}
	if _, err := r.AddressOf(s.Cfg.Geo, r.PageCount); err == nil {
		t.Fatal("out-of-region page resolved")
	}
}

func TestRegionPagesOnPlane(t *testing.T) {
	r := Region{StartStripe: 0, PageCount: 10}
	planes := 4
	total := 0
	for p := 0; p < planes; p++ {
		total += r.PagesOnPlane(planes, p)
	}
	if total != 10 {
		t.Fatalf("per-plane pages sum to %d", total)
	}
	if r.PagesOnPlane(planes, 0) != 3 || r.PagesOnPlane(planes, 3) != 2 {
		t.Fatalf("wave distribution wrong: %d, %d", r.PagesOnPlane(planes, 0), r.PagesOnPlane(planes, 3))
	}
}

func TestRDBRejectsOverlapAndDuplicates(t *testing.T) {
	s := newTestSSD(t)
	a := DBRecord{ID: 1, Embeddings: Region{StartStripe: 0, PageCount: 8}}
	if err := s.RDB.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := s.RDB.Register(DBRecord{ID: 1, Embeddings: Region{StartStripe: 100, PageCount: 8}}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := s.RDB.Register(DBRecord{ID: 2, Documents: Region{StartStripe: 0, PageCount: 8}}); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if err := s.RDB.Register(DBRecord{ID: 3, Embeddings: Region{StartStripe: 8, PageCount: 8}}); err != nil {
		t.Fatalf("disjoint region rejected: %v", err)
	}
	if s.RDB.Len() != 2 {
		t.Fatalf("Len = %d", s.RDB.Len())
	}
	s.RDB.Remove(1)
	if _, err := s.RDB.Lookup(1); err == nil {
		t.Fatal("removed database resolved")
	}
}

func TestAllocateRegionBlockAlignedModes(t *testing.T) {
	s := newTestSSD(t)
	emb, err := s.AllocateRegion(10, 0, flash.ModeSLCESP)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.AllocateRegion(10, 0, flash.ModeTLC)
	if err != nil {
		t.Fatal(err)
	}
	// Verify every embedding page is in an SLC-ESP block and every
	// document page in a TLC block.
	for i := 0; i < emb.Pages(); i++ {
		a, err := emb.AddressOf(s.Cfg.Geo, i)
		if err != nil {
			t.Fatal(err)
		}
		if s.Dev.BlockMode(a) != flash.ModeSLCESP {
			t.Fatalf("embedding page %d in %v block", i, s.Dev.BlockMode(a))
		}
	}
	for i := 0; i < doc.Pages(); i++ {
		a, err := doc.AddressOf(s.Cfg.Geo, i)
		if err != nil {
			t.Fatal(err)
		}
		if s.Dev.BlockMode(a) != flash.ModeTLC {
			t.Fatalf("document page %d in %v block", i, s.Dev.BlockMode(a))
		}
	}
	// Regions must not share stripes.
	planes := s.Cfg.Geo.Planes()
	if emb.EndStripe(planes) > doc.StartStripe {
		t.Fatal("regions overlap")
	}
}

func TestAllocateRegionReservesCapacity(t *testing.T) {
	s := newTestSSD(t)
	r, err := s.AllocateRegion(10, 25, flash.ModeSLCESP)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pages() != 10 {
		t.Fatalf("live pages = %d, want 10", r.Pages())
	}
	if r.Cap() < 25 {
		t.Fatalf("capacity %d below the requested 25", r.Cap())
	}
	// Capacity is block-aligned: a full block-row multiple of planes.
	planes := s.Cfg.Geo.Planes()
	if r.Cap()%(s.Cfg.Geo.PagesPerBlock*planes) != 0 {
		t.Fatalf("capacity %d not block-row aligned", r.Cap())
	}
	// A zero-page region with capacity starts empty but reserved.
	empty, err := s.AllocateRegion(0, 4, flash.ModeTLC)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Pages() != 0 || empty.Cap() == 0 {
		t.Fatalf("empty reservation: pages=%d cap=%d", empty.Pages(), empty.Cap())
	}
	if empty.StartStripe < r.CapEndStripe(planes) {
		t.Fatal("reservations overlap")
	}
}

func TestRegionSetLiveBounds(t *testing.T) {
	s := newTestSSD(t)
	r, err := s.AllocateRegion(4, 0, flash.ModeSLCESP)
	if err != nil {
		t.Fatal(err)
	}
	planes := s.Cfg.Geo.Planes()
	if err := r.SetLive(planes, r.Cap()); err != nil {
		t.Fatalf("grow to capacity: %v", err)
	}
	if _, err := r.AddressOf(s.Cfg.Geo, r.Cap()-1); err != nil {
		t.Fatalf("grown page unaddressable: %v", err)
	}
	if err := r.SetLive(planes, r.Cap()+1); !errors.Is(err, ErrRegionFull) {
		t.Fatalf("growth beyond capacity: error %v, want ErrRegionFull", err)
	}
	if err := r.SetLive(planes, -1); err == nil {
		t.Fatal("negative live extent accepted")
	}
	if err := r.SetLive(planes, 0); err != nil {
		t.Fatalf("shrink to zero: %v", err)
	}
}

func TestResizeRegionUpdatesRDB(t *testing.T) {
	s := newTestSSD(t)
	r, err := s.AllocateRegion(4, 0, flash.ModeSLCESP)
	if err != nil {
		t.Fatal(err)
	}
	rec := DBRecord{ID: 1, Embeddings: r}
	if err := s.RDB.Register(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.ResizeRegion(&rec, &rec.Embeddings, 6); err != nil {
		t.Fatal(err)
	}
	got, err := s.RDB.Lookup(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Embeddings.Pages() != 6 {
		t.Fatalf("R-DB record not remapped: %d pages", got.Embeddings.Pages())
	}
	if err := s.RDB.Update(DBRecord{ID: 99}); err == nil {
		t.Fatal("update of unknown database accepted")
	}
}

func TestOverprovisionPctValidation(t *testing.T) {
	for _, pct := range []int{-1, 401} {
		cfg := tinyCfg()
		cfg.OverprovisionPct = pct
		if _, err := New(cfg, 0); err == nil {
			t.Fatalf("OverprovisionPct %d accepted", pct)
		}
	}
	cfg := tinyCfg()
	cfg.OverprovisionPct = 400
	if _, err := New(cfg, 0); err != nil {
		t.Fatalf("OverprovisionPct 400 rejected: %v", err)
	}
}

func TestAllocateRegionExhaustion(t *testing.T) {
	s := newTestSSD(t)
	totalPages := s.Cfg.Geo.TotalPages()
	if _, err := s.AllocateRegion(totalPages*2, 0, flash.ModeTLC); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if _, err := s.AllocateRegion(0, 0, flash.ModeTLC); err == nil {
		t.Fatal("zero allocation accepted")
	}
}

func TestWriteReadRegionPage(t *testing.T) {
	s := newTestSSD(t)
	r, err := s.AllocateRegion(16, 0, flash.ModeSLCESP)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("embedding page payload")
	oob := []byte{0xAA, 0xBB}
	if err := s.WriteRegionPage(r, 7, payload, oob); err != nil {
		t.Fatal(err)
	}
	data, gotOOB, err := s.ReadRegionPage(r, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[:len(payload)], payload) {
		t.Fatal("payload mismatch")
	}
	if gotOOB[0] != 0xAA || gotOOB[1] != 0xBB {
		t.Fatal("OOB mismatch")
	}
}

func TestMaintenanceCounters(t *testing.T) {
	s := newTestSSD(t)
	s.RunMaintenance()
	s.RunMaintenance()
	if s.GCRuns != 2 || s.RefreshRuns != 2 || s.WearLevelOps != 2 {
		t.Fatalf("maintenance counters: %d %d %d", s.GCRuns, s.RefreshRuns, s.WearLevelOps)
	}
}

func TestFreeStripesDecreases(t *testing.T) {
	s := newTestSSD(t)
	before := s.FreeStripes()
	if _, err := s.AllocateRegion(8, 0, flash.ModeTLC); err != nil {
		t.Fatal(err)
	}
	if s.FreeStripes() >= before {
		t.Fatal("FreeStripes did not decrease")
	}
}

func TestPlaneViewsPartitionRange(t *testing.T) {
	r := Region{StartStripe: 0, PageCount: 37}
	planes := 8
	first, last := 3, 31
	seen := map[int]int{}
	views := r.PlaneViews(planes, first, last)
	for _, v := range views {
		for _, i := range v.PageIdxs {
			if i%planes != v.Plane {
				t.Fatalf("page %d listed on plane %d", i, v.Plane)
			}
			seen[i]++
		}
	}
	for i := first; i <= last; i++ {
		if seen[i] != 1 {
			t.Fatalf("page %d covered %d times", i, seen[i])
		}
	}
	if len(seen) != last-first+1 {
		t.Fatalf("views covered %d pages, want %d", len(seen), last-first+1)
	}
}

func TestPlaneSpansMatchPlaneViews(t *testing.T) {
	// The allocation-free span form must describe exactly the pages the
	// materialized views list, for a sweep of ranges and plane counts.
	r := Region{StartStripe: 0, PageCount: 37}
	for _, planes := range []int{1, 3, 8} {
		for _, rg := range [][2]int{{0, 36}, {3, 31}, {-5, 100}, {7, 7}, {30, 12}} {
			views := r.PlaneViews(planes, rg[0], rg[1])
			spans := r.AppendPlaneSpans(nil, planes, rg[0], rg[1])
			if len(spans) != len(views) {
				t.Fatalf("planes=%d range=%v: %d spans for %d views", planes, rg, len(spans), len(views))
			}
			for i, v := range views {
				s := spans[i]
				if s.Plane != v.Plane || s.Count != len(v.PageIdxs) || s.Stride != planes {
					t.Fatalf("planes=%d range=%v: span %+v vs view plane=%d pages=%v", planes, rg, s, v.Plane, v.PageIdxs)
				}
				for j, p := range v.PageIdxs {
					if got := s.First + j*s.Stride; got != p {
						t.Fatalf("planes=%d range=%v plane %d: span page %d = %d, view %d", planes, rg, s.Plane, j, got, p)
					}
				}
			}
		}
	}
}

func TestPlaneViewRangeClampsAndOrders(t *testing.T) {
	r := Region{StartStripe: 0, PageCount: 10}
	v := r.PlaneViewRange(4, 2, -5, 100)
	want := []int{2, 6}
	if len(v.PageIdxs) != len(want) {
		t.Fatalf("pages = %v, want %v", v.PageIdxs, want)
	}
	for i := range want {
		if v.PageIdxs[i] != want[i] {
			t.Fatalf("pages = %v, want %v", v.PageIdxs, want)
		}
	}
	if got := r.PlaneViewRange(4, 3, 0, 2); len(got.PageIdxs) != 0 {
		t.Fatalf("plane 3 should be empty in [0,2], got %v", got.PageIdxs)
	}
}
