// Package ssd models the SSD that hosts the REIS engine: the flash
// device plus the SSD controller (embedded cores, internal DRAM), the
// Flash Translation Layer in both its conventional page-level form and
// REIS's coarse-grained form (Sec 4.1.4), and the parallelism-first
// page allocator that stripes embeddings across planes (Sec 4.1.1).
//
// Two configurations reproduce Table 3 of the paper: REIS-SSD1 models
// a cost-oriented device (Samsung PM9A3-class) and REIS-SSD2 a
// performance-oriented device (Micron 9400-class).
package ssd

import (
	"math"
	"time"

	"reis/internal/flash"
)

// Config describes one SSD configuration (Table 3).
type Config struct {
	Name string
	Geo  flash.Geometry
	// Flash carries per-event NAND latency/energy parameters.
	Flash flash.Params

	// Embedded controller cores (Arm Cortex-R8 class).
	Cores   int
	CoreGHz float64
	// REISCores is how many cores REIS may use for its kernels; the
	// paper reserves one, leaving the rest for FTL and host I/O
	// (Sec 4.3.4, Sec 7.2).
	REISCores int

	// DRAMBytes is the controller's internal DRAM (0.1% of capacity by
	// rule of thumb).
	DRAMBytes int64

	// CacheDRAMBytes is the slice of controller DRAM the engine may use
	// as a caching tier above the flash scan path: binary pages of the
	// most-probed IVF clusters are pinned there (page + OOB bytes per
	// page) and scanned at DRAM cost, and a small result cache serves
	// repeated queries at controller cost. 0 — the preset default —
	// disables the tier entirely, preserving the uncached behavior of
	// every path bit for bit.
	CacheDRAMBytes int64

	// OverprovisionPct reserves extra region capacity at deployment, as
	// a percentage of each region's live page count, so databases can
	// grow in place (OpcodeAppend) and garbage collection has free
	// blocks to compact into. 0 — the preset default — makes deployed
	// databases effectively read-only: the first append fails with
	// ErrRegionFull. Valid range is [0, 400]; New rejects anything else.
	OverprovisionPct int

	// HostReadBandwidth is the sequential read bandwidth seen by the
	// host (bytes/s) — what a CPU baseline gets when loading a dataset.
	HostReadBandwidth float64
	// HostWriteBandwidth is the sequential write bandwidth (bytes/s).
	HostWriteBandwidth float64

	// ActivePower is the device's active power draw in watts; the
	// paper reports SSDs draw ~29.7x less power than the CPU baseline.
	ActivePower float64
	// IdlePower is the device idle power in watts.
	IdlePower float64

	// Kernel cost constants for the embedded cores, expressed as
	// nanoseconds per element on one core. Derived from Zsim-style
	// estimates of quickselect/quicksort/dot-product inner loops on a
	// Cortex-R8 at 1.5 GHz (a handful of instructions per element,
	// DRAM-bound streaming).
	QuickselectNsPerElem float64
	QuicksortNsPerElem   float64 // multiplied by log2(n)
	RerankNsPerDim       float64
	// DRAMAccessNs is the average controller DRAM access latency used
	// for TTL updates.
	DRAMAccessNs float64
}

// SSD1 returns the cost-oriented configuration (REIS-SSD1, Table 3):
// 8 channels, 16 dies/channel, 2 planes/die, 1.2 GB/s per channel.
func SSD1() Config {
	geo := flash.Geometry{
		Channels:         8,
		DiesPerChannel:   16,
		PlanesPerDie:     2,
		BlocksPerPlane:   64, // scaled; grown on demand by WithCapacityFor
		PagesPerBlock:    64,
		PageBytes:        16 * 1024,
		OOBBytes:         2208,
		ChannelBandwidth: 1.2e9,
	}
	p := flash.DefaultParams()
	p.DieInputBandwidth = geo.ChannelBandwidth
	return Config{
		Name:                 "REIS-SSD1",
		Geo:                  geo,
		Flash:                p,
		Cores:                4,
		CoreGHz:              1.5,
		REISCores:            1,
		DRAMBytes:            1 << 30,
		HostReadBandwidth:    6.9e9, // PM9A3 seq read
		HostWriteBandwidth:   4.1e9,
		ActivePower:          12.0,
		IdlePower:            5.0,
		QuickselectNsPerElem: 6,
		QuicksortNsPerElem:   8,
		RerankNsPerDim:       1.2,
		// TTL inserts stream to DRAM; the per-entry cost is the entry
		// size over DRAM bandwidth (~31-143B at ~6.4 GB/s), not a full
		// random-access latency.
		DRAMAccessNs: 5,
	}
}

// SSD2 returns the performance-oriented configuration (REIS-SSD2,
// Table 3): 16 channels, 8 dies/channel, 4 planes/die, 2.0 GB/s per
// channel.
func SSD2() Config {
	cfg := SSD1()
	cfg.Name = "REIS-SSD2"
	cfg.Geo.Channels = 16
	cfg.Geo.DiesPerChannel = 8
	cfg.Geo.PlanesPerDie = 4
	cfg.Geo.ChannelBandwidth = 2.0e9
	cfg.Flash.DieInputBandwidth = cfg.Geo.ChannelBandwidth
	cfg.HostReadBandwidth = 7.0e9 // Micron 9400 seq read
	cfg.HostWriteBandwidth = 7.0e9
	cfg.ActivePower = 14.0
	return cfg
}

// WithCapacityFor returns a copy of cfg whose geometry holds at least
// bytes of user data, growing BlocksPerPlane as needed. Channel, die
// and plane counts — the quantities that determine parallelism — are
// never changed.
func (c Config) WithCapacityFor(bytes int64) Config {
	out := c
	for out.Geo.Capacity() < bytes {
		out.Geo.BlocksPerPlane *= 2
	}
	return out
}

// CoreCycleNs returns the duration of one core cycle in nanoseconds.
func (c Config) CoreCycleNs() float64 { return 1 / c.CoreGHz }

// QuickselectTime models selecting the best elements from n TTL
// entries on one embedded core.
func (c Config) QuickselectTime(n int) time.Duration {
	return time.Duration(float64(n) * c.QuickselectNsPerElem * float64(time.Nanosecond))
}

// QuicksortTime models sorting n entries on one embedded core.
func (c Config) QuicksortTime(n int) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(float64(n) * log2(float64(n)) * c.QuicksortNsPerElem * float64(time.Nanosecond))
}

// RerankTime models INT8 distance recomputation for n candidates of
// the given dimensionality on one embedded core.
func (c Config) RerankTime(n, dim int) time.Duration {
	return time.Duration(float64(n) * float64(dim) * c.RerankNsPerDim * float64(time.Nanosecond))
}

func log2(x float64) float64 { return math.Log2(x) }
