// Package vecmath implements the vector kernels used by every retrieval
// component in this repository: float32 distance computations for exact
// search, binary quantization with Hamming distance for the in-storage
// ANNS engine (Sec 4.3 of the REIS paper), and INT8 quantization with
// integer dot products for the reranking step (Sec 4.3.2).
//
// Embeddings are represented in three precisions:
//
//   - []float32  — full precision, used by host baselines and ground truth
//   - []uint64   — binary quantized (1 bit/dim, packed), used in-plane
//   - []int8     — INT8 quantized, used for reranking
//
// Binary quantization follows the standard sign rule (bit i is 1 iff
// component i > 0), giving the 32x compression the paper cites.
package vecmath

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// WordsPerVector returns the number of uint64 words needed to store a
// binary-quantized vector of dim dimensions.
func WordsPerVector(dim int) int { return (dim + 63) / 64 }

// L2Squared returns the squared Euclidean distance between a and b.
// It panics if the lengths differ.
func L2Squared(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: L2Squared dimension mismatch %d != %d", len(a), len(b)))
	}
	var sum float32
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Dot returns the inner product of a and b.
// It panics if the lengths differ.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dot dimension mismatch %d != %d", len(a), len(b)))
	}
	var sum float32
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	var sum float32
	for _, x := range v {
		sum += x * x
	}
	return float32(math.Sqrt(float64(sum)))
}

// Normalize scales v in place to unit norm. A zero vector is left
// unchanged.
func Normalize(v []float32) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// BinaryQuantize packs the sign bits of v into dst (bit i set iff
// v[i] > 0) and returns dst. If dst is nil or too short a new slice is
// allocated. The trailing bits of the final word are zero.
func BinaryQuantize(v []float32, dst []uint64) []uint64 {
	words := WordsPerVector(len(v))
	if cap(dst) < words {
		dst = make([]uint64, words)
	}
	dst = dst[:words]
	for i := range dst {
		dst[i] = 0
	}
	for i, x := range v {
		if x > 0 {
			dst[i>>6] |= 1 << uint(i&63)
		}
	}
	return dst
}

// Hamming returns the Hamming distance between two packed binary
// vectors. This is the operation REIS performs with the in-plane XOR
// between latches plus the fail-bit counter.
// It panics if the lengths differ.
func Hamming(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Hamming length mismatch %d != %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// PopCount returns the number of set bits in v.
func PopCount(v []uint64) int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// XorBytes writes a XOR b into dst word-wise (8 bytes at a time with a
// byte tail). All three slices must have the same length; dst may alias
// a or b. This is the bulk inter-latch XOR of the flash model.
func XorBytes(dst, a, b []byte) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("vecmath: XorBytes length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	i := 0
	for ; i+8 <= len(a); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < len(a); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// PopCountBytes returns the number of set bits in b, word-wise.
func PopCountBytes(b []byte) int {
	n := 0
	i := 0
	for ; i+8 <= len(b); i += 8 {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < len(b); i++ {
		n += bits.OnesCount8(b[i])
	}
	return n
}

// XorPopCountSlots is the fused page kernel behind the page-granular
// GEN_DIST command: it computes dst = a XOR b over the whole buffers
// (one latch-to-latch XOR) and, in the same pass, runs the fail-bit
// counter over each of the nSlots slots of slotBytes bytes starting at
// slot firstSlot, writing the per-slot popcounts into dists[0:nSlots].
// Buffer lengths must match, the counted range must lie inside the
// buffers, and dists must hold nSlots values; dst may alias a or b.
func XorPopCountSlots(dst, a, b []byte, slotBytes, firstSlot, nSlots int, dists []int) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("vecmath: XorPopCountSlots length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	lo := firstSlot * slotBytes
	hi := lo + nSlots*slotBytes
	if slotBytes <= 0 || firstSlot < 0 || nSlots < 0 || hi > len(a) || len(dists) < nSlots {
		panic(fmt.Sprintf("vecmath: XorPopCountSlots bad range slot=%d n=%d slotBytes=%d len=%d dists=%d",
			firstSlot, nSlots, slotBytes, len(a), len(dists)))
	}
	XorBytes(dst[:lo], a[:lo], b[:lo])
	for s := 0; s < nSlots; s++ {
		o, e := lo+s*slotBytes, lo+(s+1)*slotBytes
		n := 0
		i := o
		for ; i+8 <= e; i += 8 {
			w := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
			binary.LittleEndian.PutUint64(dst[i:], w)
			n += bits.OnesCount64(w)
		}
		for ; i < e; i++ {
			dst[i] = a[i] ^ b[i]
			n += bits.OnesCount8(dst[i])
		}
		dists[s] = n
	}
	XorBytes(dst[hi:], a[hi:], b[hi:])
}

// Int8Params hold the affine quantization parameters used to convert a
// float32 embedding to INT8 and to interpret INT8 distances. A single
// symmetric scale is used per dataset, matching the rerank scheme the
// paper adopts from Cohere-style INT8 embeddings.
type Int8Params struct {
	// Scale maps int8 value q back to float via q * Scale.
	Scale float32
}

// ComputeInt8Params derives a symmetric scale covering the maximum
// absolute component over the sample of vectors.
func ComputeInt8Params(sample [][]float32) Int8Params {
	var maxAbs float32
	for _, v := range sample {
		for _, x := range v {
			a := x
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	return Int8Params{Scale: maxAbs / 127}
}

// Int8Quantize converts v to INT8 under p, writing into dst (allocated
// if nil or too short) and returning it. Values are clamped to
// [-127, 127].
func (p Int8Params) Int8Quantize(v []float32, dst []int8) []int8 {
	if cap(dst) < len(v) {
		dst = make([]int8, len(v))
	}
	dst = dst[:len(v)]
	inv := 1 / p.Scale
	for i, x := range v {
		q := math.Round(float64(x * inv))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return dst
}

// DotInt8 returns the integer inner product of a and b, the kernel the
// embedded SSD controller core runs during reranking.
// It panics if the lengths differ.
func DotInt8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: DotInt8 dimension mismatch %d != %d", len(a), len(b)))
	}
	var sum int32
	for i := range a {
		sum += int32(a[i]) * int32(b[i])
	}
	return sum
}

// L2SquaredInt8 returns the squared Euclidean distance between two INT8
// vectors as an int32.
func L2SquaredInt8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: L2SquaredInt8 dimension mismatch %d != %d", len(a), len(b)))
	}
	var sum int32
	for i := range a {
		d := int32(a[i]) - int32(b[i])
		sum += d * d
	}
	return sum
}

// PackBinaryBytes serializes a packed binary vector into bytes in
// little-endian word order; this is the on-flash layout of the binary
// embedding region.
func PackBinaryBytes(v []uint64, dst []byte) []byte {
	need := len(v) * 8
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	dst = dst[:need]
	for i, w := range v {
		off := i * 8
		dst[off+0] = byte(w)
		dst[off+1] = byte(w >> 8)
		dst[off+2] = byte(w >> 16)
		dst[off+3] = byte(w >> 24)
		dst[off+4] = byte(w >> 32)
		dst[off+5] = byte(w >> 40)
		dst[off+6] = byte(w >> 48)
		dst[off+7] = byte(w >> 56)
	}
	return dst
}

// UnpackBinaryBytes deserializes bytes produced by PackBinaryBytes.
// len(b) must be a multiple of 8.
func UnpackBinaryBytes(b []byte, dst []uint64) []uint64 {
	if len(b)%8 != 0 {
		panic("vecmath: UnpackBinaryBytes length not a multiple of 8")
	}
	words := len(b) / 8
	if cap(dst) < words {
		dst = make([]uint64, words)
	}
	dst = dst[:words]
	for i := range dst {
		off := i * 8
		dst[i] = uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 |
			uint64(b[off+3])<<24 | uint64(b[off+4])<<32 | uint64(b[off+5])<<40 |
			uint64(b[off+6])<<48 | uint64(b[off+7])<<56
	}
	return dst
}

// PackInt8Bytes serializes an INT8 vector (two's complement bytes).
func PackInt8Bytes(v []int8, dst []byte) []byte {
	if cap(dst) < len(v) {
		dst = make([]byte, len(v))
	}
	dst = dst[:len(v)]
	for i, x := range v {
		dst[i] = byte(x)
	}
	return dst
}

// UnpackInt8Bytes deserializes bytes produced by PackInt8Bytes.
func UnpackInt8Bytes(b []byte, dst []int8) []int8 {
	if cap(dst) < len(b) {
		dst = make([]int8, len(b))
	}
	dst = dst[:len(b)]
	for i, x := range b {
		dst[i] = int8(x)
	}
	return dst
}

// PackFloat32Bytes serializes a float32 vector (IEEE-754 little endian).
func PackFloat32Bytes(v []float32, dst []byte) []byte {
	need := len(v) * 4
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	dst = dst[:need]
	for i, x := range v {
		u := math.Float32bits(x)
		off := i * 4
		dst[off+0] = byte(u)
		dst[off+1] = byte(u >> 8)
		dst[off+2] = byte(u >> 16)
		dst[off+3] = byte(u >> 24)
	}
	return dst
}

// UnpackFloat32Bytes deserializes bytes produced by PackFloat32Bytes.
// len(b) must be a multiple of 4.
func UnpackFloat32Bytes(b []byte, dst []float32) []float32 {
	if len(b)%4 != 0 {
		panic("vecmath: UnpackFloat32Bytes length not a multiple of 4")
	}
	n := len(b) / 4
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	for i := range dst {
		off := i * 4
		u := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
		dst[i] = math.Float32frombits(u)
	}
	return dst
}
