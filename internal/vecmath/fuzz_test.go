package vecmath

import (
	"bytes"
	"math/bits"
	"testing"
)

// FuzzXorPopCountSlots checks the fused page kernel behind the
// GEN_DIST_PAGE flash command against a naive per-byte reference: the
// whole-buffer XOR must equal a ^ b everywhere, every requested slot's
// fail-bit count must equal the byte-wise Hamming distance of that
// slot, and aliasing dst over a must not change either. The committed
// seed corpus (testdata/fuzz) covers word-aligned and ragged slot
// sizes, zero-slot calls and full-page scans.
func FuzzXorPopCountSlots(f *testing.F) {
	f.Add([]byte("pages of packed binary embeddings"), []byte("query broadcast into the latches"), 8, 0, 3)
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55, 0x0F, 0xF0, 0x99, 0x66, 0x01}, []byte{0x00, 0xFF, 0x55, 0xAA, 0xF0, 0x0F, 0x66, 0x99, 0x80}, 3, 1, 2)
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6}, 1, 0, 0)
	f.Add(bytes.Repeat([]byte{0xC3}, 64), bytes.Repeat([]byte{0x3C}, 64), 16, 2, 1)
	f.Fuzz(func(t *testing.T, a, b []byte, slotBytes, firstSlot, nSlots int) {
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		sb := 1 + abs(slotBytes)%17 // 1..17: word-aligned and ragged tails
		maxSlots := n / sb
		fs, ns := 0, 0
		if maxSlots > 0 {
			fs = abs(firstSlot) % maxSlots
			ns = abs(nSlots) % (maxSlots - fs + 1)
		}
		dst := make([]byte, n)
		dists := make([]int, ns)
		XorPopCountSlots(dst, a, b, sb, fs, ns, dists)

		for i := range dst {
			if dst[i] != a[i]^b[i] {
				t.Fatalf("dst[%d] = %#x, want %#x (slotBytes=%d first=%d n=%d)",
					i, dst[i], a[i]^b[i], sb, fs, ns)
			}
		}
		for s := 0; s < ns; s++ {
			want := 0
			for i := (fs + s) * sb; i < (fs+s+1)*sb; i++ {
				want += bits.OnesCount8(a[i] ^ b[i])
			}
			if dists[s] != want {
				t.Fatalf("slot %d dist = %d, want %d (slotBytes=%d first=%d n=%d)",
					s, dists[s], want, sb, fs, ns)
			}
		}

		// Aliasing: dst may be a itself (the in-place latch XOR).
		alias := append([]byte(nil), a...)
		dists2 := make([]int, ns)
		XorPopCountSlots(alias, alias, b, sb, fs, ns, dists2)
		if !bytes.Equal(alias, dst) {
			t.Fatalf("aliased XOR differs from out-of-place result")
		}
		for s := range dists2 {
			if dists2[s] != dists[s] {
				t.Fatalf("aliased slot %d dist = %d, want %d", s, dists2[s], dists[s])
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
