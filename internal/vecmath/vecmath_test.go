package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"reis/internal/xrand"
)

func randVec(r *xrand.RNG, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func TestL2SquaredBasic(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := L2Squared(a, b); got != 25 {
		t.Fatalf("L2Squared = %v, want 25", got)
	}
}

func TestL2SquaredZeroForIdentical(t *testing.T) {
	r := xrand.New(1)
	v := randVec(r, 128)
	if got := L2Squared(v, v); got != 0 {
		t.Fatalf("L2Squared(v,v) = %v, want 0", got)
	}
}

func TestL2SquaredPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	L2Squared([]float32{1}, []float32{1, 2})
}

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotSymmetry(t *testing.T) {
	r := xrand.New(2)
	f := func(seed uint32) bool {
		rr := xrand.New(uint64(seed) ^ r.Uint64())
		a, b := randVec(rr, 64), randVec(rr, 64)
		return Dot(a, b) == Dot(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormAndNormalize(t *testing.T) {
	v := []float32{3, 4}
	if got := Norm(v); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	Normalize(v)
	if n := Norm(v); math.Abs(float64(n)-1) > 1e-6 {
		t.Fatalf("norm after Normalize = %v, want 1", n)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	v := []float32{0, 0, 0}
	Normalize(v) // must not produce NaN
	for _, x := range v {
		if x != 0 {
			t.Fatalf("zero vector changed: %v", v)
		}
	}
}

func TestBinaryQuantizeSigns(t *testing.T) {
	v := []float32{1, -1, 0.5, 0, -0.1, 2}
	q := BinaryQuantize(v, nil)
	want := uint64(0b100101) // bits 0,2,5 set (positive components)
	if q[0] != want {
		t.Fatalf("BinaryQuantize = %b, want %b", q[0], want)
	}
}

func TestBinaryQuantizeTrailingBitsZero(t *testing.T) {
	v := make([]float32, 70)
	for i := range v {
		v[i] = 1
	}
	q := BinaryQuantize(v, nil)
	if len(q) != 2 {
		t.Fatalf("words = %d, want 2", len(q))
	}
	if q[1]>>6 != 0 {
		t.Fatalf("trailing bits not zero: %b", q[1])
	}
}

func TestBinaryQuantizeReusesBuffer(t *testing.T) {
	buf := make([]uint64, 4)
	v := []float32{1, -1}
	q := BinaryQuantize(v, buf)
	if &q[0] != &buf[0] {
		t.Fatal("buffer was not reused")
	}
}

func TestHammingSelfZero(t *testing.T) {
	r := xrand.New(3)
	q := BinaryQuantize(randVec(r, 256), nil)
	if d := Hamming(q, q); d != 0 {
		t.Fatalf("Hamming(q,q) = %d", d)
	}
}

func TestHammingKnown(t *testing.T) {
	a := []uint64{0b1010, 0xffffffffffffffff}
	b := []uint64{0b0110, 0x0}
	if d := Hamming(a, b); d != 2+64 {
		t.Fatalf("Hamming = %d, want 66", d)
	}
}

func TestHammingTriangleInequality(t *testing.T) {
	r := xrand.New(4)
	for trial := 0; trial < 50; trial++ {
		a := BinaryQuantize(randVec(r, 192), nil)
		b := BinaryQuantize(randVec(r, 192), nil)
		c := BinaryQuantize(randVec(r, 192), nil)
		if Hamming(a, c) > Hamming(a, b)+Hamming(b, c) {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestHammingSymmetric(t *testing.T) {
	r := xrand.New(5)
	a := BinaryQuantize(randVec(r, 128), nil)
	b := BinaryQuantize(randVec(r, 128), nil)
	if Hamming(a, b) != Hamming(b, a) {
		t.Fatal("Hamming not symmetric")
	}
}

func TestHammingApproximatesAngle(t *testing.T) {
	// For unit vectors the expected normalized Hamming distance is
	// theta/pi; check that closer float vectors get smaller Hamming
	// distance on average. This is the property that makes BQ viable
	// for ANNS (Sec 4.3 of the paper).
	r := xrand.New(6)
	const dim = 1024
	base := randVec(r, dim)
	Normalize(base)
	near := make([]float32, dim)
	far := randVec(r, dim)
	for i := range near {
		near[i] = base[i] + 0.1*float32(r.NormFloat64())
	}
	qb := BinaryQuantize(base, nil)
	qn := BinaryQuantize(near, nil)
	qf := BinaryQuantize(far, nil)
	if Hamming(qb, qn) >= Hamming(qb, qf) {
		t.Fatalf("near Hamming %d >= far Hamming %d", Hamming(qb, qn), Hamming(qb, qf))
	}
}

func TestPopCount(t *testing.T) {
	if got := PopCount([]uint64{0b111, 1 << 63}); got != 4 {
		t.Fatalf("PopCount = %d, want 4", got)
	}
}

func TestInt8QuantizeRoundTripError(t *testing.T) {
	r := xrand.New(7)
	v := randVec(r, 512)
	p := ComputeInt8Params([][]float32{v})
	q := p.Int8Quantize(v, nil)
	for i := range v {
		back := float32(q[i]) * p.Scale
		if math.Abs(float64(back-v[i])) > float64(p.Scale)/2+1e-6 {
			t.Fatalf("component %d: %v -> %d -> %v exceeds half-step error", i, v[i], q[i], back)
		}
	}
}

func TestInt8QuantizeClamps(t *testing.T) {
	p := Int8Params{Scale: 0.01}
	q := p.Int8Quantize([]float32{100, -100}, nil)
	if q[0] != 127 || q[1] != -127 {
		t.Fatalf("clamp failed: %v", q)
	}
}

func TestComputeInt8ParamsZeroSample(t *testing.T) {
	p := ComputeInt8Params([][]float32{{0, 0}})
	if p.Scale <= 0 {
		t.Fatalf("scale = %v, want > 0", p.Scale)
	}
}

func TestDotInt8(t *testing.T) {
	a := []int8{1, -2, 3}
	b := []int8{4, 5, -6}
	if got := DotInt8(a, b); got != 4-10-18 {
		t.Fatalf("DotInt8 = %d, want -24", got)
	}
}

func TestL2SquaredInt8(t *testing.T) {
	a := []int8{0, 10}
	b := []int8{3, 6}
	if got := L2SquaredInt8(a, b); got != 9+16 {
		t.Fatalf("L2SquaredInt8 = %d, want 25", got)
	}
}

func TestInt8DotPreservesOrdering(t *testing.T) {
	// Quantized dot products should preserve the ranking of clearly
	// separated candidates — the property reranking relies on.
	r := xrand.New(8)
	q := randVec(r, 1024)
	Normalize(q)
	near := make([]float32, len(q))
	copy(near, q)
	far := randVec(r, 1024)
	Normalize(far)
	p := ComputeInt8Params([][]float32{q, near, far})
	qq := p.Int8Quantize(q, nil)
	qn := p.Int8Quantize(near, nil)
	qf := p.Int8Quantize(far, nil)
	if DotInt8(qq, qn) <= DotInt8(qq, qf) {
		t.Fatal("INT8 dot did not preserve ordering of near vs far")
	}
}

func TestBinaryBytesRoundTrip(t *testing.T) {
	f := func(a, b, c uint64) bool {
		v := []uint64{a, b, c}
		bts := PackBinaryBytes(v, nil)
		back := UnpackBinaryBytes(bts, nil)
		return back[0] == a && back[1] == b && back[2] == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt8BytesRoundTrip(t *testing.T) {
	v := []int8{-128, -1, 0, 1, 127}
	bts := PackInt8Bytes(v, nil)
	back := UnpackInt8Bytes(bts, nil)
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("round trip failed at %d: %d != %d", i, back[i], v[i])
		}
	}
}

func TestFloat32BytesRoundTrip(t *testing.T) {
	f := func(a, b float32) bool {
		v := []float32{a, b}
		bts := PackFloat32Bytes(v, nil)
		back := UnpackFloat32Bytes(bts, nil)
		return math.Float32bits(back[0]) == math.Float32bits(a) &&
			math.Float32bits(back[1]) == math.Float32bits(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackBinaryBytesPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	UnpackBinaryBytes(make([]byte, 7), nil)
}

func TestWordsPerVector(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 64: 1, 65: 2, 128: 2, 1024: 16}
	for dim, want := range cases {
		if got := WordsPerVector(dim); got != want {
			t.Errorf("WordsPerVector(%d) = %d, want %d", dim, got, want)
		}
	}
}

func BenchmarkL2Squared1024(b *testing.B) {
	r := xrand.New(9)
	x, y := randVec(r, 1024), randVec(r, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = L2Squared(x, y)
	}
}

func BenchmarkHamming1024(b *testing.B) {
	r := xrand.New(10)
	x := BinaryQuantize(randVec(r, 1024), nil)
	y := BinaryQuantize(randVec(r, 1024), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hamming(x, y)
	}
}

func BenchmarkDotInt81024(b *testing.B) {
	r := xrand.New(11)
	p := Int8Params{Scale: 0.01}
	x := p.Int8Quantize(randVec(r, 1024), nil)
	y := p.Int8Quantize(randVec(r, 1024), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DotInt8(x, y)
	}
}
