package ann

import (
	"fmt"
	"math"

	"reis/internal/vecmath"
	"reis/internal/xrand"
)

// HNSWConfig parameterizes graph construction (Malkov & Yashunin,
// TPAMI 2018). The paper's Fig 5 uses M=128; smaller values are used
// in tests.
type HNSWConfig struct {
	M              int // max neighbors per node per layer (default 16)
	EfConstruction int // candidate pool during build (default 2*M)
	EfSearch       int // candidate pool during search (default 2*M)
	Seed           uint64
	// Binary enables BQ distance for graph traversal with INT8
	// reranking (the "BQ HNSW" series of Fig 5).
	Binary bool
}

// HNSW is a Hierarchical Navigable Small World graph index — the
// graph-based algorithm whose irregular access pattern makes it a poor
// fit for in-storage execution (Sec 4.2), included as the strongest
// host-side baseline.
type HNSW struct {
	cfg     HNSWConfig
	dim     int
	vectors [][]float32
	codes   [][]uint64
	int8s   [][]int8
	params  vecmath.Int8Params

	// neighbors[layer][node] lists the node's out-edges on the layer.
	neighbors [][][]int32
	levels    []int
	entry     int
	maxLevel  int
	levelMult float64
	rng       *xrand.RNG

	// HopCount accumulates graph hops across searches; the NDSearch
	// comparison model reads it to derive access-pattern statistics.
	HopCount int64
}

// NewHNSW builds the graph by inserting vectors one at a time.
func NewHNSW(vectors [][]float32, cfg HNSWConfig) *HNSW {
	if len(vectors) == 0 {
		panic("ann: NewHNSW on empty input")
	}
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.EfConstruction <= 0 {
		// Construction quality dominates achievable recall; FAISS and
		// hnswlib default to 100-200 regardless of M.
		cfg.EfConstruction = max(100, 2*cfg.M)
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 2 * cfg.M
	}
	h := &HNSW{
		cfg:       cfg,
		dim:       len(vectors[0]),
		vectors:   vectors,
		levels:    make([]int, len(vectors)),
		entry:     -1,
		maxLevel:  -1,
		levelMult: 1 / math.Log(float64(cfg.M)),
		rng:       xrand.New(cfg.Seed + 0x15),
	}
	if cfg.Binary {
		h.params = vecmath.ComputeInt8Params(vectors)
		h.codes = make([][]uint64, len(vectors))
		h.int8s = make([][]int8, len(vectors))
		for i, v := range vectors {
			h.codes[i] = vecmath.BinaryQuantize(v, nil)
			h.int8s[i] = h.params.Int8Quantize(v, nil)
		}
	}
	for i := range vectors {
		h.insert(i)
	}
	return h
}

// dist is the traversal distance: L2 in float mode, Hamming in binary
// mode (graph structure is built under the same metric used to search).
func (h *HNSW) dist(query []float32, qCode []uint64, id int) float32 {
	if h.cfg.Binary {
		return float32(vecmath.Hamming(qCode, h.codes[id]))
	}
	return vecmath.L2Squared(query, h.vectors[id])
}

func (h *HNSW) distNodes(a, b int) float32 {
	if h.cfg.Binary {
		return float32(vecmath.Hamming(h.codes[a], h.codes[b]))
	}
	return vecmath.L2Squared(h.vectors[a], h.vectors[b])
}

func (h *HNSW) randomLevel() int {
	return int(-math.Log(1-h.rng.Float64()) * h.levelMult)
}

func (h *HNSW) insert(id int) {
	level := h.randomLevel()
	h.levels[id] = level
	for len(h.neighbors) <= level {
		h.neighbors = append(h.neighbors, make([][]int32, len(h.vectors)))
	}
	if h.entry < 0 {
		h.entry = id
		h.maxLevel = level
		return
	}

	var qCode []uint64
	if h.cfg.Binary {
		qCode = h.codes[id]
	}
	query := h.vectors[id]

	cur := h.entry
	// Greedy descent through layers above the insertion level.
	for l := h.maxLevel; l > level; l-- {
		cur = h.greedyClosest(query, qCode, cur, l)
	}
	// Insert with beam search on each layer at or below level.
	for l := min(level, h.maxLevel); l >= 0; l-- {
		cands := h.searchLayer(query, qCode, cur, h.cfg.EfConstruction, l)
		m := h.cfg.M
		if l == 0 {
			m = 2 * h.cfg.M // standard HNSW uses M0 = 2M on layer 0
		}
		selected := h.selectNeighbors(cands, m)
		for _, n := range selected {
			h.neighbors[l][id] = append(h.neighbors[l][id], int32(n.ID))
			h.neighbors[l][n.ID] = append(h.neighbors[l][n.ID], int32(id))
			if len(h.neighbors[l][n.ID]) > m {
				h.pruneNeighbors(l, n.ID, m)
			}
		}
		if len(cands) > 0 {
			cur = cands[0].ID
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = id
	}
}

func (h *HNSW) greedyClosest(query []float32, qCode []uint64, start, layer int) int {
	cur := start
	curDist := h.dist(query, qCode, cur)
	for {
		improved := false
		for _, n := range h.neighbors[layer][cur] {
			h.HopCount++
			if d := h.dist(query, qCode, int(n)); d < curDist {
				cur, curDist = int(n), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the beam search primitive (Algorithm 2 of the HNSW
// paper), returning up to ef candidates sorted ascending.
func (h *HNSW) searchLayer(query []float32, qCode []uint64, start, ef, layer int) []Result {
	visited := map[int]struct{}{start: {}}
	best := NewBoundedList(ef)
	startDist := h.dist(query, qCode, start)
	best.Push(Result{ID: start, Dist: startDist})
	// frontier: min-heap approximated with a sorted slice; sizes are
	// small (<= ef) so linear insertion is fine.
	frontier := []Result{{ID: start, Dist: startDist}}
	for len(frontier) > 0 {
		// Pop closest.
		c := frontier[0]
		frontier = frontier[1:]
		if w, ok := best.Worst(); ok && c.Dist > w.Dist {
			break
		}
		for _, nb := range h.neighbors[layer][c.ID] {
			n := int(nb)
			if _, seen := visited[n]; seen {
				continue
			}
			visited[n] = struct{}{}
			h.HopCount++
			d := h.dist(query, qCode, n)
			if w, ok := best.Worst(); !ok || d < w.Dist {
				best.Push(Result{ID: n, Dist: d})
				frontier = insertSorted(frontier, Result{ID: n, Dist: d})
			}
		}
	}
	return best.Results()
}

func insertSorted(rs []Result, r Result) []Result {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid].Dist < r.Dist {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rs = append(rs, Result{})
	copy(rs[lo+1:], rs[lo:])
	rs[lo] = r
	return rs
}

// selectNeighbors applies the diversification heuristic of Algorithm 4
// in the HNSW paper: a candidate is kept only if it is closer to the
// query node than to every already-selected neighbor, which spreads
// edges across clusters and substantially improves recall on clustered
// data.
func (h *HNSW) selectNeighbors(cands []Result, m int) []Result {
	if len(cands) <= m {
		return cands
	}
	selected := make([]Result, 0, m)
	for _, c := range cands {
		if len(selected) >= m {
			break
		}
		keep := true
		for _, s := range selected {
			if h.distNodes(c.ID, s.ID) < c.Dist {
				keep = false
				break
			}
		}
		if keep {
			selected = append(selected, c)
		}
	}
	// Backfill with the closest remaining candidates if the heuristic
	// was too aggressive.
	if len(selected) < m {
		have := make(map[int]struct{}, len(selected))
		for _, s := range selected {
			have[s.ID] = struct{}{}
		}
		for _, c := range cands {
			if len(selected) >= m {
				break
			}
			if _, ok := have[c.ID]; !ok {
				selected = append(selected, c)
			}
		}
	}
	return selected
}

func (h *HNSW) pruneNeighbors(layer, id, m int) {
	ns := h.neighbors[layer][id]
	rs := make([]Result, len(ns))
	for i, n := range ns {
		rs[i] = Result{ID: int(n), Dist: h.distNodes(id, int(n))}
	}
	top := TopK(rs, m)
	pruned := make([]int32, len(top))
	for i, r := range top {
		pruned[i] = int32(r.ID)
	}
	h.neighbors[layer][id] = pruned
}

// SetEfSearch adjusts the search-time candidate pool (recall knob).
func (h *HNSW) SetEfSearch(ef int) {
	if ef > 0 {
		h.cfg.EfSearch = ef
	}
}

// Search implements Searcher.
func (h *HNSW) Search(query []float32, k int) []Result {
	if len(query) != h.dim {
		panic(fmt.Sprintf("ann: HNSW query dim %d != index dim %d", len(query), h.dim))
	}
	var qCode []uint64
	if h.cfg.Binary {
		qCode = vecmath.BinaryQuantize(query, nil)
	}
	cur := h.entry
	for l := h.maxLevel; l > 0; l-- {
		cur = h.greedyClosest(query, qCode, cur, l)
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(query, qCode, cur, ef, 0)
	if h.cfg.Binary {
		// INT8 rerank, mirroring the BQ+rescore recipe.
		q8 := h.params.Int8Quantize(query, nil)
		for i := range cands {
			cands[i].Dist = float32(vecmath.L2SquaredInt8(q8, h.int8s[cands[i].ID]))
		}
	}
	return TopK(cands, k)
}
