package ann

import (
	"slices"
	"testing"
)

// FuzzTopKMerge checks the scatter-gather reduction invariant the
// sharded engine relies on: partitioning a candidate stream into
// arbitrary shards, taking each shard's top-k, and merging must
// produce exactly the top-k of the unpartitioned stream. Distances are
// quantized to force heavy ties — the case where a non-total order
// would diverge — and IDs are unique, so the expected result is fully
// deterministic. The committed seed corpus (testdata/fuzz) covers
// single-shard, k larger than the stream, and tie-heavy partitions.
func FuzzTopKMerge(f *testing.F) {
	f.Add([]byte("candidate stream with plenty of duplicate distances"), 10, 3)
	f.Add([]byte{5, 5, 5, 5, 5, 5, 5, 5}, 4, 5)
	f.Add([]byte{1}, 16, 2)
	f.Add([]byte{9, 1, 8, 2, 7, 3, 6, 4, 5, 0, 9, 1, 8, 2}, 1, 4)
	f.Fuzz(func(t *testing.T, data []byte, k, parts int) {
		kk := 1 + abs(k)%32
		np := 1 + abs(parts)%8
		stream := make([]Result, len(data))
		for i, b := range data {
			// Few distinct distances => many ties at every cut line.
			stream[i] = Result{ID: i, Dist: float32(b % 7)}
		}
		lists := make([][]Result, np)
		for i, r := range stream {
			p := (int(data[i])*31 + i) % np
			lists[p] = append(lists[p], r)
		}
		perPart := make([][]Result, np)
		for p := range lists {
			perPart[p] = TopK(slices.Clone(lists[p]), kk)
		}
		got := MergeTopK(perPart, kk)
		want := TopK(slices.Clone(stream), kk)
		if len(got) != len(want) {
			t.Fatalf("merged %d results, want %d (k=%d parts=%d n=%d)", len(got), len(want), kk, np, len(stream))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("result %d = %+v, want %+v (k=%d parts=%d)", i, got[i], want[i], kk, np)
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
