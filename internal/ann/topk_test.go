package ann

import (
	"testing"
	"testing/quick"

	"reis/internal/xrand"
)

func randResults(r *xrand.RNG, n int) []Result {
	rs := make([]Result, n)
	for i := range rs {
		rs[i] = Result{ID: i, Dist: r.Float32()}
	}
	return rs
}

func TestQuickselectPartitions(t *testing.T) {
	r := xrand.New(1)
	for _, n := range []int{1, 2, 10, 100, 1000} {
		for _, k := range []int{1, 2, n / 2, n - 1, n} {
			if k <= 0 || k > n {
				continue
			}
			rs := randResults(r, n)
			Quickselect(rs, k)
			var maxLeft, minRight float32 = -1, 2
			for i := 0; i < k; i++ {
				if rs[i].Dist > maxLeft {
					maxLeft = rs[i].Dist
				}
			}
			for i := k; i < n; i++ {
				if rs[i].Dist < minRight {
					minRight = rs[i].Dist
				}
			}
			if n > k && maxLeft > minRight {
				t.Fatalf("n=%d k=%d: left max %v > right min %v", n, k, maxLeft, minRight)
			}
		}
	}
}

func TestQuickselectPreservesMultiset(t *testing.T) {
	r := xrand.New(2)
	rs := randResults(r, 500)
	var before float64
	for _, x := range rs {
		before += float64(x.Dist)
	}
	Quickselect(rs, 100)
	var after float64
	for _, x := range rs {
		after += float64(x.Dist)
	}
	if before != after {
		t.Fatalf("multiset changed: %v != %v", before, after)
	}
}

func TestQuickselectSortedInput(t *testing.T) {
	rs := make([]Result, 1000)
	for i := range rs {
		rs[i] = Result{ID: i, Dist: float32(i)}
	}
	Quickselect(rs, 10)
	for i := 0; i < 10; i++ {
		if rs[i].Dist >= 10 {
			t.Fatalf("sorted input: element %d has dist %v", i, rs[i].Dist)
		}
	}
}

func TestQuickselectDuplicates(t *testing.T) {
	rs := make([]Result, 100)
	for i := range rs {
		rs[i] = Result{ID: i, Dist: float32(i % 3)}
	}
	Quickselect(rs, 40)
	for i := 0; i < 34; i++ { // 34 zeros exist
		if rs[i].Dist > 1 {
			t.Fatalf("duplicate handling: pos %d dist %v", i, rs[i].Dist)
		}
	}
}

func TestQuickselectEdgeCases(t *testing.T) {
	Quickselect(nil, 1)               // must not panic
	Quickselect([]Result{{1, 0}}, 0)  // k=0
	Quickselect([]Result{{1, 0}}, 5)  // k > len
	Quickselect([]Result{{1, 0}}, -1) // negative k
}

func TestTopKSorted(t *testing.T) {
	r := xrand.New(3)
	rs := randResults(r, 200)
	top := TopK(rs, 20)
	if len(top) != 20 {
		t.Fatalf("len = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Dist < top[i-1].Dist {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	f := func(seed uint16) bool {
		r := xrand.New(uint64(seed))
		n := 50 + r.Intn(200)
		k := 1 + r.Intn(n)
		rs := randResults(r, n)
		full := make([]Result, n)
		copy(full, rs)
		SortResults(full)
		top := TopK(rs, k)
		for i := 0; i < k; i++ {
			if top[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKClampsK(t *testing.T) {
	rs := []Result{{1, 0.5}, {2, 0.1}}
	top := TopK(rs, 10)
	if len(top) != 2 || top[0].ID != 2 {
		t.Fatalf("TopK = %v", top)
	}
}

func TestSortResultsTieBreak(t *testing.T) {
	rs := []Result{{5, 1}, {2, 1}, {9, 0}}
	SortResults(rs)
	if rs[0].ID != 9 || rs[1].ID != 2 || rs[2].ID != 5 {
		t.Fatalf("tie break wrong: %v", rs)
	}
}

func TestBoundedListKeepsBest(t *testing.T) {
	b := NewBoundedList(3)
	for i := 10; i > 0; i-- {
		b.Push(Result{ID: i, Dist: float32(i)})
	}
	got := b.Results()
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Fatalf("Results = %v", got)
	}
}

func TestBoundedListWorst(t *testing.T) {
	b := NewBoundedList(2)
	if _, ok := b.Worst(); ok {
		t.Fatal("Worst ok before full")
	}
	b.Push(Result{1, 1})
	b.Push(Result{2, 2})
	w, ok := b.Worst()
	if !ok || w.Dist != 2 {
		t.Fatalf("Worst = %v ok=%v", w, ok)
	}
	b.Push(Result{3, 0.5})
	w, _ = b.Worst()
	if w.Dist != 1 {
		t.Fatalf("Worst after push = %v", w)
	}
}

func TestBoundedListRejectsWorse(t *testing.T) {
	b := NewBoundedList(1)
	b.Push(Result{1, 1})
	b.Push(Result{2, 5})
	got := b.Results()
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Results = %v", got)
	}
}

func TestBoundedListMatchesFullSort(t *testing.T) {
	r := xrand.New(4)
	rs := randResults(r, 300)
	b := NewBoundedList(25)
	for _, x := range rs {
		b.Push(x)
	}
	full := make([]Result, len(rs))
	copy(full, rs)
	SortResults(full)
	got := b.Results()
	for i := 0; i < 25; i++ {
		if got[i].ID != full[i].ID {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], full[i])
		}
	}
}

func TestBoundedListPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBoundedList(0)
}

func BenchmarkQuickselect10kTop100(b *testing.B) {
	r := xrand.New(5)
	base := randResults(r, 10000)
	work := make([]Result, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		Quickselect(work, 100)
	}
}
