package ann

import (
	"fmt"

	"reis/internal/vecmath"
)

// Searcher is the interface every index in this package implements.
type Searcher interface {
	// Search returns the approximate k nearest neighbors of query,
	// sorted ascending by distance.
	Search(query []float32, k int) []Result
}

// Flat is the exhaustive (brute-force) float32 index — the paper's
// "BF" configuration and the reference every ANNS algorithm is
// normalized against.
type Flat struct {
	vectors [][]float32
	dim     int
}

// NewFlat builds a flat index over vectors. The slice is retained,
// not copied.
func NewFlat(vectors [][]float32) *Flat {
	if len(vectors) == 0 {
		panic("ann: NewFlat on empty input")
	}
	return &Flat{vectors: vectors, dim: len(vectors[0])}
}

// Search implements Searcher with exact L2 distances.
func (f *Flat) Search(query []float32, k int) []Result {
	if len(query) != f.dim {
		panic(fmt.Sprintf("ann: Flat query dim %d != index dim %d", len(query), f.dim))
	}
	rs := make([]Result, len(f.vectors))
	for i, v := range f.vectors {
		rs[i] = Result{ID: i, Dist: vecmath.L2Squared(query, v)}
	}
	return TopK(rs, k)
}

// Len returns the number of indexed vectors.
func (f *Flat) Len() int { return len(f.vectors) }

// BinaryFlat is an exhaustive index over binary-quantized embeddings
// with optional INT8 reranking — the "CPU + BQ" configuration of
// Fig 3 / Table 4 and the computation REIS performs in-storage.
type BinaryFlat struct {
	dim    int
	codes  [][]uint64
	int8s  [][]int8
	params vecmath.Int8Params
	// RerankFactor is the multiple of k fetched from the binary stage
	// before INT8 rescoring. The paper selects the 10k closest binary
	// candidates before reranking (Sec 4.3.2 step 6), i.e. a factor
	// of 10.
	RerankFactor int
}

// NewBinaryFlat quantizes vectors to binary codes and INT8 rerank
// copies.
func NewBinaryFlat(vectors [][]float32) *BinaryFlat {
	if len(vectors) == 0 {
		panic("ann: NewBinaryFlat on empty input")
	}
	b := &BinaryFlat{
		dim:          len(vectors[0]),
		codes:        make([][]uint64, len(vectors)),
		int8s:        make([][]int8, len(vectors)),
		params:       vecmath.ComputeInt8Params(vectors),
		RerankFactor: 10,
	}
	for i, v := range vectors {
		b.codes[i] = vecmath.BinaryQuantize(v, nil)
		b.int8s[i] = b.params.Int8Quantize(v, nil)
	}
	return b
}

// Search implements Searcher: Hamming scan then INT8 rerank.
func (b *BinaryFlat) Search(query []float32, k int) []Result {
	if len(query) != b.dim {
		panic(fmt.Sprintf("ann: BinaryFlat query dim %d != index dim %d", len(query), b.dim))
	}
	qCode := vecmath.BinaryQuantize(query, nil)
	rs := make([]Result, len(b.codes))
	for i, c := range b.codes {
		rs[i] = Result{ID: i, Dist: float32(vecmath.Hamming(qCode, c))}
	}
	cut := k * b.RerankFactor
	if cut > len(rs) {
		cut = len(rs)
	}
	cands := TopK(rs, cut)
	return b.rerank(query, cands, k)
}

// rerank rescores candidates with INT8 L2 distance, the second-stage
// kernel the SSD embedded core executes (Sec 4.3.2 step 7-8).
func (b *BinaryFlat) rerank(query []float32, cands []Result, k int) []Result {
	q8 := b.params.Int8Quantize(query, nil)
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: c.ID, Dist: float32(vecmath.L2SquaredInt8(q8, b.int8s[c.ID]))}
	}
	return TopK(out, k)
}

// Len returns the number of indexed vectors.
func (b *BinaryFlat) Len() int { return len(b.codes) }
