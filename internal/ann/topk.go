// Package ann implements the host-side Approximate Nearest Neighbor
// Search algorithms the REIS paper evaluates and compares against:
// exhaustive (flat) search, the Inverted File algorithm (IVF) that REIS
// adopts, Hierarchical Navigable Small World graphs (HNSW),
// Locality-Sensitive Hashing (LSH), and Product Quantization (PQ), each
// optionally combined with Binary Quantization and INT8 reranking.
//
// The selection kernel is quickselect (Hoare's FIND), the same kernel
// the paper runs on the SSD's embedded cores (Sec 4.3.1).
//
// Beyond results, the indexes expose the per-query work their search
// actually did — HNSW.HopCount accumulates neighbor evaluations,
// LSH.CandidateCount sizes the rescored union — which the frontier
// experiment (internal/experiments) feeds to the DRAM-side cost
// models of internal/rivals to price each operating point at paper
// scale.
package ann

import "sort"

// Result is a single search hit. Dist is the distance in whatever
// metric the producing index uses (lower is better).
type Result struct {
	ID   int
	Dist float32
}

// Quickselect partially sorts rs so that the k smallest results under
// the (Dist, ID) total order occupy rs[:k] (in arbitrary order within
// the prefix), using Hoare's FIND with median-of-three pivoting. It
// runs in O(n) expected time and is the selection kernel modeled for
// the SSD embedded cores. Selecting under the total order — not
// distance alone — makes membership at the k-boundary deterministic
// among equal distances, which scatter-gather reductions depend on
// (FuzzTopKMerge: a partitioned stream's merged top-k must equal the
// unpartitioned top-k exactly).
// If k >= len(rs) the slice is left as is.
func Quickselect(rs []Result, k int) {
	if k <= 0 || k >= len(rs) {
		return
	}
	lo, hi := 0, len(rs)-1
	for lo < hi {
		// Hoare partition: rs[lo..p] <= pivot <= rs[p+1..hi]. The pivot
		// is not placed at a final position, so recurse on whichever
		// side straddles index k-1 (inclusive on the left half).
		p := partition(rs, lo, hi)
		if p < k-1 {
			lo = p + 1
		} else {
			hi = p
		}
	}
}

func partition(rs []Result, lo, hi int) int {
	// Median-of-three pivot to avoid quadratic behaviour on sorted
	// input.
	mid := lo + (hi-lo)/2
	if lessResult(rs[mid], rs[lo]) {
		rs[mid], rs[lo] = rs[lo], rs[mid]
	}
	if lessResult(rs[hi], rs[lo]) {
		rs[hi], rs[lo] = rs[lo], rs[hi]
	}
	if lessResult(rs[hi], rs[mid]) {
		rs[hi], rs[mid] = rs[mid], rs[hi]
	}
	pivot := rs[mid]
	i, j := lo, hi
	for {
		for lessResult(rs[i], pivot) {
			i++
		}
		for lessResult(pivot, rs[j]) {
			j--
		}
		if i >= j {
			return j
		}
		rs[i], rs[j] = rs[j], rs[i]
		i++
		j--
	}
}

// TopK returns the k smallest-distance results sorted ascending by
// distance (ties broken by ID for determinism). rs is modified.
func TopK(rs []Result, k int) []Result {
	if k > len(rs) {
		k = len(rs)
	}
	Quickselect(rs, k)
	out := rs[:k]
	SortResults(out)
	return out
}

// MergeTopK merges per-shard top-k lists — each sorted ascending by
// (Dist, ID), as TopK returns them — into the overall top-k, the
// host-side scatter-gather reduction of a sharded index. As long as
// every list retained its own k best, the merge equals TopK over the
// concatenated candidate streams (pinned by FuzzTopKMerge): an entry
// of the global top-k is among the k best of whichever shard holds
// it. lists are not modified.
func MergeTopK(lists [][]Result, k int) []Result {
	if k <= 0 {
		return nil
	}
	heads := make([]int, len(lists))
	out := make([]Result, 0, k)
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || lessResult(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// lessResult is the (Dist, ID) total order shared by SortResults and
// MergeTopK.
func lessResult(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// SortResults sorts ascending by distance, breaking ties by ID. This
// is the quicksort step the paper runs after the final selection
// (Sec 4.3.1).
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return lessResult(rs[i], rs[j]) })
}

// BoundedList maintains the k best (smallest-distance) results seen so
// far using a binary max-heap, for streaming candidate generation.
// The zero value is not usable; construct with NewBoundedList.
type BoundedList struct {
	k    int
	heap []Result // max-heap by Dist
}

// NewBoundedList returns a list that retains the k best results.
func NewBoundedList(k int) *BoundedList {
	if k <= 0 {
		panic("ann: NewBoundedList k must be positive")
	}
	return &BoundedList{k: k, heap: make([]Result, 0, k)}
}

// Push offers a candidate.
func (b *BoundedList) Push(r Result) {
	if len(b.heap) < b.k {
		b.heap = append(b.heap, r)
		b.up(len(b.heap) - 1)
		return
	}
	if r.Dist >= b.heap[0].Dist {
		return
	}
	b.heap[0] = r
	b.down(0)
}

// Worst returns the current k-th best distance, or +inf semantics via
// ok=false when fewer than k results are held.
func (b *BoundedList) Worst() (Result, bool) {
	if len(b.heap) < b.k {
		return Result{}, false
	}
	return b.heap[0], true
}

// Len returns the number of results currently held.
func (b *BoundedList) Len() int { return len(b.heap) }

// Results returns the retained results sorted ascending by distance.
func (b *BoundedList) Results() []Result {
	out := make([]Result, len(b.heap))
	copy(out, b.heap)
	SortResults(out)
	return out
}

func (b *BoundedList) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if b.heap[parent].Dist >= b.heap[i].Dist {
			return
		}
		b.heap[parent], b.heap[i] = b.heap[i], b.heap[parent]
		i = parent
	}
}

func (b *BoundedList) down(i int) {
	n := len(b.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && b.heap[l].Dist > b.heap[largest].Dist {
			largest = l
		}
		if r < n && b.heap[r].Dist > b.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		b.heap[i], b.heap[largest] = b.heap[largest], b.heap[i]
		i = largest
	}
}
