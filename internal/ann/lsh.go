package ann

import (
	"fmt"

	"reis/internal/vecmath"
	"reis/internal/xrand"
)

// LSHConfig parameterizes random-hyperplane Locality-Sensitive Hashing
// (the hash-based family of Sec 4.2, shown in Fig 5 to underperform
// IVF and HNSW at high recall).
type LSHConfig struct {
	Tables int // number of independent hash tables (default 8)
	Bits   int // hash bits per table (default 16)
	Seed   uint64
	// ProbeRadius enables multi-probe LSH: buckets within this Hamming
	// radius of the query's bucket are also inspected (default 1).
	ProbeRadius int
}

// LSH is a multi-table random-hyperplane index. Candidates from all
// probed buckets are rescored with exact L2.
type LSH struct {
	cfg     LSHConfig
	dim     int
	vectors [][]float32
	// planes[t][b] is the normal of hyperplane b in table t.
	planes [][][]float32
	tables []map[uint32][]int32
}

// NewLSH builds the hash tables.
func NewLSH(vectors [][]float32, cfg LSHConfig) *LSH {
	if len(vectors) == 0 {
		panic("ann: NewLSH on empty input")
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 8
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 16
	}
	if cfg.Bits > 30 {
		panic(fmt.Sprintf("ann: LSH bits %d too large", cfg.Bits))
	}
	if cfg.ProbeRadius == 0 {
		cfg.ProbeRadius = 1
	}
	rng := xrand.New(cfg.Seed + 0x714)
	l := &LSH{
		cfg:     cfg,
		dim:     len(vectors[0]),
		vectors: vectors,
		planes:  make([][][]float32, cfg.Tables),
		tables:  make([]map[uint32][]int32, cfg.Tables),
	}
	for t := 0; t < cfg.Tables; t++ {
		l.planes[t] = make([][]float32, cfg.Bits)
		for b := 0; b < cfg.Bits; b++ {
			p := make([]float32, l.dim)
			for j := range p {
				p[j] = float32(rng.NormFloat64())
			}
			l.planes[t][b] = p
		}
		l.tables[t] = make(map[uint32][]int32)
		for i, v := range vectors {
			h := l.hash(t, v)
			l.tables[t][h] = append(l.tables[t][h], int32(i))
		}
	}
	return l
}

func (l *LSH) hash(table int, v []float32) uint32 {
	var h uint32
	for b, plane := range l.planes[table] {
		if vecmath.Dot(v, plane) > 0 {
			h |= 1 << uint(b)
		}
	}
	return h
}

// Search implements Searcher: collect candidates from the query's
// bucket (and neighbors within ProbeRadius) in every table, then
// rescore exactly.
func (l *LSH) Search(query []float32, k int) []Result {
	if len(query) != l.dim {
		panic(fmt.Sprintf("ann: LSH query dim %d != index dim %d", len(query), l.dim))
	}
	seen := make(map[int32]struct{})
	for t := 0; t < l.cfg.Tables; t++ {
		h := l.hash(t, query)
		l.collect(t, h, seen)
		if l.cfg.ProbeRadius >= 1 {
			for b := 0; b < l.cfg.Bits; b++ {
				l.collect(t, h^(1<<uint(b)), seen)
			}
		}
		if l.cfg.ProbeRadius >= 2 {
			for b1 := 0; b1 < l.cfg.Bits; b1++ {
				for b2 := b1 + 1; b2 < l.cfg.Bits; b2++ {
					l.collect(t, h^(1<<uint(b1))^(1<<uint(b2)), seen)
				}
			}
		}
	}
	rs := make([]Result, 0, len(seen))
	for id := range seen {
		rs = append(rs, Result{ID: int(id), Dist: vecmath.L2Squared(query, l.vectors[id])})
	}
	return TopK(rs, k)
}

func (l *LSH) collect(table int, h uint32, seen map[int32]struct{}) {
	for _, id := range l.tables[table][h] {
		seen[id] = struct{}{}
	}
}

// CandidateCount reports how many distinct candidates a search for
// query would rescore; the Fig 5 discussion uses this to show LSH's
// poor work-recall tradeoff.
func (l *LSH) CandidateCount(query []float32) int {
	seen := make(map[int32]struct{})
	for t := 0; t < l.cfg.Tables; t++ {
		h := l.hash(t, query)
		l.collect(t, h, seen)
		if l.cfg.ProbeRadius >= 1 {
			for b := 0; b < l.cfg.Bits; b++ {
				l.collect(t, h^(1<<uint(b)), seen)
			}
		}
	}
	return len(seen)
}
