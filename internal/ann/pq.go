package ann

import (
	"fmt"

	"reis/internal/vecmath"
)

// PQConfig parameterizes Product Quantization (Jégou et al., TPAMI
// 2011), evaluated in Fig 5 as "PQ IVF".
type PQConfig struct {
	M    int // number of sub-quantizers (must divide dim; default 8)
	KS   int // centroids per sub-quantizer (default 256, one byte/code)
	Seed uint64
	// TrainIters bounds the per-subspace k-means iterations.
	TrainIters int
}

// PQ is a product quantizer: each vector is split into M sub-vectors,
// each encoded as the ID of its nearest sub-centroid. Distances are
// computed with asymmetric distance computation (ADC) lookup tables.
type PQ struct {
	cfg    PQConfig
	dim    int
	subDim int
	// codebooks[m][c] is centroid c of sub-quantizer m.
	codebooks [][][]float32
	codes     [][]uint8 // codes[i][m] = centroid id of vector i in subspace m
}

// NewPQ trains the codebooks and encodes vectors.
func NewPQ(vectors [][]float32, cfg PQConfig) *PQ {
	if len(vectors) == 0 {
		panic("ann: NewPQ on empty input")
	}
	dim := len(vectors[0])
	if cfg.M <= 0 {
		cfg.M = 8
	}
	if dim%cfg.M != 0 {
		panic(fmt.Sprintf("ann: PQ M=%d does not divide dim=%d", cfg.M, dim))
	}
	if cfg.KS <= 0 {
		cfg.KS = 256
	}
	if cfg.KS > 256 {
		panic("ann: PQ KS > 256 does not fit a byte code")
	}
	if cfg.TrainIters == 0 {
		cfg.TrainIters = 10
	}
	p := &PQ{
		cfg:       cfg,
		dim:       dim,
		subDim:    dim / cfg.M,
		codebooks: make([][][]float32, cfg.M),
		codes:     make([][]uint8, len(vectors)),
	}
	for i := range p.codes {
		p.codes[i] = make([]uint8, cfg.M)
	}
	sub := make([][]float32, len(vectors))
	for m := 0; m < cfg.M; m++ {
		lo, hi := m*p.subDim, (m+1)*p.subDim
		for i, v := range vectors {
			sub[i] = v[lo:hi]
		}
		cents, assign := KMeans(sub, KMeansConfig{
			K: cfg.KS, Seed: cfg.Seed + uint64(m), MaxIters: cfg.TrainIters,
			SampleLimit: 16384,
		})
		p.codebooks[m] = cents
		for i, a := range assign {
			p.codes[i][m] = uint8(a)
		}
	}
	return p
}

// adcTable builds the per-subspace distance lookup table for query.
func (p *PQ) adcTable(query []float32) [][]float32 {
	table := make([][]float32, p.cfg.M)
	for m := 0; m < p.cfg.M; m++ {
		lo, hi := m*p.subDim, (m+1)*p.subDim
		q := query[lo:hi]
		row := make([]float32, len(p.codebooks[m]))
		for c, cent := range p.codebooks[m] {
			row[c] = vecmath.L2Squared(q, cent)
		}
		table[m] = row
	}
	return table
}

// Search implements Searcher with an exhaustive ADC scan.
func (p *PQ) Search(query []float32, k int) []Result {
	if len(query) != p.dim {
		panic(fmt.Sprintf("ann: PQ query dim %d != index dim %d", len(query), p.dim))
	}
	table := p.adcTable(query)
	rs := make([]Result, len(p.codes))
	for i, code := range p.codes {
		var d float32
		for m, c := range code {
			d += table[m][c]
		}
		rs[i] = Result{ID: i, Dist: d}
	}
	return TopK(rs, k)
}

// SearchSubset scores only the listed candidate IDs — used to build
// "PQ IVF" (IVF coarse search + PQ fine scan) for Fig 5.
func (p *PQ) SearchSubset(query []float32, ids []int, k int) []Result {
	table := p.adcTable(query)
	rs := make([]Result, len(ids))
	for i, id := range ids {
		var d float32
		for m, c := range p.codes[id] {
			d += table[m][c]
		}
		rs[i] = Result{ID: id, Dist: d}
	}
	return TopK(rs, k)
}

// PQIVF composes an IVF coarse quantizer with PQ fine codes.
type PQIVF struct {
	ivf *IVF
	pq  *PQ
}

// NewPQIVF trains both stages over the same vectors.
func NewPQIVF(vectors [][]float32, ivfCfg IVFConfig, pqCfg PQConfig) *PQIVF {
	ivfCfg.Mode = IVFFloat
	return &PQIVF{ivf: NewIVF(vectors, ivfCfg), pq: NewPQ(vectors, pqCfg)}
}

// SearchNProbe runs the coarse IVF search, then PQ-ADC scores the
// probed lists.
func (p *PQIVF) SearchNProbe(query []float32, k, nprobe int) []Result {
	probes := p.ivf.CoarseSearch(query, nprobe)
	var ids []int
	for _, c := range probes {
		ids = append(ids, p.ivf.lists[c]...)
	}
	return p.pq.SearchSubset(query, ids, k)
}

// Search implements Searcher with nprobe=1.
func (p *PQIVF) Search(query []float32, k int) []Result {
	return p.SearchNProbe(query, k, 1)
}
