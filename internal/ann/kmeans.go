package ann

import (
	"fmt"

	"reis/internal/vecmath"
	"reis/internal/xrand"
)

// KMeansConfig controls Lloyd's-algorithm clustering used to train IVF
// centroids (the indexing stage of the RAG pipeline, Sec 2.1).
type KMeansConfig struct {
	K        int // number of centroids
	MaxIters int // Lloyd iterations (default 15)
	Seed     uint64
	// SampleLimit caps the number of training points considered (0 =
	// use all); FAISS-style subsampling keeps training tractable.
	SampleLimit int
}

// KMeans clusters vectors into cfg.K centroids and returns the
// centroids along with each input's assignment.
func KMeans(vectors [][]float32, cfg KMeansConfig) (centroids [][]float32, assign []int) {
	if cfg.K <= 0 {
		panic(fmt.Sprintf("ann: KMeans invalid K=%d", cfg.K))
	}
	if len(vectors) == 0 {
		panic("ann: KMeans on empty input")
	}
	if cfg.K > len(vectors) {
		cfg.K = len(vectors)
	}
	if cfg.MaxIters == 0 {
		cfg.MaxIters = 15
	}
	rng := xrand.New(cfg.Seed + 0x9e37)
	dim := len(vectors[0])

	train := vectors
	if cfg.SampleLimit > 0 && cfg.SampleLimit < len(vectors) {
		perm := rng.Perm(len(vectors))
		train = make([][]float32, cfg.SampleLimit)
		for i := range train {
			train[i] = vectors[perm[i]]
		}
	}

	// k-means++ seeding for stable, well-spread initial centroids.
	centroids = kmeansPlusPlusInit(train, cfg.K, dim, rng)

	counts := make([]int, cfg.K)
	sums := make([][]float32, cfg.K)
	for c := range sums {
		sums[c] = make([]float32, dim)
	}
	trainAssign := make([]int, len(train))
	for iter := 0; iter < cfg.MaxIters; iter++ {
		changed := 0
		for c := 0; c < cfg.K; c++ {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, v := range train {
			best := NearestCentroid(centroids, v)
			if trainAssign[i] != best {
				changed++
				trainAssign[i] = best
			}
			counts[best]++
			s := sums[best]
			for j := range v {
				s[j] += v[j]
			}
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster from a random point to keep
				// all nlist clusters populated.
				copy(centroids[c], train[rng.Intn(len(train))])
				continue
			}
			inv := 1 / float32(counts[c])
			for j := 0; j < dim; j++ {
				centroids[c][j] = sums[c][j] * inv
			}
		}
		if changed == 0 && iter > 0 {
			break
		}
	}

	assign = make([]int, len(vectors))
	for i, v := range vectors {
		assign[i] = NearestCentroid(centroids, v)
	}
	return centroids, assign
}

func kmeansPlusPlusInit(train [][]float32, k, dim int, rng *xrand.RNG) [][]float32 {
	centroids := make([][]float32, k)
	first := train[rng.Intn(len(train))]
	centroids[0] = append(make([]float32, 0, dim), first...)
	dists := make([]float64, len(train))
	for i, v := range train {
		dists[i] = float64(vecmath.L2Squared(v, centroids[0]))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dists {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(len(train))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = len(train) - 1
			for i, d := range dists {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		centroids[c] = append(make([]float32, 0, dim), train[pick]...)
		for i, v := range train {
			d := float64(vecmath.L2Squared(v, centroids[c]))
			if d < dists[i] {
				dists[i] = d
			}
		}
	}
	return centroids
}

// NearestCentroid returns the index of the centroid closest to v
// under squared L2 — the assignment rule KMeans itself uses, exported
// so callers assigning new vectors to an existing centroid set (e.g.
// IVF appends) cannot drift from it.
func NearestCentroid(centroids [][]float32, v []float32) int {
	best, bestDist := 0, vecmath.L2Squared(v, centroids[0])
	for c := 1; c < len(centroids); c++ {
		d := vecmath.L2Squared(v, centroids[c])
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}
