package ann

import (
	"fmt"

	"reis/internal/vecmath"
)

// IVFMode selects the precision the fine-grained IVF scan runs in.
type IVFMode int

const (
	// IVFFloat scans full-precision float32 vectors.
	IVFFloat IVFMode = iota
	// IVFBinary scans binary-quantized vectors with Hamming distance
	// and reranks the survivors with INT8 — the configuration REIS
	// executes in storage.
	IVFBinary
)

// IVFConfig parameterizes index construction.
type IVFConfig struct {
	NList    int     // number of clusters (FAISS nlist)
	Mode     IVFMode // scan precision
	Seed     uint64
	MaxIters int // k-means iterations
	// RerankFactor applies in IVFBinary mode (default 10).
	RerankFactor int
}

// IVF is the Inverted File index (Sec 2.2, Sec 4.2): k-means clusters
// with a coarse centroid search followed by a fine scan of the nprobe
// closest clusters.
type IVF struct {
	mode      IVFMode
	dim       int
	centroids [][]float32
	// lists[c] holds the database IDs assigned to cluster c.
	lists [][]int

	vectors [][]float32 // retained for float mode and reranking
	codes   [][]uint64  // binary mode
	int8s   [][]int8
	params  vecmath.Int8Params

	rerankFactor int
}

// NewIVF trains an IVF index over vectors.
func NewIVF(vectors [][]float32, cfg IVFConfig) *IVF {
	if len(vectors) == 0 {
		panic("ann: NewIVF on empty input")
	}
	if cfg.NList <= 0 {
		// FAISS rule of thumb: ~sqrt(N) to 4*sqrt(N) clusters.
		cfg.NList = max(1, isqrt(len(vectors)))
	}
	if cfg.RerankFactor == 0 {
		cfg.RerankFactor = 10
	}
	centroids, assign := KMeans(vectors, KMeansConfig{
		K: cfg.NList, Seed: cfg.Seed, MaxIters: cfg.MaxIters,
	})
	idx := &IVF{
		mode:         cfg.Mode,
		dim:          len(vectors[0]),
		centroids:    centroids,
		lists:        make([][]int, len(centroids)),
		vectors:      vectors,
		rerankFactor: cfg.RerankFactor,
	}
	for i, c := range assign {
		idx.lists[c] = append(idx.lists[c], i)
	}
	if cfg.Mode == IVFBinary {
		idx.params = vecmath.ComputeInt8Params(vectors)
		idx.codes = make([][]uint64, len(vectors))
		idx.int8s = make([][]int8, len(vectors))
		for i, v := range vectors {
			idx.codes[i] = vecmath.BinaryQuantize(v, nil)
			idx.int8s[i] = idx.params.Int8Quantize(v, nil)
		}
	}
	return idx
}

func isqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}

// NList returns the number of clusters.
func (idx *IVF) NList() int { return len(idx.centroids) }

// Centroids returns the trained cluster centroids (not copied).
func (idx *IVF) Centroids() [][]float32 { return idx.centroids }

// Lists returns the inverted lists (not copied).
func (idx *IVF) Lists() [][]int { return idx.lists }

// Search implements Searcher with the index's default nprobe of 1.
func (idx *IVF) Search(query []float32, k int) []Result {
	return idx.SearchNProbe(query, k, 1)
}

// SearchNProbe performs a coarse search over centroids, then a fine
// scan of the nprobe closest clusters.
func (idx *IVF) SearchNProbe(query []float32, k, nprobe int) []Result {
	if len(query) != idx.dim {
		panic(fmt.Sprintf("ann: IVF query dim %d != index dim %d", len(query), idx.dim))
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(idx.centroids) {
		nprobe = len(idx.centroids)
	}
	probes := idx.CoarseSearch(query, nprobe)
	switch idx.mode {
	case IVFFloat:
		return idx.fineFloat(query, probes, k)
	case IVFBinary:
		return idx.fineBinary(query, probes, k)
	default:
		panic(fmt.Sprintf("ann: unknown IVF mode %d", idx.mode))
	}
}

// CoarseSearch returns the indices of the nprobe centroids closest to
// query, closest first.
func (idx *IVF) CoarseSearch(query []float32, nprobe int) []int {
	rs := make([]Result, len(idx.centroids))
	for c, cent := range idx.centroids {
		rs[c] = Result{ID: c, Dist: vecmath.L2Squared(query, cent)}
	}
	top := TopK(rs, nprobe)
	out := make([]int, len(top))
	for i, r := range top {
		out[i] = r.ID
	}
	return out
}

func (idx *IVF) fineFloat(query []float32, probes []int, k int) []Result {
	var rs []Result
	for _, c := range probes {
		for _, id := range idx.lists[c] {
			rs = append(rs, Result{ID: id, Dist: vecmath.L2Squared(query, idx.vectors[id])})
		}
	}
	return TopK(rs, k)
}

func (idx *IVF) fineBinary(query []float32, probes []int, k int) []Result {
	qCode := vecmath.BinaryQuantize(query, nil)
	var rs []Result
	for _, c := range probes {
		for _, id := range idx.lists[c] {
			rs = append(rs, Result{ID: id, Dist: float32(vecmath.Hamming(qCode, idx.codes[id]))})
		}
	}
	cut := k * idx.rerankFactor
	if cut > len(rs) {
		cut = len(rs)
	}
	cands := TopK(rs, cut)
	q8 := idx.params.Int8Quantize(query, nil)
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: c.ID, Dist: float32(vecmath.L2SquaredInt8(q8, idx.int8s[c.ID]))}
	}
	return TopK(out, k)
}

// CandidatesScanned reports how many database vectors a fine scan with
// the given probes would touch — the work metric used by the timing
// models.
func (idx *IVF) CandidatesScanned(probes []int) int {
	n := 0
	for _, c := range probes {
		n += len(idx.lists[c])
	}
	return n
}

// CalibrateNProbe returns the smallest nprobe whose Recall@k against
// groundTruth meets target, mirroring the paper's accuracy sweep
// ("sweeping the accuracy of IVF from 0.98 down to 0.9 Recall@10").
// It returns NList (full scan) if the target is never reached.
func (idx *IVF) CalibrateNProbe(queries [][]float32, groundTruth [][]int, k int, target float64) int {
	for nprobe := 1; nprobe <= len(idx.centroids); nprobe = growProbe(nprobe) {
		got := make([][]int, len(queries))
		for q, qv := range queries {
			rs := idx.SearchNProbe(qv, k, nprobe)
			ids := make([]int, len(rs))
			for i, r := range rs {
				ids[i] = r.ID
			}
			got[q] = ids
		}
		if recallOf(groundTruth, got, k) >= target {
			return nprobe
		}
	}
	return len(idx.centroids)
}

func growProbe(p int) int {
	if p < 8 {
		return p + 1
	}
	return p + p/4
}

// recallOf mirrors dataset.Recall without importing it (avoids a
// dependency cycle in tests that exercise both packages).
func recallOf(gt, got [][]int, k int) float64 {
	if len(gt) == 0 {
		return 0
	}
	var total float64
	for q := range gt {
		want := gt[q]
		if len(want) > k {
			want = want[:k]
		}
		have := got[q]
		if len(have) > k {
			have = have[:k]
		}
		set := make(map[int]struct{}, len(have))
		for _, id := range have {
			set[id] = struct{}{}
		}
		hits := 0
		for _, id := range want {
			if _, ok := set[id]; ok {
				hits++
			}
		}
		if len(want) > 0 {
			total += float64(hits) / float64(len(want))
		}
	}
	return total / float64(len(gt))
}
