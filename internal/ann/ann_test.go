package ann

import (
	"testing"

	"reis/internal/dataset"
)

// testData caches a moderately sized clustered dataset shared by the
// index tests.
var testData = dataset.Generate(dataset.Config{
	Name: "ann-test", N: 2000, Dim: 96, Clusters: 24, Queries: 30, K: 10, Seed: 77,
})

func retrievedIDs(s Searcher, queries [][]float32, k int) [][]int {
	out := make([][]int, len(queries))
	for q, qv := range queries {
		rs := s.Search(qv, k)
		ids := make([]int, len(rs))
		for i, r := range rs {
			ids[i] = r.ID
		}
		out[q] = ids
	}
	return out
}

func recallOfSearcher(s Searcher, k int) float64 {
	return dataset.Recall(testData.GroundTruth, retrievedIDs(s, testData.Queries, k), k)
}

func TestFlatExactRecall(t *testing.T) {
	f := NewFlat(testData.Vectors)
	if r := recallOfSearcher(f, 10); r != 1 {
		t.Fatalf("flat recall = %v, want 1 (exact search)", r)
	}
}

func TestFlatResultsSorted(t *testing.T) {
	f := NewFlat(testData.Vectors)
	rs := f.Search(testData.Queries[0], 20)
	for i := 1; i < len(rs); i++ {
		if rs[i].Dist < rs[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestFlatPanicsOnDimMismatch(t *testing.T) {
	f := NewFlat(testData.Vectors)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Search(make([]float32, 7), 1)
}

func TestBinaryFlatHighRecall(t *testing.T) {
	b := NewBinaryFlat(testData.Vectors)
	r := recallOfSearcher(b, 10)
	if r < 0.90 {
		t.Fatalf("BQ+rerank recall = %v, want >= 0.90 (paper reports ~0.96)", r)
	}
	t.Logf("BinaryFlat Recall@10 = %.3f", r)
}

func TestBinaryFlatRerankImproves(t *testing.T) {
	// Reranking should not hurt: compare rerank factor 1 (no widening)
	// against the default 10.
	narrow := NewBinaryFlat(testData.Vectors)
	narrow.RerankFactor = 1
	wide := NewBinaryFlat(testData.Vectors)
	rn := recallOfSearcher(narrow, 10)
	rw := recallOfSearcher(wide, 10)
	if rw < rn {
		t.Fatalf("rerank hurt recall: %v -> %v", rn, rw)
	}
	t.Logf("recall narrow=%.3f wide=%.3f", rn, rw)
}

func TestKMeansBasicProperties(t *testing.T) {
	cents, assign := KMeans(testData.Vectors, KMeansConfig{K: 16, Seed: 1})
	if len(cents) != 16 {
		t.Fatalf("centroids = %d", len(cents))
	}
	if len(assign) != len(testData.Vectors) {
		t.Fatalf("assign len = %d", len(assign))
	}
	counts := make([]int, 16)
	for _, a := range assign {
		if a < 0 || a >= 16 {
			t.Fatalf("assignment out of range: %d", a)
		}
		counts[a]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("cluster %d empty", c)
		}
	}
}

func TestKMeansAssignsNearest(t *testing.T) {
	cents, assign := KMeans(testData.Vectors, KMeansConfig{K: 8, Seed: 2})
	for i, v := range testData.Vectors[:100] {
		if got := NearestCentroid(cents, v); got != assign[i] {
			t.Fatalf("vector %d assigned %d but nearest is %d", i, assign[i], got)
		}
	}
}

func TestKMeansClampsK(t *testing.T) {
	small := testData.Vectors[:5]
	cents, _ := KMeans(small, KMeansConfig{K: 50, Seed: 3})
	if len(cents) != 5 {
		t.Fatalf("centroids = %d, want clamped to 5", len(cents))
	}
}

func TestKMeansReducesDistortion(t *testing.T) {
	// Total distortion with K=24 (matching generator clusters) must be
	// far below K=1.
	d1 := distortion(t, 1)
	d24 := distortion(t, 24)
	if d24*2 > d1 {
		t.Fatalf("kmeans barely reduced distortion: K=1 %v vs K=24 %v", d1, d24)
	}
}

func distortion(t *testing.T, k int) float64 {
	t.Helper()
	cents, assign := KMeans(testData.Vectors, KMeansConfig{K: k, Seed: 4})
	var total float64
	for i, v := range testData.Vectors {
		c := cents[assign[i]]
		var d float32
		for j := range v {
			diff := v[j] - c[j]
			d += diff * diff
		}
		total += float64(d)
	}
	return total
}

func TestIVFFloatRecallIncreasesWithNProbe(t *testing.T) {
	idx := NewIVF(testData.Vectors, IVFConfig{NList: 32, Mode: IVFFloat, Seed: 5})
	var prev float64
	for _, nprobe := range []int{1, 4, 32} {
		got := make([][]int, len(testData.Queries))
		for q, qv := range testData.Queries {
			rs := idx.SearchNProbe(qv, 10, nprobe)
			ids := make([]int, len(rs))
			for i, r := range rs {
				ids[i] = r.ID
			}
			got[q] = ids
		}
		r := dataset.Recall(testData.GroundTruth, got, 10)
		if r+1e-9 < prev {
			t.Fatalf("recall decreased with nprobe %d: %v < %v", nprobe, r, prev)
		}
		prev = r
	}
	if prev < 0.999 {
		t.Fatalf("full-probe IVF recall = %v, want ~1", prev)
	}
}

func TestIVFFullProbeEqualsFlat(t *testing.T) {
	idx := NewIVF(testData.Vectors, IVFConfig{NList: 16, Mode: IVFFloat, Seed: 6})
	flat := NewFlat(testData.Vectors)
	for _, qv := range testData.Queries[:5] {
		a := idx.SearchNProbe(qv, 10, 16)
		b := flat.Search(qv, 10)
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("full-probe IVF differs from flat at rank %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestIVFBinaryRecall(t *testing.T) {
	idx := NewIVF(testData.Vectors, IVFConfig{NList: 32, Mode: IVFBinary, Seed: 7})
	got := make([][]int, len(testData.Queries))
	for q, qv := range testData.Queries {
		rs := idx.SearchNProbe(qv, 10, 8)
		ids := make([]int, len(rs))
		for i, r := range rs {
			ids[i] = r.ID
		}
		got[q] = ids
	}
	r := dataset.Recall(testData.GroundTruth, got, 10)
	if r < 0.75 {
		t.Fatalf("BQ IVF recall@nprobe=8 = %v, too low", r)
	}
	t.Logf("BQ IVF Recall@10 (nprobe=8/32) = %.3f", r)
}

func TestIVFListsPartition(t *testing.T) {
	idx := NewIVF(testData.Vectors, IVFConfig{NList: 20, Mode: IVFFloat, Seed: 8})
	seen := make([]bool, len(testData.Vectors))
	for _, list := range idx.Lists() {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("id %d in two lists", id)
			}
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("id %d in no list", id)
		}
	}
}

func TestIVFCalibrateNProbe(t *testing.T) {
	idx := NewIVF(testData.Vectors, IVFConfig{NList: 32, Mode: IVFBinary, Seed: 9})
	np90 := idx.CalibrateNProbe(testData.Queries, testData.GroundTruth, 10, 0.90)
	np98 := idx.CalibrateNProbe(testData.Queries, testData.GroundTruth, 10, 0.98)
	if np98 < np90 {
		t.Fatalf("higher recall target needs fewer probes: %d < %d", np98, np90)
	}
	if np90 < 1 || np90 > 32 {
		t.Fatalf("nprobe out of range: %d", np90)
	}
	t.Logf("calibrated nprobe: 0.90 -> %d, 0.98 -> %d (of 32)", np90, np98)
}

func TestIVFCandidatesScanned(t *testing.T) {
	idx := NewIVF(testData.Vectors, IVFConfig{NList: 10, Mode: IVFFloat, Seed: 10})
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if got := idx.CandidatesScanned(all); got != len(testData.Vectors) {
		t.Fatalf("full scan candidates = %d, want %d", got, len(testData.Vectors))
	}
}

func TestHNSWRecall(t *testing.T) {
	h := NewHNSW(testData.Vectors, HNSWConfig{M: 16, EfConstruction: 200, EfSearch: 128, Seed: 11})
	r := recallOfSearcher(h, 10)
	if r < 0.85 {
		t.Fatalf("HNSW recall = %v, want >= 0.85", r)
	}
	t.Logf("HNSW Recall@10 = %.3f", r)
}

func TestHNSWRecallIncreasesWithEf(t *testing.T) {
	lo := NewHNSW(testData.Vectors, HNSWConfig{M: 8, EfSearch: 10, Seed: 12})
	hi := NewHNSW(testData.Vectors, HNSWConfig{M: 8, EfSearch: 128, Seed: 12})
	rLo, rHi := recallOfSearcher(lo, 10), recallOfSearcher(hi, 10)
	if rHi < rLo {
		t.Fatalf("recall decreased with ef: %v -> %v", rLo, rHi)
	}
	t.Logf("HNSW recall ef=10: %.3f, ef=128: %.3f", rLo, rHi)
}

func TestHNSWBinaryMode(t *testing.T) {
	h := NewHNSW(testData.Vectors, HNSWConfig{M: 16, EfSearch: 96, Seed: 13, Binary: true})
	r := recallOfSearcher(h, 10)
	if r < 0.70 {
		t.Fatalf("BQ HNSW recall = %v, too low", r)
	}
	t.Logf("BQ HNSW Recall@10 = %.3f", r)
}

func TestHNSWHopCountGrows(t *testing.T) {
	h := NewHNSW(testData.Vectors, HNSWConfig{M: 8, Seed: 14})
	before := h.HopCount
	h.Search(testData.Queries[0], 10)
	if h.HopCount <= before {
		t.Fatal("HopCount did not grow during search")
	}
}

func TestLSHFindsNearDuplicates(t *testing.T) {
	l := NewLSH(testData.Vectors, LSHConfig{Tables: 12, Bits: 12, Seed: 15})
	// Searching with a database vector itself must return that vector.
	hits := 0
	for i := 0; i < 50; i++ {
		rs := l.Search(testData.Vectors[i], 1)
		if len(rs) > 0 && rs[0].ID == i {
			hits++
		}
	}
	if hits < 45 {
		t.Fatalf("LSH self-retrieval %d/50, want >= 45", hits)
	}
}

func TestLSHRecallModerate(t *testing.T) {
	l := NewLSH(testData.Vectors, LSHConfig{Tables: 16, Bits: 10, Seed: 16, ProbeRadius: 1})
	r := recallOfSearcher(l, 10)
	if r < 0.4 {
		t.Fatalf("LSH recall = %v, unreasonably low", r)
	}
	t.Logf("LSH Recall@10 = %.3f (candidates/query ~ %d)", r, l.CandidateCount(testData.Queries[0]))
}

func TestPQCompressesAndRecalls(t *testing.T) {
	p := NewPQ(testData.Vectors, PQConfig{M: 16, KS: 256, Seed: 17})
	r := recallOfSearcher(p, 10)
	if r < 0.5 {
		t.Fatalf("PQ recall = %v, want >= 0.5", r)
	}
	t.Logf("PQ Recall@10 = %.3f", r)
}

func TestPQCodeShape(t *testing.T) {
	p := NewPQ(testData.Vectors, PQConfig{M: 12, KS: 32, Seed: 18})
	if len(p.codes) != len(testData.Vectors) {
		t.Fatalf("codes = %d", len(p.codes))
	}
	for _, c := range p.codes[:10] {
		if len(c) != 12 {
			t.Fatalf("code length %d", len(c))
		}
		for _, b := range c {
			if int(b) >= 32 {
				t.Fatalf("code value %d out of range", b)
			}
		}
	}
}

func TestPQPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPQ(testData.Vectors, PQConfig{M: 7}) // 96 % 7 != 0
}

func TestPQIVFRecallIncreasesWithNProbe(t *testing.T) {
	p := NewPQIVF(testData.Vectors, IVFConfig{NList: 16, Seed: 19}, PQConfig{M: 8, KS: 64, Seed: 19})
	var prev float64
	for _, nprobe := range []int{1, 4, 16} {
		got := make([][]int, len(testData.Queries))
		for q, qv := range testData.Queries {
			rs := p.SearchNProbe(qv, 10, nprobe)
			ids := make([]int, len(rs))
			for i, r := range rs {
				ids[i] = r.ID
			}
			got[q] = ids
		}
		r := dataset.Recall(testData.GroundTruth, got, 10)
		// PQ distances are approximate: a larger candidate set can
		// demote a true hit, so allow small dips.
		if r+0.05 < prev {
			t.Fatalf("PQIVF recall decreased: %v < %v at nprobe %d", r, prev, nprobe)
		}
		if r > prev {
			prev = r
		}
	}
	t.Logf("PQIVF Recall@10 full probe = %.3f", prev)
}

func TestSearchersReturnKResults(t *testing.T) {
	searchers := map[string]Searcher{
		"flat":   NewFlat(testData.Vectors),
		"bflat":  NewBinaryFlat(testData.Vectors),
		"ivf":    NewIVF(testData.Vectors, IVFConfig{NList: 8, Seed: 20}),
		"hnsw":   NewHNSW(testData.Vectors, HNSWConfig{M: 8, Seed: 20}),
		"lsh":    NewLSH(testData.Vectors, LSHConfig{Seed: 20}),
		"pq":     NewPQ(testData.Vectors, PQConfig{M: 8, KS: 32, Seed: 20}),
		"pq-ivf": NewPQIVF(testData.Vectors, IVFConfig{NList: 8, Seed: 20}, PQConfig{M: 8, KS: 32, Seed: 20}),
	}
	for name, s := range searchers {
		rs := s.Search(testData.Queries[0], 5)
		if len(rs) > 5 {
			t.Errorf("%s returned %d > k results", name, len(rs))
		}
		if len(rs) == 0 && name != "lsh" { // LSH may legitimately miss
			t.Errorf("%s returned no results", name)
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].Dist < rs[i-1].Dist {
				t.Errorf("%s results not sorted", name)
			}
		}
	}
}
