package flash

import "fmt"

// Opcode enumerates the NAND flash command-set extensions of Table 2,
// plus the conventional read/program commands they extend. The die
// control logic is a finite-state machine (Sec 4.4.2): commands arrive
// from the controller and drive the peripheral logic.
type Opcode int

const (
	// OpReadPage is the conventional page read (sense into the page
	// buffer).
	OpReadPage Opcode = iota
	// OpIBC broadcasts a copy of the query embedding into the page
	// buffer (Table 2: "IBC Q_EMB").
	OpIBC
	// OpXOR performs the XOR between latches of a plane
	// (Table 2: "XOR ADR_P").
	OpXOR
	// OpGenDist computes the distance for one database embedding slot
	// (Table 2: "GEN_DIST EADR").
	OpGenDist
	// OpGenDistPage computes the distances of a whole sensed page in
	// one wave: a single latch-to-latch XOR followed by the fail-bit
	// counter over every requested slot, written into a caller-provided
	// distance buffer. It is the page-granular form of "GEN_DIST" —
	// the hardware computes all slot distances of a page inside the
	// plane in one command — and its stats/energy accounting is
	// bit-identical to an OpXOR followed by one OpGenDist per slot.
	OpGenDistPage
	// OpReadTTL transfers a TTL entry for an embedding to the SSD DRAM
	// (Table 2: "RD_TTL EADR").
	OpReadTTL
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpReadPage:
		return "READ_PAGE"
	case OpIBC:
		return "IBC"
	case OpXOR:
		return "XOR"
	case OpGenDist:
		return "GEN_DIST"
	case OpGenDistPage:
		return "GEN_DIST_PAGE"
	case OpReadTTL:
		return "RD_TTL"
	default:
		return "UNKNOWN"
	}
}

// Command is one command issued to a die's control logic.
type Command struct {
	Op    Opcode
	Addr  Address  // OpReadPage
	Plane int      // OpXOR, OpGenDist, OpGenDistPage, OpReadTTL: global plane index
	Mini  MiniPage // OpGenDist, OpReadTTL; for OpGenDistPage, Mini.Slot is the first slot
	// Query and SlotBytes apply to OpIBC.
	Query     []byte
	SlotBytes int
	// EntryBytes applies to OpReadTTL: the size of the transferred TTL
	// entry.
	EntryBytes int
	// Slots and Dists apply to OpGenDistPage: the number of slots to
	// compute starting at Mini.Slot, and the caller-owned buffer the
	// per-slot distances are written into (Dists[0:Slots]). The buffer
	// is reused across commands — the die writes into it in place, so
	// the controller never allocates on the scan path.
	Slots int
	Dists []int
	// Bound applies to OpGenDistPage: the controller's current top-k
	// pruning threshold (0 = none). Distances are computed regardless;
	// slots strictly above the bound are counted as pruned, and the
	// controller skips their TTL transfer.
	Bound int
}

// DieFSM validates and executes Table 2 commands against a device.
// It enforces the protocol ordering the die control logic requires:
// GEN_DIST is only legal after an XOR on the same plane, and XOR is
// only legal after both an IBC and a page read have populated the
// latches.
type DieFSM struct {
	dev *Device
	// per-plane protocol state
	haveIBC  []bool
	haveRead []bool
	haveXOR  []bool
}

// NewDieFSM wraps dev with protocol checking.
func NewDieFSM(dev *Device) *DieFSM {
	n := dev.Geo.Planes()
	return &DieFSM{
		dev:      dev,
		haveIBC:  make([]bool, n),
		haveRead: make([]bool, n),
		haveXOR:  make([]bool, n),
	}
}

// Execute runs one command. For OpGenDist it returns the computed
// distance; other commands return 0.
func (f *DieFSM) Execute(cmd Command) (int, error) {
	switch cmd.Op {
	case OpReadPage:
		if err := f.dev.ReadPage(cmd.Addr); err != nil {
			return 0, err
		}
		p := cmd.Addr.PlaneIndex(f.dev.Geo)
		f.haveRead[p] = true
		f.haveXOR[p] = false
		return 0, nil
	case OpIBC:
		if cmd.Plane < 0 || cmd.Plane >= f.dev.Geo.Planes() {
			return 0, fmt.Errorf("flash: IBC invalid plane %d", cmd.Plane)
		}
		if err := f.dev.LoadCache(cmd.Plane, cmd.Query, cmd.SlotBytes); err != nil {
			return 0, err
		}
		f.haveIBC[cmd.Plane] = true
		f.haveXOR[cmd.Plane] = false
		return 0, nil
	case OpXOR:
		if !f.haveIBC[cmd.Plane] {
			return 0, fmt.Errorf("flash: XOR on plane %d before IBC", cmd.Plane)
		}
		if !f.haveRead[cmd.Plane] {
			return 0, fmt.Errorf("flash: XOR on plane %d before page read", cmd.Plane)
		}
		if err := f.dev.XORLatches(cmd.Plane); err != nil {
			return 0, err
		}
		f.haveXOR[cmd.Plane] = true
		return 0, nil
	case OpGenDist:
		if !f.haveXOR[cmd.Plane] {
			return 0, fmt.Errorf("flash: GEN_DIST on plane %d before XOR", cmd.Plane)
		}
		return f.dev.CountSlotBits(cmd.Plane, cmd.SlotBytes, cmd.Mini.Slot)
	case OpGenDistPage:
		// The page-granular command fuses the XOR with the per-slot
		// fail-bit counts, so it needs the same preconditions as XOR
		// and leaves the plane in the post-XOR state.
		if !f.haveIBC[cmd.Plane] {
			return 0, fmt.Errorf("flash: GEN_DIST_PAGE on plane %d before IBC", cmd.Plane)
		}
		if !f.haveRead[cmd.Plane] {
			return 0, fmt.Errorf("flash: GEN_DIST_PAGE on plane %d before page read", cmd.Plane)
		}
		if err := f.dev.GenDistPage(cmd.Plane, cmd.SlotBytes, cmd.Mini.Slot, cmd.Slots, cmd.Dists, cmd.Bound); err != nil {
			return 0, err
		}
		f.haveXOR[cmd.Plane] = true
		return cmd.Slots, nil
	case OpReadTTL:
		if cmd.EntryBytes <= 0 {
			return 0, fmt.Errorf("flash: RD_TTL with non-positive entry size")
		}
		f.dev.TransferOut(cmd.Plane, cmd.EntryBytes)
		return 0, nil
	default:
		return 0, fmt.Errorf("flash: unknown opcode %d", cmd.Op)
	}
}
