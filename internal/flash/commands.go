package flash

import "fmt"

// Opcode enumerates the NAND flash command-set extensions of Table 2,
// plus the conventional read/program commands they extend. The die
// control logic is a finite-state machine (Sec 4.4.2): commands arrive
// from the controller and drive the peripheral logic.
type Opcode int

const (
	// OpReadPage is the conventional page read (sense into the page
	// buffer).
	OpReadPage Opcode = iota
	// OpIBC broadcasts a copy of the query embedding into the page
	// buffer (Table 2: "IBC Q_EMB").
	OpIBC
	// OpXOR performs the XOR between latches of a plane
	// (Table 2: "XOR ADR_P").
	OpXOR
	// OpGenDist computes the distance for one database embedding slot
	// (Table 2: "GEN_DIST EADR").
	OpGenDist
	// OpReadTTL transfers a TTL entry for an embedding to the SSD DRAM
	// (Table 2: "RD_TTL EADR").
	OpReadTTL
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpReadPage:
		return "READ_PAGE"
	case OpIBC:
		return "IBC"
	case OpXOR:
		return "XOR"
	case OpGenDist:
		return "GEN_DIST"
	case OpReadTTL:
		return "RD_TTL"
	default:
		return "UNKNOWN"
	}
}

// Command is one command issued to a die's control logic.
type Command struct {
	Op    Opcode
	Addr  Address  // OpReadPage
	Plane int      // OpXOR, OpGenDist, OpReadTTL: global plane index
	Mini  MiniPage // OpGenDist, OpReadTTL
	// Query and SlotBytes apply to OpIBC.
	Query     []byte
	SlotBytes int
	// EntryBytes applies to OpReadTTL: the size of the transferred TTL
	// entry.
	EntryBytes int
}

// DieFSM validates and executes Table 2 commands against a device.
// It enforces the protocol ordering the die control logic requires:
// GEN_DIST is only legal after an XOR on the same plane, and XOR is
// only legal after both an IBC and a page read have populated the
// latches.
type DieFSM struct {
	dev *Device
	// per-plane protocol state
	haveIBC  []bool
	haveRead []bool
	haveXOR  []bool
}

// NewDieFSM wraps dev with protocol checking.
func NewDieFSM(dev *Device) *DieFSM {
	n := dev.Geo.Planes()
	return &DieFSM{
		dev:      dev,
		haveIBC:  make([]bool, n),
		haveRead: make([]bool, n),
		haveXOR:  make([]bool, n),
	}
}

// Execute runs one command. For OpGenDist it returns the computed
// distance; other commands return 0.
func (f *DieFSM) Execute(cmd Command) (int, error) {
	switch cmd.Op {
	case OpReadPage:
		if err := f.dev.ReadPage(cmd.Addr); err != nil {
			return 0, err
		}
		p := cmd.Addr.PlaneIndex(f.dev.Geo)
		f.haveRead[p] = true
		f.haveXOR[p] = false
		return 0, nil
	case OpIBC:
		if cmd.Plane < 0 || cmd.Plane >= f.dev.Geo.Planes() {
			return 0, fmt.Errorf("flash: IBC invalid plane %d", cmd.Plane)
		}
		if err := f.dev.LoadCache(cmd.Plane, cmd.Query, cmd.SlotBytes); err != nil {
			return 0, err
		}
		f.haveIBC[cmd.Plane] = true
		f.haveXOR[cmd.Plane] = false
		return 0, nil
	case OpXOR:
		if !f.haveIBC[cmd.Plane] {
			return 0, fmt.Errorf("flash: XOR on plane %d before IBC", cmd.Plane)
		}
		if !f.haveRead[cmd.Plane] {
			return 0, fmt.Errorf("flash: XOR on plane %d before page read", cmd.Plane)
		}
		if err := f.dev.XORLatches(cmd.Plane); err != nil {
			return 0, err
		}
		f.haveXOR[cmd.Plane] = true
		return 0, nil
	case OpGenDist:
		if !f.haveXOR[cmd.Plane] {
			return 0, fmt.Errorf("flash: GEN_DIST on plane %d before XOR", cmd.Plane)
		}
		return f.dev.CountSlotBits(cmd.Plane, cmd.SlotBytes, cmd.Mini.Slot)
	case OpReadTTL:
		if cmd.EntryBytes <= 0 {
			return 0, fmt.Errorf("flash: RD_TTL with non-positive entry size")
		}
		f.dev.TransferOut(cmd.Plane, cmd.EntryBytes)
		return 0, nil
	default:
		return 0, fmt.Errorf("flash: unknown opcode %d", cmd.Op)
	}
}
