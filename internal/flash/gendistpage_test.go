package flash

import (
	"bytes"
	"testing"

	"reis/internal/xrand"
)

// pageEquivSetup builds a device with deterministic slot data in page
// (block 0, page 0) of plane 0 and runs IBC + page read through a FSM,
// returning both.
func pageEquivSetup(t *testing.T, slotBytes int, pattern []byte) (*Device, *DieFSM, Address) {
	t.Helper()
	d := testDevice(t)
	a := Address{Block: 0, Page: 0}
	rng := xrand.New(0xabcdef)
	data := make([]byte, d.Geo.PageBytes)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	oob := make([]byte, d.Geo.OOBBytes)
	for i := range oob {
		oob[i] = byte(rng.Intn(256))
	}
	if err := d.SetBlockMode(a, ModeSLCESP); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(a, data, oob); err != nil {
		t.Fatal(err)
	}
	f := NewDieFSM(d)
	plane := a.PlaneIndex(d.Geo)
	if _, err := f.Execute(Command{Op: OpIBC, Plane: plane, Query: pattern, SlotBytes: slotBytes}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Execute(Command{Op: OpReadPage, Addr: a}); err != nil {
		t.Fatal(err)
	}
	return d, f, a
}

// statsSnapshot captures every scan-relevant counter.
type statsSnapshot struct {
	pageReads, latchXORs, bitCounts, ibcLoads, passFail int64
	bytesIn, bytesOut                                   int64
}

func snapshot(d *Device) statsSnapshot {
	return statsSnapshot{
		pageReads: d.Stats.PageReads.Load(),
		latchXORs: d.Stats.LatchXORs.Load(),
		bitCounts: d.Stats.BitCounts.Load(),
		ibcLoads:  d.Stats.IBCLoads.Load(),
		passFail:  d.Stats.PassFailChecks.Load(),
		bytesIn:   d.Stats.BytesIn[0].Load(),
		bytesOut:  d.Stats.TotalBytesOut(),
	}
}

// energyOf prices a snapshot with the per-event energy constants — the
// same accounting identity the reis timing model relies on, so equal
// counters mean equal modeled energy.
func energyOf(s statsSnapshot, p Params) float64 {
	return float64(s.pageReads)*p.EnergyReadPage +
		float64(s.latchXORs)*p.EnergyLatchXOR +
		float64(s.bitCounts)*p.EnergyBitCount +
		float64(s.bytesIn+s.bytesOut)*p.EnergyXferPerByte
}

// TestGenDistPageMatchesPerSlot pins the page-granular command against
// the per-slot sequence it replaces: identical distances, identical
// data-latch contents, and identical stats/energy accounting to an
// OpXOR followed by one OpGenDist per slot.
func TestGenDistPageMatchesPerSlot(t *testing.T) {
	const slotBytes = 64
	pattern := bytes.Repeat([]byte{0xA5, 0x3C}, slotBytes/2)

	dSlot, fSlot, a := pageEquivSetup(t, slotBytes, pattern)
	dPage, fPage, _ := pageEquivSetup(t, slotBytes, pattern)
	plane := a.PlaneIndex(dSlot.Geo)
	slots := dSlot.Geo.PageBytes / slotBytes
	firstSlot, nSlots := 2, slots-5 // partial range, like a boundary page

	// Per-slot reference path: XOR then N GEN_DISTs.
	if _, err := fSlot.Execute(Command{Op: OpXOR, Plane: plane}); err != nil {
		t.Fatal(err)
	}
	want := make([]int, nSlots)
	for s := 0; s < nSlots; s++ {
		d, err := fSlot.Execute(Command{
			Op: OpGenDist, Plane: plane, SlotBytes: slotBytes,
			Mini: MiniPage{Page: a, Slot: firstSlot + s},
		})
		if err != nil {
			t.Fatal(err)
		}
		want[s] = d
	}

	// Page-granular path: one command.
	got := make([]int, nSlots)
	n, err := fPage.Execute(Command{
		Op: OpGenDistPage, Plane: plane, SlotBytes: slotBytes,
		Mini: MiniPage{Page: a, Slot: firstSlot}, Slots: nSlots, Dists: got,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != nSlots {
		t.Fatalf("GEN_DIST_PAGE computed %d slots, want %d", n, nSlots)
	}
	for s := range want {
		if got[s] != want[s] {
			t.Fatalf("slot %d: page dist %d != per-slot dist %d", firstSlot+s, got[s], want[s])
		}
	}

	// The data latch must hold exactly what the XOR path produced
	// (full-page XOR, OOB copied through).
	if !bytes.Equal(dPage.Plane(plane).Data, dSlot.Plane(plane).Data) {
		t.Fatal("data latch contents diverge between page and per-slot paths")
	}

	// Stats accounting must be bit-identical, and therefore the
	// per-event energy too.
	sSlot, sPage := snapshot(dSlot), snapshot(dPage)
	if sSlot != sPage {
		t.Fatalf("stats diverge:\nper-slot %+v\npage     %+v", sSlot, sPage)
	}
	if eS, eP := energyOf(sSlot, dSlot.Params), energyOf(sPage, dPage.Params); eS != eP {
		t.Fatalf("energy diverges: per-slot %g J, page %g J", eS, eP)
	}

	// The page command leaves the plane in the post-XOR state: a
	// follow-up per-slot GEN_DIST must be legal and agree.
	d1, err := fPage.Execute(Command{
		Op: OpGenDist, Plane: plane, SlotBytes: slotBytes,
		Mini: MiniPage{Page: a, Slot: firstSlot},
	})
	if err != nil {
		t.Fatalf("GEN_DIST after GEN_DIST_PAGE: %v", err)
	}
	if d1 != want[0] {
		t.Fatalf("GEN_DIST after page command returned %d, want %d", d1, want[0])
	}
}

// TestGenDistPageProtocol checks the FSM preconditions: the page
// command needs both an IBC and a page read, and rejects bad ranges.
func TestGenDistPageProtocol(t *testing.T) {
	d := testDevice(t)
	f := NewDieFSM(d)
	a := Address{Block: 0, Page: 0}
	plane := a.PlaneIndex(d.Geo)
	dists := make([]int, 8)

	if _, err := f.Execute(Command{Op: OpGenDistPage, Plane: plane, SlotBytes: 64, Slots: 1, Dists: dists}); err == nil {
		t.Fatal("GEN_DIST_PAGE before IBC accepted")
	}
	if _, err := f.Execute(Command{Op: OpIBC, Plane: plane, Query: []byte{1}, SlotBytes: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Execute(Command{Op: OpGenDistPage, Plane: plane, SlotBytes: 64, Slots: 1, Dists: dists}); err == nil {
		t.Fatal("GEN_DIST_PAGE before page read accepted")
	}
	if _, err := f.Execute(Command{Op: OpReadPage, Addr: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Execute(Command{Op: OpGenDistPage, Plane: plane, SlotBytes: 64, Slots: d.Geo.PageBytes, Dists: dists}); err == nil {
		t.Fatal("out-of-page slot range accepted")
	}
	if _, err := f.Execute(Command{Op: OpGenDistPage, Plane: plane, SlotBytes: 64, Slots: 9, Dists: dists}); err == nil {
		t.Fatal("short distance buffer accepted")
	}
	if _, err := f.Execute(Command{Op: OpGenDistPage, Plane: plane, SlotBytes: 64, Slots: 8, Dists: dists}); err != nil {
		t.Fatalf("valid GEN_DIST_PAGE rejected: %v", err)
	}
}
