package flash

import "time"

// CellMode selects how a block's cells are programmed. REIS soft-
// partitions the array into an SLC-ESP region for binary embeddings
// (error-free in-plane computation without ECC) and a TLC region for
// documents and INT8 embeddings (Sec 4.1.2).
type CellMode int

const (
	// ModeSLCESP is single-level-cell programming with Enhanced
	// SLC-mode Programming: maximum voltage margin, zero raw bit error
	// rate even at 1-year retention / 10K P-E cycles (Flash-Cosmos).
	ModeSLCESP CellMode = iota
	// ModeSLC is conventional SLC programming.
	ModeSLC
	// ModeTLC is triple-level-cell programming: 3x density, higher
	// latency, needs ECC.
	ModeTLC
)

// String implements fmt.Stringer.
func (m CellMode) String() string {
	switch m {
	case ModeSLCESP:
		return "SLC-ESP"
	case ModeSLC:
		return "SLC"
	case ModeTLC:
		return "TLC"
	default:
		return "unknown"
	}
}

// Density returns the logical pages stored per physical wordline
// relative to SLC.
func (m CellMode) Density() int {
	if m == ModeTLC {
		return 3
	}
	return 1
}

// Params collects the per-event latency and energy constants of the
// device model. Values follow the paper's sources: tR for ESP-SLC is
// the 22.5 us the paper takes from Flash-Cosmos (Table 3); TLC read
// and program latencies follow contemporary 3D-NAND datasheets
// (ISSCC'21/'22 512Gb-1Tb parts); energy numbers follow the
// Flash-Cosmos chip characterization scaled to a 16 KiB page.
type Params struct {
	// Read latencies (array sensing into the page buffer).
	ReadSLCESP time.Duration
	ReadSLC    time.Duration
	ReadTLC    time.Duration
	// Program latencies.
	ProgramSLC time.Duration
	ProgramTLC time.Duration
	// EraseBlock is the block erase latency.
	EraseBlock time.Duration

	// LatchXOR is the time for an in-plane XOR between two latches
	// over a full page (Flash-Cosmos reports single-digit us for
	// inter-latch bulk bitwise operations).
	LatchXOR time.Duration
	// BitCountPage is the time for the peripheral fail-bit counter to
	// count ones over a full page in the data latch.
	BitCountPage time.Duration
	// PassFailCheck is the comparator time per page.
	PassFailCheck time.Duration

	// DieInputBandwidth is the rate at which the die I/O can load data
	// into a page buffer during Input Broadcasting (bytes/s); equal to
	// the channel rate on the modeled parts.
	DieInputBandwidth float64

	// RawBER is the raw bit error rate per cell mode when read without
	// ECC. ModeSLCESP must be 0 per the paper's premise.
	RawBERSLCESP float64
	RawBERSLC    float64
	RawBERTLC    float64

	// Energy per event, in joules.
	EnergyReadPage    float64 // array sense, per page
	EnergyProgramPage float64
	EnergyLatchXOR    float64 // per page
	EnergyBitCount    float64 // per page
	EnergyXferPerByte float64 // channel/die I/O transfer
	// IdlePowerPerDie is the background power of one die in watts.
	IdlePowerPerDie float64
}

// DefaultParams returns the parameter set used across the evaluation.
func DefaultParams() Params {
	return Params{
		ReadSLCESP: 22500 * time.Nanosecond, // Table 3: 22.5us tR (ESP-SLC)
		ReadSLC:    25 * time.Microsecond,
		ReadTLC:    85 * time.Microsecond,
		ProgramSLC: 200 * time.Microsecond,
		ProgramTLC: 700 * time.Microsecond,
		EraseBlock: 3500 * time.Microsecond,

		LatchXOR:      2 * time.Microsecond,
		BitCountPage:  3 * time.Microsecond,
		PassFailCheck: 500 * time.Nanosecond,

		DieInputBandwidth: 1.2e9,

		RawBERSLCESP: 0,
		RawBERSLC:    1e-9,
		RawBERTLC:    5e-4,

		EnergyReadPage:    18e-6, // 18 uJ per 16KiB page sense
		EnergyProgramPage: 60e-6,
		EnergyLatchXOR:    0.8e-6,
		EnergyBitCount:    1.0e-6,
		EnergyXferPerByte: 6e-12, // ~6 pJ/byte die I/O + channel
		IdlePowerPerDie:   5e-3,
	}
}

// ReadLatency returns the array read time for the given mode.
func (p Params) ReadLatency(m CellMode) time.Duration {
	switch m {
	case ModeSLCESP:
		return p.ReadSLCESP
	case ModeSLC:
		return p.ReadSLC
	default:
		return p.ReadTLC
	}
}

// ProgramLatency returns the page program time for the given mode.
func (p Params) ProgramLatency(m CellMode) time.Duration {
	if m == ModeTLC {
		return p.ProgramTLC
	}
	return p.ProgramSLC
}

// RawBER returns the no-ECC bit error rate for the given mode.
func (p Params) RawBER(m CellMode) float64 {
	switch m {
	case ModeSLCESP:
		return p.RawBERSLCESP
	case ModeSLC:
		return p.RawBERSLC
	default:
		return p.RawBERTLC
	}
}
