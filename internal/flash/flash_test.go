package flash

import (
	"bytes"
	"math/bits"
	"testing"
	"testing/quick"

	"reis/internal/vecmath"
	"reis/internal/xrand"
)

func testGeo() Geometry {
	return Geometry{
		Channels:         2,
		DiesPerChannel:   2,
		PlanesPerDie:     2,
		BlocksPerPlane:   4,
		PagesPerBlock:    8,
		PageBytes:        2048,
		OOBBytes:         128,
		ChannelBandwidth: 1.2e9,
	}
}

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(testGeo(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	g := testGeo()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestGeometryDerived(t *testing.T) {
	g := testGeo()
	if g.Planes() != 8 {
		t.Fatalf("Planes = %d", g.Planes())
	}
	if g.Dies() != 4 {
		t.Fatalf("Dies = %d", g.Dies())
	}
	if g.PagesPerPlane() != 32 {
		t.Fatalf("PagesPerPlane = %d", g.PagesPerPlane())
	}
	if g.TotalPages() != 256 {
		t.Fatalf("TotalPages = %d", g.TotalPages())
	}
	if g.Capacity() != 256*2048 {
		t.Fatalf("Capacity = %d", g.Capacity())
	}
	if g.InternalBandwidth() != 2.4e9 {
		t.Fatalf("InternalBandwidth = %v", g.InternalBandwidth())
	}
}

func TestAddressLinearRoundTrip(t *testing.T) {
	g := testGeo()
	f := func(raw uint32) bool {
		idx := int(raw) % g.TotalPages()
		a := AddressFromLinear(g, idx)
		return a.Valid(g) && a.LinearIndex(g) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressPlaneMajorContiguity(t *testing.T) {
	// Consecutive linear indices within a plane must be consecutive
	// pages of that plane — what coarse-grained access relies on.
	g := testGeo()
	a := AddressFromLinear(g, 0)
	b := AddressFromLinear(g, 1)
	if a.PlaneIndex(g) != b.PlaneIndex(g) {
		t.Fatal("adjacent linear indices crossed planes")
	}
	if b.PageIndex(g) != a.PageIndex(g)+1 {
		t.Fatal("adjacent linear indices not adjacent pages")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := testDevice(t)
	a := Address{Channel: 1, Die: 0, Plane: 1, Block: 2, Page: 3}
	data := bytes.Repeat([]byte{0xAB}, 100)
	oob := []byte{1, 2, 3, 4}
	if err := d.Program(a, data, oob); err != nil {
		t.Fatal(err)
	}
	gotData, gotOOB, err := d.ReadPageInto(a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotData[:100], data) {
		t.Fatal("data mismatch")
	}
	if gotData[100] != 0xFF {
		t.Fatal("unwritten data bytes not erased-state")
	}
	if !bytes.Equal(gotOOB[:4], oob) {
		t.Fatal("OOB mismatch")
	}
}

func TestProgramRejectsOversize(t *testing.T) {
	d := testDevice(t)
	a := Address{}
	if err := d.Program(a, make([]byte, 4096), nil); err == nil {
		t.Fatal("oversized data accepted")
	}
	if err := d.Program(a, nil, make([]byte, 4096)); err == nil {
		t.Fatal("oversized OOB accepted")
	}
	if err := d.Program(Address{Channel: 99}, nil, nil); err == nil {
		t.Fatal("invalid address accepted")
	}
}

func TestEraseBlock(t *testing.T) {
	d := testDevice(t)
	a := Address{Block: 1, Page: 0}
	if err := d.Program(a, []byte{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(a); err != nil {
		t.Fatal(err)
	}
	data, _, err := d.ReadPageInto(a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0xFF {
		t.Fatal("page not erased")
	}
	if d.Stats.BlockErases.Load() != 1 {
		t.Fatalf("BlockErases = %d", d.Stats.BlockErases.Load())
	}
}

func TestEraseWearAccounting(t *testing.T) {
	d := testDevice(t)
	a := Address{Block: 1}
	b := Address{Block: 2}
	for i := 0; i < 3; i++ {
		if err := d.EraseBlock(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.EraseBlock(b); err != nil {
		t.Fatal(err)
	}
	if got := d.EraseCount(a); got != 3 {
		t.Fatalf("EraseCount(a) = %d, want 3", got)
	}
	if got := d.EraseCount(b); got != 1 {
		t.Fatalf("EraseCount(b) = %d, want 1", got)
	}
	if got := d.EraseCount(Address{Block: 3}); got != 0 {
		t.Fatalf("EraseCount(untouched) = %d, want 0", got)
	}
	if got := d.MaxEraseCount(); got != 3 {
		t.Fatalf("MaxEraseCount = %d, want 3", got)
	}
	// Wear is a lifetime ledger: ResetStats clears event counters but
	// not per-block cycle counts.
	d.ResetStats()
	if got := d.MaxEraseCount(); got != 3 {
		t.Fatalf("MaxEraseCount after ResetStats = %d, want 3", got)
	}
}

func TestCellModePartitioning(t *testing.T) {
	d := testDevice(t)
	a := Address{Block: 0}
	if d.BlockMode(a) != ModeTLC {
		t.Fatal("default mode not TLC")
	}
	if err := d.SetBlockMode(a, ModeSLCESP); err != nil {
		t.Fatal(err)
	}
	if d.BlockMode(a) != ModeSLCESP {
		t.Fatal("mode not updated")
	}
	// Other blocks unaffected.
	if d.BlockMode(Address{Block: 1}) != ModeTLC {
		t.Fatal("other block mode changed")
	}
}

func TestSLCESPReadsAreErrorFree(t *testing.T) {
	d := testDevice(t)
	a := Address{Block: 0, Page: 0}
	if err := d.SetBlockMode(a, ModeSLCESP); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 2048)
	r := xrand.New(1)
	for i := range payload {
		payload[i] = byte(r.Uint64())
	}
	if err := d.Program(a, payload, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		data, _, err := d.ReadPageInto(a, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, payload) {
			t.Fatalf("SLC-ESP read %d corrupted", i)
		}
	}
	if d.Stats.BitErrorsInjected.Load() != 0 {
		t.Fatalf("BitErrorsInjected = %d on SLC-ESP", d.Stats.BitErrorsInjected.Load())
	}
}

func TestTLCLatchPathSeesRawErrors(t *testing.T) {
	// The in-latch computation path (ReadPage + SlotData) has no ECC:
	// raw TLC bit errors must be visible there. This is the failure
	// mode that forces REIS onto the SLC-ESP partition.
	d := testDevice(t)
	a := Address{Block: 0, Page: 0} // default TLC, BER 5e-4
	payload := make([]byte, 2048)
	if err := d.Program(a, payload, nil); err != nil {
		t.Fatal(err)
	}
	flips := 0
	plane := a.PlaneIndex(d.Geo)
	for i := 0; i < 50; i++ {
		if err := d.ReadPage(a); err != nil {
			t.Fatal(err)
		}
		slot, err := d.SlotData(plane, 2048, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range slot {
			flips += bits.OnesCount8(b)
		}
	}
	// Expected flips: 50 reads * 2048*8 bits * 5e-4 = ~410.
	if flips == 0 {
		t.Fatal("TLC latch-path reads showed no bit errors")
	}
	if d.Stats.BitErrorsInjected.Load() == 0 {
		t.Fatal("BitErrorsInjected not counted")
	}
}

func TestTLCControllerPathIsECCCorrected(t *testing.T) {
	// The conventional read path must return exactly the programmed
	// bytes (controller ECC), while counting the corrections.
	d := testDevice(t)
	a := Address{Block: 0, Page: 0}
	payload := bytes.Repeat([]byte{0x5A}, 2048)
	if err := d.Program(a, payload, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		data, _, err := d.ReadPageInto(a, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, payload) {
			t.Fatalf("read %d: controller path returned corrupted data", i)
		}
	}
	if d.Stats.ECCCorrections.Load() == 0 {
		t.Fatal("ECCCorrections not counted on TLC reads")
	}
}

func TestECCBypassSuppressesErrors(t *testing.T) {
	d := testDevice(t)
	d.ECCBypass = true
	a := Address{Block: 0, Page: 0}
	payload := make([]byte, 512)
	if err := d.Program(a, payload, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		data, _, err := d.ReadPageInto(a, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data[:512] {
			if b != 0 {
				t.Fatal("bypass still injected errors")
			}
		}
	}
}

func TestIBCFillsAllSlots(t *testing.T) {
	d := testDevice(t)
	pattern := []byte{0xDE, 0xAD}
	if err := d.LoadCache(3, pattern, 4); err != nil {
		t.Fatal(err)
	}
	pl := d.Plane(3)
	for off := 0; off+4 <= d.Geo.PageBytes; off += 4 {
		if pl.Cache[off] != 0xDE || pl.Cache[off+1] != 0xAD {
			t.Fatalf("slot at %d not filled", off)
		}
		if pl.Cache[off+2] != 0 || pl.Cache[off+3] != 0 {
			t.Fatalf("slot padding at %d not zero", off)
		}
	}
	if d.Stats.IBCLoads.Load() != 1 {
		t.Fatalf("IBCLoads = %d", d.Stats.IBCLoads.Load())
	}
}

func TestXORComputesHammingDistance(t *testing.T) {
	// End-to-end latch flow: program two binary embeddings into a
	// page, IBC a query, XOR, fail-bit count each slot — result must
	// equal vecmath.Hamming.
	d := testDevice(t)
	r := xrand.New(2)
	dim := 256 // 32 bytes per embedding
	slotBytes := 32
	q := make([]float32, dim)
	e0 := make([]float32, dim)
	e1 := make([]float32, dim)
	for i := 0; i < dim; i++ {
		q[i] = float32(r.NormFloat64())
		e0[i] = float32(r.NormFloat64())
		e1[i] = float32(r.NormFloat64())
	}
	qc := vecmath.BinaryQuantize(q, nil)
	c0 := vecmath.BinaryQuantize(e0, nil)
	c1 := vecmath.BinaryQuantize(e1, nil)

	page := make([]byte, 0, 64)
	page = append(page, vecmath.PackBinaryBytes(c0, nil)...)
	page = append(page, vecmath.PackBinaryBytes(c1, nil)...)
	a := Address{Block: 0, Page: 0}
	if err := d.SetBlockMode(a, ModeSLCESP); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(a, page, nil); err != nil {
		t.Fatal(err)
	}

	plane := a.PlaneIndex(d.Geo)
	if err := d.LoadCache(plane, vecmath.PackBinaryBytes(qc, nil), slotBytes); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(a); err != nil {
		t.Fatal(err)
	}
	if err := d.XORLatches(plane); err != nil {
		t.Fatal(err)
	}
	d0, err := d.CountSlotBits(plane, slotBytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := d.CountSlotBits(plane, slotBytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d0 != vecmath.Hamming(qc, c0) {
		t.Fatalf("slot 0 distance %d != %d", d0, vecmath.Hamming(qc, c0))
	}
	if d1 != vecmath.Hamming(qc, c1) {
		t.Fatalf("slot 1 distance %d != %d", d1, vecmath.Hamming(qc, c1))
	}
}

func TestXORPreservesOOB(t *testing.T) {
	d := testDevice(t)
	a := Address{Block: 0, Page: 0}
	if err := d.Program(a, []byte{0xFF}, []byte{0x42, 0x43}); err != nil {
		t.Fatal(err)
	}
	plane := a.PlaneIndex(d.Geo)
	if err := d.LoadCache(plane, []byte{0xFF}, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(a); err != nil {
		t.Fatal(err)
	}
	if err := d.XORLatches(plane); err != nil {
		t.Fatal(err)
	}
	oob, err := d.ReadOOBSlot(plane, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if oob[0] != 0x42 || oob[1] != 0x43 {
		t.Fatalf("OOB corrupted by XOR: %v", oob)
	}
}

func TestPassFail(t *testing.T) {
	d := testDevice(t)
	if !d.PassFail(5, 5) {
		t.Fatal("5 <= 5 failed")
	}
	if d.PassFail(6, 5) {
		t.Fatal("6 <= 5 passed")
	}
	if d.Stats.PassFailChecks.Load() != 2 {
		t.Fatalf("PassFailChecks = %d", d.Stats.PassFailChecks.Load())
	}
}

func TestStatsCounting(t *testing.T) {
	d := testDevice(t)
	a := Address{Block: 0, Page: 0}
	if err := d.SetBlockMode(a, ModeSLCESP); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(a, []byte{1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReadPageInto(a, nil, nil); err != nil {
		t.Fatal(err)
	}
	if d.Stats.PageReads.Load() != 1 || d.Stats.PageReadsByMode[ModeSLCESP].Load() != 1 {
		t.Fatalf("read counters wrong: reads=%d byMode=%d",
			d.Stats.PageReads.Load(), d.Stats.PageReadsByMode[ModeSLCESP].Load())
	}
	if d.Stats.BytesOut[0].Load() == 0 {
		t.Fatal("BytesOut not counted")
	}
	d.TransferOut(0, 100)
	if d.Stats.BytesOut[0].Load() < 100 {
		t.Fatal("TransferOut not counted")
	}
	d.ResetStats()
	if d.Stats.PageReads.Load() != 0 || d.Stats.TotalBytesOut() != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestParamsLatencies(t *testing.T) {
	p := DefaultParams()
	if p.ReadLatency(ModeSLCESP) >= p.ReadLatency(ModeTLC) {
		t.Fatal("SLC-ESP read not faster than TLC")
	}
	if p.ReadLatency(ModeSLCESP).Microseconds() != 22 { // 22.5us truncated
		t.Fatalf("tR(ESP) = %v, want 22.5us", p.ReadLatency(ModeSLCESP))
	}
	if p.ProgramLatency(ModeTLC) <= p.ProgramLatency(ModeSLC) {
		t.Fatal("TLC program not slower")
	}
	if p.RawBER(ModeSLCESP) != 0 {
		t.Fatal("SLC-ESP BER must be zero")
	}
	if p.RawBER(ModeTLC) <= p.RawBER(ModeSLC) {
		t.Fatal("TLC BER not higher than SLC")
	}
}

func TestCellModeDensity(t *testing.T) {
	if ModeTLC.Density() != 3 || ModeSLC.Density() != 1 || ModeSLCESP.Density() != 1 {
		t.Fatal("density wrong")
	}
}

func TestCommandSetProtocolOrdering(t *testing.T) {
	d := testDevice(t)
	fsm := NewDieFSM(d)
	a := Address{Block: 0, Page: 0}
	if err := d.Program(a, []byte{1, 2, 3, 4}, nil); err != nil {
		t.Fatal(err)
	}
	plane := a.PlaneIndex(d.Geo)

	// XOR before IBC must fail.
	if _, err := fsm.Execute(Command{Op: OpXOR, Plane: plane}); err == nil {
		t.Fatal("XOR before IBC accepted")
	}
	// GEN_DIST before XOR must fail.
	if _, err := fsm.Execute(Command{Op: OpGenDist, Plane: plane, SlotBytes: 4}); err == nil {
		t.Fatal("GEN_DIST before XOR accepted")
	}
	// Proper sequence.
	if _, err := fsm.Execute(Command{Op: OpIBC, Plane: plane, Query: []byte{1, 2, 3, 4}, SlotBytes: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := fsm.Execute(Command{Op: OpReadPage, Addr: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := fsm.Execute(Command{Op: OpXOR, Plane: plane}); err != nil {
		t.Fatal(err)
	}
	dist, err := fsm.Execute(Command{Op: OpGenDist, Plane: plane, SlotBytes: 4, Mini: MiniPage{Slot: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if dist != 0 { // page data equals query -> zero distance
		t.Fatalf("self distance = %d", dist)
	}
	if _, err := fsm.Execute(Command{Op: OpReadTTL, Plane: plane, EntryBytes: 16}); err != nil {
		t.Fatal(err)
	}
}

func TestCommandSetReadInvalidatesXOR(t *testing.T) {
	d := testDevice(t)
	fsm := NewDieFSM(d)
	a := Address{Block: 0, Page: 0}
	if err := d.Program(a, []byte{0xF0, 0, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	plane := a.PlaneIndex(d.Geo)
	mustExec(t, fsm, Command{Op: OpIBC, Plane: plane, Query: []byte{0xF0}, SlotBytes: 4})
	mustExec(t, fsm, Command{Op: OpReadPage, Addr: a})
	mustExec(t, fsm, Command{Op: OpXOR, Plane: plane})
	// A new page read invalidates the XOR result.
	mustExec(t, fsm, Command{Op: OpReadPage, Addr: a})
	if _, err := fsm.Execute(Command{Op: OpGenDist, Plane: plane, SlotBytes: 4}); err == nil {
		t.Fatal("GEN_DIST after stale XOR accepted")
	}
}

func mustExec(t *testing.T, fsm *DieFSM, cmd Command) {
	t.Helper()
	if _, err := fsm.Execute(cmd); err != nil {
		t.Fatalf("%v: %v", cmd.Op, err)
	}
}

func TestCommandSetRejectsUnknown(t *testing.T) {
	d := testDevice(t)
	fsm := NewDieFSM(d)
	if _, err := fsm.Execute(Command{Op: Opcode(99)}); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	if _, err := fsm.Execute(Command{Op: OpReadTTL, Plane: 0, EntryBytes: 0}); err == nil {
		t.Fatal("RD_TTL with zero entry accepted")
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op, want := range map[Opcode]string{
		OpReadPage: "READ_PAGE", OpIBC: "IBC", OpXOR: "XOR",
		OpGenDist: "GEN_DIST", OpReadTTL: "RD_TTL",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %s", op, op.String())
		}
	}
}

func TestReadErasedPage(t *testing.T) {
	d := testDevice(t)
	data, oob, err := d.ReadPageInto(Address{Block: 3, Page: 7}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range data {
		if b != 0xFF {
			t.Fatal("erased page not all-ones")
		}
	}
	for _, b := range oob {
		if b != 0xFF {
			t.Fatal("erased OOB not all-ones")
		}
	}
}

func TestSlotDataReturnsEmbedding(t *testing.T) {
	d := testDevice(t)
	a := Address{Block: 0, Page: 0}
	page := append(bytes.Repeat([]byte{0x11}, 8), bytes.Repeat([]byte{0x22}, 8)...)
	if err := d.Program(a, page, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(a); err != nil {
		t.Fatal(err)
	}
	s1, err := d.SlotData(a.PlaneIndex(d.Geo), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1[0] != 0x22 {
		t.Fatalf("slot 1 = %x", s1[0])
	}
}
