package flash

import (
	"fmt"

	"reis/internal/xrand"
)

// Stats accumulates device event counts; the SSD and REIS layers turn
// these into latency and energy using Params.
type Stats struct {
	PageReads       int64
	PageReadsByMode [3]int64
	PagePrograms    int64
	BlockErases     int64
	LatchXORs       int64
	BitCounts       int64
	PassFailChecks  int64
	IBCLoads        int64
	// BytesOut counts bytes transferred from dies to the controller,
	// per channel.
	BytesOut []int64
	// BytesIn counts bytes transferred into dies (programs, IBC), per
	// channel.
	BytesIn []int64
	// BitErrorsInjected counts raw bit flips applied on non-ESP reads
	// without ECC.
	BitErrorsInjected int64
	// ECCCorrections counts raw flips fixed by the controller ECC on
	// the conventional read path.
	ECCCorrections int64
}

// TotalBytesOut sums the per-channel outbound byte counts.
func (s *Stats) TotalBytesOut() int64 {
	var t int64
	for _, b := range s.BytesOut {
		t += b
	}
	return t
}

// Device is a functional NAND flash array.
type Device struct {
	Geo    Geometry
	Params Params

	planes []*Plane
	// blockMode[planeIdx][block] is the cell mode each block was last
	// programmed in (soft partitioning).
	blockMode [][]CellMode

	// ECCBypass disables error injection entirely; REIS relies on
	// SLC-ESP having zero raw BER instead, so this stays false in the
	// evaluated configurations.
	ECCBypass bool

	Stats Stats
	rng   *xrand.RNG
}

// Plane models one flash plane: its pages (lazily allocated), OOB
// areas, and the three page-buffer latches.
type Plane struct {
	geo   Geometry
	pages map[int][]byte // page index within plane -> user data
	oobs  map[int][]byte // page index within plane -> OOB data

	// Sensing, Data and Cache latches (Sec 2.3 items 10-12). Sized
	// PageBytes+OOBBytes: a page read loads OOB alongside user data
	// (Sec 4.1.3).
	Sensing []byte
	Data    []byte
	Cache   []byte
}

// NewDevice allocates a device with the given geometry and parameters.
func NewDevice(geo Geometry, params Params) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		Geo:    geo,
		Params: params,
		planes: make([]*Plane, geo.Planes()),
		rng:    xrand.New(0xf1a5),
	}
	d.Stats.BytesOut = make([]int64, geo.Channels)
	d.Stats.BytesIn = make([]int64, geo.Channels)
	latchLen := geo.PageBytes + geo.OOBBytes
	for i := range d.planes {
		d.planes[i] = &Plane{
			geo:     geo,
			pages:   make(map[int][]byte),
			oobs:    make(map[int][]byte),
			Sensing: make([]byte, latchLen),
			Data:    make([]byte, latchLen),
			Cache:   make([]byte, latchLen),
		}
	}
	d.blockMode = make([][]CellMode, geo.Planes())
	for i := range d.blockMode {
		d.blockMode[i] = make([]CellMode, geo.BlocksPerPlane)
		for b := range d.blockMode[i] {
			d.blockMode[i][b] = ModeTLC
		}
	}
	return d, nil
}

// Plane returns the plane at the global index.
func (d *Device) Plane(idx int) *Plane {
	return d.planes[idx]
}

// SetBlockMode soft-partitions: marks a block's cell mode before
// programming (Sec 4.1.2 hybrid SSD design).
func (d *Device) SetBlockMode(a Address, m CellMode) error {
	if !a.Valid(d.Geo) {
		return fmt.Errorf("flash: SetBlockMode invalid address %v", a)
	}
	d.blockMode[a.PlaneIndex(d.Geo)][a.Block] = m
	return nil
}

// BlockMode reports the cell mode of the block containing a.
func (d *Device) BlockMode(a Address) CellMode {
	return d.blockMode[a.PlaneIndex(d.Geo)][a.Block]
}

// Program writes user data and OOB bytes to a page. data may be
// shorter than the page; the rest reads back as 0xFF (erased cells).
func (d *Device) Program(a Address, data, oob []byte) error {
	if !a.Valid(d.Geo) {
		return fmt.Errorf("flash: Program invalid address %v", a)
	}
	if len(data) > d.Geo.PageBytes {
		return fmt.Errorf("flash: Program data %d bytes exceeds page size %d", len(data), d.Geo.PageBytes)
	}
	if len(oob) > d.Geo.OOBBytes {
		return fmt.Errorf("flash: Program OOB %d bytes exceeds OOB size %d", len(oob), d.Geo.OOBBytes)
	}
	p := d.planes[a.PlaneIndex(d.Geo)]
	idx := a.PageIndex(d.Geo)
	page := make([]byte, d.Geo.PageBytes)
	for i := range page {
		page[i] = 0xFF
	}
	copy(page, data)
	p.pages[idx] = page
	ob := make([]byte, d.Geo.OOBBytes)
	for i := range ob {
		ob[i] = 0xFF
	}
	copy(ob, oob)
	p.oobs[idx] = ob
	d.Stats.PagePrograms++
	d.Stats.BytesIn[a.Channel] += int64(len(data) + len(oob))
	return nil
}

// EraseBlock resets every page in the block to the erased state.
func (d *Device) EraseBlock(a Address) error {
	if !a.Valid(d.Geo) {
		return fmt.Errorf("flash: EraseBlock invalid address %v", a)
	}
	p := d.planes[a.PlaneIndex(d.Geo)]
	base := a.Block * d.Geo.PagesPerBlock
	for pg := 0; pg < d.Geo.PagesPerBlock; pg++ {
		delete(p.pages, base+pg)
		delete(p.oobs, base+pg)
	}
	d.Stats.BlockErases++
	return nil
}

// ReadPage senses a page (user data + OOB) into the plane's sensing
// latch. If the block's cell mode has a nonzero raw BER and ECCBypass
// is false, errors are injected into the latch contents, modeling what
// in-plane computation would see without controller ECC.
func (d *Device) ReadPage(a Address) error {
	if !a.Valid(d.Geo) {
		return fmt.Errorf("flash: ReadPage invalid address %v", a)
	}
	pl := d.planes[a.PlaneIndex(d.Geo)]
	idx := a.PageIndex(d.Geo)
	page, ok := pl.pages[idx]
	if !ok {
		// Erased page: all ones.
		for i := range pl.Sensing {
			pl.Sensing[i] = 0xFF
		}
		d.countRead(a)
		return nil
	}
	copy(pl.Sensing, page)
	copy(pl.Sensing[d.Geo.PageBytes:], pl.oobs[idx])
	mode := d.BlockMode(a)
	if ber := d.Params.RawBER(mode); ber > 0 && !d.ECCBypass {
		d.injectErrors(pl.Sensing, ber)
	}
	d.countRead(a)
	return nil
}

func (d *Device) countRead(a Address) {
	d.Stats.PageReads++
	d.Stats.PageReadsByMode[d.BlockMode(a)]++
}

// injectErrors flips each bit with probability ber, using a binomial
// draw over the buffer for efficiency at realistic BERs.
func (d *Device) injectErrors(buf []byte, ber float64) {
	bitsTotal := len(buf) * 8
	expected := ber * float64(bitsTotal)
	// Poisson-approximate the flip count.
	n := int(expected)
	if d.rng.Float64() < expected-float64(n) {
		n++
	}
	for i := 0; i < n; i++ {
		bit := d.rng.Intn(bitsTotal)
		buf[bit>>3] ^= 1 << uint(bit&7)
		d.Stats.BitErrorsInjected++
	}
}

// ReadPageInto reads a page through the conventional controller path:
// sense, stream over the channel, then ECC-correct using the OOB parity
// (Sec 2.3). Raw bit errors therefore never reach the caller — unlike
// the in-latch computation path (ReadPage + latch ops), which is why
// REIS needs the zero-BER SLC-ESP partition for embeddings. Corrected
// flips are counted in Stats.ECCCorrections.
func (d *Device) ReadPageInto(a Address, data, oob []byte) ([]byte, []byte, error) {
	if err := d.ReadPage(a); err != nil {
		return nil, nil, err
	}
	pl := d.planes[a.PlaneIndex(d.Geo)]
	if cap(data) < d.Geo.PageBytes {
		data = make([]byte, d.Geo.PageBytes)
	}
	data = data[:d.Geo.PageBytes]
	copy(data, pl.Sensing[:d.Geo.PageBytes])
	if cap(oob) < d.Geo.OOBBytes {
		oob = make([]byte, d.Geo.OOBBytes)
	}
	oob = oob[:d.Geo.OOBBytes]
	copy(oob, pl.Sensing[d.Geo.PageBytes:])
	d.Stats.BytesOut[a.Channel] += int64(d.Geo.PageBytes + d.Geo.OOBBytes)
	// ECC correction: restore the programmed content, counting the
	// raw flips the decoder had to fix.
	idx := a.PageIndex(d.Geo)
	if page, ok := pl.pages[idx]; ok {
		d.Stats.ECCCorrections += int64(diffBits(data, page) + diffBits(oob, pl.oobs[idx]))
		copy(data, page)
		copy(oob, pl.oobs[idx])
	}
	return data, oob, nil
}

func diffBits(a, b []byte) int {
	n := 0
	for i := range a {
		n += popcountByte(a[i] ^ b[i])
	}
	return n
}

// LoadCache performs Input Broadcasting (IBC): fills the plane's cache
// latch with repeated copies of pattern, aligned to slot boundaries of
// slotBytes, so the subsequent XOR compares the query against every
// embedding slot in a page (Sec 4.3.2 step 1).
func (d *Device) LoadCache(planeIdx int, pattern []byte, slotBytes int) error {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return fmt.Errorf("flash: LoadCache invalid plane %d", planeIdx)
	}
	if slotBytes <= 0 || len(pattern) > slotBytes {
		return fmt.Errorf("flash: LoadCache pattern %dB exceeds slot %dB", len(pattern), slotBytes)
	}
	pl := d.planes[planeIdx]
	for i := range pl.Cache {
		pl.Cache[i] = 0
	}
	for off := 0; off+slotBytes <= d.Geo.PageBytes; off += slotBytes {
		copy(pl.Cache[off:off+slotBytes], pattern)
	}
	d.Stats.IBCLoads++
	d.Stats.BytesIn[planeIdx/(d.Geo.DiesPerChannel*d.Geo.PlanesPerDie)] += int64(len(pattern))
	return nil
}

// XORLatches computes Data = Sensing XOR Cache over the user-data
// region of the plane's latches (Table 2 "XOR"). OOB bytes are copied
// through unchanged so linkage metadata stays readable.
func (d *Device) XORLatches(planeIdx int) error {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return fmt.Errorf("flash: XORLatches invalid plane %d", planeIdx)
	}
	pl := d.planes[planeIdx]
	for i := 0; i < d.Geo.PageBytes; i++ {
		pl.Data[i] = pl.Sensing[i] ^ pl.Cache[i]
	}
	copy(pl.Data[d.Geo.PageBytes:], pl.Sensing[d.Geo.PageBytes:])
	d.Stats.LatchXORs++
	return nil
}

// CountSlotBits runs the fail-bit counter over one slot of the data
// latch, returning the popcount — the Hamming distance when the cache
// held the query and the sensing latch held database embeddings
// (Table 2 "GEN_DIST").
func (d *Device) CountSlotBits(planeIdx, slotBytes, slot int) (int, error) {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return 0, fmt.Errorf("flash: CountSlotBits invalid plane %d", planeIdx)
	}
	lo := slot * slotBytes
	hi := lo + slotBytes
	if lo < 0 || hi > d.Geo.PageBytes {
		return 0, fmt.Errorf("flash: CountSlotBits slot %d out of page", slot)
	}
	pl := d.planes[planeIdx]
	n := 0
	for _, b := range pl.Data[lo:hi] {
		n += popcountByte(b)
	}
	d.Stats.BitCounts++
	return n, nil
}

var popTable [256]int

func init() {
	for i := range popTable {
		v, n := i, 0
		for v != 0 {
			n += v & 1
			v >>= 1
		}
		popTable[i] = n
	}
}

func popcountByte(b byte) int { return popTable[b] }

// PassFail applies the pass/fail comparator: it reports whether value
// is at or below threshold (Sec 4.3.3 distance filtering).
func (d *Device) PassFail(value, threshold int) bool {
	d.Stats.PassFailChecks++
	return value <= threshold
}

// ReadOOBSlot returns a copy of bytes [off, off+n) of the OOB region
// currently in the plane's sensing latch — how the engine picks up
// DADR/RADR for each embedding after a page read.
func (d *Device) ReadOOBSlot(planeIdx, off, n int) ([]byte, error) {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return nil, fmt.Errorf("flash: ReadOOBSlot invalid plane %d", planeIdx)
	}
	if off < 0 || off+n > d.Geo.OOBBytes {
		return nil, fmt.Errorf("flash: ReadOOBSlot range [%d,%d) out of OOB", off, off+n)
	}
	pl := d.planes[planeIdx]
	out := make([]byte, n)
	copy(out, pl.Sensing[d.Geo.PageBytes+off:d.Geo.PageBytes+off+n])
	return out, nil
}

// TransferOut accounts an outbound transfer of n bytes on the
// channel serving planeIdx (TTL entries moving to controller DRAM).
func (d *Device) TransferOut(planeIdx, n int) {
	ch := planeIdx / (d.Geo.DiesPerChannel * d.Geo.PlanesPerDie)
	d.Stats.BytesOut[ch] += int64(n)
}

// SlotData returns a copy of the given slot of the plane's sensing
// latch user data (used to pull the raw embedding, EMB, into a TTL
// entry).
func (d *Device) SlotData(planeIdx, slotBytes, slot int) ([]byte, error) {
	lo := slot * slotBytes
	hi := lo + slotBytes
	if planeIdx < 0 || planeIdx >= len(d.planes) || lo < 0 || hi > d.Geo.PageBytes {
		return nil, fmt.Errorf("flash: SlotData invalid plane %d slot %d", planeIdx, slot)
	}
	pl := d.planes[planeIdx]
	out := make([]byte, slotBytes)
	copy(out, pl.Sensing[lo:hi])
	return out, nil
}

// ResetStats zeroes all counters.
func (d *Device) ResetStats() {
	d.Stats = Stats{
		BytesOut: make([]int64, d.Geo.Channels),
		BytesIn:  make([]int64, d.Geo.Channels),
	}
}
