package flash

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"reis/internal/vecmath"
	"reis/internal/xrand"
)

// Stats accumulates device event counts; the SSD and REIS layers turn
// these into latency and energy using Params. All counters are atomic
// so concurrent per-plane operations (one scan task per plane, as the
// REIS engine dispatches them) can account events without a global
// device lock. Read them with Load(); Reset with ResetStats.
type Stats struct {
	PageReads       atomic.Int64
	PageReadsByMode [3]atomic.Int64
	PagePrograms    atomic.Int64
	BlockErases     atomic.Int64
	LatchXORs       atomic.Int64
	BitCounts       atomic.Int64
	PassFailChecks  atomic.Int64
	// PrunedSlots counts slots whose GEN_DIST_PAGE distance exceeded
	// the command's pruning bound (top-k threshold propagation): their
	// distances were computed but the slots can never reach the result
	// set, so the controller skips their TTL transfer.
	PrunedSlots atomic.Int64
	IBCLoads    atomic.Int64
	// BytesOut counts bytes transferred from dies to the controller,
	// per channel.
	BytesOut []atomic.Int64
	// BytesIn counts bytes transferred into dies (programs, IBC), per
	// channel.
	BytesIn []atomic.Int64
	// BitErrorsInjected counts raw bit flips applied on non-ESP reads
	// without ECC.
	BitErrorsInjected atomic.Int64
	// ECCCorrections counts raw flips fixed by the controller ECC on
	// the conventional read path.
	ECCCorrections atomic.Int64
}

// TotalBytesOut sums the per-channel outbound byte counts.
func (s *Stats) TotalBytesOut() int64 {
	var t int64
	for i := range s.BytesOut {
		t += s.BytesOut[i].Load()
	}
	return t
}

// Device is a functional NAND flash array. Operations that touch a
// single plane (reads, latch ops, OOB access) are safe to run
// concurrently on *different* planes: each plane carries its own lock,
// and the shared counters are atomic. Operations on the same plane
// must be externally ordered — the REIS engine guarantees this by
// dispatching at most one scan task per plane at a time.
type Device struct {
	Geo    Geometry
	Params Params

	planes []*Plane
	// blockMode[planeIdx][block] is the cell mode each block was last
	// programmed in (soft partitioning). Written only during
	// deployment; queries read it concurrently.
	blockMode [][]CellMode
	// eraseCount[planeIdx][block] is the per-block program/erase cycle
	// count — the wear ledger garbage collection reports to the host.
	// Counters are atomic so concurrent erases on different planes need
	// no device lock.
	eraseCount [][]atomic.Int64

	// ECCBypass disables error injection entirely; REIS relies on
	// SLC-ESP having zero raw BER instead, so this stays false in the
	// evaluated configurations.
	ECCBypass bool

	Stats Stats
	// rng drives raw-bit-error injection; rngMu serializes draws so
	// concurrent TLC reads on different planes stay race-free. flipBits
	// is the pooled flip-position scratch of injectErrors, guarded by
	// the same mutex.
	rng      *xrand.RNG
	rngMu    sync.Mutex
	flipBits []int
}

// Plane models one flash plane: its pages (lazily allocated), OOB
// areas, and the three page-buffer latches. The mutex guards the maps
// and the latch contents; every Device per-plane operation takes it,
// so concurrent operations on distinct planes never share mutable
// state.
type Plane struct {
	mu    sync.Mutex
	geo   Geometry
	pages map[int][]byte // page index within plane -> user data
	oobs  map[int][]byte // page index within plane -> OOB data

	// Sensing, Data and Cache latches (Sec 2.3 items 10-12). Sized
	// PageBytes+OOBBytes: a page read loads OOB alongside user data
	// (Sec 4.1.3).
	Sensing []byte
	Data    []byte
	Cache   []byte

	// senseFlips is the number of bits of the sensing latch that
	// differ from the programmed content after the last sense (raw
	// errors flipped an odd number of times) — the correction count
	// the controller ECC reports without re-diffing the page.
	senseFlips int
}

// NewDevice allocates a device with the given geometry and parameters.
func NewDevice(geo Geometry, params Params) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		Geo:    geo,
		Params: params,
		planes: make([]*Plane, geo.Planes()),
		rng:    xrand.New(0xf1a5),
	}
	d.Stats.BytesOut = make([]atomic.Int64, geo.Channels)
	d.Stats.BytesIn = make([]atomic.Int64, geo.Channels)
	latchLen := geo.PageBytes + geo.OOBBytes
	for i := range d.planes {
		d.planes[i] = &Plane{
			geo:     geo,
			pages:   make(map[int][]byte),
			oobs:    make(map[int][]byte),
			Sensing: make([]byte, latchLen),
			Data:    make([]byte, latchLen),
			Cache:   make([]byte, latchLen),
		}
	}
	d.blockMode = make([][]CellMode, geo.Planes())
	for i := range d.blockMode {
		d.blockMode[i] = make([]CellMode, geo.BlocksPerPlane)
		for b := range d.blockMode[i] {
			d.blockMode[i][b] = ModeTLC
		}
	}
	d.eraseCount = make([][]atomic.Int64, geo.Planes())
	for i := range d.eraseCount {
		d.eraseCount[i] = make([]atomic.Int64, geo.BlocksPerPlane)
	}
	return d, nil
}

// Plane returns the plane at the global index.
func (d *Device) Plane(idx int) *Plane {
	return d.planes[idx]
}

// SetBlockMode soft-partitions: marks a block's cell mode before
// programming (Sec 4.1.2 hybrid SSD design).
func (d *Device) SetBlockMode(a Address, m CellMode) error {
	if !a.Valid(d.Geo) {
		return fmt.Errorf("flash: SetBlockMode invalid address %v", a)
	}
	d.blockMode[a.PlaneIndex(d.Geo)][a.Block] = m
	return nil
}

// BlockMode reports the cell mode of the block containing a.
func (d *Device) BlockMode(a Address) CellMode {
	return d.blockMode[a.PlaneIndex(d.Geo)][a.Block]
}

// Program writes user data and OOB bytes to a page. data may be
// shorter than the page; the rest reads back as 0xFF (erased cells).
func (d *Device) Program(a Address, data, oob []byte) error {
	if !a.Valid(d.Geo) {
		return fmt.Errorf("flash: Program invalid address %v", a)
	}
	if len(data) > d.Geo.PageBytes {
		return fmt.Errorf("flash: Program data %d bytes exceeds page size %d", len(data), d.Geo.PageBytes)
	}
	if len(oob) > d.Geo.OOBBytes {
		return fmt.Errorf("flash: Program OOB %d bytes exceeds OOB size %d", len(oob), d.Geo.OOBBytes)
	}
	p := d.planes[a.PlaneIndex(d.Geo)]
	idx := a.PageIndex(d.Geo)
	page := make([]byte, d.Geo.PageBytes)
	for i := range page {
		page[i] = 0xFF
	}
	copy(page, data)
	ob := make([]byte, d.Geo.OOBBytes)
	for i := range ob {
		ob[i] = 0xFF
	}
	copy(ob, oob)
	p.mu.Lock()
	p.pages[idx] = page
	p.oobs[idx] = ob
	p.mu.Unlock()
	d.Stats.PagePrograms.Add(1)
	d.Stats.BytesIn[a.Channel].Add(int64(len(data) + len(oob)))
	return nil
}

// EraseBlock resets every page in the block to the erased state.
func (d *Device) EraseBlock(a Address) error {
	if !a.Valid(d.Geo) {
		return fmt.Errorf("flash: EraseBlock invalid address %v", a)
	}
	p := d.planes[a.PlaneIndex(d.Geo)]
	base := a.Block * d.Geo.PagesPerBlock
	p.mu.Lock()
	for pg := 0; pg < d.Geo.PagesPerBlock; pg++ {
		delete(p.pages, base+pg)
		delete(p.oobs, base+pg)
	}
	p.mu.Unlock()
	d.Stats.BlockErases.Add(1)
	d.eraseCount[a.PlaneIndex(d.Geo)][a.Block].Add(1)
	return nil
}

// EraseCount reports the program/erase cycles block a has seen.
func (d *Device) EraseCount(a Address) int64 {
	return d.eraseCount[a.PlaneIndex(d.Geo)][a.Block].Load()
}

// BlockMaxErase reports the highest erase count the given block index
// has seen across all planes — the per-row wear figure wear-leveled
// placement consults (a plane-striped region row is block `block` on
// every plane).
func (d *Device) BlockMaxErase(block int) int64 {
	var m int64
	if block < 0 || block >= d.Geo.BlocksPerPlane {
		return 0
	}
	for p := range d.eraseCount {
		if n := d.eraseCount[p][block].Load(); n > m {
			m = n
		}
	}
	return m
}

// MaxEraseCount returns the highest per-block erase count on the
// device — the wear-skew figure GC surfaces to the host.
func (d *Device) MaxEraseCount() int64 {
	var m int64
	for p := range d.eraseCount {
		for b := range d.eraseCount[p] {
			if n := d.eraseCount[p][b].Load(); n > m {
				m = n
			}
		}
	}
	return m
}

// ReadPage senses a page (user data + OOB) into the plane's sensing
// latch. If the block's cell mode has a nonzero raw BER and ECCBypass
// is false, errors are injected into the latch contents, modeling what
// in-plane computation would see without controller ECC.
func (d *Device) ReadPage(a Address) error {
	if !a.Valid(d.Geo) {
		return fmt.Errorf("flash: ReadPage invalid address %v", a)
	}
	pl := d.planes[a.PlaneIndex(d.Geo)]
	pl.mu.Lock()
	defer pl.mu.Unlock()
	d.senseLocked(a, pl)
	return nil
}

// senseLocked performs the array sense into pl's sensing latch; the
// caller holds pl.mu.
func (d *Device) senseLocked(a Address, pl *Plane) {
	pl.senseFlips = 0
	idx := a.PageIndex(d.Geo)
	page, ok := pl.pages[idx]
	if !ok {
		// Erased page: all ones.
		for i := range pl.Sensing {
			pl.Sensing[i] = 0xFF
		}
		d.countRead(a)
		return
	}
	copy(pl.Sensing, page)
	copy(pl.Sensing[d.Geo.PageBytes:], pl.oobs[idx])
	mode := d.BlockMode(a)
	if ber := d.Params.RawBER(mode); ber > 0 && !d.ECCBypass {
		pl.senseFlips = d.injectErrors(pl.Sensing, ber)
	}
	d.countRead(a)
}

func (d *Device) countRead(a Address) {
	d.Stats.PageReads.Add(1)
	d.Stats.PageReadsByMode[d.BlockMode(a)].Add(1)
}

// injectErrors flips each bit with probability ber, using a binomial
// draw over the buffer for efficiency at realistic BERs. It returns
// the number of bits that ended up differing from the original
// content (a bit hit an even number of times cancels physically).
func (d *Device) injectErrors(buf []byte, ber float64) int {
	bitsTotal := len(buf) * 8
	expected := ber * float64(bitsTotal)
	d.rngMu.Lock()
	// Poisson-approximate the flip count.
	n := int(expected)
	if d.rng.Float64() < expected-float64(n) {
		n++
	}
	pos := d.flipBits[:0]
	for i := 0; i < n; i++ {
		bit := d.rng.Intn(bitsTotal)
		buf[bit>>3] ^= 1 << uint(bit&7)
		pos = append(pos, bit)
	}
	// A bit hit an even number of times cancels physically: sort the
	// pooled flip record and count positions with odd multiplicity
	// (allocation-free, unlike a per-read set).
	sort.Ints(pos)
	flipped := 0
	for i := 0; i < len(pos); {
		j := i
		for j < len(pos) && pos[j] == pos[i] {
			j++
		}
		if (j-i)%2 == 1 {
			flipped++
		}
		i = j
	}
	d.flipBits = pos
	d.rngMu.Unlock()
	d.Stats.BitErrorsInjected.Add(int64(n))
	return flipped
}

// ReadPageInto reads a page through the conventional controller path:
// sense, stream over the channel, then ECC-correct using the OOB parity
// (Sec 2.3). Raw bit errors therefore never reach the caller — unlike
// the in-latch computation path (ReadPage + latch ops), which is why
// REIS needs the zero-BER SLC-ESP partition for embeddings. Corrected
// flips are counted in Stats.ECCCorrections.
func (d *Device) ReadPageInto(a Address, data, oob []byte) ([]byte, []byte, error) {
	if !a.Valid(d.Geo) {
		return nil, nil, fmt.Errorf("flash: ReadPage invalid address %v", a)
	}
	pl := d.planes[a.PlaneIndex(d.Geo)]
	pl.mu.Lock()
	d.senseLocked(a, pl)
	if cap(data) < d.Geo.PageBytes {
		data = make([]byte, d.Geo.PageBytes)
	}
	data = data[:d.Geo.PageBytes]
	copy(data, pl.Sensing[:d.Geo.PageBytes])
	if cap(oob) < d.Geo.OOBBytes {
		oob = make([]byte, d.Geo.OOBBytes)
	}
	oob = oob[:d.Geo.OOBBytes]
	copy(oob, pl.Sensing[d.Geo.PageBytes:])
	// ECC correction: restore the programmed content, counting the
	// raw flips the decoder had to fix (recorded at injection time, so
	// the page need not be re-diffed).
	idx := a.PageIndex(d.Geo)
	if page, ok := pl.pages[idx]; ok && pl.senseFlips > 0 {
		d.Stats.ECCCorrections.Add(int64(pl.senseFlips))
		copy(data, page)
		copy(oob, pl.oobs[idx])
	}
	pl.mu.Unlock()
	d.Stats.BytesOut[a.Channel].Add(int64(d.Geo.PageBytes + d.Geo.OOBBytes))
	return data, oob, nil
}

// LoadCache performs Input Broadcasting (IBC): fills the plane's cache
// latch with repeated copies of pattern, aligned to slot boundaries of
// slotBytes, so the subsequent XOR compares the query against every
// embedding slot in a page (Sec 4.3.2 step 1).
func (d *Device) LoadCache(planeIdx int, pattern []byte, slotBytes int) error {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return fmt.Errorf("flash: LoadCache invalid plane %d", planeIdx)
	}
	if slotBytes <= 0 || len(pattern) > slotBytes {
		return fmt.Errorf("flash: LoadCache pattern %dB exceeds slot %dB", len(pattern), slotBytes)
	}
	pl := d.planes[planeIdx]
	pl.mu.Lock()
	// The slot fill overwrites [0, filled); only the page tail and the
	// OOB area of the latch need explicit zeroing.
	filled := d.Geo.PageBytes - d.Geo.PageBytes%slotBytes
	for i := filled; i < len(pl.Cache); i++ {
		pl.Cache[i] = 0
	}
	if len(pattern) < slotBytes {
		// Pattern shorter than the slot: the copy below leaves slot
		// padding untouched, so clear the filled area first.
		for i := 0; i < filled; i++ {
			pl.Cache[i] = 0
		}
	}
	for off := 0; off+slotBytes <= d.Geo.PageBytes; off += slotBytes {
		copy(pl.Cache[off:off+slotBytes], pattern)
	}
	pl.mu.Unlock()
	d.Stats.IBCLoads.Add(1)
	d.Stats.BytesIn[planeIdx/(d.Geo.DiesPerChannel*d.Geo.PlanesPerDie)].Add(int64(len(pattern)))
	return nil
}

// XORLatches computes Data = Sensing XOR Cache over the user-data
// region of the plane's latches (Table 2 "XOR"). OOB bytes are copied
// through unchanged so linkage metadata stays readable.
func (d *Device) XORLatches(planeIdx int) error {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return fmt.Errorf("flash: XORLatches invalid plane %d", planeIdx)
	}
	pl := d.planes[planeIdx]
	pl.mu.Lock()
	n := d.Geo.PageBytes
	vecmath.XorBytes(pl.Data[:n], pl.Sensing[:n], pl.Cache[:n])
	copy(pl.Data[n:], pl.Sensing[n:])
	pl.mu.Unlock()
	d.Stats.LatchXORs.Add(1)
	return nil
}

// CountSlotBits runs the fail-bit counter over one slot of the data
// latch, returning the popcount — the Hamming distance when the cache
// held the query and the sensing latch held database embeddings
// (Table 2 "GEN_DIST").
func (d *Device) CountSlotBits(planeIdx, slotBytes, slot int) (int, error) {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return 0, fmt.Errorf("flash: CountSlotBits invalid plane %d", planeIdx)
	}
	lo := slot * slotBytes
	hi := lo + slotBytes
	if lo < 0 || hi > d.Geo.PageBytes {
		return 0, fmt.Errorf("flash: CountSlotBits slot %d out of page", slot)
	}
	pl := d.planes[planeIdx]
	pl.mu.Lock()
	n := vecmath.PopCountBytes(pl.Data[lo:hi])
	pl.mu.Unlock()
	d.Stats.BitCounts.Add(1)
	return n, nil
}

// GenDistPage executes the page-granular distance wave (GEN_DIST_PAGE):
// one latch-to-latch XOR over the user-data region fused with the
// fail-bit counter over nSlots slots starting at firstSlot, writing the
// per-slot popcounts into dists[0:nSlots]. The data latch ends up with
// exactly the contents XORLatches would leave (OOB copied through), and
// the stats accounting — one latch XOR plus nSlots bit counts — is
// identical to XORLatches followed by nSlots CountSlotBits calls.
//
// bound > 0 carries the controller's current top-k pruning threshold
// into the plane: the distances are computed (and written) exactly as
// without it, but slots strictly above the bound are counted in
// Stats.PrunedSlots — the plane-side accounting of TTL transfers the
// threshold made unnecessary. bound <= 0 disables the comparison.
func (d *Device) GenDistPage(planeIdx, slotBytes, firstSlot, nSlots int, dists []int, bound int) error {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return fmt.Errorf("flash: GenDistPage invalid plane %d", planeIdx)
	}
	lo := firstSlot * slotBytes
	hi := lo + nSlots*slotBytes
	if slotBytes <= 0 || firstSlot < 0 || nSlots <= 0 || hi > d.Geo.PageBytes {
		return fmt.Errorf("flash: GenDistPage slots [%d,%d) of %dB out of page", firstSlot, firstSlot+nSlots, slotBytes)
	}
	if len(dists) < nSlots {
		return fmt.Errorf("flash: GenDistPage distance buffer %d short of %d slots", len(dists), nSlots)
	}
	pl := d.planes[planeIdx]
	pl.mu.Lock()
	n := d.Geo.PageBytes
	vecmath.XorPopCountSlots(pl.Data[:n], pl.Sensing[:n], pl.Cache[:n], slotBytes, firstSlot, nSlots, dists)
	copy(pl.Data[n:], pl.Sensing[n:])
	pl.mu.Unlock()
	d.Stats.LatchXORs.Add(1)
	d.Stats.BitCounts.Add(int64(nSlots))
	if bound > 0 {
		pruned := 0
		for _, dv := range dists[:nSlots] {
			if dv > bound {
				pruned++
			}
		}
		if pruned > 0 {
			d.Stats.PrunedSlots.Add(int64(pruned))
		}
	}
	return nil
}

// PassFail applies the pass/fail comparator: it reports whether value
// is at or below threshold (Sec 4.3.3 distance filtering).
func (d *Device) PassFail(value, threshold int) bool {
	d.Stats.PassFailChecks.Add(1)
	return value <= threshold
}

// ReadOOBSlot returns a copy of bytes [off, off+n) of the OOB region
// currently in the plane's sensing latch — how the engine picks up
// DADR/RADR for each embedding after a page read.
func (d *Device) ReadOOBSlot(planeIdx, off, n int) ([]byte, error) {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return nil, fmt.Errorf("flash: ReadOOBSlot invalid plane %d", planeIdx)
	}
	if off < 0 || off+n > d.Geo.OOBBytes {
		return nil, fmt.Errorf("flash: ReadOOBSlot range [%d,%d) out of OOB", off, off+n)
	}
	pl := d.planes[planeIdx]
	out := make([]byte, n)
	pl.mu.Lock()
	copy(out, pl.Sensing[d.Geo.PageBytes+off:d.Geo.PageBytes+off+n])
	pl.mu.Unlock()
	return out, nil
}

// ReadOOB copies the whole OOB region currently in the plane's
// sensing latch into buf (grown if needed) — one latch access per
// page instead of one per slot when the engine walks a page's linkage
// records.
func (d *Device) ReadOOB(planeIdx int, buf []byte) ([]byte, error) {
	if planeIdx < 0 || planeIdx >= len(d.planes) {
		return nil, fmt.Errorf("flash: ReadOOB invalid plane %d", planeIdx)
	}
	if cap(buf) < d.Geo.OOBBytes {
		buf = make([]byte, d.Geo.OOBBytes)
	}
	buf = buf[:d.Geo.OOBBytes]
	pl := d.planes[planeIdx]
	pl.mu.Lock()
	copy(buf, pl.Sensing[d.Geo.PageBytes:])
	pl.mu.Unlock()
	return buf, nil
}

// TransferOut accounts an outbound transfer of n bytes on the
// channel serving planeIdx (TTL entries moving to controller DRAM).
func (d *Device) TransferOut(planeIdx, n int) {
	ch := planeIdx / (d.Geo.DiesPerChannel * d.Geo.PlanesPerDie)
	d.Stats.BytesOut[ch].Add(int64(n))
}

// SlotData returns a copy of the given slot of the plane's sensing
// latch user data (used to pull the raw embedding, EMB, into a TTL
// entry).
func (d *Device) SlotData(planeIdx, slotBytes, slot int) ([]byte, error) {
	lo := slot * slotBytes
	hi := lo + slotBytes
	if planeIdx < 0 || planeIdx >= len(d.planes) || lo < 0 || hi > d.Geo.PageBytes {
		return nil, fmt.Errorf("flash: SlotData invalid plane %d slot %d", planeIdx, slot)
	}
	pl := d.planes[planeIdx]
	out := make([]byte, slotBytes)
	pl.mu.Lock()
	copy(out, pl.Sensing[lo:hi])
	pl.mu.Unlock()
	return out, nil
}

// ResetStats zeroes all counters.
func (d *Device) ResetStats() {
	d.Stats.PageReads.Store(0)
	for i := range d.Stats.PageReadsByMode {
		d.Stats.PageReadsByMode[i].Store(0)
	}
	d.Stats.PagePrograms.Store(0)
	d.Stats.BlockErases.Store(0)
	d.Stats.LatchXORs.Store(0)
	d.Stats.BitCounts.Store(0)
	d.Stats.PassFailChecks.Store(0)
	d.Stats.IBCLoads.Store(0)
	for i := range d.Stats.BytesOut {
		d.Stats.BytesOut[i].Store(0)
	}
	for i := range d.Stats.BytesIn {
		d.Stats.BytesIn[i].Store(0)
	}
	d.Stats.BitErrorsInjected.Store(0)
	d.Stats.ECCCorrections.Store(0)
}
