// Package flash models the NAND flash subsystem of a modern SSD at the
// level of detail the REIS paper depends on: channels, dies, planes,
// blocks and pages with Out-Of-Band (OOB) areas; the page-buffer
// latches (sensing, data, cache); the peripheral fail-bit counter and
// pass/fail checker; SLC (with Enhanced SLC Programming) and TLC cell
// modes with their differing read latency and raw bit-error rates; and
// the vendor command-set extensions of Table 2 (IBC, XOR, GEN_DIST,
// RD_TTL).
//
// The model is functional: pages store real bytes, latch operations
// compute real XORs and popcounts, so distances produced by the REIS
// engine are exact. Latency and energy are accounted from per-event
// parameters (Params) taken from the paper's sources (Flash-Cosmos
// characterization, ISSCC datasheets), the same methodology the paper
// uses.
package flash

import "fmt"

// Geometry describes the physical organization of the NAND subsystem.
type Geometry struct {
	Channels       int
	DiesPerChannel int
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
	// PageBytes is the user-data size of a flash page (16 KiB on the
	// modeled devices).
	PageBytes int
	// OOBBytes is the spare (out-of-band) area per page; the paper
	// cites 2208 bytes for a 16 KiB page.
	OOBBytes int
	// ChannelBandwidth is the per-channel transfer rate in bytes/s.
	ChannelBandwidth float64
}

// Validate reports whether every field is positive.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0, g.DiesPerChannel <= 0, g.PlanesPerDie <= 0,
		g.BlocksPerPlane <= 0, g.PagesPerBlock <= 0, g.PageBytes <= 0,
		g.OOBBytes < 0, g.ChannelBandwidth <= 0:
		return fmt.Errorf("flash: invalid geometry %+v", g)
	}
	return nil
}

// Planes returns the total number of planes in the device — the unit
// of parallel computation for the REIS ANNS engine.
func (g Geometry) Planes() int {
	return g.Channels * g.DiesPerChannel * g.PlanesPerDie
}

// Dies returns the total number of dies.
func (g Geometry) Dies() int { return g.Channels * g.DiesPerChannel }

// PagesPerPlane returns the number of pages a plane holds.
func (g Geometry) PagesPerPlane() int { return g.BlocksPerPlane * g.PagesPerBlock }

// TotalPages returns the number of pages in the device.
func (g Geometry) TotalPages() int { return g.Planes() * g.PagesPerPlane() }

// Capacity returns the user-data capacity in bytes.
func (g Geometry) Capacity() int64 {
	return int64(g.TotalPages()) * int64(g.PageBytes)
}

// InternalBandwidth returns the aggregate channel bandwidth in
// bytes/s (e.g. "9.6 GB/s for an 8-channel system with 1.2 GB/s per
// channel" in Sec 4.3.2).
func (g Geometry) InternalBandwidth() float64 {
	return float64(g.Channels) * g.ChannelBandwidth
}

// Address identifies one physical page.
type Address struct {
	Channel int
	Die     int // within channel
	Plane   int // within die
	Block   int // within plane
	Page    int // within block
}

// Valid reports whether a lies inside g.
func (a Address) Valid(g Geometry) bool {
	return a.Channel >= 0 && a.Channel < g.Channels &&
		a.Die >= 0 && a.Die < g.DiesPerChannel &&
		a.Plane >= 0 && a.Plane < g.PlanesPerDie &&
		a.Block >= 0 && a.Block < g.BlocksPerPlane &&
		a.Page >= 0 && a.Page < g.PagesPerBlock
}

// PlaneIndex returns the global plane index of a in [0, g.Planes()).
func (a Address) PlaneIndex(g Geometry) int {
	return (a.Channel*g.DiesPerChannel+a.Die)*g.PlanesPerDie + a.Plane
}

// PageIndex returns the page offset within its plane.
func (a Address) PageIndex(g Geometry) int {
	return a.Block*g.PagesPerBlock + a.Page
}

// LinearIndex returns a unique index for the page across the device,
// ordered plane-major so that consecutive indices within a plane are
// consecutive pages (the layout coarse-grained access relies on).
func (a Address) LinearIndex(g Geometry) int {
	return a.PlaneIndex(g)*g.PagesPerPlane() + a.PageIndex(g)
}

// AddressFromLinear inverts LinearIndex.
func AddressFromLinear(g Geometry, idx int) Address {
	perPlane := g.PagesPerPlane()
	plane := idx / perPlane
	page := idx % perPlane
	return Address{
		Channel: plane / (g.DiesPerChannel * g.PlanesPerDie),
		Die:     (plane / g.PlanesPerDie) % g.DiesPerChannel,
		Plane:   plane % g.PlanesPerDie,
		Block:   page / g.PagesPerBlock,
		Page:    page % g.PagesPerBlock,
	}
}

// String implements fmt.Stringer.
func (a Address) String() string {
	return fmt.Sprintf("ch%d/die%d/pl%d/blk%d/pg%d", a.Channel, a.Die, a.Plane, a.Block, a.Page)
}

// MiniPage addresses a sub-page slot holding one embedding
// (Sec 4.3.2, "Fine-grained Embedding Access"): the physical page
// address plus a slot offset.
type MiniPage struct {
	Page Address
	Slot int
}

// String implements fmt.Stringer.
func (m MiniPage) String() string {
	return fmt.Sprintf("%s+%d", m.Page, m.Slot)
}
