package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
)

// svData is the shared serving-tier corpus: a base deploy plus an
// append batch, with queries held out.
var svData = dataset.Generate(dataset.Config{
	Name: "serve-test", N: 660, Dim: 96, Clusters: 12, Queries: 12, K: 10,
	DocBytes: 128, Seed: 7,
})

const svBase = 600 // corpus entries deployed up front; the rest append

// svCfg shrinks SSD1 the way the reis shard tests do, with append/GC
// headroom for the mutation script. cacheBytes > 0 opts into the DRAM
// caching tier.
func svCfg(cacheBytes int64) ssd.Config {
	cfg := ssd.SSD1()
	cfg.Geo.Channels = 2
	cfg.Geo.DiesPerChannel = 2
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 32
	cfg.Geo.PagesPerBlock = 16
	cfg.Geo.PageBytes = 4096
	cfg.Geo.OOBBytes = 1024
	cfg.OverprovisionPct = 200
	cfg.CacheDRAMBytes = cacheBytes
	return cfg
}

// newHost builds one replica host: a single-device engine, or a
// sharded router of `shards` devices.
func newHost(t *testing.T, cacheBytes int64, shards int) Host {
	t.Helper()
	if shards > 1 {
		sh, err := reis.NewSharded(svCfg(cacheBytes), shards, 64<<20, reis.AllOptions())
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	e, err := reis.New(svCfg(cacheBytes), 64<<20, reis.AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// svCents/svAssign are the IVF layout over the base corpus.
var svCents, svAssign = ann.KMeans(svData.Vectors[:svBase], ann.KMeansConfig{K: 12, Seed: 5})

// runScript drives the serving-tier state-equivalence script through
// any submit surface: deploy flat (db 1) and IVF (db 2), then
// searches — plain, pruned, repeated (the result-cache path) —
// interleaved with appends, deletes and a compaction. Every response
// is returned in order. This extends the reis mutation oracle
// (TestMutatedMatchesFreshDeploy pins each single host against a fresh
// deploy; here the whole scripted history is pinned across replicas).
func runScript(t *testing.T, submit func(reis.HostCommand) (reis.HostResponse, error)) []reis.HostResponse {
	t.Helper()
	var resps []reis.HostResponse
	run := func(cmd reis.HostCommand) reis.HostResponse {
		t.Helper()
		resp, err := submit(cmd)
		if err != nil {
			t.Fatalf("opcode %#x: %v", cmd.Opcode, err)
		}
		resps = append(resps, resp)
		return resp
	}
	flatSearch := func() reis.HostCommand {
		return reis.HostCommand{Opcode: reis.OpcodeSearch, DBID: 1, Queries: svData.Queries, K: 10}
	}
	ivfSearch := func(prune bool) reis.HostCommand {
		return reis.HostCommand{
			Opcode: reis.OpcodeIVFSearch, DBID: 2, Queries: svData.Queries, K: 10,
			NProbe: 4, Opt: reis.SearchOptions{Prune: prune},
		}
	}
	searches := func() {
		run(flatSearch())
		run(ivfSearch(false))
		run(ivfSearch(true))
		run(ivfSearch(false)) // repeat: exercises the result cache when enabled
	}

	base, baseDocs := svData.Vectors[:svBase], svData.Docs[:svBase]
	batch, batchDocs := svData.Vectors[svBase:], svData.Docs[svBase:]
	run(reis.HostCommand{Opcode: reis.OpcodeDBDeploy, Deploy: &reis.DeployConfig{
		ID: 1, Vectors: base, Docs: baseDocs, DocSlotBytes: 256,
	}})
	run(reis.HostCommand{Opcode: reis.OpcodeIVFDeploy, Deploy: &reis.DeployConfig{
		ID: 2, Vectors: base, Docs: baseDocs, DocSlotBytes: 256,
		Centroids: svCents, Assign: svAssign,
	}})
	searches()

	assign := make([]int, len(batch))
	for i, v := range batch {
		assign[i] = ann.NearestCentroid(svCents, v)
	}
	a1 := run(reis.HostCommand{Opcode: reis.OpcodeAppend, DBID: 1,
		Append: &reis.AppendConfig{Vectors: batch, Docs: batchDocs}}).AppendedIDs
	a2 := run(reis.HostCommand{Opcode: reis.OpcodeAppend, DBID: 2,
		Append: &reis.AppendConfig{Vectors: batch, Docs: batchDocs, Assign: assign}}).AppendedIDs
	searches()

	var del []int
	for id := 4; id < svBase; id += 7 {
		del = append(del, id)
	}
	run(reis.HostCommand{Opcode: reis.OpcodeDelete, DBID: 1,
		Del: &reis.DeleteConfig{IDs: append(append([]int{}, del...), a1[1], a1[10])}})
	run(reis.HostCommand{Opcode: reis.OpcodeDelete, DBID: 2,
		Del: &reis.DeleteConfig{IDs: append(append([]int{}, del...), a2[1], a2[10])}})
	searches()

	run(reis.HostCommand{Opcode: reis.OpcodeCompact, DBID: 1, Compact: &reis.CompactConfig{MinLiveRatio: 0.9}})
	run(reis.HostCommand{Opcode: reis.OpcodeCompact, DBID: 2, Compact: &reis.CompactConfig{MinLiveRatio: 0.9}})
	searches()
	return resps
}

// respsEqual compares a scripted response trace against the
// reference's. resultsOnly drops QueryStats/Stats from the comparison:
// with the result cache enabled, WHICH replica saw an earlier
// identical command determines hit counters, so stats legitimately
// differ between a group and a lone reference while results stay
// bit-identical (the cache-invisibility contract).
func respsEqual(t *testing.T, got, want []reis.HostResponse, resultsOnly bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("response count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if resultsOnly {
			g.QueryStats, w.QueryStats = nil, nil
			g.Stats, w.Stats = reis.QueryStats{}, reis.QueryStats{}
			g.PerShard, w.PerShard = nil, nil
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("response %d differs from single-replica reference\ngot:  %+v\nwant: %+v", i, g, w)
		}
	}
}

// TestReplicaGroupMatchesSingleReplica pins the serving tier's
// determinism contract: the scripted history of deploys, searches
// (flat, IVF, pruned, repeated/cached) and mutations answered through
// a replica group of 1/2/3 members — single-device, cached, and
// sharded replicas — is bit-identical to a lone reference host running
// the same script, and after the script every replica's directly
// queried state is identical too.
func TestReplicaGroupMatchesSingleReplica(t *testing.T) {
	cases := []struct {
		name   string
		cache  int64
		shards int
	}{
		{"engine", 0, 1},
		{"cached", 512 << 10, 1},
		{"sharded", 0, 2},
	}
	for _, tc := range cases {
		ref := newHost(t, tc.cache, tc.shards)
		want := runScript(t, ref.Submit)
		ref.Close()
		for _, n := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/replicas=%d", tc.name, n), func(t *testing.T) {
				hosts := make([]Host, n)
				for i := range hosts {
					hosts[i] = newHost(t, tc.cache, tc.shards)
				}
				g, err := NewGroup(hosts, Config{Seed: 11})
				if err != nil {
					t.Fatal(err)
				}
				defer g.Close()
				got := runScript(t, g.Submit)
				respsEqual(t, got, want, tc.cache > 0)

				// Cross-replica state equivalence: after the scripted
				// history, every replica answers a direct (group-
				// bypassing) search identically.
				probe := reis.HostCommand{
					Opcode: reis.OpcodeIVFSearch, DBID: 2,
					Queries: svData.Queries, K: 10, NProbe: 4,
				}
				first, err := g.Host(0).Submit(probe)
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i < n; i++ {
					resp, err := g.Host(i).Submit(probe)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(resp.Results, first.Results) {
						t.Fatalf("replica %d state diverged from replica 0", i)
					}
				}
			})
		}
	}
}

// TestReplicaGroupConcurrentFailover hammers a 3-replica group from
// concurrent submitters while one replica is failed mid-flight
// (retired, then readmitted): every response must stay bit-identical
// to the single-host reference for its query.
func TestReplicaGroupConcurrentFailover(t *testing.T) {
	ref := newHost(t, 0, 1)
	defer ref.Close()
	deployBoth := func(submit func(reis.HostCommand) (reis.HostResponse, error)) {
		for _, cmd := range []reis.HostCommand{
			{Opcode: reis.OpcodeDBDeploy, Deploy: &reis.DeployConfig{
				ID: 1, Vectors: svData.Vectors[:svBase], Docs: svData.Docs[:svBase], DocSlotBytes: 256,
			}},
			{Opcode: reis.OpcodeIVFDeploy, Deploy: &reis.DeployConfig{
				ID: 2, Vectors: svData.Vectors[:svBase], Docs: svData.Docs[:svBase], DocSlotBytes: 256,
				Centroids: svCents, Assign: svAssign,
			}},
		} {
			if _, err := submit(cmd); err != nil {
				t.Fatal(err)
			}
		}
	}
	deployBoth(ref.Submit)
	nq := len(svData.Queries)
	cmdFor := func(qi int) reis.HostCommand {
		return reis.HostCommand{
			Opcode: reis.OpcodeIVFSearch, DBID: 2,
			Queries: [][]float32{svData.Queries[qi]}, K: 5, NProbe: 4,
		}
	}
	want := make([]reis.HostResponse, nq)
	for qi := range want {
		resp, err := ref.Submit(cmdFor(qi))
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = resp
	}

	hosts := make([]Host, 3)
	for i := range hosts {
		hosts[i] = newHost(t, 0, 1)
	}
	g, err := NewGroup(hosts, Config{QueueDepth: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	deployBoth(g.Submit)

	const workers, iters = 4, 30
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if w == 0 && it == 10 {
					g.Retire(1) // fail one replica mid-flight
				}
				if w == 0 && it == 20 {
					g.Readmit(1)
				}
				qi := (w*31 + it*7) % nq
				var resp reis.HostResponse
				for {
					var err error
					resp, err = g.Do(context.Background(), cmdFor(qi))
					if err == nil {
						break
					}
					if !errors.Is(err, reis.ErrQueueFull) {
						errc <- err
						return
					}
					runtime.Gosched() // saturated: retry like a client would
				}
				if !reflect.DeepEqual(resp.Results, want[qi].Results) ||
					!reflect.DeepEqual(resp.QueryStats, want[qi].QueryStats) {
					errc <- fmt.Errorf("worker %d iter %d: response differs from reference", w, it)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Routed != workers*iters {
		t.Fatalf("routed %d commands, want %d", st.Routed, workers*iters)
	}
}

// TestGroupFailoverAndRetirement drives the health machinery
// deterministically with uneven queue depths: the power-of-two-choices
// winner rejects (full depth-1 queue), the command fails over to the
// next-least-loaded replica, a rejection streak retires the replica,
// and draining its queue readmits it. With every queue full the group
// refuses with an error chain matching both ErrAllSaturated and
// reis.ErrQueueFull.
func TestGroupFailoverAndRetirement(t *testing.T) {
	hosts := []Host{newHost(t, 0, 1), newHost(t, 0, 1)}
	g, err := NewGroup(hosts, Config{
		FailStreak: 2, Seed: 1,
		QueueConfig: func(i int) reis.QueueConfig {
			if i == 0 {
				return reis.QueueConfig{Depth: 1}
			}
			return reis.QueueConfig{Depth: 4}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	deploy := reis.HostCommand{Opcode: reis.OpcodeDBDeploy, Deploy: &reis.DeployConfig{
		ID: 1, Vectors: svData.Vectors[:svBase], Docs: svData.Docs[:svBase], DocSlotBytes: 256,
	}}
	if _, err := g.Submit(deploy); err != nil {
		t.Fatal(err)
	}
	search := reis.HostCommand{Opcode: reis.OpcodeSearch, DBID: 1, Queries: svData.Queries[:1], K: 3}

	// Park completions to pin occupancy: replica 0 full at 1/1,
	// replica 1 at 2/4 — so replica 0 is the less-loaded p2c winner
	// but rejects every submission.
	park0, err := g.Queue(0).SubmitAsync(context.Background(), search)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := g.Queue(1).SubmitAsync(context.Background(), search); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := g.Do(context.Background(), search); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Failovers != 1 || st.Rejected != 1 || st.Replicas[0].Rejected != 1 {
		t.Fatalf("after first failover: %+v", st)
	}
	if _, err := g.Do(context.Background(), search); err != nil {
		t.Fatal(err)
	}
	st = g.Stats()
	if st.Retirements != 1 || !st.Replicas[0].Retired {
		t.Fatalf("streak of 2 did not retire replica 0: %+v", st)
	}

	// Retired replicas are skipped outright: no new rejections.
	if _, err := g.Do(context.Background(), search); err != nil {
		t.Fatal(err)
	}
	if st = g.Stats(); st.Replicas[0].Rejected != 2 {
		t.Fatalf("retired replica still probed: %+v", st)
	}

	// Draining replica 0's queue readmits it on the next route.
	if _, err := g.Queue(0).Wait(context.Background(), park0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Do(context.Background(), search); err != nil {
		t.Fatal(err)
	}
	st = g.Stats()
	if st.Readmissions != 1 || st.Replicas[0].Retired {
		t.Fatalf("drained replica not readmitted: %+v", st)
	}

	// Saturate every queue: the group refuses with the full chain.
	if _, err := g.Queue(0).SubmitAsync(context.Background(), search); err != nil {
		t.Fatal(err)
	}
	for g.Queue(1).Outstanding() < 4 {
		if _, err := g.Queue(1).SubmitAsync(context.Background(), search); err != nil {
			t.Fatal(err)
		}
	}
	_, err = g.Do(context.Background(), search)
	if !errors.Is(err, ErrAllSaturated) || !errors.Is(err, reis.ErrQueueFull) {
		t.Fatalf("saturated group returned %v, want ErrAllSaturated wrapping ErrQueueFull", err)
	}
}

// TestGroupBroadcastReachesRetired pins that retirement is a load
// signal only: a retired replica still applies every mutation, so its
// state never diverges and readmission needs no catch-up.
func TestGroupBroadcastReachesRetired(t *testing.T) {
	hosts := []Host{newHost(t, 0, 1), newHost(t, 0, 1)}
	g, err := NewGroup(hosts, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Submit(reis.HostCommand{Opcode: reis.OpcodeDBDeploy, Deploy: &reis.DeployConfig{
		ID: 1, Vectors: svData.Vectors[:svBase], Docs: svData.Docs[:svBase], DocSlotBytes: 256,
	}}); err != nil {
		t.Fatal(err)
	}
	g.Retire(1)
	if _, err := g.Submit(reis.HostCommand{Opcode: reis.OpcodeAppend, DBID: 1,
		Append: &reis.AppendConfig{Vectors: svData.Vectors[svBase:], Docs: svData.Docs[svBase:]}}); err != nil {
		t.Fatal(err)
	}
	probe := reis.HostCommand{Opcode: reis.OpcodeSearch, DBID: 1, Queries: svData.Queries, K: 10}
	r0, err := g.Host(0).Submit(probe)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := g.Host(1).Submit(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r0, r1) {
		t.Fatal("retired replica missed a broadcast mutation")
	}
}

// TestGroupBroadcastDivergence: a mutation that succeeds on one
// replica and fails on another (here: the database exists on only one
// host) must surface ErrDiverged, not silently return one side's
// answer.
func TestGroupBroadcastDivergence(t *testing.T) {
	e0, e1 := newHost(t, 0, 1), newHost(t, 0, 1)
	// Deploy db 1 on host 0 only, bypassing the group.
	if _, err := e0.Submit(reis.HostCommand{Opcode: reis.OpcodeDBDeploy, Deploy: &reis.DeployConfig{
		ID: 1, Vectors: svData.Vectors[:svBase], Docs: svData.Docs[:svBase], DocSlotBytes: 256,
	}}); err != nil {
		t.Fatal(err)
	}
	g, err := NewGroup([]Host{e0, e1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	_, err = g.Submit(reis.HostCommand{Opcode: reis.OpcodeDelete, DBID: 1,
		Del: &reis.DeleteConfig{IDs: []int{0}}})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("mixed broadcast outcome returned %v, want ErrDiverged", err)
	}
}

// flakyHost wraps a replica host, failing Submit with an injected
// error for selected opcodes a configured number of times (counted per
// opcode); every other command passes through.
type flakyHost struct {
	Host
	mu    sync.Mutex
	fails map[uint8]int
}

var errInjected = errors.New("injected replica fault")

func (f *flakyHost) Submit(cmd reis.HostCommand) (reis.HostResponse, error) {
	f.mu.Lock()
	if n := f.fails[cmd.Opcode]; n > 0 {
		f.fails[cmd.Opcode] = n - 1
		f.mu.Unlock()
		return reis.HostResponse{}, errInjected
	}
	f.mu.Unlock()
	return f.Host.Submit(cmd)
}

// deployFlatGroup deploys the flat base corpus (db 1) through the
// given submit surface.
func deployFlatGroup(t *testing.T, submit func(reis.HostCommand) (reis.HostResponse, error)) {
	t.Helper()
	if _, err := submit(reis.HostCommand{Opcode: reis.OpcodeDBDeploy, Deploy: &reis.DeployConfig{
		ID: 1, Vectors: svData.Vectors[:svBase], Docs: svData.Docs[:svBase], DocSlotBytes: 256,
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestBroadcastRollsForwardReplicaFailure: a mutation broadcast that
// fails on ONE replica (transiently) is no longer all-or-nothing — the
// group rolls the failed member forward by retrying it, the command
// succeeds, and every replica converges to the same state.
func TestBroadcastRollsForwardReplicaFailure(t *testing.T) {
	flaky := &flakyHost{Host: newHost(t, 0, 1), fails: map[uint8]int{
		reis.OpcodeAppend:  1,
		reis.OpcodeDelete:  1,
		reis.OpcodeCompact: 1,
	}}
	hosts := []Host{newHost(t, 0, 1), flaky, newHost(t, 0, 1)}
	g, err := NewGroup(hosts, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	deployFlatGroup(t, g.Submit)

	batch, batchDocs := svData.Vectors[svBase:], svData.Docs[svBase:]
	resp, err := g.Submit(reis.HostCommand{Opcode: reis.OpcodeAppend, DBID: 1,
		Append: &reis.AppendConfig{Vectors: batch, Docs: batchDocs}})
	if err != nil {
		t.Fatalf("append with one transiently failing replica: %v", err)
	}
	if len(resp.AppendedIDs) != len(batch) {
		t.Fatalf("append assigned %d ids, want %d", len(resp.AppendedIDs), len(batch))
	}
	if _, err := g.Submit(reis.HostCommand{Opcode: reis.OpcodeDelete, DBID: 1,
		Del: &reis.DeleteConfig{IDs: []int{3, resp.AppendedIDs[0]}}}); err != nil {
		t.Fatalf("delete with one transiently failing replica: %v", err)
	}
	if _, err := g.Submit(reis.HostCommand{Opcode: reis.OpcodeCompact, DBID: 1,
		Compact: &reis.CompactConfig{MinLiveRatio: 0.9}}); err != nil {
		t.Fatalf("compact with one transiently failing replica: %v", err)
	}

	// Convergence: every replica answers a direct probe identically.
	probe := reis.HostCommand{Opcode: reis.OpcodeSearch, DBID: 1, Queries: svData.Queries, K: 10}
	first, err := g.Host(0).Submit(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hosts); i++ {
		got, err := g.Host(i).Submit(probe)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Results, first.Results) {
			t.Fatalf("replica %d diverged after roll-forward", i)
		}
	}
}

// TestBroadcastDivergedAfterRetriesExhausted: a replica that keeps
// failing a mutation after every roll-forward retry leaves the group
// divergent, and the group says so with ErrDiverged instead of
// pretending the mutation half-applied cleanly.
func TestBroadcastDivergedAfterRetriesExhausted(t *testing.T) {
	flaky := &flakyHost{Host: newHost(t, 0, 1), fails: map[uint8]int{
		reis.OpcodeAppend: 1 << 20, // permanent
	}}
	hosts := []Host{newHost(t, 0, 1), flaky}
	g, err := NewGroup(hosts, Config{Seed: 11, BroadcastRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	deployFlatGroup(t, g.Submit)

	_, err = g.Submit(reis.HostCommand{Opcode: reis.OpcodeAppend, DBID: 1,
		Append: &reis.AppendConfig{Vectors: svData.Vectors[svBase:], Docs: svData.Docs[svBase:]}})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("permanently failing replica: error %v, want ErrDiverged", err)
	}
}

// TestBroadcastUnanimousFailureIsPlainError: when EVERY replica
// rejects a mutation identically, no state changed anywhere — that is
// not divergence, and the underlying error surfaces unwrapped.
func TestBroadcastUnanimousFailureIsPlainError(t *testing.T) {
	mk := func() Host {
		return &flakyHost{Host: newHost(t, 0, 1), fails: map[uint8]int{reis.OpcodeAppend: 1 << 20}}
	}
	hosts := []Host{mk(), mk(), mk()}
	g, err := NewGroup(hosts, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	deployFlatGroup(t, g.Submit)

	before, err := g.Do(context.Background(), reis.HostCommand{
		Opcode: reis.OpcodeSearch, DBID: 1, Queries: svData.Queries, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Submit(reis.HostCommand{Opcode: reis.OpcodeAppend, DBID: 1,
		Append: &reis.AppendConfig{Vectors: svData.Vectors[svBase:], Docs: svData.Docs[svBase:]}})
	if err == nil {
		t.Fatal("unanimous failure reported success")
	}
	if errors.Is(err, ErrDiverged) {
		t.Fatalf("unanimous failure misreported as divergence: %v", err)
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("unanimous failure hid the replica error: %v", err)
	}
	after, err := g.Do(context.Background(), reis.HostCommand{
		Opcode: reis.OpcodeSearch, DBID: 1, Queries: svData.Queries, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Results, before.Results) {
		t.Fatal("unanimous broadcast failure changed replica state")
	}
}
