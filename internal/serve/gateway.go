// The production gateway over a replica Group: a composable net/http
// middleware chain (request IDs, bearer auth, per-tenant token-bucket
// rate limiting, per-route metrics/latency), JSON search, NDJSON
// streaming batch search (per-query results flush as they complete),
// health and stats endpoints, backpressure with Retry-After, and
// graceful drain (stop admitting, finish in-flight, then Close the
// group).

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"reis/internal/reis"
)

// Middleware wraps an http.Handler — the composable unit of the
// gateway's chain.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares outermost-first: Chain(h, a, b) serves
// requests through a(b(h)).
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// GatewayConfig configures a Gateway. The zero value serves database 1
// with k=5, nprobe=6, no auth and no rate limit.
type GatewayConfig struct {
	// DBID is the database searches address (zero means 1).
	DBID int
	// DefaultK / NProbe are the per-query defaults when the request
	// omits k (zero means 5 and 6).
	DefaultK int
	NProbe   int
	// Queries is the held-out sample query set requests address by
	// index (?q=17) — the device is simulated, so there is no text
	// encoder in front.
	Queries [][]float32
	// AuthToken, when non-empty, requires "Authorization: Bearer
	// <token>" on every route except /healthz.
	AuthToken string
	// RateLimit is the per-tenant sustained request rate in req/s
	// (token bucket; zero disables limiting). RateBurst is the bucket
	// capacity (zero means max(1, ceil(RateLimit))).
	RateLimit float64
	RateBurst int
	// RetryAfter is the hint returned with 503/429 responses (zero
	// means 1s).
	RetryAfter time.Duration
	// Latency, when non-nil, renders a response's modeled device
	// latency for the search endpoints (e.g. one replica's timing
	// model).
	Latency func(reis.HostResponse) string
	// now is the clock the rate limiter reads (tests inject a fake).
	now func() time.Time
}

// routeMetrics accumulates one route's counters.
type routeMetrics struct {
	Requests uint64 `json:"requests"`
	// Status4xx / Status5xx count error responses; Rejected counts the
	// 503s caused by a saturated replica group (every Rejected is also
	// a Status5xx).
	Status4xx uint64 `json:"status_4xx"`
	Status5xx uint64 `json:"status_5xx"`
	Rejected  uint64 `json:"rejected"`
	// TotalNs / MaxNs aggregate handler latency.
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// Gateway is the HTTP front of a replica group.
type Gateway struct {
	group *Group
	cfg   GatewayConfig

	handler  http.Handler
	draining atomic.Bool
	inflight sync.WaitGroup
	reqSeq   atomic.Uint64

	mu      sync.Mutex
	routes  map[string]*routeMetrics
	buckets map[string]*bucket
	queries int64
	device  reis.QueryStats
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewGateway builds the gateway and its route table. The gateway does
// not take ownership of the group until Drain is called (which closes
// it after the last in-flight request).
func NewGateway(g *Group, cfg GatewayConfig) *Gateway {
	if cfg.DBID == 0 {
		cfg.DBID = 1
	}
	if cfg.DefaultK == 0 {
		cfg.DefaultK = 5
	}
	if cfg.NProbe == 0 {
		cfg.NProbe = 6
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.RateLimit > 0 && cfg.RateBurst == 0 {
		cfg.RateBurst = max(1, int(cfg.RateLimit+0.999))
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	gw := &Gateway{
		group:   g,
		cfg:     cfg,
		routes:  make(map[string]*routeMetrics),
		buckets: make(map[string]*bucket),
	}
	protected := func(route string, h http.HandlerFunc) http.Handler {
		return Chain(h, gw.requestID(), gw.metrics(route), gw.admit(), gw.auth(), gw.rateLimit())
	}
	mux := http.NewServeMux()
	mux.Handle("/search", protected("/search", gw.handleSearch))
	mux.Handle("/search/stream", protected("/search/stream", gw.handleStream))
	mux.Handle("/stats", protected("/stats", gw.handleStats))
	// Health stays reachable without auth/limits so probes see drain
	// state and replica health directly.
	mux.Handle("/healthz", Chain(http.HandlerFunc(gw.handleHealthz), gw.requestID(), gw.metrics("/healthz")))
	gw.handler = mux
	return gw
}

// Handler returns the gateway's root handler.
func (gw *Gateway) Handler() http.Handler { return gw.handler }

// Draining reports whether Drain has been initiated.
func (gw *Gateway) Draining() bool { return gw.draining.Load() }

// Drain gracefully shuts the gateway down: stop admitting requests
// (503 + Retry-After), wait for in-flight handlers bounded by ctx,
// then Close the replica group. Safe to call once the HTTP listener
// has stopped accepting or while it still runs.
func (gw *Gateway) Drain(ctx context.Context) error {
	gw.draining.Store(true)
	done := make(chan struct{})
	go func() {
		gw.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return gw.group.Close()
}

// statusWriter records the response status for the metrics middleware
// and forwards Flush so streaming handlers keep working underneath the
// chain.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID assigns every request an id (or propagates the client's)
// and echoes it on the response.
func (gw *Gateway) requestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get("X-Request-ID")
			if id == "" {
				id = fmt.Sprintf("req-%d", gw.reqSeq.Add(1))
			}
			w.Header().Set("X-Request-ID", id)
			next.ServeHTTP(w, r)
		})
	}
}

// metrics records per-route request counts, error classes and handler
// latency.
func (gw *Gateway) metrics(route string) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			elapsed := time.Since(start).Nanoseconds()
			gw.mu.Lock()
			m := gw.routes[route]
			if m == nil {
				m = &routeMetrics{}
				gw.routes[route] = m
			}
			m.Requests++
			switch {
			case sw.status >= 500:
				m.Status5xx++
			case sw.status >= 400:
				m.Status4xx++
			}
			m.TotalNs += elapsed
			if elapsed > m.MaxNs {
				m.MaxNs = elapsed
			}
			gw.mu.Unlock()
		})
	}
}

// admit gates admission on drain state and tracks in-flight handlers.
func (gw *Gateway) admit() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if gw.draining.Load() {
				gw.reject(w, "gateway draining")
				return
			}
			gw.inflight.Add(1)
			defer gw.inflight.Done()
			next.ServeHTTP(w, r)
		})
	}
}

// auth enforces the configured bearer token.
func (gw *Gateway) auth() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if gw.cfg.AuthToken != "" {
				got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
				if !ok || got != gw.cfg.AuthToken {
					http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// tenant identifies the caller for rate limiting: an explicit
// X-Tenant header, else the bearer token, else "anon".
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok {
		return tok
	}
	return "anon"
}

// rateLimit enforces the per-tenant token bucket.
func (gw *Gateway) rateLimit() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if gw.cfg.RateLimit > 0 && !gw.allow(tenant(r)) {
				w.Header().Set("Retry-After", retryAfterSeconds(gw.cfg.RetryAfter))
				http.Error(w, "tenant rate limit exceeded", http.StatusTooManyRequests)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// allow takes one token from the tenant's bucket, refilling it at
// RateLimit tokens/s up to RateBurst.
func (gw *Gateway) allow(tenant string) bool {
	now := gw.cfg.now()
	gw.mu.Lock()
	defer gw.mu.Unlock()
	b := gw.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: float64(gw.cfg.RateBurst), last: now}
		gw.buckets[tenant] = b
	}
	b.tokens = min(float64(gw.cfg.RateBurst), b.tokens+now.Sub(b.last).Seconds()*gw.cfg.RateLimit)
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1 — the header's granularity).
func retryAfterSeconds(d time.Duration) string {
	s := int(d.Round(time.Second) / time.Second)
	return strconv.Itoa(max(1, s))
}

// reject answers 503 with the Retry-After hint and counts the
// rejection against the route's metrics.
func (gw *Gateway) reject(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", retryAfterSeconds(gw.cfg.RetryAfter))
	http.Error(w, msg+", retry later", http.StatusServiceUnavailable)
}

// noteRejected bumps a route's saturation counter (the Retry-After
// 503s satellite metric).
func (gw *Gateway) noteRejected(route string) {
	gw.mu.Lock()
	m := gw.routes[route]
	if m == nil {
		m = &routeMetrics{}
		gw.routes[route] = m
	}
	m.Rejected++
	gw.mu.Unlock()
}

// parseQueryIndexes parses the ?q= operand: one or more sample-query
// indexes, comma-separated.
func (gw *Gateway) parseQueryIndexes(r *http.Request) ([]int, error) {
	raw := r.URL.Query().Get("q")
	if raw == "" {
		return nil, errors.New("q is required (sample-query index)")
	}
	var idxs []int
	for _, part := range strings.Split(raw, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || i < 0 || i >= len(gw.cfg.Queries) {
			return nil, fmt.Errorf("q must be sample-query indexes in [0, %d)", len(gw.cfg.Queries))
		}
		idxs = append(idxs, i)
	}
	return idxs, nil
}

// searchCmd builds the single-query IVF_Search command for sample
// query qi.
func (gw *Gateway) searchCmd(qi, k int) reis.HostCommand {
	if k <= 0 {
		k = gw.cfg.DefaultK
	}
	return reis.HostCommand{
		Opcode: reis.OpcodeIVFSearch, DBID: gw.cfg.DBID,
		Queries: [][]float32{gw.cfg.Queries[qi]}, K: k,
		Opt: reis.SearchOptions{NProbe: gw.cfg.NProbe},
	}
}

// hit is one retrieved document in a JSON response.
type hit struct {
	ID   int     `json:"id"`
	Dist float32 `json:"dist"`
	Doc  string  `json:"doc"`
}

// hits renders one query's results (document bodies truncated for
// transport).
func hits(results []reis.DocResult) []hit {
	out := make([]hit, 0, len(results))
	for _, res := range results {
		doc := res.Doc
		if len(doc) > 64 {
			doc = doc[:64]
		}
		out = append(out, hit{ID: res.ID, Dist: res.Dist, Doc: string(doc)})
	}
	return out
}

// record folds one completed search into the gateway's served-traffic
// totals.
func (gw *Gateway) record(st reis.QueryStats) {
	gw.mu.Lock()
	gw.queries++
	gw.device.Add(st)
	gw.mu.Unlock()
}

// handleSearch serves one sample query: GET /search?q=17&k=3.
func (gw *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	idxs, err := gw.parseQueryIndexes(r)
	if err != nil || len(idxs) != 1 {
		http.Error(w, "q must be a single sample-query index (use /search/stream for batches)", http.StatusBadRequest)
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	// One command per request, routed to the least-loaded replica and
	// bounded by the request's own context: a dropped connection
	// cancels the search, a saturated group is backpressure the client
	// can retry after the hinted delay.
	resp, err := gw.group.Do(r.Context(), gw.searchCmd(idxs[0], k))
	if errors.Is(err, reis.ErrQueueFull) {
		gw.noteRejected("/search")
		gw.reject(w, "retrieval queues saturated")
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	gw.record(resp.QueryStats[0])
	out := struct {
		Hits      []hit  `json:"hits"`
		DeviceLat string `json:"device_latency,omitempty"`
	}{Hits: hits(resp.Results[0])}
	if gw.cfg.Latency != nil {
		out.DeviceLat = gw.cfg.Latency(resp)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// streamLine is one NDJSON line of a batch response.
type streamLine struct {
	Q         int    `json:"q"`
	Hits      []hit  `json:"hits,omitempty"`
	DeviceLat string `json:"device_latency,omitempty"`
	Error     string `json:"error,omitempty"`
}

// handleStream serves a batch of sample queries as NDJSON, flushing
// each query's line as its replica completes it (completion order, not
// request order — every line carries its query index):
// GET /search/stream?q=1,2,3&k=5.
func (gw *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	idxs, err := gw.parseQueryIndexes(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	// Fan the batch out: each query is its own routed command, so the
	// group spreads the batch across replicas and the fastest results
	// stream back first.
	lines := make(chan streamLine, len(idxs))
	var wg sync.WaitGroup
	for _, qi := range idxs {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			resp, err := gw.group.Do(r.Context(), gw.searchCmd(qi, k))
			if err != nil {
				if errors.Is(err, reis.ErrQueueFull) {
					gw.noteRejected("/search/stream")
				}
				lines <- streamLine{Q: qi, Error: err.Error()}
				return
			}
			gw.record(resp.QueryStats[0])
			line := streamLine{Q: qi, Hits: hits(resp.Results[0])}
			if gw.cfg.Latency != nil {
				line.DeviceLat = gw.cfg.Latency(resp)
			}
			lines <- line
		}(qi)
	}
	go func() {
		wg.Wait()
		close(lines)
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for line := range lines {
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleStats reports served-traffic totals, per-route metrics, group
// routing stats and per-replica queue state.
func (gw *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	gw.mu.Lock()
	queries, device := gw.queries, gw.device
	routes := make(map[string]routeMetrics, len(gw.routes))
	for k, m := range gw.routes {
		routes[k] = *m
	}
	gw.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Queries int64                   `json:"queries"`
		Device  reis.QueryStats         `json:"device_totals"`
		Routes  map[string]routeMetrics `json:"routes"`
		Group   GroupStats              `json:"group"`
	}{queries, device, routes, gw.group.Stats()})
}

// handleHealthz is the liveness probe: 200 while serving, 503 when
// draining or when no replica is healthy.
func (gw *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if gw.draining.Load() || !gw.group.Ready() {
		gw.reject(w, "not serving")
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}
