package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reis/internal/reis"
)

// newTestGateway builds a gateway over a fresh single-replica group
// with the IVF test corpus deployed. Callers that don't Drain get the
// group closed at cleanup.
func newTestGateway(t *testing.T, cfg GatewayConfig, groupCfg Config) (*Gateway, *Group) {
	t.Helper()
	g, err := NewGroup([]Host{newHost(t, 0, 1)}, groupCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	if _, err := g.Submit(reis.HostCommand{Opcode: reis.OpcodeIVFDeploy, Deploy: &reis.DeployConfig{
		ID: 1, Vectors: svData.Vectors[:svBase], Docs: svData.Docs[:svBase], DocSlotBytes: 256,
		Centroids: svCents, Assign: svAssign,
	}}); err != nil {
		t.Fatal(err)
	}
	cfg.Queries = svData.Queries
	cfg.NProbe = 4
	return NewGateway(g, cfg), g
}

func get(gw *Gateway, target string, hdr map[string]string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	gw.Handler().ServeHTTP(w, r)
	return w
}

// TestGatewaySearch covers the happy path: JSON hits, a generated
// request id echoed on the response, and client-supplied ids
// propagated.
func TestGatewaySearch(t *testing.T) {
	gw, _ := newTestGateway(t, GatewayConfig{}, Config{})
	w := get(gw, "/search?q=0&k=3", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if id := w.Header().Get("X-Request-ID"); id == "" {
		t.Fatal("no X-Request-ID on response")
	}
	var out struct {
		Hits []struct {
			ID   int     `json:"id"`
			Dist float32 `json:"dist"`
		} `json:"hits"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Hits) != 3 {
		t.Fatalf("got %d hits, want 3", len(out.Hits))
	}
	w = get(gw, "/search?q=1", map[string]string{"X-Request-ID": "client-7"})
	if got := w.Header().Get("X-Request-ID"); got != "client-7" {
		t.Fatalf("request id %q not propagated", got)
	}
	if w = get(gw, "/search?q=notanumber", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad q: status %d, want 400", w.Code)
	}
}

// TestGatewayAuth: with a token configured, search routes require the
// bearer header while the health probe stays open.
func TestGatewayAuth(t *testing.T) {
	gw, _ := newTestGateway(t, GatewayConfig{AuthToken: "s3cret"}, Config{})
	if w := get(gw, "/search?q=0", nil); w.Code != http.StatusUnauthorized {
		t.Fatalf("no token: status %d, want 401", w.Code)
	}
	if w := get(gw, "/search?q=0", map[string]string{"Authorization": "Bearer wrong"}); w.Code != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", w.Code)
	}
	if w := get(gw, "/search?q=0", map[string]string{"Authorization": "Bearer s3cret"}); w.Code != http.StatusOK {
		t.Fatalf("right token: status %d, want 200", w.Code)
	}
	if w := get(gw, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz behind auth: status %d, want 200", w.Code)
	}
}

// TestGatewayRateLimit: per-tenant token buckets refill at the
// configured rate (driven by an injected clock) and 429 with a
// Retry-After hint when empty; tenants are isolated.
func TestGatewayRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	gw, _ := newTestGateway(t, GatewayConfig{
		RateLimit: 1, RateBurst: 2,
		now: func() time.Time { return now },
	}, Config{})
	tenantA := map[string]string{"X-Tenant": "a"}
	for i := 0; i < 2; i++ {
		if w := get(gw, "/search?q=0", tenantA); w.Code != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, w.Code)
		}
	}
	w := get(gw, "/search?q=0", tenantA)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over burst: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another tenant has its own bucket.
	if w := get(gw, "/search?q=0", map[string]string{"X-Tenant": "b"}); w.Code != http.StatusOK {
		t.Fatalf("tenant b throttled by tenant a: status %d", w.Code)
	}
	// One second refills one token.
	now = now.Add(time.Second)
	if w := get(gw, "/search?q=0", tenantA); w.Code != http.StatusOK {
		t.Fatalf("after refill: status %d", w.Code)
	}
}

// TestGatewayQueueFullRetryAfter pins the backpressure satellite: a
// saturated replica group surfaces as 503 with a Retry-After hint and
// the rejection is counted in the route metrics (the old ragserver
// returned a bare 503 with neither).
func TestGatewayQueueFullRetryAfter(t *testing.T) {
	gw, g := newTestGateway(t, GatewayConfig{RetryAfter: 2 * time.Second}, Config{QueueDepth: 1})
	// Park a command on the only replica's depth-1 queue: its
	// completion is never consumed, so the slot stays occupied and
	// every routed submission deterministically rejects.
	if _, err := g.Queue(0).SubmitAsync(context.Background(), reis.HostCommand{
		Opcode: reis.OpcodeIVFSearch, DBID: 1, Queries: svData.Queries[:1], K: 3, NProbe: 4,
	}); err != nil {
		t.Fatal(err)
	}
	w := get(gw, "/search?q=0", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", got)
	}
	sw := get(gw, "/stats", nil)
	var stats struct {
		Routes map[string]routeMetrics `json:"routes"`
		Group  GroupStats              `json:"group"`
	}
	if err := json.Unmarshal(sw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if m := stats.Routes["/search"]; m.Rejected != 1 || m.Status5xx != 1 {
		t.Fatalf("rejection not counted: %+v", m)
	}
	if stats.Group.Rejected == 0 {
		t.Fatalf("group rejection counter empty: %+v", stats.Group)
	}
}

// TestGatewayStream: a batch request streams NDJSON, one line per
// query as it completes, each carrying its query index.
func TestGatewayStream(t *testing.T) {
	gw, _ := newTestGateway(t, GatewayConfig{}, Config{})
	w := get(gw, "/search/stream?q=0,1,2&k=4", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if !w.Flushed {
		t.Fatal("stream never flushed")
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(strings.NewReader(w.Body.String()))
	for sc.Scan() {
		var line struct {
			Q     int    `json:"q"`
			Hits  []any  `json:"hits"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("query %d failed: %s", line.Q, line.Error)
		}
		if len(line.Hits) != 4 {
			t.Fatalf("query %d: %d hits, want 4", line.Q, len(line.Hits))
		}
		seen[line.Q] = true
	}
	if len(seen) != 3 || !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("streamed queries %v, want {0,1,2}", seen)
	}
}

// TestGatewayDrain: draining stops admission with 503 + Retry-After,
// flips the health probe, finishes in-flight work, and closes the
// replica group.
func TestGatewayDrain(t *testing.T) {
	gw, g := newTestGateway(t, GatewayConfig{}, Config{})
	if w := get(gw, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("pre-drain healthz: %d", w.Code)
	}
	if err := gw.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	w := get(gw, "/search?q=0", nil)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("post-drain search: status %d, Retry-After %q", w.Code, w.Header().Get("Retry-After"))
	}
	if w := get(gw, "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: %d, want 503", w.Code)
	}
	if _, err := g.Do(context.Background(), reis.HostCommand{
		Opcode: reis.OpcodeIVFSearch, DBID: 1, Queries: svData.Queries[:1], K: 3, NProbe: 4,
	}); err != ErrGroupClosed {
		t.Fatalf("group not closed after drain: %v", err)
	}
}
