// Package serve implements the replicated serving tier: a Group of N
// replicas — single-device engines or sharded routers — holding the
// same corpus, fronted by load-aware routing and a production HTTP
// gateway (gateway.go).
//
// Routing. Each search command goes to exactly one replica, chosen by
// power-of-two-choices over per-queue occupancy (two distinct replicas
// sampled, the one with fewer outstanding commands wins; with a single
// healthy replica the choice is degenerate). Routing is free to be
// random because replicas are bit-identical by construction: any
// replica's answer is THE answer, so the group's results are
// bit-identical to a single replica no matter how commands are spread
// (pinned by TestReplicaGroupMatchesSingleReplica).
//
// Failover and health. When the chosen replica's queue rejects with
// ErrQueueFull, the command fails over through the remaining replicas
// in ascending-occupancy order. A replica that rejects FailStreak
// consecutive submissions is retired — taken out of the routing set —
// and readmitted once its queue drains below ReadmitBelow of its
// depth. Retirement is purely a load signal: a retired replica still
// receives every mutation broadcast, so its data never diverges and
// readmission needs no catch-up.
//
// Mutation barrier. Deploys and mutations (Append/Delete/Compact)
// broadcast to ALL replicas under a write barrier (an RWMutex searches
// hold in read mode for their whole submit-to-completion window): new
// searches stop admitting, in-flight ones finish, then every replica
// applies the mutation through its host's blocking submit path and the
// responses are checked bit-identical before the barrier lifts.
// Replicas therefore observe the same totally-ordered mutation history
// and never diverge.
package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"reis/internal/reis"
	"reis/internal/xrand"
)

// Host is the engine surface one replica exposes to the group —
// satisfied by both *reis.Engine and *reis.ShardedEngine.
type Host interface {
	// Submit executes one command synchronously (blocking admission on
	// the host's built-in queue pair) — the broadcast path mutations
	// take.
	Submit(reis.HostCommand) (reis.HostResponse, error)
	// NewQueue creates the replica's routed queue pair.
	NewQueue(reis.QueueConfig) (*reis.Queue, error)
	// Ready is the health probe: false once the host is closed.
	Ready() bool
	Close() error
}

var (
	// ErrNoReplicas: NewGroup needs at least one host.
	ErrNoReplicas = errors.New("serve: replica group needs at least one host")
	// ErrAllSaturated: every replica (healthy and retired) rejected the
	// command with ErrQueueFull; the wrapped error chain also matches
	// reis.ErrQueueFull so callers keep their existing backpressure
	// handling.
	ErrAllSaturated = errors.New("serve: every replica queue is full")
	// ErrDiverged: a mutation broadcast produced non-identical
	// responses across replicas — the determinism contract is broken
	// (or the hosts were not built over the same corpus).
	ErrDiverged = errors.New("serve: replica responses diverged")
	// ErrGroupClosed: the group has been Closed.
	ErrGroupClosed = errors.New("serve: group closed")
)

// Config tunes a replica group. The zero value is usable.
type Config struct {
	// QueueDepth is the per-replica routed queue depth (zero means
	// reis.DefaultQueueDepth).
	QueueDepth int
	// QueueConfig, when non-nil, builds replica i's queue configuration
	// instead of the uniform {Depth: QueueDepth} — the hook experiments
	// use to slow one replica with QoS weights.
	QueueConfig func(i int) reis.QueueConfig
	// FailStreak is the consecutive-ErrQueueFull count that retires a
	// replica (zero means 3).
	FailStreak int
	// ReadmitBelow is the occupancy fraction at or below which a
	// retired replica rejoins the routing set (zero means 0.5).
	ReadmitBelow float64
	// Seed seeds the routing RNG (zero means 1). Routing randomness
	// never affects results — only which replica does the work.
	Seed uint64
	// BroadcastRetries bounds the roll-forward attempts per replica when
	// a mutation broadcast fails on some members but succeeds on others:
	// each failed member is retried up to this many times before the
	// group declares ErrDiverged (zero means 3). Mutations validate
	// before applying any state, so a failed attempt leaves the replica
	// untouched and a retry is safe.
	BroadcastRetries int
}

// ReplicaStats is one replica's routing view in a stats snapshot.
type ReplicaStats struct {
	Routed      uint64 `json:"routed"`
	Rejected    uint64 `json:"rejected"`
	Retired     bool   `json:"retired"`
	Ready       bool   `json:"ready"`
	Outstanding int    `json:"outstanding"`
	Depth       int    `json:"depth"`
}

// GroupStats is a snapshot of the group's routing counters.
type GroupStats struct {
	// Routed counts search commands accepted by some replica;
	// Failovers counts those accepted only after at least one
	// rejection; Rejected counts per-replica ErrQueueFull rejections
	// (one command may contribute several).
	Routed    uint64 `json:"routed"`
	Failovers uint64 `json:"failovers"`
	Rejected  uint64 `json:"rejected"`
	// Broadcasts counts mutation/deploy commands applied to every
	// replica under the barrier.
	Broadcasts uint64 `json:"broadcasts"`
	// Retirements / Readmissions count health transitions.
	Retirements  uint64         `json:"retirements"`
	Readmissions uint64         `json:"readmissions"`
	Replicas     []ReplicaStats `json:"replicas"`
}

// replica is one member host plus the group's routed queue into it.
type replica struct {
	host Host
	q    *reis.Queue

	// Health/routing state, guarded by Group.mu.
	retired bool
	streak  int
	routed  uint64
	rejects uint64
}

// Group is a replica group: N hosts over the same corpus behind one
// routing front. All methods are safe for concurrent use.
type Group struct {
	cfg  Config
	reps []*replica

	// barrier orders searches against mutations: searches hold the
	// read side from submission through completion; broadcasts hold
	// the write side while every replica applies the mutation.
	barrier sync.RWMutex

	mu     sync.Mutex // routing + health state, RNG, counters
	rng    *xrand.RNG
	stats  GroupStats
	closed bool
}

// NewGroup builds a replica group over hosts, creating one routed
// queue pair per replica. The group takes ownership: Close closes the
// queues and the hosts. The caller must have built every host over
// identical data (or deploy through the group, whose deploy commands
// broadcast).
func NewGroup(hosts []Host, cfg Config) (*Group, error) {
	if len(hosts) == 0 {
		return nil, ErrNoReplicas
	}
	if cfg.FailStreak <= 0 {
		cfg.FailStreak = 3
	}
	if cfg.ReadmitBelow <= 0 {
		cfg.ReadmitBelow = 0.5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BroadcastRetries <= 0 {
		cfg.BroadcastRetries = 3
	}
	g := &Group{cfg: cfg, rng: xrand.New(cfg.Seed)}
	for i, h := range hosts {
		qc := reis.QueueConfig{Depth: cfg.QueueDepth}
		if cfg.QueueConfig != nil {
			qc = cfg.QueueConfig(i)
		}
		q, err := h.NewQueue(qc)
		if err != nil {
			for _, r := range g.reps {
				r.q.Close()
			}
			return nil, fmt.Errorf("serve: replica %d queue: %w", i, err)
		}
		g.reps = append(g.reps, &replica{host: h, q: q})
	}
	return g, nil
}

// Replicas returns the group size.
func (g *Group) Replicas() int { return len(g.reps) }

// Queue exposes replica i's routed queue pair (tests and load
// injection).
func (g *Group) Queue(i int) *reis.Queue { return g.reps[i].q }

// Host exposes replica i's host (tests and tools; e.g. costing a
// response with one replica's timing model).
func (g *Group) Host(i int) Host { return g.reps[i].host }

// Ready reports whether at least one replica host is healthy — the
// group-level liveness probe behind the gateway's health endpoint.
func (g *Group) Ready() bool {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return false
	}
	g.mu.Unlock()
	for _, r := range g.reps {
		if r.host.Ready() {
			return true
		}
	}
	return false
}

// Retire removes replica i from the routing set (manual override; the
// router also retires automatically on a rejection streak). In-flight
// commands on the replica complete normally, and the replica keeps
// receiving mutation broadcasts.
func (g *Group) Retire(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.reps[i].retired {
		g.reps[i].retired = true
		g.stats.Retirements++
	}
}

// Readmit returns replica i to the routing set (manual override; the
// router also readmits automatically once the queue drains).
func (g *Group) Readmit(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.reps[i].retired {
		g.reps[i].retired = false
		g.reps[i].streak = 0
		g.stats.Readmissions++
	}
}

// Stats returns a snapshot of the routing counters and per-replica
// state.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := g.stats
	out.Replicas = make([]ReplicaStats, len(g.reps))
	for i, r := range g.reps {
		out.Replicas[i] = ReplicaStats{
			Routed: r.routed, Rejected: r.rejects, Retired: r.retired,
			Ready: r.host.Ready(), Outstanding: r.q.Outstanding(), Depth: r.q.Depth(),
		}
	}
	return out
}

// Close closes every replica's routed queue and host. Idempotent.
func (g *Group) Close() error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	for _, r := range g.reps {
		r.q.Close()
		r.host.Close()
	}
	return nil
}

// isBroadcastOp reports whether the opcode mutates replica state and
// must be applied to every replica (deploys included: a group-deployed
// database exists on all members).
func isBroadcastOp(op uint8) bool {
	switch op {
	case reis.OpcodeDBDeploy, reis.OpcodeIVFDeploy,
		reis.OpcodeAppend, reis.OpcodeDelete, reis.OpcodeCompact:
		return true
	}
	return false
}

// Submit executes one command through the group synchronously:
// searches route to one replica, mutations broadcast to all.
func (g *Group) Submit(cmd reis.HostCommand) (reis.HostResponse, error) {
	return g.Do(context.Background(), cmd)
}

// Do executes one command through the group under ctx. Search results
// are bit-identical regardless of which replica serves them; mutation
// responses are verified identical across replicas before returning.
func (g *Group) Do(ctx context.Context, cmd reis.HostCommand) (reis.HostResponse, error) {
	if isBroadcastOp(cmd.Opcode) {
		return g.broadcast(ctx, cmd)
	}
	g.barrier.RLock()
	defer g.barrier.RUnlock()
	order, err := g.route()
	if err != nil {
		return reis.HostResponse{}, err
	}
	var lastErr error
	for hop, i := range order {
		r := g.reps[i]
		id, err := r.q.SubmitAsync(ctx, cmd)
		if err == nil {
			g.noteAccept(i, hop > 0)
			return r.q.Wait(ctx, id)
		}
		if !errors.Is(err, reis.ErrQueueFull) {
			return reis.HostResponse{}, err
		}
		g.noteReject(i)
		lastErr = err
	}
	return reis.HostResponse{}, fmt.Errorf("%w: %w", ErrAllSaturated, lastErr)
}

// route returns replica indexes in submission-preference order: the
// power-of-two-choices winner among healthy replicas first, then the
// remaining healthy replicas by ascending occupancy (the failover
// chain), then retired replicas by ascending occupancy (last resort —
// a command is only refused when literally every queue is full). It
// also runs the readmission check: a retired replica whose queue has
// drained to ReadmitBelow of its depth rejoins the healthy set.
func (g *Group) route() ([]int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrGroupClosed
	}
	type cand struct {
		i, out  int
		retired bool
	}
	cands := make([]cand, len(g.reps))
	healthy := 0
	for i, r := range g.reps {
		out := r.q.Outstanding()
		if r.retired && float64(out) <= g.cfg.ReadmitBelow*float64(r.q.Depth()) {
			r.retired = false
			r.streak = 0
			g.stats.Readmissions++
		}
		cands[i] = cand{i: i, out: out, retired: r.retired}
		if !r.retired {
			healthy++
		}
	}
	// Ascending occupancy, healthy before retired, index breaking ties
	// (deterministic given the occupancy snapshot).
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.retired != cb.retired {
			return !ca.retired
		}
		if ca.out != cb.out {
			return ca.out < cb.out
		}
		return ca.i < cb.i
	})
	order := make([]int, len(cands))
	for i, c := range cands {
		order[i] = c.i
	}
	if healthy >= 2 {
		// Power-of-two-choices over the healthy prefix: sample two
		// distinct replicas, promote the less loaded of the pair to the
		// front. Cheaper than a full scan at scale, and it keeps a
		// mildly stale occupancy signal from herding every command onto
		// one replica.
		a := g.rng.Intn(healthy)
		b := g.rng.Intn(healthy - 1)
		if b >= a {
			b++
		}
		if cands[b].out < cands[a].out || (cands[b].out == cands[a].out && cands[b].i < cands[a].i) {
			a = b
		}
		order[0], order[a] = order[a], order[0]
	}
	return order, nil
}

// noteAccept records a successful submission on replica i.
func (g *Group) noteAccept(i int, failover bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.reps[i]
	r.streak = 0
	r.routed++
	g.stats.Routed++
	if failover {
		g.stats.Failovers++
	}
}

// noteReject records an ErrQueueFull rejection on replica i and
// retires it when the consecutive-rejection streak reaches the
// configured threshold.
func (g *Group) noteReject(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.reps[i]
	r.rejects++
	r.streak++
	g.stats.Rejected++
	if !r.retired && r.streak >= g.cfg.FailStreak {
		r.retired = true
		g.stats.Retirements++
	}
}

// broadcast applies one mutation/deploy command to every replica under
// the write barrier, waits for all of them (the barrier proper), and
// verifies the responses are bit-identical before lifting it. Retired
// replicas are included — retirement is a load signal, not a data
// state, so readmission never needs catch-up.
//
// A mixed first round — some replicas applied the mutation, others
// failed — is NOT immediately divergence: the group rolls forward,
// retrying each failed member up to Config.BroadcastRetries times (a
// failed mutation validates before touching state, so the retry reruns
// the identical command on unchanged state). Only a member that stays
// failed after the retry budget, or a member whose response differs
// from the others', diverges the group. A unanimous failure is a plain
// command error: no replica changed state and the group is still
// consistent.
func (g *Group) broadcast(ctx context.Context, cmd reis.HostCommand) (reis.HostResponse, error) {
	if err := ctx.Err(); err != nil {
		return reis.HostResponse{}, err
	}
	g.barrier.Lock()
	defer g.barrier.Unlock()
	g.mu.Lock()
	closed := g.closed
	g.mu.Unlock()
	if closed {
		return reis.HostResponse{}, ErrGroupClosed
	}
	n := len(g.reps)
	resps := make([]reis.HostResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, r := range g.reps {
		wg.Add(1)
		go func(i int, h Host) {
			defer wg.Done()
			// The host's blocking submit path: a mutation is never
			// dropped because a routed queue is momentarily full.
			resps[i], errs[i] = h.Submit(cmd)
		}(i, r.host)
	}
	wg.Wait()
	failed := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			failed++
		}
	}
	if failed == n {
		// No replica changed state; the command itself failed.
		return reis.HostResponse{}, errs[0]
	}
	if failed > 0 {
		// Roll forward: the succeeded majority has already applied the
		// mutation, so the only way back to a consistent group is to
		// drive the failed members to the same state.
		for i := 0; i < n; i++ {
			for attempt := 0; errs[i] != nil && attempt < g.cfg.BroadcastRetries; attempt++ {
				resps[i], errs[i] = g.reps[i].host.Submit(cmd)
			}
			if errs[i] != nil {
				return reis.HostResponse{}, fmt.Errorf(
					"%w: replica %d still failed after %d roll-forward retries (%v)",
					ErrDiverged, i, g.cfg.BroadcastRetries, errs[i])
			}
		}
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(resps[i], resps[0]) {
			return reis.HostResponse{}, fmt.Errorf("%w: opcode %#x response differs between replica 0 and %d", ErrDiverged, cmd.Opcode, i)
		}
	}
	g.mu.Lock()
	g.stats.Broadcasts++
	g.mu.Unlock()
	return resps[0], nil
}
