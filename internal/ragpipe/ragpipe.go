// Package ragpipe models the end-to-end RAG pipeline of Figs 2-3 and
// Table 4: encoding-model loading, query encoding, dataset loading,
// search, generation-model loading, and generation.
//
// The model-related stage constants are taken from the paper's own
// measurements (all-roberta-large-v1 for encoding, Llama 3.2 1B for
// generation on an A100; Table 4 columns give the stage seconds), and
// the dataset-loading and search stages come from this repository's
// host and REIS models, so the pipeline recomposes rather than merely
// restates the paper's breakdown.
package ragpipe

import "reis/internal/host"

// StageSeconds is one pipeline breakdown (all values in seconds).
type StageSeconds struct {
	EmbModelLoad float64
	Encode       float64
	DatasetLoad  float64
	Search       float64
	GenModelLoad float64
	Generation   float64
}

// Model-stage constants reconstructed from Table 4 (seconds).
// E.g. CPU+BQ on HotpotQA: 23.79 s total with 2.61% embedding-model
// load = 0.62 s, 0.46% encode = 0.11 s, 3.32% generation-model load =
// 0.79 s, 73% generation = 17.37 s; the wiki_en/NQ column yields the
// same absolute values, confirming they are dataset-independent.
const (
	EmbModelLoadSeconds = 0.62
	EncodeSeconds       = 0.11
	GenModelLoadSeconds = 0.79
	GenerationSeconds   = 17.3
)

// Total sums the stages.
func (s StageSeconds) Total() float64 {
	return s.EmbModelLoad + s.Encode + s.DatasetLoad + s.Search + s.GenModelLoad + s.Generation
}

// Fractions returns each stage as a fraction of the total.
func (s StageSeconds) Fractions() StageSeconds {
	t := s.Total()
	if t == 0 {
		return StageSeconds{}
	}
	return StageSeconds{
		EmbModelLoad: s.EmbModelLoad / t,
		Encode:       s.Encode / t,
		DatasetLoad:  s.DatasetLoad / t,
		Search:       s.Search / t,
		GenModelLoad: s.GenModelLoad / t,
		Generation:   s.Generation / t,
	}
}

// CPUPipeline assembles the breakdown for a CPU-based pipeline over a
// dataset of n entries with the given embedding dimensionality and
// document chunk size. bq selects the Fig 3 (binary-quantized)
// variant; searchSeconds is the measured/modelled search stage.
func CPUPipeline(b *host.Baseline, n, dim, docBytes int, bq bool, searchSeconds float64) StageSeconds {
	var bytes int64
	if bq {
		bytes = host.DatasetBytesBQ(n, dim, docBytes)
	} else {
		bytes = host.DatasetBytesF32(n, dim, docBytes)
	}
	return StageSeconds{
		EmbModelLoad: EmbModelLoadSeconds,
		Encode:       EncodeSeconds,
		DatasetLoad:  b.LoadSeconds(bytes, bq),
		Search:       searchSeconds,
		GenModelLoad: GenModelLoadSeconds,
		Generation:   GenerationSeconds,
	}
}

// REISPipeline assembles the breakdown when retrieval runs in storage:
// no dataset-loading stage; searchSeconds covers search and document
// retrieval (Table 4's "Search (and retrieval for REIS)").
func REISPipeline(searchSeconds float64) StageSeconds {
	return StageSeconds{
		EmbModelLoad: EmbModelLoadSeconds,
		Encode:       EncodeSeconds,
		DatasetLoad:  0,
		Search:       searchSeconds,
		GenModelLoad: GenModelLoadSeconds,
		Generation:   GenerationSeconds,
	}
}
