package ragpipe

import (
	"math"
	"testing"

	"reis/internal/host"
)

func baseline() *host.Baseline { return host.NewBaseline(host.CPUReal()) }

func TestFig2ShapeDatasetLoadingDominates(t *testing.T) {
	// Fig 2: at full wiki_en scale (41.5M entries, FP32 flat index)
	// dataset loading must account for ~84% of the pipeline.
	b := baseline()
	s := CPUPipeline(b, 41_488_110, 1024, 1024, false, 1.0)
	f := s.Fractions()
	if f.DatasetLoad < 0.70 || f.DatasetLoad > 0.95 {
		t.Fatalf("wiki_en dataset-loading fraction = %.2f, paper reports 0.84", f.DatasetLoad)
	}
	t.Logf("wiki_en flat: load %.1f%% of %.1fs (paper: 84%% of 172.8s)", 100*f.DatasetLoad, s.Total())
}

func TestFig2SmallerDatasetSmallerFraction(t *testing.T) {
	// HotpotQA (5.3M) must show a smaller loading fraction (paper: 46%).
	b := baseline()
	hq := CPUPipeline(b, 5_233_329, 1024, 1024, false, 0.3).Fractions()
	we := CPUPipeline(b, 41_488_110, 1024, 1024, false, 1.0).Fractions()
	if hq.DatasetLoad >= we.DatasetLoad {
		t.Fatalf("HotpotQA load fraction %.2f >= wiki_en %.2f", hq.DatasetLoad, we.DatasetLoad)
	}
	if hq.DatasetLoad < 0.25 || hq.DatasetLoad > 0.70 {
		t.Fatalf("HotpotQA loading fraction = %.2f, paper reports 0.46", hq.DatasetLoad)
	}
}

func TestFig3BQReducesButKeepsBottleneck(t *testing.T) {
	// Fig 3: BQ cuts loading, but wiki_en remains loading-bound (67%).
	b := baseline()
	flat := CPUPipeline(b, 41_488_110, 1024, 1024, false, 1.0)
	bq := CPUPipeline(b, 41_488_110, 1024, 1024, true, 1.0)
	if bq.DatasetLoad >= flat.DatasetLoad {
		t.Fatal("BQ did not reduce loading")
	}
	f := bq.Fractions()
	if f.DatasetLoad < 0.5 {
		t.Fatalf("wiki_en BQ loading fraction = %.2f, paper reports 0.67", f.DatasetLoad)
	}
	t.Logf("wiki_en BQ: load %.1f%% of %.1fs (paper: 67.3%% of 61.69s)", 100*f.DatasetLoad, bq.Total())
}

func TestTable4REISEliminatesLoading(t *testing.T) {
	r := REISPipeline(0.004)
	if r.DatasetLoad != 0 {
		t.Fatal("REIS pipeline has a loading stage")
	}
	f := r.Fractions()
	// Table 4: generation becomes ~92% of the REIS pipeline.
	if f.Generation < 0.85 {
		t.Fatalf("generation fraction = %.2f, paper reports 0.92", f.Generation)
	}
	if math.Abs(r.Total()-18.97) > 1.5 {
		t.Fatalf("REIS end-to-end = %.2fs, paper reports 18.97s", r.Total())
	}
}

func TestTable4EndToEndSpeedups(t *testing.T) {
	// Paper: REIS reduces end-to-end latency 1.25x on HotpotQA and
	// 3.24x on NQ/wiki_en-class datasets versus CPU+BQ.
	b := baseline()
	reis := REISPipeline(0.01).Total()
	hotpot := CPUPipeline(b, 5_233_329, 1024, 1024, true, 0.07).Total()
	wiki := CPUPipeline(b, 41_488_110, 1024, 1024, true, 1.23).Total()
	sHot := hotpot / reis
	sWiki := wiki / reis
	if sHot < 1.05 || sHot > 2.0 {
		t.Fatalf("HotpotQA end-to-end speedup %.2f, paper 1.25", sHot)
	}
	if sWiki < 2.0 || sWiki > 5.0 {
		t.Fatalf("wiki-scale end-to-end speedup %.2f, paper 3.24", sWiki)
	}
	t.Logf("end-to-end speedups: HotpotQA %.2fx (paper 1.25x), wiki %.2fx (paper 3.24x)", sHot, sWiki)
}

func TestFractionsSumToOne(t *testing.T) {
	b := baseline()
	s := CPUPipeline(b, 1_000_000, 1024, 1024, true, 0.5)
	f := s.Fractions()
	sum := f.EmbModelLoad + f.Encode + f.DatasetLoad + f.Search + f.GenModelLoad + f.Generation
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestFractionsZeroTotal(t *testing.T) {
	var s StageSeconds
	if s.Fractions() != (StageSeconds{}) {
		t.Fatal("zero total should give zero fractions")
	}
}
