// Package host models the conventional CPU-based retrieval baselines
// of the paper's evaluation (Table 3 "CPU-Real", plus the No-I/O and
// CPU+BQ variants).
//
// The baseline has two components:
//
//   - I/O: loading the vector database from the SSD into host DRAM,
//     modeled as dataset bytes over the effective load bandwidth. This
//     is the bottleneck the paper identifies (Figs 2-3).
//   - Compute: the distance-scan kernels. Per-core kernel rates are
//     measured at package init on the machine running the experiments
//     (the same way the paper measures its baseline on real hardware)
//     and scaled to the configured core count with a parallel
//     efficiency factor.
package host

import (
	"sync"
	"time"

	"reis/internal/vecmath"
	"reis/internal/xrand"
)

// CPUConfig describes the baseline server (Table 3: 2-socket AMD EPYC
// 9554, 128 physical / 256 logical cores, 1.5 TB DDR4, PM9A3 SSD).
type CPUConfig struct {
	Name  string
	Cores int
	// Efficiency is the parallel scaling efficiency of the scan
	// kernels across all cores (memory-bandwidth bound).
	Efficiency float64
	// ActiveWatts is the average active power of CPU + DRAM. The
	// paper reports the SSD draws 29.7x less power than the CPU
	// baseline on average; with the ~12 W SSD that puts the baseline
	// at ~356 W.
	ActiveWatts float64
	// MemBandwidth caps scan throughput: a distance scan streams the
	// candidate embeddings from DRAM, so it can never exceed the
	// aggregate memory bandwidth (2-socket DDR4-3200, 8 channels each:
	// ~400 GB/s).
	MemBandwidth float64
	// LoadBandwidth is the effective dataset-load rate (bytes/s)
	// including deserialization. Derived from the paper's own
	// breakdowns: ~1.5 GB/s for FP32 flat indexes, ~2.3 GB/s for
	// BQ+INT8 data on the PM9A3.
	LoadBandwidthF32 float64
	LoadBandwidthBQ  float64
}

// CPUReal returns the paper's baseline configuration.
func CPUReal() CPUConfig {
	return CPUConfig{
		Name:             "CPU-Real",
		Cores:            256,
		Efficiency:       0.55,
		ActiveWatts:      356,
		MemBandwidth:     400e9,
		LoadBandwidthF32: 1.5e9,
		LoadBandwidthBQ:  2.3e9,
	}
}

// Calibration holds measured single-core kernel rates.
type Calibration struct {
	F32NsPerDim      float64 // L2 over float32, per dimension
	HammingNsPerWord float64 // XOR+popcount per uint64 word
	Int8NsPerDim     float64 // L2 over int8, per dimension
}

var (
	calOnce sync.Once
	cal     Calibration
)

// Calibrate measures the scan kernels on this machine once and caches
// the result.
func Calibrate() Calibration {
	calOnce.Do(func() {
		cal = measure()
	})
	return cal
}

func measure() Calibration {
	const dim = 1024
	rng := xrand.New(0xca1)
	a := make([]float32, dim)
	b := make([]float32, dim)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	qa := vecmath.BinaryQuantize(a, nil)
	qb := vecmath.BinaryQuantize(b, nil)
	p := vecmath.Int8Params{Scale: 0.01}
	ia := p.Int8Quantize(a, nil)
	ib := p.Int8Quantize(b, nil)

	var c Calibration
	var sinkF float32
	var sinkI int
	var sink8 int32

	iters := 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		sinkF += vecmath.L2Squared(a, b)
	}
	c.F32NsPerDim = float64(time.Since(start).Nanoseconds()) / float64(iters*dim)

	start = time.Now()
	for i := 0; i < iters; i++ {
		sinkI += vecmath.Hamming(qa, qb)
	}
	c.HammingNsPerWord = float64(time.Since(start).Nanoseconds()) / float64(iters*len(qa))

	start = time.Now()
	for i := 0; i < iters; i++ {
		sink8 += vecmath.L2SquaredInt8(ia, ib)
	}
	c.Int8NsPerDim = float64(time.Since(start).Nanoseconds()) / float64(iters*dim)

	// Keep the measurements from being optimized away; also guard
	// against clock anomalies returning zero.
	if sinkF == 0 && sinkI == 0 && sink8 == 0 {
		c.F32NsPerDim += 1e-9
	}
	const floor = 0.01
	if c.F32NsPerDim < floor {
		c.F32NsPerDim = floor
	}
	if c.HammingNsPerWord < floor {
		c.HammingNsPerWord = floor
	}
	if c.Int8NsPerDim < floor {
		c.Int8NsPerDim = floor
	}
	return c
}

// Baseline evaluates retrieval cost on a CPU configuration.
type Baseline struct {
	CPU CPUConfig
	Cal Calibration
	// NoIO removes the dataset-loading term — the paper's "No-I/O"
	// comparison point that isolates pure compute.
	NoIO bool
}

// NewBaseline builds a baseline with machine-calibrated kernels.
func NewBaseline(cpu CPUConfig) *Baseline {
	return &Baseline{CPU: cpu, Cal: Calibrate()}
}

// DatasetBytesF32 returns the bytes loaded for a flat FP32 database
// with documents.
func DatasetBytesF32(n, dim, docBytes int) int64 {
	return int64(n) * int64(4*dim+docBytes)
}

// DatasetBytesBQ returns the bytes loaded for a BQ database: packed
// binary codes, INT8 rerank copies, and documents.
func DatasetBytesBQ(n, dim, docBytes int) int64 {
	return int64(n) * int64(dim/8+dim+docBytes)
}

// LoadSeconds returns the dataset-load time for the given byte count.
func (b *Baseline) LoadSeconds(bytes int64, bq bool) float64 {
	if b.NoIO {
		return 0
	}
	bw := b.CPU.LoadBandwidthF32
	if bq {
		bw = b.CPU.LoadBandwidthBQ
	}
	return float64(bytes) / bw
}

// aggregate returns the whole-system kernel rate divisor.
func (b *Baseline) parallelism() float64 {
	return float64(b.CPU.Cores) * b.CPU.Efficiency
}

// ScanSecondsF32 returns per-query time for an exact float32 scan of
// `candidates` vectors of the given dimensionality: the larger of the
// compute time and the DRAM streaming time.
func (b *Baseline) ScanSecondsF32(candidates, dim int) float64 {
	ns := float64(candidates) * float64(dim) * b.Cal.F32NsPerDim
	compute := ns / b.parallelism() / 1e9
	stream := float64(candidates) * float64(4*dim) / b.CPU.MemBandwidth
	return maxF(compute, stream)
}

// ScanSecondsBQ returns per-query time for a Hamming scan plus INT8
// reranking of rerank candidates, bounded by DRAM streaming bandwidth.
func (b *Baseline) ScanSecondsBQ(candidates, dim, rerank int) float64 {
	words := float64(vecmath.WordsPerVector(dim))
	ns := float64(candidates)*words*b.Cal.HammingNsPerWord +
		float64(rerank)*float64(dim)*b.Cal.Int8NsPerDim
	compute := ns / b.parallelism() / 1e9
	stream := (float64(candidates)*float64(dim/8) + float64(rerank)*float64(dim)) / b.CPU.MemBandwidth
	return maxF(compute, stream)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// QPS combines loading (amortized over the batch) and per-query search
// time into the throughput metric of Fig 7.
func (b *Baseline) QPS(batch int, loadSeconds, perQuerySearchSeconds float64) float64 {
	total := loadSeconds + float64(batch)*perQuerySearchSeconds
	if total <= 0 {
		return 0
	}
	return float64(batch) / total
}

// EnergyJ returns the energy for a span of wall time at active power.
func (b *Baseline) EnergyJ(seconds float64) float64 {
	return seconds * b.CPU.ActiveWatts
}
