package host

import "testing"

func TestCalibrationSane(t *testing.T) {
	c := Calibrate()
	// Per-dim float32 L2 on a modern core is well under 10ns; above
	// that means the measurement loop broke.
	if c.F32NsPerDim <= 0 || c.F32NsPerDim > 50 {
		t.Fatalf("F32NsPerDim = %v", c.F32NsPerDim)
	}
	if c.HammingNsPerWord <= 0 || c.HammingNsPerWord > 100 {
		t.Fatalf("HammingNsPerWord = %v", c.HammingNsPerWord)
	}
	if c.Int8NsPerDim <= 0 || c.Int8NsPerDim > 50 {
		t.Fatalf("Int8NsPerDim = %v", c.Int8NsPerDim)
	}
	// BQ must be far faster than float per dimension: one word covers
	// 64 dims.
	if c.HammingNsPerWord/64 >= c.F32NsPerDim {
		t.Fatalf("Hamming per dim (%v) not faster than float (%v)",
			c.HammingNsPerWord/64, c.F32NsPerDim)
	}
}

func TestCalibrateCached(t *testing.T) {
	a := Calibrate()
	b := Calibrate()
	if a != b {
		t.Fatal("Calibrate not cached")
	}
}

func TestDatasetBytes(t *testing.T) {
	if got := DatasetBytesF32(10, 1024, 1024); got != 10*(4096+1024) {
		t.Fatalf("F32 bytes = %d", got)
	}
	if got := DatasetBytesBQ(10, 1024, 1024); got != 10*(128+1024+1024) {
		t.Fatalf("BQ bytes = %d", got)
	}
	// BQ shrinks the embedding payload but not the documents —
	// Sec 3.2's point that quantization cannot remove the doc traffic.
	if DatasetBytesBQ(10, 1024, 1024) >= DatasetBytesF32(10, 1024, 1024) {
		t.Fatal("BQ not smaller than F32")
	}
}

func TestLoadSeconds(t *testing.T) {
	b := NewBaseline(CPUReal())
	if got := b.LoadSeconds(1.5e9, false); got < 0.99 || got > 1.01 {
		t.Fatalf("F32 load of 1.5GB = %vs, want ~1s", got)
	}
	if b.LoadSeconds(1e9, true) >= b.LoadSeconds(1e9, false) {
		t.Fatal("BQ load not faster")
	}
	b.NoIO = true
	if b.LoadSeconds(1e9, false) != 0 {
		t.Fatal("No-I/O baseline still loads")
	}
}

func TestScanTimesScaleLinearly(t *testing.T) {
	b := NewBaseline(CPUReal())
	s1 := b.ScanSecondsF32(1000, 1024)
	s2 := b.ScanSecondsF32(2000, 1024)
	if s2 < 1.9*s1 || s2 > 2.1*s1 {
		t.Fatalf("scan not linear: %v -> %v", s1, s2)
	}
	if b.ScanSecondsBQ(1000, 1024, 100) >= s1 {
		t.Fatal("BQ scan not faster than F32 scan")
	}
}

func TestQPSAmortizesLoading(t *testing.T) {
	b := NewBaseline(CPUReal())
	load, search := 10.0, 0.001
	q1 := b.QPS(1, load, search)
	q100 := b.QPS(100, load, search)
	if q100 <= q1 {
		t.Fatal("batching did not amortize loading")
	}
	// With loading dominating, QPS ~= batch/load.
	if q1 > 0.11 {
		t.Fatalf("QPS(1) = %v, want ~0.1", q1)
	}
}

func TestNoIOFasterThanReal(t *testing.T) {
	real := NewBaseline(CPUReal())
	noio := NewBaseline(CPUReal())
	noio.NoIO = true
	bytes := DatasetBytesBQ(1_000_000, 1024, 1024)
	search := real.ScanSecondsBQ(10000, 1024, 100)
	qReal := real.QPS(64, real.LoadSeconds(bytes, true), search)
	qNoIO := noio.QPS(64, noio.LoadSeconds(bytes, true), search)
	if qNoIO <= qReal {
		t.Fatal("No-I/O not faster than CPU-Real")
	}
}

func TestEnergy(t *testing.T) {
	b := NewBaseline(CPUReal())
	if got := b.EnergyJ(2); got != 2*b.CPU.ActiveWatts {
		t.Fatalf("EnergyJ = %v", got)
	}
}

func TestCPURealConfig(t *testing.T) {
	c := CPUReal()
	if c.Cores != 256 {
		t.Fatalf("cores = %d, want 256 (Table 3)", c.Cores)
	}
	if c.ActiveWatts < 300 || c.ActiveWatts > 400 {
		t.Fatalf("watts = %v, want ~29.7x the ~12W SSD", c.ActiveWatts)
	}
}
