package experiments

import (
	"fmt"
	"strings"

	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
)

// The churn experiment measures what background garbage collection
// does to flash wear under a sustained append/delete/compact workload:
// each round tombstones a slice of the deployed base plus the whole
// previous append batch, compacts, and appends a new batch, so the
// embedding region's logical tail runs far past its planned capacity
// on recycled GC rows. The comparison axis is the placement policy for
// those recycled rows — least-worn-first (the default) against the
// PR-5-era first-fit allocator, which reuses the lowest freed row and
// concentrates erases on it.
//
// MaxBlockErase is the device-wide maximum per-block erase count after
// the run (the wear-leveling target); WriteAmp is the cumulative
// bytes-programmed-to-flash over payload-bytes ratio the engine
// reports in HostResponse.Wear.

// ChurnRow is one placement policy's wear outcome.
type ChurnRow struct {
	Dataset   string
	Placement string // "wear-leveled" or "first-fit"
	Rounds    int
	Batch     int
	// CompactedRows / BlockErases accumulate over every round's
	// compaction; MaxBlockErase is the device maximum after the run.
	CompactedRows float64
	BlockErases   float64
	MaxBlockErase float64
	// WriteAmp is cumulative flash bytes programmed / payload bytes.
	WriteAmp float64
}

const (
	churnRounds = 20
	churnBatch  = 63
	churnBase   = 900
)

// churnCfg is a coarse-geometry device (two pages per block, two
// planes) so the churn corpus spans many GC rows and every round's
// compaction relocates and erases.
func churnCfg() ssd.Config {
	cfg := ssd.SSD1()
	cfg.Geo.Channels = 1
	cfg.Geo.DiesPerChannel = 1
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 256
	cfg.Geo.PagesPerBlock = 2
	cfg.Geo.PageBytes = 2048
	cfg.Geo.OOBBytes = 189
	cfg.OverprovisionPct = 200
	return cfg
}

// RunChurn executes the churn workload once per placement policy on
// identical data and returns the wear rows (wear-leveled first).
func RunChurn() ([]ChurnRow, error) {
	data := dataset.Generate(dataset.Config{
		Name: "churn", N: churnBase + 300, Dim: 128, Clusters: 16,
		Queries: 1, DocBytes: 256, Seed: 0xBEEF,
	})
	run := func(placement string) (ChurnRow, error) {
		opts := reis.AllOptions()
		opts.FirstFitPlacement = placement == "first-fit"
		e, err := reis.New(churnCfg(), 0, opts)
		if err != nil {
			return ChurnRow{}, err
		}
		defer e.Close()
		if _, err := e.Submit(reis.HostCommand{Opcode: reis.OpcodeDBDeploy, Deploy: &reis.DeployConfig{
			ID: 1, Vectors: data.Vectors[:churnBase], Docs: data.Docs[:churnBase], DocSlotBytes: 256,
		}}); err != nil {
			return ChurnRow{}, err
		}
		row := ChurnRow{Dataset: data.Name, Placement: placement, Rounds: churnRounds, Batch: churnBatch}
		pool := data.Vectors[churnBase:]
		poolDocs := data.Docs[churnBase:]
		var prev []int
		at := 0
		var lastWear reis.WearStats
		for r := 0; r < churnRounds; r++ {
			del := make([]int, 0, 15+len(prev))
			for id := r * 30; id < r*30+15; id++ {
				del = append(del, id)
			}
			del = append(del, prev...)
			if err := e.Delete(1, del...); err != nil {
				return ChurnRow{}, fmt.Errorf("round %d delete: %w", r, err)
			}
			wear, err := e.Compact(1, 0.9)
			if err != nil {
				return ChurnRow{}, fmt.Errorf("round %d compact: %w", r, err)
			}
			row.CompactedRows += float64(wear.CompactedRows)
			row.BlockErases += float64(wear.BlockErases)
			lastWear = wear
			vecs := make([][]float32, churnBatch)
			docs := make([][]byte, churnBatch)
			for j := range vecs {
				vecs[j] = pool[(at+j)%len(pool)]
				docs[j] = poolDocs[(at+j)%len(poolDocs)]
			}
			at += churnBatch
			prev, err = e.Append(1, reis.AppendConfig{Vectors: vecs, Docs: docs})
			if err != nil {
				return ChurnRow{}, fmt.Errorf("round %d append: %w", r, err)
			}
		}
		row.MaxBlockErase = float64(e.SSD.Dev.MaxEraseCount())
		row.WriteAmp = lastWear.WriteAmp
		return row, nil
	}
	var rows []ChurnRow
	for _, placement := range []string{"wear-leveled", "first-fit"} {
		row, err := run(placement)
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", placement, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatChurn renders the wear comparison.
func FormatChurn(rows []ChurnRow) string {
	var sb strings.Builder
	sb.WriteString("GC wear under append/delete/compact churn (REIS-SSD1, coarse blocks)\n")
	fmt.Fprintf(&sb, "%-10s %-13s %7s %6s %10s %8s %10s %10s\n",
		"dataset", "placement", "rounds", "batch", "GC rows", "erases", "max erase", "write amp")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-13s %7d %6d %10.0f %8.0f %10.0f %9.2fx\n",
			r.Dataset, r.Placement, r.Rounds, r.Batch, r.CompactedRows, r.BlockErases, r.MaxBlockErase, r.WriteAmp)
	}
	return sb.String()
}
