package experiments

import (
	"fmt"
	"math"
	"reflect"
	"strings"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
	"reis/internal/xrand"
)

// SkewRow is one point of the DRAM-caching-tier sweep: a Zipf query
// skew s served at a cache budget, against the budget-0 baseline of
// the same command script. HitRate counts result-cache hits over all
// issued queries; FinePages/CachedPages split the mean per-query fine
// scan between flash and pinned DRAM copies (on result-cache misses
// they sum to BaseFinePages, the uncached run's mean — the page
// partition the engine tests pin per query, re-checked per command by
// RunSkew itself).
type SkewRow struct {
	Dataset string
	// S is the Zipf exponent of the query popularity distribution
	// (0 = uniform).
	S float64
	// Budget is ssd.Config.CacheDRAMBytes for this run.
	Budget int64
	// HitRate is result-cache hits / queries issued.
	HitRate float64
	// FinePages / CachedPages / BaseFinePages are mean per-query fine
	// pages from flash, from pinned DRAM, and in the uncached baseline.
	FinePages     float64
	CachedPages   float64
	BaseFinePages float64
	// ModelQPS is queries / summed modeled batch makespan at unit
	// scale; Speedup is ModelQPS over the budget-0 row (1.0 there).
	ModelQPS float64
	Speedup  float64
}

// SkewDefaultBudget is the default cache budget of the sweep: enough
// to pin every cluster of the skew corpus and hold a working set of
// packed results, the regime the headline speedup is claimed in.
const SkewDefaultBudget = 4 << 20

// SkewS and SkewBudgets are the default sweep axes.
var (
	SkewS       = []float64{0, 0.8, 1.2}
	SkewBudgets = []int64{0, 512 << 10, SkewDefaultBudget}
)

// The skew corpus and script. The corpus is small enough to run
// functionally but large enough that clusters span distinct binary
// pages; the script interleaves bursty churn (appends that are deleted
// the following round — every mutation drops the caches) with batched
// searches whose query indices follow a Zipf draw over a fixed query
// set, so repeats inside a round can hit the result cache and hot
// clusters accumulate probe counts.
const (
	skewN        = 4000 // 3600 deployed + 400 append pool
	skewBase     = 3600
	skewDim      = 128
	skewClusters = 64
	skewQueries  = 400
	skewRounds   = 8
	skewCmds     = 6  // search commands per round
	skewBatch    = 32 // queries per search command
	skewNProbe   = 8
	skewK        = 10
)

// skewWorkload generates the shared corpus: deployed base, append
// pool, and KMeans cluster structure over the base.
func skewWorkload() (d *dataset.Dataset, cents [][]float32, assign []int) {
	d = dataset.Generate(dataset.Config{
		Name: "skew", N: skewN, Dim: skewDim, Clusters: skewClusters,
		Queries: skewQueries, DocBytes: 64, Seed: 0xCAFE,
	})
	cents, assign = ann.KMeans(d.Vectors[:skewBase], ann.KMeansConfig{K: skewClusters, Seed: 7})
	return d, cents, assign
}

// skewRun is one (s, budget) script execution: per-command stats and
// results for the baseline cross-check, plus the accumulated totals.
type skewRun struct {
	stats    [][]reis.QueryStats
	results  [][][]reis.DocResult
	queries  int
	hits     int
	fine     int
	cached   int
	modelSec float64
}

// nearestCentroid assigns an appended vector to its closest KMeans
// centroid, the same rule the deployed assignment used.
func nearestCentroid(v []float32, cents [][]float32) int {
	best, bestD := 0, math.MaxFloat64
	for c, cent := range cents {
		var d float64
		for j := range v {
			diff := float64(v[j] - cent[j])
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// runSkewScript executes the churn+search script on a fresh engine at
// the given cache budget. The RNG seeds depend only on s, so every
// budget of a sweep point sees the identical command sequence and the
// runs are comparable command for command.
func runSkewScript(d *dataset.Dataset, cents [][]float32, assign []int, s float64, budget int64) (*skewRun, error) {
	cfg := ssd.SSD1()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	// The churn bursts append into reserved tail capacity (deleted
	// entries tombstone in place until a compaction), so the deployment
	// needs overprovision headroom SSD1 does not default to.
	cfg.OverprovisionPct = 200
	cfg.CacheDRAMBytes = budget
	e, err := reis.New(cfg, int64(skewBase*skewDim*3)*4+64<<20, reis.AllOptions())
	if err != nil {
		return nil, err
	}
	defer e.Close()
	db, err := e.IVFDeploy(reis.DeployConfig{
		ID: 1, Vectors: d.Vectors[:skewBase], Docs: d.Docs[:skewBase],
		DocSlotBytes: docSlot(d), Centroids: cents, Assign: assign,
	})
	if err != nil {
		return nil, err
	}

	qr := xrand.New(0x5eed ^ math.Float64bits(s))
	cr := qr.Split()
	run := &skewRun{}
	poolIdx := 0
	var prevIDs []int
	for round := 0; round < skewRounds; round++ {
		if round > 0 {
			// Bursty churn: append 4-12 pool items, then delete the
			// previous round's appends. Both mutations atomically drop
			// the result cache and the pinned pages.
			burst := 4 + cr.Intn(9)
			var vecs [][]float32
			var docs [][]byte
			var asg []int
			for i := 0; i < burst; i++ {
				p := skewBase + poolIdx%(skewN-skewBase)
				poolIdx++
				vecs = append(vecs, d.Vectors[p])
				docs = append(docs, d.Docs[p])
				asg = append(asg, nearestCentroid(d.Vectors[p], cents))
			}
			resp, err := e.Submit(reis.HostCommand{
				Opcode: reis.OpcodeAppend, DBID: 1,
				Append: &reis.AppendConfig{Vectors: vecs, Docs: docs, Assign: asg},
			})
			if err != nil {
				return nil, err
			}
			if len(prevIDs) > 0 {
				if _, err := e.Submit(reis.HostCommand{
					Opcode: reis.OpcodeDelete, DBID: 1,
					Del: &reis.DeleteConfig{IDs: prevIDs},
				}); err != nil {
					return nil, err
				}
			}
			prevIDs = append(prevIDs[:0], resp.AppendedIDs...)
		}
		for c := 0; c < skewCmds; c++ {
			queries := make([][]float32, skewBatch)
			for i := range queries {
				queries[i] = d.Queries[qr.Zipf(skewQueries, s)]
			}
			resp, err := e.Submit(reis.HostCommand{
				Opcode: reis.OpcodeIVFSearch, DBID: 1,
				Queries: queries, K: skewK, NProbe: skewNProbe,
				Opt: reis.SearchOptions{SkipDocs: true},
			})
			if err != nil {
				return nil, err
			}
			run.stats = append(run.stats, resp.QueryStats)
			run.results = append(run.results, resp.Results)
			run.queries += len(queries)
			run.hits += resp.Stats.ResultCacheHits
			run.fine += resp.Stats.FinePages
			run.cached += resp.Stats.CachedPages
			run.modelSec += e.BatchLatency(db, resp.QueryStats, reis.UnitScale()).Makespan.Seconds()
		}
	}
	return run, nil
}

// checkSkewPartition re-verifies the caching tier's contract on the
// experiment's own output, command for command against the budget-0
// run: results bit-identical, result-cache hits did no scan work, and
// every miss's fine pages partition exactly between flash and DRAM.
func checkSkewPartition(cached, base *skewRun) error {
	if len(cached.stats) != len(base.stats) {
		return fmt.Errorf("skew: %d commands vs %d in baseline", len(cached.stats), len(base.stats))
	}
	for ci := range cached.stats {
		if !reflect.DeepEqual(cached.results[ci], base.results[ci]) {
			return fmt.Errorf("skew: cmd %d results diverge from uncached baseline", ci)
		}
		for qi, st := range cached.stats[ci] {
			b := base.stats[ci][qi]
			if st.ResultCacheHits > 0 {
				if st.FinePages != 0 || st.CachedPages != 0 {
					return fmt.Errorf("skew: cmd %d q%d hit with scan work %+v", ci, qi, st)
				}
				continue
			}
			if st.FinePages+st.CachedPages != b.FinePages {
				return fmt.Errorf("skew: cmd %d q%d partition %d+%d != baseline fine %d",
					ci, qi, st.FinePages, st.CachedPages, b.FinePages)
			}
		}
	}
	return nil
}

// RunSkew measures the DRAM caching tier under Zipfian query skew and
// bursty churn on REIS-SSD1: for every skew exponent, the identical
// command script runs at every cache budget (budget 0 is the
// baseline), and each row reports the hit rate, the flash/DRAM page
// split, and the modeled-throughput speedup. Like the prune sweep,
// rows are costed at unit scale: the caching tier targets the
// deployed (post-mutation) regime where the corpus fits the device,
// not the paper-scale extrapolation.
func RunSkew(ss []float64, budgets []int64) ([]SkewRow, error) {
	if ss == nil {
		ss = SkewS
	}
	if budgets == nil {
		budgets = SkewBudgets
	}
	d, cents, assign := skewWorkload()
	name := fmt.Sprintf("skew-%dk", skewBase/1000)
	var rows []SkewRow
	for _, s := range ss {
		base, err := runSkewScript(d, cents, assign, s, 0)
		if err != nil {
			return nil, err
		}
		baseQPS := float64(base.queries) / base.modelSec
		baseFine := float64(base.fine) / float64(base.queries)
		for _, budget := range budgets {
			run := base
			if budget > 0 {
				if run, err = runSkewScript(d, cents, assign, s, budget); err != nil {
					return nil, err
				}
				if err := checkSkewPartition(run, base); err != nil {
					return nil, err
				}
			}
			n := float64(run.queries)
			qps := n / run.modelSec
			rows = append(rows, SkewRow{
				Dataset: name, S: s, Budget: budget,
				HitRate:       float64(run.hits) / n,
				FinePages:     float64(run.fine) / n,
				CachedPages:   float64(run.cached) / n,
				BaseFinePages: baseFine,
				ModelQPS:      qps,
				Speedup:       qps / baseQPS,
			})
		}
	}
	return rows, nil
}

// FormatSkew renders the caching-tier sweep.
func FormatSkew(rows []SkewRow) string {
	var sb strings.Builder
	sb.WriteString("DRAM caching tier under Zipfian skew and bursty churn (REIS-SSD1)\n")
	fmt.Fprintf(&sb, "%-10s %5s %10s %9s %11s %12s %10s %10s %8s\n",
		"dataset", "s", "budget", "hit rate", "fine pages", "cached pages", "base fine", "model QPS", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %5.2f %9dK %8.1f%% %11.1f %12.1f %10.1f %10.1f %7.2fx\n",
			r.Dataset, r.S, r.Budget>>10, r.HitRate*100, r.FinePages, r.CachedPages, r.BaseFinePages, r.ModelQPS, r.Speedup)
	}
	return sb.String()
}
