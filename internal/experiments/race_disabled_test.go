//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this run
// (see race_enabled_test.go).
const raceEnabled = false
