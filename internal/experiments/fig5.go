package experiments

import (
	"fmt"
	"strings"
	"time"

	"reis/internal/ann"
	"reis/internal/dataset"
)

// Fig5Point is one point of the Fig 5 throughput/recall comparison of
// host-side ANNS algorithms, with QPS normalized to exhaustive search
// (as in the paper).
type Fig5Point struct {
	Algorithm string
	Param     string // the swept knob (nprobe, ef, ...)
	Recall    float64
	NormQPS   float64
}

// RunFig5 regenerates Fig 5: IVF, BQ IVF, PQ IVF, HNSW, BQ HNSW and
// LSH measured by wall clock on this machine over the (scaled)
// wiki_en dataset. Unlike the device experiments this one is a real
// CPU measurement, matching the paper's methodology for this figure.
func RunFig5(scale int) ([]Fig5Point, error) {
	d := dataset.Load("wiki_en", scale)
	flatQPS, _ := measureSearcher(d, ann.NewFlat(d.Vectors), 10)

	var pts []Fig5Point
	add := func(algo, param string, s ann.Searcher) {
		qps, recall := measureSearcher(d, s, 10)
		pts = append(pts, Fig5Point{Algorithm: algo, Param: param, Recall: recall, NormQPS: qps / flatQPS})
	}

	nlist := max(8, isqrt(d.Len()))
	ivfF := ann.NewIVF(d.Vectors, ann.IVFConfig{NList: nlist, Mode: ann.IVFFloat, Seed: 5})
	ivfB := ann.NewIVF(d.Vectors, ann.IVFConfig{NList: nlist, Mode: ann.IVFBinary, Seed: 5})
	pqivf := ann.NewPQIVF(d.Vectors,
		ann.IVFConfig{NList: nlist, Seed: 5},
		ann.PQConfig{M: 16, KS: 64, Seed: 5, TrainIters: 6})
	for _, nprobe := range []int{1, 2, 4, 8, 16, nlist / 2} {
		if nprobe < 1 || nprobe > nlist {
			continue
		}
		np := nprobe
		add("IVF", fmt.Sprintf("nprobe=%d", np), searchFunc(func(q []float32, k int) []ann.Result {
			return ivfF.SearchNProbe(q, k, np)
		}))
		add("BQ IVF", fmt.Sprintf("nprobe=%d", np), searchFunc(func(q []float32, k int) []ann.Result {
			return ivfB.SearchNProbe(q, k, np)
		}))
		add("PQ IVF", fmt.Sprintf("nprobe=%d", np), searchFunc(func(q []float32, k int) []ann.Result {
			return pqivf.SearchNProbe(q, k, np)
		}))
	}

	hnsw := ann.NewHNSW(d.Vectors, ann.HNSWConfig{M: 24, EfConstruction: 160, Seed: 5})
	bqHnsw := ann.NewHNSW(d.Vectors, ann.HNSWConfig{M: 24, EfConstruction: 160, Seed: 5, Binary: true})
	for _, ef := range []int{16, 48, 128, 320} {
		hnsw.SetEfSearch(ef)
		add("HNSW", fmt.Sprintf("ef=%d", ef), hnsw)
		bqHnsw.SetEfSearch(ef)
		add("BQ HNSW", fmt.Sprintf("ef=%d", ef), bqHnsw)
	}

	for _, bits := range []int{14, 12, 10} {
		lsh := ann.NewLSH(d.Vectors, ann.LSHConfig{Tables: 16, Bits: bits, Seed: 5})
		add("LSH", fmt.Sprintf("bits=%d", bits), lsh)
	}
	return pts, nil
}

type searchFunc func(q []float32, k int) []ann.Result

func (f searchFunc) Search(q []float32, k int) []ann.Result { return f(q, k) }

func measureSearcher(d *dataset.Dataset, s ann.Searcher, k int) (qps, recall float64) {
	got := make([][]int, len(d.Queries))
	start := time.Now()
	for qi, q := range d.Queries {
		rs := s.Search(q, k)
		ids := make([]int, len(rs))
		for i, r := range rs {
			ids[i] = r.ID
		}
		got[qi] = ids
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(len(d.Queries)) / elapsed, dataset.Recall(d.GroundTruth, got, k)
}

func isqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}

// FormatFig5 renders the algorithm comparison.
func FormatFig5(pts []Fig5Point) string {
	var sb strings.Builder
	sb.WriteString("Fig 5: ANNS algorithms on CPU, QPS normalized to exhaustive search\n")
	fmt.Fprintf(&sb, "%-9s %-12s %7s %9s\n", "algo", "param", "recall", "norm QPS")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%-9s %-12s %7.3f %9.2f\n", p.Algorithm, p.Param, p.Recall, p.NormQPS)
	}
	return sb.String()
}
