package experiments

import (
	"fmt"
	"strings"
	"time"

	"reis/internal/reis"
	"reis/internal/ssd"
)

// This file runs the SLO sweep: per-command latency distributions
// under an open-loop arrival schedule, across arrival rate × queue
// depth × shard count. Where the throughput sweeps ask "how many
// queries per second can the device absorb", the SLO sweep asks what a
// single command experiences while the queue is loaded — the p99 here
// is the number a serving tier would put in its latency SLO, and
// cmd/benchdiff gates on it (see DESIGN.md, "Latency distributions and
// SLOs").

// LoadUtilization is the pinned operating point of the tail columns on
// the qdepth and shards sweeps: the arrival rate is this fraction of
// the row's saturation throughput. Pinning utilization instead of an
// absolute rate keeps rows comparable across model changes — a faster
// model is probed proportionally harder — while still exposing
// service-time regressions directly in the quantiles.
const LoadUtilization = 0.8

// LoadCommands is the command-stream length behind every modeled tail;
// long enough that p99 rests on real samples.
const LoadCommands = 256

// loadSeed seeds every arrival schedule in the sweeps; a fixed seed is
// what makes the reported quantiles reproducible bit for bit.
const loadSeed = 0x510ad

// SLO sweep axes: every (depth, load) cell runs on every shard count.
var (
	SLODepths      = []int{1, 8, 32}
	SLOLoads       = []float64{0.5, 0.8, 0.95}
	SLOShardCounts = []int{1, 2}
)

// SLORow is one cell of the SLO sweep. Dataset/Mode/Shards/Depth/Load
// identify the cell; everything else is a deterministic function of
// the timing model, so benchdiff can gate on it.
type SLORow struct {
	Dataset string
	Mode    string
	Shards  int
	Depth   int
	// Load is the utilization label ("0.50", "0.80", "0.95"): the
	// arrival rate as a fraction of this cell's saturation throughput.
	Load string
	// ArrivalQPS is the resolved arrival rate of the schedule.
	ArrivalQPS float64
	// ModelQPS is the saturation throughput at this depth and shard
	// count (every command arrived at once, full coalescing) — the
	// ceiling the Load fraction is taken of.
	ModelQPS float64
	// ModelP50Ms..ModelP999Ms are modeled per-command latency
	// quantiles (completion minus arrival) under the schedule.
	ModelP50Ms  float64
	ModelP95Ms  float64
	ModelP99Ms  float64
	ModelP999Ms float64
	// MeanBatch is the mean commands per dispatch the replay achieved;
	// MaxBacklog is the peak arrived-but-unserved command count.
	MeanBatch  float64
	MaxBacklog int
}

// RunSLO sweeps arrival rate × queue depth × shard count on
// REIS-SSD1-class devices. Every cell drives LoadCommands single-query
// IVF commands (the workload's query set, cycled) through a real queue
// pair of the given depth, then replays the seeded Poisson schedule
// through the virtual-time dispatcher model. nil axes select the
// defaults.
func RunSLO(scale int, datasets []string, depths []int, loads []float64) ([]SLORow, error) {
	if datasets == nil {
		datasets = []string{"NQ"}
	}
	if depths == nil {
		depths = SLODepths
	}
	if loads == nil {
		loads = SLOLoads
	}
	var rows []SLORow
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		nprobe := 0
		for _, shards := range SLOShardCounts {
			cfg := ssd.SSD1()
			cfg.Geo.BlocksPerPlane = 8
			cfg.Geo.PagesPerBlock = 16
			need := int64(w.Data.Len()) * int64(w.Data.Dim*3)
			sh, err := reis.NewSharded(cfg, shards, need*4+64<<20, reis.AllOptions())
			if err != nil {
				return nil, err
			}
			_, err = sh.IVFDeploy(reis.DeployConfig{
				ID: 1, Vectors: w.Data.Vectors, Docs: w.Data.Docs,
				DocSlotBytes: docSlot(w.Data), Centroids: w.Centroids, Assign: w.Assign,
			})
			if err != nil {
				sh.Close()
				return nil, err
			}
			if nprobe == 0 {
				// Sharded results are bit-identical to a single device's,
				// so one calibration serves every shard count.
				if nprobe, err = sh.CalibrateNProbe(1, w.Data.Queries, w.Data.GroundTruth, 10, 0.94); err != nil {
					sh.Close()
					return nil, err
				}
			}
			tmpl := reis.HostCommand{
				Opcode: reis.OpcodeIVFSearch, DBID: 1,
				Queries: w.Data.Queries, K: 10, NProbe: nprobe,
			}
			for _, depth := range depths {
				for _, load := range loads {
					res, err := sh.RunLoad(tmpl, w.ScaleIVF(), reis.LoadConfig{
						Utilization: load, Commands: LoadCommands,
						Depth: depth, Seed: loadSeed,
					})
					if err != nil {
						sh.Close()
						return nil, err
					}
					rows = append(rows, SLORow{
						Dataset: name, Mode: fmt.Sprintf("IVF@np%d", nprobe),
						Shards: shards, Depth: depth, Load: fmt.Sprintf("%.2f", load),
						ArrivalQPS:  res.Rate,
						ModelQPS:    res.SaturationQPS,
						ModelP50Ms:  ms(res.P50),
						ModelP95Ms:  ms(res.P95),
						ModelP99Ms:  ms(res.P99),
						ModelP999Ms: ms(res.P999),
						MeanBatch:   res.MeanBatch,
						MaxBacklog:  res.MaxBacklog,
					})
				}
			}
			sh.Close()
		}
	}
	return rows, nil
}

// ms converts a modeled duration to milliseconds for row reporting.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// modelTail computes the tail columns of a throughput-sweep row: the
// saturation throughput of the cycled command stream at the given
// depth, then the latency quantiles at LoadUtilization of that rate.
// cost must be the timing model's makespan of commands [first,
// first+n) — a pure function, so the result is deterministic.
func modelTail(cost func(first, n int) time.Duration, depth int) reis.LoadResult {
	sat := reis.SimulateLoad(make([]time.Duration, LoadCommands), depth, cost, 0)
	rate := LoadUtilization * sat.ModelQPS
	res := reis.SimulateLoad(reis.PoissonArrivals(LoadCommands, rate, loadSeed), depth, cost, 0)
	res.Rate = rate
	res.SaturationQPS = sat.ModelQPS
	return res
}

// FormatSLO renders the SLO sweep.
func FormatSLO(rows []SLORow) string {
	var sb strings.Builder
	sb.WriteString("SLO sweep: open-loop arrivals through one async queue pair (REIS-SSD1 class)\n")
	fmt.Fprintf(&sb, "%-10s %-10s %6s %6s %5s %10s %10s %9s %9s %9s %9s %7s %8s\n",
		"dataset", "mode", "shards", "depth", "load", "arrive/s", "sat QPS",
		"p50 ms", "p95 ms", "p99 ms", "p999 ms", "batch", "backlog")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-10s %6d %6d %5s %10.1f %10.1f %9.3f %9.3f %9.3f %9.3f %7.2f %8d\n",
			r.Dataset, r.Mode, r.Shards, r.Depth, r.Load, r.ArrivalQPS, r.ModelQPS,
			r.ModelP50Ms, r.ModelP95Ms, r.ModelP99Ms, r.ModelP999Ms, r.MeanBatch, r.MaxBacklog)
	}
	return sb.String()
}
