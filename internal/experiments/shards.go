package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"reis/internal/reis"
	"reis/internal/ssd"
)

// ShardRow is one point of the scale-out sweep: the whole workload
// query set served by a ShardedEngine of the given device count.
// Results are bit-identical across rows (the determinism contract of
// the sharded topology); rows differ in wall-clock cost of the
// functional simulation and in the modeled makespan, where the scatter
// phases shrink with the per-shard critical path.
type ShardRow struct {
	Dataset string
	Mode    string
	Shards  int
	// WallQPS is the functional simulation's wall-clock throughput. On
	// a single-CPU host it does not improve with shard count (the
	// simulation does the same total work); ModelQPS is the scale-out
	// quantity.
	WallQPS float64
	// ModelQPS is the modeled batch throughput of the sharded topology
	// (per-shard occupancy bottleneck + gather tail).
	ModelQPS float64
	// ModelSpeedup is ModelQPS relative to the 1-shard row.
	ModelSpeedup float64
	// NsPerOp / AllocsPerOp / BytesPerOp are per served query.
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
	// ModelP50Ms/P95/P99 are modeled per-command latency quantiles at
	// LoadUtilization of the depth-DefaultQueueDepth saturation
	// throughput of this topology (see slo.go).
	ModelP50Ms float64
	ModelP95Ms float64
	ModelP99Ms float64
}

// ShardCounts is the default scale-out sweep; every count divides the
// 8 channels of REIS-SSD1.
var ShardCounts = []int{1, 2, 4}

// RunShards measures throughput versus shard count on REIS-SSD1-class
// devices. Every shard count serves the identical workload twice
// through the sharded router: as one batched brute-force Search
// command (scan-bound — scale-out's best case: the fine-scan critical
// path shrinks with the device count) and as one batched IVF_Search at
// the calibrated nprobe (the broadcast floor bounds the speedup —
// every device still latches the query into all of its dies).
func RunShards(scale int, datasets []string, counts []int) ([]ShardRow, error) {
	if datasets == nil {
		datasets = []string{"NQ"}
	}
	if counts == nil {
		counts = ShardCounts
	}
	var rows []ShardRow
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		nprobe := 0
		base := map[string]float64{}
		for _, n := range counts {
			cfg := ssd.SSD1()
			cfg.Geo.BlocksPerPlane = 8
			cfg.Geo.PagesPerBlock = 16
			need := int64(w.Data.Len()) * int64(w.Data.Dim*3)
			sh, err := reis.NewSharded(cfg, n, need*4+64<<20, reis.AllOptions())
			if err != nil {
				return nil, err
			}
			_, err = sh.IVFDeploy(reis.DeployConfig{
				ID: 1, Vectors: w.Data.Vectors, Docs: w.Data.Docs,
				DocSlotBytes: docSlot(w.Data), Centroids: w.Centroids, Assign: w.Assign,
			})
			if err != nil {
				sh.Close()
				return nil, err
			}
			if nprobe == 0 {
				// Calibrate once: sharded results are bit-identical to a
				// single device's, so the calibrated nprobe is the same
				// for every shard count (pinned by the equivalence tests).
				if nprobe, err = sh.CalibrateNProbe(1, w.Data.Queries, w.Data.GroundTruth, 10, 0.94); err != nil {
					sh.Close()
					return nil, err
				}
			}
			runs := []struct {
				mode string
				op   uint8
				np   int
				sc   reis.Scale
			}{
				{"BF", reis.OpcodeSearch, 0, w.ScaleBF()},
				{fmt.Sprintf("IVF@np%d", nprobe), reis.OpcodeIVFSearch, nprobe, w.ScaleIVF()},
			}
			for _, r := range runs {
				row, err := runShardRow(sh, w, name, r.mode, r.op, r.np, n, r.sc)
				if err != nil {
					sh.Close()
					return nil, err
				}
				if base[r.mode] == 0 {
					base[r.mode] = row.ModelQPS
				}
				row.ModelSpeedup = row.ModelQPS / base[r.mode]
				rows = append(rows, row)
			}
			sh.Close()
		}
	}
	return rows, nil
}

// runShardRow serves the whole query set as one batched host command
// and models the batch on the sharded topology.
func runShardRow(sh *reis.ShardedEngine, w *Workload, dataset, mode string, op uint8, nprobe, shards int, sc reis.Scale) (ShardRow, error) {
	queries := w.Data.Queries
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	resp, err := sh.Submit(reis.HostCommand{
		Opcode: op, DBID: 1, Queries: queries, K: 10, NProbe: nprobe,
	})
	if err != nil {
		return ShardRow{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	bb, err := sh.BatchLatency(1, resp.QueryStats, resp.PerShard, sc)
	if err != nil {
		return ShardRow{}, err
	}
	// Tail columns: replay the cycled query stats through the
	// virtual-time dispatcher model over this topology.
	n := len(resp.QueryStats)
	var costErr error
	cost := func(first, cn int) time.Duration {
		sts := make([]reis.QueryStats, cn)
		group := make([][]reis.QueryStats, shards)
		for s := range group {
			group[s] = make([]reis.QueryStats, cn)
		}
		for k := 0; k < cn; k++ {
			qi := (first + k) % n
			sts[k] = resp.QueryStats[qi]
			for s := 0; s < shards; s++ {
				group[s][k] = resp.PerShard[s][qi]
			}
		}
		gb, err := sh.BatchLatency(1, sts, group, sc)
		if err != nil && costErr == nil {
			costErr = err
		}
		return gb.Makespan
	}
	tail := modelTail(cost, reis.DefaultQueueDepth)
	if costErr != nil {
		return ShardRow{}, costErr
	}
	nq := float64(len(queries))
	return ShardRow{
		Dataset: dataset, Mode: mode, Shards: shards,
		WallQPS:     nq / wall.Seconds(),
		ModelQPS:    bb.QPS,
		NsPerOp:     float64(wall.Nanoseconds()) / nq,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / nq,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / nq,
		ModelP50Ms:  ms(tail.P50),
		ModelP95Ms:  ms(tail.P95),
		ModelP99Ms:  ms(tail.P99),
	}, nil
}

// FormatShards renders the scale-out sweep.
func FormatShards(rows []ShardRow) string {
	var sb strings.Builder
	sb.WriteString("Shard scale-out: one batched command over N devices (REIS-SSD1 class)\n")
	fmt.Fprintf(&sb, "%-10s %-10s %6s %10s %10s %8s %10s %10s %9s %9s %9s\n",
		"dataset", "mode", "shards", "wall QPS", "model QPS", "speedup", "ns/op", "allocs/op",
		"p50 ms", "p95 ms", "p99 ms")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-10s %6d %10.1f %10.1f %7.2fx %10.0f %10.1f %9.3f %9.3f %9.3f\n",
			r.Dataset, r.Mode, r.Shards, r.WallQPS, r.ModelQPS, r.ModelSpeedup, r.NsPerOp, r.AllocsPerOp,
			r.ModelP50Ms, r.ModelP95Ms, r.ModelP99Ms)
	}
	return sb.String()
}
