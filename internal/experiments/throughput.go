package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"reis/internal/reis"
	"reis/internal/ssd"
)

// ThroughputRow is one point of the batched-admission throughput
// sweep: a dataset served at one batch size, with the wall-clock
// queries/sec of the functional simulation and the timing model's
// batch QPS at paper scale.
type ThroughputRow struct {
	Dataset string
	Mode    string
	Batch   int
	// WallQPS is the functional simulation's wall-clock throughput
	// (how fast this reproduction executes, not a paper quantity).
	WallQPS float64
	// ModelQPS is the modeled device throughput of the batch under the
	// channel-occupancy overlap model.
	ModelQPS float64
	// ModelSerialQPS is the modeled throughput of one-at-a-time
	// admission (1 / mean standalone latency).
	ModelSerialQPS float64
	// NsPerOp, AllocsPerOp and BytesPerOp are wall-clock nanoseconds,
	// heap allocations and heap bytes per served query of the
	// functional simulation — the quantities the repo's BENCH_*.json
	// perf trajectory tracks.
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
}

// ThroughputBatches is the default admission batch-size sweep.
var ThroughputBatches = []int{1, 8, 64}

// RunThroughput measures batched versus sequential query admission on
// REIS-SSD1 for the given datasets. Every batch size serves the whole
// workload query set, admitted in chunks of the batch size (batch 1 is
// one Search call per query), so rows differ only in admission overlap
// — never in which queries they serve.
func RunThroughput(scale int, datasets []string, batches []int) ([]ThroughputRow, error) {
	if datasets == nil {
		datasets = []string{"NQ", "wiki_en"}
	}
	if batches == nil {
		batches = ThroughputBatches
	}
	var rows []ThroughputRow
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		s, err := NewSetup(ssd.SSD1(), w, reis.AllOptions())
		if err != nil {
			return nil, err
		}
		defer s.Close()
		nprobe, err := s.NProbeFor(0.94)
		if err != nil {
			return nil, err
		}
		sc := w.ScaleIVF()
		queries := w.Data.Queries
		seen := make(map[int]bool)
		for _, batch := range batches {
			if batch > len(queries) {
				batch = len(queries)
			}
			// Small workloads clamp large batch sizes to the query
			// count; skip duplicate rows.
			if seen[batch] {
				continue
			}
			seen[batch] = true
			var (
				makespan, serial time.Duration
				m0, m1           runtime.MemStats
			)
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for lo := 0; lo < len(queries); lo += batch {
				hi := min(lo+batch, len(queries))
				var sts []reis.QueryStats
				if batch == 1 {
					// Sequential baseline: one Search call per query.
					_, st, err := s.Engine.IVFSearch(1, queries[lo], 10, reis.SearchOptions{NProbe: nprobe})
					if err != nil {
						return nil, err
					}
					sts = []reis.QueryStats{st}
				} else {
					// Batched admission goes through the host command
					// interface, as the NVMe driver would submit it.
					resp, err := s.Engine.Submit(reis.HostCommand{
						Opcode: reis.OpcodeIVFSearch, DBID: 1,
						Queries: queries[lo:hi], K: 10, NProbe: nprobe,
					})
					if err != nil {
						return nil, err
					}
					sts = resp.QueryStats
				}
				bd := s.Engine.BatchLatency(s.DB, sts, sc)
				makespan += bd.Makespan
				serial += bd.Serial
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			n := float64(len(queries))
			rows = append(rows, ThroughputRow{
				Dataset: name, Mode: fmt.Sprintf("IVF@np%d", nprobe), Batch: batch,
				WallQPS:        n / wall.Seconds(),
				ModelQPS:       n / makespan.Seconds(),
				ModelSerialQPS: n / serial.Seconds(),
				NsPerOp:        float64(wall.Nanoseconds()) / n,
				AllocsPerOp:    float64(m1.Mallocs-m0.Mallocs) / n,
				BytesPerOp:     float64(m1.TotalAlloc-m0.TotalAlloc) / n,
			})
		}
	}
	return rows, nil
}

// FormatThroughput renders the batched-admission sweep.
func FormatThroughput(rows []ThroughputRow) string {
	var sb strings.Builder
	sb.WriteString("Batched query admission: wall-clock and modeled QPS (REIS-SSD1)\n")
	fmt.Fprintf(&sb, "%-10s %-10s %6s %10s %10s %12s %8s %10s %10s\n",
		"dataset", "mode", "batch", "wall QPS", "model QPS", "model serial", "overlap", "ns/op", "allocs/op")
	for _, r := range rows {
		gain := 0.0
		if r.ModelSerialQPS > 0 {
			gain = r.ModelQPS / r.ModelSerialQPS
		}
		fmt.Fprintf(&sb, "%-10s %-10s %6d %10.1f %10.1f %12.1f %7.2fx %10.0f %10.1f\n",
			r.Dataset, r.Mode, r.Batch, r.WallQPS, r.ModelQPS, r.ModelSerialQPS, gain, r.NsPerOp, r.AllocsPerOp)
	}
	return sb.String()
}
