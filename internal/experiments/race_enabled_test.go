//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this run.
// The host baseline calibrates its scan kernels on the running
// machine; under the race detector those kernels run an order of
// magnitude slower, so assertions about pipeline-stage *proportions*
// (which compare modeled I/O time against measured compute time) are
// skipped — the structural assertions still run.
const raceEnabled = true
