package experiments

import (
	"fmt"
	"math"
	"strings"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/host"
	"reis/internal/reis"
	"reis/internal/rivals"
	"reis/internal/ssd"
)

// This file runs the recall-vs-model-latency frontier — the repo's
// headline comparison, reproducing the shape of the paper's rival
// evaluation. Live HNSW/LSH/PQ-IVF indexes (internal/ann) are built
// over the same corpus the flash engine deploys; the identical query
// set runs through every system; recall is measured functionally and
// latency is costed at paper scale — rivals through the DRAM models
// of internal/rivals on the calibrated host baseline, the flash
// engine through its occupancy timing model (pruned, and pruned with
// the DRAM caching tier enabled).
//
// Two latency columns tell the two stories: ServeMs assumes the
// rival's dataset is already resident in DRAM (the rival's best
// case), TotalMs adds the QueryBatch-amortized load of the full-scale
// FP32 dataset — the term Sec 3.2 shows dominating CPU serving and
// the one the flash engine never pays.

// FrontierScale is the minimum workload scale divisor of the frontier
// run: RunFrontier clamps smaller (= larger-corpus) requests up to it
// so the index builds stay tractable in CI.
const FrontierScale = 64

// frontierCacheBudget is ssd.Config.CacheDRAMBytes for the cached
// flash configuration: enough to pin the probed clusters' binary
// pages at functional scale. The timing model charges the pinned
// fraction at scaled serialized DRAM-scan cost, so on this uniform
// single-pass query set the cached rows sit at or above the pruned
// curve — in-flash scanning parallelizes across planes while the
// controller core does not, and with no repeats the result cache
// never fires. The cache's wins live in the skewed/repeating regime
// the skew experiment sweeps; the frontier rows pin the other half of
// that claim.
const frontierCacheBudget = 1 << 20

// FrontierRow is one operating point of one system on the frontier.
type FrontierRow struct {
	Dataset string
	System  string
	Param   string
	// Recall is Recall@10 measured functionally on the shared corpus
	// and query set.
	Recall float64
	// ServeMs is the modeled per-query latency at paper scale with
	// the dataset resident (DRAM rivals) or on flash (REIS rows).
	ServeMs float64
	// TotalMs adds the QueryBatch-amortized dataset load for DRAM
	// rivals; for REIS rows it equals ServeMs.
	TotalMs float64
}

// RunFrontier builds the frontier over wiki_en at the given scale
// divisor (clamped to at least FrontierScale). Every system sweeps
// its accuracy knob: HNSW the search beam ef, LSH the hash width,
// PQ-IVF and the flash configurations nprobe.
func RunFrontier(scale int) ([]FrontierRow, error) {
	if scale < FrontierScale {
		scale = FrontierScale
	}
	w := LoadWorkload("wiki_en", scale)
	d := w.Data
	const k = 10
	dram := rivals.DRAMANN{B: host.NewBaseline(host.CPUReal()), Dim: d.Dim}
	loadSec := dram.LoadSecondsPerQuery(w.PaperN(), QueryBatch)

	var rows []FrontierRow
	add := func(system, param string, recall, serveSec float64, resident bool) {
		total := serveSec
		if resident {
			total += loadSec
		}
		rows = append(rows, FrontierRow{
			Dataset: w.Name, System: system, Param: param,
			Recall: recall, ServeMs: serveSec * 1e3, TotalMs: total * 1e3,
		})
	}

	// HNSW: hops are measured on the functional graph and stretched by
	// the log of the size ratio — at fixed M and ef the greedy search
	// path length grows logarithmically with N (the index's own
	// scaling argument).
	hnsw := ann.NewHNSW(d.Vectors, ann.HNSWConfig{M: 24, EfConstruction: 160, Seed: 5})
	hopScale := math.Log(float64(w.PaperN())) / math.Log(float64(d.Len()))
	for _, ef := range []int{16, 64, 256} {
		hnsw.SetEfSearch(ef)
		hnsw.HopCount = 0
		_, recall := measureSearcher(d, hnsw, k)
		hops := float64(hnsw.HopCount) / float64(len(d.Queries))
		add("HNSW", fmt.Sprintf("ef=%d", ef), recall, dram.HNSWSeconds(hops*hopScale), true)
	}

	// LSH: at a fixed hash width the per-bucket occupancy — and so the
	// rescored candidate union — grows linearly with N; scaling the
	// measured candidate count by ScaleFine keeps the scanned fraction
	// of the database fixed (the fixed-structure extrapolation). More
	// bits means smaller buckets: fewer candidates, lower recall.
	const lshTables = 16
	for _, bits := range []int{16, 14, 12} {
		lsh := ann.NewLSH(d.Vectors, ann.LSHConfig{Tables: lshTables, Bits: bits, Seed: 5})
		_, recall := measureSearcher(d, lsh, k)
		var cand float64
		for _, q := range d.Queries {
			cand += float64(lsh.CandidateCount(q))
		}
		cand /= float64(len(d.Queries))
		add("LSH", fmt.Sprintf("bits=%d", bits), recall, dram.LSHSeconds(cand*w.ScaleFine, lshTables), true)
	}

	// PQ-IVF: probed-list candidates extrapolate exactly like the
	// engine's own IVF fine scan (ScaleIVF — cluster-size ratio times
	// the sqrt nprobe-retuning term), and the coarse scan covers the
	// paper's full nlist.
	nlist := max(8, isqrt(d.Len()))
	const pqM, pqKS = 16, 64
	pqivf := ann.NewPQIVF(d.Vectors,
		ann.IVFConfig{NList: nlist, Seed: 5},
		ann.PQConfig{M: pqM, KS: pqKS, Seed: 5, TrainIters: 6})
	scIVF := w.ScaleIVF()
	for _, nprobe := range []int{1, 2, 4, 8} {
		np := nprobe
		_, recall := measureSearcher(d, searchFunc(func(q []float32, kk int) []ann.Result {
			return pqivf.SearchNProbe(q, kk, np)
		}), k)
		cand := float64(d.Len()) * float64(np) / float64(nlist) * scIVF.Fine
		add("PQ-IVF", fmt.Sprintf("np=%d", np), recall, dram.PQSeconds(cand, pqM, pqKS, PaperNList), true)
	}

	// Flash configurations: the same corpus deployed on REIS-SSD1,
	// searched with threshold pruning, without and with the DRAM
	// caching tier.
	for _, cached := range []bool{false, true} {
		fr, err := frontierREIS(w, k, cached)
		if err != nil {
			return nil, err
		}
		rows = append(rows, fr...)
	}
	return rows, nil
}

// frontierREIS measures the flash engine's frontier points: recall
// from the functional results, latency from the occupancy timing
// model at ScaleIVF. With cached set, the deployment carries a
// controller-DRAM cache; warm-up passes build the probe counters so
// the measured pass scans pinned clusters from DRAM. The measured
// pass uses the sequential IVFSearch API, which shares the scan path
// (including pins) but bypasses the Submit-side result cache — repeats
// must not be served for free.
func frontierREIS(w *Workload, k int, cached bool) ([]FrontierRow, error) {
	cfg := ssd.SSD1()
	if cached {
		cfg.CacheDRAMBytes = frontierCacheBudget
	}
	s, err := NewSetup(cfg, w, reis.AllOptions())
	if err != nil {
		return nil, err
	}
	defer s.Close()
	system := "REIS-pruned"
	if cached {
		system = "REIS-pruned+cached"
	}
	sc := w.ScaleIVF()
	queries := w.Data.Queries
	var rows []FrontierRow
	for _, nprobe := range []int{1, 2, 4, 8} {
		opt := reis.SearchOptions{NProbe: nprobe, Prune: true, SkipDocs: true}
		if cached {
			for warm := 0; warm < 2; warm++ {
				for _, q := range queries {
					if _, _, err := s.Engine.IVFSearch(1, q, k, opt); err != nil {
						return nil, err
					}
				}
			}
		}
		got := make([][]int, len(queries))
		var serveSec float64
		for qi, q := range queries {
			res, st, err := s.Engine.IVFSearch(1, q, k, opt)
			if err != nil {
				return nil, err
			}
			ids := make([]int, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got[qi] = ids
			serveSec += s.Engine.Latency(s.DB, st, sc).Total.Seconds()
		}
		serveSec /= float64(len(queries))
		rows = append(rows, FrontierRow{
			Dataset: w.Name, System: system, Param: fmt.Sprintf("np=%d", nprobe),
			Recall:  dataset.Recall(w.Data.GroundTruth, got, k),
			ServeMs: serveSec * 1e3, TotalMs: serveSec * 1e3,
		})
	}
	return rows, nil
}

// FormatFrontier renders the frontier table.
func FormatFrontier(rows []FrontierRow) string {
	var sb strings.Builder
	sb.WriteString("Recall vs model latency: DRAM-side ANN rivals vs the flash engine (wiki_en, paper scale)\n")
	fmt.Fprintf(&sb, "%-10s %-18s %-10s %7s %12s %12s\n",
		"dataset", "system", "param", "recall", "serve ms", "total ms")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-18s %-10s %7.3f %12.4f %12.4f\n",
			r.Dataset, r.System, r.Param, r.Recall, r.ServeMs, r.TotalMs)
	}
	return sb.String()
}
