package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"reis/internal/reis"
	"reis/internal/ssd"
)

// QDepthRow is one point of the queue-depth sweep: the whole workload
// query set served as single-query host commands through one
// asynchronous queue pair of the given depth. Depth 1 degenerates to
// synchronous submission; deeper queues let the dispatcher coalesce
// pending commands into batched executions, so the sweep reports how
// much of the batched path's throughput the NVMe-style interface
// recovers without any caller-side batching.
type QDepthRow struct {
	Dataset string
	Mode    string
	Depth   int
	// WallQPS is the functional simulation's wall-clock throughput.
	WallQPS float64
	// AvgBatch is the mean commands per dispatch (the coalescing the
	// queue achieved at this depth).
	AvgBatch float64
	// NsPerOp / AllocsPerOp / BytesPerOp are per served query, the
	// quantities the BENCH_*.json trajectory tracks.
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
	// ModelQPS is the modeled saturation throughput at this depth
	// (every command arrived at once, dispatcher coalescing up to the
	// depth bound) — deterministic, unlike WallQPS.
	ModelQPS float64
	// ModelP50Ms/P95/P99 are modeled per-command latency quantiles at
	// LoadUtilization of ModelQPS (see slo.go).
	ModelP50Ms float64
	ModelP95Ms float64
	ModelP99Ms float64
}

// QDepthDepths is the default queue-depth sweep.
var QDepthDepths = []int{1, 2, 4, 8, 16, 32}

// RunQDepth measures QPS versus submission-queue depth on REIS-SSD1.
// Every row serves the identical workload (each query one IVF_Search
// command); rows differ only in how many commands may be outstanding.
func RunQDepth(scale int, datasets []string, depths []int) ([]QDepthRow, error) {
	if datasets == nil {
		datasets = []string{"NQ"}
	}
	if depths == nil {
		depths = QDepthDepths
	}
	var rows []QDepthRow
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		s, err := NewSetup(ssd.SSD1(), w, reis.AllOptions())
		if err != nil {
			return nil, err
		}
		defer s.Close()
		nprobe, err := s.NProbeFor(0.94)
		if err != nil {
			return nil, err
		}
		queries := w.Data.Queries
		// One batched pass collects the per-query device stats behind
		// the modeled tail columns; queue coalescing never changes
		// stats (the determinism contract), so these stand for every
		// depth row below.
		statsResp, err := s.Engine.Submit(reis.HostCommand{
			Opcode: reis.OpcodeIVFSearch, DBID: 1,
			Queries: queries, K: 10, NProbe: nprobe,
		})
		if err != nil {
			return nil, err
		}
		sc := w.ScaleIVF()
		for _, depth := range depths {
			ch := make(chan reis.Completion, depth)
			q, err := s.Engine.NewQueue(reis.QueueConfig{Depth: depth, Completions: ch})
			if err != nil {
				return nil, err
			}
			var (
				served int
				m0, m1 runtime.MemStats
			)
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for _, query := range queries {
				cmd := reis.HostCommand{
					Opcode: reis.OpcodeIVFSearch, DBID: 1,
					Queries: [][]float32{query}, K: 10, NProbe: nprobe,
				}
				for {
					_, err := q.SubmitAsync(context.Background(), cmd)
					if errors.Is(err, reis.ErrQueueFull) {
						if c := <-ch; c.Err != nil {
							q.Close()
							return nil, c.Err
						}
						served++
						continue
					}
					if err != nil {
						q.Close()
						return nil, err
					}
					break
				}
			}
			for served < len(queries) {
				if c := <-ch; c.Err != nil {
					q.Close()
					return nil, c.Err
				}
				served++
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			st := q.Stats()
			q.Close()
			n := float64(served)
			avg := 0.0
			if st.Dispatches > 0 {
				avg = float64(st.Submitted) / float64(st.Dispatches)
			}
			cost := func(first, cn int) time.Duration {
				window := make([]reis.QueryStats, cn)
				for k := range window {
					window[k] = statsResp.QueryStats[(first+k)%len(statsResp.QueryStats)]
				}
				return s.Engine.BatchLatency(s.DB, window, sc).Makespan
			}
			tail := modelTail(cost, depth)
			rows = append(rows, QDepthRow{
				Dataset: name, Mode: fmt.Sprintf("IVF@np%d", nprobe), Depth: depth,
				WallQPS:     n / wall.Seconds(),
				AvgBatch:    avg,
				NsPerOp:     float64(wall.Nanoseconds()) / n,
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
				BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
				ModelQPS:    tail.SaturationQPS,
				ModelP50Ms:  ms(tail.P50),
				ModelP95Ms:  ms(tail.P95),
				ModelP99Ms:  ms(tail.P99),
			})
		}
	}
	return rows, nil
}

// FormatQDepth renders the queue-depth sweep.
func FormatQDepth(rows []QDepthRow) string {
	var sb strings.Builder
	sb.WriteString("Queue-depth sweep: single-query commands through one async queue pair (REIS-SSD1)\n")
	fmt.Fprintf(&sb, "%-10s %-10s %6s %10s %10s %10s %10s %10s %9s %9s %9s\n",
		"dataset", "mode", "depth", "wall QPS", "avg batch", "ns/op", "allocs/op",
		"model QPS", "p50 ms", "p95 ms", "p99 ms")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-10s %6d %10.1f %10.2f %10.0f %10.1f %10.1f %9.3f %9.3f %9.3f\n",
			r.Dataset, r.Mode, r.Depth, r.WallQPS, r.AvgBatch, r.NsPerOp, r.AllocsPerOp,
			r.ModelQPS, r.ModelP50Ms, r.ModelP95Ms, r.ModelP99Ms)
	}
	return sb.String()
}
