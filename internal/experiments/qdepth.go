package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"reis/internal/reis"
	"reis/internal/ssd"
)

// QDepthRow is one point of the queue-depth sweep: the whole workload
// query set served as single-query host commands through one
// asynchronous queue pair of the given depth. Depth 1 degenerates to
// synchronous submission; deeper queues let the dispatcher coalesce
// pending commands into batched executions, so the sweep reports how
// much of the batched path's throughput the NVMe-style interface
// recovers without any caller-side batching.
type QDepthRow struct {
	Dataset string
	Mode    string
	Depth   int
	// WallQPS is the functional simulation's wall-clock throughput.
	WallQPS float64
	// AvgBatch is the mean commands per dispatch (the coalescing the
	// queue achieved at this depth).
	AvgBatch float64
	// NsPerOp / AllocsPerOp / BytesPerOp are per served query, the
	// quantities the BENCH_*.json trajectory tracks.
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
}

// QDepthDepths is the default queue-depth sweep.
var QDepthDepths = []int{1, 2, 4, 8, 16, 32}

// RunQDepth measures QPS versus submission-queue depth on REIS-SSD1.
// Every row serves the identical workload (each query one IVF_Search
// command); rows differ only in how many commands may be outstanding.
func RunQDepth(scale int, datasets []string, depths []int) ([]QDepthRow, error) {
	if datasets == nil {
		datasets = []string{"NQ"}
	}
	if depths == nil {
		depths = QDepthDepths
	}
	var rows []QDepthRow
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		s, err := NewSetup(ssd.SSD1(), w, reis.AllOptions())
		if err != nil {
			return nil, err
		}
		defer s.Close()
		nprobe, err := s.NProbeFor(0.94)
		if err != nil {
			return nil, err
		}
		queries := w.Data.Queries
		for _, depth := range depths {
			ch := make(chan reis.Completion, depth)
			q, err := s.Engine.NewQueue(reis.QueueConfig{Depth: depth, Completions: ch})
			if err != nil {
				return nil, err
			}
			var (
				served int
				m0, m1 runtime.MemStats
			)
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for _, query := range queries {
				cmd := reis.HostCommand{
					Opcode: reis.OpcodeIVFSearch, DBID: 1,
					Queries: [][]float32{query}, K: 10, NProbe: nprobe,
				}
				for {
					_, err := q.SubmitAsync(context.Background(), cmd)
					if errors.Is(err, reis.ErrQueueFull) {
						if c := <-ch; c.Err != nil {
							q.Close()
							return nil, c.Err
						}
						served++
						continue
					}
					if err != nil {
						q.Close()
						return nil, err
					}
					break
				}
			}
			for served < len(queries) {
				if c := <-ch; c.Err != nil {
					q.Close()
					return nil, c.Err
				}
				served++
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			st := q.Stats()
			q.Close()
			n := float64(served)
			avg := 0.0
			if st.Dispatches > 0 {
				avg = float64(st.Submitted) / float64(st.Dispatches)
			}
			rows = append(rows, QDepthRow{
				Dataset: name, Mode: fmt.Sprintf("IVF@np%d", nprobe), Depth: depth,
				WallQPS:     n / wall.Seconds(),
				AvgBatch:    avg,
				NsPerOp:     float64(wall.Nanoseconds()) / n,
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
				BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
			})
		}
	}
	return rows, nil
}

// FormatQDepth renders the queue-depth sweep.
func FormatQDepth(rows []QDepthRow) string {
	var sb strings.Builder
	sb.WriteString("Queue-depth sweep: single-query commands through one async queue pair (REIS-SSD1)\n")
	fmt.Fprintf(&sb, "%-10s %-10s %6s %10s %10s %10s %10s\n",
		"dataset", "mode", "depth", "wall QPS", "avg batch", "ns/op", "allocs/op")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-10s %6d %10.1f %10.2f %10.0f %10.1f\n",
			r.Dataset, r.Mode, r.Depth, r.WallQPS, r.AvgBatch, r.NsPerOp, r.AllocsPerOp)
	}
	return sb.String()
}
