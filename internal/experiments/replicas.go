package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"reis/internal/reis"
	"reis/internal/serve"
	"reis/internal/ssd"
)

// ReplicaRow is one point of the replicated-serving sweep: the whole
// workload query set served as single-query commands through a replica
// group of the given size, from concurrent submitters. Results are
// bit-identical across rows (the serving tier's determinism contract);
// rows differ in wall-clock throughput and in how much routing work
// (failovers, retirements) the group had to do.
//
// Mode "uniform" leaves every replica alone. Mode "slowed" drags
// replica 0 with a QoS-weighted ballast tenant: a background goroutine
// keeps ballast commands for a second database pending on replica 0's
// routed queue, whose stride weights give the ballast 8x the dispatch
// share — so replica 0 serves foreground commands an order of
// magnitude slower and its occupancy stays high. A 1-replica group has
// nowhere else to route (QPS collapses); a 2+-replica group steers
// around the slow member and sustains its throughput — the failover
// story the acceptance criterion pins.
type ReplicaRow struct {
	Dataset  string
	Mode     string
	Replicas int
	// WallQPS / NsPerOp are wall-clock (report-only, machine-local).
	WallQPS float64
	NsPerOp float64
	// Failovers / Retirements are group routing counters for the run.
	Failovers   float64
	Retirements float64
}

// ReplicaCounts is the default replica sweep.
var ReplicaCounts = []int{1, 2, 3}

// ballastDB is the second database id the slowed mode deploys on
// replica 0 only (group deploys broadcast; this one goes direct).
const ballastDB = 9

// RunReplicas measures serving throughput versus replica count, with
// and without one slowed member, on REIS-SSD1-class devices.
func RunReplicas(scale int, datasets []string, counts []int) ([]ReplicaRow, error) {
	if datasets == nil {
		datasets = []string{"NQ"}
	}
	if counts == nil {
		counts = ReplicaCounts
	}
	var rows []ReplicaRow
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		for _, mode := range []string{"uniform", "slowed"} {
			for _, n := range counts {
				row, err := runReplicaRow(w, name, mode, n)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// runReplicaRow builds an n-replica group, serves the query set from 4
// concurrent submitters (3 rounds over the set, single-query IVF
// commands routed per command), and reads the routing counters.
func runReplicaRow(w *Workload, dataset, mode string, n int) (ReplicaRow, error) {
	cfg := ssd.SSD1()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	need := int64(w.Data.Len()) * int64(w.Data.Dim*3)
	hosts := make([]serve.Host, n)
	for i := range hosts {
		e, err := reis.New(cfg, need*4+64<<20, reis.AllOptions())
		if err != nil {
			return ReplicaRow{}, err
		}
		hosts[i] = e
	}
	const depth = 16
	gcfg := serve.Config{QueueDepth: depth, Seed: 17}
	if mode == "slowed" {
		// Deploy the ballast database on replica 0 only, then weight
		// its routed queue so the ballast tenant gets 8x the dispatch
		// share of the foreground database — the QoS-level "slow
		// device" of the sweep.
		nb := min(256, w.Data.Len())
		if _, err := hosts[0].Submit(reis.HostCommand{Opcode: reis.OpcodeDBDeploy, Deploy: &reis.DeployConfig{
			ID: ballastDB, Vectors: w.Data.Vectors[:nb], Docs: w.Data.Docs[:nb],
			DocSlotBytes: docSlot(w.Data),
		}}); err != nil {
			return ReplicaRow{}, err
		}
		gcfg.QueueConfig = func(i int) reis.QueueConfig {
			if i == 0 {
				return reis.QueueConfig{Depth: depth, Weights: map[int]int{1: 1, ballastDB: 8}}
			}
			return reis.QueueConfig{Depth: depth}
		}
	}
	g, err := serve.NewGroup(hosts, gcfg)
	if err != nil {
		return ReplicaRow{}, err
	}
	defer g.Close()
	if _, err := g.Submit(reis.HostCommand{Opcode: reis.OpcodeIVFDeploy, Deploy: &reis.DeployConfig{
		ID: 1, Vectors: w.Data.Vectors, Docs: w.Data.Docs,
		DocSlotBytes: docSlot(w.Data), Centroids: w.Centroids, Assign: w.Assign,
	}}); err != nil {
		return ReplicaRow{}, err
	}

	stop := make(chan struct{})
	var ballastWG sync.WaitGroup
	if mode == "slowed" {
		// Keep ballast commands pending on replica 0's routed queue so
		// its occupancy stays high and its foreground dispatch share
		// stays low. ErrQueueFull just means the queue is already
		// loaded — exactly the pressure we want.
		ballastWG.Add(1)
		go func() {
			defer ballastWG.Done()
			q := g.Queue(0)
			cmd := reis.HostCommand{
				Opcode: reis.OpcodeSearch, DBID: ballastDB,
				Queries: w.Data.Queries[:1], K: 1,
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Hold all but two slots, never the whole depth: the
				// point is a loaded, slow replica — not one whose
				// admission the ballast wins outright (a 1-replica
				// group would then never accept a foreground command
				// at all).
				if q.Outstanding() >= depth-2 {
					q.Reap(0)
					time.Sleep(50 * time.Microsecond)
					continue
				}
				if _, err := q.SubmitAsync(context.Background(), cmd); err != nil {
					runtime.Gosched()
				}
				q.Reap(0)
			}
		}()
	}

	const submitters, rounds = 4, 3
	queries := w.Data.Queries
	nq := len(queries)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, submitters)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for it := 0; it < rounds*nq/submitters; it++ {
				qi := (s + it*submitters) % nq
				cmd := reis.HostCommand{
					Opcode: reis.OpcodeIVFSearch, DBID: 1,
					Queries: [][]float32{queries[qi]}, K: 10, NProbe: 8,
				}
				for {
					_, err := g.Do(context.Background(), cmd)
					if err == nil {
						break
					}
					if !errors.Is(err, reis.ErrQueueFull) {
						errc <- err
						return
					}
					runtime.Gosched() // whole group saturated: retry
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	wall := time.Since(start)
	close(stop)
	ballastWG.Wait()
	runtime.ReadMemStats(&m1)
	if err := <-errc; err != nil {
		return ReplicaRow{}, err
	}
	st := g.Stats()
	served := float64(submitters * (rounds * nq / submitters))
	return ReplicaRow{
		Dataset: dataset, Mode: mode, Replicas: n,
		WallQPS:     served / wall.Seconds(),
		NsPerOp:     float64(wall.Nanoseconds()) / served,
		Failovers:   float64(st.Failovers),
		Retirements: float64(st.Retirements),
	}, nil
}

// FormatReplicas renders the replicated-serving sweep.
func FormatReplicas(rows []ReplicaRow) string {
	var sb strings.Builder
	sb.WriteString("Replicated serving: concurrent single-query commands over N replicas (REIS-SSD1 class)\n")
	fmt.Fprintf(&sb, "%-10s %-10s %9s %10s %10s %10s %12s\n",
		"dataset", "mode", "replicas", "wall QPS", "ns/op", "failovers", "retirements")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-10s %9d %10.1f %10.0f %10.0f %12.0f\n",
			r.Dataset, r.Mode, r.Replicas, r.WallQPS, r.NsPerOp, r.Failovers, r.Retirements)
	}
	return sb.String()
}
