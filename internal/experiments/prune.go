package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"reis/internal/reis"
	"reis/internal/ssd"
)

// PruneRow is one point of the threshold-pruning sweep: a (k, nprobe)
// operating point served with pruning off ("base") or on ("prune"),
// with wall-clock and modeled throughput plus the per-query page
// accounting the pruning contract reports (sensed fine pages, pages
// never sensed because a segment's lower bound exceeded the query's
// top-k threshold, and the aborted wave slots).
type PruneRow struct {
	Dataset string
	Mode    string // "base" | "prune"
	K       int
	NProbe  int
	// WallQPS is the functional simulation's wall-clock throughput.
	WallQPS float64
	// ModelQPS is the modeled device throughput of the batch under the
	// channel-occupancy overlap model at unit scale.
	ModelQPS float64
	// FinePages / PrunedPages / AbortedWaves are mean per-query counts;
	// FinePages counts sensed pages only, PrunedPages the pages aborts
	// saved (the two sum to the base row's FinePages by construction).
	FinePages    float64
	PrunedPages  float64
	AbortedWaves float64
	// Speedup is this row's ModelQPS over the matching base row
	// (1.0 on base rows).
	Speedup float64
}

// PruneKs and PruneNProbes are the default sweep axes.
var (
	PruneKs      = []int{10, 100}
	PruneNProbes = []int{8, 32, 128}
)

// pruneNList keeps the largest nprobe of the sweep meaningful (and far
// above it, so rank windows have room to abort); prunePerCluster keeps
// the functional run light.
const (
	pruneNList      = 160
	prunePerCluster = 40
)

// pruneScale costs the sweep at paper size, exactly like the figure
// runners: the separated corpus stands in for a paper-scale database
// (100M entries at the paper's nlist = 16384), so fine pages magnify
// by cluster-size ratio times sqrt of the nlist ratio (the Workload
// ScaleIVF rule) and the coarse phase by the nlist ratio. At unit
// scale the tiny functional corpus hides the scan behind fixed
// controller costs; at paper scale the fine scan dominates, which is
// the regime pruning targets.
func pruneScale() reis.Scale {
	const paperN = 100e6
	coarse := float64(PaperNList) / pruneNList
	clusterRatio := (paperN / PaperNList) / prunePerCluster
	return reis.Scale{Fine: clusterRatio * sqrtF(coarse), Coarse: coarse, SurvivorRate: SurvivorRate}
}

// prunedWorkload builds the separated corpus the sweep runs on:
// clusters are random ±1 sign patterns, so members binary-quantize
// within a few bit flips of their centroid (tiny covering radius)
// while distinct clusters disagree on about half the dimensions. This
// is the regime the triangle-inequality bound is built for — real
// embedding corpora sit between this and the no-structure worst case,
// where pruning degrades to the base path's work (plus one broadcast
// per round) but never to different results.
func prunedWorkload() (vecs [][]float32, docs [][]byte, cents [][]float32, assign []int, queries [][]float32) {
	const dim, perCluster, nQueries = 128, prunePerCluster, 32
	rng := rand.New(rand.NewSource(0x5eed))
	cents = make([][]float32, pruneNList)
	for c := range cents {
		v := make([]float32, dim)
		for j := range v {
			v[j] = 1
			if rng.Intn(2) == 0 {
				v[j] = -1
			}
		}
		cents[c] = v
	}
	for c := 0; c < pruneNList; c++ {
		for i := 0; i < perCluster; i++ {
			v := append([]float32(nil), cents[c]...)
			for f := 0; f < 1+rng.Intn(3); f++ {
				v[rng.Intn(dim)] *= -1
			}
			vecs = append(vecs, v)
			docs = append(docs, fmt.Appendf(nil, "sep-doc-%05d", c*perCluster+i))
			assign = append(assign, c)
		}
	}
	for q := 0; q < nQueries; q++ {
		v := append([]float32(nil), cents[(q*5)%pruneNList]...)
		v[rng.Intn(dim)] *= -1
		queries = append(queries, v)
	}
	return vecs, docs, cents, assign, queries
}

// RunPrune measures threshold-propagated pruning against the unpruned
// scan on REIS-SSD1 over the separated corpus: for every (k, nprobe)
// point, the same query batch runs with SearchOptions.Prune off and
// on. Results are bit-identical by contract (enforced by the package's
// tests); the rows report what pruning does to device work and modeled
// throughput.
func RunPrune(ks, nprobes []int) ([]PruneRow, error) {
	if ks == nil {
		ks = PruneKs
	}
	if nprobes == nil {
		nprobes = PruneNProbes
	}
	vecs, docs, cents, assign, queries := prunedWorkload()
	cfg := ssd.SSD1()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	e, err := reis.New(cfg, int64(len(vecs)*len(vecs[0])*3)*4+64<<20, reis.AllOptions())
	if err != nil {
		return nil, err
	}
	defer e.Close()
	db, err := e.IVFDeploy(reis.DeployConfig{
		ID: 1, Vectors: vecs, Docs: docs, DocSlotBytes: 64,
		Centroids: cents, Assign: assign,
	})
	if err != nil {
		return nil, err
	}

	var rows []PruneRow
	for _, k := range ks {
		for _, np := range nprobes {
			var baseQPS float64
			for _, prune := range []bool{false, true} {
				start := time.Now()
				resp, err := e.Submit(reis.HostCommand{
					Opcode: reis.OpcodeIVFSearch, DBID: 1,
					Queries: queries, K: k, NProbe: np,
					Opt: reis.SearchOptions{Prune: prune},
				})
				if err != nil {
					return nil, err
				}
				wall := time.Since(start)
				bd := e.BatchLatency(db, resp.QueryStats, pruneScale())
				n := float64(len(queries))
				row := PruneRow{
					Dataset: fmt.Sprintf("sep-%d", pruneNList),
					Mode:    "base", K: k, NProbe: np,
					WallQPS:  n / wall.Seconds(),
					ModelQPS: n / bd.Makespan.Seconds(),
					Speedup:  1,
				}
				for _, st := range resp.QueryStats {
					row.FinePages += float64(st.FinePages)
					row.PrunedPages += float64(st.PrunedPages)
					row.AbortedWaves += float64(st.AbortedWaves)
				}
				row.FinePages /= n
				row.PrunedPages /= n
				row.AbortedWaves /= n
				if prune {
					row.Mode = "prune"
					if baseQPS > 0 {
						row.Speedup = row.ModelQPS / baseQPS
					}
				} else {
					baseQPS = row.ModelQPS
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FormatPrune renders the pruning sweep.
func FormatPrune(rows []PruneRow) string {
	var sb strings.Builder
	sb.WriteString("Threshold-propagated top-k pruning: base vs pruned scans (REIS-SSD1)\n")
	fmt.Fprintf(&sb, "%-10s %-6s %4s %7s %10s %10s %11s %12s %13s %8s\n",
		"dataset", "mode", "k", "nprobe", "wall QPS", "model QPS", "fine pages", "pruned pages", "aborted waves", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-6s %4d %7d %10.1f %10.1f %11.1f %12.1f %13.1f %7.2fx\n",
			r.Dataset, r.Mode, r.K, r.NProbe, r.WallQPS, r.ModelQPS, r.FinePages, r.PrunedPages, r.AbortedWaves, r.Speedup)
	}
	return sb.String()
}
