package experiments

import (
	"fmt"
	"math"
	"strings"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/rivals"
	"reis/internal/ssd"
)

// Fig10Row is one bar of Fig 10: REIS speedup over ICE for one
// dataset x mode x SSD, plus the ICE-ESP comparison of Sec 6.4.
type Fig10Row struct {
	Dataset       string
	Mode          string
	SSD           string
	SpeedupICE    float64
	SpeedupICEESP float64
}

// RunFig10 regenerates the Fig 10 comparison to ICE.
func RunFig10(scale int, datasets []string) ([]Fig10Row, error) {
	if datasets == nil {
		datasets = Fig7Datasets
	}
	ice, iceESP := rivals.ICE(), rivals.ICEESP()
	var rows []Fig10Row
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		for _, cfg := range []ssd.Config{ssd.SSD1(), ssd.SSD2()} {
			s, err := NewSetup(cfg, w, reis.AllOptions())
			if err != nil {
				return nil, err
			}
			defer s.Close()
			modes := []struct {
				name string
				run  func() (reis.Breakdown, reis.QueryStats, error)
			}{
				{"BF", func() (reis.Breakdown, reis.QueryStats, error) { return s.RunBF(10) }},
			}
			for _, target := range RecallTargets {
				target := target
				modes = append(modes, struct {
					name string
					run  func() (reis.Breakdown, reis.QueryStats, error)
				}{fmt.Sprintf("IVF@%.2f", target), func() (reis.Breakdown, reis.QueryStats, error) {
					nprobe, err := s.NProbeFor(target)
					if err != nil {
						return reis.Breakdown{}, reis.QueryStats{}, err
					}
					return s.RunIVF(10, nprobe)
				}})
			}
			for _, m := range modes {
				b, st, err := m.run()
				if err != nil {
					return nil, err
				}
				// ICE scans the same logical embeddings; its pages are
				// amplified inside the model. Candidates (no DF) are
				// every scanned entry.
				fineScale := w.ScaleIVF().Fine
				if m.name == "BF" {
					fineScale = w.ScaleFine
				}
				cands := FineCandidates(st, fineScale)
				perPage := float64(s.DB.EmbPerPage())
				scanPages := float64(st.CoarseEntries)*w.ScaleCoarse/perPage + cands/perPage
				iceL := ice.Latency(cfg, scanPages, cands, 8)
				espL := iceESP.Latency(cfg, scanPages, cands, 8)
				rows = append(rows, Fig10Row{
					Dataset: name, Mode: m.name, SSD: cfg.Name,
					SpeedupICE:    float64(iceL) / float64(b.Total),
					SpeedupICEESP: float64(espL) / float64(b.Total),
				})
			}
		}
	}
	return rows, nil
}

// FormatFig10 renders the ICE comparison.
func FormatFig10(rows []Fig10Row) string {
	var sb strings.Builder
	sb.WriteString("Fig 10: REIS speedup over ICE (and ICE-ESP, Sec 6.4)\n")
	fmt.Fprintf(&sb, "%-10s %-9s %-10s %9s %12s\n", "dataset", "mode", "SSD", "vs ICE", "vs ICE-ESP")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-9s %-10s %8.2fx %11.2fx\n",
			r.Dataset, r.Mode, r.SSD, r.SpeedupICE, r.SpeedupICEESP)
	}
	return sb.String()
}

// Fig11Row is one bar of Fig 11: REIS speedup over NDSearch on the
// billion-scale pure-ANNS datasets.
type Fig11Row struct {
	Dataset   string
	Recall    float64
	SpeedupND float64
}

// RunFig11 regenerates the Fig 11 comparison to NDSearch. NDSearch's
// cost comes from real HNSW traversal hop counts measured on the
// scaled dataset and extrapolated logarithmically to the paper's
// billion-point sizes (graph search path length grows ~log N).
func RunFig11(scale int) ([]Fig11Row, error) {
	nd := rivals.NDSearch()
	targets := map[string]float64{"SIFT": 0.94, "DEEP": 0.93}
	var rows []Fig11Row
	for _, name := range []string{"SIFT", "DEEP"} {
		w := LoadWorkload(name, scale)
		s, err := NewSetup(ssd.SSD2(), w, reis.AllOptions())
		if err != nil {
			return nil, err
		}
		defer s.Close()
		target := targets[name]
		nprobe, err := s.NProbeFor(target)
		if err != nil {
			return nil, err
		}
		b, _, err := s.runSkipDocs(10, nprobe)
		if err != nil {
			return nil, err
		}

		hops := measureHNSWHops(w.Data, target)
		// log-extrapolate path length to paper scale.
		logRatio := logf(float64(w.PaperN())) / logf(float64(w.Data.Len()))
		ndL := nd.Latency(ssd.SSD2(), hops*logRatio)
		rows = append(rows, Fig11Row{
			Dataset: name, Recall: target,
			SpeedupND: float64(ndL) / float64(b.Total),
		})
	}
	return rows, nil
}

// runSkipDocs mirrors RunIVF without the document-retrieval stage
// (SIFT/DEEP are pure-ANNS benchmarks, as in NDSearch's evaluation).
func (s *Setup) runSkipDocs(k, nprobe int) (reis.Breakdown, reis.QueryStats, error) {
	return s.run(k, s.W.ScaleIVF(), true, reis.SearchOptions{NProbe: nprobe, SkipDocs: true})
}

// measureHNSWHops builds an HNSW graph over the dataset and measures
// the mean per-query hop count at (approximately) the target recall by
// sweeping efSearch.
func measureHNSWHops(d *dataset.Dataset, target float64) float64 {
	h := ann.NewHNSW(d.Vectors, ann.HNSWConfig{M: 16, EfConstruction: 128, Seed: 0xfd})
	for _, ef := range []int{16, 32, 64, 128, 256, 512} {
		h.HopCount = 0
		got := make([][]int, len(d.Queries))
		h.SetEfSearch(ef)
		for qi, q := range d.Queries {
			rs := h.Search(q, 10)
			ids := make([]int, len(rs))
			for i, r := range rs {
				ids[i] = r.ID
			}
			got[qi] = ids
		}
		if dataset.Recall(d.GroundTruth, got, 10) >= target {
			return float64(h.HopCount) / float64(len(d.Queries))
		}
	}
	return float64(h.HopCount) / float64(len(d.Queries))
}

func logf(x float64) float64 { return math.Log(x) }

// FormatFig11 renders the NDSearch comparison.
func FormatFig11(rows []Fig11Row) string {
	var sb strings.Builder
	sb.WriteString("Fig 11: REIS speedup over NDSearch (paper: 1.7x avg, up to 2.6x)\n")
	fmt.Fprintf(&sb, "%-8s %-7s %9s\n", "dataset", "recall", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-7.2f %8.2fx\n", r.Dataset, r.Recall, r.SpeedupND)
	}
	return sb.String()
}
