package experiments

import (
	"fmt"
	"strings"

	"reis/internal/host"
	"reis/internal/ragpipe"
	"reis/internal/reis"
	"reis/internal/ssd"
)

// RAGRow is one bar of Figs 2/3 or one column of Table 4: a full RAG
// pipeline breakdown.
type RAGRow struct {
	Dataset string
	System  string // "CPU flat", "CPU+BQ", "REIS-SSD1"
	Stages  ragpipe.StageSeconds
}

// RAGBatch is the query count of one Fig 2/3 retrieval session
// (inferred from the paper's search-stage seconds).
const RAGBatch = 64

// RunRAGBreakdown regenerates Figs 2 and 3 plus Table 4: pipeline
// breakdowns for the CPU flat-index system, the CPU+BQ system, and
// REIS, on HotpotQA and wiki_en (Fig 2/3) at full scale.
func RunRAGBreakdown(scale int) ([]RAGRow, error) {
	cpu := host.NewBaseline(host.CPUReal())
	var rows []RAGRow
	for _, name := range []string{"HotpotQA", "wiki_en"} {
		w := LoadWorkload(name, scale)
		n := int(w.PaperN())
		dim := w.Data.Dim
		doc := w.Desc.DocBytes

		// Fig 2: flat FP32 index, exhaustive search over the session's
		// QueryBatch queries.
		searchFlat := cpu.ScanSecondsF32(n, dim) * float64(RAGBatch)
		rows = append(rows, RAGRow{name, "CPU flat",
			ragpipe.CPUPipeline(cpu, n, dim, doc, false, searchFlat)})

		// Fig 3: BQ index + rerank.
		searchBQ := cpu.ScanSecondsBQ(n, dim, 100) * float64(RAGBatch)
		rows = append(rows, RAGRow{name, "CPU+BQ",
			ragpipe.CPUPipeline(cpu, n, dim, doc, true, searchBQ)})

		// Table 4: REIS (search + document retrieval in storage).
		s, err := NewSetup(ssd.SSD1(), w, reis.AllOptions())
		if err != nil {
			return nil, err
		}
		defer s.Close()
		nprobe, err := s.NProbeFor(0.94)
		if err != nil {
			return nil, err
		}
		b, _, err := s.RunIVF(10, nprobe)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RAGRow{name, "REIS-SSD1",
			ragpipe.REISPipeline(b.Total.Seconds() * float64(RAGBatch))})
	}
	return rows, nil
}

// FormatRAG renders the pipeline breakdowns as percentage bars.
func FormatRAG(rows []RAGRow) string {
	var sb strings.Builder
	sb.WriteString("Figs 2/3 + Table 4: RAG pipeline latency breakdown\n")
	fmt.Fprintf(&sb, "%-10s %-10s %8s | %6s %6s %6s %6s %6s %6s\n",
		"dataset", "system", "total(s)", "emb%", "enc%", "load%", "srch%", "genL%", "gen%")
	for _, r := range rows {
		f := r.Stages.Fractions()
		fmt.Fprintf(&sb, "%-10s %-10s %8.2f | %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n",
			r.Dataset, r.System, r.Stages.Total(),
			100*f.EmbModelLoad, 100*f.Encode, 100*f.DatasetLoad,
			100*f.Search, 100*f.GenModelLoad, 100*f.Generation)
	}
	return sb.String()
}
