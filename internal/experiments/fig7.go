package experiments

import (
	"fmt"
	"strings"

	"reis/internal/host"
	"reis/internal/reis"
	"reis/internal/ssd"
)

// Fig7Row is one bar group of Fig 7 (throughput) and Fig 8 (energy
// efficiency): one dataset x search mode, with REIS-SSD1, REIS-SSD2
// and No-I/O normalized to CPU-Real.
type Fig7Row struct {
	Dataset string
	Mode    string // "BF" or "IVF@0.98" etc.

	CPUQPS   float64 // absolute, queries/s
	NoIO     float64 // normalized QPS
	SSD1     float64
	SSD2     float64
	SSD1QPSW float64 // normalized QPS/W (Fig 8)
	SSD2QPSW float64
}

// Fig7Datasets are the evaluation datasets of Figs 7/8/10.
var Fig7Datasets = []string{"NQ", "HotpotQA", "wiki_en", "wiki_full"}

// RunFig7 regenerates Figs 7 and 8 at the given functional scale
// divisor. It returns one row per dataset x mode.
func RunFig7(scale int, datasets []string) ([]Fig7Row, error) {
	if datasets == nil {
		datasets = Fig7Datasets
	}
	cpu := host.NewBaseline(host.CPUReal())
	noio := host.NewBaseline(host.CPUReal())
	noio.NoIO = true

	var rows []Fig7Row
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		s1, err := NewSetup(ssd.SSD1(), w, reis.AllOptions())
		if err != nil {
			return nil, err
		}
		defer s1.Close()
		s2, err := NewSetup(ssd.SSD2(), w, reis.AllOptions())
		if err != nil {
			return nil, err
		}
		defer s2.Close()

		// Brute force.
		b1, st1, err := s1.RunBF(10)
		if err != nil {
			return nil, err
		}
		b2, _, err := s2.RunBF(10)
		if err != nil {
			return nil, err
		}
		rows = append(rows, makeRow(w, "BF", w.ScaleFine, cpu, noio, b1, b2, st1))

		// IVF at each recall target.
		for _, target := range RecallTargets {
			nprobe, err := s1.NProbeFor(target)
			if err != nil {
				return nil, err
			}
			b1, st, err := s1.RunIVF(10, nprobe)
			if err != nil {
				return nil, err
			}
			b2, _, err := s2.RunIVF(10, nprobe)
			if err != nil {
				return nil, err
			}
			rows = append(rows, makeRow(w, fmt.Sprintf("IVF@%.2f", target), w.ScaleIVF().Fine, cpu, noio, b1, b2, st))
		}
	}
	return rows, nil
}

func makeRow(w *Workload, mode string, fineScale float64, cpu, noio *host.Baseline, b1, b2 reis.Breakdown, st reis.QueryStats) Fig7Row {
	fineCands := FineCandidates(st, fineScale)
	coarse := float64(st.CoarseEntries) * w.ScaleCoarse
	cpuQPS := CPUQPS(cpu, w, fineCands, coarse)
	noioQPS := CPUQPS(noio, w, fineCands, coarse)

	q1 := 1 / b1.Total.Seconds()
	q2 := 1 / b2.Total.Seconds()
	cpuQPSW := cpuQPS / cpu.CPU.ActiveWatts
	return Fig7Row{
		Dataset:  w.Name,
		Mode:     mode,
		CPUQPS:   cpuQPS,
		NoIO:     noioQPS / cpuQPS,
		SSD1:     q1 / cpuQPS,
		SSD2:     q2 / cpuQPS,
		SSD1QPSW: q1 / b1.AvgWatts / cpuQPSW,
		SSD2QPSW: q2 / b2.AvgWatts / cpuQPSW,
	}
}

// FormatFig7 renders the rows as the paper's figure series.
func FormatFig7(rows []Fig7Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 7: throughput normalized to CPU-Real (and Fig 8: QPS/W)\n")
	fmt.Fprintf(&sb, "%-10s %-9s %9s %8s %8s %8s | %9s %9s\n",
		"dataset", "mode", "CPU(QPS)", "No-I/O", "SSD1", "SSD2", "SSD1 Q/W", "SSD2 Q/W")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-9s %9.2f %8.2f %8.2f %8.2f | %9.2f %9.2f\n",
			r.Dataset, r.Mode, r.CPUQPS, r.NoIO, r.SSD1, r.SSD2, r.SSD1QPSW, r.SSD2QPSW)
	}
	return sb.String()
}

// SummarizeFig7 reports the aggregates the paper quotes: average and
// maximum REIS speedup and energy-efficiency gain over CPU-Real.
func SummarizeFig7(rows []Fig7Row) (avgSpeedup, maxSpeedup, avgQPSW, maxQPSW float64) {
	var n float64
	for _, r := range rows {
		for _, v := range []float64{r.SSD1, r.SSD2} {
			avgSpeedup += v
			if v > maxSpeedup {
				maxSpeedup = v
			}
			n++
		}
		for _, v := range []float64{r.SSD1QPSW, r.SSD2QPSW} {
			avgQPSW += v
			if v > maxQPSW {
				maxQPSW = v
			}
		}
	}
	return avgSpeedup / n, maxSpeedup, avgQPSW / n, maxQPSW
}
