package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// TestRunFrontierShape pins the frontier's contents: all three DRAM
// rivals and both flash configurations present, recalls valid,
// latencies positive, and the DRAM rivals paying a load term the
// flash rows don't.
func TestRunFrontierShape(t *testing.T) {
	rows, err := RunFrontier(testScale)
	if err != nil {
		t.Fatal(err)
	}
	bySystem := map[string][]FrontierRow{}
	for _, r := range rows {
		if r.Recall < 0 || r.Recall > 1 {
			t.Errorf("%s %s: recall %v out of range", r.System, r.Param, r.Recall)
		}
		if r.ServeMs <= 0 || r.TotalMs <= 0 {
			t.Errorf("%s %s: non-positive latency %v/%v", r.System, r.Param, r.ServeMs, r.TotalMs)
		}
		bySystem[r.System] = append(bySystem[r.System], r)
	}
	for _, sys := range []string{"HNSW", "LSH", "PQ-IVF", "REIS-pruned", "REIS-pruned+cached"} {
		if len(bySystem[sys]) < 3 {
			t.Errorf("system %s has %d rows, want >= 3", sys, len(bySystem[sys]))
		}
	}
	for _, r := range rows {
		isREIS := strings.HasPrefix(r.System, "REIS")
		if isREIS && r.TotalMs != r.ServeMs {
			t.Errorf("%s %s: flash rows pay no load term (%v != %v)", r.System, r.Param, r.TotalMs, r.ServeMs)
		}
		if !isREIS && r.TotalMs <= r.ServeMs {
			t.Errorf("%s %s: DRAM rival must pay a load term (%v <= %v)", r.System, r.Param, r.TotalMs, r.ServeMs)
		}
	}
	// The table must actually span the recall axis (the tiny functional
	// corpus saturates some individual sweeps, but the systems land at
	// different accuracies) and every sweep's knob must move its
	// modeled latency.
	distinct := map[float64]bool{}
	for _, r := range rows {
		distinct[r.Recall] = true
	}
	if len(distinct) < 2 {
		t.Errorf("frontier is flat on the recall axis: %v", distinct)
	}
	for sys, rs := range bySystem {
		lat := map[float64]bool{}
		for _, r := range rs {
			lat[r.ServeMs] = true
		}
		if len(lat) < 2 {
			t.Errorf("system %s: latency sweep is flat", sys)
		}
	}
	// The cached configuration changes where work happens, never what is
	// returned: recall matches the pruned run point for point (the
	// page-partition invariant), while its latency may sit above it on
	// this uniform single-pass query set.
	pruned := map[string]float64{}
	for _, r := range bySystem["REIS-pruned"] {
		pruned[r.Param] = r.Recall
	}
	for _, r := range bySystem["REIS-pruned+cached"] {
		base, ok := pruned[r.Param]
		if !ok {
			t.Fatalf("cached row %s has no pruned counterpart", r.Param)
		}
		if r.Recall != base {
			t.Errorf("cached %s recall %v != pruned %v", r.Param, r.Recall, base)
		}
	}
	out := FormatFrontier(rows)
	for _, want := range []string{"HNSW", "LSH", "PQ-IVF", "REIS-pruned+cached", "recall"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted frontier missing %q", want)
		}
	}
}

// TestRunSLOShapeAndDeterminism pins the SLO sweep: every (depth,
// load) cell reports ordered quantiles, and the whole table is
// bit-identical across runs and GOMAXPROCS settings (the modeled
// distribution is a pure function of the deterministic stats).
func TestRunSLOShapeAndDeterminism(t *testing.T) {
	depths := []int{1, 8}
	loads := []float64{0.8}
	ref, err := RunSLO(testScale, nil, depths, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(SLOShardCounts)*len(depths)*len(loads) {
		t.Fatalf("rows = %d", len(ref))
	}
	for _, r := range ref {
		if r.ArrivalQPS <= 0 || r.ModelQPS <= 0 {
			t.Errorf("%+v: non-positive rates", r)
		}
		if !(r.ModelP50Ms > 0 && r.ModelP50Ms <= r.ModelP95Ms &&
			r.ModelP95Ms <= r.ModelP99Ms && r.ModelP99Ms <= r.ModelP999Ms) {
			t.Errorf("%+v: quantiles not ordered", r)
		}
		if r.ArrivalQPS >= r.ModelQPS {
			t.Errorf("%+v: pinned arrival rate must sit below saturation", r)
		}
	}
	out := FormatSLO(ref)
	if !strings.Contains(out, "p99") {
		t.Errorf("formatted SLO output missing quantile header:\n%s", out)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		got, err := RunSLO(testScale, nil, depths, loads)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("GOMAXPROCS=%d: SLO table diverged\nref: %+v\ngot: %+v", procs, ref, got)
		}
	}
}
