// Package experiments regenerates every table and figure of the
// paper's evaluation (Sec 6). Each RunFigN function executes the
// corresponding workload functionally on the simulated devices and
// returns the rows/series the paper reports; cmd/reisbench prints them
// and the root-level benchmarks time them.
//
// Scaling: workloads run functionally at catalog scale (Sec "Load"),
// and device latencies are costed at the paper's full dataset sizes
// through reis.Scale (fine scale = paper entries / functional entries;
// coarse scale = paper nlist / functional nlist). Normalized results —
// who wins and by roughly what factor — are the reproduction target,
// not absolute QPS.
package experiments

import (
	"fmt"
	"math"
	"time"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/host"
	"reis/internal/reis"
	"reis/internal/ssd"
)

// PaperNList is the cluster count the paper uses for its IVF indexes
// (Fig 5: nlist = 16384).
const PaperNList = 16384

// QueryBatch is the number of queries a retrieval session serves
// before the dataset is evicted; CPU-Real amortizes dataset loading
// over this batch (Sec 3.2 discusses why batching cannot grow without
// bound across domain-specific databases).
const QueryBatch = 1000

// SurvivorRate is the full-scale distance-filter pass rate (the paper
// filters ~99% of candidates, Sec 4.3.3).
const SurvivorRate = 0.01

// RecallTargets are the Recall@10 operating points of Figs 7, 8, 10.
var RecallTargets = []float64{0.98, 0.94, 0.90}

// Workload bundles a functional dataset with its IVF indexing
// information and the scale factors to the paper's full size.
type Workload struct {
	Name      string
	Data      *dataset.Dataset
	Desc      dataset.Descriptor
	Centroids [][]float32
	Assign    []int

	// ScaleFine is paper entries / functional entries (applies to
	// whole-database scans).
	ScaleFine float64
	// ScaleCoarse is paper nlist / functional nlist.
	ScaleCoarse float64
	// ClusterRatio is paper cluster size / functional cluster size.
	// IVF fine scans extrapolate by this ratio: at full scale the
	// paper's index keeps nlist = 16384, so a fixed nprobe scans
	// nprobe * (paperN / 16384) entries regardless of how the
	// functional run was scaled.
	ClusterRatio float64
}

// LoadWorkload builds the named catalog workload at the given scale
// divisor and trains its IVF clustering (the offline indexing stage).
func LoadWorkload(name string, scale int) *Workload {
	desc, ok := dataset.Catalog[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
	data := dataset.Load(name, scale)
	// nlist follows the generator's topic count but never drops below
	// sqrt(N): tiny cluster counts would force near-full scans at any
	// recall target, which no full-scale deployment would use.
	nlist := max(8, max(desc.Clusters/scale, isqrt(data.Len())))
	cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{
		K: nlist, Seed: 0x1df, SampleLimit: 8192,
	})
	paperCluster := float64(desc.PaperEntries) / float64(PaperNList)
	ourCluster := float64(data.Len()) / float64(len(cents))
	return &Workload{
		Name:         name,
		Data:         data,
		Desc:         desc,
		Centroids:    cents,
		Assign:       assign,
		ScaleFine:    float64(desc.PaperEntries) / float64(data.Len()),
		ScaleCoarse:  float64(PaperNList) / float64(len(cents)),
		ClusterRatio: paperCluster / ourCluster,
	}
}

// ScaleBF returns the reis.Scale for costing a brute-force query at
// paper size: the scan covers the whole database, so it magnifies
// linearly.
func (w *Workload) ScaleBF() reis.Scale {
	return reis.Scale{Fine: w.ScaleFine, Coarse: w.ScaleCoarse, SurvivorRate: SurvivorRate}
}

// ScaleIVF returns the reis.Scale for costing an IVF query at paper
// size. The fine scan covers nprobe clusters of ClusterRatio-times
// larger size, and nprobe itself grows with the square root of the
// nlist ratio: keeping nprobe fixed (scan ∝ ClusterRatio) is too
// optimistic at 16384 cells, while keeping the scanned *fraction*
// fixed (scan ∝ N) is too pessimistic — sqrt sits between the two
// extremes and matches how practitioners retune nprobe when nlist
// grows (FAISS guidelines scale both with sqrt(N)).
func (w *Workload) ScaleIVF() reis.Scale {
	fine := w.ClusterRatio * sqrtF(w.ScaleCoarse)
	if w.Desc.DocBytes == 0 {
		// Billion-scale pure-ANNS datasets (SIFT/DEEP): the functional
		// run already probes a far larger fraction of cells (tens of
		// percent) than any full-scale deployment would (<1%), so the
		// nprobe-growth term would double-count; cluster-size scaling
		// alone is already conservative for REIS there.
		fine = w.ClusterRatio
	}
	return reis.Scale{Fine: fine, Coarse: w.ScaleCoarse, SurvivorRate: SurvivorRate}
}

func sqrtF(x float64) float64 {
	if x < 1 {
		return 1
	}
	return math.Sqrt(x)
}

// PaperN returns the full-scale entry count.
func (w *Workload) PaperN() int64 { return w.Desc.PaperEntries }

// Setup is a deployed REIS engine over a workload.
type Setup struct {
	Engine *reis.Engine
	DB     *reis.Database
	W      *Workload
}

// Close releases the engine's background workers (the plane worker
// pool and any queue pairs). Runners that build setups in a loop call
// it as each setup goes out of scope.
func (s *Setup) Close() { s.Engine.Close() }

// NewSetup deploys the workload on a fresh engine of the given
// configuration and options.
func NewSetup(cfg ssd.Config, w *Workload, opts reis.Options) (*Setup, error) {
	// Shrink per-plane capacity to what the workload needs (keeps the
	// functional simulation light without touching parallelism). Eight
	// blocks per plane leave room for the four block-aligned regions
	// of a deployment; WithCapacityFor grows it if the data demands.
	need := int64(w.Data.Len()) * int64(w.Data.Dim*3)
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	e, err := reis.New(cfg, need*4+64<<20, opts)
	if err != nil {
		return nil, err
	}
	db, err := e.IVFDeploy(reis.DeployConfig{
		ID: 1, Vectors: w.Data.Vectors, Docs: w.Data.Docs,
		DocSlotBytes: docSlot(w.Data), Centroids: w.Centroids, Assign: w.Assign,
	})
	if err != nil {
		return nil, err
	}
	return &Setup{Engine: e, DB: db, W: w}, nil
}

func docSlot(d *dataset.Dataset) int {
	slot := 256
	for _, doc := range d.Docs[:1] {
		for slot < len(doc) {
			slot *= 2
		}
	}
	return slot
}

// RunBF executes every workload query as an in-storage brute-force
// search and returns the mean per-query latency breakdown at paper
// scale plus the mean stats. Queries are admitted as one batched
// Search host command — per-query results and device events are
// bit-identical to sequential admission, so figure reproductions are
// unchanged while the functional simulation runs concurrently across
// planes.
func (s *Setup) RunBF(k int) (reis.Breakdown, reis.QueryStats, error) {
	return s.run(k, s.W.ScaleBF(), false, reis.SearchOptions{})
}

// RunIVF executes every query at the given nprobe, batched.
func (s *Setup) RunIVF(k, nprobe int) (reis.Breakdown, reis.QueryStats, error) {
	return s.run(k, s.W.ScaleIVF(), true, reis.SearchOptions{NProbe: nprobe})
}

func (s *Setup) run(k int, sc reis.Scale, ivf bool, opt reis.SearchOptions) (reis.Breakdown, reis.QueryStats, error) {
	queries := s.W.Data.Queries
	// The figure runners drive the device exactly as a host would:
	// one vendor command through the submission-queue interface.
	op := reis.OpcodeSearch
	if ivf {
		op = reis.OpcodeIVFSearch
	}
	resp, err := s.Engine.Submit(reis.HostCommand{
		Opcode: op, DBID: 1, Queries: queries, K: k, NProbe: opt.NProbe, Opt: opt,
	})
	if err != nil {
		return reis.Breakdown{}, reis.QueryStats{}, err
	}
	sts := resp.QueryStats
	var totalSec float64
	var b reis.Breakdown
	var agg reis.QueryStats
	for _, st := range sts {
		bd := s.Engine.Latency(s.DB, st, sc)
		totalSec += bd.Total.Seconds()
		b = bd // keep the last breakdown's proportions
		agg.Add(st)
	}
	b.Total = time.Duration(totalSec / float64(len(sts)) * float64(time.Second))
	return b, meanStats(agg, len(sts)), nil
}

func meanStats(agg reis.QueryStats, n int) reis.QueryStats {
	if n <= 1 {
		return agg
	}
	agg.CoarseWaves /= n
	agg.FineWaves /= n
	agg.CoarsePages /= n
	agg.FinePages /= n
	agg.EntriesScanned /= n
	agg.Survivors /= n
	agg.TTLBytes /= int64(n)
	agg.RerankCount /= n
	agg.RerankPages /= n
	agg.RerankWaves /= n
	agg.DocPages /= n
	agg.DocBytes /= int64(n)
	agg.IBCBroadcasts /= n
	agg.SelectInput /= n
	agg.SortedEntries /= n
	agg.CoarseEntries /= n
	agg.PrunedPages /= n
	agg.AbortedWaves /= n
	agg.PrunedSlots /= n
	agg.CachedPages /= n
	agg.CachedSlots /= n
	agg.ResultCacheHits /= n
	return agg
}

// NProbeFor calibrates nprobe for a Recall@10 target on this setup.
func (s *Setup) NProbeFor(target float64) (int, error) {
	return s.Engine.CalibrateNProbe(1, s.W.Data.Queries, s.W.Data.GroundTruth, 10, target)
}

// CPUQPS returns the Fig 7 CPU-Real throughput for this workload:
// BQ dataset loading at paper size amortized over QueryBatch queries,
// plus the per-query BQ scan of `candidates` full-scale candidates.
func CPUQPS(b *host.Baseline, w *Workload, candidates float64, coarse float64) float64 {
	bytes := host.DatasetBytesBQ(int(w.PaperN()), w.Data.Dim, w.Desc.DocBytes)
	load := b.LoadSeconds(bytes, true)
	search := b.ScanSecondsBQ(int(candidates), w.Data.Dim, 100) +
		b.ScanSecondsF32(int(coarse), w.Data.Dim)
	return b.QPS(QueryBatch, load, search)
}

// FineCandidates returns the full-scale fine-scan candidate count of a
// mean stats record under the given scale.
func FineCandidates(st reis.QueryStats, fineScale float64) float64 {
	return float64(st.EntriesScanned-st.CoarseEntries) * fineScale
}
