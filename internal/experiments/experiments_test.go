package experiments

import (
	"strings"
	"testing"
)

// Tests run at heavy scale divisors so the functional workloads stay
// small; the benchmark harness runs the same code at lower divisors.
const testScale = 64

func TestLoadWorkload(t *testing.T) {
	w := LoadWorkload("NQ", testScale)
	if w.Data.Len() == 0 || len(w.Centroids) == 0 {
		t.Fatal("empty workload")
	}
	if len(w.Assign) != w.Data.Len() {
		t.Fatal("assignment length mismatch")
	}
	if w.ScaleFine <= 1 {
		t.Fatalf("ScaleFine = %v, expected > 1 for scaled-down run", w.ScaleFine)
	}
	if w.ScaleCoarse <= 1 {
		t.Fatalf("ScaleCoarse = %v", w.ScaleCoarse)
	}
}

func TestRunFig7ShapeHolds(t *testing.T) {
	rows, err := RunFig7(testScale, []string{"NQ", "wiki_en"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*(1+len(RecallTargets)) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Headline claims: REIS beats CPU-Real on every dataset/mode.
		if r.SSD1 <= 1 {
			t.Errorf("%s/%s: SSD1 speedup %.2f <= 1", r.Dataset, r.Mode, r.SSD1)
		}
		// SSD2 must beat SSD1 (2x channels, 1.7x bandwidth, 2x planes).
		if r.SSD2 <= r.SSD1 {
			t.Errorf("%s/%s: SSD2 %.2f <= SSD1 %.2f", r.Dataset, r.Mode, r.SSD2, r.SSD1)
		}
		// Energy efficiency gains exceed throughput gains (the SSD
		// draws ~30x less power).
		if r.SSD1QPSW <= r.SSD1 {
			t.Errorf("%s/%s: QPS/W gain %.2f <= QPS gain %.2f", r.Dataset, r.Mode, r.SSD1QPSW, r.SSD1)
		}
	}
	avg, maxS, avgW, maxW := SummarizeFig7(rows)
	t.Logf("speedup avg %.1fx max %.1fx (paper: 13x/112x); QPS/W avg %.1fx max %.1fx (paper: 55x/157x)",
		avg, maxS, avgW, maxW)
	if avg < 2 {
		t.Errorf("average speedup %.2f too low to reproduce the paper's shape", avg)
	}
	out := FormatFig7(rows)
	if !strings.Contains(out, "wiki_en") {
		t.Error("formatted output missing dataset")
	}
}

func TestRunFig9OptimizationOrdering(t *testing.T) {
	rows, err := RunFig9(testScale, []float64{0.94, 0.90})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DF < r.NoOpt {
			t.Errorf("%s@%.2f: +DF (%.2f) below No-OPT (%.2f)", r.SSD, r.Recall, r.DF, r.NoOpt)
		}
		if r.DFPL < r.DF*0.95 {
			t.Errorf("%s@%.2f: +PL (%.2f) below +DF (%.2f)", r.SSD, r.Recall, r.DFPL, r.DF)
		}
		if r.Full < r.DFPL*0.95 {
			t.Errorf("%s@%.2f: +MPIBC (%.2f) below +PL (%.2f)", r.SSD, r.Recall, r.Full, r.DFPL)
		}
		// DF must be the dominant optimization (paper: 4.7-5.7x of the
		// total stack's gain).
		dfGain := r.DF / r.NoOpt
		restGain := r.Full / r.DF
		if dfGain < restGain {
			t.Errorf("%s@%.2f: DF gain %.2f not dominant vs rest %.2f", r.SSD, r.Recall, dfGain, restGain)
		}
	}
	if out := FormatFig9(rows); !strings.Contains(out, "NO-OPT") {
		t.Error("format missing header")
	}
}

func TestRunASICSlowdownBand(t *testing.T) {
	rows, err := RunASIC(testScale, []string{"wiki_en"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Slowdown < 1.5 {
			t.Errorf("%s/%s@%.2f: ASIC slowdown %.2f < 1.5", r.Dataset, r.SSD, r.Recall, r.Slowdown)
		}
	}
	t.Log(FormatASIC(rows))
}

func TestRunFig10REISWins(t *testing.T) {
	rows, err := RunFig10(testScale, []string{"HotpotQA"})
	if err != nil {
		t.Fatal(err)
	}
	var bfICE float64
	for _, r := range rows {
		if r.SpeedupICE <= 1 {
			t.Errorf("%s/%s/%s: not faster than ICE (%.2f)", r.Dataset, r.Mode, r.SSD, r.SpeedupICE)
		}
		// ICE is slower than ICE-ESP, so the speedup over ICE is larger.
		if r.SpeedupICE <= r.SpeedupICEESP {
			t.Errorf("speedup over ICE (%.2f) not above ICE-ESP (%.2f)", r.SpeedupICE, r.SpeedupICEESP)
		}
		if r.Mode == "BF" && r.SSD == "REIS-SSD1" {
			bfICE = r.SpeedupICE
		}
	}
	// Paper: BF speedup over ICE greater than 10x.
	if bfICE < 5 {
		t.Errorf("BF speedup over ICE %.2f, paper reports > 10x", bfICE)
	}
	t.Log(FormatFig10(rows))
}

func TestRunFig11REISWins(t *testing.T) {
	rows, err := RunFig11(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SpeedupND <= 0.5 {
			t.Errorf("%s: speedup over NDSearch %.2f collapsed", r.Dataset, r.SpeedupND)
		}
	}
	t.Log(FormatFig11(rows))
}

func TestRunFig5Shape(t *testing.T) {
	pts, err := RunFig5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	best := map[string]float64{}
	bestQPS := map[string]float64{}
	for _, p := range pts {
		if p.Recall > best[p.Algorithm] {
			best[p.Algorithm] = p.Recall
		}
		if p.NormQPS > bestQPS[p.Algorithm] {
			bestQPS[p.Algorithm] = p.NormQPS
		}
	}
	// Paper observations: IVF and HNSW reach high recall; BQ IVF is
	// much faster than exhaustive search; LSH is the weakest.
	if best["IVF"] < 0.9 {
		t.Errorf("IVF best recall %.2f < 0.9", best["IVF"])
	}
	if best["HNSW"] < 0.9 {
		t.Errorf("HNSW best recall %.2f < 0.9", best["HNSW"])
	}
	if bestQPS["BQ IVF"] < 1 {
		t.Errorf("BQ IVF never beat exhaustive search (%.2f)", bestQPS["BQ IVF"])
	}
	if best["LSH"] >= best["IVF"] && bestQPS["LSH"] >= bestQPS["BQ IVF"] {
		t.Error("LSH unexpectedly dominant")
	}
	t.Log(FormatFig5(pts))
}

func TestRunRAGBreakdown(t *testing.T) {
	rows, err := RunRAGBreakdown(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]RAGRow{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.System] = r
	}
	if raceEnabled {
		// The CPU-baseline stage proportions compare modeled I/O time
		// against kernels calibrated on this machine; the race
		// detector slows the kernels ~15x and distorts every fraction,
		// so only the structural assertions below run.
		t.Log("race detector active: skipping calibrated stage-fraction assertions")
	} else {
		// Fig 2 shape: wiki_en flat is loading-dominated.
		we := byKey["wiki_en/CPU flat"].Stages.Fractions()
		if we.DatasetLoad < 0.6 {
			t.Errorf("wiki_en flat loading fraction %.2f (paper 0.84)", we.DatasetLoad)
		}
		// Fig 3 shape: BQ reduces loading share but wiki_en stays bound.
		bq := byKey["wiki_en/CPU+BQ"].Stages.Fractions()
		if bq.DatasetLoad >= we.DatasetLoad {
			t.Error("BQ did not reduce loading share")
		}
		if bq.DatasetLoad < 0.4 {
			t.Errorf("wiki_en BQ loading fraction %.2f (paper 0.67)", bq.DatasetLoad)
		}
		// Table 4 shape: REIS is generation-dominated and faster overall.
		reisRow := byKey["wiki_en/REIS-SSD1"]
		if f := reisRow.Stages.Fractions(); f.Generation < 0.7 {
			t.Errorf("REIS generation fraction %.2f (paper 0.92)", f.Generation)
		}
	}
	reisRow := byKey["wiki_en/REIS-SSD1"]
	if reisRow.Stages.Total() >= byKey["wiki_en/CPU+BQ"].Stages.Total() {
		t.Error("REIS end-to-end not faster than CPU+BQ")
	}
	t.Log(FormatRAG(rows))
}

func TestRunSkewCachingWins(t *testing.T) {
	// One skew point at two budgets keeps the test light; RunSkew
	// re-checks the page-partition contract against the budget-0
	// baseline internally, so a clean return already covers it.
	rows, err := RunSkew([]float64{1.2}, []int64{0, SkewDefaultBudget})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	base, cached := rows[0], rows[1]
	if base.Budget != 0 || base.Speedup != 1 || base.HitRate != 0 || base.CachedPages != 0 {
		t.Fatalf("budget-0 row not a clean baseline: %+v", base)
	}
	if cached.HitRate <= 0 {
		t.Errorf("no result-cache hits under Zipf s=1.2: %+v", cached)
	}
	if cached.CachedPages <= 0 {
		t.Errorf("no pinned-cluster pages served: %+v", cached)
	}
	// The tentpole claim: modeled throughput gains at least 1.5x from
	// the caching tier at the default budget under heavy skew.
	if cached.Speedup < 1.5 {
		t.Errorf("speedup %.2fx < 1.5x at s=1.2, default budget", cached.Speedup)
	}
	if out := FormatSkew(rows); !strings.Contains(out, "skew-3k") {
		t.Error("format missing dataset")
	}
}

func TestRunShardsScaling(t *testing.T) {
	rows, err := RunShards(testScale, []string{"NQ"}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // {BF, IVF} x {1, 2, 4}
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	model := map[string]map[int]float64{}
	for _, r := range rows {
		if r.WallQPS <= 0 || r.ModelQPS <= 0 {
			t.Fatalf("%s shards=%d: non-positive throughput %+v", r.Mode, r.Shards, r)
		}
		mode := "IVF"
		if r.Mode == "BF" {
			mode = "BF"
		}
		if model[mode] == nil {
			model[mode] = map[int]float64{}
		}
		model[mode][r.Shards] = r.ModelQPS
	}
	// The modeled batch makespan is deterministic (it is a pure
	// function of the bit-identical device stats), so the scale-out
	// claim is assertable exactly: brute-force — the scan-bound best
	// case — must gain from sharding, and no mode may lose more than
	// rounding.
	if model["BF"][4] <= model["BF"][1]*1.2 {
		t.Fatalf("BF model QPS does not scale: 1 shard %.1f, 4 shards %.1f",
			model["BF"][1], model["BF"][4])
	}
	for _, mode := range []string{"BF", "IVF"} {
		for _, n := range []int{2, 4} {
			if model[mode][n] < model[mode][1]*0.95 {
				t.Fatalf("%s model QPS regressed with %d shards: %.1f vs %.1f",
					mode, n, model[mode][n], model[mode][1])
			}
		}
	}
}

func TestRunChurnWearLeveling(t *testing.T) {
	rows, err := RunChurn()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	wl, ff := rows[0], rows[1]
	if wl.Placement != "wear-leveled" || ff.Placement != "first-fit" {
		t.Fatalf("unexpected placement order: %q, %q", wl.Placement, ff.Placement)
	}
	if wl.CompactedRows < churnRounds || ff.CompactedRows < churnRounds {
		t.Fatalf("churn barely compacted: %+v / %+v", wl, ff)
	}
	// The wear-leveling claim: least-worn-first placement strictly
	// reduces the maximum per-block erase count under identical churn.
	if wl.MaxBlockErase == 0 || wl.MaxBlockErase >= ff.MaxBlockErase {
		t.Errorf("wear-leveled max erase %.0f not below first-fit %.0f", wl.MaxBlockErase, ff.MaxBlockErase)
	}
	// Copy-forward re-programs survivors, so amplification is > 1 and
	// identical across placement policies (same data motion, different
	// physical rows).
	if wl.WriteAmp <= 1 || wl.WriteAmp != ff.WriteAmp {
		t.Errorf("write amplification off: wear-leveled %.3f, first-fit %.3f", wl.WriteAmp, ff.WriteAmp)
	}
	if out := FormatChurn(rows); !strings.Contains(out, "first-fit") {
		t.Error("format missing placement")
	}
}
