package experiments

import (
	"fmt"
	"strings"

	"reis/internal/host"
	"reis/internal/reis"
	"reis/internal/ssd"
)

// Fig9Row is one point of the Fig 9 sensitivity study: normalized QPS
// of each optimization stack at one recall target on wiki_full.
type Fig9Row struct {
	SSD    string
	Recall float64
	NoOpt  float64 // normalized to CPU-Real
	DF     float64 // +distance filtering
	DFPL   float64 // +pipelining
	Full   float64 // +MPIBC
}

// Fig9Recalls are the sweep points of Fig 9.
var Fig9Recalls = []float64{0.98, 0.96, 0.94, 0.92, 0.90}

// RunFig9 regenerates the Fig 9 sensitivity sweep on wiki_full.
func RunFig9(scale int, recalls []float64) ([]Fig9Row, error) {
	if recalls == nil {
		recalls = Fig9Recalls
	}
	w := LoadWorkload("wiki_full", scale)
	cpu := host.NewBaseline(host.CPUReal())

	stacks := []struct {
		name string
		opts reis.Options
	}{
		{"NoOpt", reis.Options{}},
		{"DF", reis.Options{DistanceFilter: true}},
		{"DFPL", reis.Options{DistanceFilter: true, Pipelining: true}},
		{"Full", reis.AllOptions()},
	}

	var rows []Fig9Row
	for _, cfg := range []ssd.Config{ssd.SSD1(), ssd.SSD2()} {
		setups := make([]*Setup, len(stacks))
		for i, stk := range stacks {
			s, err := NewSetup(cfg, w, stk.opts)
			if err != nil {
				return nil, err
			}
			defer s.Close()
			setups[i] = s
		}
		for _, target := range recalls {
			row := Fig9Row{SSD: cfg.Name, Recall: target}
			vals := []*float64{&row.NoOpt, &row.DF, &row.DFPL, &row.Full}
			for i, s := range setups {
				nprobe, err := s.NProbeFor(target)
				if err != nil {
					return nil, err
				}
				b, st, err := s.RunIVF(10, nprobe)
				if err != nil {
					return nil, err
				}
				cpuQPS := CPUQPS(cpu, w, FineCandidates(st, w.ScaleIVF().Fine), float64(st.CoarseEntries)*w.ScaleCoarse)
				*vals[i] = (1 / b.Total.Seconds()) / cpuQPS
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFig9 renders the sensitivity sweep.
func FormatFig9(rows []Fig9Row) string {
	var sb strings.Builder
	sb.WriteString("Fig 9: optimization sensitivity on wiki_full (QPS normalized to CPU-Real)\n")
	fmt.Fprintf(&sb, "%-10s %-7s %8s %8s %8s %8s\n", "SSD", "recall", "NO-OPT", "+DF", "+PL", "+MPIBC")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-7.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.SSD, r.Recall, r.NoOpt, r.DF, r.DFPL, r.Full)
	}
	return sb.String()
}

// ASICRow is the Sec 6.3.1 comparison: REIS versus the REIS-ASIC
// variant that replaces ESP with controller-side ECC.
type ASICRow struct {
	Dataset  string
	SSD      string
	Recall   float64
	Slowdown float64 // ASIC latency / REIS latency
}

// RunASIC regenerates the Sec 6.3.1 REIS-ASIC comparison.
func RunASIC(scale int, datasets []string) ([]ASICRow, error) {
	if datasets == nil {
		datasets = Fig7Datasets
	}
	var rows []ASICRow
	for _, name := range datasets {
		w := LoadWorkload(name, scale)
		for _, cfg := range []ssd.Config{ssd.SSD1(), ssd.SSD2()} {
			s, err := NewSetup(cfg, w, reis.AllOptions())
			if err != nil {
				return nil, err
			}
			defer s.Close()
			for _, target := range RecallTargets {
				nprobe, err := s.NProbeFor(target)
				if err != nil {
					return nil, err
				}
				_, st, err := s.RunIVF(10, nprobe)
				if err != nil {
					return nil, err
				}
				sc := w.ScaleIVF()
				reisL := s.Engine.Latency(s.DB, st, sc).Total
				asicL := s.Engine.ASICLatency(s.DB, st, sc).Total
				rows = append(rows, ASICRow{
					Dataset: name, SSD: cfg.Name, Recall: target,
					Slowdown: float64(asicL) / float64(reisL),
				})
			}
		}
	}
	return rows, nil
}

// FormatASIC renders the REIS-ASIC comparison.
func FormatASIC(rows []ASICRow) string {
	var sb strings.Builder
	sb.WriteString("Sec 6.3.1: REIS-ASIC slowdown vs REIS (paper: 4.1-5.0x SSD1, 3.9-6.5x SSD2)\n")
	fmt.Fprintf(&sb, "%-10s %-10s %-7s %9s\n", "dataset", "SSD", "recall", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-10s %-7.2f %8.2fx\n", r.Dataset, r.SSD, r.Recall, r.Slowdown)
	}
	return sb.String()
}
