// Command reisctl demonstrates the REIS host API (Table 1) against a
// simulated device: it generates a synthetic corpus, deploys it with
// IVF_Deploy, issues an IVF_Search command through an asynchronous
// NVMe-style queue pair (submission + polled completion), and prints
// the retrieved document chunks with per-query device statistics.
//
//	reisctl -n 4000 -queries 5 -k 3 -nprobe 8 -qdepth 16
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
)

func main() {
	n := flag.Int("n", 4000, "database entries")
	dim := flag.Int("dim", 256, "embedding dimensionality")
	queries := flag.Int("queries", 5, "queries to issue")
	k := flag.Int("k", 3, "documents per query")
	nprobe := flag.Int("nprobe", 8, "IVF clusters probed")
	device := flag.String("device", "ssd1", "device preset (ssd1|ssd2)")
	qdepth := flag.Int("qdepth", 16, "submission queue depth")
	flag.Parse()

	cfg := ssd.SSD1()
	if *device == "ssd2" {
		cfg = ssd.SSD2()
	}
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16

	log.Printf("generating %d x %d-dim corpus...", *n, *dim)
	data := dataset.Generate(dataset.Config{
		Name: "reisctl", N: *n, Dim: *dim, Clusters: 32,
		Queries: *queries, DocBytes: 512, Seed: 1,
	})
	cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 32, Seed: 1})

	engine, err := reis.New(cfg, int64(*n)*int64(*dim)*16+64<<20, reis.AllOptions())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("deploying database on %s (%d planes, %d channels)...",
		cfg.Name, cfg.Geo.Planes(), cfg.Geo.Channels)
	if _, err := engine.Submit(reis.HostCommand{
		Opcode: reis.OpcodeIVFDeploy,
		Deploy: &reis.DeployConfig{
			ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 512,
			Centroids: cents, Assign: assign,
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Search through an asynchronous queue pair: submit the batched
	// IVF_Search command, then poll the completion side — the NVMe
	// submission/completion flow a real host driver performs.
	queue, err := engine.NewQueue(reis.QueueConfig{Depth: *qdepth})
	if err != nil {
		log.Fatal(err)
	}
	defer queue.Close()
	id, err := queue.SubmitAsync(context.Background(), reis.HostCommand{
		Opcode: reis.OpcodeIVFSearch, DBID: 1,
		Queries: data.Queries, K: *k, NProbe: *nprobe,
	})
	if err != nil {
		log.Fatal(err)
	}
	var resp reis.HostResponse
	for {
		cs := queue.Reap(1)
		if len(cs) == 0 {
			runtime.Gosched() // completion pending; poll again
			continue
		}
		if cs[0].ID != id {
			log.Fatalf("reaped completion %d, submitted %d", cs[0].ID, id)
		}
		if cs[0].Err != nil {
			log.Fatal(cs[0].Err)
		}
		resp = cs[0].Resp
		break
	}
	db, _ := engine.DB(1)
	for qi, results := range resp.Results {
		fmt.Printf("query %d:\n", qi)
		for rank, r := range results {
			header := r.Doc
			if len(header) > 48 {
				header = header[:48]
			}
			fmt.Printf("  #%d id=%-6d dist=%-8.0f %q\n", rank+1, r.ID, r.Dist, header)
		}
	}
	st := resp.Stats
	fmt.Printf("\nbatch device stats: %d pages sensed (%d coarse, %d fine), %d entries scanned, %d TTL survivors, %d doc pages\n",
		st.CoarsePages+st.FinePages, st.CoarsePages, st.FinePages,
		st.EntriesScanned, st.Survivors, st.DocPages)
	// The command above served the batch through the concurrent plane
	// pipeline and returned per-query device events; cost them with
	// the single-query and batch-overlap timing models.
	bd := engine.Latency(db, resp.QueryStats[0], reis.UnitScale())
	fmt.Printf("modeled per-query latency on %s: %v (IBC %v, coarse %v, fine %v, rerank %v, docs %v), %.1f uJ\n",
		cfg.Name, bd.Total, bd.IBC, bd.Coarse, bd.Fine, bd.Rerank, bd.Docs, bd.EnergyJ*1e6)
	bb := engine.BatchLatency(db, resp.QueryStats, reis.UnitScale())
	fmt.Printf("batched admission: %d queries in %v makespan (%.0f QPS, %.2fx over one-at-a-time)\n",
		bb.Queries, bb.Makespan, bb.QPS, bb.Serial.Seconds()/bb.Makespan.Seconds())
}
